(* The future-work optimizer, running: pick the cheapest lowering strategy
   per device, per query — "we argue that these could eventually be chosen
   via an optimizer that generates Voodoo code" (paper, Section 1).

   Run with: dune exec examples/autotune.exe *)

open Voodoo_relational
module Tuner = Voodoo_engine.Tuner
module Config = Voodoo_device.Config

let () =
  let sf = 0.005 in
  let cat = Voodoo_tpch.Dbgen.generate ~sf () in
  let workloads =
    [
      ( "highly selective sum (qty <= 2)",
        Ra.aggregate
          (Ra.select (Ra.scan "lineitem") Rexpr.(col "l_quantity" <=: i 2))
          [ Ra.agg ~name:"s" Sum (Rexpr.col "l_extendedprice") ] );
      ( "mid-selectivity sum (qty <= 25)",
        Ra.aggregate
          (Ra.select (Ra.scan "lineitem") Rexpr.(col "l_quantity" <=: i 25))
          [ Ra.agg ~name:"s" Sum (Rexpr.col "l_extendedprice") ] );
      ( "join + selective sum (Q14 shape)",
        Ra.aggregate
          (Ra.select
             (Ra.fk_join (Ra.scan "lineitem") ~fk:"l_partkey" (Ra.scan "part")
                ~pk:"p_partkey")
             Rexpr.(col "l_quantity" <=: i 10))
          [ Ra.agg ~name:"s" Sum Rexpr.(col "l_extendedprice" *: col "p_retailprice") ]
      );
    ]
  in
  List.iter
    (fun (label, plan) ->
      Fmt.pr "@.%s:@." label;
      List.iter
        (fun device ->
          let cs = Tuner.explore cat plan device in
          let best = List.hd cs in
          Fmt.pr "  %-8s -> %-16s (%.4f ms;  field: %s)@."
            device.Config.name best.Tuner.label
            (1000.0 *. best.Tuner.cost_s)
            (String.concat ", "
               (List.map
                  (fun (c : Tuner.candidate) ->
                    Printf.sprintf "%s %.3f" c.label (1000.0 *. c.cost_s))
                  cs)))
        [ Config.cpu_single; Config.cpu_simd; Config.gpu ])
    workloads;
  Fmt.pr
    "@.The same query picks different implementations on different \
     devices — chosen by cost, not by hand.@."
