(* TPC-H through the relational frontend: generate a database, lower Q1 and
   Q6 to Voodoo, run both backends, decode and print the results, and show
   what the plans would cost across device models.

   Run with: dune exec examples/tpch_demo.exe *)

open Voodoo_vector
open Voodoo_relational
module E = Voodoo_engine.Engine
module Q = Voodoo_tpch.Queries
module Config = Voodoo_device.Config
module Cost = Voodoo_device.Cost

let sf = 0.01

let decode cat row =
  String.concat ", "
    (List.map
       (fun (name, v) ->
         let rendered =
           match v with
           | None -> "ε"
           | Some (Scalar.I code) -> (
               (* decode dictionary-encoded keys back to strings *)
               match Catalog.owner cat name with
               | Some tname -> (
                   let c = Table.column (Catalog.table cat tname) name in
                   match c.ctype with
                   | TStr -> Printf.sprintf "%S" (Table.decode c code)
                   | TDate -> Table.string_of_date code
                   | _ -> string_of_int code)
               | None -> string_of_int code)
           | Some (Scalar.F f) -> Printf.sprintf "%.2f" f
         in
         Printf.sprintf "%s=%s" name rendered)
       row)

let () =
  Fmt.pr "generating TPC-H at SF %g...@." sf;
  let cat = Voodoo_tpch.Dbgen.generate ~sf () in
  let li = Catalog.table cat "lineitem" in
  Fmt.pr "lineitem: %d rows, %d columns@.@." li.nrows (List.length li.columns);

  List.iter
    (fun name ->
      let q = Option.get (Q.find ~sf name) in
      Fmt.pr "=== %s ===@." q.name;
      (* the compiled backend, with kernel/event accounting *)
      let kernels = ref [] in
      let rows =
        q.run
          (fun c p ->
            let r = E.compiled_full c p in
            kernels := !kernels @ r.kernels;
            r.rows)
          cat
      in
      List.iter (fun r -> Fmt.pr "  %s@." (decode cat r)) rows;
      (* cross-check on the interpreter backend *)
      let rows' = q.run (fun c p -> E.interp c p) cat in
      let canon r = Reference.sort_rows (Reference.project_rows q.columns r) in
      assert (Reference.rows_equal (canon rows) (canon rows'));
      Fmt.pr "  (interpreter backend agrees)@.";
      List.iter
        (fun d ->
          Fmt.pr "  cost on %-8s %.3f ms@." d.Config.name
            (1000.0 *. (Cost.total d !kernels).total_s))
        Config.all;
      Fmt.pr "@.")
    [ "Q1"; "Q6" ]
