(* A non-relational algorithm in the algebra: LSD radix sort, built
   entirely from Partition and Scatter.

   Each pass partitions by one digit — Partition emits stable positions,
   Scatter reorders — so two 8-bit passes sort 16-bit keys.  Stability of
   Partition (paper Table 2: "scatters are performed in order within a
   value-run") is exactly what makes LSD radix sort correct, and the test
   here would catch any backend that broke it.

   Run with: dune exec examples/radix_sort.exe *)

open Voodoo_vector
open Voodoo_core
module B = Program.Builder
module Backend = Voodoo_compiler.Backend
module Exec = Voodoo_compiler.Exec

let n = 1 lsl 14
let radix = 256

(* one pass: reorder [v] by digit [shift] of attribute .key *)
let pass b v shift =
  let key = B.project b ~out:[ "k" ] (v, [ "key" ]) in
  let shifted = B.divide b key (B.const_int b (1 lsl shift)) in
  let digit = B.modulo b shifted (B.const_int b radix) in
  let z = B.zip b ~out1:[ "key" ] ~out2:[ "digit" ] (v, [ "key" ]) (digit, []) in
  let pivots = B.range b ~out:[ "p" ] (Lit radix) in
  let pos = B.partition b (z, [ "digit" ]) (pivots, []) in
  B.scatter b ~shape:z z (pos, [])

let program () =
  let b = B.create () in
  let input = B.load b "input" in
  let p1 = pass b input 0 in
  let p2 = pass b p1 8 in
  let sorted = B.project b ~name:"sorted" ~out:[ "key" ] (p2, [ "key" ]) in
  (B.finish b, sorted)

let () =
  let st = Random.State.make [| 99 |] in
  let data = Array.init n (fun _ -> Random.State.int st 65536) in
  let store =
    Store.of_list [ ("input", Svector.single [ "key" ] (Column.of_int_array data)) ]
  in
  let program, out = program () in
  let c = Backend.compile ~store program in
  let r = Backend.run c in
  let col = Svector.column (Exec.output r out) [ "key" ] in
  let got = Array.init n (fun i -> Scalar.to_int (Column.get_exn col i)) in
  let expect = Array.copy data in
  Array.sort compare expect;
  if got <> expect then begin
    Fmt.pr "radix sort FAILED@.";
    exit 1
  end;
  Fmt.pr "sorted %d 16-bit keys with two Partition+Scatter passes — OK@." n;
  Fmt.pr "first keys: %a ...@."
    (Fmt.list ~sep:Fmt.sp Fmt.int)
    (Array.to_list (Array.sub got 0 10));
  List.iter
    (fun d ->
      Fmt.pr "  %-8s %.4f ms@." d.Voodoo_device.Config.name
        (1000.0 *. (Exec.cost r d).Voodoo_device.Cost.total_s))
    [ Voodoo_device.Config.cpu_multi; Voodoo_device.Config.gpu ]
