(* Tunability: the paper's Figure 1/15 selection techniques as one-operator
   Voodoo rewrites, with the predicted cost on each device model.

   The three implementations differ by a couple of statements:
   - branching: a controlled FoldSelect (an if per tuple);
   - predication: multiply by the predicate outcome, no control flow;
   - vectorized: the same position-list plan with one extra Materialize
     bounded by a cache-sized control vector.

   Run with: dune exec examples/tuning_selection.exe *)

open Voodoo_vector
open Voodoo_core
module B = Program.Builder
module Backend = Voodoo_compiler.Backend
module Exec = Voodoo_compiler.Exec
module Config = Voodoo_device.Config
module Cost = Voodoo_device.Cost

let n = 1 lsl 18
let grain = 8192

let store seed =
  let st = Random.State.make [| seed |] in
  Store.of_list
    [
      ( "values",
        Svector.single [ "v" ]
          (Column.of_float_array
             (Array.init n (fun _ -> Random.State.float st 100.0))) );
    ]

let common b =
  let input = B.load b "values" in
  let ids = B.range b (Of_vector input) in
  let fold = B.divide b ids (B.const_int b grain) in
  (input, fold)

let branching ~cut =
  let b = B.create () in
  let input, fold = common b in
  let pred = B.greater b (B.const_float b cut) input in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "p" ] (fold, []) (pred, []) in
  let pos = B.fold_select b ~fold:[ "f" ] (z, [ "p" ]) in
  let vals = B.gather b input (pos, []) in
  let zz = B.zip b ~out1:[ "f" ] ~out2:[ "v" ] (fold, []) (vals, []) in
  let partial = B.fold_sum b ~fold:[ "f" ] (zz, [ "v" ]) in
  let _ = B.fold_sum b ~name:"total" (partial, []) in
  B.finish b

let predicated ~cut =
  let b = B.create () in
  let input, fold = common b in
  let pred = B.greater b (B.const_float b cut) input in
  let vp = B.multiply b input pred in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "v" ] (fold, []) (vp, []) in
  let partial = B.fold_sum b ~fold:[ "f" ] (z, [ "v" ]) in
  let _ = B.fold_sum b ~name:"total" (partial, []) in
  B.finish b

let vectorized ~cut =
  let b = B.create () in
  let input, fold = common b in
  let pred = B.greater b (B.const_float b cut) input in
  (* the single additional operator of the paper's Section 5.3 *)
  let chunked = B.materialize b ~chunks:(fold, []) pred in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "p" ] (fold, []) (chunked, []) in
  let pos = B.fold_select b ~fold:[ "f" ] (z, [ "p" ]) in
  let vals = B.gather b input (pos, []) in
  let zz = B.zip b ~out1:[ "f" ] ~out2:[ "v" ] (fold, []) (vals, []) in
  let partial = B.fold_sum b ~fold:[ "f" ] (zz, [ "v" ]) in
  let _ = B.fold_sum b ~name:"total" (partial, []) in
  B.finish b

let () =
  let st = store 42 in
  let devices = [ Config.cpu_single; Config.cpu_multi; Config.gpu ] in
  Fmt.pr "%-12s %-12s %12s %12s %12s@." "selectivity" "variant"
    "cpu-1t (ms)" "cpu-mt (ms)" "gpu (ms)";
  List.iter
    (fun sel ->
      List.iter
        (fun (name, mk) ->
          let c = Backend.compile ~store:st (mk ~cut:sel) in
          let r = Backend.run c in
          let costs =
            List.map
              (fun d -> 1000.0 *. (Exec.cost r d).Cost.total_s)
              devices
          in
          Fmt.pr "%-12s %-12s %12.4f %12.4f %12.4f@."
            (Printf.sprintf "%.0f%%" sel)
            name (List.nth costs 0) (List.nth costs 1) (List.nth costs 2))
        [ ("branching", branching); ("predicated", predicated);
          ("vectorized", vectorized) ])
    [ 1.0; 50.0; 99.0 ];
  Fmt.pr
    "@.Observe: branching hurts most at 50%% on speculating CPUs (the \
     mispredict bell); predication is flat; the GPU barely cares.@."
