(* Beyond relational plans: data-dependent *addresses* without
   data-dependent *control flow*.

   The paper argues (Section 2) that Voodoo's determinism still allows
   "decisions about what data to load (e.g., which is the next node in a
   tree index) as long as the operations on the data are known at compile
   time" — bounded-depth traversals unroll.  This example implements a
   fully unrolled vectorized binary search over a sorted key column: for a
   2^k-element index, exactly k rounds of

       mid  := pos + 2^(k-1-level)
       hit  := probe >= keys[mid]          (a Gather + a comparison)
       pos  := pos + hit * 2^(k-1-level)   (predicated descent)

   give every probe its lower-bound position, with no branches at all —
   the same shape as the SIMD binary searches of Polychroniou et al.,
   which the paper's related-work section says translate directly into
   Voodoo.

   Run with: dune exec examples/static_index.exe *)

open Voodoo_vector
open Voodoo_core
module B = Program.Builder
module Backend = Voodoo_compiler.Backend
module Exec = Voodoo_compiler.Exec

let levels = 14
let index_size = 1 lsl levels
let n_probes = 1 lsl 12

(* lower_bound(keys, p) = count of keys strictly below p, via k unrolled
   predicated rounds *)
let search_program () =
  let b = B.create () in
  let keys = B.load b "keys" in
  let probes = B.load b "probes" in
  let pos = ref (B.multiply b (B.range b (Of_vector probes)) (B.const_int b 0)) in
  for level = 0 to levels - 1 do
    let stride = 1 lsl (levels - 1 - level) in
    let mid = B.add_ b !pos (B.const_int b (stride - 1)) in
    let key_at_mid = B.gather b keys (mid, []) in
    (* descend right when the probe is above the separator *)
    let hit = B.greater b probes key_at_mid in
    let step = B.multiply b hit (B.const_int b stride) in
    pos := B.add_ b !pos step
  done;
  let final = B.break_ b ~name:"positions" !pos in
  (B.finish b, final)

let () =
  let st = Random.State.make [| 2024 |] in
  let keys =
    let a = Array.init index_size (fun _ -> Random.State.int st 1_000_000) in
    Array.sort compare a;
    a
  in
  let probes = Array.init n_probes (fun _ -> Random.State.int st 1_000_000) in
  let store =
    Store.of_list
      [
        ("keys", Svector.single [ "k" ] (Column.of_int_array keys));
        ("probes", Svector.single [ "p" ] (Column.of_int_array probes));
      ]
  in
  let program, out = search_program () in
  let c = Backend.compile ~store program in
  let r = Backend.run c in
  let col = Svector.column (Exec.output r out) [ "val" ] in

  (* the trusted scalar implementation *)
  let lower_bound p =
    let lo = ref 0 and hi = ref index_size in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if keys.(mid) < p then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (* the branchless descent computes the lower bound exactly for
     power-of-two index sizes *)
  let mismatches = ref 0 in
  Array.iteri
    (fun i p ->
      let got = Scalar.to_int (Column.get_exn col i) in
      if got <> lower_bound p then incr mismatches)
    probes;
  Fmt.pr "unrolled binary search: %d probes over a %d-key index, %d levels@."
    n_probes index_size levels;
  Fmt.pr "fragments: %d (one pipeline; every round is a fused gather)@."
    (List.length c.plan.frags);
  if !mismatches > 0 then begin
    Fmt.pr "MISMATCHES: %d@." !mismatches;
    exit 1
  end;
  Fmt.pr "every probe position equals the scalar lower_bound — OK@.";
  (* what the search costs on each device *)
  List.iter
    (fun d ->
      Fmt.pr "  %-8s %.4f ms@." d.Voodoo_device.Config.name
        (1000.0 *. (Exec.cost r d).Voodoo_device.Cost.total_s))
    Voodoo_device.Config.all
