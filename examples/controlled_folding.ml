(* Controlled folding: the paper's Figure 3 → Figure 4 transformation.

   The same hierarchical aggregation is retargeted from multithreaded
   (partition-sized runs, via Divide) to SIMD-style (round-robin lanes, via
   Modulo) by changing two lines — the textual diff the paper shows in
   Figure 4.  Watch the fragments change extent and intent while the
   answer stays the same.

   Run with: dune exec examples/controlled_folding.exe *)

open Voodoo_vector
open Voodoo_core
module Backend = Voodoo_compiler.Backend
module Exec = Voodoo_compiler.Exec

let multithreaded =
  {|
    input := Load("input")
    ids := Range(input)
    partitionSize := Constant(1024)
    partitionIDs := Divide(ids, partitionSize)
    positions := Partition(partitionIDs, partitionIDs)
    inputWPart := Zip(.val, input, .partition, partitionIDs)
    partInput := Scatter(inputWPart, positions)
    pSum := FoldSum(partInput.val, partInput.partition)
    totalSum := FoldSum(pSum)
  |}

(* the Figure 4 diff: partitionSize/Divide become laneCount/Modulo *)
let simd =
  {|
    input := Load("input")
    ids := Range(input)
    laneCount := Constant(8)
    partitionIDs := Modulo(ids, laneCount)
    positions := Partition(partitionIDs, partitionIDs)
    inputWPart := Zip(.val, input, .partition, partitionIDs)
    partInput := Scatter(inputWPart, positions)
    pSum := FoldSum(partInput.val, partInput.partition)
    totalSum := FoldSum(pSum)
  |}

let () =
  let n = 1 lsl 16 in
  let input = Column.of_int_array (Array.init n (fun i -> i mod 10)) in
  let store = Store.of_list [ ("input", Svector.single [ "val" ] input) ] in
  let show name text =
    let c = Backend.compile ~store (Parse.program text) in
    let r = Backend.run c in
    let total = Svector.column (Exec.output r "totalSum") [ "val" ] in
    Fmt.pr "--- %s ---@.%a@.total at slot 0: %a@.@." name Backend.pp_plan c
      (Fmt.option Scalar.pp) (Column.get total 0)
  in
  show "multithreaded (runs of 1024)" multithreaded;
  show "SIMD lanes (modulo 8: round-robin lane partitioning)" simd;
  Fmt.pr
    "The multithreaded version folds runs of 1024 in parallel work items \
     (extent n/1024, intent 1024) with its partition and scatter fully \
     virtualized; the SIMD variant's Modulo control vector instead \
     scatters the tuples round-robin into lane-major order before \
     folding.  In C these are entirely different programs (TBB vs \
     intrinsics, the paper's Figures 5 and 6); in Voodoo it is the \
     two-line diff of Figure 4.@."
