(* Quickstart: the paper's Figure 3 program — multithreaded hierarchical
   aggregation — written in the textual SSA form, type-checked, executed by
   both backends, and inspected as fragments and OpenCL.

   Run with: dune exec examples/quickstart.exe *)

open Voodoo_vector
open Voodoo_core
module Interp = Voodoo_interp.Interp
module Backend = Voodoo_compiler.Backend

let program_text =
  {|
    input := Load("input") // single column: val
    ids := Range(input)
    partitionSize := Constant(1024)
    partitionIDs := Divide(ids, partitionSize)
    positions := Partition(partitionIDs, partitionIDs)
    inputWPart := Zip(.val, input, .partition, partitionIDs)
    partInput := Scatter(inputWPart, positions)
    pSum := FoldSum(partInput.val, partInput.partition)
    totalSum := FoldSum(pSum)
  |}

let () =
  (* a million floats to sum *)
  let n = 1 lsl 20 in
  let input = Column.of_float_array (Array.init n (fun i -> float_of_int (i mod 100))) in
  let store = Store.of_list [ ("input", Svector.single [ "val" ] input) ] in

  (* parse and validate *)
  let program = Parse.program program_text in
  Typing.check ~load_schema:(Store.load_schema store) program;
  Fmt.pr "program:@.%a@.@." Pretty.pp_program program;

  (* run on the reference interpreter *)
  let env = Interp.run store program in
  let total = Svector.column (Hashtbl.find env "totalSum") [ "val" ] in
  Fmt.pr "interpreter total: %a@." (Fmt.option Scalar.pp) (Column.get total 0);

  (* compile: control vectors vanish, the scatter is virtual, the partial
     fold runs with extent n/1024 and intent 1024 *)
  let compiled = Backend.compile ~store program in
  Fmt.pr "@.fragments:@.%a@.@." Backend.pp_plan compiled;
  let r = Backend.run compiled in
  let total' =
    Svector.column (Voodoo_compiler.Exec.output r "totalSum") [ "val" ]
  in
  Fmt.pr "compiled total:    %a@.@." (Fmt.option Scalar.pp) (Column.get total' 0);

  (* the generated OpenCL *)
  Fmt.pr "generated OpenCL:@.%s@." (Backend.source compiled);

  (* what would it cost? *)
  List.iter
    (fun d ->
      Fmt.pr "%-10s %a@." d.Voodoo_device.Config.name Voodoo_device.Cost.pp
        (Voodoo_compiler.Exec.cost r d))
    Voodoo_device.Config.all
