(* Hash tables with collision handling, inside a deterministic algebra.

   The paper's related-work section discusses translating the SIMD
   hash-table algorithms of Polychroniou et al. into Voodoo: write-once
   structures work directly, and bounded collision chains unroll — "the
   program grows linearly with the number of iterations", which bounds the
   chain length to a reasonably small constant.

   This example builds a linear-probing hash table (outside the algebra,
   as a write-once persistent vector — the build is the part a frontend
   would stage), then runs the *probe* side fully in Voodoo: K unrolled
   probe rounds, each a gather + key comparison, combined by predication
   so exactly the first matching slot contributes.  No branches, no loops,
   portable to every backend.

   Run with: dune exec examples/hash_probe.exe *)

open Voodoo_vector
open Voodoo_core
module B = Program.Builder
module Backend = Voodoo_compiler.Backend
module Exec = Voodoo_compiler.Exec

let table_bits = 12
let table_size = 1 lsl table_bits
let n_keys = table_size * 3 / 8 (* load factor 0.375 *)
let n_probes = 1 lsl 13
let max_chain = 8 (* collision chains longer than this fail the build *)

(* multiplicative hashing, taking the high bits (the low bits of a product
   are a poor hash).  The build retries multipliers until every collision
   chain fits the unrolled probe depth — the staging a frontend would do. *)
let shift = 32 - table_bits
let multipliers = [ 2654435761; 2246822519; 3266489917; 668265263 ]
let hash ~m k = (k * m) lsr shift land (table_size - 1)

exception Chain_too_long

let () =
  let st = Random.State.make [| 7 |] in
  (* distinct keys with values; slot -1 marks empty *)
  let keys = Hashtbl.create n_keys in
  while Hashtbl.length keys < n_keys do
    Hashtbl.replace keys (1 + Random.State.int st 1_000_000) ()
  done;
  let tbl_keys = Array.make table_size (-1) in
  let tbl_vals = Array.make table_size 0 in
  let chain_max = ref 0 in
  let try_build m =
    Array.fill tbl_keys 0 table_size (-1);
    chain_max := 0;
    Hashtbl.iter
      (fun k () ->
        let rec place slot steps =
          if steps >= max_chain then raise Chain_too_long
          else if tbl_keys.(slot) = -1 then begin
            tbl_keys.(slot) <- k;
            tbl_vals.(slot) <- k * 3;
            chain_max := max !chain_max steps
          end
          else place ((slot + 1) land (table_size - 1)) (steps + 1)
        in
        place (hash ~m k) 0)
      keys
  in
  let multiplier =
    let rec go = function
      | [] -> failwith "no multiplier bounds the chains; lower the load factor"
      | m :: rest -> ( try try_build m; m with Chain_too_long -> go rest)
    in
    go multipliers
  in
  let some_keys = Hashtbl.fold (fun k () acc -> k :: acc) keys [] in
  let probes =
    Array.init n_probes (fun i ->
        if i land 1 = 0 then List.nth some_keys (Random.State.int st n_keys)
        else 1 + Random.State.int st 1_000_000 (* mostly misses *))
  in
  let store =
    Store.of_list
      [
        ("tbl_keys", Svector.single [ "k" ] (Column.of_int_array tbl_keys));
        ("tbl_vals", Svector.single [ "v" ] (Column.of_int_array tbl_vals));
        ("probes", Svector.single [ "p" ] (Column.of_int_array probes));
      ]
  in

  (* the probe program: sum of values of matching probes *)
  let b = B.create () in
  let tk = B.load b "tbl_keys" in
  let tv = B.load b "tbl_vals" in
  let probes_v = B.load b "probes" in
  (* slot0 = hash(p): multiplicative hash then mask via Modulo *)
  let hashed =
    let product = B.multiply b probes_v (B.const_int b multiplier) in
    let high = B.divide b product (B.const_int b (1 lsl shift)) in
    B.modulo b high (B.const_int b table_size)
  in
  let acc = ref (B.const_int b 0) in
  for round = 0 to max_chain - 1 do
    let slot =
      if round = 0 then hashed
      else B.modulo b (B.add_ b hashed (B.const_int b round)) (B.const_int b table_size)
    in
    let slot_key = B.gather b tk (slot, []) in
    let hit = B.equals b slot_key probes_v in
    let slot_val = B.gather b tv (slot, []) in
    let contrib = B.multiply b hit slot_val in
    acc := B.add_ b !acc contrib
  done;
  (* hierarchical sum of per-probe results *)
  let ids = B.range b (Of_vector probes_v) in
  let fold = B.divide b ids (B.const_int b 4096) in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "v" ] (fold, []) (!acc, []) in
  let partial = B.fold_sum b ~fold:[ "f" ] (z, [ "v" ]) in
  let total = B.fold_sum b ~name:"total" (partial, []) in
  let program = B.finish b in

  let c = Backend.compile ~store program in
  let r = Backend.run c in
  let got =
    Scalar.to_int
      (Column.get_exn (Svector.column (Exec.output r total) [ "val" ]) 0)
  in
  let expect =
    Array.fold_left
      (fun acc p -> if Hashtbl.mem keys p then acc + (p * 3) else acc)
      0 probes
  in
  Fmt.pr "probed %d keys against a %d-slot table (load 0.375, max chain %d)@."
    n_probes table_size !chain_max;
  if got <> expect then begin
    Fmt.pr "FAILED: voodoo %d vs scalar %d@." got expect;
    exit 1
  end;
  Fmt.pr "voodoo sum-of-matches equals the scalar hash join: %d — OK@." got;
  Fmt.pr "fragments: %d (all %d probe rounds fused into one kernel)@."
    (List.length c.plan.frags) max_chain;
  List.iter
    (fun d ->
      Fmt.pr "  %-8s %.4f ms@." d.Voodoo_device.Config.name
        (1000.0 *. (Exec.cost r d).Voodoo_device.Cost.total_s))
    Voodoo_device.Config.all
