(* Benchmark-kit tests: the hand-coded ("Implemented in C") variants and
   the Voodoo programs of every micro-benchmark must compute identical
   answers, and their recorded events must show the effects each experiment
   is about. *)

open Voodoo_benchkit
open Voodoo_device

let check = Alcotest.(check bool)

let near a b =
  Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let n = 1 lsl 14

(* ---------- selection ---------- *)

let values = lazy (Workloads.selection_input ~n ~seed:101)
let sel_store = lazy (Micro.selection_store (Lazy.force values))

let test_selection_agreement () =
  let values = Lazy.force values and store = Lazy.force sel_store in
  List.iter
    (fun cut ->
      let expect = (Handcoded.select_branching ~values ~cut).result in
      List.iter
        (fun (name, r) ->
          if not (near expect r) then
            Alcotest.failf "%s at cut %.2f: %f vs %f" name cut r expect)
        [
          ("hand predicated", (Handcoded.select_predicated ~values ~cut).result);
          ("hand vectorized", (Handcoded.select_vectorized ~values ~cut ~chunk:4096).result);
          ("voodoo branching", (Micro.select_branching ~store ~cut ()).result);
          ("voodoo branch-free", (Micro.select_branch_free ~store ~cut ()).result);
          ("voodoo predicated", (Micro.select_predicated ~store ~cut ()).result);
          ("voodoo vectorized", (Micro.select_vectorized ~store ~cut ()).result);
        ])
    [ 0.0; 1.0; 37.5; 99.0; 100.0 ]

let total_branches kernels =
  List.fold_left (fun acc (_, ev) -> acc +. Events.total_branches ev) 0.0 kernels

let test_selection_events () =
  let store = Lazy.force sel_store in
  let branching = Micro.select_branching ~store ~cut:50.0 () in
  let predicated = Micro.select_predicated ~store ~cut:50.0 () in
  check "branching branches per tuple" true
    (total_branches branching.kernels >= float_of_int n);
  check "predication has no branches" true
    (total_branches predicated.kernels = 0.0)

(* ---------- layout ---------- *)

let test_layout_agreement_and_patterns () =
  let rows = 1 lsl 16 in
  let c1, c2 = Workloads.target_table ~rows ~seed:102 in
  List.iter
    (fun access ->
      let positions = Workloads.positions ~n ~target_rows:rows ~access ~seed:103 in
      let store = Micro.layout_store ~positions ~c1 ~c2 in
      let expect = (Handcoded.layout_single_loop ~positions ~c1 ~c2).result in
      List.iter
        (fun (name, r) ->
          if not (near expect r) then Alcotest.failf "%s: %f vs %f" name r expect)
        [
          ("hand separate", (Handcoded.layout_separate_loops ~positions ~c1 ~c2).result);
          ("hand transform", (Handcoded.layout_transform ~positions ~c1 ~c2).result);
          ("voodoo single", (Micro.layout_single_loop ~store ()).result);
          ("voodoo separate", (Micro.layout_separate_loops ~store ()).result);
          ("voodoo transform", (Micro.layout_transform ~store ()).result);
        ])
    [ Workloads.Sequential; Workloads.Random ]

let has_pattern kernels p =
  List.exists
    (fun (_, (ev : Events.t)) ->
      Hashtbl.fold
        (fun _ (s : Events.mem_site) acc -> acc || p s.pattern)
        ev.mem false)
    kernels

let test_layout_patterns () =
  let rows = 1 lsl 16 in
  let c1, c2 = Workloads.target_table ~rows ~seed:104 in
  let mk access =
    let positions = Workloads.positions ~n ~target_rows:rows ~access ~seed:105 in
    Micro.layout_store ~positions ~c1 ~c2
  in
  let seq = Micro.layout_single_loop ~store:(mk Workloads.Sequential) () in
  let rand = Micro.layout_single_loop ~store:(mk Workloads.Random) () in
  check "sequential positions classified sequential" false
    (has_pattern seq.kernels (function Cache.Random _ -> true | _ -> false));
  check "random positions classified random" true
    (has_pattern rand.kernels (function Cache.Random _ -> true | _ -> false))

(* ---------- fk join ---------- *)

let test_fkjoin_agreement () =
  let rows = 1 lsl 16 in
  let fact_v, fk = Workloads.fk_fact ~n ~target_rows:rows ~seed:106 in
  let target, _ = Workloads.target_table ~rows ~seed:107 in
  let store = Micro.fkjoin_store ~fact_v ~fk ~target in
  List.iter
    (fun cut ->
      let expect = (Handcoded.fkjoin_branching ~fact_v ~fk ~target ~cut).result in
      List.iter
        (fun (name, r) ->
          if not (near expect r) then
            Alcotest.failf "%s at cut %.1f: %f vs %f" name cut r expect)
        [
          ("hand pred-agg", (Handcoded.fkjoin_predicated_agg ~fact_v ~fk ~target ~cut).result);
          ("hand pred-lookup", (Handcoded.fkjoin_predicated_lookup ~fact_v ~fk ~target ~cut).result);
          ("voodoo branching", (Micro.fkjoin_branching ~store ~cut ()).result);
          ("voodoo pred-agg", (Micro.fkjoin_predicated_agg ~store ~cut ()).result);
          ("voodoo pred-lookup", (Micro.fkjoin_predicated_lookup ~store ~cut ()).result);
        ])
    [ 5.0; 50.0; 95.0 ]

let test_fkjoin_hot_detection () =
  (* at low selectivity the predicated-lookup positions concentrate on slot
     zero, which the executor must classify as a hot line *)
  let rows = 1 lsl 16 in
  let fact_v, fk = Workloads.fk_fact ~n ~target_rows:rows ~seed:108 in
  let target, _ = Workloads.target_table ~rows ~seed:109 in
  let store = Micro.fkjoin_store ~fact_v ~fk ~target in
  let r = Micro.fkjoin_predicated_lookup ~store ~cut:5.0 () in
  check "hot line detected" true
    (has_pattern r.kernels (function Cache.Single_hot -> true | _ -> false))

let () =
  Alcotest.run "benchkit"
    [
      ( "selection",
        [
          Alcotest.test_case "agreement" `Quick test_selection_agreement;
          Alcotest.test_case "events" `Quick test_selection_events;
        ] );
      ( "layout",
        [
          Alcotest.test_case "agreement" `Quick test_layout_agreement_and_patterns;
          Alcotest.test_case "patterns" `Quick test_layout_patterns;
        ] );
      ( "fkjoin",
        [
          Alcotest.test_case "agreement" `Quick test_fkjoin_agreement;
          Alcotest.test_case "hot detection" `Quick test_fkjoin_hot_detection;
        ] );
    ]
