(* Interpreter semantics tests: each operator, plus the paper's worked
   figures (7, 9, 11) and the Figure 3 end-to-end aggregation. *)

open Voodoo_vector
open Voodoo_core
module Interp = Voodoo_interp.Interp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ints xs = Column.of_int_array (Array.of_list xs)
let int_opts xs = Column.of_scalars Int (List.map (Option.map (fun i -> Scalar.I i)) xs)

let slots col = List.map (Option.map Scalar.to_int) (Column.to_scalars col)

let store_of xs = Store.of_list xs

let run_text store text =
  let p = Parse.program text in
  Interp.run store p

let col_of env id = Svector.column (Hashtbl.find env id) []

let the_col env id =
  let v : Svector.t = Hashtbl.find env id in
  match Svector.keypaths v with
  | [ kp ] -> Svector.column v kp
  | kps ->
      Alcotest.failf "expected single attribute, got %d" (List.length kps)

let _ = col_of

(* ---------- Figure 7: controlled folds ---------- *)

let test_figure7_fold_sum () =
  (* .fold = 1 1 1 1 0 0 0 0 ; .value = 2 0 4 1 3 1 5 0
     foldSum gives .sum = 7 ε ε ε 9 ε ε ε *)
  let vec =
    Svector.of_columns
      [
        ([ "fold" ], ints [ 1; 1; 1; 1; 0; 0; 0; 0 ]);
        ([ "value" ], ints [ 2; 0; 4; 1; 3; 1; 5; 0 ]);
      ]
  in
  let store = store_of [ ("v", vec) ] in
  let env =
    run_text store {| v := Load("v")
                      s := FoldSum(.sum, v.value, fold=.fold) |}
  in
  Alcotest.(check (list (option int)))
    "figure 7 sum"
    [ Some 7; None; None; None; Some 9; None; None; None ]
    (slots (the_col env "s"))

let test_fold_sum_no_control () =
  let store = store_of [ ("v", Svector.single [ "x" ] (ints [ 1; 2; 3; 4 ])) ] in
  let env = run_text store {| v := Load("v")
                              s := FoldSum(v) |} in
  Alcotest.(check (list (option int)))
    "single run sum at slot 0"
    [ Some 10; None; None; None ]
    (slots (the_col env "s"))

let test_fold_max_min_count () =
  let vec =
    Svector.of_columns
      [
        ([ "fold" ], ints [ 0; 0; 1; 1; 1 ]);
        ([ "value" ], ints [ 3; 9; 4; 1; 5 ]);
      ]
  in
  let store = store_of [ ("v", vec) ] in
  let env =
    run_text store
      {| v := Load("v")
         mx := FoldMax(.m, v.value, fold=.fold)
         mn := FoldMin(.m, v.value, fold=.fold)
         ct := FoldCount(.c, v.value, fold=.fold) |}
  in
  Alcotest.(check (list (option int)))
    "max" [ Some 9; None; Some 5; None; None ] (slots (the_col env "mx"));
  Alcotest.(check (list (option int)))
    "min" [ Some 3; None; Some 1; None; None ] (slots (the_col env "mn"));
  Alcotest.(check (list (option int)))
    "count" [ Some 2; None; Some 3; None; None ] (slots (the_col env "ct"))

let test_fold_skips_empty_slots () =
  (* Aggregating a vector that contains ε (e.g. the output of a previous
     fold) skips the empties, as in Figure 9's second foldSum. *)
  let vec =
    Svector.of_columns
      [ ([ "v" ], int_opts [ Some 8; Some 2; None; None; Some 5; None ]) ]
  in
  let store = store_of [ ("v", vec) ] in
  let env = run_text store {| v := Load("v")
                              s := FoldSum(v) |} in
  check "sum skips eps" true (Column.get (the_col env "s") 0 = Some (Scalar.I 15))

let test_fold_all_empty_run () =
  let vec =
    Svector.of_columns
      [
        ([ "fold" ], ints [ 0; 0; 1; 1 ]);
        ([ "value" ], int_opts [ None; None; Some 3; Some 4 ]);
      ]
  in
  let store = store_of [ ("v", vec) ] in
  let env =
    run_text store
      {| v := Load("v")
         s := FoldSum(.s, v.value, fold=.fold)
         m := FoldMax(.m, v.value, fold=.fold) |}
  in
  check "sum of empty run is 0" true (Column.get (the_col env "s") 0 = Some (Scalar.I 0));
  check "max of empty run is eps" true (Column.get (the_col env "m") 0 = None)

(* ---------- FoldSelect (Figure 9 pipeline) ---------- *)

let test_figure9_pipeline () =
  (* input 1 3 7 9 4 2 1 7 9 2 5 7, grainsize 4, predicate > 6 *)
  let input = ints [ 1; 3; 7; 9; 4; 2; 1; 7; 9; 2; 5; 7 ] in
  let store = store_of [ ("in", Svector.single [ "v" ] input) ] in
  let env =
    run_text store
      {|
        in := Load("in")
        ids := Range(in)
        grain := Constant(4)
        fold := Divide(ids, grain)
        six := Constant(6)
        pred := Greater(in, six)
        z := Zip(.fold, fold, .p, pred)
        pos := FoldSelect(.pos, z.p, fold=.fold)
      |}
  in
  Alcotest.(check (list (option int)))
    "figure 9 foldSelect"
    [
      Some 2; Some 3; None; None; Some 7; None; None; None; Some 8; Some 11;
      None; None;
    ]
    (slots (the_col env "pos"))

let test_fold_select_gather_then_sum () =
  (* Continue the Figure 9 pipeline: gather qualifying values, then sum. *)
  let input = ints [ 1; 3; 7; 9; 4; 2; 1; 7; 9; 2; 5; 7 ] in
  let store = store_of [ ("in", Svector.single [ "v" ] input) ] in
  let env =
    run_text store
      {|
        in := Load("in")
        ids := Range(in)
        grain := Constant(4)
        fold := Divide(ids, grain)
        six := Constant(6)
        pred := Greater(in, six)
        z := Zip(.fold, fold, .p, pred)
        pos := FoldSelect(.pos, z.p, fold=.fold)
        vals := Gather(in, pos)
        total := FoldSum(vals)
      |}
  in
  (* qualifying values: 7 9 7 9 7 -> 39 *)
  check "total" true (Column.get (the_col env "total") 0 = Some (Scalar.I 39))

(* ---------- Gather / Scatter ---------- *)

let test_gather_out_of_bounds () =
  let store =
    store_of
      [
        ("d", Svector.single [ "x" ] (ints [ 10; 20; 30 ]));
        ("p", Svector.single [ "pos" ] (ints [ 2; 5; 0; -1 ]));
      ]
  in
  let env = run_text store {| d := Load("d")
                              p := Load("p")
                              g := Gather(d, p) |} in
  Alcotest.(check (list (option int)))
    "oob gives eps" [ Some 30; None; Some 10; None ] (slots (the_col env "g"))

let test_gather_multi_attribute () =
  let d =
    Svector.of_columns
      [ ([ "a" ], ints [ 1; 2; 3 ]); ([ "b" ], ints [ 10; 20; 30 ]) ]
  in
  let store =
    store_of [ ("d", d); ("p", Svector.single [ "pos" ] (ints [ 1; 1; 0 ])) ]
  in
  let env = run_text store {| d := Load("d")
                              p := Load("p")
                              g := Gather(d, p) |} in
  let g = Hashtbl.find env "g" in
  Alcotest.(check (list (option int)))
    "attr a" [ Some 2; Some 2; Some 1 ] (slots (Svector.column g [ "a" ]));
  Alcotest.(check (list (option int)))
    "attr b" [ Some 20; Some 20; Some 10 ] (slots (Svector.column g [ "b" ]))

let test_scatter_basic_and_conflicts () =
  let store =
    store_of
      [
        ("d", Svector.single [ "x" ] (ints [ 1; 2; 3; 4 ]));
        ("p", Svector.single [ "pos" ] (ints [ 3; 0; 3; 1 ]));
      ]
  in
  let env = run_text store {| d := Load("d")
                              p := Load("p")
                              s := Scatter(d, d, p) |}
  in
  (* slot 3 written twice: later value (3) wins; slot 2 never written -> eps *)
  Alcotest.(check (list (option int)))
    "scatter with conflict" [ Some 2; Some 4; None; Some 3 ]
    (slots (the_col env "s"))

let test_scatter_two_arg_sugar () =
  let store =
    store_of
      [
        ("d", Svector.single [ "x" ] (ints [ 5; 6 ]));
        ("p", Svector.single [ "pos" ] (ints [ 1; 0 ]));
      ]
  in
  let env = run_text store {| d := Load("d")
                              p := Load("p")
                              s := Scatter(d, p) |} in
  Alcotest.(check (list (option int)))
    "reversed" [ Some 6; Some 5 ] (slots (the_col env "s"))

(* scatter then gather with the same permutation is the identity *)
let prop_scatter_gather_inverse =
  QCheck.Test.make ~name:"scatter/gather with a permutation is identity" ~count:200
    QCheck.(pair (int_range 1 50) int)
    (fun (n, seed) ->
      let st = Random.State.make [| seed |] in
      let perm = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      let data = Array.init n (fun i -> 100 + i) in
      let store =
        store_of
          [
            ("d", Svector.single [ "x" ] (Column.of_int_array data));
            ("p", Svector.single [ "pos" ] (Column.of_int_array perm));
          ]
      in
      let env =
        run_text store
          {| d := Load("d")
             p := Load("p")
             s := Scatter(d, d, p)
             inv := Gather(s, p) |}
      in
      slots (the_col env "inv")
      = List.map (fun i -> Some (100 + i)) (List.init n Fun.id))

(* ---------- Partition (Figure 11 style) ---------- *)

let test_partition_stable () =
  (* values a b a c c b c a d b encoded 0 1 0 2 2 1 2 0 3 1; pivots 0..3.
     Figure 11's position vector: 0 3 1 6 7 4 8 2 9 5 *)
  let store =
    store_of
      [
        ("v", Svector.single [ "g" ] (ints [ 0; 1; 0; 2; 2; 1; 2; 0; 3; 1 ]));
        ("piv", Svector.single [ "p" ] (ints [ 0; 1; 2; 3 ]));
      ]
  in
  let env =
    run_text store {| v := Load("v")
                      piv := Load("piv")
                      pos := Partition(v, piv) |}
  in
  Alcotest.(check (list (option int)))
    "figure 11 positions"
    [ Some 0; Some 3; Some 1; Some 6; Some 7; Some 4; Some 8; Some 2; Some 9; Some 5 ]
    (slots (the_col env "pos"))

let test_partition_scatter_fold_group_by () =
  (* Figure 11 end-to-end: partition, scatter, per-group sums compacted. *)
  let store =
    store_of
      [
        ("t",
         Svector.of_columns
           [
             ([ "g" ], ints [ 0; 1; 0; 2; 2; 1; 2; 0; 3; 1 ]);
             ([ "v" ], ints [ 2; 0; 1; 4; 6; 2; 0; 9; 2; 7 ]);
           ]);
        ("piv", Svector.single [ "p" ] (ints [ 0; 1; 2; 3 ]));
      ]
  in
  let env =
    run_text store
      {|
        t := Load("t")
        piv := Load("piv")
        pos := Partition(t.g, piv)
        grouped := Scatter(t, t, pos)
        sums := FoldSum(.s, grouped.v, fold=.g)
        positions := FoldSelect(.pos, sums.s)
        compact := Gather(sums, positions)
      |}
  in
  (* group sums: g0: 2+1+9=12, g1: 0+2+7=9, g2: 4+6+0=10, g3: 2 *)
  let compact = Hashtbl.find env "compact" in
  Alcotest.(check (list (option int)))
    "compacted group sums"
    [ Some 12; Some 9; Some 10; Some 2; None; None; None; None; None; None ]
    (slots (Svector.column compact [ "s" ]))

(* ---------- FoldScan ---------- *)

let test_fold_scan () =
  let vec =
    Svector.of_columns
      [
        ([ "fold" ], ints [ 0; 0; 0; 1; 1 ]);
        ([ "v" ], ints [ 1; 2; 3; 10; 20 ]);
      ]
  in
  let store = store_of [ ("x", vec) ] in
  let env =
    run_text store {| x := Load("x")
                      s := FoldScan(.s, x.v, fold=.fold) |}
  in
  Alcotest.(check (list (option int)))
    "per-run inclusive prefix sums"
    [ Some 1; Some 3; Some 6; Some 10; Some 30 ]
    (slots (the_col env "s"))

(* branch-free selection via FoldScan + Scatter (paper Figure 1's
   cursor-arithmetic technique, expressed in the algebra) *)
let test_branch_free_selection () =
  let store =
    store_of [ ("in", Svector.single [ "v" ] (ints [ 5; 9; 3; 8; 7; 1 ])) ]
  in
  let env =
    run_text store
      {|
        in := Load("in")
        six := Constant(6)
        pred := Greater(in, six)
        scan := FoldScan(pred)
        pos := Subtract(scan, pred)
        out := Scatter(in, in, pos)
      |}
  in
  (* qualifying: 9 8 7 -> positions 0 1 2; rest collapse onto earlier slots *)
  let out = slots (the_col env "out") in
  check "first three are the qualifiers" true
    (match out with
     | Some 9 :: Some 8 :: Some 7 :: _ -> true
     | _ -> false)

(* ---------- shape ops, zip/project/upsert, persist ---------- *)

let test_range_cross_constant () =
  let store = store_of [ ("v", Svector.single [ "x" ] (ints [ 0; 0; 0 ])) ] in
  let env =
    run_text store
      {|
        v := Load("v")
        r := Range(.i, 5, v, 2)
        a := Range(.i, 0, 2, 1)
        b := Range(.i, 0, 3, 1)
        c := Cross(.p1, a, .p2, b)
      |}
  in
  Alcotest.(check (list (option int)))
    "range" [ Some 5; Some 7; Some 9 ] (slots (the_col env "r"));
  let c = Hashtbl.find env "c" in
  check_int "cross size" 6 (Svector.length c);
  Alcotest.(check (list (option int)))
    "cross major"
    [ Some 0; Some 0; Some 0; Some 1; Some 1; Some 1 ]
    (slots (Svector.column c [ "p1" ]));
  Alcotest.(check (list (option int)))
    "cross minor"
    [ Some 0; Some 1; Some 2; Some 0; Some 1; Some 2 ]
    (slots (Svector.column c [ "p2" ]))

let test_eps_propagates_through_binary () =
  let store =
    store_of
      [
        ("a", Svector.single [ "x" ] (int_opts [ Some 1; None; Some 3 ]));
        ("b", Svector.single [ "y" ] (ints [ 10; 20; 30 ]));
      ]
  in
  let env = run_text store {| a := Load("a")
                              b := Load("b")
                              c := Add(a, b) |} in
  Alcotest.(check (list (option int)))
    "eps propagates" [ Some 11; None; Some 33 ] (slots (the_col env "c"))

let test_persist_roundtrip () =
  let store = store_of [ ("in", Svector.single [ "v" ] (ints [ 1; 2 ])) ] in
  let _ =
    run_text store {| in := Load("in")
                      s := FoldSum(in)
                      p := Persist("out", s) |}
  in
  let out = Store.find_exn store "out" in
  check "persisted" true (Column.get (Svector.column out [ "val" ]) 0 = Some (Scalar.I 3))

let test_eval_slice () =
  (* Interp.eval runs only the dependency slice of the requested vector *)
  let store = store_of [ ("in", Svector.single [ "v" ] (ints [ 1; 2; 3 ])) ] in
  let p =
    Parse.program
      {| in := Load("in")
         s := FoldSum(in)
         boom := Gather(in, in) |}
  in
  (* "boom" would gather out of bounds harmlessly, but more to the point,
     evaluating "s" must not require it *)
  let v = Interp.eval store p "s" in
  check "sliced eval" true
    (Column.get (Svector.column v [ "val" ]) 0 = Some (Scalar.I 6))

let test_materialize_break_identity () =
  let store = store_of [ ("in", Svector.single [ "v" ] (ints [ 4; 5; 6 ])) ] in
  let env =
    run_text store
      {| in := Load("in")
         m := Materialize(in)
         b := Break(m)
         s := FoldSum(b) |}
  in
  check "identity chain" true (Column.get (the_col env "s") 0 = Some (Scalar.I 15))

(* ---------- fold semantics against an independent model ---------- *)

(* Executable specification: split values by the fold attribute's runs,
   aggregate each run, place results at run starts.  Generated inputs get
   random run structures and ε patterns. *)
let prop_fold_agg_model =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 40 in
      let* vals = list_size (return n) (option (int_range (-20) 20)) in
      let* folds = list_size (return n) (int_range 0 3) in
      return (vals, folds))
  in
  QCheck.Test.make ~name:"fold aggregates match a run-by-run model" ~count:300
    (QCheck.make gen)
    (fun (vals, folds) ->
      let n = List.length vals in
      let vec =
        Svector.of_columns
          [
            ([ "fold" ], ints folds);
            ( [ "value" ],
              Column.of_scalars Int
                (List.map (Option.map (fun i -> Scalar.I i)) vals) );
          ]
      in
      let store = store_of [ ("v", vec) ] in
      let env =
        run_text store
          {| v := Load("v")
             s := FoldSum(.s, v.value, fold=.fold)
             m := FoldMax(.m, v.value, fold=.fold)
             c := FoldCount(.c, v.value, fold=.fold) |}
      in
      (* model *)
      let vals = Array.of_list vals and folds = Array.of_list folds in
      let expect_sum = Array.make n None
      and expect_max = Array.make n None
      and expect_count = Array.make n None in
      let start = ref 0 in
      let flush stop =
        let in_run = Array.to_list (Array.sub vals !start (stop - !start)) in
        let valid = List.filter_map Fun.id in_run in
        expect_sum.(!start) <- Some (List.fold_left ( + ) 0 valid);
        expect_count.(!start) <-
          (match valid with [] -> Some 0 | l -> Some (List.length l));
        expect_max.(!start) <-
          (match valid with [] -> None | l -> Some (List.fold_left max min_int l));
        start := stop
      in
      for i = 1 to n - 1 do
        if folds.(i) <> folds.(i - 1) then flush i
      done;
      flush n;
      let matches col expect =
        List.for_all2
          (fun got want -> got = want)
          (slots (the_col env col))
          (Array.to_list expect)
      in
      matches "s" expect_sum && matches "m" expect_max && matches "c" expect_count)

(* more operator edge cases *)

let test_bitshift_logicalor () =
  let store = store_of [ ("v", Svector.single [ "x" ] (ints [ 1; 2; 3 ])) ] in
  let env =
    run_text store
      {| v := Load("v")
         three := Constant(3)
         sh := BitShift(v, three)
         zero := Constant(0)
         o := LogicalOr(v, zero) |}
  in
  Alcotest.(check (list (option int)))
    "shift left" [ Some 8; Some 16; Some 24 ] (slots (the_col env "sh"));
  Alcotest.(check (list (option int)))
    "or" [ Some 1; Some 1; Some 1 ] (slots (the_col env "o"))

let test_range_negative_step () =
  let store = store_of [ ("v", Svector.single [ "x" ] (ints [ 0; 0; 0; 0 ])) ] in
  let env = run_text store {| v := Load("v")
                              r := Range(.i, 9, v, -3) |} in
  Alcotest.(check (list (option int)))
    "descending range" [ Some 9; Some 6; Some 3; Some 0 ] (slots (the_col env "r"))

let test_persist_overwrite () =
  let store = store_of [ ("v", Svector.single [ "x" ] (ints [ 5 ])) ] in
  let _ =
    run_text store
      {| v := Load("v")
         one := Constant(1)
         w := Add(v, one)
         p1 := Persist("out", v)
         p2 := Persist("out", w) |}
  in
  check "later persist wins" true
    (Column.get (Svector.column (Store.find_exn store "out") [ "val" ]) 0
    = Some (Scalar.I 6))

let test_gather_from_eps_data () =
  (* gathering a slot that is itself ε yields ε *)
  let store =
    store_of
      [
        ("d", Svector.single [ "x" ] (int_opts [ Some 1; None; Some 3 ]));
        ("p", Svector.single [ "pos" ] (ints [ 1; 0; 2 ]));
      ]
  in
  let env = run_text store {| d := Load("d")
                              p := Load("p")
                              g := Gather(d, p) |} in
  Alcotest.(check (list (option int)))
    "eps passes through" [ None; Some 1; Some 3 ] (slots (the_col env "g"))

let test_upsert_broadcast () =
  let store = store_of [ ("v", Svector.single [ "x" ] (ints [ 7; 8; 9 ])) ] in
  let env =
    run_text store
      {| v := Load("v")
         k := Constant(.c, 42)
         u := Upsert(v, .tag, k.c) |}
  in
  let u = Hashtbl.find env "u" in
  Alcotest.(check (list (option int)))
    "one-element upsert broadcasts" [ Some 42; Some 42; Some 42 ]
    (slots (Svector.column u [ "tag" ]))

(* ---------- Figure 3 end-to-end ---------- *)

let test_figure3_end_to_end () =
  let n = 4000 in
  let input = Column.of_float_array (Array.init n (fun i -> float_of_int (i mod 7))) in
  let store = store_of [ ("input", Svector.single [ "val" ] input) ] in
  let env =
    run_text store
      {|
        input := Load("input")
        ids := Range(input)
        partitionSize := Constant(1024)
        partitionIDs := Divide(ids, partitionSize)
        positions := Partition(partitionIDs, partitionIDs)
        inputWPart := Zip(.val, input, .partition, partitionIDs)
        partInput := Scatter(inputWPart, positions)
        pSum := FoldSum(partInput.val, partInput.partition)
        totalSum := FoldSum(pSum)
      |}
  in
  let expect = Array.fold_left ( +. ) 0.0 (Array.init n (fun i -> float_of_int (i mod 7))) in
  let got = Column.get (the_col env "totalSum") 0 in
  check "hierarchical total equals naive total" true
    (got = Some (Scalar.F expect));
  (* the partial-sum vector has one value per 1024-partition *)
  let p_sum = the_col env "pSum" in
  check_int "partials at run starts" 4
    (List.length (List.filter Option.is_some (slots p_sum)))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "interp"
    [
      ( "folds",
        [
          Alcotest.test_case "figure 7 sum" `Quick test_figure7_fold_sum;
          Alcotest.test_case "uncontrolled sum" `Quick test_fold_sum_no_control;
          Alcotest.test_case "max/min/count" `Quick test_fold_max_min_count;
          Alcotest.test_case "skips eps" `Quick test_fold_skips_empty_slots;
          Alcotest.test_case "all-eps run" `Quick test_fold_all_empty_run;
          Alcotest.test_case "figure 9 select" `Quick test_figure9_pipeline;
          Alcotest.test_case "select+gather+sum" `Quick test_fold_select_gather_then_sum;
          Alcotest.test_case "scan" `Quick test_fold_scan;
          Alcotest.test_case "branch-free select" `Quick test_branch_free_selection;
        ] );
      ( "movement",
        [
          Alcotest.test_case "gather oob" `Quick test_gather_out_of_bounds;
          Alcotest.test_case "gather multi-attr" `Quick test_gather_multi_attribute;
          Alcotest.test_case "scatter conflicts" `Quick test_scatter_basic_and_conflicts;
          Alcotest.test_case "scatter sugar" `Quick test_scatter_two_arg_sugar;
          q prop_scatter_gather_inverse;
          Alcotest.test_case "partition stable" `Quick test_partition_stable;
          Alcotest.test_case "group-by pipeline" `Quick test_partition_scatter_fold_group_by;
        ] );
      ( "fold-model",
        [
          q prop_fold_agg_model;
        ] );
      ( "edges",
        [
          Alcotest.test_case "bitshift/or" `Quick test_bitshift_logicalor;
          Alcotest.test_case "negative range" `Quick test_range_negative_step;
          Alcotest.test_case "persist overwrite" `Quick test_persist_overwrite;
          Alcotest.test_case "gather eps data" `Quick test_gather_from_eps_data;
          Alcotest.test_case "upsert broadcast" `Quick test_upsert_broadcast;
        ] );
      ( "misc",
        [
          Alcotest.test_case "range/cross" `Quick test_range_cross_constant;
          Alcotest.test_case "eps in binary" `Quick test_eps_propagates_through_binary;
          Alcotest.test_case "persist" `Quick test_persist_roundtrip;
          Alcotest.test_case "eval slice" `Quick test_eval_slice;
          Alcotest.test_case "materialize/break" `Quick test_materialize_break_identity;
          Alcotest.test_case "figure 3" `Quick test_figure3_end_to_end;
        ] );
    ]
