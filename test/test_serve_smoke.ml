(* Serve ↔ client round trip: a real server on a Unix socket, a real
   client over the wire.  Every TPC-H query answered through the socket
   must equal the serial compiled engine's rows exactly (the protocol's
   hex-float wire form is lossless), PREPARE/EXEC must work, errors must
   arrive typed, and STATS must reflect the traffic. *)

open Voodoo_relational
module E = Voodoo_engine.Engine
module Q = Voodoo_tpch.Queries
module Svc = Voodoo_service.Service
module Catalogs = Voodoo_service.Catalogs
module Server = Voodoo_service.Server
module P = Voodoo_service.Protocol

let sf = 0.005

let registry = Catalogs.create ()

let canon (q : Q.t) rows = Reference.sort_rows (Reference.project_rows q.Q.columns rows)

let socket_path =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "voodoo_smoke_%d.sock" (Unix.getpid ()))

let with_server f =
  let config =
    { Svc.default_config with Svc.sf; workers = 2; queue_capacity = 32 }
  in
  let service = Svc.create ~registry config in
  let server = Server.start ~service (Server.Unix_socket socket_path) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Svc.shutdown service)
    (fun () -> f service)

let with_client f =
  let conn = Server.Client.connect ~retries:40 (Server.Unix_socket socket_path) in
  Fun.protect ~finally:(fun () -> Server.Client.close conn) (fun () -> f conn)

let request conn req =
  match Server.Client.request conn req with
  | Ok resp -> resp
  | Error e -> Alcotest.failf "transport error: %s" e

let rows_of conn req =
  match request conn req with
  | P.Rows rows -> rows
  | P.Err (stage, msg) -> Alcotest.failf "server error [%s]: %s" stage msg
  | _ -> Alcotest.fail "expected a ROWS response"

let test_all_queries_roundtrip () =
  with_server (fun _service ->
      with_client (fun conn ->
          let cat = Catalogs.fork (Catalogs.get registry ~sf ()).Catalogs.cat in
          List.iter
            (fun name ->
              let q = Option.get (Q.find ~sf name) in
              let expected = q.Q.run (fun c p -> E.compiled c p) cat in
              let got = rows_of conn (P.Query name) in
              if not (Reference.rows_equal (canon q expected) (canon q got)) then
                Alcotest.failf "%s: socket rows differ from serial compiled" name)
            Q.cpu_figure13))

let test_prepare_exec_stats () =
  with_server (fun _service ->
      with_client (fun conn ->
          (match request conn (P.Prepare ("r", "select count(*) from region")) with
          | P.Prepared "r" -> ()
          | _ -> Alcotest.fail "PREPARE should answer OK PREPARED r");
          let r1 = rows_of conn (P.Exec "r") in
          let r2 = rows_of conn (P.Exec "r") in
          Alcotest.(check bool) "EXEC twice, same rows" true
            (Reference.rows_equal r1 r2);
          (* a typed error, not a dropped connection *)
          (match request conn (P.Sql "select count(*) from nowhere") with
          | P.Err (stage, _) ->
              Alcotest.(check bool) "error stage is typed" true
                (List.mem stage [ "parse"; "type"; "lower" ])
          | _ -> Alcotest.fail "bad SQL must answer ERR");
          (* the connection survives the error and still answers *)
          ignore (rows_of conn (P.Exec "r"));
          match request conn P.Stats with
          | P.Stats_reply fields ->
              let get k =
                match List.assoc_opt k fields with
                | Some v -> v
                | None -> Alcotest.failf "STATS missing %s" k
              in
              Alcotest.(check bool) "answered some queries" true
                (get "queries.answered" >= 3.0);
              Alcotest.(check bool) "exactly one error" true
                (get "queries.errors" = 1.0);
              Alcotest.(check bool) "EXEC repeats hit a cache" true
                (get "result_cache.hits" +. get "plan_cache.hits" >= 1.0)
          | _ -> Alcotest.fail "STATS should answer OK STATS"))

let test_concurrent_clients () =
  with_server (fun _service ->
      let cat = Catalogs.fork (Catalogs.get registry ~sf ()).Catalogs.cat in
      let q6 = Option.get (Q.find ~sf "Q6") in
      let expected = canon q6 (q6.Q.run (fun c p -> E.compiled c p) cat) in
      let results = Array.make 4 [] in
      let threads =
        List.init 4 (fun i ->
            Thread.create
              (fun () ->
                with_client (fun conn ->
                    results.(i) <- List.init 3 (fun _ -> rows_of conn (P.Query "Q6"))))
              ())
      in
      List.iter Thread.join threads;
      Array.iter
        (fun rows_list ->
          Alcotest.(check int) "client got all three answers" 3
            (List.length rows_list);
          List.iter
            (fun rows ->
              Alcotest.(check bool) "concurrent client rows agree" true
                (Reference.rows_equal expected (canon q6 rows)))
            rows_list)
        results)

let test_close_ends_session () =
  with_server (fun service ->
      with_client (fun conn ->
          ignore (rows_of conn (P.Query "Q6"));
          match request conn P.Close with
          | P.Bye ->
              (* give the handler thread a moment to tear the session down *)
              let rec wait n =
                let live = (Svc.stats service).Svc.sessions_live in
                if live = 0 then ()
                else if n = 0 then
                  Alcotest.failf "session still live after CLOSE (%d)" live
                else begin
                  Thread.delay 0.05;
                  wait (n - 1)
                end
              in
              wait 40
          | _ -> Alcotest.fail "CLOSE should answer OK BYE"))

let () =
  Alcotest.run "serve-smoke"
    [
      ( "socket",
        [
          Alcotest.test_case "all TPC-H queries round-trip" `Slow
            test_all_queries_roundtrip;
          Alcotest.test_case "prepare/exec/err/stats" `Quick test_prepare_exec_stats;
          Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
          Alcotest.test_case "close ends the session" `Quick test_close_ends_session;
        ] );
    ]
