(* The query service layer: plan-cache hits (absent lower/compile spans),
   key discrimination, LRU eviction, result-cache invalidation on catalog
   swap, admission control under overload, per-query budgets, protocol
   round-trips, pool behavior, and a determinism test — concurrent
   sessions on several domains must answer every TPC-H query exactly as a
   serial run does. *)

open Voodoo_relational
module E = Voodoo_engine.Engine
module Q = Voodoo_tpch.Queries
module Verror = Voodoo_core.Verror
module Budget = Voodoo_core.Budget
module Trace = Voodoo_core.Trace
module Svc = Voodoo_service.Service
module Catalogs = Voodoo_service.Catalogs
module Plan_cache = Voodoo_service.Plan_cache
module Result_cache = Voodoo_service.Result_cache
module Pool = Voodoo_service.Pool
module Session = Voodoo_service.Session
module P = Voodoo_service.Protocol

let sf = 0.005

(* One registry for the whole test binary: every service built on it
   shares the single generated catalog. *)
let registry = Catalogs.create ()

let base_config =
  {
    Svc.default_config with
    Svc.sf;
    workers = 2;
    result_cache_bytes = 0 (* most tests want misses to reach the pool *);
  }

let with_service ?(config = base_config) f =
  let t = Svc.create ~registry config in
  Fun.protect ~finally:(fun () -> Svc.shutdown t) (fun () -> f t)

let ok = function
  | Ok rows -> rows
  | Error e -> Alcotest.failf "unexpected service error: %s" (Verror.to_string e)

let canon (q : Q.t) rows = Reference.sort_rows (Reference.project_rows q.Q.columns rows)

let serial_compiled name =
  let cat = Catalogs.fork (Catalogs.get registry ~sf ()).Catalogs.cat in
  let q = Option.get (Q.find ~sf name) in
  (q, q.Q.run (fun c p -> E.compiled c p) cat)

(* ---- plan cache ---- *)

let test_warm_sql_skips_lower_compile () =
  with_service (fun t ->
      let s = Svc.open_session t in
      let text = "select sum(l_quantity) from lineitem where l_discount >= 0.05" in
      let tr1 = Trace.create () in
      let r1 = ok (Svc.sql ~trace:tr1 t s text) in
      Alcotest.(check bool) "cold run lowered" true (Trace.find_all tr1 "lower" <> []);
      Alcotest.(check bool) "cold run compiled" true (Trace.find_all tr1 "compile" <> []);
      let tr2 = Trace.create () in
      let r2 = ok (Svc.sql ~trace:tr2 t s text) in
      Alcotest.(check bool) "warm run executed" true (Trace.find_all tr2 "execute" <> []);
      Alcotest.(check (list string)) "warm run: no lower span" []
        (List.map (fun (sp : Trace.span) -> sp.Trace.name) (Trace.find_all tr2 "lower"));
      Alcotest.(check (list string)) "warm run: no compile span" []
        (List.map (fun (sp : Trace.span) -> sp.Trace.name) (Trace.find_all tr2 "compile"));
      Alcotest.(check bool) "same rows" true (Reference.rows_equal r1 r2);
      let st = Svc.stats t in
      Alcotest.(check int) "one plan-cache hit" 1 st.Svc.plan_cache.Plan_cache.hits)

let test_reprepare_hits_plan_cache () =
  with_service (fun t ->
      let s = Svc.open_session t in
      let text = "select count(*) from region" in
      (match Svc.prepare t s ~name:"a" text with
      | Ok () -> ()
      | Error e -> Alcotest.failf "prepare failed: %s" (Verror.to_string e));
      (match Svc.prepare t s ~name:"b" text with
      | Ok () -> ()
      | Error e -> Alcotest.failf "re-prepare failed: %s" (Verror.to_string e));
      let st = Svc.stats t in
      Alcotest.(check int) "second PREPARE is a hit" 1 st.Svc.plan_cache.Plan_cache.hits;
      Alcotest.(check int) "one compile" 1 st.Svc.plan_cache.Plan_cache.misses;
      let r1 = ok (Svc.exec t s "a") and r2 = ok (Svc.exec t s "b") in
      Alcotest.(check bool) "both statements answer" true (Reference.rows_equal r1 r2))

let test_plan_key_discrimination () =
  let no_opt =
    {
      Voodoo_compiler.Codegen.default_options with
      fuse = false;
      virtual_scatter = false;
      suppress_empty_slots = false;
    }
  in
  with_service (fun t1 ->
      with_service
        ~config:{ base_config with Svc.backend_opts = Some no_opt }
        (fun t2 ->
          let entry = Catalogs.get registry ~sf () in
          let cat = entry.Catalogs.cat in
          let g = entry.Catalogs.generation in
          let plan1 = Sql.plan cat "select count(*) from region" in
          let plan1' = Sql.plan cat "select count(*) from region" in
          let plan2 = Sql.plan cat "select count(*) from nation" in
          Alcotest.(check string) "same plan, same options: equal keys"
            (Svc.plan_key t1 ~generation:g plan1)
            (Svc.plan_key t1 ~generation:g plan1');
          Alcotest.(check bool) "different plans differ" true
            (Svc.plan_key t1 ~generation:g plan1 <> Svc.plan_key t1 ~generation:g plan2);
          Alcotest.(check bool) "different codegen options differ" true
            (Svc.plan_key t1 ~generation:g plan1 <> Svc.plan_key t2 ~generation:g plan1);
          Alcotest.(check bool) "different catalog generations differ" true
            (Svc.plan_key t1 ~generation:g plan1
            <> Svc.plan_key t1 ~generation:(g + 1) plan1)))

(* The key must also cover execution and tuning dimensions: two services
   differing only in [jobs] or engine mode must not share prepared plans,
   and a tuned variant must never collide with its untuned base. *)
let test_plan_key_exec_and_variant () =
  with_service (fun t1 ->
      with_service ~config:{ base_config with Svc.jobs = 4 } (fun t_jobs ->
          with_service
            ~config:
              {
                base_config with
                Svc.engine =
                  Svc.Resilient Voodoo_engine.Resilient.strict_policy;
              }
            (fun t_res ->
              let entry = Catalogs.get registry ~sf () in
              let g = entry.Catalogs.generation in
              let plan = Sql.plan entry.Catalogs.cat "select count(*) from region" in
              let k = Svc.plan_key t1 ~generation:g plan in
              Alcotest.(check bool) "different jobs differ" true
                (k <> Svc.plan_key t_jobs ~generation:g plan);
              Alcotest.(check bool) "different engine mode differs" true
                (k <> Svc.plan_key t_res ~generation:g plan);
              Alcotest.(check string) "explicit base variant is the default" k
                (Svc.plan_key ~variant:"base" t1 ~generation:g plan);
              Alcotest.(check bool) "tuned variant never collides" true
                (k <> Svc.plan_key ~variant:"tuned" t1 ~generation:g plan))))

let test_plan_cache_replace () =
  let cache = Plan_cache.create ~capacity:2 in
  let cat = Catalogs.fork (Catalogs.get registry ~sf ()).Catalogs.cat in
  let p1 = E.prepare cat (Sql.plan cat "select count(*) from region") in
  let p2 = E.prepare cat (Sql.plan cat "select count(*) from nation") in
  Plan_cache.add cache "k" p1;
  Plan_cache.add cache "k" p2;
  (match Plan_cache.find cache "k" with
  | Some p -> Alcotest.(check bool) "add keeps the incumbent" true (p == p1)
  | None -> Alcotest.fail "entry vanished");
  Plan_cache.replace cache "k" p2;
  (match Plan_cache.find cache "k" with
  | Some p -> Alcotest.(check bool) "replace repoints" true (p == p2)
  | None -> Alcotest.fail "entry vanished after replace");
  (* replace also inserts fresh, evicting at capacity like add *)
  Plan_cache.replace cache "k2" p1;
  Plan_cache.replace cache "k3" p1;
  Alcotest.(check int) "capacity held" 2 (Plan_cache.stats cache).Plan_cache.entries

let test_plan_cache_lru_eviction () =
  with_service
    ~config:{ base_config with Svc.plan_cache_capacity = 2 }
    (fun t ->
      let s = Svc.open_session t in
      let q1 = "select count(*) from region" in
      let q2 = "select count(*) from nation" in
      let q3 = "select count(*) from supplier" in
      ignore (ok (Svc.sql t s q1));
      ignore (ok (Svc.sql t s q2));
      ignore (ok (Svc.sql t s q3));
      let st = (Svc.stats t).Svc.plan_cache in
      Alcotest.(check int) "capacity held" 2 st.Plan_cache.entries;
      Alcotest.(check int) "LRU evicted once" 1 st.Plan_cache.evictions;
      (* q1 was the least recently used: running it again must re-compile *)
      ignore (ok (Svc.sql t s q1));
      let st' = (Svc.stats t).Svc.plan_cache in
      Alcotest.(check int) "evictee misses again" 4 st'.Plan_cache.misses;
      (* q3 is still resident *)
      ignore (ok (Svc.sql t s q3));
      let st'' = (Svc.stats t).Svc.plan_cache in
      Alcotest.(check int) "resident entry hits" (st'.Plan_cache.hits + 1)
        st''.Plan_cache.hits)

(* ---- result cache & catalog swaps ---- *)

let test_result_cache_hit_and_invalidation () =
  with_service
    ~config:{ base_config with Svc.result_cache_bytes = 1024 * 1024 }
    (fun t ->
      let s = Svc.open_session t in
      let text = "select count(*), sum(l_quantity) from lineitem" in
      let r1 = ok (Svc.sql t s text) in
      let r2 = ok (Svc.sql t s text) in
      let st = Svc.stats t in
      Alcotest.(check int) "second run served from result cache" 1 st.Svc.result_hits;
      Alcotest.(check bool) "cached rows equal" true (Reference.rows_equal r1 r2);
      (* swapping the catalog must invalidate — same sf and seed regenerate
         identical data, so rows stay equal but must be recomputed *)
      ignore (Svc.refresh_catalog ~sf t);
      let r3 = ok (Svc.sql t s text) in
      let st' = Svc.stats t in
      Alcotest.(check int) "no new result-cache hit after swap" st.Svc.result_hits
        st'.Svc.result_hits;
      Alcotest.(check bool) "old generation entries dropped" true
        (st'.Svc.result_cache.Result_cache.invalidations >= 1);
      Alcotest.(check bool) "recomputed rows equal" true (Reference.rows_equal r1 r3))

let test_prepared_survives_catalog_swap () =
  with_service (fun t ->
      let s = Svc.open_session t in
      (match Svc.prepare t s ~name:"n" "select count(*) from nation" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "prepare failed: %s" (Verror.to_string e));
      let r1 = ok (Svc.exec t s "n") in
      ignore (Svc.refresh_catalog ~sf t);
      (* the statement re-plans against the new generation transparently *)
      let r2 = ok (Svc.exec t s "n") in
      Alcotest.(check bool) "same rows across generations" true
        (Reference.rows_equal r1 r2))

(* ---- online retuning ---- *)

(* End-to-end: cross the execution threshold, wait for the background
   search to finish, and require identical answers before and after any
   repointing — plus the latch (one search per plan) and the STATS keys. *)
let test_online_retune () =
  with_service
    ~config:
      { base_config with Svc.tune_after = Some 2; tune_budget_ms = 10_000.0 }
    (fun t ->
      let s = Svc.open_session t in
      let text =
        "select sum(l_extendedprice) from lineitem where l_quantity <= 25"
      in
      let before = ok (Svc.sql t s text) in
      ignore (ok (Svc.sql t s text));
      (* the second execution crossed the threshold; wait out the search *)
      let deadline = Unix.gettimeofday () +. 60.0 in
      let rec wait () =
        let st = Svc.stats t in
        if st.Svc.tune_completed >= 1 then st
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "background tune never completed"
        else begin
          Unix.sleepf 0.02;
          wait ()
        end
      in
      let st = wait () in
      Alcotest.(check int) "one search scheduled" 1 st.Svc.tune_scheduled;
      Alcotest.(check bool) "candidates considered" true
        (st.Svc.tune_candidates >= 1);
      (* executions after the repointing window answer identically *)
      let after = ok (Svc.sql t s text) in
      Alcotest.(check bool) "rows identical across retuning" true
        (compare before after = 0);
      (* more traffic must not schedule a second search for this plan *)
      ignore (ok (Svc.sql t s text));
      ignore (ok (Svc.sql t s text));
      let st' = Svc.stats t in
      Alcotest.(check int) "search latched" 1 st'.Svc.tune_scheduled;
      let fields = List.map fst (Svc.stats_fields st') in
      List.iter
        (fun k -> Alcotest.(check bool) (k ^ " present") true (List.mem k fields))
        [
          "tune.scheduled"; "tune.completed"; "tune.candidates";
          "tune.rejected"; "tune.repointed";
        ])

(* ---- admission control & budgets ---- *)

let test_admission_control_sheds () =
  with_service
    ~config:{ base_config with Svc.workers = 1; queue_capacity = 1 }
    (fun t ->
      let s = Svc.open_session t in
      (* occupy the single worker with a heavy query, then rapid-fire *)
      let slow = Svc.query_async t s "Q9" in
      let burst = List.init 20 (fun _ -> Svc.query_async t s "Q6") in
      let _, expected = serial_compiled "Q6" in
      let q6 = Option.get (Q.find ~sf "Q6") in
      let shed = ref 0 and answered = ref 0 in
      List.iter
        (fun fut ->
          match Svc.await fut with
          | Ok rows ->
              incr answered;
              Alcotest.(check bool) "admitted burst query answers correctly" true
                (Reference.rows_equal (canon q6 expected) (canon q6 rows))
          | Error e ->
              incr shed;
              Alcotest.(check string) "shed is a Resource-stage error" "resource"
                (String.lowercase_ascii (Verror.stage_name e.Verror.stage));
              Alcotest.(check bool) "shed message names admission control" true
                (let msg = e.Verror.message in
                 let has_sub sub =
                   let n = String.length sub and m = String.length msg in
                   let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
                   go 0
                 in
                 has_sub "shed" || has_sub "queue full"))
        burst;
      ignore (Svc.await slow);
      Alcotest.(check int) "every burst request resolved" 20 (!shed + !answered);
      Alcotest.(check bool) "overload shed at least one request" true (!shed >= 1);
      let st = Svc.stats t in
      Alcotest.(check int) "pool counted the sheds" !shed st.Svc.pool.Pool.shed)

let test_budget_rejection () =
  with_service
    ~config:
      {
        base_config with
        Svc.budget =
          { Budget.unlimited with max_total_extent = Some 1 };
      }
    (fun t ->
      let s = Svc.open_session t in
      match Svc.sql t s "select sum(l_quantity) from lineitem" with
      | Ok _ -> Alcotest.fail "a 1-extent budget should reject a lineitem scan"
      | Error e ->
          Alcotest.(check string) "budget exhaustion is Resource-stage" "resource"
            (String.lowercase_ascii (Verror.stage_name e.Verror.stage)))

let test_error_outcome_is_typed () =
  with_service (fun t ->
      let s = Svc.open_session t in
      (match Svc.sql t s "select count(*) from nowhere" with
      | Ok _ -> Alcotest.fail "unknown table must fail"
      | Error e ->
          Alcotest.(check bool) "stage is parse-side" true
            (List.mem (Verror.stage_name e.Verror.stage) [ "parse"; "type"; "lower" ]));
      match Svc.exec t s "never-prepared" with
      | Ok _ -> Alcotest.fail "unknown statement must fail"
      | Error _ -> ())

(* ---- deadlines & cancellation ---- *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let expect_deadline_error what = function
  | Ok _ -> Alcotest.failf "%s: an expired deadline must not answer" what
  | Error e ->
      Alcotest.(check string)
        (what ^ ": deadline expiry is Resource-stage")
        "resource"
        (String.lowercase_ascii (Verror.stage_name e.Verror.stage));
      Alcotest.(check bool)
        (what ^ ": message names the deadline")
        true
        (starts_with "deadline exceeded" e.Verror.message)

(* An already-expired deadline must surface as a typed Resource error —
   never rows, never an exception — through every service shape: the
   closure engine at 1/2/4 jobs and the resilient chain (whose fallback
   must not resurrect a dead request by re-running it on a slower
   backend). *)
let test_expired_deadline_is_typed_everywhere () =
  List.iter
    (fun jobs ->
      with_service ~config:{ base_config with Svc.jobs } (fun t ->
          let s = Svc.open_session t in
          expect_deadline_error
            (Printf.sprintf "closure jobs=%d" jobs)
            (Svc.sql ~timeout_ms:0.0 t s
               "select sum(l_quantity) from lineitem");
          let st = Svc.stats t in
          Alcotest.(check int) "expiry counted" 1 st.Svc.deadline_expired))
    [ 1; 2; 4 ];
  List.iter
    (fun (what, policy) ->
      with_service
        ~config:{ base_config with Svc.engine = Svc.Resilient policy }
        (fun t ->
          let s = Svc.open_session t in
          expect_deadline_error what
            (Svc.sql ~timeout_ms:0.0 t s "select count(*) from lineitem")))
    [
      ("resilient full chain", Voodoo_engine.Resilient.default_policy);
      ( "resilient interp-only",
        {
          Voodoo_engine.Resilient.default_policy with
          Voodoo_engine.Resilient.chain = [ Voodoo_engine.Resilient.Interp ];
        } );
    ]

(* Engine level, below the service: the tree-walk executor and the
   interpreter honor deadlines and cancellation tokens too (the service
   only ever drives the closure path). *)
let test_deadline_and_cancel_at_engine_level () =
  let cat = Catalogs.fork (Catalogs.get registry ~sf ()).Catalogs.cat in
  let q = Option.get (Q.find ~sf "Q1") in
  let expired = Budget.deadline_in Budget.unlimited ~ms:0.0 in
  let expect what f =
    match f () with
    | (_ : E.rows) -> Alcotest.failf "%s: expired deadline must raise" what
    | exception Budget.Exceeded m ->
        Alcotest.(check bool)
          (what ^ ": names the deadline")
          true
          (starts_with "deadline exceeded" m)
  in
  expect "tree-walk" (fun () ->
      q.Q.run
        (fun c p ->
          E.compiled ~budget:expired ~exec:Voodoo_compiler.Codegen.Tree_walk c p)
        cat);
  expect "interp" (fun () ->
      q.Q.run (fun c p -> E.interp ~budget:expired c p) cat);
  (* cancellation: a cancelled token stops the run with its reason *)
  let tok = Budget.token () in
  Budget.cancel ~reason:"test says stop" tok;
  let cancelled = Budget.with_token Budget.unlimited tok in
  match q.Q.run (fun c p -> E.compiled ~budget:cancelled c p) cat with
  | (_ : E.rows) -> Alcotest.fail "cancelled token must stop the run"
  | exception Budget.Exceeded m ->
      Alcotest.(check string) "cancellation carries the reason"
        "cancelled: test says stop" m

(* A deadline shorter than the query's runtime must answer a typed error
   in well under 2x the deadline — the cooperative checks sit at
   fragment, chunk and work-item boundaries, so expiry cannot overshoot
   by a whole query.  Calibrated per mode against a clean run at a
   larger scale factor so runtimes dominate the deadline. *)
let test_deadline_bounded_latency () =
  let sf = 0.02 in
  let cat = Catalogs.fork (Catalogs.get registry ~sf ()).Catalogs.cat in
  let q = Option.get (Q.find ~sf "Q1") in
  let modes =
    [
      ("closure jobs=1", fun b -> q.Q.run (fun c p -> E.compiled ?budget:b c p) cat);
      ( "closure jobs=4",
        fun b ->
          q.Q.run
            (fun c p ->
              E.compiled ?budget:b
                ~exec:
                  (Voodoo_compiler.Codegen.Closure
                     { instrument = false; jobs = 4 })
                c p)
            cat );
      ( "tree-walk",
        fun b ->
          q.Q.run
            (fun c p ->
              E.compiled ?budget:b ~exec:Voodoo_compiler.Codegen.Tree_walk c p)
            cat );
      ("interp", fun b -> q.Q.run (fun c p -> E.interp ?budget:b c p) cat);
    ]
  in
  List.iter
    (fun (what, run) ->
      ignore (run None : E.rows) (* warm: plan + compile cached costs *);
      let t0 = Unix.gettimeofday () in
      ignore (run None : E.rows);
      let clean_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let deadline_ms = Float.max 10.0 (clean_ms /. 3.) in
      let budget = Budget.deadline_in Budget.unlimited ~ms:deadline_ms in
      let t0 = Unix.gettimeofday () in
      (match run (Some budget) with
      | (_ : E.rows) ->
          Alcotest.failf "%s: ran to completion under a %.0fms deadline (clean %.0fms)"
            what deadline_ms clean_ms
      | exception Budget.Exceeded m ->
          Alcotest.(check bool)
            (what ^ ": typed deadline expiry")
            true
            (starts_with "deadline exceeded" m));
      let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      if elapsed_ms >= 2. *. deadline_ms then
        Alcotest.failf "%s: expiry took %.1fms against a %.0fms deadline"
          what elapsed_ms deadline_ms)
    modes

(* A generous deadline must not perturb the answer: rows bit-identical
   to the undeadlined run, and no expiry counted. *)
let test_generous_deadline_identical () =
  with_service (fun t ->
      let s = Svc.open_session t in
      let q, expected = serial_compiled "Q1" in
      let rows = ok (Svc.query ~timeout_ms:60_000.0 t s "Q1") in
      Alcotest.(check bool) "rows bit-identical under a generous deadline" true
        (Reference.rows_equal (canon q expected) (canon q rows));
      let st = Svc.stats t in
      Alcotest.(check int) "no expiry" 0 st.Svc.deadline_expired;
      (* the stats surface carries both counters *)
      let fields = List.map fst (Svc.stats_fields st) in
      List.iter
        (fun k -> Alcotest.(check bool) (k ^ " present") true (List.mem k fields))
        [ "queries.deadline_expired"; "queries.cancelled" ])

(* cancel_inflight cancels exactly the requests admitted before it: the
   next request runs on a fresh token. *)
let test_cancel_inflight_spares_later_requests () =
  with_service (fun t ->
      let s = Svc.open_session t in
      Svc.cancel_inflight t;
      ignore (ok (Svc.query t s "Q6"));
      Svc.cancel_inflight ~reason:"again" t;
      ignore (ok (Svc.query t s "Q6")))

(* ---- determinism under concurrency ---- *)

let test_concurrent_sessions_agree_with_serial () =
  with_service
    ~config:{ base_config with Svc.workers = 4; queue_capacity = 128 }
    (fun t ->
      let names = Q.cpu_figure13 in
      let expected =
        List.map
          (fun name ->
            let q, rows = serial_compiled name in
            (name, q, canon q rows))
          names
      in
      let sessions = List.init 3 (fun _ -> Svc.open_session t) in
      let futures =
        List.concat_map
          (fun s -> List.map (fun name -> (name, Svc.query_async t s name)) names)
          sessions
      in
      List.iter
        (fun (name, fut) ->
          let rows = ok (Svc.await fut) in
          let _, q, want =
            List.find (fun (n, _, _) -> n = name) expected
          in
          if not (Reference.rows_equal want (canon q rows)) then
            Alcotest.failf "%s: concurrent result differs from serial" name)
        futures;
      let st = Svc.stats t in
      Alcotest.(check int) "all pool jobs completed" st.Svc.pool.Pool.submitted
        st.Svc.pool.Pool.completed;
      Alcotest.(check int) "nothing shed at capacity 128" 0 st.Svc.pool.Pool.shed)

(* ---- pool ---- *)

let test_pool_runs_jobs_and_propagates_errors () =
  let p = Pool.create ~workers:2 ~queue_capacity:64 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let futs =
        List.init 50 (fun i ->
            match Pool.submit p (fun () -> i * i) with
            | Ok f -> f
            | Error _ -> Alcotest.fail "submit rejected under capacity")
      in
      let total =
        List.fold_left
          (fun acc f ->
            match Pool.await f with
            | Ok v -> acc + v
            | Error e -> Alcotest.failf "job failed: %s" (Printexc.to_string e))
          0 futs
      in
      Alcotest.(check int) "sum of squares" (49 * 50 * 99 / 6) total;
      (match Pool.submit p (fun () -> failwith "boom") with
      | Ok f -> (
          match Pool.await f with
          | Error (Failure m) -> Alcotest.(check string) "exception surfaces" "boom" m
          | Error e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
          | Ok () -> Alcotest.fail "job should have failed")
      | Error _ -> Alcotest.fail "submit rejected");
      let st = Pool.stats p in
      Alcotest.(check int) "completed all" 51 st.Pool.completed)

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~workers:2 ~queue_capacity:4 () in
  Pool.shutdown p;
  Pool.shutdown p;
  match Pool.submit p (fun () -> ()) with
  | Error `Shutting_down -> ()
  | Ok _ | Error `Queue_full -> Alcotest.fail "submit after shutdown must be rejected"

(* ---- protocol ---- *)

let test_protocol_request_roundtrip () =
  List.iter
    (fun req ->
      match P.parse_request (P.render_request req) with
      | Ok req' -> Alcotest.(check bool) "request round-trips" true (req = req')
      | Error e -> Alcotest.failf "request did not parse back: %s" e)
    [
      P.Prepare ("q6", "select count(*) from region");
      P.Exec "q6";
      P.Sql "select sum(l_quantity) from lineitem";
      P.Query "Q14";
      P.Stats;
      P.Close;
    ]

let test_protocol_row_roundtrip () =
  let row =
    [
      ("a", Some (Voodoo_vector.Scalar.I 42));
      ("b", Some (Voodoo_vector.Scalar.I (-7)));
      ("c", Some (Voodoo_vector.Scalar.F 0.1));
      ("d", Some (Voodoo_vector.Scalar.F (-1.5e300)));
      ("e", None);
    ]
  in
  match P.parse_row (P.render_row row) with
  | Ok row' -> Alcotest.(check bool) "row round-trips exactly" true (row = row')
  | Error e -> Alcotest.failf "row did not parse back: %s" e

let test_protocol_response_roundtrip () =
  let reread resp =
    let lines = ref (P.render_response resp) in
    let next () =
      match !lines with
      | [] -> None
      | l :: rest ->
          lines := rest;
          Some l
    in
    P.read_response next
  in
  let rows =
    [
      [ ("x", Some (Voodoo_vector.Scalar.I 1)); ("y", Some (Voodoo_vector.Scalar.F 2.5)) ];
      [ ("x", Some (Voodoo_vector.Scalar.I 2)); ("y", None) ];
    ]
  in
  (match reread (P.Rows rows) with
  | Ok (P.Rows rows') -> Alcotest.(check bool) "rows round-trip" true (rows = rows')
  | other ->
      Alcotest.failf "rows response broke: %s"
        (match other with Error e -> e | Ok _ -> "wrong constructor"));
  (match reread (P.Stats_reply [ ("pool.workers", 4.0); ("hit.rate", 0.75) ]) with
  | Ok (P.Stats_reply kv) ->
      Alcotest.(check bool) "stats round-trip" true
        (kv = [ ("pool.workers", 4.0); ("hit.rate", 0.75) ])
  | _ -> Alcotest.fail "stats response broke");
  match reread (P.Err ("resource", "queue full — request shed")) with
  | Ok (P.Err (stage, _)) -> Alcotest.(check string) "error stage survives" "resource" stage
  | _ -> Alcotest.fail "error response broke"

(* ---- vector similarity ---- *)

module Vds = Voodoo_vsim.Dataset
module Vq = Voodoo_vsim.Query

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let vsim_config =
  { base_config with Svc.result_cache_bytes = 1 lsl 20 (* hits wanted here *) }

let vsim_dataset =
  lazy (Vds.synth ~seed:17 ~dim:8 ~nlist:4 ~name:"vecs" 300)

let vsim_query ?filter ?(exhaustive = false) ?k d seed =
  Vq.render
    {
      Vq.dataset = d.Vds.name;
      vector = Vds.synth_query d ~seed;
      metric = Voodoo_vsim.Dist.L2;
      nprobe = None;
      exhaustive;
      k = Option.value k ~default:5;
      filter;
    }

let entry_rows entries =
  List.map
    (fun (e : Voodoo_vsim.Topk.entry) ->
      [
        ("row", Some (Voodoo_vector.Scalar.I e.Voodoo_vsim.Topk.row));
        ("score", Some (Voodoo_vector.Scalar.F e.Voodoo_vsim.Topk.score));
      ])
    entries

let test_vsim_sql_door_matches_direct_answer () =
  with_service ~config:vsim_config (fun t ->
      let d = Lazy.force vsim_dataset in
      Svc.register_vsim t d;
      Alcotest.(check (list string)) "registered" [ "vecs" ] (Svc.vsim_datasets t);
      let s = Svc.open_session t in
      let text = vsim_query d 3 in
      let rows = ok (Svc.sql t s text) in
      let direct =
        match Vds.answer d (Result.get_ok (Vq.parse text)) with
        | Ok es -> entry_rows es
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check int) "k rows" 5 (List.length rows);
      Alcotest.(check bool) "door == direct" true
        (Reference.rows_equal rows direct);
      (* same query again, via a lowercased, padded variant: the
         canonical rendering collapses it to the same result-cache key *)
      let sloppy = "  " ^ String.lowercase_ascii text ^ " ;" in
      let rows2 = ok (Svc.sql t s sloppy) in
      Alcotest.(check bool) "cached rows identical" true
        (Reference.rows_equal rows rows2);
      let st = Svc.stats t in
      Alcotest.(check int) "second ask hit the result cache" 1 st.Svc.result_hits;
      Alcotest.(check bool) "vsim.searches counted" true
        (List.mem_assoc "vsim.searches" (Svc.stats_fields st)))

let test_vsim_filter_and_exhaustive_oracle () =
  with_service ~config:vsim_config (fun t ->
      let d = Lazy.force vsim_dataset in
      Svc.register_vsim t d;
      let s = Svc.open_session t in
      let filter = ("tag", Vq.Lt, 5.) in
      let text = vsim_query ~filter ~exhaustive:true ~k:7 d 9 in
      let rows = ok (Svc.sql t s text) in
      let oracle =
        match Vds.answer_oracle d (Result.get_ok (Vq.parse text)) with
        | Ok es -> entry_rows es
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check bool) "exhaustive door == oracle" true
        (Reference.rows_equal rows oracle);
      List.iter
        (fun row ->
          match List.assoc "row" row with
          | Some (Voodoo_vector.Scalar.I i) ->
              Alcotest.(check bool) "WHERE honored" true ((i * 7 + 17) mod 10 < 5)
          | _ -> Alcotest.fail "row id missing")
        rows)

let test_vsim_errors_are_typed () =
  with_service ~config:vsim_config (fun t ->
      let s = Svc.open_session t in
      (match Svc.sql t s "SELECT * FROM ghosts SIMILARITY TO (1, 2) LIMIT 3" with
      | Ok _ -> Alcotest.fail "expected unknown-dataset error"
      | Error e ->
          Alcotest.(check bool) "parse stage" true (e.Verror.stage = Verror.Parse);
          Alcotest.(check bool) "names the dataset" true
            (contains_sub e.Verror.message "ghosts"));
      match Svc.sql t s "SELECT * FROM vecs SIMILARITY TO (1, 2) METRIC bogus" with
      | Ok _ -> Alcotest.fail "expected metric parse error"
      | Error e ->
          Alcotest.(check bool) "parse stage" true (e.Verror.stage = Verror.Parse))

(* ---- sessions ---- *)

let test_session_lifecycle () =
  with_service (fun t ->
      let s = Svc.open_session t in
      ignore (ok (Svc.sql t s "select count(*) from region"));
      let st = Svc.stats t in
      Alcotest.(check int) "one live session" 1 st.Svc.sessions_live;
      Svc.close_session t s;
      let st' = Svc.stats t in
      Alcotest.(check int) "closed" 0 st'.Svc.sessions_live;
      Alcotest.(check bool) "session marked closed" true (Session.closed s);
      match Svc.sql t s "select count(*) from region" with
      | Ok _ -> Alcotest.fail "closed session must not answer"
      | Error _ -> ())

let () =
  Alcotest.run "service"
    [
      ( "plan-cache",
        [
          Alcotest.test_case "warm sql skips lower+compile" `Quick
            test_warm_sql_skips_lower_compile;
          Alcotest.test_case "re-prepare hits" `Quick test_reprepare_hits_plan_cache;
          Alcotest.test_case "key discrimination" `Quick test_plan_key_discrimination;
          Alcotest.test_case "key covers exec mode and variant" `Quick
            test_plan_key_exec_and_variant;
          Alcotest.test_case "replace repoints, add keeps" `Quick
            test_plan_cache_replace;
          Alcotest.test_case "LRU eviction at capacity" `Quick
            test_plan_cache_lru_eviction;
        ] );
      ( "tuning",
        [ Alcotest.test_case "online retune end-to-end" `Quick test_online_retune ]
      );
      ( "result-cache",
        [
          Alcotest.test_case "hit then invalidate on swap" `Quick
            test_result_cache_hit_and_invalidation;
          Alcotest.test_case "prepared survives swap" `Quick
            test_prepared_survives_catalog_swap;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload sheds typed errors" `Quick
            test_admission_control_sheds;
          Alcotest.test_case "budget exhaustion is typed" `Quick test_budget_rejection;
          Alcotest.test_case "failures stay typed" `Quick test_error_outcome_is_typed;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "expired deadline typed in every mode" `Quick
            test_expired_deadline_is_typed_everywhere;
          Alcotest.test_case "tree-walk, interp and tokens at engine level"
            `Quick test_deadline_and_cancel_at_engine_level;
          Alcotest.test_case "expiry answers in < 2x the deadline" `Slow
            test_deadline_bounded_latency;
          Alcotest.test_case "generous deadline leaves rows identical" `Quick
            test_generous_deadline_identical;
          Alcotest.test_case "cancel_inflight spares later requests" `Quick
            test_cancel_inflight_spares_later_requests;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "3 sessions x 14 queries on 4 domains" `Slow
            test_concurrent_sessions_agree_with_serial;
        ] );
      ( "pool",
        [
          Alcotest.test_case "runs jobs, propagates errors" `Quick
            test_pool_runs_jobs_and_propagates_errors;
          Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_protocol_request_roundtrip;
          Alcotest.test_case "row round-trip" `Quick test_protocol_row_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_protocol_response_roundtrip;
        ] );
      ( "vsim",
        [
          Alcotest.test_case "SIMILARITY TO door matches direct answer" `Quick
            test_vsim_sql_door_matches_direct_answer;
          Alcotest.test_case "WHERE + EXHAUSTIVE matches oracle" `Quick
            test_vsim_filter_and_exhaustive_oracle;
          Alcotest.test_case "errors are typed" `Quick test_vsim_errors_are_typed;
        ] );
      ( "sessions",
        [ Alcotest.test_case "lifecycle" `Quick test_session_lifecycle ] );
    ]
