(** Random well-typed Voodoo program generation, shared by the
    backend-equivalence and parser-roundtrip property tests.

    A program is built from a list of abstract construction choices over a
    growing pool of defined vectors; every generated program is valid SSA
    over a store with one table ["data"] holding a single integer column. *)

open Voodoo_vector
open Voodoo_core

type genop =
  | G_range of int
  | G_const of int
  | G_divide of int
  | G_modulo of int
  | G_add_const of int
  | G_bin of int * int * int  (** binop index, operand picks *)
  | G_fold of int * int  (** agg index, operand *)
  | G_fold_div of int * int * int  (** agg, operand, partition size *)
  | G_fold_hier of int * int * int
      (** agg, operand, partition size: full two-level controlled fold
          (partial runs then a flat total), the shape the tuner regrains *)
  | G_select of int * int  (** operand, threshold *)
  | G_scan of int
  | G_gather of int * int  (** data, positions *)
  | G_grouped of int * int  (** value operand, group count *)
  | G_materialize of int
  | G_break of int
  | G_cross  (** a small fixed-size position cross product *)
  | G_persist of int
  | G_zip_project of int * int  (** structural chain: zip then project back *)
  | G_upsert of int * int

let gen_genop =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun i -> G_range i) (int_bound 10));
        (2, map (fun i -> G_const (i - 5)) (int_bound 10));
        (2, map (fun i -> G_divide (1 + i)) (int_bound 7));
        (2, map (fun i -> G_modulo (1 + i)) (int_bound 7));
        (1, map (fun i -> G_add_const (i - 3)) (int_bound 6));
        ( 3,
          map3
            (fun a b c -> G_bin (a, b, c))
            (int_bound 6) (int_bound 20) (int_bound 20) );
        (3, map2 (fun a b -> G_fold (a, b)) (int_bound 3) (int_bound 20));
        ( 3,
          map3
            (fun a b c -> G_fold_div (a, b, 1 + c))
            (int_bound 3) (int_bound 20) (int_bound 9) );
        ( 2,
          map3
            (fun a b c -> G_fold_hier (a, b, 1 + c))
            (int_bound 3) (int_bound 20) (int_bound 9) );
        (3, map2 (fun a b -> G_select (a, b)) (int_bound 20) (int_bound 30));
        (2, map (fun a -> G_scan a) (int_bound 20));
        (2, map2 (fun a b -> G_gather (a, b)) (int_bound 20) (int_bound 20));
        (2, map2 (fun a b -> G_grouped (a, 2 + b)) (int_bound 20) (int_bound 5));
        (1, map (fun a -> G_materialize a) (int_bound 20));
        (1, map (fun a -> G_break a) (int_bound 20));
        (1, return G_cross);
        (1, map (fun a -> G_persist a) (int_bound 20));
        (1, map2 (fun a b -> G_zip_project (a, b)) (int_bound 20) (int_bound 20));
        (1, map2 (fun a b -> G_upsert (a, b)) (int_bound 20) (int_bound 20));
      ])

(** A generator of choice lists of 1..[max_len] steps. *)
let gen_choices ?(max_len = 12) () =
  QCheck.Gen.(list_size (int_range 1 max_len) gen_genop)

(** [build choices] interprets the choices into a validated program. *)
let build choices : Program.t =
  let open Program.Builder in
  let b = create () in
  let input = load b "data" in
  let pool = ref [ input ] in
  let pick i = List.nth !pool (i mod List.length !pool) in
  let push id = pool := !pool @ [ id ] in
  List.iter
    (fun g ->
      match g with
      | G_range step -> push (range b ~step:(step - 5) (Of_vector (pick 0)))
      | G_const k -> push (const_int b k)
      | G_divide k ->
          let ids = range b (Of_vector (pick 0)) in
          push (divide b ids (const_int b k))
      | G_modulo k ->
          let ids = range b (Of_vector (pick 0)) in
          push (modulo b ids (const_int b k))
      | G_add_const k -> push (add_ b (pick 0) (const_int b k))
      | G_bin (opi, x, y) ->
          let op =
            List.nth
              [ Op.Add; Op.Subtract; Op.Multiply; Op.Greater; Op.Equals;
                Op.LogicalAnd; Op.LogicalOr ]
              (opi mod 7)
          in
          push (binary b op (pick x, []) (pick y, []))
      | G_fold (a, x) ->
          let agg = List.nth [ Op.Sum; Op.Max; Op.Min; Op.Count ] (a mod 4) in
          push (fold_agg b agg (pick x, []))
      | G_fold_div (a, x, psize) ->
          let agg = List.nth [ Op.Sum; Op.Max; Op.Min; Op.Count ] (a mod 4) in
          let v = pick x in
          let ids = range b (Of_vector v) in
          let part = divide b ids (const_int b psize) in
          let z = zip b ~out1:[ "v" ] ~out2:[ "f" ] (v, []) (part, []) in
          push (fold_agg b agg ~fold:[ "f" ] (z, [ "v" ]))
      | G_fold_hier (a, x, psize) ->
          let agg = List.nth [ Op.Sum; Op.Max; Op.Min; Op.Count ] (a mod 4) in
          let v = pick x in
          let ids = range b (Of_vector v) in
          let part = divide b ids (const_int b psize) in
          let z = zip b ~out1:[ "v" ] ~out2:[ "f" ] (v, []) (part, []) in
          let partial = fold_agg b agg ~fold:[ "f" ] (z, [ "v" ]) in
          let tagg = if agg = Op.Count then Op.Sum else agg in
          push (fold_agg b tagg (partial, []))
      | G_select (x, cut) ->
          let v = pick x in
          let pred = greater b v (const_int b cut) in
          push (fold_select b (pred, []))
      | G_scan x -> push (fold_scan b (pick x, []))
      | G_gather (x, p) -> push (gather b (pick x) (pick p, []))
      | G_grouped (x, k) ->
          let v = pick x in
          let ids = range b (Of_vector v) in
          let grp = modulo b ids (const_int b k) in
          let z = zip b ~out1:[ "g" ] ~out2:[ "v" ] (grp, []) (v, []) in
          let piv = range b ~out:[ "p" ] (Lit k) in
          let pos = partition b (z, [ "g" ]) (piv, []) in
          let sc = scatter b ~shape:z z (pos, []) in
          push (fold_sum b ~fold:[ "g" ] (sc, [ "v" ]))
      | G_materialize x -> push (materialize b (pick x))
      | G_break x -> push (break_ b (pick x))
      | G_cross ->
          let a = range b ~out:[ "i" ] (Lit 5) in
          let c = range b ~out:[ "i" ] (Lit 7) in
          let x = cross b a c in
          (* consume one position column so the op's values matter *)
          push (project b ~out:[ "val" ] (x, [ "pos2" ]))
      | G_persist x -> push (persist b "scratch" (pick x))
      | G_zip_project (x, y) ->
          (* structural chain ending in a single-attribute vector (the
             pool invariant): zip, project, upsert, then combine *)
          let z = zip b ~out1:[ "a" ] ~out2:[ "b" ] (pick x, []) (pick y, []) in
          let pa = project b ~out:[ "v" ] (z, [ "a" ]) in
          let u = upsert b ~out:[ "b2" ] pa (z, [ "b" ]) in
          push (binary b Op.Add (u, [ "v" ]) (u, [ "b2" ]))
      | G_upsert (x, y) ->
          let z = zip b ~out1:[ "a" ] ~out2:[ "b" ] (pick x, []) (pick y, []) in
          let u = upsert b ~out:[ "a" ] z (pick y, []) in
          push (project b ~out:[ "val" ] (u, [ "a" ])))
    choices;
  finish b

(** The fixed store the programs run against. *)
let store () =
  Store.of_list
    [
      ( "data",
        Svector.single [ "val" ]
          (Column.of_int_array
             (Array.init 64 (fun i -> (i * 37 mod 29) - (i mod 5)))) );
    ]
