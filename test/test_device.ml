(* Device-model tests: branch predictor, cache simulator vs the analytical
   model, event accounting, and cost-model sanity. *)

open Voodoo_device

let check = Alcotest.(check bool)

(* ---------- branch predictor ---------- *)

let test_predictor_biased () =
  let p = Branch.create () in
  for _ = 1 to 10000 do
    Branch.record p true
  done;
  check "all-taken learns" true (Branch.misprediction_rate p < 0.01);
  let p = Branch.create () in
  for _ = 1 to 10000 do
    Branch.record p false
  done;
  check "never-taken learns" true (Branch.misprediction_rate p < 0.01)

let test_predictor_random () =
  let p = Branch.create () in
  let st = Random.State.make [| 3 |] in
  for _ = 1 to 100000 do
    Branch.record p (Random.State.bool st)
  done;
  let r = Branch.misprediction_rate p in
  check "random is ~50% mispredicted" true (r > 0.4 && r < 0.6)

let prop_predictor_rate_tracks_selectivity =
  QCheck.Test.make ~name:"low/high selectivity mispredicts less than 50%"
    ~count:50
    QCheck.(pair (int_range 0 100) (int_range 1 1000))
    (fun (pct, seed) ->
      let p = Branch.create () in
      let st = Random.State.make [| seed |] in
      for _ = 1 to 20000 do
        Branch.record p (Random.State.int st 100 < pct)
      done;
      let r = Branch.misprediction_rate p in
      let sel = float_of_int pct /. 100.0 in
      (* never worse than always-mispredict; biased streams beat coin flips *)
      r <= 1.0
      && if sel < 0.05 || sel > 0.95 then r < 0.15 else true)

(* ---------- cache: simulator vs analytical model ---------- *)

let l1 : Config.cache_level =
  { size_bytes = 32 * 1024; line_bytes = 64; assoc = 8; latency_cycles = 4.0 }

let test_sim_sequential () =
  let sim = Cache.Sim.create l1 in
  for i = 0 to 99999 do
    ignore (Cache.Sim.access sim (i * 4))
  done;
  let measured = 1.0 -. Cache.Sim.miss_rate sim in
  let predicted = Cache.Analytic.hit_fraction l1 Cache.Sequential ~elem_bytes:4 in
  check "sequential hit rate matches analytic" true
    (Float.abs (measured -. predicted) < 0.01)

let test_sim_random_small () =
  (* uniform random within half the cache: everything hits after warmup *)
  let sim = Cache.Sim.create l1 in
  let st = Random.State.make [| 7 |] in
  let ws = l1.size_bytes / 2 in
  for _ = 0 to 200000 do
    ignore (Cache.Sim.access sim (Random.State.int st ws))
  done;
  check "resident working set hits" true (Cache.Sim.miss_rate sim < 0.02)

let test_sim_random_large () =
  let sim = Cache.Sim.create l1 in
  let st = Random.State.make [| 8 |] in
  let ws = l1.size_bytes * 16 in
  for _ = 0 to 200000 do
    ignore (Cache.Sim.access sim (Random.State.int st ws))
  done;
  let measured = 1.0 -. Cache.Sim.miss_rate sim in
  let predicted = Cache.Analytic.hit_fraction l1 (Cache.Random ws) ~elem_bytes:4 in
  (* LRU within lines gives slightly better locality than the size ratio;
     the analytic model must be within a few points *)
  check "large working set hit rates comparable" true
    (Float.abs (measured -. predicted) < 0.08)

let test_sim_lru () =
  (* a two-line ping-pong in one set must always hit with assoc >= 2 *)
  let sim = Cache.Sim.create { l1 with assoc = 2 } in
  ignore (Cache.Sim.access sim 0);
  ignore (Cache.Sim.access sim (64 * 64 (* same set, different tag *)));
  for _ = 0 to 99 do
    ignore (Cache.Sim.access sim 0);
    ignore (Cache.Sim.access sim (64 * 64))
  done;
  check "ping-pong within associativity hits" true
    (sim.Cache.Sim.misses = 2)

(* ---------- events ---------- *)

let test_events_scale () =
  let ev = Events.create () in
  Events.alu ev Int 100;
  Events.mem ev ~site:"x" ~pattern:Cache.Sequential ~elem_bytes:4 1000;
  Events.branch ev ~site:"b" true;
  Events.branch ev ~site:"b" false;
  Events.scale ev 10.0;
  check "alu scaled" true (ev.int_ops = 1000.0);
  check "branches scaled" true (Events.total_branches ev = 20.0)

let test_events_working_set_scaling () =
  let ev = Events.create () in
  Events.mem ev ~site:"big" ~pattern:(Cache.Random 100_000) ~elem_bytes:4 10;
  Events.mem ev ~site:"small" ~pattern:(Cache.Random 100) ~elem_bytes:4 10;
  Events.scale_working_sets ev ~k:10.0 ~min_bytes:4096;
  let ws site =
    match (Hashtbl.find ev.mem site).pattern with
    | Cache.Random ws -> ws
    | _ -> -1
  in
  Alcotest.(check int) "big domain grows" 1_000_000 (ws "big");
  Alcotest.(check int) "small domain fixed" 100 (ws "small")

(* ---------- cost model ---------- *)

let streaming_kernel n =
  let ev = Events.create () in
  Events.mem ev ~site:"in" ~pattern:Cache.Sequential ~elem_bytes:4 n;
  Events.alu ev Float n;
  (n, ev)

let test_cost_bandwidth_bound () =
  let n = 100_000_000 in
  let b = Cost.kernel Config.cpu_multi ~extent:n (snd (streaming_kernel n)) in
  let expected = float_of_int (n * 4) /. (Config.cpu_multi.mem_bandwidth_gbs *. 1e9) in
  check "streaming is bandwidth-bound" true
    (Float.abs (b.total_s -. expected) /. expected < 0.15)

let test_cost_parallelism () =
  let n = 10_000_000 in
  let t d = (Cost.kernel d ~extent:n (snd (streaming_kernel n))).total_s in
  check "multicore faster than one core" true (t Config.cpu_multi < t Config.cpu_single);
  check "gpu fastest on streams" true (t Config.gpu < t Config.cpu_multi)

let test_cost_branch_penalty () =
  let n = 1_000_000 in
  let with_mispredicts rate =
    let ev = Events.create () in
    let st = Random.State.make [| 5 |] in
    for _ = 1 to n do
      Events.branch ev ~site:"b" (Random.State.float st 1.0 < rate)
    done;
    (Cost.kernel Config.cpu_single ~extent:n ev).total_s
  in
  check "50% costs more than 1%" true (with_mispredicts 0.5 > 2.0 *. with_mispredicts 0.01);
  (* the GPU does not speculate: branches cost nothing *)
  let ev = Events.create () in
  for i = 1 to n do
    Events.branch ev ~site:"b" (i mod 2 = 0)
  done;
  check "gpu ignores branches" true ((Cost.kernel Config.gpu ~extent:n ev).branch_s = 0.0)

let test_cost_divergence () =
  let guarded = Events.create () in
  Events.guarded guarded 1_000_000;
  Events.alu guarded Int 1_000_000;
  let plain = Events.create () in
  Events.alu plain Int 1_000_000;
  let t ev = (Cost.kernel Config.gpu ~extent:1_000_000 ev).total_s in
  check "guarded ops diverge on gpu" true (t guarded > t plain)

let test_cost_hot_vs_random () =
  let mk pattern =
    let ev = Events.create () in
    Events.mem ev ~site:"l" ~pattern ~elem_bytes:4 10_000_000;
    (Cost.kernel Config.cpu_single ~extent:10_000_000 ev).total_s
  in
  check "hot line much cheaper than dram-random" true
    (mk Cache.Single_hot *. 5.0 < mk (Cache.Random (1 lsl 30)))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "device"
    [
      ( "branch",
        [
          Alcotest.test_case "biased" `Quick test_predictor_biased;
          Alcotest.test_case "random" `Quick test_predictor_random;
          q prop_predictor_rate_tracks_selectivity;
        ] );
      ( "cache",
        [
          Alcotest.test_case "sim sequential" `Quick test_sim_sequential;
          Alcotest.test_case "sim random small" `Quick test_sim_random_small;
          Alcotest.test_case "sim random large" `Quick test_sim_random_large;
          Alcotest.test_case "sim lru" `Quick test_sim_lru;
        ] );
      ( "events",
        [
          Alcotest.test_case "scale" `Quick test_events_scale;
          Alcotest.test_case "working sets" `Quick test_events_working_set_scaling;
        ] );
      ( "cost",
        [
          Alcotest.test_case "bandwidth" `Quick test_cost_bandwidth_bound;
          Alcotest.test_case "parallelism" `Quick test_cost_parallelism;
          Alcotest.test_case "branches" `Quick test_cost_branch_penalty;
          Alcotest.test_case "divergence" `Quick test_cost_divergence;
          Alcotest.test_case "hot vs random" `Quick test_cost_hot_vs_random;
        ] );
    ]
