(* Unit tests for the relational substrate itself (tables, catalog,
   expressions, lowering mechanics) on small hand-made schemas — the
   TPC-H-scale integration lives in test_tpch.ml. *)

open Voodoo_vector
open Voodoo_relational
module E = Voodoo_engine.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- tables ---------- *)

let test_str_column_roundtrip () =
  let c = Table.str_column ~name:"s" [| "b"; "a"; "b"; "c"; "a" |] in
  check_int "codes by first occurrence" 0 (Option.get (Table.encode c "b"));
  check_int "second distinct" 1 (Option.get (Table.encode c "a"));
  check "missing string" true (Table.encode c "zzz" = None);
  check_str "decode" "c" (Table.decode c 2);
  (* the device column carries the codes *)
  check "code data" true (Column.get c.data 3 = Some (Scalar.I 2))

let test_int_stats () =
  let c = Table.int_column ~name:"k" [| 5; 2; 9; 2 |] in
  check "stats" true (Table.int_stats c = (2, 9))

let test_date_conversions () =
  List.iter
    (fun (s, _) ->
      check_str (Printf.sprintf "roundtrip %s" s) s
        (Table.string_of_date (Table.date_of_string s)))
    [ ("1992-01-01", ()); ("1998-08-02", ()); ("1996-02-29", ()); ("1970-01-01", ()) ];
  check_int "epoch" 0 (Table.date_of_string "1970-01-01");
  check_int "one year" 365 (Table.date_of_string "1971-01-01");
  check "ordering" true
    (Table.date_of_string "1995-06-17" < Table.date_of_string "1995-06-18")

let prop_date_roundtrip =
  QCheck.Test.make ~name:"day numbers roundtrip through Y-M-D" ~count:500
    QCheck.(int_range (-20000) 40000)
    (fun days -> Table.date_of_string (Table.string_of_date days) = days)

(* ---------- a small custom schema ---------- *)

let sales_catalog () =
  let cat = Catalog.create () in
  Catalog.add_table cat
    (Table.make ~name:"products"
       [
         Table.int_column ~name:"prod_id" [| 1; 2; 3; 4 |];
         Table.str_column ~name:"prod_name" [| "ale"; "bun"; "cod"; "dip" |];
         Table.float_column ~name:"price" [| 2.5; 1.0; 6.0; 3.5 |];
       ]);
  Catalog.add_table cat
    (Table.make ~name:"sales"
       [
         Table.int_column ~name:"sale_id" [| 1; 2; 3; 4; 5; 6 |];
         Table.int_column ~name:"prod_fk" [| 1; 3; 2; 3; 1; 4 |];
         Table.int_column ~name:"qty" [| 2; 1; 5; 2; 1; 3 |];
       ]);
  cat

let test_catalog_owner () =
  let cat = sales_catalog () in
  check "owner of qty" true (Catalog.owner cat "qty" = Some "sales");
  check "owner of price" true (Catalog.owner cat "price" = Some "products");
  check "no owner" true (Catalog.owner cat "nope" = None);
  check "stats of fk" true (Catalog.stats cat "sales" "prod_fk" = (1, 4))

(* ---------- expressions ---------- *)

let test_rexpr_eval () =
  let row = function
    | "a" -> Some (Scalar.I 10)
    | "b" -> Some (Scalar.F 2.5)
    | "n" -> None
    | _ -> invalid_arg "row"
  in
  let open Rexpr in
  let ev e = Rexpr.eval ~row e in
  check "arith" true (ev (col "a" *: i 3) = Some (Scalar.I 30));
  check "mixed promotes" true (ev (col "a" +: col "b") = Some (Scalar.F 12.5));
  check "null propagates" true (ev (col "n" +: i 1) = None);
  check "between" true (ev (Between (col "a", i 10, i 11)) = Some (Scalar.I 1));
  check "in list" true (ev (In_list (col "a", [ i 3; i 10 ])) = Some (Scalar.I 1));
  check "not" true (ev (Not (col "a" >: i 100)) = Some (Scalar.I 1))

let test_rexpr_resolve () =
  let cat = sales_catalog () in
  let encode colname s =
    Table.encode (Table.column (Catalog.table cat (Catalog.owner_exn cat colname)) colname) s
  in
  let open Rexpr in
  (match Rexpr.resolve ~encode (col "prod_name" =: str "cod") with
  | Eq (Col "prod_name", Int_lit 2) -> ()
  | _ -> Alcotest.fail "string literal should resolve to its code");
  (match Rexpr.resolve ~encode (col "prod_name" =: str "zzz") with
  | Eq (Col "prod_name", Int_lit -1) -> ()
  | _ -> Alcotest.fail "unknown strings resolve to an unsatisfiable code");
  match Rexpr.resolve ~encode (date "1970-01-02" <: col "a") with
  | Lt (Int_lit 1, Col "a") -> ()
  | _ -> Alcotest.fail "dates resolve to day numbers"

(* ---------- lowering mechanics on the custom schema ---------- *)

let engines_agree plan =
  let cat = sales_catalog () in
  let reference = E.reference cat plan in
  check "nonempty" true (reference <> []);
  List.iter
    (fun (name, rows) ->
      if not (E.agree plan reference rows) then
        Alcotest.failf "%s disagrees with reference" name)
    [
      ("interp", E.interp cat plan);
      ("compiled", E.compiled cat plan);
      ( "compiled predicated",
        try E.compiled ~lower_opts:{ Lower.default_options with predication = true } cat plan
        with Lower.Unsupported _ -> reference );
    ]

let test_lower_select_agg () =
  engines_agree
    Ra.(
      aggregate
        (select (scan "sales") Rexpr.(col "qty" >: i 1))
        [ agg ~name:"total" Sum (Rexpr.col "qty"); agg ~name:"n" Count (Rexpr.i 1) ])

let test_lower_fk_join () =
  engines_agree
    Ra.(
      group_by
        (fk_join (scan "sales") ~fk:"prod_fk" (scan "products") ~pk:"prod_id")
        [ "prod_fk" ]
        [ agg ~name:"revenue" Sum Rexpr.(col "qty" *: col "price") ])

let test_lower_semi_join () =
  engines_agree
    Ra.(
      aggregate
        (semi_join (scan "sales") ~key:"prod_fk"
           (select (scan "products") Rexpr.(col "price" >: f 3.0))
           ~dim_key:"prod_id")
        [ agg ~name:"n" Count (Rexpr.i 1) ])

let test_lower_lookup_join () =
  engines_agree
    Ra.(
      aggregate
        (lookup_join (scan "sales")
           ~fact_key:Rexpr.(col "prod_fk" -: i 1)
           (scan "products")
           ~dim_key:Rexpr.(col "prod_id" -: i 1)
           ~domain:(0, 3))
        [ agg ~name:"s" Sum (Rexpr.col "price") ])

let test_lower_rejects () =
  let cat = sales_catalog () in
  let bad plan =
    match Lower.lower cat plan with
    | _ -> false
    | exception Lower.Unsupported _ -> true
  in
  check "non-agg root" true (bad (Ra.scan "sales"));
  check "anti join" true
    (bad
       Ra.(
         aggregate
           (anti_join (scan "sales") ~key:"prod_fk" (scan "products")
              ~dim_key:"prod_id")
           [ agg Count (Rexpr.i 1) ]));
  check "unknown column" true
    (bad Ra.(aggregate (scan "sales") [ agg Sum (Rexpr.col "nope") ]))

let test_table_of_rows () =
  let rows =
    [
      [ ("k", Some (Scalar.I 1)); ("v", Some (Scalar.F 1.5)) ];
      [ ("k", Some (Scalar.I 2)); ("v", Some (Scalar.F 2.5)) ];
    ]
  in
  let t =
    E.table_of_rows ~name:"tmp" ~columns:[ ("k", Table.TInt); ("v", Table.TFloat) ] rows
  in
  check_int "rows" 2 t.nrows;
  check "float col" true
    (Column.get (Table.column t "v").data 1 = Some (Scalar.F 2.5))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "relational"
    [
      ( "tables",
        [
          Alcotest.test_case "dictionary" `Quick test_str_column_roundtrip;
          Alcotest.test_case "stats" `Quick test_int_stats;
          Alcotest.test_case "dates" `Quick test_date_conversions;
          q prop_date_roundtrip;
        ] );
      ("catalog", [ Alcotest.test_case "owner" `Quick test_catalog_owner ]);
      ( "expressions",
        [
          Alcotest.test_case "eval" `Quick test_rexpr_eval;
          Alcotest.test_case "resolve" `Quick test_rexpr_resolve;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "select+agg" `Quick test_lower_select_agg;
          Alcotest.test_case "fk join" `Quick test_lower_fk_join;
          Alcotest.test_case "semi join" `Quick test_lower_semi_join;
          Alcotest.test_case "lookup join" `Quick test_lower_lookup_join;
          Alcotest.test_case "rejections" `Quick test_lower_rejects;
          Alcotest.test_case "table of rows" `Quick test_table_of_rows;
        ] );
    ]
