(* Differential tests for the fast execution path: every TPC-H query must
   produce byte-identical rows under the reference tree walk, the
   closure-compiled path (instrumented and raw) and domain-parallel
   chunked execution at several job counts — and the instrumented modes
   must also reproduce the tree walk's per-kernel event totals exactly,
   since the cost model prices those.  Plus unit checks on the chunking
   invariants and on [Exec.scale_events] leaving its input untouched. *)

module E = Voodoo_engine.Engine
module Q = Voodoo_tpch.Queries
module Dbgen = Voodoo_tpch.Dbgen
module Codegen = Voodoo_compiler.Codegen
module Events = Voodoo_device.Events
module Chunk = Voodoo_core.Chunk
module Reference = Voodoo_relational.Reference

let sf = 0.005
let catalog = lazy (Dbgen.generate ~sf ())
let queries = Q.cpu_figure13

let canon (q : Q.t) rows =
  Reference.sort_rows (Reference.project_rows q.columns rows)

(* Run one query under an execution mode, collecting rows and every
   executed fragment's (extent, event totals). *)
let run_mode ~exec name =
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf name) in
  let kernels = ref [] in
  let rows =
    q.run
      (fun c p ->
        let r = E.compiled_full ~exec c p in
        kernels := !kernels @ r.E.kernels;
        r.E.rows)
      cat
  in
  (rows, List.map (fun (e, ev) -> (e, Events.totals ev)) !kernels)

let pp_totals tot =
  String.concat "; "
    (List.map
       (fun (e, t) ->
         Printf.sprintf "extent=%d [%s]" e
           (String.concat ", "
              (List.map (fun (k, v) -> Printf.sprintf "%s=%.1f" k v) t)))
       tot)

let test_query name () =
  let base_rows, base_tot = run_mode ~exec:Codegen.Tree_walk name in
  (* instrumented closures, sequential and chunked: rows AND totals *)
  List.iter
    (fun jobs ->
      let rows, tot =
        run_mode ~exec:(Codegen.Closure { instrument = true; jobs }) name
      in
      if rows <> base_rows then
        Alcotest.failf "%s: rows diverge from tree walk at jobs=%d" name jobs;
      List.iteri
        (fun i ((be, bt), (ce, ct)) ->
          if be <> ce || bt <> ct then
            Alcotest.failf
              "%s kernel %d: totals diverge at jobs=%d@.tree walk: %s@.closures: %s"
              name i jobs
              (pp_totals [ (be, bt) ])
              (pp_totals [ (ce, ct) ]))
        (List.combine base_tot tot))
    [ 1; 2; 4 ];
  (* raw closures (no device simulation): rows only *)
  List.iter
    (fun jobs ->
      let rows, _ =
        run_mode ~exec:(Codegen.Closure { instrument = false; jobs }) name
      in
      if rows <> base_rows then
        Alcotest.failf "%s: raw rows diverge from tree walk at jobs=%d" name
          jobs)
    [ 1; 4 ];
  (* and the usual cross-backend differential *)
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf name) in
  let interp = q.run (fun c p -> E.interp c p) cat in
  if not (Reference.rows_equal (canon q interp) (canon q base_rows)) then
    Alcotest.failf "%s: interpreter disagrees with executor rows" name

let chunk_invariants () =
  List.iter
    (fun (extent, intent, jobs) ->
      let cs = Chunk.split ~extent ~intent ~jobs () in
      let q = Chunk.boundary_quantum ~intent () in
      Alcotest.(check bool) "quantum aligns to mask bytes" true (intent * q mod 8 = 0);
      let q1024 = Chunk.boundary_quantum ~align:1024 ~intent () in
      Alcotest.(check bool) "tile-aligned quantum aligns to tiles" true
        (intent * q1024 mod 1024 = 0);
      let last =
        List.fold_left
          (fun expect (c : Chunk.t) ->
            Alcotest.(check int) "contiguous" expect c.Chunk.w_lo;
            Alcotest.(check bool) "nonempty" true (c.Chunk.w_hi > c.Chunk.w_lo);
            if c.Chunk.w_hi < extent then
              Alcotest.(check int) "interior boundary aligned" 0
                (c.Chunk.w_hi mod q);
            c.Chunk.w_hi)
          0 cs
      in
      Alcotest.(check int) "covers extent" (max 0 extent) last;
      Alcotest.(check bool) "at most jobs chunks" true
        (List.length cs <= max 1 jobs))
    [
      (0, 1, 4); (1, 1, 4); (7, 3, 2); (8, 8, 4); (100, 1, 4); (100, 6, 4);
      (1024, 1, 8); (1000, 4, 3); (5, 1024, 4); (16, 2, 16);
    ];
  Alcotest.(check int) "jobs<=1 is one chunk" 1
    (Chunk.count ~extent:100 ~intent:3 ~jobs:1 ())

let test_scale_events () =
  (* exercise Exec.scale_events directly on a real run *)
  let module Exec = Voodoo_compiler.Exec in
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf "Q1") in
  let saved = ref None in
  ignore
    (q.run
       (fun c p ->
         let r = E.compiled_full c p in
         saved := Some r;
         r.E.rows)
       cat);
  match !saved with
  | None -> Alcotest.fail "no run captured"
  | Some r ->
      let before = List.map (fun (e, ev) -> (e, Events.totals ev)) r.E.kernels in
      let fake = { Exec.env = Hashtbl.create 1; kernels = r.E.kernels; plan = r.E.plan } in
      let scaled = Exec.scale_events fake 10.0 in
      let after = List.map (fun (e, ev) -> (e, Events.totals ev)) r.E.kernels in
      Alcotest.(check bool) "original kernels untouched by scale_events" true
        (before = after);
      Alcotest.(check bool) "scaled result differs" true
        (after <> List.map (fun (e, ev) -> (e, Events.totals ev)) scaled.Exec.kernels)

let () =
  Alcotest.run "exec-fast"
    [
      ( "differential",
        List.map
          (fun name -> Alcotest.test_case name `Slow (test_query name))
          queries );
      ( "chunking",
        [ Alcotest.test_case "split invariants" `Quick chunk_invariants ] );
      ( "scale-events",
        [ Alcotest.test_case "no shared mutation" `Quick test_scale_events ] );
    ]
