(* Compiler backend tests: plan shapes (virtualization, fragment
   extent/intent, fusion), OpenCL emission, event accounting, and the
   central property — the compiled backend computes exactly what the
   reference interpreter computes. *)

open Voodoo_vector
open Voodoo_core
open Voodoo_device
module Interp = Voodoo_interp.Interp
module Backend = Voodoo_compiler.Backend
module Codegen = Voodoo_compiler.Codegen
module Exec = Voodoo_compiler.Exec
module Fragment = Voodoo_compiler.Fragment

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ints xs = Column.of_int_array (Array.of_list xs)

let fig3_text =
  {|
    input := Load("input")
    ids := Range(input)
    partitionSize := Constant(1024)
    partitionIDs := Divide(ids, partitionSize)
    positions := Partition(partitionIDs, partitionIDs)
    inputWPart := Zip(.val, input, .partition, partitionIDs)
    partInput := Scatter(inputWPart, positions)
    pSum := FoldSum(partInput.val, partInput.partition)
    totalSum := FoldSum(pSum)
  |}

let fig3_store n =
  Store.of_list
    [
      ( "input",
        Svector.single [ "val" ]
          (Column.of_int_array (Array.init n (fun i -> i mod 7))) );
    ]

let frag_of_stmt (plan : Fragment.plan) id =
  List.find_opt
    (fun (f : Fragment.frag) ->
      List.exists
        (fun (cs : Fragment.compiled_stmt) -> cs.stmt.id = id)
        (Fragment.stmts_in_order f))
    plan.frags

(* ---------- plan shape ---------- *)

let test_fig3_plan () =
  let store = fig3_store 8192 in
  let c = Backend.compile ~store (Parse.program fig3_text) in
  let plan = c.plan in
  (* control vectors virtual: partitionIDs computed nowhere *)
  check "partitionIDs is virtual" true (frag_of_stmt plan "partitionIDs" = None);
  check "positions (identity partition) is virtual" true
    (frag_of_stmt plan "positions" = None);
  check "scatter by identity positions is aliased" true
    (List.mem_assoc "partInput" plan.identity_scatters);
  (* the partial fold runs with extent 8, intent 1024 *)
  (match frag_of_stmt plan "pSum" with
  | Some f ->
      check_int "pSum intent" 1024 f.intent;
      check_int "pSum extent" 8 f.extent
  | None -> Alcotest.fail "pSum should be in a fragment");
  (* the global fold is its own sequential fragment (global barrier) *)
  match frag_of_stmt plan "totalSum" with
  | Some f ->
      check_int "totalSum extent" 1 f.extent;
      check "separate fragments" true
        (match frag_of_stmt plan "pSum" with
        | Some f' -> f'.index <> f.index
        | None -> false)
  | None -> Alcotest.fail "totalSum should be in a fragment"

let test_fig3_values () =
  let n = 8192 in
  let store = fig3_store n in
  let c = Backend.compile ~store (Parse.program fig3_text) in
  let total = Backend.eval c "totalSum" in
  let expect = Array.fold_left ( + ) 0 (Array.init n (fun i -> i mod 7)) in
  check "compiled total" true
    (Column.get (Svector.column total [ "val" ]) 0 = Some (Scalar.I expect))

let fig9_text =
  {|
    in := Load("in")
    ids := Range(in)
    grain := Constant(4)
    fold := Divide(ids, grain)
    six := Constant(6)
    pred := Greater(in, six)
    z := Zip(.fold, fold, .p, pred)
    pos := FoldSelect(.pos, z.p, fold=.fold)
    vals := Gather(in, pos)
    zv := Zip(.fold, fold, .v, vals.val)
    psum := FoldSum(.s, zv.v, fold=.fold)
  |}

(* the fold attribute of .fold comes through the Zip; psum folds vals which
   has no fold attr, so give it one via another zip *)
let fig9_store () =
  Store.of_list
    [ ("in", Svector.single [ "val" ] (ints [ 1; 3; 7; 9; 4; 2; 1; 7; 9; 2; 5; 7 ])) ]

let test_fig9_fusion () =
  let store = fig9_store () in
  let c = Backend.compile ~store (Parse.program fig9_text) in
  let plan = c.plan in
  (* pred, select and gather all share one fragment with intent 4 *)
  let f_pred = Option.get (frag_of_stmt plan "pred") in
  let f_pos = Option.get (frag_of_stmt plan "pos") in
  let f_vals = Option.get (frag_of_stmt plan "vals") in
  check_int "fused select" f_pred.index f_pos.index;
  check_int "fused gather" f_pred.index f_vals.index;
  check_int "intent is grain size" 4 f_pos.intent;
  check_int "extent is run count" 3 f_pos.extent

let test_fig9_values_match_interp () =
  let store = fig9_store () in
  let p = Parse.program fig9_text in
  let ienv = Interp.run (fig9_store ()) p in
  let c = Backend.compile ~store p in
  let r = Backend.run c in
  List.iter
    (fun id ->
      let iv = Hashtbl.find ienv id in
      let cv = Exec.output r id in
      if not (Svector.equal_unordered iv cv) then
        Alcotest.failf "mismatch on %s:@.interp=%a@.compiled=%a" id Svector.pp iv
          Svector.pp cv)
    [ "pos"; "vals"; "psum" ]

(* ---------- grouped aggregation (virtual scatter) ---------- *)

let grouped_text =
  {|
    t := Load("t")
    piv := Range(.p, 0, 4, 1)
    pos := Partition(t.g, piv)
    grouped := Scatter(t, t, pos)
    sums := FoldSum(.s, grouped.v, fold=.g)
  |}

let grouped_store () =
  Store.of_list
    [
      ( "t",
        Svector.of_columns
          [
            ([ "g" ], ints [ 0; 1; 0; 2; 2; 1; 2; 0; 3; 1 ]);
            ([ "v" ], ints [ 2; 0; 1; 4; 6; 2; 0; 9; 2; 7 ]);
          ] );
    ]

let test_grouped_fold_virtualized () =
  let store = grouped_store () in
  let c = Backend.compile ~store (Parse.program grouped_text) in
  let plan = c.plan in
  check "partition virtual" true (frag_of_stmt plan "pos" = None);
  check "scatter virtual" true (frag_of_stmt plan "grouped" = None);
  (match frag_of_stmt plan "sums" with
  | Some f ->
      let cs =
        List.find
          (fun (cs : Fragment.compiled_stmt) -> cs.stmt.id = "sums")
          (Fragment.stmts_in_order f)
      in
      check "grouped fold recognized" true (cs.grouped_fold <> None)
  | None -> Alcotest.fail "sums should be in a fragment");
  (* and values still match the interpreter *)
  let ienv = Interp.run (grouped_store ()) (Parse.program grouped_text) in
  let r = Backend.run c in
  check "grouped values equal interp" true
    (Svector.equal_unordered (Hashtbl.find ienv "sums") (Exec.output r "sums"))

let test_grouped_fold_disabled () =
  let store = grouped_store () in
  let options = { Codegen.default_options with virtual_scatter = false } in
  let c = Backend.compile ~options ~store (Parse.program grouped_text) in
  check "scatter is real without the optimization" true
    (frag_of_stmt c.plan "grouped" <> None);
  let ienv = Interp.run (grouped_store ()) (Parse.program grouped_text) in
  let r = Backend.run c in
  check "values equal interp (eager scatter)" true
    (Svector.equal_unordered (Hashtbl.find ienv "sums") (Exec.output r "sums"))

(* ---------- fusion off (bulk processing) ---------- *)

let test_fusion_off () =
  let store = fig9_store () in
  let options = { Codegen.default_options with fuse = false } in
  let c = Backend.compile ~options ~store (Parse.program fig9_text) in
  let f_pred = Option.get (frag_of_stmt c.plan "pred") in
  let f_pos = Option.get (frag_of_stmt c.plan "pos") in
  check "no fusion" true (f_pred.index <> f_pos.index);
  let ienv = Interp.run (fig9_store ()) (Parse.program fig9_text) in
  let r = Backend.run c in
  check "bulk values equal interp" true
    (Svector.equal_unordered (Hashtbl.find ienv "psum") (Exec.output r "psum"))

(* ---------- OpenCL emission ---------- *)

let test_emit_opencl () =
  let store = fig3_store 8192 in
  let c = Backend.compile ~store (Parse.program fig3_text) in
  let src = Backend.source c in
  let contains needle =
    let nl = String.length needle and sl = String.length src in
    let rec go i = i + nl <= sl && (String.sub src i nl = needle || go (i + 1)) in
    go 0
  in
  check "has kernels" true (contains "__kernel void fragment_0");
  check "has second kernel" true (contains "__kernel void fragment_1");
  check "has fold accumulator" true (contains "acc_pSum");
  (* the fold's parallelism is encoded in the loop structure *)
  check "intent loop" true (contains "j < 1024");
  (* empty-slot suppression: dense, run-indexed output *)
  check "suppressed output" true (contains "pSum[gid]");
  (* virtual operators never materialize *)
  check "no partition materialization" false (contains "positions[");
  check "no control vector buffer" false (contains "partitionIDs[")

(* golden test: the exact OpenCL generated for Figure 3's program.  If a
   codegen change alters this intentionally, update the expectation. *)
let fig3_golden =
  "/* generated by the Voodoo OpenCL backend */\n\n\
   /* fragment 0: extent=8 (global work size), intent=1024 */\n\
   __kernel void fragment_0(__global const int* input, __global int* pSum) {\n\
  \  size_t gid = get_global_id(0);\n\
  \  size_t run_start = gid * 1024;\n\
  \  int acc_pSum = 0;\n\
  \  for (size_t j = 0; j < 1024; ++j) {\n\
  \    size_t i = run_start + j;\n\
  \    if (i >= 8192) break;\n\
  \    acc_pSum += input[i];\n\
  \  }\n\
  \  pSum[gid] = acc_pSum; /* empty slots suppressed: dense by run */\n\
   }\n\n\
   /* fragment 1: extent=1 (global work size), intent=8192 */\n\
   __kernel void fragment_1(__global const int* pSum, __global int* totalSum) {\n\
  \  size_t gid = get_global_id(0);\n\
  \  size_t run_start = gid * 8192;\n\
  \  int acc_totalSum = 0;\n\
  \  for (size_t j = 0; j < 8192; ++j) {\n\
  \    size_t i = run_start + j;\n\
  \    if (i >= 8192) break;\n\
  \    acc_totalSum += pSum[i];\n\
  \  }\n\
  \  totalSum[gid] = acc_totalSum; /* empty slots suppressed: dense by run */\n\
   }\n\n"

let test_emit_golden () =
  let store = fig3_store 8192 in
  let c = Backend.compile ~store (Parse.program fig3_text) in
  Alcotest.(check string) "fig3 OpenCL" fig3_golden (Backend.source c)

let test_emit_select_kernel () =
  (* a FoldSelect emits a guarded cursor write; its Gather consumer reads
     through the emitted positions *)
  let store = fig9_store () in
  let c = Backend.compile ~store (Parse.program fig9_text) in
  let src = Backend.source c in
  let contains needle =
    let nl = String.length needle and sl = String.length src in
    let rec go i = i + nl <= sl && (String.sub src i nl = needle || go (i + 1)) in
    go 0
  in
  check "guarded emit" true (contains "if (");
  check "cursor write" true (contains "cursor_");
  check "cursor initialized at run start" true (contains "= run_start;")

(* ---------- failure injection ---------- *)

let test_missing_table () =
  let store = Store.of_list [] in
  check "compile of unknown table fails" true
    (match Backend.compile ~store (Parse.program {|x := Load("nope")|}) with
    | _ -> false
    | exception Meta.Unknown_size _ -> true)

let test_unbound_output () =
  let store = fig3_store 16 in
  let c = Backend.compile ~store (Parse.program fig3_text) in
  let r = Backend.run c in
  check "unknown output rejected" true
    (match Exec.output r "no_such" with
    | _ -> false
    | exception Exec.Exec_error _ -> true)

(* ---------- events and cost sanity ---------- *)

let selection_program sel n =
  (* branching selection over n ints, threshold at selectivity [sel] *)
  Printf.sprintf
    {|
      in := Load("in")
      cut := Constant(%d)
      pred := Greater(cut, in)
      z := Zip(.v, in, .p, pred)
      pos := FoldSelect(.pos, z.p)
      vals := Gather(in, pos)
      s := FoldSum(vals)
    |}
    (int_of_float (sel *. float_of_int n))

let selection_store n seed =
  let st = Random.State.make [| seed |] in
  Store.of_list
    [
      ( "in",
        Svector.single [ "val" ]
          (Column.of_int_array (Array.init n (fun _ -> Random.State.int st n))) );
    ]

let run_selection sel n =
  let store = selection_store n 42 in
  let c = Backend.compile ~store (Parse.program (selection_program sel n)) in
  Backend.run c

let total_mispredicts r =
  List.fold_left (fun acc (_, ev) -> acc +. Events.mispredictions ev) 0.0 r.Exec.kernels

let test_branch_prediction_by_selectivity () =
  let n = 20000 in
  let m50 = total_mispredicts (run_selection 0.5 n) in
  let m01 = total_mispredicts (run_selection 0.01 n) in
  let m99 = total_mispredicts (run_selection 0.99 n) in
  check "50% mispredicts a lot" true (m50 > float_of_int n *. 0.3);
  check "1% mispredicts little" true (m01 < float_of_int n *. 0.1);
  check "99% mispredicts little" true (m99 < float_of_int n *. 0.1)

let test_cost_shapes () =
  let n = 100000 in
  let r50 = run_selection 0.5 n and r01 = run_selection 0.01 n in
  let cpu t = (Exec.cost t Config.cpu_single).total_s in
  check "mid selectivity costs more on a speculating CPU" true (cpu r50 > cpu r01);
  (* the GPU doesn't speculate: selectivity barely matters *)
  let gpu t = (Exec.cost t Config.gpu).total_s in
  check "gpu roughly flat" true (gpu r50 < gpu r01 *. 2.0);
  (* hierarchical aggregation (parallel folds) is much faster on more
     parallel devices *)
  let n = 1 lsl 20 in
  let store = fig3_store n in
  let rh = Backend.run (Backend.compile ~store (Parse.program fig3_text)) in
  check "gpu beats one core on the parallel plan" true (gpu rh < cpu rh)

(* ---------- the equivalence property ---------- *)

(* Random well-typed programs over a small integer store, interpreted and
   compiled with every combination of compiler options; all outputs must
   agree.  The generator lives in test/support/gen.ml. *)
module Gen = Test_support.Gen

let option_matrix =
  [
    Codegen.default_options;
    { Codegen.default_options with fuse = false };
    { Codegen.default_options with virtual_scatter = false };
    { Codegen.default_options with suppress_empty_slots = false };
  ]

let prop_backend_equivalence =
  QCheck.Test.make ~name:"compiled backend = interpreter on random programs"
    ~count:300
    (QCheck.make (Gen.gen_choices ()))
    (fun choices ->
      let p = Gen.build choices in
      match Interp.run (Gen.store ()) p with
      | exception Division_by_zero -> QCheck.assume_fail ()
      | ienv ->
          List.for_all
            (fun options ->
              let c = Backend.compile ~options ~store:(Gen.store ()) p in
              let r = Backend.run c in
              List.for_all
                (fun id ->
                  let iv = Hashtbl.find ienv id in
                  let cv =
                    try Exec.output r id
                    with Exec.Exec_error m ->
                      QCheck.Test.fail_reportf "exec error %s on:@.%s" m
                        (Pretty.program_to_string p)
                  in
                  let ok = Svector.equal_unordered iv cv in
                  if not ok then
                    QCheck.Test.fail_reportf
                      "output %s differs (fuse=%b vs=%b sup=%b):@.program:@.%s@.interp: %s@.compiled: %s"
                      id options.fuse options.virtual_scatter
                      options.suppress_empty_slots
                      (Pretty.program_to_string p)
                      (Fmt.str "%a" Svector.pp iv)
                      (Fmt.str "%a" Svector.pp cv);
                  ok)
                (Program.outputs p))
            option_matrix)

(* The metadata analysis is the compiler's whole basis for virtualization:
   its predicted lengths and control-vector closed forms must equal what
   the interpreter actually materializes, on any program. *)
let prop_meta_matches_interp =
  QCheck.Test.make ~name:"static metadata matches interpreted vectors" ~count:300
    (QCheck.make (Gen.gen_choices ()))
    (fun choices ->
      let p = Gen.build choices in
      let store = Gen.store () in
      let metas =
        Meta.infer
          ~vector_length:(fun name ->
            Option.map Svector.length (Store.find store name))
          p
      in
      match Interp.run store p with
      | exception Division_by_zero -> QCheck.assume_fail ()
      | env ->
          List.for_all
            (fun (id, (info : Meta.info)) ->
              let vec = Hashtbl.find env id in
              if Svector.length vec <> info.length then
                QCheck.Test.fail_reportf "length of %s: meta %d, interp %d@.%s"
                  id info.length (Svector.length vec)
                  (Pretty.program_to_string p);
              List.for_all
                (fun (kp, ctrl) ->
                  match Svector.column vec kp with
                  | col ->
                      let ok = ref true in
                      for i = 0 to Column.length col - 1 do
                        match Column.get col i with
                        | Some v ->
                            if Scalar.to_int v <> Ctrl.value ctrl i then ok := false
                        | None -> ok := false
                      done;
                      if not !ok then
                        QCheck.Test.fail_reportf
                          "closed form of %s%s diverges@.%s" id
                          (Keypath.to_string kp)
                          (Pretty.program_to_string p);
                      !ok
                  | exception Invalid_argument _ -> true)
                info.ctrls)
            metas)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "compiler"
    [
      ( "plans",
        [
          Alcotest.test_case "figure 3 plan" `Quick test_fig3_plan;
          Alcotest.test_case "figure 3 values" `Quick test_fig3_values;
          Alcotest.test_case "figure 9 fusion" `Quick test_fig9_fusion;
          Alcotest.test_case "figure 9 values" `Quick test_fig9_values_match_interp;
          Alcotest.test_case "grouped fold" `Quick test_grouped_fold_virtualized;
          Alcotest.test_case "grouped fold off" `Quick test_grouped_fold_disabled;
          Alcotest.test_case "fusion off" `Quick test_fusion_off;
        ] );
      ( "emit",
        [
          Alcotest.test_case "opencl source" `Quick test_emit_opencl;
          Alcotest.test_case "fig3 golden" `Quick test_emit_golden;
          Alcotest.test_case "select kernel" `Quick test_emit_select_kernel;
        ] );
      ( "failures",
        [
          Alcotest.test_case "missing table" `Quick test_missing_table;
          Alcotest.test_case "unbound output" `Quick test_unbound_output;
        ] );
      ( "events",
        [
          Alcotest.test_case "branch prediction" `Quick
            test_branch_prediction_by_selectivity;
          Alcotest.test_case "cost shapes" `Quick test_cost_shapes;
        ] );
      ("equivalence", [ q prop_backend_equivalence; q prop_meta_matches_interp ]);
    ]
