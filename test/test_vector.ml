(* Unit and property tests for the structured-vector substrate. *)

open Voodoo_vector

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Scalar ---------- *)

let test_scalar_arith () =
  check_int "int add" 7 (Scalar.to_int (Scalar.add (I 3) (I 4)));
  Alcotest.(check (float 1e-9)) "float add" 7.5 (Scalar.to_float (Scalar.add (I 3) (F 4.5)));
  check_int "int div truncates" 3 (Scalar.to_int (Scalar.div (I 7) (I 2)));
  check_int "modulo positive" 2 (Scalar.to_int (Scalar.modulo (I (-3)) (I 5)));
  check_int "greater true" 1 (Scalar.to_int (Scalar.greater (I 5) (I 3)));
  check_int "greater false" 0 (Scalar.to_int (Scalar.greater (I 2) (I 3)));
  check_int "equals mixed" 1 (Scalar.to_int (Scalar.equals (I 2) (F 2.0)));
  check_int "shift left" 8 (Scalar.to_int (Scalar.bit_shift (I 1) (I 3)));
  check_int "shift right" 2 (Scalar.to_int (Scalar.bit_shift (I 8) (I (-2))));
  check "and" true (Scalar.truthy (Scalar.logical_and (I 1) (F 2.0)));
  check "or of zeros" false (Scalar.truthy (Scalar.logical_or (I 0) (F 0.0)))

let test_scalar_dtype () =
  check "join int int" true (Scalar.join Int Int = Int);
  check "join int float" true (Scalar.join Int Float = Float);
  check "min identity" true (Scalar.compare_scalar (Scalar.min_value Int) (I (-1000000)) < 0);
  check "max identity" true (Scalar.compare_scalar (Scalar.max_value Float) (F 1e300) > 0)

(* ---------- Keypath ---------- *)

let test_keypath () =
  Alcotest.(check (list string)) "parse" [ "a"; "b" ] (Keypath.of_string ".a.b");
  Alcotest.(check string) "print" ".a.b" (Keypath.to_string [ "a"; "b" ]);
  check "prefix" true (Keypath.is_prefix [ "a" ] [ "a"; "b" ]);
  check "not prefix" false (Keypath.is_prefix [ "b" ] [ "a"; "b" ]);
  Alcotest.(check (list string)) "rebase" [ "x"; "b" ]
    (Keypath.rebase ~from:[ "a" ] ~onto:[ "x" ] [ "a"; "b" ])

(* ---------- Bitset ---------- *)

let test_bitset () =
  let b = Bitset.create ~length:70 ~default:false in
  check "initially clear" false (Bitset.get b 69);
  Bitset.set b 69 true;
  Bitset.set b 0 true;
  check "set high bit" true (Bitset.get b 69);
  check "set low bit" true (Bitset.get b 0);
  check_int "count" 2 (Bitset.count b);
  Bitset.set b 69 false;
  check "cleared" false (Bitset.get b 69);
  let all = Bitset.create ~length:9 ~default:true in
  check "default true" true (Bitset.all_set all)

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset set/get roundtrip" ~count:200
    QCheck.(pair (int_bound 200) (list (int_bound 200)))
    (fun (extra, idxs) ->
      let length = 201 + extra in
      let b = Bitset.create ~length ~default:false in
      List.iter (fun i -> Bitset.set b i true) idxs;
      List.for_all (fun i -> Bitset.get b i) idxs
      && Bitset.count b = List.length (List.sort_uniq compare idxs))

(* ---------- Ctrl ---------- *)

let test_ctrl_values () =
  let c = Ctrl.range ~from:5 ~step:2 in
  check_int "range value" 9 (Ctrl.value c 2);
  let d = Option.get (Ctrl.divide Ctrl.iota 1024) in
  check_int "divide run id" 0 (Ctrl.value d 1023);
  check_int "divide run id boundary" 1 (Ctrl.value d 1024);
  let m = Option.get (Ctrl.modulo Ctrl.iota 2) in
  check_int "modulo lane 0" 0 (Ctrl.value m 4);
  check_int "modulo lane 1" 1 (Ctrl.value m 5)

let test_ctrl_runs () =
  (match Ctrl.runs (Option.get (Ctrl.divide Ctrl.iota 1024)) ~n:4096 with
  | Uniform 1024 -> ()
  | _ -> Alcotest.fail "divide 1024 should give uniform runs of 1024");
  (match Ctrl.runs (Option.get (Ctrl.modulo Ctrl.iota 2)) ~n:100 with
  | Uniform 1 -> ()
  | _ -> Alcotest.fail "modulo 2 on iota should give runs of 1");
  (match Ctrl.runs (Ctrl.constant 7) ~n:100 with
  | Single_run -> ()
  | _ -> Alcotest.fail "constant should be a single run");
  (match Ctrl.runs Ctrl.iota ~n:100 with
  | Uniform 1 -> ()
  | _ -> Alcotest.fail "iota is fully data-parallel");
  check_int "run count divide" 4
    (Ctrl.run_count (Option.get (Ctrl.divide Ctrl.iota 25)) ~n:100);
  check_int "run count ragged" 5
    (Ctrl.run_count (Option.get (Ctrl.divide Ctrl.iota 25)) ~n:101)

(* The closed form must agree with actually materializing and transforming
   the values, for every derivation rule the compiler uses. *)
let prop_ctrl_closed_form =
  QCheck.Test.make ~name:"ctrl closed form matches materialized transforms"
    ~count:500
    QCheck.(quad (int_range 1 64) (int_range (-20) 20) (int_range 1 9) (int_range 1 6))
    (fun (n, from, step, k) ->
      let c = Ctrl.range ~from ~step in
      let base = Ctrl.materialize c n in
      let agrees transform derived =
        match derived with
        | None -> true (* losing the form is always sound *)
        | Some c' ->
            let expect = Array.map transform base in
            expect = Ctrl.materialize c' n
      in
      agrees (fun v -> v / k) (Ctrl.divide c k)
      && agrees (fun v -> ((v mod k) + k) mod k) (Ctrl.modulo c k)
      && agrees (fun v -> v * k) (Ctrl.multiply c k)
      && agrees (fun v -> v + k) (Ctrl.add c k)
      && agrees (fun v -> v - k) (Ctrl.subtract c k))

(* runs/run_count must describe the materialized values exactly. *)
let prop_ctrl_runs_sound =
  QCheck.Test.make ~name:"ctrl runs describe materialized values" ~count:500
    QCheck.(
      quad (int_range 1 200) (int_range 0 5) (int_range 1 40)
        (option (int_range 2 10)))
    (fun (n, from, den, cap) ->
      let c = Ctrl.make ~from ~num:1 ~den ~cap in
      let vals = Ctrl.materialize c n in
      let actual_runs =
        let r = ref [] and start = ref 0 in
        for i = 1 to n - 1 do
          if vals.(i) <> vals.(i - 1) then begin
            r := (i - !start) :: !r;
            start := i
          end
        done;
        List.rev ((n - !start) :: !r)
      in
      match Ctrl.runs c ~n with
      | Single_run -> List.length actual_runs = 1
      | Uniform len ->
          let rec ok = function
            | [] -> true
            | [ last ] -> last <= len
            | x :: rest -> x = len && ok rest
          in
          ok actual_runs && Ctrl.run_count c ~n = List.length actual_runs
      | Irregular -> true)

(* ---------- Column ---------- *)

let test_column_empty_slots () =
  let c = Column.create Int 4 in
  check "starts empty" true (Column.get c 0 = None);
  Column.set c 2 (I 42);
  check "set slot valid" true (Column.get c 2 = Some (Scalar.I 42));
  check_int "count valid" 1 (Column.count_valid c);
  Column.set_empty c 2;
  check "re-emptied" true (Column.get c 2 = None)

let test_column_of_scalars () =
  let c = Column.of_scalars Float [ Some (F 1.5); None; Some (F 2.5) ] in
  check_int "length" 3 (Column.length c);
  check "eps in middle" true (Column.get c 1 = None);
  check "roundtrip" true
    (Column.to_scalars c = [ Some (Scalar.F 1.5); None; Some (Scalar.F 2.5) ])

let prop_column_set_get =
  QCheck.Test.make ~name:"column set/get roundtrip" ~count:200
    QCheck.(list (pair (int_bound 63) int))
    (fun writes ->
      let c = Column.create Int 64 in
      List.iter (fun (i, v) -> Column.set c i (I v)) writes;
      List.for_all
        (fun (i, _) ->
          let expect =
            List.fold_left
              (fun acc (j, v) -> if i = j then Some v else acc)
              None writes
          in
          match expect with
          | None -> true
          | Some v -> Column.get c i = Some (Scalar.I v))
        writes)

(* ---------- Svector ---------- *)

let sample_vec () =
  Svector.of_columns
    [
      ([ "a"; "x" ], Column.of_int_array [| 1; 2; 3 |]);
      ([ "a"; "y" ], Column.of_float_array [| 1.0; 2.0; 3.0 |]);
      ([ "b" ], Column.of_int_array [| 10; 20; 30 |]);
    ]

let test_svector_project () =
  let v = sample_vec () in
  let p = Svector.project ~out:[ "out" ] v [ "a" ] in
  Alcotest.(check (list string))
    "projected keypaths"
    [ ".out.x"; ".out.y" ]
    (List.map Keypath.to_string (Svector.keypaths p));
  check_int "length preserved" 3 (Svector.length p)

let test_svector_zip () =
  let v = sample_vec () in
  let short = Svector.single [ "c" ] (Column.of_int_array [| 7; 8 |]) in
  let z = Svector.zip ([ "l" ], v, [ "b" ]) ([ "r" ], short, [ "c" ]) in
  check_int "zip takes shorter length" 2 (Svector.length z);
  check "zip left values" true
    (Column.get (Svector.column z [ "l" ]) 1 = Some (Scalar.I 20));
  check "zip right values" true
    (Column.get (Svector.column z [ "r" ]) 0 = Some (Scalar.I 7))

let test_svector_upsert () =
  let v = sample_vec () in
  let nv = Svector.single [ "n" ] (Column.of_int_array [| 5; 6; 7 |]) in
  let u = Svector.upsert v ~out:[ "b" ] nv [ "n" ] in
  check "replaced" true (Column.get (Svector.column u [ "b" ]) 0 = Some (Scalar.I 5));
  let u2 = Svector.upsert v ~out:[ "c" ] nv [ "n" ] in
  check_int "inserted attr count" 4 (List.length (Svector.keypaths u2))

let test_svector_mismatch () =
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument "Svector.make: column .b has mismatched length (2, expected 1)")
    (fun () ->
      ignore
        (Svector.of_columns
           [
             ([ "a" ], Column.of_int_array [| 1 |]);
             ([ "b" ], Column.of_int_array [| 1; 2 |]);
           ]))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "vector"
    [
      ( "scalar",
        [
          Alcotest.test_case "arith" `Quick test_scalar_arith;
          Alcotest.test_case "dtype" `Quick test_scalar_dtype;
        ] );
      ("keypath", [ Alcotest.test_case "basics" `Quick test_keypath ]);
      ( "bitset",
        [ Alcotest.test_case "basics" `Quick test_bitset; q prop_bitset_roundtrip ]
      );
      ( "ctrl",
        [
          Alcotest.test_case "values" `Quick test_ctrl_values;
          Alcotest.test_case "runs" `Quick test_ctrl_runs;
          q prop_ctrl_closed_form;
          q prop_ctrl_runs_sound;
        ] );
      ( "column",
        [
          Alcotest.test_case "empty slots" `Quick test_column_empty_slots;
          Alcotest.test_case "of_scalars" `Quick test_column_of_scalars;
          q prop_column_set_get;
        ] );
      ( "svector",
        [
          Alcotest.test_case "project" `Quick test_svector_project;
          Alcotest.test_case "zip" `Quick test_svector_zip;
          Alcotest.test_case "upsert" `Quick test_svector_upsert;
          Alcotest.test_case "mismatch" `Quick test_svector_mismatch;
        ] );
    ]
