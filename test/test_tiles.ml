(* Differential tests for the tiled storage engine (docs/STORAGE.md):
   tile-at-a-time raw execution must be invisible in results for any
   tile width (including widths that do not divide the data length),
   with zone maps on or off, over inputs with all-ε tiles, and across
   the 14 TPC-H queries at several job counts. *)

module E = Voodoo_engine.Engine
module Q = Voodoo_tpch.Queries
module Dbgen = Voodoo_tpch.Dbgen
module Codegen = Voodoo_compiler.Codegen
module Backend = Voodoo_compiler.Backend
module Exec = Voodoo_compiler.Exec
module Micro = Voodoo_benchkit.Micro
module Workloads = Voodoo_benchkit.Workloads
module Svector = Voodoo_vector.Svector
module Column = Voodoo_vector.Column
module Scalar = Voodoo_vector.Scalar
module Store = Voodoo_core.Store

let opts ?(tile_width = Codegen.default_options.tile_width)
    ?(zone_maps = true) ?(jobs = 1) () =
  {
    Codegen.default_options with
    exec = Codegen.Closure { instrument = false; jobs };
    tile_width;
    zone_maps;
  }

(* Run [prog] over [store] under [options], returning the full output
   vector of [total] (not just slot 0 — ε layout included). *)
let run_program ~options store (prog, total) =
  let c = Backend.compile ~options ~store prog in
  let r = Backend.run c in
  Exec.output r total

let check_same name ~ref_v v =
  if not (Svector.equal ref_v v) then Alcotest.failf "%s: outputs diverge" name

(* --- tile widths that do not divide the data length --- *)

(* 10007 is prime: every tile width leaves a short last tile, and
   interior fragment extents never align with tile seams.  The tree
   walk (untiled, slot-at-a-time over boxed scalars) is the oracle. *)
let test_tile_boundaries () =
  let n = 10_007 in
  let sel = Workloads.selection_input ~n ~seed:3 in
  let store = Micro.selection_store sel in
  let programs =
    [
      ("select_branching", Micro.select_branching_program ~cut:50.0 ());
      ("select_branch_free", Micro.select_branch_free_program ~cut:50.0 ());
      ("select_predicated", Micro.select_predicated_program ~cut:50.0 ());
    ]
  in
  List.iter
    (fun (name, prog) ->
      let ref_v =
        run_program
          ~options:{ (opts ()) with Codegen.exec = Codegen.Tree_walk }
          store prog
      in
      List.iter
        (fun tile_width ->
          List.iter
            (fun zone_maps ->
              let v =
                run_program ~options:(opts ~tile_width ~zone_maps ()) store prog
              in
              check_same
                (Printf.sprintf "%s tw=%d zones=%b" name tile_width zone_maps)
                ~ref_v v)
            [ true; false ])
        [ 64; 320; 1024; 8192; 1 lsl 17 ])
    programs

(* --- inputs with whole tiles of ε --- *)

let test_all_empty_tiles () =
  let n = 4_100 (* > 4 default tiles, short last tile *) in
  let values =
    List.init n (fun i ->
        (* tiles 1 and 3 (at the default width 1024) are entirely ε *)
        if i / 1024 = 1 || i / 1024 = 3 then None
        else Some (Scalar.F (float_of_int (i mod 100))))
  in
  let store =
    Store.of_list
      [ ("values", Svector.single [ "v" ] (Column.of_scalars Scalar.Float values)) ]
  in
  let prog = Micro.select_branching_program ~cut:50.0 () in
  let ref_v =
    run_program ~options:{ (opts ()) with Codegen.exec = Codegen.Tree_walk }
      store prog
  in
  List.iter
    (fun zone_maps ->
      let v = run_program ~options:(opts ~zone_maps ()) store prog in
      check_same (Printf.sprintf "all-empty tiles zones=%b" zone_maps) ~ref_v v)
    [ true; false ]

(* --- zone-skip vs no-skip over TPC-H, at several job counts --- *)

let sf = 0.005
let catalog = lazy (Dbgen.generate ~sf ())

let run_query ~backend_opts name =
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf name) in
  q.Q.run (fun c p -> E.compiled ~backend_opts c p) cat

let test_query name () =
  List.iter
    (fun jobs ->
      let skip = run_query ~backend_opts:(opts ~jobs ()) name in
      let scan = run_query ~backend_opts:(opts ~zone_maps:false ~jobs ()) name in
      if skip <> scan then
        Alcotest.failf "%s: zone-skip rows diverge from no-skip at jobs=%d"
          name jobs)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "tiles"
    [
      ( "boundaries",
        [
          Alcotest.test_case "odd lengths x widths x zones" `Quick
            test_tile_boundaries;
          Alcotest.test_case "all-empty tiles" `Quick test_all_empty_tiles;
        ] );
      ( "zone-maps",
        List.map
          (fun name -> Alcotest.test_case name `Slow (test_query name))
          Q.cpu_figure13 );
    ]
