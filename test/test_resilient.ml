(* Resilient execution layer: deterministic fault-injection campaigns
   (fail/corrupt every compiled kernel in turn; interpreter faults),
   resource budgets, policy semantics, and a property run of every TPC-H
   query through Resilient.execute under a strict differential policy. *)

open Voodoo_relational
module E = Voodoo_engine.Engine
module R = Voodoo_engine.Resilient
module F = Voodoo_engine.Faults
module Q = Voodoo_tpch.Queries
module Dbgen = Voodoo_tpch.Dbgen
module Verror = Voodoo_core.Verror
module Budget = Voodoo_core.Budget
module Fault = Voodoo_core.Fault
module Interp = Voodoo_interp.Interp
module Exec = Voodoo_compiler.Exec

let sf = 0.002

let catalog = lazy (Dbgen.generate ~sf ())

let canon (q : Q.t) rows =
  Reference.sort_rows (Reference.project_rows q.columns rows)

let stage : Verror.stage Alcotest.testable =
  Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Verror.stage_name s))
    ( = )

let exec_ok policy c p =
  match R.execute policy c p with
  | Ok (rows, report) -> (rows, report)
  | Error e ->
      Alcotest.failf "unexpected resilient error: %s" (Verror.to_string e)

let exec_err policy c p =
  match R.execute policy c p with
  | Ok (_, report) ->
      Alcotest.failf "expected an error, got an answer (%s)"
        (Fmt.str "%a" R.pp_report report)
  | Error e -> e

(* A resilient evaluator for whole-query runs that records which backend
   answered each plan. *)
let resilient_eval policy answered c p =
  let rows, (report : R.report) = exec_ok policy c p in
  (match report.answered_by with
  | Some b -> answered := b :: !answered
  | None -> Alcotest.fail "report does not name an answering backend");
  rows

(* --- fault campaign: fail every compiled kernel in turn, every query --- *)

let fault_every_kernel name () =
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf name) in
  let expected = q.run (fun c p -> E.reference c p) cat in
  let _, total =
    F.count_kernels (fun () -> q.run (fun c p -> E.compiled c p) cat)
  in
  if total = 0 then Alcotest.failf "%s executed no kernels" name;
  for k = 0 to total - 1 do
    F.with_spec (Fail_kernel k) (fun () ->
        let answered = ref [] in
        let got = q.run (resilient_eval R.default_policy answered) cat in
        if not (Reference.rows_equal (canon q expected) (canon q got)) then
          Alcotest.failf "%s: wrong result with kernel %d failing" name k;
        if not (List.mem R.Interp !answered) then
          Alcotest.failf
            "%s: kernel %d fault did not fall back to the interpreter" name k)
  done

(* --- corruption campaign: corrupt every kernel's result in turn; the
   strict (differential) policy must still answer correctly --- *)

let corrupt_every_kernel name () =
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf name) in
  let expected = q.run (fun c p -> E.reference c p) cat in
  let _, total =
    F.count_kernels (fun () -> q.run (fun c p -> E.compiled c p) cat)
  in
  let fallbacks = ref 0 in
  for k = 0 to total - 1 do
    F.with_spec ~seed:(3 * k) (Corrupt_kernel k) (fun () ->
        let answered = ref [] in
        let got = q.run (resilient_eval R.strict_policy answered) cat in
        if not (Reference.rows_equal (canon q expected) (canon q got)) then
          Alcotest.failf "%s: wrong result with kernel %d corrupted" name k;
        if List.exists (fun b -> b <> R.Compiled) !answered then incr fallbacks)
  done;
  (* at least one corruption must have been caught by the differential
     check and recovered from (a corrupted final aggregate is visible) *)
  if !fallbacks = 0 then
    Alcotest.failf "%s: no corruption triggered a verified fallback" name

(* --- interpreter faults fall through to the reference evaluator --- *)

let interp_fault_falls_back () =
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf "Q6") in
  let expected = q.run (fun c p -> E.reference c p) cat in
  let policy = { R.default_policy with chain = [ R.Interp; R.Reference ] } in
  F.with_spec (Fail_step 2) (fun () ->
      let answered = ref [] in
      let got = q.run (resilient_eval policy answered) cat in
      Alcotest.(check bool) "rows agree" true
        (Reference.rows_equal (canon q expected) (canon q got));
      Alcotest.(check bool) "reference answered" true
        (List.mem R.Reference !answered))

(* --- resource budgets --- *)

let q6_plan cat =
  (* capture Q6's single relational plan *)
  let q = Option.get (Q.find ~sf "Q6") in
  let captured = ref None in
  (try
     ignore
       (q.run
          (fun _ p ->
            captured := Some p;
            raise Exit)
          cat)
   with Exit -> ());
  Option.get !captured

let budget_exceeded_compiled () =
  let cat = Lazy.force catalog in
  let plan = q6_plan cat in
  let policy =
    {
      R.default_policy with
      chain = [ R.Compiled ];
      budget = { Budget.unlimited with max_total_extent = Some 1 };
    }
  in
  let e = exec_err policy cat plan in
  Alcotest.check stage "stage" Verror.Resource e.Verror.stage;
  Alcotest.(check (option string))
    "backend" (Some "compiled") e.Verror.context.backend

let budget_exceeded_interp () =
  let cat = Lazy.force catalog in
  let plan = q6_plan cat in
  let policy =
    {
      R.default_policy with
      chain = [ R.Interp ];
      budget = { Budget.unlimited with max_steps = Some 10 };
    }
  in
  let e = exec_err policy cat plan in
  Alcotest.check stage "stage" Verror.Resource e.Verror.stage

let budget_falls_back_to_reference () =
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf "Q6") in
  let expected = q.run (fun c p -> E.reference c p) cat in
  let policy =
    {
      R.default_policy with
      budget =
        {
          Budget.unlimited with
          max_total_extent = Some 1;
          max_vector_bytes = Some 64;
          max_steps = Some 10;
        };
    }
  in
  let answered = ref [] in
  let got = q.run (resilient_eval policy answered) cat in
  Alcotest.(check bool) "rows agree" true
    (Reference.rows_equal (canon q expected) (canon q got));
  Alcotest.(check bool) "reference answered" true
    (List.for_all (fun b -> b = R.Reference) !answered)

(* --- policy semantics --- *)

let fallback_disabled_propagates () =
  let cat = Lazy.force catalog in
  let plan = q6_plan cat in
  let policy = { R.default_policy with fallback_on = [] } in
  F.with_spec (Fail_kernel 0) (fun () ->
      let e = exec_err policy cat plan in
      Alcotest.check stage "stage" Verror.Exec e.Verror.stage;
      Alcotest.(check (option string))
        "backend" (Some "compiled") e.Verror.context.backend;
      Alcotest.(check (option int)) "fragment" (Some 0) e.Verror.context.fragment)

let short_chain_propagates () =
  let cat = Lazy.force catalog in
  let plan = q6_plan cat in
  let policy = { R.default_policy with chain = [ R.Compiled ] } in
  F.with_spec (Fail_kernel 0) (fun () ->
      let e = exec_err policy cat plan in
      Alcotest.check stage "stage" Verror.Exec e.Verror.stage)

let max_attempts_respected () =
  let cat = Lazy.force catalog in
  let plan = q6_plan cat in
  let policy = { R.default_policy with max_attempts = 1 } in
  F.with_spec (Fail_kernel 0) (fun () ->
      let e = exec_err policy cat plan in
      Alcotest.check stage "stage" Verror.Exec e.Verror.stage)

let non_groupagg_is_lower_error () =
  let cat = Lazy.force catalog in
  let e = exec_err R.default_policy cat (Ra.scan "lineitem") in
  Alcotest.check stage "stage" Verror.Lower e.Verror.stage

let unknown_column_is_typed_error () =
  let cat = Lazy.force catalog in
  let plan =
    Ra.aggregate (Ra.scan "lineitem") [ Ra.agg Ra.Sum (Rexpr.col "no_such") ]
  in
  (* must arrive as Error, never as a raised exception *)
  match R.execute R.default_policy cat plan with
  | Ok _ -> Alcotest.fail "expected an error for an unknown column"
  | Error e ->
      Alcotest.(check bool) "context populated" true
        (e.Verror.context.backend <> None);
      let contains ~sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message mentions column" true
        (contains ~sub:"no_such" e.Verror.message)

(* --- exception classification shims --- *)

let classification () =
  let check_stage exn backend expected =
    Alcotest.check stage
      (Printexc.to_string exn)
      expected
      (R.classify backend exn).Verror.stage
  in
  check_stage (Voodoo_core.Typing.Type_error "t") R.Compiled Verror.Type;
  check_stage (Lower.Unsupported "l") R.Compiled Verror.Lower;
  check_stage (Voodoo_core.Parse.Parse_error "p") R.Compiled Verror.Parse;
  check_stage (Voodoo_core.Program.Invalid "i") R.Compiled Verror.Compile;
  check_stage (Exec.Exec_error "e") R.Compiled Verror.Exec;
  check_stage (Interp.Runtime_error "r") R.Interp Verror.Runtime;
  check_stage (Budget.Exceeded "b") R.Compiled Verror.Resource;
  check_stage (Fault.Injected "f") R.Compiled Verror.Exec;
  check_stage (Fault.Injected "f") R.Interp Verror.Runtime;
  check_stage (Invalid_argument "x") R.Compiled Verror.Exec;
  check_stage (Failure "y") R.Interp Verror.Runtime;
  let e = R.classify R.Compiled (Exec.Exec_error "boom") in
  Alcotest.(check (option string))
    "backend recorded" (Some "compiled") e.Verror.context.backend

(* --- budget unit behaviour --- *)

let budget_tracker () =
  let tr =
    Budget.tracker { Budget.unlimited with max_vector_bytes = Some 100 }
  in
  Budget.charge_bytes tr 60;
  Budget.charge_bytes tr 40;
  Alcotest.(check int) "bytes accumulated" 100 (Budget.bytes_used tr);
  (match Budget.charge_bytes tr 1 with
  | () -> Alcotest.fail "expected Budget.Exceeded"
  | exception Budget.Exceeded _ -> ());
  let tr2 = Budget.tracker Budget.unlimited in
  Budget.charge_extent tr2 max_int;
  Budget.charge_steps tr2 42;
  Alcotest.(check int) "steps tracked" 42 (Budget.steps_used tr2)

let fault_spec_parsing () =
  let spec = Alcotest.testable (Fmt.of_to_string F.describe) ( = ) in
  let ok s v =
    match F.parse s with
    | Ok got -> Alcotest.check spec s v got
    | Error m -> Alcotest.failf "%s: %s" s m
  in
  ok "kernel:3" (F.Fail_kernel 3);
  ok "corrupt-kernel:0" (F.Corrupt_kernel 0);
  ok "step:12" (F.Fail_step 12);
  ok "corrupt-step:1" (F.Corrupt_step 1);
  ok "observe" F.Observe;
  (match F.parse "kernel:-1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative ordinal accepted");
  match F.parse "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus spec accepted"

(* --- property: every TPC-H query under the strict policy, no faults --- *)

let strict_property name () =
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf name) in
  let expected = q.run (fun c p -> E.reference c p) cat in
  let answered = ref [] in
  let got = q.run (resilient_eval R.strict_policy answered) cat in
  if not (Reference.rows_equal (canon q expected) (canon q got)) then
    Alcotest.failf "%s: strict resilient result differs from reference" name;
  List.iter
    (fun b ->
      if b <> R.Compiled then
        Alcotest.failf "%s: fell back without any fault armed" name)
    !answered

let queries = Q.cpu_figure13

let () =
  let sweep mk suffix =
    List.map
      (fun name -> Alcotest.test_case (name ^ suffix) `Quick (mk name))
      queries
  in
  Alcotest.run "resilient"
    [
      ("fail-every-kernel", sweep fault_every_kernel "");
      ( "corrupt-kernels",
        List.map
          (fun name ->
            Alcotest.test_case name `Quick (corrupt_every_kernel name))
          [ "Q1"; "Q6" ] );
      ( "interp-faults",
        [ Alcotest.test_case "fall back to reference" `Quick interp_fault_falls_back ] );
      ( "budgets",
        [
          Alcotest.test_case "compiled extent cap" `Quick budget_exceeded_compiled;
          Alcotest.test_case "interp step cap" `Quick budget_exceeded_interp;
          Alcotest.test_case "fallback to reference" `Quick budget_falls_back_to_reference;
          Alcotest.test_case "tracker" `Quick budget_tracker;
        ] );
      ( "policy",
        [
          Alcotest.test_case "fallback disabled" `Quick fallback_disabled_propagates;
          Alcotest.test_case "short chain" `Quick short_chain_propagates;
          Alcotest.test_case "max attempts" `Quick max_attempts_respected;
          Alcotest.test_case "non-GroupAgg root" `Quick non_groupagg_is_lower_error;
          Alcotest.test_case "unknown column" `Quick unknown_column_is_typed_error;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "classification" `Quick classification;
          Alcotest.test_case "fault specs" `Quick fault_spec_parsing;
        ] );
      ("strict-tpch", sweep strict_property "");
    ]
