(* Distributed serving differentials.

   The referee for the sharding layer: every TPC-H query, scattered over
   1, 2 and 4 in-process shard workers (real servers on Unix sockets,
   real FRAGMENT round trips), must return rows {e structurally equal}
   ([=], no tolerance) to the single-process compiled engine — including
   when one shard is dead (failover) and when one shard is behind a
   stalling chaos proxy (retry/hedging).  Plus unit coverage of the
   consistent-hash ring and the merge strategy analysis. *)

open Voodoo_relational
module E = Voodoo_engine.Engine
module Q = Voodoo_tpch.Queries
module Svc = Voodoo_service.Service
module Catalogs = Voodoo_service.Catalogs
module Server = Voodoo_service.Server
module Chaos = Voodoo_service.Chaos
module Ring = Voodoo_distrib.Ring
module Merge = Voodoo_distrib.Merge
module Worker = Voodoo_distrib.Worker
module Coordinator = Voodoo_distrib.Coordinator

let sf = 0.005

(* ---- the shared in-process fleet ---- *)

let sock i =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "voodoo_distrib_%d_%d.sock" (Unix.getpid ()) i)

let worker_options =
  { Server.default_options with Server.max_line_bytes = 8 * 1024 * 1024 }

let fleet =
  lazy
    (List.init 4 (fun i ->
         let config =
           { Svc.default_config with Svc.sf; workers = 1; queue_capacity = 32 }
         in
         let w = Worker.create ~config () in
         let addr = Server.Unix_socket (sock i) in
         let _server =
           Server.start ~options:worker_options ~handler:(Worker.handler w)
             ~service:(Worker.service w) addr
         in
         addr))

let registry = Catalogs.create ()

let coordinator ?(extent_rows = 512) ?hedge_ms ?rpc_timeout_ms ?(retries = 2)
    addrs =
  Coordinator.create ~registry
    {
      Coordinator.default_config with
      Coordinator.addrs;
      sf;
      extent_rows;
      hedge_ms;
      rpc_timeout_ms;
      retries;
    }

let take n l = List.filteri (fun i _ -> i < n) l

let expected_rows =
  lazy
    (let cat = (Catalogs.get registry ~sf ()).Catalogs.cat in
     List.map
       (fun name ->
         let q = Option.get (Q.find ~sf name) in
         (name, q.Q.run (fun c p -> E.compiled c p) (Catalogs.fork cat)))
       Q.cpu_figure13)

let check_identical coord label =
  List.iter
    (fun (name, expected) ->
      match Coordinator.query coord name with
      | Error e ->
          Alcotest.failf "%s %s: %s" label name (Voodoo_core.Verror.to_string e)
      | Ok got ->
          if got <> expected then
            Alcotest.failf "%s %s: sharded rows differ from single-process"
              label name)
    (Lazy.force expected_rows)

(* ---- ring ---- *)

let keys_1000 = List.init 1000 (fun i -> Printf.sprintf "lineitem/%d" i)

let test_ring_determinism () =
  let a = Ring.make [ "s0"; "s1"; "s2" ] in
  let b = Ring.make [ "s2"; "s0"; "s1" ] in
  List.iter
    (fun k ->
      Alcotest.(check string)
        (k ^ " same owner across builds") (Ring.owner a k) (Ring.owner b k))
    keys_1000

let test_ring_balance () =
  let ring = Ring.make (List.init 4 (Printf.sprintf "shard%d")) in
  let counts = Hashtbl.create 4 in
  List.iter
    (fun k ->
      let o = Ring.owner ring k in
      Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
    keys_1000;
  Alcotest.(check int) "every shard owns something" 4 (Hashtbl.length counts);
  let mn = Hashtbl.fold (fun _ c m -> min c m) counts max_int in
  let mx = Hashtbl.fold (fun _ c m -> max c m) counts 0 in
  if float_of_int mx /. float_of_int mn > 3.0 then
    Alcotest.failf "ring imbalance: max %d, min %d" mx mn

let test_ring_minimal_movement () =
  let before = Ring.make (List.init 4 (Printf.sprintf "shard%d")) in
  let after = Ring.add before "shard4" in
  let moved =
    List.filter
      (fun k ->
        let o = Ring.owner before k and o' = Ring.owner after k in
        if o' <> o && o' <> "shard4" then
          Alcotest.failf "%s moved %s -> %s, not to the new shard" k o o';
        o' <> o)
      keys_1000
  in
  (* a fifth shard should claim roughly 1/5; allow a generous band *)
  let frac = float_of_int (List.length moved) /. 1000.0 in
  if frac > 0.35 then Alcotest.failf "add moved %.0f%% of keys" (100. *. frac);
  if moved = [] then Alcotest.fail "add moved nothing";
  (* removing it again restores the original map exactly *)
  let restored = Ring.remove after "shard4" in
  List.iter
    (fun k ->
      Alcotest.(check string)
        (k ^ " restored") (Ring.owner before k) (Ring.owner restored k))
    keys_1000

let test_ring_preference () =
  let ring = Ring.make (List.init 4 (Printf.sprintf "shard%d")) in
  List.iter
    (fun k ->
      let pref = Ring.preference ring k in
      Alcotest.(check int) "preference covers every shard" 4 (List.length pref);
      Alcotest.(check string) "owner first" (Ring.owner ring k) (List.hd pref);
      Alcotest.(check int) "distinct" 4
        (List.length (List.sort_uniq compare pref)))
    (take 50 keys_1000)

(* ---- strategy analysis ---- *)

let test_strategy_analysis () =
  let cat = (Catalogs.get registry ~sf ()).Catalogs.cat in
  let strategy plan =
    match Merge.analyze cat plan with
    | Ok info -> info.Merge.i_strategy
    | Error e -> Alcotest.fail e
  in
  let agg name kind expr = { Ra.name; kind; expr } in
  (* integer sum and count: partials merge exactly *)
  let p1 =
    Ra.GroupAgg
      {
        input = Ra.Scan "lineitem";
        keys = [ "l_linestatus" ];
        aggs =
          [
            agg "n" Ra.Count (Rexpr.col "l_quantity");
            agg "q" Ra.Sum (Rexpr.col "l_quantity");
            agg "aq" Ra.Avg (Rexpr.col "l_quantity");
            agg "mx" Ra.Max (Rexpr.col "l_extendedprice");
          ];
      }
  in
  Alcotest.(check bool) "integral aggs take Partial" true
    (strategy p1 = Merge.Partial);
  (* a float sum forces the exchange strategy *)
  let p2 =
    Ra.GroupAgg
      {
        input = Ra.Scan "lineitem";
        keys = [ "l_linestatus" ];
        aggs = [ agg "rev" Ra.Sum (Rexpr.col "l_extendedprice") ];
      }
  in
  Alcotest.(check bool) "float sum takes Exchange" true
    (strategy p2 = Merge.Exchange);
  (* Map-defined columns are looked through *)
  let p3 =
    Ra.GroupAgg
      {
        input =
          Ra.Map
            ( Ra.Scan "lineitem",
              [ ("flagged", Rexpr.(col "l_quantity" >: i 10)) ] );
        keys = [ "l_linestatus" ];
        aggs = [ agg "n" Ra.Sum (Rexpr.col "flagged") ];
      }
  in
  Alcotest.(check bool) "comparison-valued Map column is integral" true
    (strategy p3 = Merge.Partial);
  (* non-GroupAgg roots are rejected *)
  (match Merge.analyze cat (Ra.Scan "lineitem") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bare Scan must not analyze")

(* ---- differentials ---- *)

let test_differential_1_2_4 () =
  let addrs = Lazy.force fleet in
  List.iter
    (fun n ->
      let coord = coordinator (take n addrs) in
      check_identical coord (Printf.sprintf "%d-shard" n))
    [ 1; 2; 4 ]

let test_sql_and_extent_grain () =
  (* a different extent grain re-partitions every table; results must not
     move, and the SQL door must agree with the query door *)
  let addrs = Lazy.force fleet in
  let coord = coordinator ~extent_rows:97 (take 2 addrs) in
  check_identical coord "grain-97";
  let cat = (Catalogs.get registry ~sf ()).Catalogs.cat in
  let text = "select count(*) from lineitem" in
  let expected = E.compiled (Catalogs.fork cat) (Sql.plan cat text) in
  match Coordinator.sql coord text with
  | Ok got -> Alcotest.(check bool) "sql door identical" true (got = expected)
  | Error e -> Alcotest.failf "sql: %s" (Voodoo_core.Verror.to_string e)

let test_dead_shard_failover () =
  let addrs = Lazy.force fleet in
  let dead =
    Server.Unix_socket
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "voodoo_dead_%d.sock" (Unix.getpid ())))
  in
  (* shard 1's worker is unreachable: its fragments must fail over *)
  let coord = coordinator ~retries:0 [ List.hd addrs; dead ] in
  check_identical coord "dead-shard";
  let failovers = List.assoc "coord.failovers" (Coordinator.stats_fields coord) in
  Alcotest.(check bool) "failovers recorded" true (failovers > 0.)

let test_chaos_stalled_shard () =
  let addrs = Lazy.force fleet in
  let upstream = List.nth addrs 1 in
  let listen =
    Server.Unix_socket
      (Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "voodoo_chaos_%d.sock" (Unix.getpid ())))
  in
  let proxy =
    Chaos.start ~seed:7
      ~weights:
        {
          Chaos.w_pass = 1;
          w_drop_connect = 0;
          w_stall = 1;
          w_garbage = 0;
          w_kill = 0;
          w_trickle = 0;
        }
      ~stall_ms:30_000. ~upstream ~listen ()
  in
  Fun.protect
    ~finally:(fun () -> Chaos.stop proxy)
    (fun () ->
      (* shard 1 sits behind the stalling proxy: the hedge (or, failing
         that, the per-attempt timeout and failover) must still answer,
         bit-identically *)
      let coord =
        coordinator ~hedge_ms:150. ~rpc_timeout_ms:2_000. ~retries:2
          [ List.hd addrs; listen ]
      in
      check_identical coord "chaos-stall";
      let fields = Coordinator.stats_fields coord in
      let v k = List.assoc k fields in
      let recovered =
        v "coord.rpc.hedges" +. v "coord.rpc.retries" +. v "coord.failovers"
      in
      Alcotest.(check bool) "stall forced recovery work" true (recovered > 0.);
      let st = Chaos.stats proxy in
      Alcotest.(check bool) "proxy actually stalled a connection" true
        (st.Chaos.stalled > 0))

let () =
  Alcotest.run "distrib"
    [
      ( "ring",
        [
          Alcotest.test_case "determinism" `Quick test_ring_determinism;
          Alcotest.test_case "balance" `Quick test_ring_balance;
          Alcotest.test_case "minimal movement" `Quick test_ring_minimal_movement;
          Alcotest.test_case "preference order" `Quick test_ring_preference;
        ] );
      ( "merge",
        [ Alcotest.test_case "strategy analysis" `Quick test_strategy_analysis ] );
      ( "differential",
        [
          Alcotest.test_case "1/2/4 shards bit-identical" `Slow
            test_differential_1_2_4;
          Alcotest.test_case "sql door + odd extent grain" `Slow
            test_sql_and_extent_grain;
        ] );
      ( "faults",
        [
          Alcotest.test_case "dead shard fails over" `Slow
            test_dead_shard_failover;
          Alcotest.test_case "stalled shard recovers hedged" `Slow
            test_chaos_stalled_shard;
        ] );
    ]
