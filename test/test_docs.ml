(* Documentation lint: every internal markdown link, every backticked
   repo path and every cited `Voodoo_x.Module` name in the prose must
   resolve to something that actually exists in the tree.  Runs under
   `dune runtest` (hence `make check` / @check), so doc drift fails the
   build. *)

(* Tests execute in _build/default/test; the prose lives in the source
   tree, so walk up to the first ancestor that has both a dune-project
   and a docs/ directory (_build/default has no docs/ — markdown files
   are not build deps). *)
let repo_root =
  let rec up d =
    if
      Sys.file_exists (Filename.concat d "dune-project")
      && Sys.file_exists (Filename.concat d "docs")
      && Sys.is_directory (Filename.concat d "docs")
    then d
    else
      let parent = Filename.dirname d in
      if parent = d then failwith "cannot locate the repository root"
      else up parent
  in
  up (Sys.getcwd ())

let in_repo path = Filename.concat repo_root path

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* The linted set: the top-level prose plus everything under docs/. *)
let doc_files () =
  let top =
    List.filter
      (fun f -> Sys.file_exists (in_repo f))
      [ "README.md"; "DESIGN.md"; "EXPERIMENTS.md"; "ROADMAP.md" ]
  in
  let docs =
    Sys.readdir (in_repo "docs") |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".md")
    |> List.map (fun f -> Filename.concat "docs" f)
    |> List.sort compare
  in
  top @ docs

(* library name (voodoo_core) → source directory (lib/core) *)
let lib_dirs () =
  Sys.readdir (in_repo "lib") |> Array.to_list
  |> List.filter_map (fun d ->
         let dune = in_repo (Filename.concat (Filename.concat "lib" d) "dune") in
         if Sys.file_exists dune then
           let text = read_file dune in
           match Str.search_forward (Str.regexp "(name +\\([a-z_]+\\))") text 0 with
           | _ -> Some (Str.matched_group 1 text, Filename.concat "lib" d)
           | exception Not_found -> None
         else None)

(* All matches of [group 1] of [re] in [text]. *)
let matches re text =
  let rec go pos acc =
    match Str.search_forward re text pos with
    | _ ->
        let m = Str.matched_group 1 text in
        go (Str.match_end ()) (m :: acc)
    | exception Not_found -> List.rev acc
  in
  go 0 []

let starts_with p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* --- markdown links --- *)

let test_links () =
  let errors = ref [] in
  List.iter
    (fun file ->
      let text = read_file (in_repo file) in
      List.iter
        (fun target ->
          if
            not
              (starts_with "http://" target || starts_with "https://" target
             || starts_with "mailto:" target || starts_with "#" target)
          then begin
            let path =
              match String.index_opt target '#' with
              | Some i -> String.sub target 0 i
              | None -> target
            in
            if path <> "" then
              let resolved =
                Filename.concat
                  (Filename.dirname (in_repo file))
                  path
              in
              if not (Sys.file_exists resolved) then
                errors := Printf.sprintf "%s: broken link -> %s" file target :: !errors
          end)
        (matches (Str.regexp "](\\([^)]+\\))") text))
    (doc_files ());
  if !errors <> [] then
    Alcotest.failf "broken markdown links:\n  %s"
      (String.concat "\n  " (List.rev !errors))

(* --- backticked repo paths --- *)

let path_ok candidate =
  let p = in_repo candidate in
  Sys.file_exists p

let all_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* A backticked token is treated as a repo path (and linted) only when it
   is unambiguously one: relative, slash-separated, rooted at an existing
   top-level directory, with no numeric segments (those are arithmetic,
   e.g. `n/1024`).  Everything else is prose and ignored. *)
let looks_like_path c =
  String.contains c '/'
  && (not (starts_with "/" c))
  && Str.string_match (Str.regexp "^[A-Za-z0-9_./-]+$") c 0
  && (not (starts_with "_build" c))
  && not (starts_with "http" c)
  &&
  let segments = String.split_on_char '/' (Filename.chop_suffix_opt ~suffix:"/" c |> Option.value ~default:c) in
  (not (List.exists all_digits segments))
  && (match segments with
     | first :: _ :: _ ->
         Sys.file_exists (in_repo first) && Sys.is_directory (in_repo first)
     | _ -> false)
  (* source or doc files, or bare directories — not output artifacts or
     glob patterns the prose talks about *)
  && (List.exists (fun ext -> Filename.check_suffix c ext) [ ".ml"; ".mli"; ".md"; ".voo" ]
     || not (String.contains (Filename.basename c) '.'))

let test_paths () =
  let errors = ref [] in
  List.iter
    (fun file ->
      let text = read_file (in_repo file) in
      List.iter
        (fun c ->
          if looks_like_path c && not (path_ok c) then
            errors := Printf.sprintf "%s: `%s` does not exist" file c :: !errors)
        (matches (Str.regexp "`\\([^`\n]+\\)`") text))
    (doc_files ());
  if !errors <> [] then
    Alcotest.failf "backticked paths that resolve to nothing:\n  %s"
      (String.concat "\n  " (List.rev !errors))

(* --- orphan pages --- *)

(* Every page under docs/ must be reachable: linked (as a markdown link
   target) from at least one *other* linted page.  A page nothing points
   to is documentation nobody will find — add a link from README.md or a
   sibling page, or delete the page. *)
let test_orphans () =
  let linked = Hashtbl.create 16 in
  List.iter
    (fun file ->
      let text = read_file (in_repo file) in
      List.iter
        (fun target ->
          let path =
            match String.index_opt target '#' with
            | Some i -> String.sub target 0 i
            | None -> target
          in
          if path <> "" then
            let resolved =
              Filename.concat (Filename.dirname (in_repo file)) path
            in
            if Sys.file_exists resolved then
              let rel =
                (* normalize to a repo-relative docs/… key *)
                Filename.concat "docs" (Filename.basename resolved)
              in
              if Filename.dirname file <> "docs"
                 || Filename.basename resolved <> Filename.basename file
              then Hashtbl.replace linked rel ())
        (matches (Str.regexp "](\\([^)]+\\))") text))
    (doc_files ());
  let orphans =
    Sys.readdir (in_repo "docs") |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".md")
    |> List.map (fun f -> Filename.concat "docs" f)
    |> List.filter (fun p -> not (Hashtbl.mem linked p))
  in
  if orphans <> [] then
    Alcotest.failf "docs pages nothing links to:\n  %s"
      (String.concat "\n  " orphans)

(* --- cited module names --- *)

let test_modules () =
  let libs = lib_dirs () in
  let errors = ref [] in
  List.iter
    (fun file ->
      let text = read_file (in_repo file) in
      List.iter
        (fun m ->
          match String.split_on_char '.' m with
          | lib_cap :: modname :: _ -> (
              let lib = String.lowercase_ascii lib_cap in
              match List.assoc_opt lib libs with
              | None ->
                  errors :=
                    Printf.sprintf "%s: `%s` names unknown library %s" file m lib
                    :: !errors
              | Some dir ->
                  let base = String.uncapitalize_ascii modname in
                  let candidates =
                    [
                      Filename.concat dir (base ^ ".ml");
                      Filename.concat dir (base ^ ".mli");
                    ]
                  in
                  if not (List.exists path_ok candidates) then
                    errors :=
                      Printf.sprintf "%s: `%s` has no source file under %s" file
                        m dir
                      :: !errors)
          | _ -> ())
        (matches (Str.regexp "\\(Voodoo_[a-z_]+\\.[A-Z][A-Za-z0-9_]*\\)") text))
    (doc_files ());
  if !errors <> [] then
    Alcotest.failf "cited modules that resolve to nothing:\n  %s"
      (String.concat "\n  " (List.rev !errors))

let () =
  Alcotest.run "docs"
    [
      ( "lint",
        [
          Alcotest.test_case "markdown links resolve" `Quick test_links;
          Alcotest.test_case "backticked paths resolve" `Quick test_paths;
          Alcotest.test_case "no orphan docs pages" `Quick test_orphans;
          Alcotest.test_case "cited modules resolve" `Quick test_modules;
        ] );
    ]
