(* Differential tests for the vector-similarity subsystem (docs/VSIM.md).

   The distance kernels are ordinary Voodoo programs, so they get the
   full three-way differential treatment: raw tiled execution ≡ the
   interpreter ≡ a naive OCaml reference, on seeded embeddings that
   include retracted (all-ε) rows and NaN components, at prime row
   counts × tile widths × job counts.  The IVF coarse index gets the
   same discipline the tree walk gives raw execution: with
   nprobe = nlist it must return bit-identical rows to the
   exhaustive-scan oracle at any job count. *)

module Embedding = Voodoo_vsim.Embedding
module Dist = Voodoo_vsim.Dist
module Topk = Voodoo_vsim.Topk
module Ivf = Voodoo_vsim.Ivf
module Query = Voodoo_vsim.Query
module Dataset = Voodoo_vsim.Dataset
module Codegen = Voodoo_compiler.Codegen
module Interp = Voodoo_interp.Interp
module Column = Voodoo_vector.Column
module Svector = Voodoo_vector.Svector
module Scalar = Voodoo_vector.Scalar
module Budget = Voodoo_core.Budget

let opts ?(tile_width = Codegen.default_options.tile_width)
    ?(zone_maps = true) ?(jobs = 1) () =
  {
    Codegen.default_options with
    exec = Codegen.Closure { instrument = false; jobs };
    tile_width;
    zone_maps;
  }

(* a float option read of a score column slot; NaN compares equal to NaN *)
let score_eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Float.equal x y || (Float.is_nan x && Float.is_nan y)
  | _ -> false

let col_score c i =
  match Column.get c i with
  | None -> None
  | Some (Scalar.F f) -> Some f
  | Some s -> Alcotest.failf "score %d is not a float: %s" i (Fmt.str "%a" Scalar.pp s)

(* seeded embeddings with some retracted rows and (optionally) NaN
   components, per the satellite spec *)
let j_nan i dim = i * 13 mod dim

let mk_emb ?(nan_rows = []) ?(retract_rows = []) ~seed ~dim n =
  let rows =
    Array.init n (fun i ->
        let r =
          Array.init dim (fun j ->
              Float.of_int (((i * 31) + (j * 7) + seed) mod 97) /. 9.7
              -. 5.0)
        in
        if List.mem i nan_rows then r.(j_nan i dim) <- Float.nan;
        r)
  in
  let e = Embedding.of_rows ~dim rows in
  List.iter (Embedding.retract e) retract_rows;
  e

let mk_query ~seed dim =
  Array.init dim (fun j -> Float.of_int (((j * 17) + seed) mod 23) /. 4.6 -. 2.0)

(* --- three-way differential: compiled tiled ≡ interp ≡ reference --- *)

let check_three_way ~name ~options emb query metric =
  let dsname = "emb" in
  let compiled = Dist.compile ~options ~metric ~name:dsname emb in
  let scores = Dist.run compiled emb ~query in
  let refs = Dist.reference ~metric emb ~query in
  Alcotest.(check int) (name ^ ": length") emb.Embedding.n (Column.length scores);
  Array.iteri
    (fun i r ->
      let got = col_score scores i in
      if not (score_eq got r) then
        Alcotest.failf "%s: row %d compiled=%s reference=%s" name i
          (match got with None -> "ε" | Some f -> Printf.sprintf "%h" f)
          (match r with None -> "ε" | Some f -> Printf.sprintf "%h" f))
    refs;
  (* interp runs the same program text on the same store *)
  let p, scores_id = Dist.program ~metric ~name:dsname ~n:emb.Embedding.n ~dim:emb.Embedding.dim in
  let store = Dist.store_of ~name:dsname emb ~query in
  let env = Interp.run store p in
  let iv = Hashtbl.find env scores_id in
  let icol = Dist.the_column iv in
  Array.iteri
    (fun i r ->
      if not (score_eq (col_score icol i) r) then
        Alcotest.failf "%s: row %d interp diverges from reference" name i)
    refs

let test_differential () =
  List.iter
    (fun (n, dim) ->
      List.iter
        (fun tile_width ->
          List.iter
            (fun jobs ->
              List.iter
                (fun metric ->
                  let emb =
                    mk_emb ~nan_rows:[ 1; n / 2 ]
                      ~retract_rows:[ 0; n - 1; n / 3 ]
                      ~seed:(n + tile_width) ~dim n
                  in
                  let query = mk_query ~seed:jobs dim in
                  let name =
                    Printf.sprintf "%s n=%d dim=%d tw=%d jobs=%d"
                      (Dist.metric_name metric) n dim tile_width jobs
                  in
                  check_three_way ~name
                    ~options:(opts ~tile_width ~jobs ())
                    emb query metric)
                [ Dist.Dot; Dist.L2; Dist.Cosine ])
            [ 1; 2; 4 ])
        [ 320; 1024 ])
    [ (257, 7); (101, 16) ]

(* --- top-k: chunk invariance and deterministic tie-breaks --- *)

let test_topk () =
  let n = 997 in
  (* scores with heavy ties and some NaN/ε slots *)
  let score i =
    if i mod 53 = 0 then None
    else if i mod 97 = 0 then Some Float.nan
    else Some (Float.of_int (i mod 17))
  in
  let base = Topk.select ~k:25 ~largest:true ~n score in
  List.iter
    (fun chunks ->
      let got = Topk.select ~chunks ~k:25 ~largest:true ~n score in
      if got <> base then
        Alcotest.failf "topk: %d-chunk scan diverges from sequential" chunks)
    [ 2; 3; 4; 7; 16 ];
  (* ties broke to the lower row id, best first *)
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        let ok =
          a.Topk.score > b.Topk.score
          || (Float.equal a.Topk.score b.Topk.score && a.Topk.row < b.Topk.row)
        in
        ok && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "rank order with id tie-break" true (ordered base);
  List.iter
    (fun e ->
      if Float.is_nan e.Topk.score then Alcotest.fail "NaN score ranked")
    base;
  (* smaller-is-better direction *)
  let asc = Topk.select ~k:5 ~largest:false ~n score in
  Alcotest.(check bool) "l2 direction" true
    (List.for_all (fun e -> Float.equal e.Topk.score 0.0) asc)

(* --- IVF: nprobe = nlist is bit-identical to the exhaustive oracle --- *)

let entries_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Topk.entry) (y : Topk.entry) ->
         x.Topk.row = y.Topk.row && Float.equal x.Topk.score y.Topk.score)
       a b

let test_ivf_oracle () =
  List.iter
    (fun (seed, n, dim, nlist) ->
      let ds =
        Dataset.synth ~options:(opts ()) ~seed ~dim ~nlist ~name:"docs" n
      in
      List.iter (Embedding.retract ds.Dataset.emb) [ 2; n / 2 ];
      let query = Dataset.synth_query ds ~seed:(seed + 1) in
      List.iter
        (fun metric ->
          List.iter
            (fun jobs ->
              let exec = Codegen.Closure { instrument = false; jobs } in
              let ivf =
                Ivf.search ~exec ds.Dataset.index ~metric ~query ~k:10
                  ~nprobe:ds.Dataset.index.Ivf.nlist
              in
              let oracle =
                Ivf.exhaustive ~exec ~chunks:jobs ds.Dataset.index ~metric
                  ~query ~k:10
              in
              if not (entries_equal ivf oracle) then
                Alcotest.failf
                  "ivf[seed=%d %s jobs=%d]: nprobe=nlist diverges from                    exhaustive oracle"
                  seed (Dist.metric_name metric) jobs;
              Alcotest.(check bool)
                "oracle returned rows" true
                (List.length oracle > 0))
            [ 1; 2; 4 ])
        [ Dist.Dot; Dist.L2; Dist.Cosine ])
    [ (7, 400, 8, 8); (11, 603, 5, 16); (13, 257, 3, 4) ]

(* hybrid filter + rank: IVF at full probe ≡ filtered oracle ≡ naive *)
let test_ivf_filter () =
  let ds = Dataset.synth ~options:(opts ()) ~seed:3 ~dim:6 ~nlist:8 ~name:"d" 350 in
  let q =
    Query.
      {
        dataset = "d";
        vector = Dataset.synth_query ds ~seed:9;
        metric = Dist.L2;
        nprobe = Some ds.Dataset.index.Ivf.nlist;
        exhaustive = false;
        k = 12;
        filter = Some ("tag", Query.Le, 4.0);
      }
  in
  let got = Result.get_ok (Dataset.answer ds q) in
  let oracle = Result.get_ok (Dataset.answer_oracle ds q) in
  if not (entries_equal got oracle) then
    Alcotest.fail "filtered IVF diverges from filtered oracle";
  let tag = List.assoc "tag" ds.Dataset.attrs in
  List.iter
    (fun (e : Topk.entry) ->
      match Column.get tag e.Topk.row with
      | Some s when Scalar.to_float s <= 4.0 -> ()
      | _ -> Alcotest.failf "row %d violates the WHERE filter" e.Topk.row)
    got;
  Alcotest.(check bool) "filter kept some rows" true (List.length got > 0)

(* recall at the default probe count on a clustered dataset *)
let test_recall () =
  let ds = Dataset.synth ~options:(opts ()) ~seed:21 ~dim:16 ~nlist:16 ~name:"r" 2000 in
  let qs = List.init 20 (fun i -> Dataset.synth_query ds ~seed:(100 + i)) in
  let total =
    List.fold_left
      (fun acc query ->
        let got =
          Ivf.search ds.Dataset.index ~metric:Dist.L2 ~query ~k:10
            ~nprobe:Codegen.default_options.Codegen.nprobe
        in
        let oracle = Ivf.exhaustive ds.Dataset.index ~metric:Dist.L2 ~query ~k:10 in
        acc +. Ivf.recall ~got ~oracle)
      0.0 qs
  in
  let r = total /. 20.0 in
  if r < 0.9 then
    Alcotest.failf "recall@10 at default nprobe is %.3f, want >= 0.9" r

(* deadlines/cancellation: an expired budget aborts between partitions *)
let test_budget () =
  let ds = Dataset.synth ~options:(opts ()) ~seed:5 ~dim:4 ~nlist:4 ~name:"b" 200 in
  let tok = Budget.token () in
  Budget.cancel ~reason:"test" tok;
  let budget = Budget.with_token Budget.unlimited tok in
  match
    Ivf.search ~budget ds.Dataset.index ~metric:Dist.Dot
      ~query:(Dataset.synth_query ds ~seed:1) ~k:5 ~nprobe:4
  with
  | _ -> Alcotest.fail "cancelled search returned results"
  | exception Budget.Exceeded _ -> ()

(* --- query text --- *)

let test_query_parse () =
  let ok =
    Query.parse
      "select * from docs where tag >= 3 similarity to (0.5, -1, 2.25) metric        cosine nprobe 4 limit 7"
  in
  (match ok with
  | Ok q ->
      Alcotest.(check string) "dataset" "docs" q.Query.dataset;
      Alcotest.(check int) "k" 7 q.Query.k;
      Alcotest.(check (option int)) "nprobe" (Some 4) q.Query.nprobe;
      Alcotest.(check bool) "metric" true (q.Query.metric = Dist.Cosine);
      Alcotest.(check bool) "filter" true
        (q.Query.filter = Some ("tag", Query.Ge, 3.0));
      Alcotest.(check (array (float 0.0))) "vector" [| 0.5; -1.0; 2.25 |]
        q.Query.vector
  | Error e -> Alcotest.failf "parse failed: %s" e);
  Alcotest.(check bool) "detect" true
    (Query.is_similarity "SELECT * FROM t SIMILARITY TO (1) LIMIT 1");
  Alcotest.(check bool) "detect ci" true
    (Query.is_similarity "select * from t similarity to (1)");
  Alcotest.(check bool) "not similarity" false
    (Query.is_similarity "SELECT count(*) FROM lineitem");
  List.iter
    (fun bad ->
      match Query.parse bad with
      | Ok _ -> Alcotest.failf "accepted bad query: %s" bad
      | Error _ -> ())
    [
      "SELECT * FROM";
      "SELECT * FROM d SIMILARITY TO (1, x)";
      "SELECT * FROM d SIMILARITY TO (1, 2";
      "SELECT * FROM d SIMILARITY TO () LIMIT 3";
      "SELECT * FROM d SIMILARITY TO (1) METRIC hamming";
      "SELECT * FROM d SIMILARITY TO (1) LIMIT 0";
      "SELECT * FROM d WHERE tag ~ 3 SIMILARITY TO (1)";
    ];
  (* render is a stable canonical form: parse ∘ render = id *)
  match Query.parse "SELECT * FROM d SIMILARITY TO (1, 2) NPROBE 2 LIMIT 3" with
  | Ok q ->
      Alcotest.(check string) "render fixpoint" (Query.render q)
        (Query.render (Result.get_ok (Query.parse (Query.render q))))
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e

let () =
  let argv = Sys.argv in
  Alcotest.run ~argv "vsim"
    [
      ("differential", [ Alcotest.test_case "three-way" `Quick test_differential ]);
      ("topk", [ Alcotest.test_case "chunks+ties" `Quick test_topk ]);
      ( "ivf",
        [
          Alcotest.test_case "oracle" `Quick test_ivf_oracle;
          Alcotest.test_case "filter" `Quick test_ivf_filter;
          Alcotest.test_case "recall" `Quick test_recall;
          Alcotest.test_case "budget" `Quick test_budget;
        ] );
      ("query", [ Alcotest.test_case "parse" `Quick test_query_parse ]);
    ]
