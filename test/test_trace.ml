(* The observability layer: span nesting invariants (including exception
   safety), per-fragment counter attribution against the engine's own
   kernel report, EXPLAIN (fragment DAG + estimates, with a golden
   rendering for TPC-H Q6), trace visibility of resilient fallbacks, and
   well-formedness of the Chrome trace-event JSON exporter. *)

module Trace = Voodoo_core.Trace
module E = Voodoo_engine.Engine
module R = Voodoo_engine.Resilient
module F = Voodoo_engine.Faults
module Q = Voodoo_tpch.Queries
module Dbgen = Voodoo_tpch.Dbgen
module Explain = Voodoo_compiler.Explain
module Fragment = Voodoo_compiler.Fragment
module Events = Voodoo_device.Events
module Verror = Voodoo_core.Verror

let sf = 0.002

let catalog = lazy (Dbgen.generate ~sf ())

let query name = Option.get (Q.find ~sf name)

(* Run [name] on the compiled engine under a fresh trace; returns the
   trace and the last phase's compiled run (kernels + fragment plan). *)
let traced_compiled name =
  let cat = Lazy.force catalog in
  let q = query name in
  let t = Trace.create () in
  let last = ref None in
  ignore
    (q.run
       (fun c p ->
         let r = E.compiled_full ~trace:t c p in
         last := Some r;
         r.E.rows)
       cat);
  (t, Option.get !last)

(* --- span nesting --- *)

let test_nesting () =
  let t = Trace.create () in
  let tr = Some t in
  let got =
    Trace.with_span tr "a" (fun () ->
        Trace.count tr "x" 1.0;
        Trace.with_span tr "b" (fun () ->
            Trace.count tr "x" 2.0;
            Trace.with_span tr "c" (fun () -> Trace.count tr "x" 4.0));
        Trace.with_span tr "d" (fun () -> ());
        "result")
  in
  Alcotest.(check string) "with_span returns f's value" "result" got;
  let names = List.map (fun (s : Trace.span) -> s.name) (Trace.spans t) in
  Alcotest.(check (list string)) "start order" [ "a"; "b"; "c"; "d" ] names;
  let by_name n = List.hd (Trace.find_all t n) in
  let a = by_name "a" and b = by_name "b" and c = by_name "c" and d = by_name "d" in
  Alcotest.(check (option int)) "a is a root" None a.parent;
  Alcotest.(check (option int)) "b under a" (Some a.sid) b.parent;
  Alcotest.(check (option int)) "c under b" (Some b.sid) c.parent;
  Alcotest.(check (option int)) "d under a" (Some a.sid) d.parent;
  Alcotest.(check int) "depths" 2 c.depth;
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool) (s.name ^ " closed") true s.closed;
      Alcotest.(check bool) (s.name ^ " stop after start") true
        (s.stop_s >= s.start_s))
    (Trace.spans t);
  (* counters land on the innermost open span *)
  Alcotest.(check (float 1e-9)) "a.x" 1.0 (Trace.counter a "x");
  Alcotest.(check (float 1e-9)) "b.x" 2.0 (Trace.counter b "x");
  Alcotest.(check (float 1e-9)) "c.x" 4.0 (Trace.counter c "x");
  Alcotest.(check (float 1e-9)) "subtree from b" 6.0 (Trace.subtree_total t b "x");
  Alcotest.(check (float 1e-9)) "total" 7.0 (Trace.total t "x")

let test_exception_safety () =
  let t = Trace.create () in
  let tr = Some t in
  (try
     Trace.with_span tr "outer" (fun () ->
         Trace.with_span tr "boom" (fun () -> failwith "die"))
   with Failure _ -> ());
  let boom = List.hd (Trace.find_all t "boom") in
  let outer = List.hd (Trace.find_all t "outer") in
  Alcotest.(check bool) "raising span closed" true boom.closed;
  Alcotest.(check bool) "outer closed too" true outer.closed;
  Alcotest.(check bool) "error attr recorded" true
    (List.mem_assoc "error" boom.attrs);
  (* the open-span stack unwound: new spans are roots again *)
  Trace.with_span tr "after" (fun () -> ());
  let after = List.hd (Trace.find_all t "after") in
  Alcotest.(check (option int)) "stack unwound" None after.parent

let test_orphans_and_none () =
  let t = Trace.create () in
  Trace.count (Some t) "loose" 5.0;
  Alcotest.(check (float 1e-9)) "orphan counted in total" 5.0
    (Trace.total t "loose");
  Alcotest.(check int) "no span materialized" 0 (List.length (Trace.spans t));
  (* None context: everything is a no-op and values flow through *)
  Alcotest.(check int) "None passthrough" 7
    (Trace.with_span None "x" (fun () -> 7));
  Trace.count None "y" 1.0;
  Trace.set None "k" "v"

(* --- per-fragment counter attribution --- *)

let test_fragment_attribution () =
  let t, r = traced_compiled "Q6" in
  Alcotest.(check bool) "ran some fragments" true (List.length r.E.kernels > 0);
  (* each fragment span carries exactly the events the engine reported
     for that kernel *)
  List.iteri
    (fun i (extent, ev) ->
      match Trace.find_all t (Printf.sprintf "fragment:%d" i) with
      | [ span ] ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "fragment %d extent" i)
            (float_of_int extent)
            (Trace.counter span "fragment.extent");
          List.iter
            (fun (name, v) ->
              Alcotest.(check (float 1e-6))
                (Printf.sprintf "fragment %d %s" i name)
                v (Trace.counter span name))
            (Events.totals ev)
      | spans ->
          Alcotest.failf "expected one span for fragment %d, found %d" i
            (List.length spans))
    r.E.kernels;
  (* trace-wide totals reconcile with the engine's end-to-end report *)
  List.iter
    (fun name ->
      let from_kernels =
        List.fold_left
          (fun acc (_, ev) -> acc +. List.assoc name (Events.totals ev))
          0.0 r.E.kernels
      in
      Alcotest.(check (float 1e-6)) ("total " ^ name) from_kernels
        (Trace.total t name))
    [ "alu.int"; "alu.float"; "mem.bytes"; "branch.total" ];
  (* the span tree has the documented shape *)
  let root =
    match Trace.roots t with
    | [ r ] -> r
    | l -> Alcotest.failf "expected one root span, found %d" (List.length l)
  in
  Alcotest.(check string) "root" "engine:compiled" root.Trace.name;
  let kids = List.map (fun (s : Trace.span) -> s.name) (Trace.children t root) in
  Alcotest.(check (list string)) "pipeline stages"
    [ "lower"; "compile"; "execute"; "fetch" ] kids;
  let execute =
    List.find (fun (s : Trace.span) -> s.name = "execute") (Trace.children t root)
  in
  List.iteri
    (fun i _ ->
      let f = List.hd (Trace.find_all t (Printf.sprintf "fragment:%d" i)) in
      Alcotest.(check (option int))
        (Printf.sprintf "fragment %d under execute" i)
        (Some execute.Trace.sid) f.Trace.parent)
    r.E.kernels

let test_interp_spans () =
  let cat = Lazy.force catalog in
  let q = query "Q6" in
  let t = Trace.create () in
  ignore (q.run (fun c p -> E.interp ~trace:t c p) cat);
  let stmts =
    List.filter
      (fun (s : Trace.span) -> String.starts_with ~prefix:"stmt:" s.name)
      (Trace.spans t)
  in
  Alcotest.(check bool) "per-statement spans" true (List.length stmts > 10);
  (* "steps" counts element slots produced (Budget's unit), attributed to
     the statement spans that produced them *)
  let per_span =
    List.fold_left (fun acc s -> acc +. Trace.counter s "steps") 0.0 stmts
  in
  Alcotest.(check bool) "steps were counted" true (per_span > 0.0);
  Alcotest.(check (float 1e-6)) "steps attributed to statement spans" per_span
    (Trace.total t "steps")

(* --- resilient fallbacks are visible in the trace --- *)

let test_resilient_trace () =
  let cat = Lazy.force catalog in
  let q = query "Q6" in
  let spec =
    match F.parse "kernel:0" with Ok s -> s | Error m -> Alcotest.fail m
  in
  let t = Trace.create () in
  let rows =
    F.with_spec ~seed:42 spec (fun () ->
        q.run
          (fun c p ->
            match R.execute ~trace:t R.default_policy c p with
            | Ok (rows, _) -> rows
            | Error e ->
                Alcotest.failf "resilient run failed: %s" (Verror.to_string e))
          cat)
  in
  Alcotest.(check bool) "still answered" true (List.length rows > 0);
  Alcotest.(check bool) "fallback counted" true
    (Trace.total t "resilient.fallbacks" >= 1.0);
  Alcotest.(check bool) "errors counted" true
    (Trace.total t "resilient.errors" >= 1.0);
  let failed = List.hd (Trace.find_all t "attempt:compiled") in
  (match List.assoc_opt "outcome" failed.attrs with
  | Some o -> Alcotest.(check bool) "compiled attempt failed" true (o <> "ok")
  | None -> Alcotest.fail "attempt span has no outcome attribute");
  let recovered = List.hd (Trace.find_all t "attempt:interp") in
  Alcotest.(check (option string)) "interp attempt answered" (Some "ok")
    (List.assoc_opt "outcome" recovered.attrs)

(* --- EXPLAIN: DAG structure, estimates, golden rendering --- *)

let test_explain_structure () =
  List.iter
    (fun name ->
      let _, r = traced_compiled name in
      let plan = r.E.plan in
      let frags = plan.Fragment.frags in
      let dag = Explain.deps plan in
      let est = Explain.estimate plan in
      Alcotest.(check int)
        (name ^ ": one deps entry per fragment")
        (List.length frags) (List.length dag);
      Alcotest.(check int)
        (name ^ ": one estimate per fragment")
        (List.length frags) (List.length est);
      List.iteri
        (fun i (d : Explain.frag_deps) ->
          Alcotest.(check int) (name ^ ": deps in fragment order") i d.index;
          List.iter
            (fun src ->
              Alcotest.(check bool)
                (name ^ ": edges point backwards")
                true (src < d.index))
            d.inputs)
        dag;
      Alcotest.(check bool)
        (name ^ ": some fragment reads the store")
        true
        (List.exists (fun (d : Explain.frag_deps) -> d.from_store) dag);
      List.iter2
        (fun (f : Fragment.frag) (extent, _) ->
          Alcotest.(check int)
            (name ^ ": estimate extent matches fragment")
            f.extent extent)
        frags est;
      (* estimates and measurements are the same shape, so the comparison
         table renders for any query *)
      let rendered =
        Fmt.str "%a" (fun ppf p -> Explain.pp_compare ppf p ~measured:r.E.kernels) plan
      in
      Alcotest.(check bool)
        (name ^ ": comparison has a totals row")
        true
        (List.exists
           (fun line -> String.starts_with ~prefix:"total" line)
           (String.split_on_char '\n' rendered)))
    [ "Q1"; "Q6"; "Q9" ]

let q6_golden_dag =
  "fragment DAG (2 fragments, est. on cpu-simd):\n\
  \  F0 [extent=3 intent=4096 domain=12093] runlen=4096 <- store\n\
  \     stmts: v3[reg], v6[reg], v8[reg], v9[reg], v12[reg], v14[reg], \
   v15[reg], v16[reg], v17[reg], v22[reg], v23[reg], v25[reg], v26[reg], \
   v31[global]\n\
  \     est: 0.026 ms  alu=157208 mem=48376B branch=12093 guarded=6046\n\
  \  F1 [extent=1 intent=12093 domain=12093] runlen=12093 <- F0\n\
  \     stmts: v32[global]\n\
  \     est: 0.004 ms  alu=2 mem=12B branch=0 guarded=0\n\
  \  total est: 0.030 ms on cpu-simd"

let test_explain_golden () =
  let _, r = traced_compiled "Q6" in
  let rendered = Fmt.str "%a" (Explain.pp_dag ?device:None) r.E.plan in
  Alcotest.(check string) "Q6 fragment DAG (sf 0.002)" q6_golden_dag rendered

(* --- Chrome trace-event JSON --- *)

(* A minimal JSON reader — just enough to establish that the exporter's
   hand-rolled output is well-formed (the repo deliberately has no JSON
   dependency). *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (text : string) : json =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then text.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match text.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
      | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () <> c then fail (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      let c = peek () in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          let e = peek () in
          advance ();
          match e with
          | '"' -> Buffer.add_char b '"'; go ()
          | '\\' -> Buffer.add_char b '\\'; go ()
          | '/' -> Buffer.add_char b '/'; go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%s" hex);
              go ()
          | _ -> fail "bad escape")
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" s)
  in
  let literal word value =
    if
      !pos + String.length word <= n
      && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        obj []
    | '[' ->
        advance ();
        arr []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> fail "unexpected character"
  and obj acc =
    skip_ws ();
    if peek () = '}' then begin
      advance ();
      Obj (List.rev acc)
    end
    else begin
      let k = parse_string () in
      expect ':';
      let v = value () in
      skip_ws ();
      match peek () with
      | ',' ->
          advance ();
          obj ((k, v) :: acc)
      | '}' ->
          advance ();
          Obj (List.rev ((k, v) :: acc))
      | _ -> fail "expected ',' or '}'"
    end
  and arr acc =
    skip_ws ();
    if peek () = ']' then begin
      advance ();
      Arr (List.rev acc)
    end
    else begin
      let v = value () in
      skip_ws ();
      match peek () with
      | ',' ->
          advance ();
          arr (v :: acc)
      | ']' ->
          advance ();
          Arr (List.rev (v :: acc))
      | _ -> fail "expected ',' or ']'"
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let test_chrome_json () =
  let t, _ = traced_compiled "Q6" in
  let doc =
    match parse_json (Trace.to_chrome_json t) with
    | j -> j
    | exception Bad_json m -> Alcotest.failf "exporter emitted bad JSON: %s" m
  in
  let events =
    match field "traceEvents" doc with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let closed =
    List.filter (fun (s : Trace.span) -> s.closed) (Trace.spans t)
  in
  Alcotest.(check int) "one event per closed span" (List.length closed)
    (List.length events);
  List.iter
    (fun ev ->
      (match field "ph" ev with
      | Some (Str "X") -> ()
      | _ -> Alcotest.fail "event is not a complete ('X') event");
      (match field "name" ev with
      | Some (Str _) -> ()
      | _ -> Alcotest.fail "event has no name");
      List.iter
        (fun k ->
          match field k ev with
          | Some (Num v) ->
              Alcotest.(check bool) (k ^ " non-negative") true (v >= 0.0)
          | _ -> Alcotest.failf "event field %s missing or non-numeric" k)
        [ "ts"; "dur"; "pid"; "tid" ])
    events

let test_chrome_json_escaping () =
  let t = Trace.create () in
  let tricky = "he said \"hi\"\\\n\ttab & <xml> \x01" in
  Trace.with_span (Some t) ~attrs:[ ("note", tricky) ] "weird \"name\""
    (fun () -> Trace.count (Some t) "c\"ount" 1.5);
  let doc =
    match parse_json (Trace.to_chrome_json t) with
    | j -> j
    | exception Bad_json m -> Alcotest.failf "escaping broke the JSON: %s" m
  in
  match field "traceEvents" doc with
  | Some (Arr [ ev ]) -> (
      (match field "name" ev with
      | Some (Str n) -> Alcotest.(check string) "name round-trips" "weird \"name\"" n
      | _ -> Alcotest.fail "no name");
      match field "args" ev with
      | Some args -> (
          match field "note" args with
          | Some (Str _) -> ()
          | _ -> Alcotest.fail "attribute lost")
      | None -> Alcotest.fail "no args")
  | _ -> Alcotest.fail "expected exactly one event"

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and counters" `Quick test_nesting;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "orphans and None context" `Quick
            test_orphans_and_none;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "per-fragment counters" `Quick
            test_fragment_attribution;
          Alcotest.test_case "interpreter statement spans" `Quick
            test_interp_spans;
          Alcotest.test_case "resilient fallbacks traced" `Quick
            test_resilient_trace;
        ] );
      ( "explain",
        [
          Alcotest.test_case "DAG structure and estimates" `Quick
            test_explain_structure;
          Alcotest.test_case "Q6 golden DAG" `Quick test_explain_golden;
        ] );
      ( "chrome-json",
        [
          Alcotest.test_case "well-formed export" `Quick test_chrome_json;
          Alcotest.test_case "escaping" `Quick test_chrome_json_escaping;
        ] );
    ]
