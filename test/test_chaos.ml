(* Socket-level chaos: a real server behind a seeded fault-injecting
   proxy ([Chaos]).  The proxy drops connections, stalls, answers
   garbage frames, kills responses halfway and trickles bytes one at a
   time; the client's timeout/retry logic must turn every fault back
   into rows or a typed error — never a hang, never a torn result —
   and afterwards the server must be leak-free (no live sessions, no
   live connections) and still answer bit-identical rows.

   Also here: the server's self-protection (oversized request lines,
   idle reaping, the connection cap), PING, stop/drain idempotency and
   address-resolution errors — everything that needs a real socket. *)

open Voodoo_relational
module E = Voodoo_engine.Engine
module Q = Voodoo_tpch.Queries
module Svc = Voodoo_service.Service
module Catalogs = Voodoo_service.Catalogs
module Server = Voodoo_service.Server
module Chaos = Voodoo_service.Chaos
module P = Voodoo_service.Protocol

let sf = 0.005

let registry = Catalogs.create ()

let canon (q : Q.t) rows =
  Reference.sort_rows (Reference.project_rows q.Q.columns rows)

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "voodoo_%s_%d.sock" name (Unix.getpid ()))

let with_server ?(config = fun c -> c) ?options name f =
  let path = tmp name in
  let cfg =
    config { Svc.default_config with Svc.sf; workers = 2; queue_capacity = 32 }
  in
  let service = Svc.create ~registry cfg in
  let server = Server.start ?options ~service (Server.Unix_socket path) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Svc.shutdown service)
    (fun () -> f ~path ~service ~server)

(* Wait for an eventually-consistent condition (handler threads finish
   just after the response is read). *)
let eventually ?(tries = 100) what cond =
  let rec go n =
    if cond () then ()
    else if n = 0 then Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go (n - 1)
    end
  in
  go tries

(* ---- the soak ---- *)

let test_chaos_soak () =
  with_server "chaos_up" (fun ~path ~service ~server ->
      let chaos_path = tmp "chaos_px" in
      let chaos =
        Chaos.start ~seed:42 ~stall_ms:150.0
          ~upstream:(Server.Unix_socket path)
          ~listen:(Server.Unix_socket chaos_path) ()
      in
      Fun.protect
        ~finally:(fun () -> Chaos.stop chaos)
        (fun () ->
          let cat = Catalogs.fork (Catalogs.get registry ~sf ()).Catalogs.cat in
          let totals = ref Server.Client.no_calls in
          List.iter
            (fun name ->
              let q = Option.get (Q.find ~sf name) in
              let expected = canon q (q.Q.run (fun c p -> E.compiled c p) cat) in
              let r, s =
                Server.Client.call ~timeout_ms:2_000.0 ~retries:10
                  ~backoff_ms:2.0 ~seed:7
                  (Server.Unix_socket chaos_path)
                  (P.Query name)
              in
              totals := Server.Client.merge_stats !totals s;
              match r with
              | Ok (P.Rows rows) ->
                  if not (Reference.rows_equal expected (canon q rows)) then
                    Alcotest.failf "%s: rows through chaos differ" name
              | Ok (P.Err (stage, msg)) ->
                  Alcotest.failf "%s: typed server error [%s] %s" name stage msg
              | Ok _ -> Alcotest.failf "%s: unexpected response kind" name
              | Error e ->
                  Alcotest.failf "%s: not answered despite retries: %s" name e)
            Q.cpu_figure13;
          (* the proxy did inject faults (otherwise this test is a no-op)
             and the client did retry through them *)
          let cs = Chaos.stats chaos in
          Alcotest.(check bool) "chaos injected faults" true
            (cs.Chaos.dropped + cs.Chaos.stalled + cs.Chaos.garbled
             + cs.Chaos.killed
            > 0);
          Alcotest.(check bool) "client retried" true
            (!totals.Server.Client.retries > 0);
          (* no leaks: every session and connection torn down *)
          eventually "sessions to close" (fun () ->
              (Svc.stats service).Svc.sessions_live = 0);
          eventually "connections to close" (fun () ->
              (Server.stats server).Server.conns_live = 0);
          (* post-chaos, a clean direct connection answers bit-identical *)
          let conn =
            Server.Client.connect ~retries:40 (Server.Unix_socket path)
          in
          Fun.protect
            ~finally:(fun () -> Server.Client.close conn)
            (fun () ->
              List.iter
                (fun name ->
                  let q = Option.get (Q.find ~sf name) in
                  let expected =
                    canon q (q.Q.run (fun c p -> E.compiled c p) cat)
                  in
                  match Server.Client.request conn (P.Query name) with
                  | Ok (P.Rows rows) ->
                      if not (Reference.rows_equal expected (canon q rows))
                      then Alcotest.failf "%s: post-chaos rows differ" name
                  | Ok (P.Err (stage, msg)) ->
                      Alcotest.failf "%s: post-chaos error [%s] %s" name stage
                        msg
                  | Ok _ -> Alcotest.failf "%s: unexpected response" name
                  | Error e -> Alcotest.failf "%s: transport error: %s" name e)
                Q.cpu_figure13)))

(* Hedging: a stalled primary is overtaken by a speculative duplicate.
   Weights allow only stall or pass, so the seed-fixed draw sequence is
   easy to reason about: whenever the primary stalls, the hedge (fired
   after 50 ms, against a 400 ms stall) must win. *)
let test_hedging_beats_stall () =
  with_server "hedge_up" (fun ~path ~service:_ ~server:_ ->
      let chaos_path = tmp "hedge_px" in
      let weights =
        {
          Chaos.w_pass = 1;
          w_drop_connect = 0;
          w_stall = 1;
          w_garbage = 0;
          w_kill = 0;
          w_trickle = 0;
        }
      in
      let chaos =
        Chaos.start ~seed:3 ~weights ~stall_ms:400.0
          ~upstream:(Server.Unix_socket path)
          ~listen:(Server.Unix_socket chaos_path) ()
      in
      Fun.protect
        ~finally:(fun () -> Chaos.stop chaos)
        (fun () ->
          let totals = ref Server.Client.no_calls in
          for _ = 1 to 8 do
            let r, s =
              Server.Client.call ~timeout_ms:2_000.0 ~retries:4 ~backoff_ms:2.0
                ~hedge_ms:50.0 ~seed:11
                (Server.Unix_socket chaos_path)
                (P.Query "Q6")
            in
            totals := Server.Client.merge_stats !totals s;
            match r with
            | Ok (P.Rows _) -> ()
            | Ok _ -> Alcotest.fail "expected rows"
            | Error e -> Alcotest.failf "hedged call failed: %s" e
          done;
          let t = !totals in
          Alcotest.(check bool) "some hedges fired" true
            (t.Server.Client.hedges > 0);
          Alcotest.(check bool) "hedges can win" true
            (t.Server.Client.hedge_wins > 0)))

(* ---- self-protection ---- *)

let test_oversized_line_answers_typed_error () =
  let options = { Server.default_options with Server.max_line_bytes = 256 } in
  with_server ~options "oversize" (fun ~path ~service:_ ~server:_ ->
      let conn = Server.Client.connect ~retries:40 (Server.Unix_socket path) in
      Fun.protect
        ~finally:(fun () -> Server.Client.close conn)
        (fun () ->
          let huge = P.Sql ("select " ^ String.make 4096 'x') in
          (match Server.Client.request conn huge with
          | Ok (P.Err ("parse", msg)) ->
              Alcotest.(check bool) "message names the bound" true
                (String.length msg > 0)
          | Ok _ -> Alcotest.fail "oversized line must answer ERR parse"
          | Error e -> Alcotest.failf "connection must survive, got: %s" e);
          (* the same connection still answers *)
          match Server.Client.request conn P.Ping with
          | Ok P.Pong -> ()
          | _ -> Alcotest.fail "connection must stay framed after overflow"))

let test_ping () =
  with_server "ping" (fun ~path ~service:_ ~server:_ ->
      let conn = Server.Client.connect ~retries:40 (Server.Unix_socket path) in
      Fun.protect
        ~finally:(fun () -> Server.Client.close conn)
        (fun () ->
          match Server.Client.request conn P.Ping with
          | Ok P.Pong -> ()
          | Ok _ -> Alcotest.fail "PING must answer PONG"
          | Error e -> Alcotest.failf "transport error: %s" e))

let test_idle_reaper () =
  let options =
    { Server.default_options with Server.idle_timeout_ms = Some 100.0 }
  in
  with_server ~options "idle" (fun ~path ~service:_ ~server ->
      let conn = Server.Client.connect ~retries:40 (Server.Unix_socket path) in
      (match Server.Client.request conn P.Ping with
      | Ok P.Pong -> ()
      | _ -> Alcotest.fail "ping before idling");
      (* sit silent past the timeout: the server reaps the connection *)
      eventually "idle connection to be reaped" (fun () ->
          let s = Server.stats server in
          s.Server.conns_idle_reaped >= 1 && s.Server.conns_live = 0);
      (try Server.Client.close conn with _ -> ()))

let test_max_conns_rejects_typed () =
  let options = { Server.default_options with Server.max_conns = Some 1 } in
  with_server ~options "cap" (fun ~path ~service:_ ~server ->
      let c1 = Server.Client.connect ~retries:40 (Server.Unix_socket path) in
      Fun.protect
        ~finally:(fun () -> Server.Client.close c1)
        (fun () ->
          (* make sure c1 is registered before dialing c2 *)
          (match Server.Client.request c1 P.Ping with
          | Ok P.Pong -> ()
          | _ -> Alcotest.fail "ping on first connection");
          (* the second connection is answered with a typed Resource
             error and closed; read it raw off the socket *)
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect fd (Unix.ADDR_UNIX path);
              let buf = Bytes.create 1024 in
              let rec read_some acc =
                if String.length acc > 0 && String.contains acc '\n' then acc
                else
                  match Unix.read fd buf 0 (Bytes.length buf) with
                  | 0 -> acc
                  | n -> read_some (acc ^ Bytes.sub_string buf 0 n)
                  | exception Unix.Unix_error _ -> acc
              in
              let line = read_some "" in
              Alcotest.(check bool) "typed resource rejection" true
                (String.length line >= 12
                && String.sub line 0 12 = "ERR resource"));
          eventually "rejection counted" (fun () ->
              (Server.stats server).Server.conns_rejected >= 1)))

(* ---- stop / drain robustness ---- *)

let test_double_stop_and_restart_same_addr () =
  let path = tmp "restart" in
  let config = { Svc.default_config with Svc.sf; workers = 2 } in
  let service = Svc.create ~registry config in
  Fun.protect
    ~finally:(fun () -> Svc.shutdown service)
    (fun () ->
      let server = Server.start ~service (Server.Unix_socket path) in
      let conn = Server.Client.connect ~retries:40 (Server.Unix_socket path) in
      (match Server.Client.request conn P.Ping with
      | Ok P.Pong -> ()
      | _ -> Alcotest.fail "ping before stop");
      (* stop with the client still connected — and stop again *)
      Server.stop server;
      Server.stop server;
      (try Server.Client.close conn with _ -> ());
      Alcotest.(check bool) "socket path removed" false (Sys.file_exists path);
      (* concurrent double stop on a fresh server *)
      let server2 = Server.start ~service (Server.Unix_socket path) in
      let t1 = Thread.create (fun () -> Server.stop server2) () in
      let t2 = Thread.create (fun () -> Server.stop server2) () in
      Thread.join t1;
      Thread.join t2;
      (* the address is immediately reusable *)
      let server3 = Server.start ~service (Server.Unix_socket path) in
      let conn3 = Server.Client.connect ~retries:40 (Server.Unix_socket path) in
      Fun.protect
        ~finally:(fun () ->
          Server.Client.close conn3;
          Server.stop server3)
        (fun () ->
          match Server.Client.request conn3 (P.Query "Q6") with
          | Ok (P.Rows _) -> ()
          | Ok (P.Err (s, m)) -> Alcotest.failf "restart error [%s] %s" s m
          | Ok _ -> Alcotest.fail "expected rows after restart"
          | Error e -> Alcotest.failf "restart transport error: %s" e);
      (* service-level shutdown is idempotent too *)
      Svc.shutdown service;
      Svc.shutdown service)

let test_address_error_is_typed () =
  (match
     Server.Client.call ~retries:1
       (Server.Tcp ("definitely-not-a-host.invalid", 1))
       P.Ping
   with
  | Error msg, _ ->
      Alcotest.(check bool) "names the failure" true (String.length msg > 0)
  | Ok _, _ -> Alcotest.fail "unresolvable host must not answer");
  match
    Server.start
      ~service:(Svc.create ~registry { Svc.default_config with Svc.sf })
      (Server.Tcp ("definitely-not-a-host.invalid", 1))
  with
  | (_ : Server.t) -> Alcotest.fail "server bind to unresolvable host"
  | exception Server.Address_error msg ->
      Alcotest.(check bool) "typed address error" true (String.length msg > 0)

let () =
  Alcotest.run "chaos"
    [
      ( "soak",
        [
          Alcotest.test_case "all queries survive the chaos proxy" `Slow
            test_chaos_soak;
          Alcotest.test_case "hedging beats a stalled primary" `Slow
            test_hedging_beats_stall;
        ] );
      ( "self-protection",
        [
          Alcotest.test_case "oversized line → typed error, conn survives"
            `Quick test_oversized_line_answers_typed_error;
          Alcotest.test_case "ping" `Quick test_ping;
          Alcotest.test_case "idle connections are reaped" `Quick
            test_idle_reaper;
          Alcotest.test_case "connection cap rejects typed" `Quick
            test_max_conns_rejects_typed;
        ] );
      ( "stop",
        [
          Alcotest.test_case "double stop, stop with clients, restart" `Quick
            test_double_stop_and_restart_same_addr;
          Alcotest.test_case "address errors are typed" `Quick
            test_address_error_is_typed;
        ] );
    ]
