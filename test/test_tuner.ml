(* Tests for the cost-based strategy chooser (the paper's future-work
   optimizer): all strategies agree on answers, costs are positive and
   ordered, and device-dependent choices actually occur on a workload
   built to discriminate. *)

open Voodoo_relational
open Voodoo_device
module E = Voodoo_engine.Engine
module Tuner = Voodoo_engine.Tuner

let check = Alcotest.(check bool)

let catalog = lazy (Voodoo_tpch.Dbgen.generate ~sf:0.003 ())

let q6_plan cat =
  let q = Option.get (Voodoo_tpch.Queries.find ~sf:0.003 "Q6") in
  let captured = ref None in
  (try
     ignore
       (q.run
          (fun _ p ->
            captured := Some p;
            raise Exit)
          cat)
   with Exit -> ());
  Option.get !captured

let test_explore_sorted () =
  let cat = Lazy.force catalog in
  let plan = q6_plan cat in
  let cs = Tuner.explore cat plan Config.cpu_multi in
  check "several candidates" true (List.length cs >= 4);
  check "positive costs" true (List.for_all (fun c -> c.Tuner.cost_s > 0.0) cs);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Tuner.cost_s <= b.Tuner.cost_s && sorted rest
    | _ -> true
  in
  check "cheapest first" true (sorted cs)

let test_choice_agrees_with_reference () =
  let cat = Lazy.force catalog in
  let plan = q6_plan cat in
  let best = Tuner.choose cat plan Config.gpu in
  check "tuned answer equals reference" true
    (E.agree plan (E.reference cat plan) best.Tuner.rows)

let test_mid_selectivity_prefers_branch_free () =
  (* at ~50% selectivity a speculating single core suffers the mispredict
     bell; the tuner must not pick plain branching *)
  let cat = Lazy.force catalog in
  let plan =
    Ra.aggregate
      (Ra.select (Ra.scan "lineitem") Rexpr.(col "l_quantity" <=: i 25))
      [ Ra.agg ~name:"s" Sum (Rexpr.col "l_extendedprice") ]
  in
  let best = Tuner.choose cat plan Config.cpu_single in
  check
    (Printf.sprintf "picked %s" best.Tuner.label)
    true
    (best.Tuner.label <> "branching/4k" && best.Tuner.label <> "branching/64k")

let test_device_dependent_choice () =
  (* the tunability thesis: across devices the ranking differs for at
     least one workload in {selective sum, mid-selectivity sum} *)
  let cat = Lazy.force catalog in
  let mk cut =
    Ra.aggregate
      (Ra.select (Ra.scan "lineitem") Rexpr.(col "l_quantity" <=: i cut))
      [ Ra.agg ~name:"s" Sum (Rexpr.col "l_extendedprice") ]
  in
  let rank plan d = List.map (fun c -> c.Tuner.label) (Tuner.explore cat plan d) in
  let differs plan =
    rank plan Config.cpu_single <> rank plan Config.gpu
  in
  check "rankings differ somewhere" true (differs (mk 25) || differs (mk 2))

let () =
  Alcotest.run "tuner"
    [
      ( "tuner",
        [
          Alcotest.test_case "sorted candidates" `Quick test_explore_sorted;
          Alcotest.test_case "answers preserved" `Quick test_choice_agrees_with_reference;
          Alcotest.test_case "mid selectivity" `Quick test_mid_selectivity_prefers_branch_free;
          Alcotest.test_case "device dependent" `Quick test_device_dependent_choice;
        ] );
    ]
