(* Tests for both tuning layers.

   Part 1 — the cost-based lowering-strategy chooser
   ([Voodoo_engine.Tuner]): all strategies agree on answers, costs are
   positive and ordered, and device-dependent choices actually occur on a
   workload built to discriminate.

   Part 2 — the adaptive program tuner ([Voodoo_tuner]): every selected
   variant is bit-identical to the untuned plan across all 14 TPC-H
   queries and the three micro families, the search is deterministic for
   a fixed seed, and individual rules rewrite the shapes they claim. *)

open Voodoo_relational
open Voodoo_device
module E = Voodoo_engine.Engine
module Tuner = Voodoo_engine.Tuner
module Micro = Voodoo_benchkit.Micro
module Workloads = Voodoo_benchkit.Workloads
module Rules = Voodoo_tuner.Rules
module Search = Voodoo_tuner.Search
module Plan_tune = Voodoo_tuner.Plan_tune

let check = Alcotest.(check bool)

let catalog = lazy (Voodoo_tpch.Dbgen.generate ~sf:0.003 ())

let q6_plan cat =
  let q = Option.get (Voodoo_tpch.Queries.find ~sf:0.003 "Q6") in
  let captured = ref None in
  (try
     ignore
       (q.run
          (fun _ p ->
            captured := Some p;
            raise Exit)
          cat)
   with Exit -> ());
  Option.get !captured

let test_explore_sorted () =
  let cat = Lazy.force catalog in
  let plan = q6_plan cat in
  let cs = Tuner.explore cat plan Config.cpu_multi in
  check "several candidates" true (List.length cs >= 4);
  check "positive costs" true (List.for_all (fun c -> c.Tuner.cost_s > 0.0) cs);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Tuner.cost_s <= b.Tuner.cost_s && sorted rest
    | _ -> true
  in
  check "cheapest first" true (sorted cs)

let test_choice_agrees_with_reference () =
  let cat = Lazy.force catalog in
  let plan = q6_plan cat in
  let best = Tuner.choose cat plan Config.gpu in
  check "tuned answer equals reference" true
    (E.agree plan (E.reference cat plan) best.Tuner.rows)

let test_mid_selectivity_prefers_branch_free () =
  (* at ~50% selectivity a speculating single core suffers the mispredict
     bell; the tuner must not pick plain branching *)
  let cat = Lazy.force catalog in
  let plan =
    Ra.aggregate
      (Ra.select (Ra.scan "lineitem") Rexpr.(col "l_quantity" <=: i 25))
      [ Ra.agg ~name:"s" Sum (Rexpr.col "l_extendedprice") ]
  in
  let best = Tuner.choose cat plan Config.cpu_single in
  check
    (Printf.sprintf "picked %s" best.Tuner.label)
    true
    (best.Tuner.label <> "branching/4k" && best.Tuner.label <> "branching/64k")

let test_device_dependent_choice () =
  (* the tunability thesis: across devices the ranking differs for at
     least one workload in {selective sum, mid-selectivity sum} *)
  let cat = Lazy.force catalog in
  let mk cut =
    Ra.aggregate
      (Ra.select (Ra.scan "lineitem") Rexpr.(col "l_quantity" <=: i cut))
      [ Ra.agg ~name:"s" Sum (Rexpr.col "l_extendedprice") ]
  in
  let rank plan d = List.map (fun c -> c.Tuner.label) (Tuner.explore cat plan d) in
  let differs plan =
    rank plan Config.cpu_single <> rank plan Config.gpu
  in
  check "rankings differ somewhere" true (differs (mk 25) || differs (mk 2))

(* ---------- part 2: the adaptive program tuner ---------- *)

let n_micro = 1 lsl 14

let selection_store =
  lazy (Micro.selection_store (Workloads.selection_input ~n:n_micro ~seed:11))

let layout_store =
  lazy
    (let c1, c2 = Workloads.target_table ~rows:n_micro ~seed:12 in
     let positions =
       Workloads.positions ~n:(n_micro / 4) ~target_rows:n_micro
         ~access:Workloads.Random ~seed:13
     in
     Micro.layout_store ~positions ~c1 ~c2)

let fold_store =
  lazy
    (Micro.fold_store
       (Array.init n_micro (fun i -> ((i * 37) mod 101) - (i mod 7))))

(* Tune a micro program and require: the winner verified bit-identical
   (enforced by the search itself — re-checked here by executing both),
   and never slower than the baseline under the search's own objective. *)
let tune_micro ~store (program, total) =
  let r =
    Search.run ~seed:5 ~budget_ms:60_000.0 ~max_rounds:4 ~top_k:4
      ~roots:[ total ] ~store program
  in
  check "tuned never worse than baseline" true (r.Search.best_s <= r.Search.baseline_s);
  let exec p =
    let c = Voodoo_compiler.Backend.compile ~store p in
    let run = Voodoo_compiler.Backend.run c in
    Voodoo_compiler.Exec.output run total
  in
  check "winner bit-identical to baseline" true
    (Voodoo_vector.Svector.equal (exec program) (exec r.Search.best_program));
  r

let test_micro_selection () =
  let store = Lazy.force selection_store in
  ignore (tune_micro ~store (Micro.select_branching_program ~cut:95.0 ()))

let test_micro_layout () =
  let store = Lazy.force layout_store in
  ignore (tune_micro ~store (Micro.layout_transform_program ()))

let test_micro_fold () =
  let store = Lazy.force fold_store in
  let r = tune_micro ~store (Micro.fold_partition_program ~grain:64 ()) in
  (* integer data keeps partition rewrites exact, so something must win *)
  check "fold family improved" true (r.Search.best_rules <> [])

let test_deterministic () =
  let store = Lazy.force selection_store in
  let program, total = Micro.select_branching_program ~cut:50.0 () in
  let once () =
    let r =
      Search.run ~seed:9 ~budget_ms:60_000.0 ~roots:[ total ] ~store program
    in
    ( r.Search.best_rules,
      r.Search.best_s,
      List.map
        (fun c -> (c.Search.c_rules, c.Search.c_score_s, c.Search.c_verdict))
        r.Search.candidates )
  in
  check "same seed, same search" true (once () = once ())

(* Every tuner-selected variant returns bit-identical rows to the untuned
   plan, across all 14 TPC-H queries (every phase of multi-phase queries
   is tuned; later phases consume tuned results). *)
let test_tpch_bit_identical () =
  let cat = Lazy.force catalog in
  List.iter
    (fun name ->
      let q = Option.get (Voodoo_tpch.Queries.find ~sf:0.003 name) in
      let eval c p =
        let prep = E.prepare c p in
        let tuned, report =
          Plan_tune.tune_prepared ~seed:3 ~budget_ms:60_000.0 ~max_rounds:2
            ~top_k:2 c prep
        in
        let base_rows = E.run_prepared c prep in
        let tuned_rows = E.run_prepared c tuned in
        check
          (Printf.sprintf "%s: tuned rows bit-identical (%d candidates)" name
             (List.length report.Search.candidates))
          true
          (compare base_rows tuned_rows = 0);
        tuned_rows
      in
      ignore (q.run eval cat))
    Voodoo_tpch.Queries.cpu_figure13

(* ---------- part 2b: individual rules ---------- *)

let interp_total store p total =
  Voodoo_interp.Interp.eval store p total

let apply_exn (r : Rules.t) p =
  match r.Rules.apply p with
  | Some p' -> p'
  | None -> Alcotest.failf "rule %s did not apply" r.Rules.name

let test_rule_fuse_folds () =
  let store = Lazy.force fold_store in
  let p, total = Micro.fold_partition_program () in
  let p' = apply_exn (Rules.fuse_folds ~store) p in
  check "fused result equal" true
    (Voodoo_vector.Svector.equal (interp_total store p total)
       (interp_total store p' total))

let test_rule_predicate_selection () =
  let store = Lazy.force selection_store in
  let p, total = Micro.select_branching_program ~cut:50.0 () in
  let p' = apply_exn (Rules.predicate_selection ~store) p in
  check "predicated result equal" true
    (Voodoo_vector.Svector.equal (interp_total store p total)
       (interp_total store p' total));
  (* and the inverse direction applies to the predicated shape *)
  let q, qtotal = Micro.select_predicated_program ~cut:50.0 () in
  let q' = apply_exn (Rules.select_then_gather ~store) q in
  check "re-branched result equal" true
    (Voodoo_vector.Svector.equal (interp_total store q qtotal)
       (interp_total store q' qtotal))

let test_rule_layout () =
  let store = Lazy.force layout_store in
  let p, total = Micro.layout_transform_program () in
  let p' = apply_exn Rules.layout_direct p in
  check "direct layout result equal" true
    (Voodoo_vector.Svector.equal (interp_total store p total)
       (interp_total store p' total));
  let q, qtotal = Micro.layout_single_loop_program () in
  let q' = apply_exn (Rules.layout_transform ~store) q in
  check "transformed layout result equal" true
    (Voodoo_vector.Svector.equal (interp_total store q qtotal)
       (interp_total store q' qtotal))

(* ---------- part 2c: codegen-option rules ---------- *)

module Codegen = Voodoo_compiler.Codegen

let group_store =
  lazy
    (Micro.group_store
       ~gids:(Array.init n_micro (fun i -> i * 7919 mod 61))
       ~values:
         (Array.init n_micro (fun i -> float_of_int (i * 31 mod 997) /. 7.0)))

let test_opt_rule_applicability () =
  let grouped, _ = Micro.group_fold_program () in
  let flat, _ = Micro.fold_partition_program () in
  let o = Codegen.default_options in
  (* the grain ladder applies on the radix chain, except at the current
     value; never on a program without Partition → Scatter → FoldAgg *)
  List.iter
    (fun n ->
      let r = Rules.refold_grain n in
      let expect_grouped = n <> o.Codegen.fold_grain in
      check
        (Printf.sprintf "%s applies to grouped" r.Rules.o_name)
        expect_grouped
        (match r.Rules.o_apply o grouped with
        | Some o' -> o'.Codegen.fold_grain = n
        | None -> false);
      check
        (Printf.sprintf "%s skips flat fold" r.Rules.o_name)
        true
        (r.Rules.o_apply o flat = None))
    Rules.fold_grain_ladder;
  (* the fusion toggle flips both ways on the radix chain only *)
  let t = Rules.toggle_partition_fuse in
  (match t.Rules.o_apply o grouped with
  | Some o' ->
      check "toggle flips off" true (not o'.Codegen.partition_fuse);
      check "toggle flips back" true
        (match t.Rules.o_apply o' grouped with
        | Some o'' -> o''.Codegen.partition_fuse
        | None -> false)
  | None -> Alcotest.fail "toggle-partition-fuse did not apply");
  check "toggle skips flat fold" true (t.Rules.o_apply o flat = None);
  (* applicability is deterministic: same input, same output *)
  check "opt rules deterministic" true
    (List.for_all
       (fun (r : Rules.opt_rule) ->
         r.Rules.o_apply o grouped = r.Rules.o_apply o grouped)
       Rules.opt_catalog)

let test_opt_rule_tile_zone_nprobe () =
  let grouped, _ = Micro.group_fold_program () in
  (* arithmetic over virtual inputs only: never tiled, zoned or probed *)
  let virtual_only =
    let module B = Voodoo_core.Program.Builder in
    let b = B.create () in
    let r = B.range b (Voodoo_core.Op.Lit 64) in
    let c = B.const_int b 3 in
    ignore (B.multiply b r c);
    B.finish b
  in
  let vsim, _ =
    Voodoo_vsim.Dist.program ~metric:Voodoo_vsim.Dist.L2 ~name:"t" ~n:4 ~dim:2
  in
  let o = Codegen.default_options in
  (* the tile-width ladder applies wherever a tile loop runs, except at
     the current width *)
  List.iter
    (fun n ->
      let r = Rules.retile n in
      check
        (Printf.sprintf "%s applies to grouped fold" r.Rules.o_name)
        (n <> o.Codegen.tile_width)
        (match r.Rules.o_apply o grouped with
        | Some o' -> o'.Codegen.tile_width = n
        | None -> false);
      check
        (Printf.sprintf "%s skips virtual-only arithmetic" r.Rules.o_name)
        true
        (r.Rules.o_apply o virtual_only = None))
    Rules.tile_width_ladder;
  (* the zone-map toggle flips both ways, on fold/gather sites only *)
  let z = Rules.toggle_zone_maps in
  (match z.Rules.o_apply o grouped with
  | Some o' ->
      check "zone toggle flips" true
        (o'.Codegen.zone_maps = not o.Codegen.zone_maps);
      check "zone toggle flips back" true
        (match z.Rules.o_apply o' grouped with
        | Some o'' -> o''.Codegen.zone_maps = o.Codegen.zone_maps
        | None -> false)
  | None -> Alcotest.fail "toggle-zone-maps did not apply");
  check "zone toggle skips virtual-only arithmetic" true
    (z.Rules.o_apply o virtual_only = None);
  (* the nprobe ladder anchors on the vsim distance-fold signature — a
     Gather of (Range mod dim) — and nothing else *)
  List.iter
    (fun n ->
      let r = Rules.reprobe n in
      check
        (Printf.sprintf "%s applies to distance plan" r.Rules.o_name)
        (n <> o.Codegen.nprobe)
        (match r.Rules.o_apply o vsim with
        | Some o' -> o'.Codegen.nprobe = n
        | None -> false);
      check
        (Printf.sprintf "%s skips grouped fold" r.Rules.o_name)
        true
        (r.Rules.o_apply o grouped = None))
    Rules.nprobe_ladder

let test_opt_search_grouped () =
  let store = Lazy.force group_store in
  let program, total = Micro.group_fold_program () in
  let r =
    Search.run ~seed:7 ~budget_ms:60_000.0 ~max_rounds:3 ~top_k:4
      ~roots:[ total ] ~store program
  in
  check "tuned never worse than baseline" true
    (r.Search.best_s <= r.Search.baseline_s);
  (* the winner is bit-identical executed under its own options *)
  let exec options p =
    let c = Voodoo_compiler.Backend.compile ~options ~store p in
    let run = Voodoo_compiler.Backend.run c in
    Voodoo_compiler.Exec.output run total
  in
  check "winner bit-identical to baseline" true
    (Voodoo_vector.Svector.equal
       (exec Codegen.default_options program)
       (exec r.Search.best_options r.Search.best_program));
  (* same seed, same search — option candidates included *)
  let key (r : Search.report) =
    ( r.Search.best_rules,
      r.Search.best_s,
      r.Search.best_options,
      List.map
        (fun c -> (c.Search.c_rules, c.Search.c_score_s, c.Search.c_verdict))
        r.Search.candidates )
  in
  let again =
    Search.run ~seed:7 ~budget_ms:60_000.0 ~max_rounds:3 ~top_k:4
      ~roots:[ total ] ~store program
  in
  check "same seed, same search" true (key r = key again)

let test_rule_regrain () =
  let store = Lazy.force fold_store in
  let p, total = Micro.fold_partition_program ~grain:64 () in
  let p' = apply_exn (Rules.regrain 4096) p in
  check "regrained result equal" true
    (Voodoo_vector.Svector.equal (interp_total store p total)
       (interp_total store p' total));
  (* a flat fold splits back into the hierarchical shape *)
  let q = apply_exn (Rules.fuse_folds ~store) p in
  let q' = apply_exn (Rules.split_fold ~store 4096) q in
  check "split result equal" true
    (Voodoo_vector.Svector.equal (interp_total store q total)
       (interp_total store q' total))

let () =
  Alcotest.run "tuner"
    [
      ( "tuner",
        [
          Alcotest.test_case "sorted candidates" `Quick test_explore_sorted;
          Alcotest.test_case "answers preserved" `Quick test_choice_agrees_with_reference;
          Alcotest.test_case "mid selectivity" `Quick test_mid_selectivity_prefers_branch_free;
          Alcotest.test_case "device dependent" `Quick test_device_dependent_choice;
        ] );
      ( "search",
        [
          Alcotest.test_case "micro selection" `Quick test_micro_selection;
          Alcotest.test_case "micro layout" `Quick test_micro_layout;
          Alcotest.test_case "micro fold partitioning" `Quick test_micro_fold;
          Alcotest.test_case "deterministic for fixed seed" `Quick test_deterministic;
          Alcotest.test_case "TPC-H bit-identical" `Slow test_tpch_bit_identical;
        ] );
      ( "rules",
        [
          Alcotest.test_case "fuse folds" `Quick test_rule_fuse_folds;
          Alcotest.test_case "selection strategy" `Quick test_rule_predicate_selection;
          Alcotest.test_case "layout" `Quick test_rule_layout;
          Alcotest.test_case "regrain and split" `Quick test_rule_regrain;
        ] );
      ( "option-rules",
        [
          Alcotest.test_case "applicability and determinism" `Quick
            test_opt_rule_applicability;
          Alcotest.test_case "tile width, zone maps, nprobe" `Quick
            test_opt_rule_tile_zone_nprobe;
          Alcotest.test_case "grouped search bit-identical" `Quick
            test_opt_search_grouped;
        ] );
    ]
