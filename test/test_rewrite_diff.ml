(* Randomized differential testing of the rewrite layers.

   Every layer that rewrites a Voodoo program — the optimizer pipeline
   (const-fold + CSE + DCE) and the tuner's rule catalog — must never
   change what the program computes.  Programs come from the shared
   generator over an integer-only store, which keeps every fold
   regrouping exact, so all comparisons are bit-identical
   [Svector.equal] under the interpreter (an oracle independent of the
   compiled backend the tuner's own verification uses).

   The fold-shape rules (regrain / fuse / split) are value-exact at every
   statement they touch, so they must preserve *all* program outputs.
   Strategy rules (selection, layout, pipeline breaks) only contract to
   preserve the search roots — those are exercised through [Search.run]
   itself, whose winner must agree with the untuned program on every
   root under the interpreter. *)

module Gen = Test_support.Gen
module Interp = Voodoo_interp.Interp
module Optimize = Voodoo_core.Optimize
module Program = Voodoo_core.Program
module Pretty = Voodoo_core.Pretty
module Svector = Voodoo_vector.Svector
module Rules = Voodoo_tuner.Rules
module Search = Voodoo_tuner.Search

let resolve subst id =
  match List.assoc_opt id subst with Some id' -> id' | None -> id

let prop_optimize_default =
  QCheck.Test.make
    ~name:"const-fold + CSE + DCE preserve interpreter outputs" ~count:300
    (QCheck.make (Gen.gen_choices ()))
    (fun choices ->
      let p = Gen.build choices in
      let store = Gen.store () in
      match Interp.run store p with
      | exception Division_by_zero -> QCheck.assume_fail ()
      | env ->
          let p', subst = Optimize.default_with_subst p in
          let env' = Interp.run store p' in
          List.for_all
            (fun id ->
              let before = Hashtbl.find env id in
              match Hashtbl.find_opt env' (resolve subst id) with
              | None ->
                  QCheck.Test.fail_reportf "output %s dropped by optimize:@.%s"
                    id (Pretty.program_to_string p)
              | Some after ->
                  Svector.equal before after
                  || QCheck.Test.fail_reportf
                       "output %s changed by optimize:@.%s" id
                       (Pretty.program_to_string p))
            (Program.outputs p))

let prop_fold_rules_exact =
  QCheck.Test.make
    ~name:"fold-shape tuner rules preserve every output" ~count:200
    (QCheck.make (Gen.gen_choices ()))
    (fun choices ->
      let p = Gen.build choices in
      let store = Gen.store () in
      match Interp.run store p with
      | exception Division_by_zero -> QCheck.assume_fail ()
      | env ->
          let rules =
            [
              Rules.regrain 8;
              Rules.regrain 1024;
              Rules.fuse_folds ~store;
              (* the generator's store holds 64 rows, so a 16-row grain is
                 the only split that can ever apply *)
              Rules.split_fold ~store 16;
            ]
          in
          List.for_all
            (fun (r : Rules.t) ->
              match r.Rules.apply p with
              | None -> true
              | Some p' ->
                  let env' = Interp.run store p' in
                  List.for_all
                    (fun id ->
                      match Hashtbl.find_opt env' id with
                      | None ->
                          QCheck.Test.fail_reportf
                            "rule %s dropped output %s:@.%s" r.Rules.name id
                            (Pretty.program_to_string p)
                      | Some after ->
                          Svector.equal (Hashtbl.find env id) after
                          || QCheck.Test.fail_reportf
                               "rule %s changed output %s:@.before:@.%s@.after:@.%s"
                               r.Rules.name id
                               (Pretty.program_to_string p)
                               (Pretty.program_to_string p'))
                    (Program.outputs p))
            rules)

(* The whole catalog, through the search front door: whatever chain of
   rewrites wins, the winner must agree with the untuned program on every
   root — checked here on the interpreter, independently of the search's
   own compiled-backend verification. *)
let prop_search_winner_exact =
  QCheck.Test.make
    ~name:"search winner interp-identical on all roots" ~count:40
    (QCheck.make (Gen.gen_choices ~max_len:8 ()))
    (fun choices ->
      let p = Gen.build choices in
      let store = Gen.store () in
      match Interp.run store p with
      | exception Division_by_zero -> QCheck.assume_fail ()
      | env ->
          let roots = Program.outputs p in
          let r =
            Search.run ~seed:1 ~budget_ms:5000.0 ~max_rounds:2 ~top_k:2 ~roots
              ~store p
          in
          let env' = Interp.run store r.Search.best_program in
          List.for_all
            (fun id ->
              Svector.equal (Hashtbl.find env id) (Hashtbl.find env' id)
              || QCheck.Test.fail_reportf
                   "winner [%s] changed root %s:@.%s"
                   (String.concat "+" r.Search.best_rules)
                   id
                   (Pretty.program_to_string p))
            roots)

let () =
  Alcotest.run "rewrite-diff"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_optimize_default;
            prop_fold_rules_exact;
            prop_search_winner_exact;
          ] );
    ]
