(* End-to-end TPC-H tests: every evaluated query must produce identical
   results under the reference evaluator, the Voodoo interpreter backend
   and the Voodoo compiling backend (with and without its optimizations),
   across scale factors and seeds. *)

open Voodoo_relational
module E = Voodoo_engine.Engine
module Q = Voodoo_tpch.Queries
module Dbgen = Voodoo_tpch.Dbgen
module Codegen = Voodoo_compiler.Codegen

let sf = 0.005

let catalog = lazy (Dbgen.generate ~sf ())

let canon (q : Q.t) rows =
  Reference.sort_rows (Reference.project_rows q.columns rows)

let rows_pp rows =
  String.concat "\n"
    (List.map
       (fun r ->
         String.concat ", "
           (List.map
              (fun (k, v) ->
                Printf.sprintf "%s=%s" k
                  (match v with
                  | Some s -> Fmt.str "%a" Voodoo_vector.Scalar.pp s
                  | None -> "ε"))
              r))
       rows)

let check_query_engine name engine_eval =
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf name) in
  let expected = q.run (fun c p -> E.reference c p) cat in
  let got = q.run engine_eval cat in
  let e = canon q expected and g = canon q got in
  if not (Reference.rows_equal e g) then
    Alcotest.failf "%s mismatch.@.reference (%d rows):@.%s@.@.got (%d rows):@.%s"
      name (List.length e) (rows_pp e) (List.length g) (rows_pp g)

let interp_eval c p = E.interp c p

let compiled_eval ?backend_opts () c p = E.compiled ?backend_opts c p

let test_interp name () = check_query_engine name interp_eval

let test_compiled name () = check_query_engine name (compiled_eval ())

let test_compiled_no_opt name () =
  check_query_engine name
    (compiled_eval
       ~backend_opts:
         {
           Codegen.default_options with
           fuse = false;
           virtual_scatter = false;
           suppress_empty_slots = false;
         }
       ())

(* predication / vectorization lowering strategies, where applicable *)
let test_lowering_options name () =
  let cat = Lazy.force catalog in
  let q = Option.get (Q.find ~sf name) in
  let expected = q.run (fun c p -> E.reference c p) cat in
  List.iter
    (fun lower_opts ->
      match q.run (fun c p -> E.compiled ~lower_opts c p) cat with
      | got ->
          let e = canon q expected and g = canon q got in
          if not (Reference.rows_equal e g) then
            Alcotest.failf "%s mismatch under %s" name
              (Printf.sprintf "grain=%d pred=%b vec=%b"
                 lower_opts.Lower.parallel_grain lower_opts.predication
                 lower_opts.vectorized)
      | exception Lower.Unsupported _ -> () (* e.g. predication with Min/Max *))
    [
      { Lower.default_options with parallel_grain = 1024 };
      { Lower.default_options with parallel_grain = 1 lsl 20 };
      { Lower.default_options with vectorized = true };
      { Lower.default_options with predication = true };
      { Lower.default_options with layout_transform = true };
    ]

let queries = Q.cpu_figure13

let scale_robustness () =
  (* a different scale factor and seed, on the compiled backend *)
  let cat = Dbgen.generate ~sf:0.003 ~seed:7 () in
  List.iter
    (fun name ->
      let q = Option.get (Q.find ~sf:0.003 name) in
      let expected = q.run (fun c p -> E.reference c p) cat in
      let got = q.run (fun c p -> E.compiled c p) cat in
      if not (Reference.rows_equal (canon q expected) (canon q got)) then
        Alcotest.failf "%s mismatch at sf=0.003 seed=7" name)
    [ "Q1"; "Q5"; "Q6"; "Q9"; "Q12"; "Q20" ]

let dbgen_sanity () =
  let cat = Lazy.force catalog in
  let li = Catalog.table cat "lineitem" in
  let orders = Catalog.table cat "orders" in
  Alcotest.(check bool) "lineitem ~4x orders" true
    (li.nrows > 3 * orders.nrows && li.nrows < 5 * orders.nrows);
  (* dense keys *)
  let mn, mx = Catalog.stats cat "orders" "o_orderkey" in
  Alcotest.(check int) "orderkey min" 1 mn;
  Alcotest.(check int) "orderkey max" orders.nrows mx;
  (* determinism *)
  let cat2 = Dbgen.generate ~sf ()
  and cat1 = Dbgen.generate ~sf () in
  let q6 = Option.get (Q.find ~sf "Q6") in
  let r1 = q6.run (fun c p -> E.reference c p) cat1 in
  let r2 = q6.run (fun c p -> E.reference c p) cat2 in
  Alcotest.(check bool) "same seed, same data" true (Reference.rows_equal r1 r2)

let nonempty_results () =
  (* every query should return at least one row at this scale — guards
     against accidentally unsatisfiable predicates *)
  let cat = Lazy.force catalog in
  List.iter
    (fun name ->
      let q = Option.get (Q.find ~sf name) in
      let rows = q.run (fun c p -> E.reference c p) cat in
      if rows = [] then Alcotest.failf "%s returned no rows" name)
    queries

let () =
  let cases mk suffix =
    List.map
      (fun name -> Alcotest.test_case (name ^ suffix) `Quick (mk name))
      queries
  in
  Alcotest.run "tpch"
    [
      ( "dbgen",
        [
          Alcotest.test_case "sanity" `Quick dbgen_sanity;
          Alcotest.test_case "nonempty" `Quick nonempty_results;
        ] );
      ("interp", cases test_interp "");
      ("compiled", cases test_compiled "");
      ("compiled-no-opt", cases test_compiled_no_opt "");
      ( "lowering-options",
        List.map
          (fun name ->
            Alcotest.test_case name `Quick (test_lowering_options name))
          [ "Q1"; "Q6"; "Q12"; "Q14"; "Q19"; "Q5"; "Q10" ] );
      ("robustness", [ Alcotest.test_case "sf/seed" `Slow scale_robustness ]);
    ]
