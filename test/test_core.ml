(* Tests for the algebra: program construction, validation, typing,
   parser/printer roundtrip, metadata analysis and optimizations. *)

open Voodoo_vector
open Voodoo_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* The paper's Figure 3 program: multithreaded hierarchical aggregation. *)
let fig3 () =
  let open Program.Builder in
  let b = create () in
  let input = load b ~name:"input" "input" in
  let ids = range b ~name:"ids" (Of_vector input) in
  let partition_size = const_int b ~name:"partitionSize" 1024 in
  let partition_ids = divide b ~name:"partitionIDs" ids partition_size in
  let positions = partition b ~name:"positions" (partition_ids, []) (partition_ids, []) in
  let input_w_part =
    zip b ~name:"inputWPart" ~out1:[ "val" ] ~out2:[ "partition" ] (input, [])
      (partition_ids, [])
  in
  let part_input =
    scatter b ~name:"partInput" ~shape:input_w_part input_w_part (positions, [])
  in
  let p_sum =
    fold_sum b ~name:"pSum" ~fold:[ "partition" ] (part_input, [ "val" ])
  in
  let _total = fold_sum b ~name:"totalSum" (p_sum, []) in
  finish b

let input_schema : Typing.schema = [ ([ "val" ], Scalar.Float) ]
let load_schema = function "input" -> Some input_schema | _ -> None

let test_validate_ok () = Program.validate (fig3 ())

let test_validate_duplicate () =
  let p =
    Program.of_stmts
      [
        { id = "a"; op = Constant { out = [ "val" ]; value = I 1 } };
        { id = "a"; op = Constant { out = [ "val" ]; value = I 2 } };
      ]
  in
  check "duplicate rejected" true
    (try Program.validate p; false with Program.Invalid _ -> true)

let test_validate_use_before_def () =
  let p =
    Program.of_stmts
      [ { id = "a"; op = Op.Gather { data = "b"; positions = Op.src "b" } } ]
  in
  check "use before def rejected" true
    (try Program.validate p; false with Program.Invalid _ -> true)

let test_outputs () =
  Alcotest.(check (list string)) "fig3 outputs" [ "totalSum" ] (Program.outputs (fig3 ()))

let test_typing_fig3 () =
  let types = Typing.infer ~load_schema (fig3 ()) in
  let schema_of id = List.assoc id types in
  check "pSum is float" true (schema_of "pSum" = [ ([ "val" ], Scalar.Float) ]);
  check "partitionIDs is int" true
    (schema_of "partitionIDs" = [ ([ "val" ], Scalar.Int) ]);
  check "inputWPart has two attrs" true
    (List.length (schema_of "inputWPart") = 2)

let test_typing_rejects_bad_load () =
  let b = Program.Builder.create () in
  let _ = Program.Builder.load b "nope" in
  let p = Program.Builder.finish b in
  check "unknown table rejected" true
    (try Typing.check ~load_schema p; false with Typing.Type_error _ -> true)

let test_typing_rejects_float_fold () =
  (* fold attribute must be integer-typed *)
  let b = Program.Builder.create () in
  let open Program.Builder in
  let input = load b "input" in
  let z =
    zip b ~out1:[ "v" ] ~out2:[ "f" ] (input, [ "val" ]) (input, [ "val" ])
  in
  let _ = fold_sum b ~fold:[ "f" ] (z, [ "v" ]) in
  let p = finish b in
  check "float fold rejected" true
    (try Typing.check ~load_schema p; false with Typing.Type_error _ -> true)

let test_typing_zip_collision () =
  let b = Program.Builder.create () in
  let open Program.Builder in
  let input = load b "input" in
  let _ = zip b ~out1:[ "x" ] ~out2:[ "x" ] (input, []) (input, []) in
  let p = finish b in
  check "zip collision rejected" true
    (try Typing.check ~load_schema p; false with Typing.Type_error _ -> true)

(* ---------- printer/parser roundtrip ---------- *)

let test_roundtrip_fig3 () =
  let p = fig3 () in
  let text = Pretty.program_to_string p in
  let p' = Parse.program text in
  check_str "roundtrip is identity" text (Pretty.program_to_string p')

let test_parse_figure3_text () =
  (* The program as written in the paper (Figure 3), using the sugared
     forms. *)
  let text =
    {|
      input := Load("input") // Single column: val
      ids := Range(input)
      partitionSize := Constant(1024)
      partitionIDs := Divide(ids, partitionSize)
      positions := Partition(partitionIDs, partitionIDs)
      inputWPart := Zip(.val, input, .partition, partitionIDs)
      partInput := Scatter(inputWPart, positions)
      pSum := FoldSum(partInput.val, partInput.partition)
      totalSum := FoldSum(pSum)
    |}
  in
  let p = Parse.program text in
  check_int "statement count" 9 (List.length (Program.stmts p));
  Typing.check ~load_schema p

let test_parse_errors () =
  let bad s =
    try ignore (Parse.program s); false with Parse.Parse_error _ -> true
  in
  check "unknown op" true (bad {|a := Frobnicate(1)|});
  check "unterminated string" true (bad {|a := Load("x|});
  check "missing assign" true (bad {|a Load("x")|});
  check "bad arg count" true (bad {|a := Load("x") b := Project(a)|})

(* ---------- metadata analysis ---------- *)

let vector_length = function "input" -> Some 8192 | _ -> None

let test_meta_fig3 () =
  let metas = Meta.infer ~vector_length (fig3 ()) in
  let info id = List.assoc id metas in
  check_int "input length" 8192 (info "input").length;
  check_int "constant length" 1 (info "partitionSize").length;
  check_int "binary broadcasts constant" 8192 (info "partitionIDs").length;
  (match Meta.ctrl_of (info "partitionIDs") [ "val" ] with
  | Some c -> (
      match Ctrl.runs c ~n:8192 with
      | Uniform 1024 -> ()
      | _ -> Alcotest.fail "partitionIDs should have uniform runs of 1024")
  | None -> Alcotest.fail "partitionIDs should carry control metadata");
  (* The zip carries the control form through to the fold input. *)
  (match Meta.ctrl_of (info "inputWPart") [ "partition" ] with
  | Some _ -> ()
  | None -> Alcotest.fail "zip should preserve control metadata")

let test_meta_simd_variant () =
  (* Figure 4: Modulo instead of Divide gives lane ids (runs of 1). *)
  let text =
    {|
      input := Load("input")
      ids := Range(input)
      laneCount := Constant(2)
      partitionIDs := Modulo(ids, laneCount)
    |}
  in
  let metas = Meta.infer ~vector_length (Parse.program text) in
  match Meta.ctrl_of (List.assoc "partitionIDs" metas) [ "val" ] with
  | Some c -> (
      match Ctrl.runs c ~n:8192 with
      | Uniform 1 -> ()
      | _ -> Alcotest.fail "modulo lanes should be fully data-parallel")
  | None -> Alcotest.fail "modulo should preserve control metadata"

let test_fold_parallelism () =
  let p = Meta.fold_parallelism ~ctrl:(Ctrl.divide Ctrl.iota 1024) ~n:8192 in
  check_int "extent" 8 p.extent;
  check_int "intent" 1024 p.intent;
  let p = Meta.fold_parallelism ~ctrl:None ~n:100 in
  check_int "sequential extent" 1 p.extent;
  check_int "sequential intent" 100 p.intent;
  let p = Meta.fold_parallelism ~ctrl:(Some Ctrl.iota) ~n:100 in
  check_int "parallel extent" 100 p.extent;
  check_int "parallel intent" 1 p.intent

(* ---------- optimizations ---------- *)

let test_cse () =
  let text =
    {|
      input := Load("input")
      a := Range(input)
      b := Range(input)
      c := Add(a, b)
    |}
  in
  let p = Optimize.cse (Parse.program text) in
  check_int "duplicate range merged" 3 (List.length (Program.stmts p));
  match (Program.find_exn p "c").op with
  | Binary { left; right; _ } ->
      check_str "left renamed" "a" left.v;
      check_str "right renamed" "a" right.v
  | _ -> Alcotest.fail "c should still be a Binary"

let test_dce () =
  let text =
    {|
      input := Load("input")
      unused := Range(input)
      used := FoldSum(input)
    |}
  in
  let p = Optimize.dce ~roots:[ "used" ] (Parse.program text) in
  check_int "dead range removed" 2 (List.length (Program.stmts p));
  check "unused gone" true (Program.find p "unused" = None)

let test_const_fold () =
  let text =
    {|
      a := Constant(6)
      b := Constant(7)
      c := Multiply(a, b)
      input := Load("input")
      d := Add(input, c)
    |}
  in
  let p = Optimize.const_fold (Parse.program text) in
  match (Program.find_exn p "c").op with
  | Constant { value = I 42; _ } -> ()
  | _ -> Alcotest.fail "c should fold to Constant(42)"

let test_optimize_preserves_persist () =
  let text =
    {|
      input := Load("input")
      s := FoldSum(input)
      p := Persist("result", s)
    |}
  in
  let p = Optimize.default (Parse.program text) in
  check "persist kept" true (Program.find p "p" <> None)

(* property: the textual SSA form roundtrips through the parser for any
   generated program *)
let prop_parse_roundtrip =
  QCheck.Test.make ~name:"pretty-printed programs parse back identically"
    ~count:300
    (QCheck.make (Test_support.Gen.gen_choices ~max_len:15 ()))
    (fun choices ->
      let p = Test_support.Gen.build choices in
      let text = Pretty.program_to_string p in
      match Parse.program text with
      | p' -> String.equal text (Pretty.program_to_string p')
      | exception Parse.Parse_error m ->
          QCheck.Test.fail_reportf "did not parse back (%s):@.%s" m text)

(* property: optimization pipeline keeps programs valid and keeps roots *)
let prop_optimize_valid =
  (* build random straight-line programs from a tiny op pool *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 15 in
      let* choices = list_size (return n) (int_bound 4) in
      return choices)
  in
  QCheck.Test.make ~name:"optimize keeps programs valid" ~count:200
    (QCheck.make gen) (fun choices ->
      let b = Program.Builder.create () in
      let open Program.Builder in
      let input = load b "input" in
      let last = ref input in
      List.iter
        (fun c ->
          let v =
            match c with
            | 0 -> range b (Of_vector !last)
            | 1 -> fold_sum b (!last, [])
            | 2 ->
                let k = const_int b 7 in
                add_ b !last k
            | 3 -> fold_scan b (!last, [])
            | _ -> break_ b !last
          in
          last := v)
        choices;
      let p = finish b in
      let opt = Optimize.default ~roots:[ !last ] p in
      Program.validate opt;
      Program.find opt !last <> None)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "program",
        [
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "duplicate def" `Quick test_validate_duplicate;
          Alcotest.test_case "use before def" `Quick test_validate_use_before_def;
          Alcotest.test_case "outputs" `Quick test_outputs;
        ] );
      ( "typing",
        [
          Alcotest.test_case "fig3" `Quick test_typing_fig3;
          Alcotest.test_case "bad load" `Quick test_typing_rejects_bad_load;
          Alcotest.test_case "float fold" `Quick test_typing_rejects_float_fold;
          Alcotest.test_case "zip collision" `Quick test_typing_zip_collision;
        ] );
      ( "parse",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_fig3;
          Alcotest.test_case "figure 3 text" `Quick test_parse_figure3_text;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          q prop_parse_roundtrip;
        ] );
      ( "meta",
        [
          Alcotest.test_case "fig3" `Quick test_meta_fig3;
          Alcotest.test_case "simd variant" `Quick test_meta_simd_variant;
          Alcotest.test_case "fold parallelism" `Quick test_fold_parallelism;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "cse" `Quick test_cse;
          Alcotest.test_case "dce" `Quick test_dce;
          Alcotest.test_case "const fold" `Quick test_const_fold;
          Alcotest.test_case "persist kept" `Quick test_optimize_preserves_persist;
          q prop_optimize_valid;
        ] );
    ]
