(* SQL frontend tests: parsing, planning against the catalog, and full
   agreement with the hand-built TPC-H plans through every engine. *)

open Voodoo_relational
module E = Voodoo_engine.Engine
module Q = Voodoo_tpch.Queries

let sf = 0.002
let catalog = lazy (Voodoo_tpch.Dbgen.generate ~sf ())

let check = Alcotest.(check bool)

let q6_sql =
  {| SELECT SUM(l_extendedprice * l_discount) AS revenue
     FROM lineitem
     WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
       AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24 |}

let q1_sql =
  {| SELECT l_returnflag, l_linestatus,
            SUM(l_quantity) AS sum_qty,
            SUM(l_extendedprice) AS sum_base_price,
            AVG(l_discount) AS avg_disc,
            COUNT(*) AS count_order
     FROM lineitem
     WHERE l_shipdate <= DATE '1998-09-02'
     GROUP BY l_returnflag, l_linestatus |}

let join_sql =
  {| SELECT o_orderpriority, COUNT(*) AS n, SUM(l_quantity) AS qty
     FROM lineitem, orders
     WHERE l_orderkey = o_orderkey AND o_orderdate >= DATE '1995-01-01'
     GROUP BY o_orderpriority |}

let like_sql =
  {| SELECT COUNT(*) AS promos
     FROM lineitem, part
     WHERE l_partkey = p_partkey AND p_type LIKE 'PROMO%' |}

let canon plan rows = E.canon plan rows

let engines_agree sql =
  let cat = Lazy.force catalog in
  let plan = Sql.plan cat sql in
  let reference = E.reference cat plan in
  check "reference nonempty" true (reference <> []);
  List.iter
    (fun (name, rows) ->
      if not (Reference.rows_equal (canon plan reference) (canon plan rows)) then
        Alcotest.failf "%s disagrees with reference on:\n%s" name sql)
    [ ("interp", E.interp cat plan); ("compiled", E.compiled cat plan) ]

let test_q6_engines () = engines_agree q6_sql
let test_q1_engines () = engines_agree q1_sql
let test_join_engines () = engines_agree join_sql
let test_like_engines () = engines_agree like_sql

(* the SQL plan must produce the same answer as the hand-built Q6 plan *)
let test_q6_matches_handbuilt () =
  let cat = Lazy.force catalog in
  let q6 = Option.get (Q.find ~sf "Q6") in
  let hand = q6.run (fun c p -> E.reference c p) cat in
  let plan = Sql.plan cat q6_sql in
  let sql_rows = E.compiled cat plan in
  let get rows =
    match rows with
    | [ row ] -> (
        match List.assoc "revenue" row with
        | Some v -> Voodoo_vector.Scalar.to_float v
        | None -> nan)
    | _ -> nan
  in
  let a = get hand and b = get sql_rows in
  check "same revenue" true (Float.abs (a -. b) < 1e-6 *. Float.max 1.0 (Float.abs a))

let test_parse_shape () =
  let cat = Lazy.force catalog in
  match Sql.plan cat join_sql with
  | Ra.GroupAgg { keys = [ "o_orderpriority" ]; aggs; input } ->
      Alcotest.(check int) "two aggregates" 2 (List.length aggs);
      (match input with
      | Ra.Select (Ra.FkJoin { fk = "l_orderkey"; pk = "o_orderkey"; _ }, _) -> ()
      | _ -> Alcotest.fail "expected Select over FkJoin")
  | _ -> Alcotest.fail "expected GroupAgg root"

let test_errors () =
  let cat = Lazy.force catalog in
  let bad sql =
    match Sql.plan cat sql with
    | _ -> false
    | exception Sql.Sql_error _ -> true
  in
  check "unknown table" true (bad "SELECT COUNT(*) FROM nonsense");
  check "plain select" true (bad "SELECT l_quantity FROM lineitem");
  check "non-grouped column" true
    (bad "SELECT l_quantity, COUNT(*) FROM lineitem GROUP BY l_returnflag");
  check "unterminated string" true (bad "SELECT COUNT(*) FROM lineitem WHERE l_returnflag = 'R");
  check "missing join condition" true
    (bad "SELECT COUNT(*) FROM lineitem, orders");
  check "trailing garbage" true (bad "SELECT COUNT(*) FROM lineitem GROUP")

let test_like_variants () =
  let cat = Lazy.force catalog in
  (* '%green%' containment over p_name *)
  let plan =
    Sql.plan cat
      {| SELECT COUNT(*) AS n FROM part WHERE p_name LIKE '%green%' |}
  in
  let rows = E.reference cat plan in
  let n =
    match rows with
    | [ row ] -> (
        match List.assoc "n" row with
        | Some v -> Voodoo_vector.Scalar.to_int v
        | None -> -1)
    | _ -> -1
  in
  check "some green parts" true (n > 0);
  check "engines agree on containment" true
    (Reference.rows_equal (canon plan rows) (canon plan (E.compiled cat plan)))

let () =
  Alcotest.run "sql"
    [
      ( "engines",
        [
          Alcotest.test_case "q6" `Quick test_q6_engines;
          Alcotest.test_case "q1" `Quick test_q1_engines;
          Alcotest.test_case "join" `Quick test_join_engines;
          Alcotest.test_case "like" `Quick test_like_engines;
        ] );
      ( "planning",
        [
          Alcotest.test_case "q6 = hand-built" `Quick test_q6_matches_handbuilt;
          Alcotest.test_case "join shape" `Quick test_parse_shape;
          Alcotest.test_case "like variants" `Quick test_like_variants;
        ] );
      ("errors", [ Alcotest.test_case "rejections" `Quick test_errors ]);
    ]
