(* Differential tests for parallel grouped aggregation
   (docs/PARALLELISM.md rule 3, docs/STORAGE.md): the raw tiled path with
   per-chunk partial accumulators must be bit-identical to the tree walk
   — rows and totals — for any job count, tile width, zone-map setting,
   aggregate kind and fold grain, including prime lengths, empty groups
   and ε-suppressed inputs.  The interpreter stays the unordered oracle
   (its scatter is materialized, so ε layout may differ). *)

module B = Voodoo_core.Program.Builder
module Store = Voodoo_core.Store
module Op = Voodoo_core.Op
module Codegen = Voodoo_compiler.Codegen
module Backend = Voodoo_compiler.Backend
module Exec = Voodoo_compiler.Exec
module Exec_stats = Voodoo_compiler.Exec_stats
module Interp = Voodoo_interp.Interp
module Svector = Voodoo_vector.Svector
module Column = Voodoo_vector.Column
module Scalar = Voodoo_vector.Scalar

(* The relational GROUP BY chain (lower.ml): partition group ids against
   identity pivots, scatter into group order, fold each run.  Explicit
   statement names so the interpreter env and the result can be joined. *)
let program ?(groups = 64) ~agg () =
  let b = B.create () in
  let rows = B.load b "rows" in
  let data =
    B.zip b ~out1:[ "g" ] ~out2:[ "v" ] (rows, [ "g" ]) (rows, [ "v" ])
  in
  let pivots = B.range b ~out:[ "p" ] (Lit groups) in
  let pos = B.partition b (data, [ "g" ]) (pivots, []) in
  let scattered = B.scatter b ~shape:data data (pos, []) in
  let pg = B.fold_agg b ~name:"pg" agg ~fold:[ "g" ] (scattered, [ "v" ]) in
  let _total = B.fold_sum b ~name:"total" (pg, []) in
  B.finish b

let store ~gcol ~vcol =
  Store.of_list
    [ ("rows", Svector.of_columns [ ([ "g" ], gcol); ([ "v" ], vcol) ]) ]

(* Skewed group ids over [0, 61): groups 61-63 of the default 64 pivots
   stay empty, so result layout and suppression accounting cover the
   no-rows case too. *)
let gids n = Array.init n (fun i -> i * 7919 mod 61)
let fvals n = Array.init n (fun i -> float_of_int (i * 31 mod 997) /. 7.0)
let ivals n = Array.init n (fun i -> (i * 13 mod 211) - 17)

let int_store n =
  store ~gcol:(Column.of_int_array (gids n))
    ~vcol:(Column.of_int_array (ivals n))

let float_store n =
  store ~gcol:(Column.of_int_array (gids n))
    ~vcol:(Column.of_float_array (fvals n))

(* Float values with ε holes, including whole bytes of the validity mask
   (the byte-skipping accumulate path). *)
let eps_store n =
  let values =
    List.init n (fun i ->
        if i / 64 mod 3 = 1 || i mod 17 = 0 then None
        else Some (Scalar.F (float_of_int (i * 31 mod 997) /. 7.0)))
  in
  store ~gcol:(Column.of_int_array (gids n))
    ~vcol:(Column.of_scalars Scalar.Float values)

let opts ?(tile_width = Codegen.default_options.tile_width)
    ?(zone_maps = true) ?(jobs = 1) ?fold_grain ?(partition_fuse = true) () =
  {
    Codegen.default_options with
    exec = Codegen.Closure { instrument = false; jobs };
    tile_width;
    zone_maps;
    partition_fuse;
    fold_grain =
      Option.value fold_grain ~default:Codegen.default_options.fold_grain;
  }

let run ~options st prog =
  let c = Backend.compile ~options ~store:st prog in
  let r = Backend.run c in
  (Exec.output r "pg", Exec.output r "total")

let tree_walk st prog =
  run ~options:{ (opts ()) with Codegen.exec = Codegen.Tree_walk } st prog

let check_same name ~ref_v v =
  if not (Svector.equal ref_v v) then Alcotest.failf "%s: outputs diverge" name

let aggs = [ ("sum", Op.Sum); ("min", Op.Min); ("max", Op.Max); ("count", Op.Count) ]

(* --- raw ≡ tree walk ≡ interp, jobs × widths × zones × aggs --- *)

let test_differentials mk_store () =
  let n = 10_007 (* prime: seams never align with group runs *) in
  let st = mk_store n in
  List.iter
    (fun (aname, agg) ->
      let prog = program ~agg () in
      let ref_pg, ref_total = tree_walk st prog in
      let ienv = Interp.run st prog in
      if not (Svector.equal_unordered (Hashtbl.find ienv "pg") ref_pg) then
        Alcotest.failf "%s: tree walk diverges from interp" aname;
      List.iter
        (fun jobs ->
          List.iter
            (fun tile_width ->
              List.iter
                (fun zone_maps ->
                  let name =
                    Printf.sprintf "%s jobs=%d tw=%d zones=%b" aname jobs
                      tile_width zone_maps
                  in
                  let pg, total =
                    run ~options:(opts ~tile_width ~zone_maps ~jobs ()) st prog
                  in
                  check_same (name ^ " rows") ~ref_v:ref_pg pg;
                  check_same (name ^ " total") ~ref_v:ref_total total)
                [ true; false ])
            [ 64; 1024; 8192 ])
        [ 1; 2; 4 ])
    aggs

(* --- parallel chunks really engage, and stay bit-identical --- *)

let test_parallel_engagement () =
  let n = 100_003 (* prime, above the parallel threshold *) in
  let st = float_store n in
  let prog = program ~agg:Op.Sum () in
  let ref_pg, ref_total = tree_walk st prog in
  let fused0 = Exec_stats.fold_fused () in
  let chunks0 = Exec_stats.fold_parallel_chunks () in
  let pg, total = run ~options:(opts ~jobs:4 ()) st prog in
  if Exec_stats.fold_fused () - fused0 < 1 then
    Alcotest.fail "raw grouped fold did not stream (fold.fused = 0)";
  if Exec_stats.fold_parallel_chunks () - chunks0 < 2 then
    Alcotest.fail "grouped fold did not split (fold.parallel_chunks < 2)";
  check_same "parallel float-sum rows" ~ref_v:ref_pg pg;
  check_same "parallel float-sum total" ~ref_v:ref_total total

(* --- the new tunables: fold grain ladder, Partition/Scatter fusion --- *)

let test_tunables () =
  let n = 100_003 in
  let st = float_store n in
  let prog = program ~agg:Op.Sum () in
  let ref_pg, ref_total = tree_walk st prog in
  List.iter
    (fun fold_grain ->
      let name = Printf.sprintf "fold_grain=%d" fold_grain in
      let pg, total = run ~options:(opts ~jobs:4 ~fold_grain ()) st prog in
      check_same (name ^ " rows") ~ref_v:ref_pg pg;
      check_same (name ^ " total") ~ref_v:ref_total total)
    [ 1; 4096; 1 lsl 20 ];
  (* fusion off: the scatter materializes, rows must not move *)
  List.iter
    (fun jobs ->
      let name = Printf.sprintf "partition_fuse=false jobs=%d" jobs in
      let pg, total =
        run ~options:(opts ~jobs ~partition_fuse:false ()) st prog
      in
      check_same (name ^ " rows") ~ref_v:ref_pg pg;
      check_same (name ^ " total") ~ref_v:ref_total total)
    [ 1; 4 ]

(* --- instrumented closures: unchanged single-chunk semantics --- *)

let test_instrumented () =
  let n = 10_007 in
  let st = float_store n in
  List.iter
    (fun (aname, agg) ->
      let prog = program ~agg () in
      let ref_pg, ref_total = tree_walk st prog in
      List.iter
        (fun jobs ->
          let options =
            {
              (opts ~jobs ()) with
              Codegen.exec = Codegen.Closure { instrument = true; jobs };
            }
          in
          let pg, total = run ~options st prog in
          let name = Printf.sprintf "instrumented %s jobs=%d" aname jobs in
          check_same (name ^ " rows") ~ref_v:ref_pg pg;
          check_same (name ^ " total") ~ref_v:ref_total total)
        [ 1; 4 ])
    aggs

let () =
  Alcotest.run "group_fold"
    [
      ( "differentials",
        [
          Alcotest.test_case "int values" `Quick (test_differentials int_store);
          Alcotest.test_case "float values" `Quick
            (test_differentials float_store);
          Alcotest.test_case "epsilon values" `Quick
            (test_differentials eps_store);
        ] );
      ( "parallel",
        [
          Alcotest.test_case "chunks engage, bit-identical" `Quick
            test_parallel_engagement;
          Alcotest.test_case "tunables" `Quick test_tunables;
          Alcotest.test_case "instrumented unchanged" `Quick test_instrumented;
        ] );
    ]
