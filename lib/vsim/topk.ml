type entry = { row : int; score : float }

(* total order: better score first, then lower row id.  NaN never wins
   (callers drop NaN before feeding). *)
let better ~largest a b =
  if Float.equal a.score b.score then a.row < b.row
  else if largest then a.score > b.score
  else a.score < b.score

(* A fixed-capacity binary heap with the WORST kept element at the
   root, so feeding is O(log k) against the current cutoff. *)
type heap = { mutable size : int; k : int; slots : entry array; largest : bool }

let heap ~k ~largest =
  { size = 0; k; slots = Array.make (max 1 k) { row = -1; score = 0.0 }; largest }

(* root is worse than both children: [worse] is [better] flipped *)
let worse h a b = better ~largest:(not h.largest) a b

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < h.size && worse h h.slots.(l) h.slots.(!m) then m := l;
  if r < h.size && worse h h.slots.(r) h.slots.(!m) then m := r;
  if !m <> i then begin
    let t = h.slots.(i) in
    h.slots.(i) <- h.slots.(!m);
    h.slots.(!m) <- t;
    sift_down h !m
  end

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if worse h h.slots.(i) h.slots.(p) then begin
      let t = h.slots.(i) in
      h.slots.(i) <- h.slots.(p);
      h.slots.(p) <- t;
      sift_up h p
    end
  end

let push h e =
  if h.k > 0 && not (Float.is_nan e.score) then
    if h.size < h.k then begin
      h.slots.(h.size) <- e;
      h.size <- h.size + 1;
      sift_up h (h.size - 1)
    end
    else if better ~largest:h.largest e h.slots.(0) then begin
      h.slots.(0) <- e;
      sift_down h 0
    end

let contents h =
  (* rank order, best first *)
  let l = Array.to_list (Array.sub h.slots 0 h.size) in
  List.sort (fun a b -> if better ~largest:h.largest a b then -1 else 1) l

let select ?(chunks = 1) ?(valid = fun _ -> true) ~k ~largest ~n score =
  let chunks = max 1 (min chunks (max 1 n)) in
  let scan lo hi =
    let h = heap ~k ~largest in
    for i = lo to hi - 1 do
      if valid i then
        match score i with
        | Some s -> push h { row = i; score = s }
        | None -> ()
    done;
    h
  in
  let out = heap ~k ~largest in
  let per = (n + chunks - 1) / chunks in
  for c = 0 to chunks - 1 do
    let lo = c * per and hi = min n ((c + 1) * per) in
    if lo < hi then
      (* merge in chunk order — the total order makes the result
         independent of the chunking, like the grouped-fold merge *)
      List.iter (push out) (contents (scan lo hi))
  done;
  Stats.record_topk ~chunks;
  contents out
