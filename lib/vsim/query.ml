type cmp = Lt | Le | Gt | Ge | Eq

let cmp_name = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "="

let cmp_of_name = function
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | "=" | "==" -> Some Eq
  | _ -> None

type t = {
  dataset : string;
  vector : float array;
  metric : Dist.metric;
  nprobe : int option;
  exhaustive : bool;
  k : int;
  filter : (string * cmp * float) option;
}

let contains_ci hay needle =
  let hay = String.uppercase_ascii hay in
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let is_similarity text = contains_ci text "SIMILARITY TO"

let tokenize text =
  let b = Buffer.create (String.length text + 16) in
  String.iter
    (fun ch ->
      match ch with
      | '(' | ')' | ',' | ';' ->
          Buffer.add_char b ' ';
          if ch <> ';' && ch <> ',' then Buffer.add_char b ch;
          Buffer.add_char b ' '
      | c -> Buffer.add_char b c)
    text;
  String.split_on_char ' ' (Buffer.contents b)
  |> List.concat_map (String.split_on_char '\n')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let ( let* ) = Result.bind

let parse text =
  let toks = tokenize text in
  let kw t k = String.uppercase_ascii t = k in
  let* toks =
    match toks with
    | s :: star :: f :: rest when kw s "SELECT" && star = "*" && kw f "FROM" ->
        Ok rest
    | _ -> Error "similarity query must start with SELECT * FROM <dataset>"
  in
  let* dataset, toks =
    match toks with
    | d :: rest -> Ok (d, rest)
    | [] -> Error "missing dataset name after FROM"
  in
  let* filter, toks =
    match toks with
    | w :: attr :: op :: lit :: rest when kw w "WHERE" -> (
        match (cmp_of_name op, float_of_string_opt lit) with
        | Some c, Some f -> Ok (Some (attr, c, f), rest)
        | None, _ -> Error (Printf.sprintf "unknown comparison %S in WHERE" op)
        | _, None -> Error (Printf.sprintf "WHERE literal %S is not a number" lit))
    | w :: _ when kw w "WHERE" -> Error "WHERE takes: <attr> <op> <number>"
    | rest -> Ok (None, rest)
  in
  let* toks =
    match toks with
    | s :: t :: lp :: rest when kw s "SIMILARITY" && kw t "TO" && lp = "(" ->
        Ok rest
    | _ -> Error "expected SIMILARITY TO (v1, v2, ...)"
  in
  let rec components acc = function
    | ")" :: rest -> Ok (List.rev acc, rest)
    | v :: rest -> (
        match float_of_string_opt v with
        | Some f -> components (f :: acc) rest
        | None -> Error (Printf.sprintf "vector component %S is not a number" v))
    | [] -> Error "unterminated vector: missing )"
  in
  let* comps, toks = components [] toks in
  let* () = if comps = [] then Error "empty query vector" else Ok () in
  let rec clauses (metric, nprobe, exhaustive, k) = function
    | [] -> Ok (metric, nprobe, exhaustive, k)
    | m :: name :: rest when kw m "METRIC" -> (
        match Dist.metric_of_name name with
        | Some mt -> clauses (mt, nprobe, exhaustive, k) rest
        | None -> Error (Printf.sprintf "unknown metric %S" name))
    | np :: n :: rest when kw np "NPROBE" -> (
        match int_of_string_opt n with
        | Some i when i > 0 -> clauses (metric, Some i, exhaustive, k) rest
        | _ -> Error (Printf.sprintf "NPROBE wants a positive integer, got %S" n))
    | e :: rest when kw e "EXHAUSTIVE" -> clauses (metric, nprobe, true, k) rest
    | l :: n :: rest when kw l "LIMIT" -> (
        match int_of_string_opt n with
        | Some i when i > 0 -> clauses (metric, nprobe, exhaustive, i) rest
        | _ -> Error (Printf.sprintf "LIMIT wants a positive integer, got %S" n))
    | tok :: _ -> Error (Printf.sprintf "unexpected token %S" tok)
  in
  let* metric, nprobe, exhaustive, k =
    clauses (Dist.L2, None, false, 10) toks
  in
  Ok
    {
      dataset;
      vector = Array.of_list comps;
      metric;
      nprobe;
      exhaustive;
      k;
      filter;
    }

let render t =
  let b = Buffer.create 128 in
  Buffer.add_string b ("SELECT * FROM " ^ t.dataset);
  (match t.filter with
  | Some (a, c, f) ->
      Buffer.add_string b (Printf.sprintf " WHERE %s %s %h" a (cmp_name c) f)
  | None -> ());
  Buffer.add_string b " SIMILARITY TO (";
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%h" v))
    t.vector;
  Buffer.add_string b (") METRIC " ^ Dist.metric_name t.metric);
  (match t.nprobe with
  | Some n -> Buffer.add_string b (Printf.sprintf " NPROBE %d" n)
  | None -> ());
  if t.exhaustive then Buffer.add_string b " EXHAUSTIVE";
  Buffer.add_string b (Printf.sprintf " LIMIT %d" t.k);
  Buffer.contents b
