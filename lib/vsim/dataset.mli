(** A named, searchable embedding dataset: the facade the service and
    CLI register and query.  Binds an {!Embedding} set, plain attribute
    columns (for the hybrid [WHERE] filter), and a built {!Ivf} index.

    {!answer} is the one front door: it resolves a parsed {!Query.t} —
    filter predicate against the attribute columns, nprobe precedence
    (query clause > caller default > index build options), IVF vs
    exhaustive — and returns ranked [(row, score)] entries. *)

open Voodoo_vector
open Voodoo_core
open Voodoo_compiler

type t = {
  name : string;
  emb : Embedding.t;
  attrs : (string * Column.t) list;  (** length-n columns, filterable *)
  index : Ivf.t;
}

(** Wrap an embedding set: builds the IVF index ([seed], [options]
    forwarded to {!Ivf.build}). *)
val create :
  ?options:Codegen.options -> ?seed:int -> name:string -> nlist:int ->
  ?attrs:(string * Column.t) list -> Embedding.t -> t

(** [synth ~seed ~dim ~nlist n ~name] — a seeded gaussian-mixture
    dataset ([clusters] defaults to [nlist]) with a deterministic
    [tag] attribute (int, [0..9]) for filter queries. *)
val synth :
  ?options:Codegen.options -> ?clusters:int -> seed:int -> dim:int ->
  nlist:int -> name:string -> int -> t

(** A seeded query vector near one of the dataset's cluster centers. *)
val synth_query : t -> seed:int -> float array

(** Resolve a [WHERE] clause to a row predicate.  [Error] names the
    missing attribute. *)
val filter_of :
  t -> (string * Query.cmp * float) option -> (int -> bool, string) result

(** Answer a parsed query.  [nprobe] is the serving default used when
    the query text has no [NPROBE] clause (falls back to the index's
    build options).  [Error] on dimension mismatch or unknown filter
    attribute. *)
val answer :
  ?budget:Budget.t -> ?exec:Codegen.exec_mode -> ?nprobe:int -> t ->
  Query.t -> (Topk.entry list, string) result

(** The exhaustive oracle for the same query (ignores
    [nprobe]/[exhaustive]). *)
val answer_oracle :
  ?budget:Budget.t -> ?exec:Codegen.exec_mode -> t -> Query.t ->
  (Topk.entry list, string) result
