(** Process-wide engagement counters for the vector-similarity path.

    Mirrors {!Voodoo_compiler.Exec_stats}: lock-free atomics the service
    surfaces as STATS lines ([vsim.searches], [vsim.probes],
    [vsim.probes_skipped], [fold.topk], [fold.topk_chunks]) and tests
    assert engagement through.  Monotone between {!reset}s. *)

(** Account one similarity search that scanned [probed] of [nlist] IVF
    partitions ([nlist - probed] were skipped by the coarse index). *)
val record_search : probed:int -> nlist:int -> unit

(** Account one bounded-heap top-k fold over [chunks] chunks (a
    single-chunk scan is the sequential path and adds 0 to the chunk
    counter, mirroring [fold.parallel_chunks]). *)
val record_topk : chunks:int -> unit

(** Total similarity searches answered (IVF or exhaustive). *)
val searches : unit -> int

(** Total IVF partitions scanned across all searches. *)
val probes : unit -> int

(** Total IVF partitions skipped by the coarse index. *)
val probes_skipped : unit -> int

(** Total bounded-heap top-k folds run. *)
val topk_folds : unit -> int

(** Total chunks executed by top-k folds that actually split. *)
val topk_chunks : unit -> int

val reset : unit -> unit
