(** The [SIMILARITY TO] query surface — a hybrid filter + rank request:

    {v
    SELECT * FROM <dataset>
      [WHERE <attr> <op> <number>]
      SIMILARITY TO (v1, v2, ..., vd)
      [METRIC dot|l2|cosine] [NPROBE <n>] [EXHAUSTIVE] [LIMIT <k>]
    v}

    Keywords are case-insensitive; [<op>] is one of [< <= > >= =].
    [METRIC] defaults to [l2], [LIMIT] to 10; [NPROBE] overrides the
    serving default for this request (and becomes part of the service's
    cache keys); [EXHAUSTIVE] bypasses the IVF index and scans every
    row — the oracle, queryable for recall spot-checks.  The service
    routes any SQL text containing [SIMILARITY TO] here
    ({!is_similarity}). *)

type cmp = Lt | Le | Gt | Ge | Eq

val cmp_name : cmp -> string

type t = {
  dataset : string;
  vector : float array;
  metric : Dist.metric;
  nprobe : int option;
  exhaustive : bool;
  k : int;
  filter : (string * cmp * float) option;
}

val is_similarity : string -> bool

val parse : string -> (t, string) result

(** Canonical rendering (stable across whitespace variants — the
    service's result-cache key). *)
val render : t -> string
