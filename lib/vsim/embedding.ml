open Voodoo_vector

type t = {
  dim : int;
  n : int;
  flat : Column.t;
  norms : Column.t;
  row_valid : Bitset.t;
}

(* Sequential accumulation in ascending component order — the same order
   the compiled fold walks a run, so stored norms and kernel sums agree
   bit-for-bit with the naive reference. *)
let norm_of row =
  let s = ref 0.0 in
  Array.iter (fun x -> s := !s +. (x *. x)) row;
  sqrt !s

let of_rows ~dim rows =
  if dim <= 0 then invalid_arg "Embedding.of_rows: dim must be positive";
  let n = Array.length rows in
  Array.iteri
    (fun i r ->
      if Array.length r <> dim then
        invalid_arg
          (Printf.sprintf "Embedding.of_rows: row %d has %d components, want %d"
             i (Array.length r) dim))
    rows;
  let flat = Column.init_float (n * dim) (fun i -> rows.(i / dim).(i mod dim)) in
  let norms = Column.init_float n (fun i -> norm_of rows.(i)) in
  Column.promote_all_valid flat;
  Column.promote_all_valid norms;
  { dim; n; flat; norms; row_valid = Bitset.create ~length:n ~default:true }

let valid t i = i >= 0 && i < t.n && Bitset.get t.row_valid i

let get_row t i =
  if i < 0 || i >= t.n then invalid_arg "Embedding.get_row: row out of range";
  Array.init t.dim (fun j -> Column.raw_float t.flat ((i * t.dim) + j))

let retract t i =
  if i < 0 || i >= t.n then invalid_arg "Embedding.retract: row out of range";
  for j = 0 to t.dim - 1 do
    Column.set_empty t.flat ((i * t.dim) + j)
  done;
  Column.set_empty t.norms i;
  Bitset.set t.row_valid i false

(* splitmix-style seeded stream (constants fit OCaml's 63-bit int):
   stable across OCaml versions, unlike Random.State's algorithm. *)
let mix seed i =
  let z = ref ((seed lxor (i * 0x2545F4914F6CDD1D)) land max_int) in
  z := !z lxor (!z lsr 29);
  z := !z * 0x106689D45497235B land max_int;
  z := !z lxor (!z lsr 32);
  !z land max_int

let unit_float seed i =
  float_of_int (mix seed i land 0xFFFFFFFFFFFF) /. float_of_int 0x1000000000000

let center ~seed ~clusters ~dim c j =
  (2.0 *. unit_float (seed * 7919) ((c * dim) + j)) -. 1.0
  |> fun x -> x *. float_of_int (1 + (c mod clusters)) /. float_of_int clusters

let synth_row ~seed ~clusters ~dim i =
  let c = mix seed (i * 13) mod clusters |> abs in
  Array.init dim (fun j ->
      center ~seed ~clusters ~dim c j
      +. (0.08 *. ((2.0 *. unit_float seed ((i * dim) + j)) -. 1.0)))

let synth ~seed ~clusters ~dim n =
  if clusters <= 0 then invalid_arg "Embedding.synth: clusters must be positive";
  of_rows ~dim (Array.init n (synth_row ~seed ~clusters ~dim))

let synth_query ~seed ~clusters ~dim i =
  (* same mixture, different stream: near a center, tighter noise *)
  let c = mix (seed lxor 0x5DEECE66D) (i * 29) mod clusters |> abs in
  Array.init dim (fun j ->
      center ~seed ~clusters ~dim c j
      +. (0.05 *. ((2.0 *. unit_float (seed lxor 0x2545F491) ((i * dim) + j)) -. 1.0)))

let store_entries ~name t =
  [
    (name, Svector.single [] t.flat);
    (name ^ "/norms", Svector.single [] t.norms);
  ]
