let searches_c = Atomic.make 0
let probes_c = Atomic.make 0
let skipped_c = Atomic.make 0
let topk_c = Atomic.make 0
let topk_chunks_c = Atomic.make 0

let record_search ~probed ~nlist =
  Atomic.incr searches_c;
  ignore (Atomic.fetch_and_add probes_c probed);
  ignore (Atomic.fetch_and_add skipped_c (max 0 (nlist - probed)))

let record_topk ~chunks =
  Atomic.incr topk_c;
  if chunks > 1 then ignore (Atomic.fetch_and_add topk_chunks_c chunks)

let searches () = Atomic.get searches_c
let probes () = Atomic.get probes_c
let probes_skipped () = Atomic.get skipped_c
let topk_folds () = Atomic.get topk_c
let topk_chunks () = Atomic.get topk_chunks_c

let reset () =
  Atomic.set searches_c 0;
  Atomic.set probes_c 0;
  Atomic.set skipped_c 0;
  Atomic.set topk_c 0;
  Atomic.set topk_chunks_c 0
