open Voodoo_vector

type t = {
  name : string;
  emb : Embedding.t;
  attrs : (string * Column.t) list;
  index : Ivf.t;
}

let create ?options ?seed ~name ~nlist ?(attrs = []) emb =
  List.iter
    (fun (a, c) ->
      if Column.length c <> emb.Embedding.n then
        invalid_arg
          (Printf.sprintf "Dataset.create: attribute %S has length %d, want %d"
             a (Column.length c) emb.Embedding.n))
    attrs;
  { name; emb; attrs; index = Ivf.build ?options ?seed ~name ~nlist emb }

let synth ?options ?clusters ~seed ~dim ~nlist ~name n =
  let clusters = Option.value clusters ~default:(max 1 nlist) in
  let emb = Embedding.synth ~seed ~clusters ~dim n in
  let tag = Column.init_int n (fun i -> (i * 7 + seed) mod 10) in
  Column.promote_all_valid tag;
  create ?options ~seed ~name ~nlist ~attrs:[ ("tag", tag) ] emb

let synth_query t ~seed =
  Embedding.synth_query ~seed ~clusters:(max 1 t.index.Ivf.nlist)
    ~dim:t.emb.Embedding.dim seed

let filter_of t filter =
  match filter with
  | None -> Ok (fun _ -> true)
  | Some (attr, cmp, lit) -> (
      match List.assoc_opt attr t.attrs with
      | None ->
          Error
            (Printf.sprintf "dataset %S has no attribute %S (have: %s)" t.name
               attr
               (String.concat ", " (List.map fst t.attrs)))
      | Some col ->
          let test =
            match (cmp : Query.cmp) with
            | Query.Lt -> fun v -> v < lit
            | Query.Le -> fun v -> v <= lit
            | Query.Gt -> fun v -> v > lit
            | Query.Ge -> fun v -> v >= lit
            | Query.Eq -> fun v -> Float.equal v lit
          in
          Ok
            (fun i ->
              match Column.get col i with
              | Some s -> test (Scalar.to_float s)
              | None -> false))

let ( let* ) = Result.bind

let check_dim t (q : Query.t) =
  let dim = t.emb.Embedding.dim in
  if Array.length q.Query.vector <> dim then
    Error
      (Printf.sprintf "query vector has %d components, dataset %S has dim %d"
         (Array.length q.Query.vector) t.name dim)
  else Ok ()

let answer ?budget ?exec ?nprobe t (q : Query.t) =
  let* () = check_dim t q in
  let* filter = filter_of t q.Query.filter in
  let metric = q.Query.metric and query = q.Query.vector and k = q.Query.k in
  if q.Query.exhaustive then
    Ok (Ivf.exhaustive ?budget ?exec ~filter t.index ~metric ~query ~k)
  else
    let nprobe =
      match (q.Query.nprobe, nprobe) with
      | Some n, _ -> n
      | None, Some n -> n
      | None, None -> t.index.Ivf.options.Voodoo_compiler.Codegen.nprobe
    in
    Ok (Ivf.search ?budget ?exec ~filter t.index ~metric ~query ~k ~nprobe)

let answer_oracle ?budget ?exec t (q : Query.t) =
  let* () = check_dim t q in
  let* filter = filter_of t q.Query.filter in
  Ok
    (Ivf.exhaustive ?budget ?exec ~filter t.index ~metric:q.Query.metric
       ~query:q.Query.vector ~k:q.Query.k)
