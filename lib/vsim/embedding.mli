(** Fixed-dimension embedding columns.

    An embedding set of [n] rows × [dim] components is stored as ONE
    strided float64 {!Voodoo_vector.Column}: row [i]'s components occupy
    slots [i*dim .. i*dim + dim - 1], row-major.  That makes the whole
    set a single Voodoo vector, so distance kernels are ordinary
    controlled folds over it (see {!Dist}) and inherit the storage
    engine's tiling, zone maps, mask-free promotion and chunking.

    Validity is per {e row}, not per component: a row is either fully
    present or retracted wholesale.  Retracting a row writes ε into all
    of its slots through the column's packed {!Voodoo_vector.Bitset}
    mask (so folds over the strided layout see an all-ε run and produce
    an ε aggregate) and clears the row's bit in {!row_valid}.  There is
    deliberately no way to invalidate a single component. *)

open Voodoo_vector

type t = private {
  dim : int;  (** components per row; immutable *)
  n : int;  (** rows *)
  flat : Column.t;  (** float64, length [n * dim], row-major *)
  norms : Column.t;
      (** float64, length [n]: per-row L2 norm [sqrt (Σ x²)], computed
          once at construction (the algebra has no square root, so
          cosine loads this as a plain vector).  NaN components poison
          the norm; retracted rows hold ε. *)
  row_valid : Bitset.t;  (** length [n] *)
}

(** [of_rows ~dim rows] builds the strided layout.  Raises
    [Invalid_argument] on a row whose length is not [dim]. *)
val of_rows : dim:int -> float array array -> t

(** [get_row t i] copies row [i] out ([Invalid_argument] out of range;
    the components of a retracted row read as [nan]). *)
val get_row : t -> int -> float array

val valid : t -> int -> bool

(** Retract row [i]: ε in every slot, norms ε, validity bit cleared. *)
val retract : t -> int -> unit

(** Sequential L2 norm of one row, poisoned by NaN components — the
    same accumulation order the stored [norms] column was built with. *)
val norm_of : float array -> float

(** [synth ~seed ~clusters ~dim n] generates a seeded gaussian-mixture
    embedding set: [clusters] well-separated centers in [[-1, 1]]^dim,
    each row a center plus small noise.  Deterministic in [seed];
    clusterable, so IVF recall is meaningful on it. *)
val synth : seed:int -> clusters:int -> dim:int -> int -> t

(** A seeded query vector drawn near one of the same [clusters] centers
    (queries hit real cluster neighborhoods, not uniform noise). *)
val synth_query : seed:int -> clusters:int -> dim:int -> int -> float array

(** Store entries for the compiled distance kernels: [(name, flat)] and
    [(name ^ "/norms", norms)]. *)
val store_entries : name:string -> t -> (string * Svector.t) list
