(** Bounded-heap top-k with a deterministic total order.

    The comparator is total: primary key the score ([largest] decides
    the direction), tie-break on the lower row id.  Because the order
    is total, the selected set and its output order are unique — the
    chunked scan ({!select} with [chunks > 1], mirroring the grouped
    folds' chunk-order merge discipline) is bit-identical to the
    sequential one at any chunk count, which is what lets similarity
    searches run the score scan domain-parallel without losing
    reproducibility.

    NaN scores never rank (a poisoned distance carries no order), and ε
    scores (retracted rows) are skipped. *)

type entry = { row : int; score : float }

(** [better ~largest a b] — does [a] strictly outrank [b]? *)
val better : largest:bool -> entry -> entry -> bool

(** {2 Incremental feeding}

    The IVF probe loop feeds candidates partition by partition; the
    total order makes the result independent of feed order. *)

type heap

val heap : k:int -> largest:bool -> heap

(** Feed one candidate; NaN scores are dropped. *)
val push : heap -> entry -> unit

(** Kept entries in rank order, best first. *)
val contents : heap -> entry list

(** [select ~k ~largest ~n score] scans rows [0..n-1], reading
    [score i] ([None] = skip), and returns the top [k] in rank order
    (best first).  [chunks] splits the scan into that many contiguous
    ranges merged in chunk order (default 1); [valid] pre-filters rows
    (default all).  Records a [fold.topk] STATS sample. *)
val select :
  ?chunks:int -> ?valid:(int -> bool) -> k:int -> largest:bool -> n:int ->
  (int -> float option) -> entry list
