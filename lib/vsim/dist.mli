(** Distance kernels as Voodoo programs.

    Each metric compiles to ONE controlled fold over the strided
    embedding layout ({!Embedding}):

    {v
      ids    = Range(flat)                 -- virtual control vector
      fold   = ids / dim                   -- uniform runs of length dim
      comp   = ids mod dim                 -- component index, virtual
      qrep   = Gather(q, comp)             -- q[i mod dim], the strided
                                              query replication
      prod   = flat * qrep                 -- (L2: (flat - qrep)²)
      sums   = FoldAgg Sum fold (prod)     -- per-row sums at run starts
      scores = Gather(sums, Range(n)*dim)  -- dense, one slot per row
    v}

    The fold control has uniform runs of length [dim], so the compiled
    fragment has extent [n] and intent [dim]: rows are the work items,
    the inner component loop is branch-free, and the fragment inherits
    tiling, zone-map skipping, mask-free promotion and domain-parallel
    chunking from the tile-group path.  Cosine divides the dot fold by
    [norms · ‖q‖] — both loaded as plain vectors ([‖q‖] is a persisted
    one-element vector, broadcast), because the algebra has no square
    root.  NaN components poison the products, the fold sum, and for
    cosine the stored norm; a retracted row's all-ε run folds to ε.

    [L2] scores are the {e squared} distance (monotone in the true
    distance, so top-k order is unaffected and the kernel stays inside
    the algebra). *)

open Voodoo_vector
open Voodoo_core
open Voodoo_compiler

type metric = Dot | L2 | Cosine

val metric_name : metric -> string
val metric_of_name : string -> metric option

(** [largest m] — does a larger score mean a closer row? ([Dot]/[Cosine]
    yes, [L2] no.) *)
val largest : metric -> bool

(** [program ~metric ~name ~n ~dim] builds the kernel over store entries
    [name] (flat, [n*dim] slots), [name ^ "/q"] ([dim]), and for cosine
    [name ^ "/norms"] ([n]) and [name ^ "/qn"] (one element).  Returns
    the program and the dense scores root (length [n]). *)
val program : metric:metric -> name:string -> n:int -> dim:int -> Program.t * Op.id

(** The store a kernel run binds: the embedding's entries plus the
    query ([name ^ "/q"]) and its norm ([name ^ "/qn"], one element).
    Exposed so differential tests can run the same program through the
    interpreter. *)
val store_of : name:string -> Embedding.t -> query:float array -> Store.t

(** The unique attribute column of a single-attribute result vector
    (score vectors carry the Builder's default [.val] attribute). *)
val the_column : Svector.t -> Column.t

type compiled = {
  metric : metric;
  name : string;
  n : int;
  dim : int;
  scores_id : Op.id;
  c : Backend.compiled;
}

(** Compile the kernel once against a template store built from the
    embedding (with a zero query).  The compiled plan only depends on
    lengths, so {!run} re-binds fresh query vectors without
    recompiling — this is what the service's plan cache holds. *)
val compile : ?options:Codegen.options -> metric:metric -> name:string ->
  Embedding.t -> compiled

(** [run c emb ~query] executes the compiled kernel against [emb] and
    [query], returning the dense scores column (length [n]; ε for
    retracted rows).  [exec] overrides the execution mode per run
    (job count) without recompiling; [budget] is checked inside the
    kernel loop.  Raises [Invalid_argument] if [emb]'s shape differs
    from the compiled one or the query length is not [dim]. *)
val run : ?budget:Budget.t -> ?exec:Codegen.exec_mode -> compiled ->
  Embedding.t -> query:float array -> Column.t

(** Naive sequential OCaml reference (same accumulation order as the
    run-sequential fold): [None] for retracted rows, NaN where the
    kernel is poisoned.  The differential oracle for {!run}. *)
val reference : metric:metric -> Embedding.t -> query:float array ->
  float option array
