open Voodoo_vector
open Voodoo_core
open Voodoo_compiler
module B = Program.Builder

type metric = Dot | L2 | Cosine

let metric_name = function Dot -> "dot" | L2 -> "l2" | Cosine -> "cosine"

let metric_of_name s =
  match String.lowercase_ascii s with
  | "dot" -> Some Dot
  | "l2" -> Some L2
  | "cosine" | "cos" -> Some Cosine
  | _ -> None

let largest = function Dot | Cosine -> true | L2 -> false

let program ~metric ~name ~n ~dim =
  let b = B.create () in
  let flat = B.load b ~name:"vsim_flat" name in
  let q = B.load b ~name:"vsim_q" (name ^ "/q") in
  (* virtual control plumbing: ids over the strided layout, run id and
     component id by constant division — never materialized *)
  let ids = B.range b ~name:"vsim_ids" (Op.Of_vector flat) in
  let dimc = B.const_int b ~name:"vsim_dimc" dim in
  let fold = B.divide b ~name:"vsim_fold" ids dimc in
  let comp = B.modulo b ~name:"vsim_comp" ids dimc in
  let qrep = B.gather b ~name:"vsim_qrep" q (comp, []) in
  let prod =
    match metric with
    | Dot | Cosine -> B.multiply b ~name:"vsim_prod" flat qrep
    | L2 ->
        let d = B.subtract b ~name:"vsim_diff" flat qrep in
        B.multiply b ~name:"vsim_sq" d d
  in
  let z = B.zip b ~name:"vsim_z" ~out1:[ "f" ] ~out2:[ "v" ] (fold, []) (prod, []) in
  let sums = B.fold_sum b ~name:"vsim_sums" ~fold:[ "f" ] (z, [ "v" ]) in
  (* compact the run-start sums to one dense slot per row *)
  let rows = B.range b ~name:"vsim_rows" (Op.Lit n) in
  let starts = B.multiply b ~name:"vsim_starts" rows dimc in
  let dense = B.gather b ~name:"vsim_dense" sums (starts, []) in
  let scores =
    match metric with
    | Dot | L2 -> dense
    | Cosine ->
        let norms = B.load b ~name:"vsim_norms" (name ^ "/norms") in
        let qn = B.load b ~name:"vsim_qn" (name ^ "/qn") in
        let denom = B.multiply b ~name:"vsim_denom" norms qn in
        B.divide b ~name:"vsim_cos" dense denom
  in
  (B.finish b, scores)

type compiled = {
  metric : metric;
  name : string;
  n : int;
  dim : int;
  scores_id : Op.id;
  c : Backend.compiled;
}

let query_entries ~name ~dim query =
  if Array.length query <> dim then
    invalid_arg
      (Printf.sprintf "Dist: query has %d components, embedding dim is %d"
         (Array.length query) dim);
  let qcol = Column.of_float_array query in
  Column.promote_all_valid qcol;
  let qn = Column.of_float_array [| Embedding.norm_of query |] in
  Column.promote_all_valid qn;
  [ (name ^ "/q", Svector.single [] qcol); (name ^ "/qn", Svector.single [] qn) ]

let store_of ~name emb ~query =
  Store.of_list
    (Embedding.store_entries ~name emb
    @ query_entries ~name ~dim:emb.Embedding.dim query)

let compile ?options ~metric ~name (emb : Embedding.t) =
  let n = emb.n and dim = emb.dim in
  let p, scores_id = program ~metric ~name ~n ~dim in
  let store = store_of ~name emb ~query:(Array.make dim 0.0) in
  let c = Backend.compile ?options ~store p in
  { metric; name; n; dim; scores_id; c }

(* scores vectors carry a single attribute (the Builder's default
   [.val]); resolve it without hard-coding the name *)
let the_column sv =
  match Svector.keypaths sv with
  | [ kp ] -> Svector.column sv kp
  | _ -> invalid_arg "Dist: scores vector is not single-attribute"

let run ?budget ?exec t (emb : Embedding.t) ~query =
  if emb.n <> t.n || emb.dim <> t.dim then
    invalid_arg
      (Printf.sprintf "Dist.run: embedding is %dx%d, plan compiled for %dx%d"
         emb.n emb.dim t.n t.dim);
  let store = store_of ~name:t.name emb ~query in
  let r =
    Exec.run ~options:t.c.Backend.options ?budget ?exec ~store t.c.Backend.plan
  in
  let id =
    match List.assoc_opt t.scores_id t.c.Backend.subst with
    | Some kept -> kept
    | None -> t.scores_id
  in
  the_column (Exec.output r id)

let reference ~metric (emb : Embedding.t) ~query =
  let dim = emb.dim in
  if Array.length query <> dim then
    invalid_arg "Dist.reference: query length mismatch";
  let qnorm = Embedding.norm_of query in
  Array.init emb.n (fun i ->
      if not (Embedding.valid emb i) then
        (* the engine's Sum over an all-ε run is 0, so a retracted row
           scores 0.0 under dot/L2 (callers exclude it via row_valid);
           cosine's ε norm poisons the division back to ε *)
        match metric with Dot | L2 -> Some 0.0 | Cosine -> None
      else
        (* the engine's fold seeds the accumulator with the run's first
           element, then adds — mirror it exactly (signed zeros) *)
        let s = ref 0.0 in
        let first = ref true in
        let feed p = if !first then (s := p; first := false) else s := !s +. p in
        (match metric with
        | Dot | Cosine ->
            for j = 0 to dim - 1 do
              feed (Column.raw_float emb.flat ((i * dim) + j) *. query.(j))
            done
        | L2 ->
            for j = 0 to dim - 1 do
              let d = Column.raw_float emb.flat ((i * dim) + j) -. query.(j) in
              feed (d *. d)
            done);
        match metric with
        | Dot | L2 -> Some !s
        | Cosine -> Some (!s /. (Column.raw_float emb.norms i *. qnorm)))
