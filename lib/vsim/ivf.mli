(** IVF coarse index: seeded k-means centroids, the assignment
    materialized as a partition control vector, and an [nprobe] knob.

    Build: a deterministic k-means (seeded init, fixed iteration count,
    ties to the lower centroid id) over a strided sample of the valid
    rows yields [nlist] centroids.  Every valid row is assigned to its
    nearest centroid; the assignment is materialized two ways — the
    per-row [assign] column in source order, and the packed partition
    layout ([lists] + one packed {!Embedding} per centroid) whose
    run-ordered centroid column {!packed_ctrl} is exactly the partition
    control vector the paper's control machinery encodes.  Probing a
    partition scans contiguous memory through the same compiled
    distance kernels as the exhaustive path.

    Search: centroids are ranked by L2 distance to the query
    (deterministic tie-break), the first [nprobe] partitions are
    scanned, candidates feed one bounded top-k heap.  Because per-row
    scores are bit-identical between the packed and source layouts
    (same run-sequential fold over the same components) and the top-k
    order is total, [nprobe = nlist] returns {e bit-identical} rows to
    {!exhaustive} — the differential oracle, exactly like the tree walk
    is for raw execution.  Fewer probes trade recall for speed
    (docs/VSIM.md quantifies the curve).

    Compiled kernels are memoized per (metric, partition) under the
    build-time codegen options; a per-run [exec] override picks the job
    count without recompiling.  Deadlines/cancellation are checked
    between probe partitions ({!Voodoo_core.Budget.check_time}) and
    inside the kernels. *)

open Voodoo_vector
open Voodoo_core
open Voodoo_compiler

type t = private {
  name : string;
  emb : Embedding.t;
  nlist : int;  (** centroid count actually built (≤ requested) *)
  centroids : float array array;
  assign : Column.t;  (** int, length n, source order; ε = retracted row *)
  lists : int array array;  (** ascending row ids per centroid *)
  packed : Embedding.t array;  (** packed partition layouts, one per centroid *)
  options : Codegen.options;
  plans : (string, Dist.compiled) Hashtbl.t;  (** memo, guarded by [m] *)
  m : Mutex.t;
}

(** [build ~name ~nlist emb] — [seed] defaults to 42, [iters] to 8,
    [sample] (rows k-means looks at) to [max (32 * nlist) 256].
    [nlist] is clamped to the number of valid rows. *)
val build :
  ?options:Codegen.options -> ?seed:int -> ?iters:int -> ?sample:int ->
  name:string -> nlist:int -> Embedding.t -> t

(** The partition control vector: centroid ids in packed (run) order —
    uniform-run metadata over this column is what a Voodoo [Partition]
    of the assignment would produce. *)
val packed_ctrl : t -> Column.t

(** Centroid ids in probe order for a query: ascending L2 distance,
    ties to the lower id (NaN distances order last). *)
val probe_order : t -> query:float array -> int array

(** [search t ~metric ~query ~k ~nprobe] — [filter] drops rows by
    global id before ranking (hybrid filter + rank); [budget] is
    checked between partitions and inside kernels. *)
val search :
  ?budget:Budget.t -> ?exec:Codegen.exec_mode -> ?filter:(int -> bool) ->
  t -> metric:Dist.metric -> query:float array -> k:int -> nprobe:int ->
  Topk.entry list

(** The exhaustive-scan differential oracle over the source layout.
    [chunks] splits the top-k scan (bit-identical at any count). *)
val exhaustive :
  ?budget:Budget.t -> ?exec:Codegen.exec_mode -> ?filter:(int -> bool) ->
  ?chunks:int -> t -> metric:Dist.metric -> query:float array -> k:int ->
  Topk.entry list

(** [recall ~got ~oracle]: fraction of the oracle's rows present in
    [got] (1.0 when the oracle is empty). *)
val recall : got:Topk.entry list -> oracle:Topk.entry list -> float
