open Voodoo_vector
open Voodoo_core
open Voodoo_compiler

type t = {
  name : string;
  emb : Embedding.t;
  nlist : int;
  centroids : float array array;
  assign : Column.t;
  lists : int array array;
  packed : Embedding.t array;
  options : Codegen.options;
  plans : (string, Dist.compiled) Hashtbl.t;
  m : Mutex.t;
}

(* squared L2 between a row and a centroid — build/probe bookkeeping,
   not a ranked score, so plain 0-init accumulation is fine *)
let d2 a b =
  let s = ref 0.0 in
  for j = 0 to Array.length a - 1 do
    let d = a.(j) -. b.(j) in
    s := !s +. (d *. d)
  done;
  !s

(* nearest centroid, ties to the lower id; None when every distance is
   NaN (a fully poisoned row still needs a deterministic home: 0) *)
let nearest centroids row =
  let best = ref (-1) and bd = ref Float.nan in
  Array.iteri
    (fun c cent ->
      let d = d2 row cent in
      if (not (Float.is_nan d)) && (!best < 0 || d < !bd) then begin
        best := c;
        bd := d
      end)
    centroids;
  if !best < 0 then 0 else !best

(* deterministic sampled k-means *)
let kmeans ~seed ~iters ~sample ~nlist (emb : Embedding.t) =
  let valid_rows =
    List.filter (Embedding.valid emb) (List.init emb.Embedding.n Fun.id)
  in
  let nvalid = List.length valid_rows in
  let nlist = max 1 (min nlist nvalid) in
  let stride = max 1 (nvalid / max 1 sample) in
  let sampled =
    List.filteri (fun i _ -> i mod stride = 0) valid_rows
    |> List.map (Embedding.get_row emb)
    |> Array.of_list
  in
  let ns = Array.length sampled in
  (* seeded distinct picks for the initial centroids *)
  let centroids =
    Array.init nlist (fun c ->
        Array.copy sampled.(abs ((seed + (c * 2654435761)) mod ns)))
  in
  let dim = emb.Embedding.dim in
  for _ = 1 to iters do
    let counts = Array.make nlist 0 in
    let sums = Array.init nlist (fun _ -> Array.make dim 0.0) in
    Array.iter
      (fun row ->
        let c = nearest centroids row in
        counts.(c) <- counts.(c) + 1;
        for j = 0 to dim - 1 do
          sums.(c).(j) <- sums.(c).(j) +. row.(j)
        done)
      sampled;
    Array.iteri
      (fun c cnt ->
        (* an empty cluster keeps its old centroid *)
        if cnt > 0 then
          centroids.(c) <-
            Array.map (fun s -> s /. float_of_int cnt) sums.(c))
      counts
  done;
  (nlist, centroids)

let build ?(options = Codegen.default_options) ?(seed = 42) ?(iters = 8)
    ?sample ~name ~nlist (emb : Embedding.t) =
  if nlist <= 0 then invalid_arg "Ivf.build: nlist must be positive";
  let sample = Option.value sample ~default:(max (32 * nlist) 256) in
  let nlist, centroids = kmeans ~seed ~iters ~sample ~nlist emb in
  let n = emb.Embedding.n in
  let assign = Column.create Scalar.Int n in
  let buckets = Array.make nlist [] in
  for i = n - 1 downto 0 do
    if Embedding.valid emb i then begin
      let c = nearest centroids (Embedding.get_row emb i) in
      Column.set assign i (Scalar.I c);
      buckets.(c) <- i :: buckets.(c)
    end
    else Column.set_empty assign i
  done;
  let lists = Array.map Array.of_list buckets in
  let packed =
    Array.map
      (fun rows ->
        Embedding.of_rows ~dim:emb.Embedding.dim
          (Array.map (Embedding.get_row emb) rows))
      lists
  in
  {
    name;
    emb;
    nlist;
    centroids;
    assign;
    lists;
    packed;
    options;
    plans = Hashtbl.create 8;
    m = Mutex.create ();
  }

let packed_ctrl t =
  let total = Array.fold_left (fun a l -> a + Array.length l) 0 t.lists in
  let col = Column.create Voodoo_vector.Scalar.Int total in
  let pos = ref 0 in
  Array.iteri
    (fun c l ->
      Array.iter
        (fun _ ->
          Column.set col !pos (Voodoo_vector.Scalar.I c);
          incr pos)
        l)
    t.lists;
  col

let probe_order t ~query =
  let ds =
    Array.mapi (fun c cent -> (d2 query cent, c)) t.centroids
  in
  Array.sort
    (fun (da, ca) (db, cb) ->
      let na = Float.is_nan da and nb = Float.is_nan db in
      if na && nb then compare ca cb
      else if na then 1
      else if nb then -1
      else
        match Float.compare da db with 0 -> compare ca cb | c -> c)
    ds;
  Array.map snd ds

(* the compiled-kernel memo: one tiny plan per (metric, scope) *)
let plan_for t ~metric ~scope (emb : Embedding.t) =
  let key = Dist.metric_name metric ^ "|" ^ scope in
  Mutex.lock t.m;
  let p =
    match Hashtbl.find_opt t.plans key with
    | Some p -> p
    | None ->
        let p =
          Dist.compile ~options:t.options ~metric
            ~name:(t.name ^ "#" ^ scope) emb
        in
        Hashtbl.add t.plans key p;
        p
  in
  Mutex.unlock t.m;
  p

let col_score col i =
  match Column.get col i with
  | Some s -> Some (Voodoo_vector.Scalar.to_float s)
  | None -> None

let search ?budget ?exec ?(filter = fun _ -> true) t ~metric ~query ~k ~nprobe =
  let nprobe = max 1 (min nprobe t.nlist) in
  let order = probe_order t ~query in
  let largest = Dist.largest metric in
  let h = Topk.heap ~k ~largest in
  let tracker = Option.map Budget.tracker budget in
  for p = 0 to nprobe - 1 do
    (* the deadline/cancel checkpoint between partitions *)
    Option.iter Budget.check_time tracker;
    let c = order.(p) in
    let rows = t.lists.(c) in
    if Array.length rows > 0 then begin
      let scores =
        Dist.run ?budget ?exec (plan_for t ~metric ~scope:(string_of_int c) t.packed.(c))
          t.packed.(c) ~query
      in
      Array.iteri
        (fun local row ->
          if filter row then
            match col_score scores local with
            | Some s -> Topk.push h { Topk.row; score = s }
            | None -> ())
        rows
    end
  done;
  Stats.record_search ~probed:nprobe ~nlist:t.nlist;
  Topk.contents h

let exhaustive ?budget ?exec ?(filter = fun _ -> true) ?(chunks = 1) t ~metric
    ~query ~k =
  let scores =
    Dist.run ?budget ?exec (plan_for t ~metric ~scope:"full" t.emb) t.emb ~query
  in
  let valid i = Embedding.valid t.emb i && filter i in
  let out =
    Topk.select ~chunks ~valid ~k ~largest:(Dist.largest metric)
      ~n:t.emb.Embedding.n (col_score scores)
  in
  Stats.record_search ~probed:t.nlist ~nlist:t.nlist;
  out

let recall ~got ~oracle =
  match oracle with
  | [] -> 1.0
  | _ ->
      let hit = List.filter (fun (o : Topk.entry) ->
          List.exists (fun (g : Topk.entry) -> g.Topk.row = o.Topk.row) got)
          oracle
      in
      float_of_int (List.length hit) /. float_of_int (List.length oracle)
