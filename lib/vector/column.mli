(** A column: one scalar attribute of a structured vector.

    Every slot either holds a scalar of the column's dtype or is {e empty}
    (the paper's ε).  Empty slots appear when a scatter does not target a
    slot or when a controlled fold pads between run results; they are
    tracked with a validity bitset allocated lazily.

    Payloads are unboxed {!Bigarray} buffers — native ints and float64 —
    so compiled kernels loop over raw machine words ([Array1.unsafe_get]/
    [unsafe_set]) instead of boxing a {!Scalar.t} per slot.  The payload
    of a freshly {!create}d column is uninitialized; a slot's bytes only
    become meaningful when its validity bit is set.  See docs/STORAGE.md
    for the full layout. *)

type int_data = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_data =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type data = I of int_data | F of float_data

(** Per-tile summaries at a fixed tile width, used for zone-map skipping.
    Entry [ti] describes slots [ti*zw, (ti+1)*zw) (the last tile may be
    short).  [zcount.(ti) = -1] marks a tile not yet computed; otherwise
    it is the tile's valid-slot count and [zmin]/[zmax] bound its valid
    payloads, widened to float (exact for zero/nonzero tests; a float NaN
    poisons its tile to [(-inf, +inf)]).  Advisory only — consumers must
    treat an absent or unknown entry as "run the kernel". *)
type zones = {
  zw : int;
  zcount : int array;
  zmin : float array;
  zmax : float array;
}

type t = {
  data : data;
  mutable valid : Bitset.t option;  (** [None] means every slot is valid *)
  mutable zones : zones option;  (** per-tile summaries; dropped on mutation *)
}

val length : t -> int
val dtype : t -> Scalar.dtype

(** [create dt n] is a column of [n] empty slots.  Costs one mask fill
    ([n/8] bytes); the payload is left uninitialized. *)
val create : Scalar.dtype -> int -> t

(** Copy existing arrays into fresh payload buffers; all slots valid. *)
val of_int_array : int array -> t

val of_float_array : float array -> t

(** [init_int n f] / [init_float n f] build fully valid columns by
    filling the payload directly — the loaders' bulk path. *)
val init_int : int -> (int -> int) -> t

val init_float : int -> (int -> float) -> t

(** [init dt n f] builds a fully valid column from [f]. *)
val init : Scalar.dtype -> int -> (int -> Scalar.t) -> t

val is_valid : t -> int -> bool

(** [get t i] is [Some] scalar, or [None] for an empty slot. *)
val get : t -> int -> Scalar.t option

(** [get_exn t i] reads a slot that must be valid. *)
val get_exn : t -> int -> Scalar.t

(** Raw reads that ignore validity (backends pair these with explicit
    validity checks, mirroring separate data and mask buffers).  On an
    invalid slot of a fresh column the payload bytes are unspecified. *)
val raw_int : t -> int -> int

val raw_float : t -> int -> float

(** Force the validity mask to exist (all-true when absent) and return
    it. *)
val ensure_mask : t -> Bitset.t

(** [set t i s] writes [s] (converted to the column dtype) and marks the
    slot valid.  Drops any cached zone map. *)
val set : t -> int -> Scalar.t -> unit

(** [set_empty t i] turns slot [i] into ε.  Drops any cached zone map. *)
val set_empty : t -> int -> unit

(** Drop any cached zone map.  Code that writes the payload or mask
    directly (compiled scatter writers) must call this; {!set} and
    {!set_empty} already do. *)
val touch : t -> unit

val copy : t -> t

(** [promote_all_valid t] drops the validity mask when every bit is set —
    [None] and an all-set mask mean the same column, but [None] lets every
    downstream kernel take its branch-free path (and lets {!sub} and the
    structured-vector zip/project keep their outputs mask-free).  No-op on
    a partially valid or already mask-free column. *)
val promote_all_valid : t -> unit

(** [sub t n] copies the first [n] slots (payload blit, not per-slot
    boxing).  Mask-freedom is preserved, and a masked column whose first
    [n] slots are all valid promotes to mask-free; otherwise the mask
    prefix is copied bit-for-bit.  Raises [Invalid_argument] when
    [n > length t]. *)
val sub : t -> int -> t

(** [of_scalars dt xs] builds a column from optional scalars ([None] = ε). *)
val of_scalars : Scalar.dtype -> Scalar.t option list -> t

val to_scalars : t -> Scalar.t option list

(** Count of valid (non-ε) slots. *)
val count_valid : t -> int

(** Number of zone-map tiles a length-[n] column has at [width]. *)
val zone_tiles : width:int -> int -> int

(** Cached zone-map slots for [width]: the existing cache when the width
    matches, otherwise a freshly installed blank one (every [zcount]
    entry [-1]).  Producing kernels fill entries incrementally as they
    complete tiles; {!zones} fills them all. *)
val zone_slots : t -> width:int -> zones

(** [zones t ~width] is the fully built zone map at [width] (cached).
    Only sound once the column's contents are final. *)
val zones : t -> width:int -> zones

(** Slot-wise equality, including ε positions. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
