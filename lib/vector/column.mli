(** A column: one scalar attribute of a structured vector.

    Every slot either holds a scalar of the column's dtype or is {e empty}
    (the paper's ε).  Empty slots appear when a scatter does not target a
    slot or when a controlled fold pads between run results; they are
    tracked with a validity bitset allocated lazily. *)

type data = I of int array | F of float array

type t = {
  data : data;
  mutable valid : Bitset.t option;  (** [None] means every slot is valid *)
}

val length : t -> int
val dtype : t -> Scalar.dtype

(** [create dt n] is a column of [n] empty slots. *)
val create : Scalar.dtype -> int -> t

(** Wrap existing arrays (shared, not copied); all slots valid. *)
val of_int_array : int array -> t
val of_float_array : float array -> t

(** [init dt n f] builds a fully valid column from [f]. *)
val init : Scalar.dtype -> int -> (int -> Scalar.t) -> t

val is_valid : t -> int -> bool

(** [get t i] is [Some] scalar, or [None] for an empty slot. *)
val get : t -> int -> Scalar.t option

(** [get_exn t i] reads a slot that must be valid. *)
val get_exn : t -> int -> Scalar.t

(** Raw reads that ignore validity (backends pair these with explicit
    validity checks, mirroring separate data and mask buffers). *)
val raw_int : t -> int -> int
val raw_float : t -> int -> float

(** [set t i s] writes [s] (converted to the column dtype) and marks the
    slot valid. *)
val set : t -> int -> Scalar.t -> unit

(** [set_empty t i] turns slot [i] into ε. *)
val set_empty : t -> int -> unit

val copy : t -> t

(** [of_scalars dt xs] builds a column from optional scalars ([None] = ε). *)
val of_scalars : Scalar.dtype -> Scalar.t option list -> t

val to_scalars : t -> Scalar.t option list

(** Count of valid (non-ε) slots. *)
val count_valid : t -> int

(** Slot-wise equality, including ε positions. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
