(** Scalar values and their types.

    Voodoo stores only two machine scalar types: integers and floats.
    Booleans are integers 0/1 (the paper uses predicate outcomes directly
    in arithmetic, e.g. for predication), dates are day numbers, and
    strings are dictionary codes. *)

(** The type of a scalar slot. *)
type dtype = Int | Float

(** A scalar value. *)
type t = I of int | F of float

val dtype_of : t -> dtype

val dtype_equal : dtype -> dtype -> bool

val pp_dtype : Format.formatter -> dtype -> unit

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

(** [to_float s] widens to float (ints convert exactly up to 2{^53}). *)
val to_float : t -> float

(** [to_int s] narrows to int; floats truncate toward zero. *)
val to_int : t -> int

(** [truthy s] is the boolean reading: non-zero means true. *)
val truthy : t -> bool

val of_bool : bool -> t

(** [zero dt] is the additive identity of [dt]. *)
val zero : dtype -> t

(** Identity for [max] folds. *)
val min_value : dtype -> t

(** Identity for [min] folds. *)
val max_value : dtype -> t

(** [join a b] is the wider of the two dtypes: any float makes float. *)
val join : dtype -> dtype -> dtype

(** Binary arithmetic with C-like promotion: two ints give an int (integer
    division and modulo), otherwise float.  Integer division or modulo by
    zero raises [Division_by_zero]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

(** [modulo a b] is the mathematical (non-negative) remainder. *)
val modulo : t -> t -> t

(** [bit_shift a b] shifts left for non-negative [b], right otherwise. *)
val bit_shift : t -> t -> t

val logical_and : t -> t -> t
val logical_or : t -> t -> t

(** Total order over scalars (ints and floats compare numerically). *)
val compare_scalar : t -> t -> int

(** Comparisons return integer 0/1. *)

val greater : t -> t -> t
val greater_equal : t -> t -> t
val equals : t -> t -> t

val max_s : t -> t -> t
val min_s : t -> t -> t
