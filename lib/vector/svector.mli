(** Structured vectors: the Voodoo data model (paper Section 2.1).

    A structured vector is an ordered collection of fixed-size items all
    conforming to one (possibly nested) schema.  It is stored flattened:
    each scalar leaf of the schema is one {!Column.t} keyed by its full
    {!Keypath.t}.  An attribute may carry {!Ctrl.t} metadata when its
    values follow a control-vector closed form — the compiler keeps such
    attributes virtual. *)

type field = { col : Column.t; ctrl : Ctrl.t option }

type t = private {
  length : int;
  fields : (Keypath.t * field) list;  (** in schema order *)
}

val length : t -> int

(** Flattened schema: every scalar leaf with its dtype, in order. *)
val schema : t -> (Keypath.t * Scalar.dtype) list

val keypaths : t -> Keypath.t list

(** [make fields] builds a vector; all columns must share one length.
    Raises [Invalid_argument] otherwise or when [fields] is empty. *)
val make : (Keypath.t * field) list -> t

val of_columns : (Keypath.t * Column.t) list -> t

(** A single-attribute vector. *)
val single : Keypath.t -> Column.t -> t

(** A single-attribute vector whose values follow [ctrl] (materialized so
    any backend may also read it by value). *)
val of_ctrl : Keypath.t -> Ctrl.t -> int -> t

(** [column t kp] is the column at exactly [kp].
    Raises [Invalid_argument] when absent. *)
val column : t -> Keypath.t -> Column.t

(** Control metadata of attribute [kp], if annotated. *)
val ctrl : t -> Keypath.t -> Ctrl.t option

val mem : t -> Keypath.t -> bool

(** Fields lying below prefix [kp]. *)
val sub_fields : t -> Keypath.t -> (Keypath.t * field) list

(** [project ~out t kp] re-roots the substructure below [kp] at [out]. *)
val project : out:Keypath.t -> t -> Keypath.t -> t

(** [zip (out1, t1, kp1) (out2, t2, kp2)] pairs two substructures; the
    result has the length of the shorter input (paper Table 2), except
    that one-element inputs broadcast, like element-wise operators. *)
val zip : Keypath.t * t * Keypath.t -> Keypath.t * t * Keypath.t -> t

(** [upsert t1 ~out t2 kp] copies [t1], replacing or inserting attribute
    [out] with the values of [t2.kp]; replacement removes the whole
    substructure below [out]; a one-element value broadcasts. *)
val upsert : t -> out:Keypath.t -> t -> Keypath.t -> t

(** [with_ctrl t kp ctrl] annotates attribute [kp] with control metadata. *)
val with_ctrl : t -> Keypath.t -> Ctrl.t -> t

(** Structural equality (schema order matters), slot-wise including ε. *)
val equal : t -> t -> bool

(** Structural equality up to attribute order. *)
val equal_unordered : t -> t -> bool

val pp : Format.formatter -> t -> unit
