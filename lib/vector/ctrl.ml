(** Control-vector metadata.

    Control vectors are virtual attributes that declaratively encode the
    partitioning (and hence parallelism) of controlled folds.  The compiler
    never materializes them; instead it tracks the closed form the paper
    gives in Section 3.1.1:

    {v v[i] = from + ⌊i * step⌋ mod cap v}

    [step] is kept as an exact rational so that [Divide] by [x] (runs of
    length [x]) composes with [Modulo] by [c] (cycling partition ids) without
    loss.  All the derivations the paper lists are implemented here:
    dividing a vector by a constant divides [step]; a modulo sets [cap]. *)

type t = {
  from : int;
  num : int;  (** step numerator *)
  den : int;  (** step denominator, > 0 *)
  cap : int option;  (** modulo cap, if any *)
}

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let make ~from ~num ~den ~cap =
  if den <= 0 then invalid_arg "Ctrl.make: den must be positive";
  let g = gcd num den in
  let g = if g = 0 then 1 else g in
  { from; num = num / g; den = den / g; cap }

(** The identity control vector: [v[i] = i], i.e. every tuple its own run. *)
let iota = make ~from:0 ~num:1 ~den:1 ~cap:None

(** A constant vector: one single run spanning the whole input. *)
let constant c = make ~from:c ~num:0 ~den:1 ~cap:None

(** Metadata of [Range(from, _, step)]. *)
let range ~from ~step = make ~from ~num:step ~den:1 ~cap:None

(** [value m i] computes [v[i]]. *)
let value m i =
  let v = m.from + (i * m.num / m.den) in
  match m.cap with None -> v | Some c -> ((v mod c) + abs c) mod abs c

(** [materialize m n] realizes the first [n] values (interpreter use only:
    the compiler keeps control vectors virtual). *)
let materialize m n = Array.init n (value m)

(** Metadata transformations under arithmetic with a constant.  [None] means
    the result is no longer a recognizable control vector. *)

(* Soundness of these rules rests on ⌊⌊x/a⌋/b⌋ = ⌊x/(ab)⌋ for non-negative x
   and positive a, b.  Where a precondition fails we return [None] — the
   attribute simply stops being a recognized control vector, which is always
   sound (the backend falls back to treating it as data). *)

let divide m x =
  if
    x <= 0 || m.cap <> None (* dividing a capped vector loses the closed form *)
    || m.num < 0
    || m.from < 0
    || m.from mod x <> 0 (* floor division does not distribute over [from] *)
  then None
  else Some (make ~from:(m.from / x) ~num:m.num ~den:(m.den * x) ~cap:None)

let modulo m x = if x <= 0 then None else Some { m with cap = Some x }

let multiply m x =
  if m.cap <> None || m.den <> 1 || x < 0 then None
  else Some (make ~from:(m.from * x) ~num:(m.num * x) ~den:1 ~cap:None)

let add m x =
  if m.cap <> None then None else Some { m with from = m.from + x }

let subtract m x = add m (-x)

(** How the values of a control vector partition an input of length [n] into
    runs (maximal stretches of equal adjacent values).  This is what the
    compiler turns into kernel extent and intent. *)
type runs =
  | Single_run  (** one run of length [n]: fully sequential fold *)
  | Uniform of int
      (** runs of this exact length; [Uniform 1] is fully data-parallel *)
  | Irregular  (** no static structure; backend must scan for boundaries *)

let runs m ~n =
  if n <= 1 then Single_run
  else if m.num = 0 then Single_run
  else if m.num = 1 then begin
    (* v = from + i/den (mod cap): runs of exactly [den]; a cap only cycles
       the ids, every boundary still changes the value. *)
    if m.den >= n then Single_run
    else
      match m.cap with
      | Some 1 -> Single_run
      | _ -> Uniform m.den
  end
  else if m.den = 1 then
    (* strictly increasing with step >= 2 (mod cap): runs of length 1 unless
       the cap collapses everything. *)
    match m.cap with Some 1 -> Single_run | _ -> Uniform 1
  else Irregular

(** Number of runs implied by [runs] over an input of length [n] (rounding
    the last partial run up). *)
let run_count m ~n =
  match runs m ~n with
  | Single_run -> 1
  | Uniform len -> (n + len - 1) / len
  | Irregular -> n

let equal a b = a.from = b.from && a.num = b.num && a.den = b.den && a.cap = b.cap

let pp ppf m =
  Fmt.pf ppf "{from=%d; step=%d/%d; cap=%a}" m.from m.num m.den
    Fmt.(option ~none:(any "none") int)
    m.cap
