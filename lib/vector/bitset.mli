(** Compact mutable bitsets, used as validity masks (empty-slot ε tracking)
    on columns. *)

type t

(** [create ~length ~default] makes a bitset of [length] bits, all set to
    [default]. *)
val create : length:int -> default:bool -> t

val length : t -> int

(** [get t i] reads bit [i].  Raises [Invalid_argument] out of bounds. *)
val get : t -> int -> bool

(** [set t i v] writes bit [i].  Raises [Invalid_argument] out of bounds. *)
val set : t -> int -> bool -> unit

val copy : t -> t

(** {2 Kernel-side accessors}

    No bounds checks: the compiled tile kernels iterate inside ranges the
    driver has already validated.  Out-of-range indices are undefined
    behaviour. *)

(** [unsafe_get t i] reads bit [i] without a bounds check. *)
val unsafe_get : t -> int -> bool

(** [unsafe_set_true t i] sets bit [i] without a bounds check. *)
val unsafe_set_true : t -> int -> unit

(** [unsafe_byte t j] is mask byte [j] — the validity of slots
    [8j .. 8j+7] as an 8-bit word (bit [k] = slot [8j + k]). *)
val unsafe_byte : t -> int -> int

(** [fill_range t lo hi v] sets every bit in [lo, hi) to [v]: one
    [Bytes.fill] for whole bytes, masked read-modify-write at the two
    partial ends.  Raises [Invalid_argument] on a bad range. *)
val fill_range : t -> int -> int -> bool -> unit

(** Number of set bits (byte-at-a-time popcount). *)
val count : t -> int

(** Set bits within [lo, hi). *)
val count_range : t -> int -> int -> int

(** Whether every bit in [lo, hi) is set. *)
val all_set_range : t -> int -> int -> bool

val for_all : (bool -> bool) -> t -> bool
val all_set : t -> bool
val equal : t -> t -> bool
