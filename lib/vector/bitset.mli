(** Compact mutable bitsets, used as validity masks (empty-slot ε tracking)
    on columns. *)

type t

(** [create ~length ~default] makes a bitset of [length] bits, all set to
    [default]. *)
val create : length:int -> default:bool -> t

val length : t -> int

(** [get t i] reads bit [i].  Raises [Invalid_argument] out of bounds. *)
val get : t -> int -> bool

(** [set t i v] writes bit [i].  Raises [Invalid_argument] out of bounds. *)
val set : t -> int -> bool -> unit

val copy : t -> t

(** Number of set bits. *)
val count : t -> int

val for_all : (bool -> bool) -> t -> bool
val all_set : t -> bool
val equal : t -> t -> bool
