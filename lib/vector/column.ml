(** A column: one scalar attribute of a structured vector.

    Every slot either holds a scalar of the column's dtype or is {e empty}
    (the paper's ε).  Empty slots appear when a scatter does not target a
    slot or when a controlled fold pads between run results; they are
    tracked with a validity bitset that is only allocated once the first
    empty slot is produced. *)

type data =
  | I of int array
  | F of float array

type t = {
  data : data;
  mutable valid : Bitset.t option;  (** [None] means every slot is valid *)
}

let length t = match t.data with I a -> Array.length a | F a -> Array.length a

let dtype t : Scalar.dtype = match t.data with I _ -> Int | F _ -> Float

(** [create dt n] is a column of [n] empty slots. *)
let create (dt : Scalar.dtype) n =
  let data = match dt with Int -> I (Array.make n 0) | Float -> F (Array.make n 0.0) in
  { data; valid = Some (Bitset.create ~length:n ~default:false) }

let of_int_array a = { data = I a; valid = None }
let of_float_array a = { data = F a; valid = None }

let init (dt : Scalar.dtype) n f =
  match dt with
  | Int -> of_int_array (Array.init n (fun i -> Scalar.to_int (f i)))
  | Float -> of_float_array (Array.init n (fun i -> Scalar.to_float (f i)))

let is_valid t i = match t.valid with None -> true | Some b -> Bitset.get b i

(** [get t i] is [Some] scalar, or [None] for an empty slot. *)
let get t i =
  if not (is_valid t i) then None
  else
    Some
      (match t.data with
      | I a -> Scalar.I a.(i)
      | F a -> Scalar.F a.(i))

(** [get_exn t i] reads a slot that must be valid. *)
let get_exn t i =
  match get t i with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Column.get_exn: slot %d is empty" i)

(** Raw reads that ignore validity (backends use these together with
    explicit validity checks, mirroring separate data and mask buffers). *)
let raw_int t i = match t.data with I a -> a.(i) | F a -> int_of_float a.(i)
let raw_float t i = match t.data with I a -> float_of_int a.(i) | F a -> a.(i)

let ensure_mask t =
  match t.valid with
  | Some b -> b
  | None ->
      let b = Bitset.create ~length:(length t) ~default:true in
      t.valid <- Some b;
      b

let set t i (s : Scalar.t) =
  (match t.data, s with
  | I a, v -> a.(i) <- Scalar.to_int v
  | F a, v -> a.(i) <- Scalar.to_float v);
  match t.valid with None -> () | Some b -> Bitset.set b i true

let set_empty t i = Bitset.set (ensure_mask t) i false

let copy t =
  {
    data = (match t.data with I a -> I (Array.copy a) | F a -> F (Array.copy a));
    valid = Option.map Bitset.copy t.valid;
  }

(** [of_scalars dt xs] builds a column from optional scalars ([None] = ε). *)
let of_scalars (dt : Scalar.dtype) (xs : Scalar.t option list) =
  let n = List.length xs in
  let c = create dt n in
  List.iteri (fun i x -> match x with Some s -> set c i s | None -> ()) xs;
  c

let to_scalars t = List.init (length t) (get t)

(** Count of valid (non-ε) slots. *)
let count_valid t =
  match t.valid with None -> length t | Some b -> Bitset.count b

let equal a b =
  length a = length b
  && dtype a = dtype b
  &&
  let rec go i =
    i >= length a
    ||
    (match get a i, get b i with
     | None, None -> true
     | Some x, Some y -> Scalar.equal x y
     | None, Some _ | Some _, None -> false)
    && go (i + 1)
  in
  go 0

let pp ppf t =
  let slot ppf i =
    match get t i with None -> Fmt.string ppf "ε" | Some s -> Scalar.pp ppf s
  in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") slot) (List.init (length t) Fun.id)
