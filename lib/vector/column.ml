(** A column: one scalar attribute of a structured vector.

    Every slot either holds a scalar of the column's dtype or is {e empty}
    (the paper's ε).  Empty slots appear when a scatter does not target a
    slot or when a controlled fold pads between run results; they are
    tracked with a validity bitset that is only allocated once the first
    empty slot is produced.

    Payloads are unboxed {!Bigarray} buffers (native ints / float64), so
    compiled kernels can loop over raw machine words without per-slot
    boxing.  A freshly created column's payload is {e uninitialized}: a
    slot's bytes are only meaningful once its validity bit is set, and
    every reader goes through the validity mask first.

    Columns also carry an optional {e zone map}: per-tile valid counts and
    min/max summaries that let the executor skip tiles wholesale (see
    docs/STORAGE.md).  Zone maps are advisory and lazily built; any
    mutation through the scalar API drops them. *)

module A = Bigarray.Array1

type int_data = (int, Bigarray.int_elt, Bigarray.c_layout) A.t
type float_data = (float, Bigarray.float64_elt, Bigarray.c_layout) A.t

type data =
  | I of int_data
  | F of float_data

type zones = {
  zw : int;  (** tile width in slots *)
  zcount : int array;  (** valid slots per tile; [-1] = not yet computed *)
  zmin : float array;  (** min over the tile's valid slots (widened) *)
  zmax : float array;  (** max over the tile's valid slots (widened) *)
}

type t = {
  data : data;
  mutable valid : Bitset.t option;  (** [None] means every slot is valid *)
  mutable zones : zones option;  (** per-tile summaries; dropped on mutation *)
}

let length t = match t.data with I a -> A.dim a | F a -> A.dim a

let dtype t : Scalar.dtype = match t.data with I _ -> Int | F _ -> Float

(** [create dt n] is a column of [n] empty slots.  The payload buffer is
    left uninitialized — only the (all-false) validity mask is zeroed, so
    creation costs one [n/8]-byte fill rather than two [n]-word ones. *)
let create (dt : Scalar.dtype) n =
  let data =
    match dt with
    | Int -> I (A.create Bigarray.int Bigarray.c_layout n)
    | Float -> F (A.create Bigarray.float64 Bigarray.c_layout n)
  in
  { data; valid = Some (Bitset.create ~length:n ~default:false); zones = None }

let init_int n f =
  let a = A.create Bigarray.int Bigarray.c_layout n in
  for i = 0 to n - 1 do
    A.unsafe_set a i (f i)
  done;
  { data = I a; valid = None; zones = None }

let init_float n f =
  let a = A.create Bigarray.float64 Bigarray.c_layout n in
  for i = 0 to n - 1 do
    A.unsafe_set a i (f i)
  done;
  { data = F a; valid = None; zones = None }

let of_int_array src = init_int (Array.length src) (Array.unsafe_get src)
let of_float_array src = init_float (Array.length src) (Array.unsafe_get src)

let init (dt : Scalar.dtype) n f =
  match dt with
  | Int -> init_int n (fun i -> Scalar.to_int (f i))
  | Float -> init_float n (fun i -> Scalar.to_float (f i))

let is_valid t i = match t.valid with None -> true | Some b -> Bitset.get b i

(** [get t i] is [Some] scalar, or [None] for an empty slot. *)
let get t i =
  if not (is_valid t i) then None
  else
    Some
      (match t.data with
      | I a -> Scalar.I (A.get a i)
      | F a -> Scalar.F (A.get a i))

(** [get_exn t i] reads a slot that must be valid. *)
let get_exn t i =
  match get t i with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Column.get_exn: slot %d is empty" i)

(** Raw reads that ignore validity (backends use these together with
    explicit validity checks, mirroring separate data and mask buffers).
    On an invalid slot of a fresh column the payload bytes are
    unspecified. *)
let raw_int t i = match t.data with I a -> A.get a i | F a -> int_of_float (A.get a i)
let raw_float t i = match t.data with I a -> float_of_int (A.get a i) | F a -> A.get a i

let ensure_mask t =
  match t.valid with
  | Some b -> b
  | None ->
      let b = Bitset.create ~length:(length t) ~default:true in
      t.valid <- Some b;
      b

(** Drop any cached zone map.  Kernels that write a column's payload
    directly (scatters, the tree walk's raw writers) must call this —
    the scalar writers below do it themselves. *)
let touch t = t.zones <- None

let set t i (s : Scalar.t) =
  (match t.data with
  | I a -> A.set a i (Scalar.to_int s)
  | F a -> A.set a i (Scalar.to_float s));
  (match t.valid with None -> () | Some b -> Bitset.set b i true);
  t.zones <- None

let set_empty t i =
  Bitset.set (ensure_mask t) i false;
  t.zones <- None

let copy t =
  let data =
    match t.data with
    | I a ->
        let b = A.create Bigarray.int Bigarray.c_layout (A.dim a) in
        A.blit a b;
        I b
    | F a ->
        let b = A.create Bigarray.float64 Bigarray.c_layout (A.dim a) in
        A.blit a b;
        F b
  in
  { data; valid = Option.map Bitset.copy t.valid; zones = None }

let promote_all_valid t =
  match t.valid with
  | Some b when Bitset.all_set b -> t.valid <- None
  | _ -> ()

let sub t n =
  if n > length t then
    invalid_arg
      (Printf.sprintf "Column.sub: %d slots requested of %d" n (length t));
  let data =
    match t.data with
    | I a ->
        let b = A.create Bigarray.int Bigarray.c_layout n in
        A.blit (A.sub a 0 n) b;
        I b
    | F a ->
        let b = A.create Bigarray.float64 Bigarray.c_layout n in
        A.blit (A.sub a 0 n) b;
        F b
  in
  let valid =
    match t.valid with
    | None -> None
    | Some b when Bitset.all_set_range b 0 n -> None
    | Some b ->
        let m = Bitset.create ~length:n ~default:false in
        for i = 0 to n - 1 do
          if Bitset.unsafe_get b i then Bitset.set m i true
        done;
        Some m
  in
  { data; valid; zones = None }

(** [of_scalars dt xs] builds a column from optional scalars ([None] = ε). *)
let of_scalars (dt : Scalar.dtype) (xs : Scalar.t option list) =
  let n = List.length xs in
  let c = create dt n in
  List.iteri (fun i x -> match x with Some s -> set c i s | None -> ()) xs;
  c

let to_scalars t = List.init (length t) (get t)

(** Count of valid (non-ε) slots. *)
let count_valid t =
  match t.valid with None -> length t | Some b -> Bitset.count b

(* ---------- zone maps ---------- *)

let zone_tiles ~width n = (n + width - 1) / width

(** Cached zone-map slots for tile width [width]: returns the existing
    cache when the width matches, otherwise installs a blank one (every
    [zcount] entry [-1]).  Producing kernels fill entries incrementally;
    {!zones} fills them all. *)
let zone_slots t ~width =
  if width <= 0 then invalid_arg "Column.zone_slots: width must be positive";
  match t.zones with
  | Some z when z.zw = width -> z
  | _ ->
      let nt = zone_tiles ~width (length t) in
      let z =
        {
          zw = width;
          zcount = Array.make nt (-1);
          zmin = Array.make nt infinity;
          zmax = Array.make nt neg_infinity;
        }
      in
      t.zones <- Some z;
      z

(* Compute one tile's summary from the payload.  A float NaN poisons the
   tile to (-inf, +inf): NaN compares false against every bound, so
   leaving it out of min/max would let a zone test claim "all zero" for a
   tile whose NaN slot is truthy. *)
let build_zone t (z : zones) ti =
  let n = length t in
  let lo = ti * z.zw and hi = min n ((ti + 1) * z.zw) in
  let cnt = ref 0 and mn = ref infinity and mx = ref neg_infinity in
  let see v =
    if v <> v then begin
      mn := neg_infinity;
      mx := infinity
    end
    else begin
      if v < !mn then mn := v;
      if v > !mx then mx := v
    end
  in
  (match (t.data, t.valid) with
  | I a, None ->
      cnt := hi - lo;
      for i = lo to hi - 1 do
        see (float_of_int (A.unsafe_get a i))
      done
  | I a, Some b ->
      for i = lo to hi - 1 do
        if Bitset.unsafe_get b i then begin
          incr cnt;
          see (float_of_int (A.unsafe_get a i))
        end
      done
  | F a, None ->
      cnt := hi - lo;
      for i = lo to hi - 1 do
        see (A.unsafe_get a i)
      done
  | F a, Some b ->
      for i = lo to hi - 1 do
        if Bitset.unsafe_get b i then begin
          incr cnt;
          see (A.unsafe_get a i)
        end
      done);
  z.zcount.(ti) <- !cnt;
  z.zmin.(ti) <- !mn;
  z.zmax.(ti) <- !mx

(** [zones t ~width] is the fully built zone map at tile width [width]
    (cached; only sound to call once the column's contents are final —
    concurrent raw writers would leave it stale). *)
let zones t ~width =
  let z = zone_slots t ~width in
  for ti = 0 to Array.length z.zcount - 1 do
    if z.zcount.(ti) < 0 then build_zone t z ti
  done;
  z

let equal a b =
  length a = length b
  && dtype a = dtype b
  &&
  let rec go i =
    i >= length a
    ||
    (match (get a i, get b i) with
     | None, None -> true
     | Some x, Some y -> Scalar.equal x y
     | None, Some _ | Some _, None -> false)
    && go (i + 1)
  in
  go 0

let pp ppf t =
  let slot ppf i =
    match get t i with None -> Fmt.string ppf "ε" | Some s -> Scalar.pp ppf s
  in
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") slot) (List.init (length t) Fun.id)
