(** Keypaths navigate the nested structure of a structured vector.

    In the paper's notation a keypath is written with a leading dot,
    e.g. [.value] or [.input.value].  We represent a keypath as the list of
    component names; the textual forms parse and print with the leading
    dot. *)

type t = string list

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b

(** [of_string ".a.b"] parses the dotted notation (the leading dot is
    optional). *)
let of_string s =
  let s = if String.length s > 0 && s.[0] = '.' then String.sub s 1 (String.length s - 1) else s in
  if s = "" then [] else String.split_on_char '.' s

let to_string (kp : t) = "." ^ String.concat "." kp

let pp ppf kp = Fmt.string ppf (to_string kp)

(** [v name] is the single-component keypath [.name]. *)
let v name : t = [ name ]

let root : t = []

(** [append a b] navigates [b] below [a]. *)
let append (a : t) (b : t) : t = a @ b

(** [is_prefix p kp] holds when [kp] lies inside the substructure [p]. *)
let rec is_prefix (p : t) (kp : t) =
  match p, kp with
  | [], _ -> true
  | x :: p', y :: kp' -> String.equal x y && is_prefix p' kp'
  | _ :: _, [] -> false

(** [strip p kp] removes the prefix [p] from [kp].
    Raises [Invalid_argument] if [p] is not a prefix. *)
let rec strip (p : t) (kp : t) =
  match p, kp with
  | [], kp -> kp
  | x :: p', y :: kp' when String.equal x y -> strip p' kp'
  | _ -> invalid_arg "Keypath.strip: not a prefix"

(** [rebase ~from ~onto kp] moves [kp] from below [from] to below [onto]. *)
let rebase ~from ~onto kp = append onto (strip from kp)
