(** Scalar values and their types.

    Voodoo stores only two machine scalar types: 63-bit integers and
    double-precision floats.  Booleans are integers 0/1 (the paper uses
    predicate outcomes directly in arithmetic, e.g. for predication), dates
    are day numbers, and strings are dictionary codes (see
    {!Voodoo_relational.Storage}). *)

(** The type of a scalar slot. *)
type dtype =
  | Int
  | Float

(** A scalar value. *)
type t =
  | I of int
  | F of float

let dtype_of = function I _ -> Int | F _ -> Float

let dtype_equal (a : dtype) (b : dtype) = a = b

let pp_dtype ppf = function
  | Int -> Fmt.string ppf "int"
  | Float -> Fmt.string ppf "float"

let pp ppf = function
  | I i -> Fmt.int ppf i
  | F f -> Fmt.float ppf f

let equal a b =
  match a, b with
  | I x, I y -> x = y
  | F x, F y -> Float.equal x y
  | I _, F _ | F _, I _ -> false

(** [to_float s] widens to float (ints convert exactly up to 2^53). *)
let to_float = function I i -> float_of_int i | F f -> f

(** [to_int s] narrows to int; floats truncate toward zero. *)
let to_int = function I i -> i | F f -> int_of_float f

(** [truthy s] is the boolean reading: non-zero means true. *)
let truthy = function I 0 -> false | I _ -> true | F f -> f <> 0.0

let of_bool b = I (if b then 1 else 0)

let zero = function Int -> I 0 | Float -> F 0.0

(** Identity for [max] folds. *)
let min_value = function Int -> I min_int | Float -> F neg_infinity

(** Identity for [min] folds. *)
let max_value = function Int -> I max_int | Float -> F infinity

(** [join a b] is the wider of the two dtypes: any float makes float. *)
let join a b =
  match a, b with Int, Int -> Int | Int, Float | Float, Int | Float, Float -> Float

(** Binary arithmetic with C-like promotion: two ints give an int (integer
    division and modulo), otherwise float.  Division or modulo by zero on
    ints raises [Division_by_zero], matching the backends' behaviour. *)
let arith fint ffloat a b =
  match a, b with
  | I x, I y -> I (fint x y)
  | _ -> F (ffloat (to_float a) (to_float b))

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )
let div = arith ( / ) ( /. )

let modulo =
  arith (fun x y -> ((x mod y) + abs y) mod abs y) (fun x y -> Float.rem x y)

let bit_shift a b =
  (* Shift left for non-negative amounts, right for negative ones. *)
  let x = to_int a and s = to_int b in
  I (if s >= 0 then x lsl s else x asr -s)

let logical_and a b = of_bool (truthy a && truthy b)
let logical_or a b = of_bool (truthy a || truthy b)

let compare_scalar a b =
  match a, b with
  | I x, I y -> compare x y
  | _ -> Float.compare (to_float a) (to_float b)

let greater a b = of_bool (compare_scalar a b > 0)
let greater_equal a b = of_bool (compare_scalar a b >= 0)
let equals a b = of_bool (compare_scalar a b = 0)
let max_s a b = if compare_scalar a b >= 0 then a else b
let min_s a b = if compare_scalar a b <= 0 then a else b
