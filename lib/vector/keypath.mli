(** Keypaths navigate the nested structure of a structured vector.

    In the paper's notation a keypath is written with a leading dot, e.g.
    [.value] or [.input.value].  A keypath is the list of component names;
    the textual forms parse and print with the leading dot. *)

type t = string list

val equal : t -> t -> bool
val compare : t -> t -> int

(** [of_string ".a.b"] parses the dotted notation (the leading dot is
    optional). *)
val of_string : string -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [v name] is the single-component keypath [.name]. *)
val v : string -> t

val root : t

(** [append a b] navigates [b] below [a]. *)
val append : t -> t -> t

(** [is_prefix p kp] holds when [kp] lies inside the substructure [p]. *)
val is_prefix : t -> t -> bool

(** [strip p kp] removes the prefix [p] from [kp].
    Raises [Invalid_argument] if [p] is not a prefix. *)
val strip : t -> t -> t

(** [rebase ~from ~onto kp] moves [kp] from below [from] to below [onto]. *)
val rebase : from:t -> onto:t -> t -> t
