(** Structured vectors: the Voodoo data model.

    A structured vector is an ordered collection of fixed-size items all
    conforming to one (possibly nested) schema.  We store it flattened: each
    scalar leaf of the schema is one {!Column.t} keyed by its full
    {!Keypath.t}.  An attribute may additionally carry {!Ctrl.t} metadata
    when its values are known to follow a control-vector closed form — the
    compiler uses this to keep such attributes virtual. *)

type field = { col : Column.t; ctrl : Ctrl.t option }

type t = {
  length : int;
  fields : (Keypath.t * field) list;  (** in schema order *)
}

let length t = t.length

let schema t : (Keypath.t * Scalar.dtype) list =
  List.map (fun (kp, f) -> (kp, Column.dtype f.col)) t.fields

let keypaths t = List.map fst t.fields

(** [make fields] builds a vector; all columns must share one length. *)
let make (fields : (Keypath.t * field) list) =
  match fields with
  | [] -> invalid_arg "Svector.make: a vector needs at least one attribute"
  | (_, f0) :: rest ->
      let n = Column.length f0.col in
      List.iter
        (fun (kp, f) ->
          if Column.length f.col <> n then
            invalid_arg
              (Printf.sprintf
                 "Svector.make: column %s has mismatched length (%d, expected %d)"
                 (Keypath.to_string kp) (Column.length f.col) n))
        rest;
      { length = n; fields }

let of_columns cols =
  make (List.map (fun (kp, col) -> (kp, { col; ctrl = None })) cols)

(** A single-attribute vector. *)
let single kp col = of_columns [ (kp, col) ]

(** A single-attribute vector whose values follow control metadata [ctrl]
    (materialized here so any backend may also read it by value). *)
let of_ctrl kp ctrl n =
  make [ (kp, { col = Column.of_int_array (Ctrl.materialize ctrl n); ctrl = Some ctrl }) ]

let find_field t kp =
  match List.assoc_opt kp t.fields with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "Svector: no attribute %s (have: %s)"
           (Keypath.to_string kp)
           (String.concat ", " (List.map Keypath.to_string (keypaths t))))

let column t kp = (find_field t kp).col

let ctrl t kp = (find_field t kp).ctrl

let mem t kp = List.mem_assoc kp t.fields

(** [project t kp] extracts the substructure below [kp], re-rooted.  When
    [kp] names a scalar leaf the result is a single-attribute vector whose
    attribute is the leaf's last component (projection of [.a.b] yields
    [.b]), matching the paper's [Project(.out, V, .kp)] with [.out] chosen
    by the program. *)
let sub_fields t kp =
  List.filter (fun (kp', _) -> Keypath.is_prefix kp kp') t.fields

(** [project ~out t kp] creates a new vector with substructure [t.kp]
    re-rooted at [out]. *)
let project ~out t kp =
  match sub_fields t kp with
  | [] ->
      invalid_arg
        (Printf.sprintf "Svector.project: no attribute under %s" (Keypath.to_string kp))
  | fields ->
      (* mask-free promotion flows through projection: a source column
         whose every slot turned out valid sheds its mask here, so
         consumers of the re-rooted vector take branch-free paths *)
      List.iter (fun (_, f) -> Column.promote_all_valid f.col) fields;
      make
        (List.map
           (fun (kp', f) -> (Keypath.rebase ~from:kp ~onto:out kp', f))
           fields)

(** [zip (out1, t1, kp1) (out2, t2, kp2)] pairs the substructures; the
    result has the length of the shorter input (the paper: "the size of the
    output ... is the size of the smaller input").  Columns longer than the
    result are truncated by view-copy. *)
let truncate_col kp col n =
  if Column.length col = n then col
  else if Column.length col < n then
    invalid_arg
      (Printf.sprintf
         "Svector: column %s shorter than requested length (%d < %d)"
         (Keypath.to_string kp) (Column.length col) n)
  else
    (* payload blit; mask-freedom survives, and a fully valid masked
       prefix promotes to mask-free (Column.sub) *)
    Column.sub col n

let zip (out1, t1, kp1) (out2, t2, kp2) =
  (* one-element inputs broadcast (like element-wise operators); otherwise
     the shorter input bounds the result *)
  let n =
    if t1.length = 1 then t2.length
    else if t2.length = 1 then t1.length
    else min t1.length t2.length
  in
  let fit kp col =
    if Column.length col = 1 && n > 1 then
      match Column.get col 0 with
      | Some v -> Column.init (Column.dtype col) n (fun _ -> v)
      | None -> Column.create (Column.dtype col) n
    else truncate_col kp col n
  in
  let grab out t kp =
    List.map
      (fun (kp', f) ->
        (* by zip time the inputs are fully computed, so an all-set mask
           can drop here and the pairing stays mask-free end to end *)
        Column.promote_all_valid f.col;
        (Keypath.rebase ~from:kp ~onto:out kp', { f with col = fit kp' f.col }))
      (sub_fields t kp)
  in
  let fields = grab out1 t1 kp1 @ grab out2 t2 kp2 in
  (match fields with
  | [] ->
      invalid_arg
        (Printf.sprintf "Svector.zip: empty substructures under %s and %s"
           (Keypath.to_string kp1) (Keypath.to_string kp2))
  | _ -> ());
  make fields

(** [upsert t1 ~out t2 kp] copies [t1], replacing or inserting attribute
    [out] with the values of [t2.kp].  Replacement removes the whole
    substructure below [out] (a schema must never hold a leaf that is also
    a prefix of another leaf).  A one-element value broadcasts. *)
let upsert t1 ~out t2 kp =
  let f = find_field t2 kp in
  let f =
    if Column.length f.col = 1 && t1.length > 1 then
      {
        f with
        col =
          (match Column.get f.col 0 with
          | Some v -> Column.init (Column.dtype f.col) t1.length (fun _ -> v)
          | None -> Column.create (Column.dtype f.col) t1.length);
      }
    else { f with col = truncate_col kp f.col t1.length }
  in
  if Column.length f.col <> t1.length then
    invalid_arg
      (Printf.sprintf
         "Svector.upsert: value vector %s shorter than target %s (%d < %d)"
         (Keypath.to_string kp) (Keypath.to_string out) (Column.length f.col)
         t1.length);
  let kept =
    List.filter (fun (kp', _) -> not (Keypath.is_prefix out kp')) t1.fields
  in
  (* keep schema position when replacing; append when inserting *)
  let fields =
    if List.length kept = List.length t1.fields then t1.fields @ [ (out, f) ]
    else
      List.filter_map
        (fun (kp', f') ->
          if Keypath.equal kp' out || not (Keypath.is_prefix out kp') then
            Some (if Keypath.is_prefix out kp' then (out, f) else (kp', f'))
          else None)
        (if List.exists (fun (kp', _) -> Keypath.equal kp' out) t1.fields then
             t1.fields
         else
           (* replaced a nested substructure: put the new leaf first where
              the substructure was *)
           kept @ [ (out, f) ])
  in
  make fields

(** [with_ctrl t kp ctrl] annotates attribute [kp] with control metadata. *)
let with_ctrl t kp ctrl =
  {
    t with
    fields =
      List.map
        (fun (kp', f) -> if Keypath.equal kp' kp then (kp', { f with ctrl = Some ctrl }) else (kp', f))
        t.fields;
  }

let equal a b =
  a.length = b.length
  && List.length a.fields = List.length b.fields
  && List.for_all2
       (fun (kp1, f1) (kp2, f2) -> Keypath.equal kp1 kp2 && Column.equal f1.col f2.col)
       a.fields b.fields

(** Structural equality up to attribute order. *)
let equal_unordered a b =
  a.length = b.length
  && List.length a.fields = List.length b.fields
  && List.for_all
       (fun (kp, f) -> mem b kp && Column.equal f.col (column b kp))
       a.fields

let pp ppf t =
  let pp_field ppf (kp, f) = Fmt.pf ppf "%a = %a" Keypath.pp kp Column.pp f.col in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_field) t.fields
