(** Compact mutable bitsets, used as validity masks (empty-slot ε tracking)
    on columns. *)

type t = { bits : Bytes.t; length : int }

let create ~length ~default =
  let nbytes = (length + 7) / 8 in
  { bits = Bytes.make nbytes (if default then '\xff' else '\x00'); length }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i v =
  check t i;
  let byte = Char.code (Bytes.unsafe_get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.unsafe_set t.bits (i lsr 3) (Char.chr (byte land 0xff))

let copy t = { t with bits = Bytes.copy t.bits }

let count t =
  let n = ref 0 in
  for i = 0 to t.length - 1 do
    if get t i then incr n
  done;
  !n

let for_all p t =
  let rec go i = i >= t.length || (p (get t i) && go (i + 1)) in
  go 0

let all_set t = for_all (fun b -> b) t

let equal a b =
  a.length = b.length
  &&
  let rec go i = i >= a.length || (get a i = get b i && go (i + 1)) in
  go 0
