(** Compact mutable bitsets, used as validity masks (empty-slot ε tracking)
    on columns.  Bit [i] lives in byte [i lsr 3] at position [i land 7];
    padding bits past [length] in the final byte carry no meaning (they
    are masked out of byte-level queries). *)

type t = { bits : Bytes.t; length : int }

let create ~length ~default =
  let nbytes = (length + 7) / 8 in
  { bits = Bytes.make nbytes (if default then '\xff' else '\x00'); length }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i v =
  check t i;
  let byte = Char.code (Bytes.unsafe_get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.unsafe_set t.bits (i lsr 3) (Char.chr (byte land 0xff))

(* Kernel-side accessors: no bounds checks — callers (the compiled tile
   kernels) already iterate inside a validated [lo, hi) range. *)

let unsafe_get t i =
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let unsafe_set_true t i =
  let b = i lsr 3 in
  Bytes.unsafe_set t.bits b
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits b) lor (1 lsl (i land 7))))

(* Byte [j] of the mask, i.e. the validity of slots [8j .. 8j+7]. *)
let unsafe_byte t j = Char.code (Bytes.unsafe_get t.bits j)

let copy t = { t with bits = Bytes.copy t.bits }

(* [fill_range t lo hi v] sets every bit in [lo, hi): partial head and
   tail bytes via read-modify-write masks, whole bytes in the middle with
   one [Bytes.fill]. *)
let fill_range t lo hi v =
  if lo < 0 || hi > t.length || lo > hi then
    invalid_arg "Bitset.fill_range: bad range";
  if lo < hi then begin
    let blo = lo lsr 3 and bhi = (hi - 1) lsr 3 in
    let head_mask = 0xff lsl (lo land 7) land 0xff in
    let tail_mask = 0xff lsr (7 - ((hi - 1) land 7)) in
    let apply b mask =
      let old = Char.code (Bytes.unsafe_get t.bits b) in
      let nw = if v then old lor mask else old land lnot mask land 0xff in
      Bytes.unsafe_set t.bits b (Char.unsafe_chr nw)
    in
    if blo = bhi then apply blo (head_mask land tail_mask)
    else begin
      apply blo head_mask;
      apply bhi tail_mask;
      if bhi > blo + 1 then
        Bytes.fill t.bits (blo + 1) (bhi - blo - 1) (if v then '\xff' else '\x00')
    end
  end

let popcount8 =
  Array.init 256 (fun b ->
      let n = ref 0 in
      for k = 0 to 7 do
        if b land (1 lsl k) <> 0 then incr n
      done;
      !n)

let count t =
  let nbytes = Bytes.length t.bits in
  let n = ref 0 in
  for j = 0 to nbytes - 1 do
    n := !n + Array.unsafe_get popcount8 (Char.code (Bytes.unsafe_get t.bits j))
  done;
  (* ignore padding bits past [length] in the final byte *)
  let tail = t.length land 7 in
  if tail <> 0 && nbytes > 0 then begin
    let last = Char.code (Bytes.unsafe_get t.bits (nbytes - 1)) in
    n := !n - Array.unsafe_get popcount8 (last land (0xff lsl tail) land 0xff)
  end;
  !n

let count_range t lo hi =
  if lo < 0 || hi > t.length || lo > hi then
    invalid_arg "Bitset.count_range: bad range";
  let n = ref 0 in
  if lo < hi then begin
    let blo = lo lsr 3 and bhi = (hi - 1) lsr 3 in
    let head_mask = 0xff lsl (lo land 7) land 0xff in
    let tail_mask = 0xff lsr (7 - ((hi - 1) land 7)) in
    if blo = bhi then
      n :=
        Array.unsafe_get popcount8
          (Char.code (Bytes.unsafe_get t.bits blo) land head_mask land tail_mask)
    else begin
      n :=
        Array.unsafe_get popcount8
          (Char.code (Bytes.unsafe_get t.bits blo) land head_mask);
      for j = blo + 1 to bhi - 1 do
        n := !n + Array.unsafe_get popcount8 (Char.code (Bytes.unsafe_get t.bits j))
      done;
      n :=
        !n
        + Array.unsafe_get popcount8
            (Char.code (Bytes.unsafe_get t.bits bhi) land tail_mask)
    end
  end;
  !n

let all_set_range t lo hi = count_range t lo hi = hi - lo

let for_all p t =
  let rec go i = i >= t.length || (p (get t i) && go (i + 1)) in
  go 0

let all_set t = count t = t.length

let equal a b =
  a.length = b.length
  &&
  let rec go i = i >= a.length || (get a i = get b i && go (i + 1)) in
  go 0
