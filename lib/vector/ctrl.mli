(** Control-vector metadata.

    Control vectors are virtual attributes that declaratively encode the
    partitioning (and hence parallelism) of controlled folds.  The compiler
    never materializes them; instead it tracks the closed form of paper
    Section 3.1.1:

    {v v[i] = from + ⌊i * step⌋ mod cap v}

    [step] is an exact rational, so dividing by [x] (runs of length [x])
    composes with a modulo by [c] (cycling partition ids) without loss. *)

type t = {
  from : int;
  num : int;  (** step numerator *)
  den : int;  (** step denominator, > 0 *)
  cap : int option;  (** modulo cap, if any *)
}

(** [make ~from ~num ~den ~cap] normalizes the rational step.
    Raises [Invalid_argument] when [den <= 0]. *)
val make : from:int -> num:int -> den:int -> cap:int option -> t

(** The identity control vector: [v[i] = i] — every tuple its own run. *)
val iota : t

(** A constant vector: one single run spanning the whole input. *)
val constant : int -> t

(** Metadata of [Range(from, _, step)]. *)
val range : from:int -> step:int -> t

(** [value m i] computes [v[i]]. *)
val value : t -> int -> int

(** [materialize m n] realizes the first [n] values (interpreter use only;
    the compiler keeps control vectors virtual). *)
val materialize : t -> int -> int array

(** Derivations under arithmetic with a constant; [None] means the result
    is no longer a recognizable control vector (always sound — the backend
    then treats the attribute as data).  All rules are property-tested
    against materialization. *)

val divide : t -> int -> t option
val modulo : t -> int -> t option
val multiply : t -> int -> t option
val add : t -> int -> t option
val subtract : t -> int -> t option

(** How the values partition an input of length [n] into runs (maximal
    stretches of equal adjacent values) — what the compiler turns into
    kernel extent and intent. *)
type runs =
  | Single_run  (** one run of length [n]: fully sequential fold *)
  | Uniform of int
      (** runs of this exact length; [Uniform 1] is fully data-parallel *)
  | Irregular  (** no static structure; backend must scan for boundaries *)

val runs : t -> n:int -> runs

(** Number of runs over an input of length [n] (last partial run counts). *)
val run_count : t -> n:int -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
