(** Relational algebra plans.

    This is the logical plan shape MonetDB's SQL frontend would hand the
    Voodoo backend: scans, selections, computed columns, foreign-key
    (positional) joins, semi-joins and grouped aggregation.  Order-by/limit
    are omitted, as in the paper's evaluation.

    Conventions the lowering relies on:
    - The dimension side of an {!FkJoin} must be {e alignment-preserving}:
      a [Scan] possibly wrapped in [Map]s and further [FkJoin]s, never a
      [Select] or [GroupAgg].  Dimension predicates are expressed as [Map]
      columns (0/1 flags) and filtered on the fact side after the join —
      exactly how a columnar engine evaluates snowflake predicates.
    - TPC-H column names are globally unique, so joined plans keep a flat
      namespace. *)

type agg_kind = Sum | Min | Max | Count | Avg

type agg = { name : string; kind : agg_kind; expr : Rexpr.t }

type t =
  | Scan of string
  | Select of t * Rexpr.t
  | Map of t * (string * Rexpr.t) list  (** add computed columns *)
  | FkJoin of { fact : t; fk : string; dim : t; pk : string }
      (** positional join: [fk] references the dense key [pk] of [dim];
          all of [dim]'s columns become available on fact rows.  Fact rows
          whose [fk] is NULL get NULL dim columns. *)
  | LookupJoin of {
      fact : t;
      fact_key : Rexpr.t;
      dim : t;
      dim_key : Rexpr.t;
      domain : int * int;  (** (min, max) of the key expression *)
    }
      (** generalized positional join through an injective integer key
          expression (e.g. a composite key): an identity-hashed lookup
          table over the key domain maps fact rows to dim rows.  Fact rows
          without a match get NULL dim columns. *)
  | SemiJoin of { fact : t; key : string; dim : t; dim_key : string }
      (** keep fact rows whose [key] appears in [dim.dim_key] *)
  | AntiJoin of { fact : t; key : string; dim : t; dim_key : string }
      (** keep fact rows whose [key] does not appear *)
  | GroupAgg of { input : t; keys : string list; aggs : agg list }
      (** grouping keys must be integer-like columns *)

let scan t = Scan t
let select p e = Select (p, e)
let map p cols = Map (p, cols)
let fk_join fact ~fk dim ~pk = FkJoin { fact; fk; dim; pk }

let lookup_join fact ~fact_key dim ~dim_key ~domain =
  LookupJoin { fact; fact_key; dim; dim_key; domain }
let semi_join fact ~key dim ~dim_key = SemiJoin { fact; key; dim; dim_key }
let anti_join fact ~key dim ~dim_key = AntiJoin { fact; key; dim; dim_key }
let group_by p keys aggs = GroupAgg { input = p; keys; aggs }
let agg ?name kind expr =
  let name =
    match name with
    | Some n -> n
    | None -> (
        match kind with
        | Sum -> "sum"
        | Min -> "min"
        | Max -> "max"
        | Count -> "count"
        | Avg -> "avg")
  in
  { name; kind; expr }

(** Aggregation without grouping (a single output row). *)
let aggregate p aggs = GroupAgg { input = p; keys = []; aggs }

let rec base_table = function
  | Scan t -> t
  | Select (p, _) | Map (p, _) -> base_table p
  | FkJoin { fact; _ }
  | LookupJoin { fact; _ }
  | SemiJoin { fact; _ }
  | AntiJoin { fact; _ } ->
      base_table fact
  | GroupAgg { input; _ } -> base_table input

let rec pp ppf = function
  | Scan t -> Fmt.pf ppf "Scan(%s)" t
  | Select (p, _) -> Fmt.pf ppf "Select(%a)" pp p
  | Map (p, cols) ->
      Fmt.pf ppf "Map(%a; %a)" pp p
        (Fmt.list ~sep:(Fmt.any ",") Fmt.string)
        (List.map fst cols)
  | FkJoin { fact; fk; dim; pk } ->
      Fmt.pf ppf "FkJoin(%a, %s=%s, %a)" pp fact fk pk pp dim
  | LookupJoin { fact; dim; _ } ->
      Fmt.pf ppf "LookupJoin(%a, %a)" pp fact pp dim
  | SemiJoin { fact; key; dim; dim_key } ->
      Fmt.pf ppf "SemiJoin(%a, %s in %s of %a)" pp fact key dim_key pp dim
  | AntiJoin { fact; key; dim; dim_key } ->
      Fmt.pf ppf "AntiJoin(%a, %s not in %s of %a)" pp fact key dim_key pp dim
  | GroupAgg { input; keys; aggs } ->
      Fmt.pf ppf "GroupAgg(%a; keys=%a; aggs=%a)" pp input
        (Fmt.list ~sep:(Fmt.any ",") Fmt.string)
        keys
        (Fmt.list ~sep:(Fmt.any ",") Fmt.string)
        (List.map (fun a -> a.name) aggs)
