(** Relational tables and their device representation.

    A table is a set of same-length columns; on the device it is one
    structured vector whose attributes are the columns — binary
    column-wise, strings dictionary-encoded, the MonetDB format the paper
    loads from.  Column types: integers, floats, dates (day numbers since
    1970-01-01), strings (dictionary codes). *)

open Voodoo_vector

type coltype = TInt | TFloat | TDate | TStr

type column = {
  name : string;
  ctype : coltype;
  data : Column.t;  (** device representation: Int (codes/days) or Float *)
  dict : string array option;  (** decode table for TStr columns *)
}

type t = { name : string; nrows : int; columns : column list }

val dtype_of_coltype : coltype -> Scalar.dtype

(** Raises [Invalid_argument] for unknown columns. *)
val column : t -> string -> column

val mem_column : t -> string -> bool

(** [make ~name columns] checks all columns share one length. *)
val make : name:string -> column list -> t

val int_column : name:string -> int array -> column
val float_column : name:string -> float array -> column
val date_column : name:string -> int array -> column

(** Dictionary-encode a string column (codes by first occurrence). *)
val str_column : name:string -> string array -> column

(** Dictionary code of a string ([None] when it never occurs — a selection
    on it is unsatisfiable). *)
val encode : column -> string -> int option

val decode : column -> int -> string

(** Min/max of an integer-representable column: the metadata the lowering
    exploits for identity hashing and positional joins. *)
val int_stats : column -> int * int

(** The device image: one structured vector, one attribute per column. *)
val to_svector : t -> Svector.t

(** Days since 1970-01-01 for a ["YYYY-MM-DD"] literal. *)
val date_of_string : string -> int

val string_of_date : int -> string
