(** Lowering relational plans to Voodoo programs.

    The translation mirrors the paper's MonetDB frontend (Section 4):

    - scans read the device-resident columns ({!Catalog});
    - selections evaluate the predicate data-parallel, then compact
      positions with a controlled [FoldSelect] (the branching
      implementation); optimizer flags switch to predication (multiply
      aggregates by the 0/1 outcome) or X100-style vectorization (a chunked
      [Materialize] between predicate and position generation);
    - foreign-key joins are positional lookups: [position = fk - min(pk)]
      followed by [Gather]s — no hashing, thanks to dense-key metadata;
    - semi joins scatter presence marks over the key domain (identity
      hashing, table sized from min/max, as the paper describes);
    - grouped aggregation normalizes the key columns into a dense group id
      (identity hashing on the value domain), then
      [Partition] → [Scatter] → controlled [FoldAgg]s — the pattern the
      compiling backend turns into a virtual scatter;
    - aggregation without grouping is lowered hierarchically (per-run
      partial folds under a control vector, then a global fold), which is
      Figure 3's plan shape. *)

open Voodoo_vector
open Voodoo_core
module B = Program.Builder

type options = {
  parallel_grain : int;
      (** run length of selection/aggregation control vectors *)
  predication : bool;  (** branch-free selections via flag multiplication *)
  vectorized : bool;  (** chunked materialization before position lists *)
  layout_transform : bool;
      (** materialize row-major before multi-column FK gathers *)
}

let default_options =
  {
    parallel_grain = 4096;
    predication = false;
    vectorized = false;
    layout_transform = false;
  }

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type ctx = {
  cat : Catalog.t;
  b : B.ctx;
  opts : options;
  loads : (string, Op.id) Hashtbl.t;
}

(* A binding gives access to the current row set: every column materializes
   as a full-length, ε-padded vector aligned with the binding's row order.
   [sel] is a 0/1 flag column under predication (rows remain unfiltered). *)
type binding = {
  length_of : string;  (** a vector id with the binding's length *)
  get : string -> Op.id;
  sel : Op.id option;
  basis : Op.id option;
      (** a single-attribute vector whose ε slots mark filtered-out rows
          (the position list of the innermost compacting selection);
          column-free aggregate inputs are masked through it *)
}

let load ctx tname =
  match Hashtbl.find_opt ctx.loads tname with
  | Some id -> id
  | None ->
      let id = B.load ctx.b ~name:tname tname in
      Hashtbl.replace ctx.loads tname id;
      id

let resolve_expr ctx e =
  Rexpr.resolve
    ~encode:(fun colname s ->
      let tname = Catalog.owner_exn ctx.cat colname in
      Table.encode (Table.column (Catalog.table ctx.cat tname) colname) s)
    e

let const_one ctx = B.const_int ctx.b 1

(* --- expression lowering: produces a vector aligned with [bind] --- *)

let rec lower_expr ctx (bind : binding) (e : Rexpr.t) : Op.id =
  let bin op a b =
    B.binary ctx.b op (lower_expr ctx bind a, []) (lower_expr ctx bind b, [])
  in
  match e with
  | Col c -> bind.get c
  | Int_lit i -> B.const_int ctx.b i
  | Float_lit f -> B.const_float ctx.b f
  | Str_lit s -> unsupported "unresolved string literal %S" s
  | Date_lit d -> B.const_int ctx.b (Table.date_of_string d)
  | Add (a, b) -> bin Op.Add a b
  | Sub (a, b) -> bin Op.Subtract a b
  | Mul (a, b) -> bin Op.Multiply a b
  | Div (a, b) -> bin Op.Divide a b
  | Gt (a, b) -> bin Op.Greater a b
  | Ge (a, b) -> bin Op.GreaterEqual a b
  | Lt (a, b) -> bin Op.Greater b a
  | Le (a, b) -> bin Op.GreaterEqual b a
  | Eq (a, b) -> bin Op.Equals a b
  | Ne (a, b) ->
      let eq = bin Op.Equals a b in
      B.subtract ctx.b (const_one ctx) eq
  | And (a, b) -> bin Op.LogicalAnd a b
  | Or (a, b) -> bin Op.LogicalOr a b
  | Not a ->
      let v = lower_expr ctx bind a in
      B.subtract ctx.b (const_one ctx) v
  | Between (a, lo, hi) -> lower_expr ctx bind (And (Ge (a, lo), Le (a, hi)))
  | In_list (a, xs) ->
      List.fold_left
        (fun acc x ->
          let eq = bin Op.Equals a x in
          B.logical_or ctx.b acc eq)
        (B.const_int ctx.b 0)
        xs

(* Control vector with runs of [grain] over the length of [v]. *)
let grain_ctrl ctx v =
  let ids = B.range ctx.b (Of_vector v) in
  let g = B.const_int ctx.b ctx.opts.parallel_grain in
  B.divide ctx.b ids g

(* Positions of rows satisfying [pred] (ε-padded, compacted per run). *)
let select_positions ctx pred =
  let pred =
    if ctx.opts.vectorized then
      let chunk = grain_ctrl ctx pred in
      B.materialize ctx.b ~chunks:(chunk, []) pred
    else pred
  in
  let fold_vec = grain_ctrl ctx pred in
  let z = B.zip ctx.b ~out1:[ "f" ] ~out2:[ "p" ] (fold_vec, []) (pred, []) in
  B.fold_select ctx.b ~fold:[ "f" ] (z, [ "p" ])

let cached get =
  let tbl = Hashtbl.create 8 in
  fun c ->
    match Hashtbl.find_opt tbl c with
    | Some id -> id
    | None ->
        let id = get c in
        Hashtbl.replace tbl c id;
        id

(* --- plan lowering --- *)

let rec lower_plan ctx (plan : Ra.t) : binding =
  match plan with
  | Scan tname ->
      let tbl = Catalog.table ctx.cat tname in
      let lid = load ctx tname in
      let get c =
        if not (Table.mem_column tbl c) then
          unsupported "column %s not in %s" c tname;
        B.project ctx.b ~out:[ "val" ] (lid, [ c ])
      in
      { length_of = lid; get = cached get; sel = None; basis = None }
  | Map (p, defs) ->
      let bind = lower_plan ctx p in
      let get c =
        match List.assoc_opt c defs with
        | Some e -> lower_expr ctx bind (resolve_expr ctx e)
        | None -> bind.get c
      in
      { bind with get = cached get }
  | Select (p, e) ->
      let bind = lower_plan ctx p in
      let pred = lower_expr ctx bind (resolve_expr ctx e) in
      let pred =
        match bind.sel with
        | Some flag -> B.logical_and ctx.b pred flag
        | None -> pred
      in
      if ctx.opts.predication then { bind with sel = Some pred }
      else begin
        let pos = select_positions ctx pred in
        let get c = B.gather ctx.b (bind.get c) (pos, []) in
        { length_of = pos; get = cached get; sel = None; basis = Some pos }
      end
  | FkJoin { fact; fk; dim; pk } ->
      let fbind = lower_plan ctx fact in
      let dbind = lower_plan ctx dim in
      let dim_table = Ra.base_table dim in
      let pk_min, _ = Catalog.stats ctx.cat dim_table pk in
      let fk_col = fbind.get fk in
      let pos =
        if pk_min = 0 then fk_col
        else B.subtract ctx.b fk_col (B.const_int ctx.b pk_min)
      in
      let dim_table_cols =
        (Catalog.table ctx.cat dim_table).columns
        |> List.map (fun (c : Table.column) -> c.name)
      in
      (* under the layout-transform option (Figure 14), the dimension table
         is materialized row-major once and a single shared gather fetches
         whole rows; columns are then projections of that gather *)
      let shared_gather =
        lazy
          (let rowwise = B.materialize ctx.b (load ctx dim_table) in
           B.gather ctx.b rowwise (pos, []))
      in
      let dim_cols c =
        if
          ctx.opts.layout_transform
          && List.mem c dim_table_cols
          && (match dim with Scan _ -> true | _ -> false)
        then B.project ctx.b ~out:[ "val" ] (Lazy.force shared_gather, [ c ])
        else
          (* columns resolved on the dimension side, gathered to fact rows *)
          B.gather ctx.b (dbind.get c) (pos, [])
      in
      let fact_has c =
        (* fact side wins on name clashes (TPC-H names are unique) *)
        match fbind.get c with
        | id -> Some id
        | exception Unsupported _ -> None
      in
      let get c = match fact_has c with Some id -> id | None -> dim_cols c in
      { fbind with get = cached get }
  | LookupJoin { fact; fact_key; dim; dim_key; domain = kmin, kmax } ->
      (* identity-hashed lookup table over the key domain, holding dim row
         positions; the paper's metadata-driven replacement for hash join *)
      let fbind = lower_plan ctx fact in
      let dbind = lower_plan ctx dim in
      let domain = kmax - kmin + 1 in
      let dkeys = lower_expr ctx dbind (resolve_expr ctx dim_key) in
      let rowids = B.range ctx.b ~out:[ "rid" ] (Of_vector dkeys) in
      let mpos =
        if kmin = 0 then dkeys
        else B.subtract ctx.b dkeys (B.const_int ctx.b kmin)
      in
      let shape = B.range ctx.b ~out:[ "slot" ] (Lit domain) in
      let table = B.scatter ctx.b ~shape rowids (mpos, []) in
      let fkeys = lower_expr ctx fbind (resolve_expr ctx fact_key) in
      let fpos =
        if kmin = 0 then fkeys
        else B.subtract ctx.b fkeys (B.const_int ctx.b kmin)
      in
      let idx = B.gather ctx.b table (fpos, []) in
      let fact_has c =
        match fbind.get c with
        | id -> Some id
        | exception Unsupported _ -> None
      in
      let get c =
        match fact_has c with
        | Some id -> id
        | None -> B.gather ctx.b (dbind.get c) (idx, [])
      in
      { fbind with get = cached get }
  | SemiJoin { fact; key; dim; dim_key } ->
      let fbind = lower_plan ctx fact in
      let dbind = lower_plan ctx dim in
      let dim_table = Ra.base_table dim in
      let kmin, kmax = Catalog.stats ctx.cat dim_table dim_key in
      let domain = kmax - kmin + 1 in
      let dkeys = dbind.get dim_key in
      let dkeys =
        (* under predication the dim rows are unfiltered: mask them *)
        match dbind.sel with
        | Some flag ->
            (* key+1 if selected else 0; 0-kmin lands out of the mark table *)
            let k1 = B.add_ ctx.b dkeys (const_one ctx) in
            let masked = B.multiply ctx.b k1 flag in
            B.subtract ctx.b masked (const_one ctx)
        | None -> dkeys
      in
      let ones =
        B.greater_equal ctx.b dkeys (B.const_int ctx.b kmin)
      in
      let mpos = B.subtract ctx.b dkeys (B.const_int ctx.b kmin) in
      let shape = B.range ctx.b ~out:[ "slot" ] (Lit domain) in
      let marks = B.scatter ctx.b ~shape ones (mpos, []) in
      let fkey = fbind.get key in
      let fpos = B.subtract ctx.b fkey (B.const_int ctx.b kmin) in
      let flag = B.gather ctx.b marks (fpos, []) in
      (* flag is 1 for members, ε otherwise *)
      if ctx.opts.predication then
        let sel =
          match fbind.sel with
          | Some prior -> B.logical_and ctx.b flag prior
          | None -> flag
        in
        { fbind with sel = Some sel }
      else begin
        let pos = select_positions ctx flag in
        let get c = B.gather ctx.b (fbind.get c) (pos, []) in
        { length_of = pos; get = cached get; sel = None; basis = Some pos }
      end
  | AntiJoin _ ->
      unsupported "AntiJoin lowering (not needed by the evaluated queries)"
  | GroupAgg _ -> unsupported "GroupAgg must be the plan root"

(* --- grouped aggregation at the root --- *)

type lowered_agg = {
  name : string;
  kind : Ra.agg_kind;
  vec : Op.id;  (** aggregate values (at run starts / slot 0) *)
  count_vec : Op.id option;  (** companion count for Avg *)
}

type lowered = {
  program : Program.t;
  keys : (string * Op.id) list;
      (** per key column: vector holding the key value at each group's run
          start (recovered with FoldMax) *)
  key_decode : (string * (int * int)) list;
      (** key column → (min, stride) to decompose the dense group id *)
  group_id : Op.id option;  (** dense group id at run starts *)
  aggs : lowered_agg list;
}

(* Column-free expressions lower to one-element vectors; aggregation needs
   them aligned with the binding AND masked by its selection: rows a
   compacting selection dropped are ε in the position list (the binding's
   basis), so multiply through an indicator derived from it.  Without a
   basis (no selection upstream) a virtual zero vector provides alignment
   (Add of a control vector and a constant stays virtual). *)
let broadcast ctx (bind : binding) e v =
  if Rexpr.columns e <> [] then v
  else
    match bind.basis with
    | Some basis ->
        (* positions are >= 0, ε propagates: indicator is 1/ε *)
        let indicator =
          B.greater_equal ctx.b basis (B.const_int ctx.b 0)
        in
        B.multiply ctx.b indicator v
    | None ->
        let ids = B.range ctx.b (Of_vector bind.length_of) in
        let zero = B.multiply ctx.b ids (B.const_int ctx.b 0) in
        B.add_ ctx.b zero v

let lower_agg_input ctx bind (a : Ra.agg) =
  let e = resolve_expr ctx a.expr in
  let v = broadcast ctx bind e (lower_expr ctx bind e) in
  match bind.sel, a.kind with
  | None, _ -> v
  | Some flag, (Ra.Sum | Ra.Avg | Ra.Count) ->
      (* predication: zero out unselected rows; for Count the flag itself
         participates via multiplication (0 contributes nothing only for
         Sum, so Count switches to summing the flag — handled below) *)
      B.multiply ctx.b v flag
  | Some _, (Ra.Min | Ra.Max) ->
      unsupported "predication with Min/Max aggregates"

(** [lower ?options cat plan] compiles a plan whose root is a [GroupAgg]. *)
let lower ?(options = default_options) (cat : Catalog.t) (plan : Ra.t) : lowered
    =
  let ctx = { cat; b = B.create (); opts = options; loads = Hashtbl.create 4 } in
  match plan with
  | GroupAgg { input; keys = []; aggs } ->
      (* hierarchical aggregation: per-run partials, then a global fold *)
      let bind = lower_plan ctx input in
      let lowered_aggs =
        List.map
          (fun (a : Ra.agg) ->
            let v = lower_agg_input ctx bind a in
            let fold_vec = grain_ctrl ctx v in
            let z =
              B.zip ctx.b ~out1:[ "f" ] ~out2:[ "v" ] (fold_vec, []) (v, [])
            in
            let partial kind =
              B.fold_agg ctx.b kind ~fold:[ "f" ] (z, [ "v" ])
            in
            let total kind partial_id = B.fold_agg ctx.b kind (partial_id, []) in
            let vec, count_vec =
              match a.kind, bind.sel with
              | Ra.Sum, _ -> (total Op.Sum (partial Op.Sum), None)
              | Ra.Min, _ -> (total Op.Min (partial Op.Min), None)
              | Ra.Max, _ -> (total Op.Max (partial Op.Max), None)
              | Ra.Count, None -> (total Op.Sum (partial Op.Count), None)
              | Ra.Count, Some flag ->
                  (* count = sum of flags *)
                  let fold_vec = grain_ctrl ctx flag in
                  let zf =
                    B.zip ctx.b ~out1:[ "f" ] ~out2:[ "v" ] (fold_vec, [])
                      (flag, [])
                  in
                  let p = B.fold_agg ctx.b Op.Sum ~fold:[ "f" ] (zf, [ "v" ]) in
                  (total Op.Sum p, None)
              | Ra.Avg, None ->
                  ( total Op.Sum (partial Op.Sum),
                    Some (total Op.Sum (partial Op.Count)) )
              | Ra.Avg, Some flag ->
                  let fold_vec = grain_ctrl ctx flag in
                  let zf =
                    B.zip ctx.b ~out1:[ "f" ] ~out2:[ "v" ] (fold_vec, [])
                      (flag, [])
                  in
                  let pc = B.fold_agg ctx.b Op.Sum ~fold:[ "f" ] (zf, [ "v" ]) in
                  (total Op.Sum (partial Op.Sum), Some (total Op.Sum pc))
            in
            { name = a.name; kind = a.kind; vec; count_vec })
          aggs
      in
      {
        program = B.finish ctx.b;
        keys = [];
        key_decode = [];
        group_id = None;
        aggs = lowered_aggs;
      }
  | GroupAgg { input; keys; aggs } ->
      let bind = lower_plan ctx input in
      (* dense group id from per-key min/max metadata (identity hashing) *)
      let key_stats =
        List.map
          (fun k ->
            let owner = Catalog.owner_exn ctx.cat k in
            let mn, mx = Catalog.stats ctx.cat owner k in
            (k, mn, mx - mn + 1))
          keys
      in
      let _, gid, strides =
        List.fold_left
          (fun (stride, acc, strs) (k, mn, card) ->
            let v = bind.get k in
            let norm =
              if mn = 0 then v else B.subtract ctx.b v (B.const_int ctx.b mn)
            in
            let scaled =
              if stride = 1 then norm
              else B.multiply ctx.b norm (B.const_int ctx.b stride)
            in
            let acc' =
              match acc with
              | None -> Some scaled
              | Some a -> Some (B.add_ ctx.b a scaled)
            in
            (stride * card, acc', (k, (mn, stride)) :: strs))
          (1, None, []) key_stats
      in
      let gid = Option.get gid in
      let k_total =
        List.fold_left (fun acc (_, _, card) -> acc * card) 1 key_stats
      in
      let gid =
        match bind.sel with
        | None -> gid
        | Some flag ->
            (* predication: unselected rows get group id k_total (one extra
               trash partition, dropped at extraction) *)
            let sel_gid = B.multiply ctx.b gid flag in
            let inv = B.subtract ctx.b (const_one ctx) flag in
            let trash = B.multiply ctx.b inv (B.const_int ctx.b k_total) in
            B.add_ ctx.b sel_gid trash
      in
      let k_groups =
        k_total + (match bind.sel with Some _ -> 1 | None -> 0)
      in
      (* assemble the scattered vector: group id + one attribute per agg *)
      let agg_inputs =
        List.mapi
          (fun i (a : Ra.agg) ->
            (Printf.sprintf "a%d" i, a, lower_agg_input ctx bind a))
          aggs
      in
      let data =
        List.fold_left
          (fun acc (attr, _, v) -> B.upsert ctx.b ~out:[ attr ] acc (v, []))
          (B.zip ctx.b ~out1:[ "g" ] ~out2:[ "dummy" ] (gid, []) (gid, []))
          agg_inputs
      in
      let pivots = B.range ctx.b ~out:[ "p" ] (Lit k_groups) in
      let pos = B.partition ctx.b (data, [ "g" ]) (pivots, []) in
      let scattered = B.scatter ctx.b ~shape:data data (pos, []) in
      let gid_runs = B.fold_max ctx.b ~fold:[ "g" ] (scattered, [ "g" ]) in
      let lowered_aggs =
        List.map
          (fun (attr, (a : Ra.agg), _) ->
            let fold_on kind =
              B.fold_agg ctx.b kind ~fold:[ "g" ] (scattered, [ attr ])
            in
            let vec, count_vec =
              match a.kind, bind.sel with
              | Ra.Sum, _ -> (fold_on Op.Sum, None)
              | Ra.Min, _ -> (fold_on Op.Min, None)
              | Ra.Max, _ -> (fold_on Op.Max, None)
              | Ra.Count, None -> (fold_on Op.Count, None)
              | Ra.Count, Some _ ->
                  (* flags were multiplied in: count = sum of flags only
                     when the agg input was the flag itself; sum works
                     because unselected rows contribute 0 *)
                  (fold_on Op.Sum, None)
              | Ra.Avg, None -> (fold_on Op.Sum, Some (fold_on Op.Count))
              | Ra.Avg, Some _ ->
                  unsupported "predication with grouped Avg aggregates"
            in
            { name = a.name; kind = a.kind; vec; count_vec })
          agg_inputs
      in
      {
        program = B.finish ctx.b;
        keys = List.map (fun k -> (k, gid_runs)) keys;
        key_decode = strides;
        group_id = Some gid_runs;
        aggs = lowered_aggs;
      }
  | _ -> unsupported "plan root must be a GroupAgg (use Ra.aggregate)"

(* --- result extraction --- *)

(** [fetch cat plan lowered read] decodes the result vectors (via [read :
    id -> Svector.t]) into rows comparable with {!Reference.run}.  Group
    rows appear in dense-group-id order; the predication trash partition
    (group id = k_total) is dropped. *)
let fetch (cat : Catalog.t) (l : lowered) (read : Op.id -> Svector.t) :
    Reference.row list =
  let read_col id =
    let v = read id in
    match Svector.keypaths v with
    | [ kp ] -> Svector.column v kp
    | kps ->
        invalid_arg
          (Printf.sprintf "fetch: expected single attribute, got %d"
             (List.length kps))
  in
  match l.group_id with
  | None ->
      (* single row at slot 0 of each total *)
      let row =
        List.map
          (fun a ->
            let v = Column.get (read_col a.vec) 0 in
            let v =
              match a.kind, a.count_vec with
              | Ra.Avg, Some cid -> (
                  match v, Column.get (read_col cid) 0 with
                  | Some s, Some c when Scalar.to_float c <> 0.0 ->
                      Some (Scalar.F (Scalar.to_float s /. Scalar.to_float c))
                  | _ -> None)
              | _ -> v
            in
            (a.name, v))
          l.aggs
      in
      [ row ]
  | Some gid_id ->
      let gcol = read_col gid_id in
      let n = Column.length gcol in
      let agg_cols =
        List.map
          (fun a -> (a, read_col a.vec, Option.map read_col a.count_vec))
          l.aggs
      in
      let k_total =
        List.fold_left (fun acc (_, (_, stride)) -> max acc stride) 1
          l.key_decode
      in
      ignore k_total;
      let max_gid =
        (* groups at or above the trash id are dropped *)
        List.fold_left
          (fun acc (k, (_, stride)) ->
            let owner = Catalog.owner_exn cat k in
            let _, mx = Catalog.stats cat owner k in
            let mn, _ = Catalog.stats cat owner k in
            max acc (stride * (mx - mn + 1)))
          1 l.key_decode
      in
      let rows = ref [] in
      for i = n - 1 downto 0 do
        match Column.get gcol i with
        | Some g ->
            let g = Scalar.to_int g in
            if g < max_gid then begin
              let key_vals =
                List.map
                  (fun (k, (mn, stride)) ->
                    let owner = Catalog.owner_exn cat k in
                    let _, omx = Catalog.stats cat owner k in
                    let omn, _ = Catalog.stats cat owner k in
                    let card = omx - omn + 1 in
                    let v = (g / stride) mod card in
                    (k, Some (Scalar.I (v + mn))))
                  l.key_decode
              in
              let agg_vals =
                List.map
                  (fun ((a : lowered_agg), col, ccol) ->
                    let v = Column.get col i in
                    let v =
                      match a.kind, ccol with
                      | Ra.Avg, Some cc -> (
                          match v, Column.get cc i with
                          | Some s, Some c when Scalar.to_float c <> 0.0 ->
                              Some
                                (Scalar.F (Scalar.to_float s /. Scalar.to_float c))
                          | _ -> None)
                      | _ -> v
                    in
                    (a.name, v))
                  agg_cols
              in
              rows := (key_vals @ agg_vals) :: !rows
            end
        | None -> ()
      done;
      !rows
