(** Relational algebra plans — the logical plan shape MonetDB's SQL
    frontend hands the Voodoo backend (paper Section 4): scans,
    selections, computed columns, foreign-key (positional) joins,
    generalized injective-key lookup joins, semi/anti joins and grouped
    aggregation.  Order-by/limit are omitted, as in the paper's
    evaluation.

    Conventions the lowering relies on: the dimension side of a join must
    be alignment-preserving (a [Scan] under [Map]s and further joins, never
    a [Select] — dimension predicates become [Map] flag columns filtered on
    the fact side); TPC-H column names are globally unique, so joined plans
    keep a flat namespace. *)

type agg_kind = Sum | Min | Max | Count | Avg

type agg = { name : string; kind : agg_kind; expr : Rexpr.t }

type t =
  | Scan of string
  | Select of t * Rexpr.t
  | Map of t * (string * Rexpr.t) list  (** add computed columns *)
  | FkJoin of { fact : t; fk : string; dim : t; pk : string }
      (** positional join: [fk] references the dense key [pk] of [dim];
          fact rows with NULL [fk] get NULL dim columns *)
  | LookupJoin of {
      fact : t;
      fact_key : Rexpr.t;
      dim : t;
      dim_key : Rexpr.t;
      domain : int * int;  (** (min, max) of the key expression *)
    }
      (** positional join through an injective integer key expression
          (e.g. a composite key): an identity-hashed table over the key
          domain maps fact rows to dim rows *)
  | SemiJoin of { fact : t; key : string; dim : t; dim_key : string }
      (** keep fact rows whose [key] appears in [dim.dim_key] *)
  | AntiJoin of { fact : t; key : string; dim : t; dim_key : string }
      (** keep fact rows whose [key] does not appear *)
  | GroupAgg of { input : t; keys : string list; aggs : agg list }
      (** grouping keys must be integer-like catalog columns *)

(** Constructors. *)

val scan : string -> t
val select : t -> Rexpr.t -> t
val map : t -> (string * Rexpr.t) list -> t
val fk_join : t -> fk:string -> t -> pk:string -> t

val lookup_join :
  t -> fact_key:Rexpr.t -> t -> dim_key:Rexpr.t -> domain:int * int -> t

val semi_join : t -> key:string -> t -> dim_key:string -> t
val anti_join : t -> key:string -> t -> dim_key:string -> t
val group_by : t -> string list -> agg list -> t

(** [agg ?name kind expr] names the aggregate after its kind by default. *)
val agg : ?name:string -> agg_kind -> Rexpr.t -> agg

(** Aggregation without grouping (a single output row). *)
val aggregate : t -> agg list -> t

(** The base fact table a plan scans. *)
val base_table : t -> string

val pp : Format.formatter -> t -> unit
