(** Lowering relational plans to Voodoo programs (paper Section 4).

    Scans read device-resident columns; selections evaluate data-parallel
    predicates and compact positions with a controlled [FoldSelect]
    (optimizer flags switch to predication or X100-style vectorization);
    foreign-key joins are positional lookups ([fk - min(pk)] + [Gather]s);
    semi joins scatter presence marks over the key domain (identity
    hashing sized from min/max metadata); grouped aggregation normalizes
    keys into a dense group id and emits the
    [Partition] → [Scatter] → [FoldAgg] pattern the compiling backend
    turns into a virtual scatter; ungrouped aggregation lowers
    hierarchically (Figure 3's plan shape). *)

open Voodoo_core

type options = {
  parallel_grain : int;
      (** run length of selection/aggregation control vectors *)
  predication : bool;  (** branch-free selections via flag multiplication *)
  vectorized : bool;  (** chunked materialization before position lists *)
  layout_transform : bool;
      (** materialize row-major before multi-column FK gathers *)
}

val default_options : options

exception Unsupported of string

type lowered_agg = {
  name : string;
  kind : Ra.agg_kind;
  vec : Op.id;  (** aggregate values (at run starts / slot 0) *)
  count_vec : Op.id option;  (** companion count for Avg *)
}

type lowered = {
  program : Program.t;
  keys : (string * Op.id) list;
      (** per key column: the vector holding the key value at each group's
          run start (recovered with FoldMax) *)
  key_decode : (string * (int * int)) list;
      (** key column → (min, stride) to decompose the dense group id *)
  group_id : Op.id option;  (** dense group id at run starts *)
  aggs : lowered_agg list;
}

(** [lower ?options cat plan] compiles a plan whose root is a [GroupAgg].
    Raises {!Unsupported} for plans/feature combinations outside the
    evaluated workload (plain projections, anti joins, predication with
    Min/Max or grouped Avg). *)
val lower : ?options:options -> Catalog.t -> Ra.t -> lowered

(** [fetch cat lowered read] decodes the result vectors (via [read]) into
    rows comparable with {!Reference.run}; the predication trash partition
    is dropped. *)
val fetch :
  Catalog.t -> lowered -> (Op.id -> Voodoo_vector.Svector.t) -> Reference.row list
