(** Trusted naive evaluator for relational plans.

    Row-at-a-time, hash-based, no Voodoo involved: the independent
    implementation the test suite checks both Voodoo backends' query
    results against. *)

open Voodoo_vector

type frame = {
  n : int;
  cols : (string * (int -> Scalar.t option)) list;
}

val getter : frame -> string -> int -> Scalar.t option

(** [row_of frame i] is the row accessor for {!Rexpr.eval}. *)
val row_of : frame -> int -> string -> Scalar.t option

(** Resolve string/date literals against the catalog's dictionaries. *)
val resolve_expr : Catalog.t -> Rexpr.t -> Rexpr.t

val eval_frame : Catalog.t -> Ra.t -> frame

type row = (string * Scalar.t option) list

(** [run cat plan] evaluates to a list of rows (column name → value). *)
val run : Catalog.t -> Ra.t -> row list

(** Canonical comparison form: keep only the named columns. *)
val project_rows : string list -> row list -> row list

val sort_rows : row list -> row list

(** Row-set equality modulo order; floats compare with relative [tol]
    (default 1e-6). *)
val rows_equal : ?tol:float -> row list -> row list -> bool
