(** A SQL frontend for the subset the evaluation workload needs.

    The paper reuses MonetDB's SQL-to-relational-algebra compiler; this is
    our stand-in.  Supported grammar:

    {v
    query   ::= SELECT item ("," item)*
                FROM table ("," table)*
                [WHERE pred]
                [GROUP BY column ("," column)*]
    item    ::= expr [AS ident] | agg "(" expr ")" [AS ident] | COUNT "(*)"
    agg     ::= SUM | MIN | MAX | COUNT | AVG
    pred    ::= disjunctions/conjunctions/NOT over comparisons,
                BETWEEN ... AND ..., IN (lit, ...), LIKE 'prefix%'
    expr    ::= arithmetic over columns and literals; literals are numbers,
                'strings' and DATE 'YYYY-MM-DD'
    v}

    Planning: equality predicates [fact.fk = dim.pk] between two of the
    FROM tables become foreign-key (positional) joins when the catalog
    shows [pk] to be a dense key of [dim]; remaining predicates become a
    selection on the join result; LIKE resolves against the column's
    dictionary into an [In_list].  The query must aggregate (plain
    projections are not part of the evaluated workload). *)

exception Sql_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Sql_error s)) fmt

(* ---------- lexer ---------- *)

type token =
  | KW of string  (** upper-cased keyword or identifier *)
  | IDENT of string
  | NUM of float
  | INT of int
  | STR of string
  | OP of string
  | LPAREN
  | RPAREN
  | COMMA
  | STAR
  | EOF

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "GROUP"; "BY"; "AS"; "AND"; "OR"; "NOT";
    "BETWEEN"; "IN"; "LIKE"; "DATE"; "SUM"; "MIN"; "MAX"; "COUNT"; "AVG" ]

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (emit LPAREN; incr i)
    else if c = ')' then (emit RPAREN; incr i)
    else if c = ',' then (emit COMMA; incr i)
    else if c = '*' then (emit STAR; incr i)
    else if c = '\'' then begin
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> '\'' do incr i done;
      if !i >= n then fail "unterminated string literal";
      emit (STR (String.sub s start (!i - start)));
      incr i
    end
    else if c = '<' && !i + 1 < n && (s.[!i + 1] = '=' || s.[!i + 1] = '>') then begin
      emit (OP (String.sub s !i 2));
      i := !i + 2
    end
    else if c = '>' && !i + 1 < n && s.[!i + 1] = '=' then begin
      emit (OP ">=");
      i := !i + 2
    end
    else if c = '<' || c = '>' || c = '=' || c = '+' || c = '-' || c = '/' then begin
      emit (OP (String.make 1 c));
      incr i
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && ((s.[!i] >= '0' && s.[!i] <= '9') || s.[!i] = '.') do incr i done;
      let lit = String.sub s start (!i - start) in
      match int_of_string_opt lit with
      | Some v -> emit (INT v)
      | None -> (
          match float_of_string_opt lit with
          | Some f -> emit (NUM f)
          | None -> fail "bad number %S" lit)
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      let word = String.sub s start (!i - start) in
      let up = String.uppercase_ascii word in
      if List.mem up keywords then emit (KW up) else emit (IDENT word)
    end
    else fail "unexpected character %C" c
  done;
  List.rev (EOF :: !toks)

(* ---------- parser ---------- *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let next st =
  match st.toks with
  | [] -> EOF
  | t :: rest ->
      st.toks <- rest;
      t

let expect st t what = if next st <> t then fail "expected %s" what

let accept st t = if peek st = t then (ignore (next st); true) else false

(* a parsed scalar/predicate expression; LIKE needs catalog resolution, so
   predicates stay symbolic until planning *)
type pexpr =
  | E of Rexpr.t
  | Like of string * string  (** column, pattern *)
  | PAnd of pexpr * pexpr
  | POr of pexpr * pexpr
  | PNot of pexpr

let as_rexpr = function
  | E e -> e
  | Like _ | PAnd _ | POr _ | PNot _ ->
      fail "predicates are not allowed in scalar position"

(* strip an optional table qualifier: TPC-H column names are unique *)
let bare_column c =
  match String.rindex_opt c '.' with
  | Some i -> String.sub c (i + 1) (String.length c - i - 1)
  | None -> c

let rec parse_or st =
  let l = parse_and st in
  if accept st (KW "OR") then POr (l, parse_or st) else l

and parse_and st =
  let l = parse_not st in
  if accept st (KW "AND") then PAnd (l, parse_and st) else l

and parse_not st =
  if accept st (KW "NOT") then PNot (parse_not st) else parse_cmp st

and parse_cmp st =
  let l = parse_additive st in
  match peek st with
  | OP op ->
      ignore (next st);
      let r = parse_additive st in
      let a = as_rexpr l and b = as_rexpr r in
      E
        (match op with
        | "=" -> Rexpr.Eq (a, b)
        | "<>" -> Rexpr.Ne (a, b)
        | "<" -> Rexpr.Lt (a, b)
        | "<=" -> Rexpr.Le (a, b)
        | ">" -> Rexpr.Gt (a, b)
        | ">=" -> Rexpr.Ge (a, b)
        | _ -> fail "unknown comparison %s" op)
  | KW "BETWEEN" ->
      ignore (next st);
      let lo = parse_additive st in
      expect st (KW "AND") "AND";
      let hi = parse_additive st in
      E (Rexpr.Between (as_rexpr l, as_rexpr lo, as_rexpr hi))
  | KW "IN" ->
      ignore (next st);
      expect st LPAREN "(";
      let lits = ref [ as_rexpr (parse_additive st) ] in
      while accept st COMMA do
        lits := as_rexpr (parse_additive st) :: !lits
      done;
      expect st RPAREN ")";
      E (Rexpr.In_list (as_rexpr l, List.rev !lits))
  | KW "LIKE" -> (
      ignore (next st);
      match l, next st with
      | E (Rexpr.Col c), STR pat -> Like (c, pat)
      | _ -> fail "LIKE needs a column on the left and a string pattern")
  | _ -> l

and parse_additive st =
  let l = parse_multiplicative st in
  match peek st with
  | OP "+" ->
      ignore (next st);
      E (Rexpr.Add (as_rexpr l, as_rexpr (parse_additive st)))
  | OP "-" ->
      ignore (next st);
      E (Rexpr.Sub (as_rexpr l, as_rexpr (parse_additive st)))
  | _ -> l

and parse_multiplicative st =
  let l = parse_atom st in
  match peek st with
  | STAR ->
      ignore (next st);
      E (Rexpr.Mul (as_rexpr l, as_rexpr (parse_multiplicative st)))
  | OP "/" ->
      ignore (next st);
      E (Rexpr.Div (as_rexpr l, as_rexpr (parse_multiplicative st)))
  | _ -> l

and parse_atom st =
  match next st with
  | INT i -> E (Rexpr.Int_lit i)
  | NUM f -> E (Rexpr.Float_lit f)
  | STR s -> E (Rexpr.Str_lit s)
  | KW "DATE" -> (
      match next st with
      | STR d -> E (Rexpr.Date_lit d)
      | _ -> fail "DATE needs a 'YYYY-MM-DD' literal")
  | IDENT c -> E (Rexpr.Col (bare_column c))
  | LPAREN ->
      let e = parse_or st in
      expect st RPAREN ")";
      e
  | OP "-" -> (
      match next st with
      | INT i -> E (Rexpr.Int_lit (-i))
      | NUM f -> E (Rexpr.Float_lit (-.f))
      | _ -> fail "dangling unary minus")
  | t ->
      fail "unexpected token %s"
        (match t with
        | KW k -> k
        | EOF -> "end of input"
        | COMMA -> ","
        | RPAREN -> ")"
        | _ -> "?")

type item = {
  alias : string;
  kind : [ `Plain of Rexpr.t | `Agg of Ra.agg_kind * Rexpr.t ];
}

let parse_item st idx =
  let agg_kw k = List.mem k [ "SUM"; "MIN"; "MAX"; "COUNT"; "AVG" ] in
  let kind =
    match peek st with
    | KW k when agg_kw k ->
        ignore (next st);
        expect st LPAREN "(";
        let e =
          if k = "COUNT" && peek st = STAR then (ignore (next st); Rexpr.Int_lit 1)
          else as_rexpr (parse_or st)
        in
        expect st RPAREN ")";
        let kind : Ra.agg_kind =
          match k with
          | "SUM" -> Sum
          | "MIN" -> Min
          | "MAX" -> Max
          | "COUNT" -> Count
          | _ -> Avg
        in
        `Agg (kind, e)
    | _ -> `Plain (as_rexpr (parse_or st))
  in
  let alias =
    if accept st (KW "AS") then
      match next st with
      | IDENT a -> a
      | _ -> fail "expected alias after AS"
    else
      match kind with
      | `Plain (Rexpr.Col c) -> c
      | `Agg _ | `Plain _ -> Printf.sprintf "expr%d" idx
  in
  { alias; kind }

type parsed = {
  items : item list;
  tables : string list;
  where : pexpr option;
  group_by : string list;
}

let parse_query text =
  let st = { toks = tokenize text } in
  expect st (KW "SELECT") "SELECT";
  let items = ref [ parse_item st 0 ] in
  while accept st COMMA do
    items := parse_item st (List.length !items) :: !items
  done;
  expect st (KW "FROM") "FROM";
  let tables = ref [] in
  (match next st with
  | IDENT t -> tables := [ t ]
  | _ -> fail "expected table name");
  while accept st COMMA do
    match next st with
    | IDENT t -> tables := t :: !tables
    | _ -> fail "expected table name"
  done;
  let where = if accept st (KW "WHERE") then Some (parse_or st) else None in
  let group_by =
    if accept st (KW "GROUP") then begin
      expect st (KW "BY") "BY";
      let cols = ref [] in
      (match next st with
      | IDENT c -> cols := [ bare_column c ]
      | _ -> fail "expected grouping column");
      while accept st COMMA do
        match next st with
        | IDENT c -> cols := bare_column c :: !cols
        | _ -> fail "expected grouping column"
      done;
      List.rev !cols
    end
    else []
  in
  (match next st with
  | EOF -> ()
  | _ -> fail "trailing input after query");
  { items = List.rev !items; tables = List.rev !tables; where; group_by }

(* ---------- planning ---------- *)

(* split a predicate tree into conjuncts *)
let rec conjuncts = function
  | Rexpr.And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* LIKE against a dictionary column: 'foo%' is a prefix match, '%foo%' a
   substring match, otherwise exact *)
let like_to_inlist (cat : Catalog.t) colname pattern =
  let tname = Catalog.owner_exn cat colname in
  let c = Table.column (Catalog.table cat tname) colname in
  match c.dict with
  | None -> fail "LIKE on non-string column %s" colname
  | Some dict ->
      let matchp =
        let l = String.length pattern in
        if l > 1 && pattern.[l - 1] = '%' && pattern.[0] = '%' then
          let inner = String.sub pattern 1 (l - 2) in
          fun s ->
            let sl = String.length s and il = String.length inner in
            let rec go i = i + il <= sl && (String.sub s i il = inner || go (i + 1)) in
            go 0
        else if l > 0 && pattern.[l - 1] = '%' then
          has_prefix ~prefix:(String.sub pattern 0 (l - 1))
        else String.equal pattern
      in
      let codes = ref [] in
      Array.iteri (fun code s -> if matchp s then codes := code :: !codes) dict;
      Rexpr.In_list (Rexpr.Col colname, List.map (fun c -> Rexpr.Int_lit c) !codes)

(* resolve the symbolic predicate tree against the catalog *)
let rec to_rexpr cat = function
  | E e -> e
  | Like (c, pat) -> like_to_inlist cat c pat
  | PAnd (a, b) -> Rexpr.And (to_rexpr cat a, to_rexpr cat b)
  | POr (a, b) -> Rexpr.Or (to_rexpr cat a, to_rexpr cat b)
  | PNot a -> Rexpr.Not (to_rexpr cat a)

(* is [col] a dense key (min..max covers the row count) of [tname]? *)
let is_dense_key cat tname col =
  Table.mem_column (Catalog.table cat tname) col
  &&
  let mn, mx = Catalog.stats cat tname col in
  mx - mn + 1 = (Catalog.table cat tname).nrows

let owner_among cat tables col =
  List.find_opt (fun t -> Table.mem_column (Catalog.table cat t) col) tables

(** [plan cat text] parses and plans a query against the catalog. *)
let plan (cat : Catalog.t) text : Ra.t =
  let q = parse_query text in
  List.iter
    (fun t -> if not (Catalog.mem cat t) then fail "unknown table %s" t)
    q.tables;
  (* split WHERE into join conditions and scan predicates *)
  let preds =
    match q.where with None -> [] | Some p -> conjuncts (to_rexpr cat p)
  in
  let is_join_pred = function
    | Rexpr.Eq (Rexpr.Col a, Rexpr.Col b) ->
        let ta = owner_among cat q.tables a and tb = owner_among cat q.tables b in
        (match ta, tb with
        | Some ta, Some tb when ta <> tb ->
            if is_dense_key cat tb b then Some (a, tb, b)
            else if is_dense_key cat ta a then Some (b, ta, a)
            else None
        | _ -> None)
    | _ -> None
  in
  let joins = List.filter_map is_join_pred preds in
  let rest = List.filter (fun p -> is_join_pred p = None) preds in
  (* fact table: the FROM table that is never a join dimension *)
  let dims = List.map (fun (_, t, _) -> t) joins in
  let fact =
    match List.filter (fun t -> not (List.mem t dims)) q.tables with
    | [ f ] -> f
    | [] -> List.hd q.tables
    | f :: _ -> f
  in
  if List.length joins + 1 < List.length q.tables then
    fail "FROM lists tables without recognizable join conditions";
  (* order joins so each fk is available when joined (fact first, then
     transitively through already-joined dims) *)
  let plan = ref (Ra.scan fact) in
  let available = ref [ fact ] in
  let pending = ref joins in
  let progress = ref true in
  while !pending <> [] && !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun (fk, dim, pk) ->
        let fk_table = owner_among cat !available fk in
        if fk_table <> None then begin
          plan := Ra.fk_join !plan ~fk (Ra.scan dim) ~pk;
          available := dim :: !available;
          progress := true
        end
        else still := (fk, dim, pk) :: !still)
      !pending;
    pending := !still
  done;
  if !pending <> [] then fail "could not order the joins";
  let plan =
    match rest with
    | [] -> !plan
    | p :: ps -> Ra.select !plan (List.fold_left (fun a b -> Rexpr.And (a, b)) p ps)
  in
  (* aggregation *)
  let aggs =
    List.filter_map
      (fun it ->
        match it.kind with
        | `Agg (kind, e) -> Some (Ra.agg ~name:it.alias kind e)
        | `Plain _ -> None)
      q.items
  in
  let plains =
    List.filter_map
      (fun it -> match it.kind with `Plain (Rexpr.Col c) -> Some c | _ -> None)
      q.items
  in
  if aggs = [] then fail "the query must aggregate (plain SELECT is not supported)";
  List.iter
    (fun c ->
      if not (List.mem c q.group_by) then
        fail "selected column %s is not in GROUP BY" c)
    plains;
  Ra.group_by plan q.group_by aggs
