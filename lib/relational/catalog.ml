(** The database catalog: tables, their device vectors, and the statistics
    the lowering exploits (min/max per column, dense primary keys).

    The paper's frontend "aggressively exploit[s] available metadata (min,
    max, FK-constraints) which, in many cases, allows us to bypass
    operations such as hashing or collision management". *)

open Voodoo_core

type table_info = {
  table : Table.t;
  stats : (string * (int * int)) list;  (** per int-like column: (min, max) *)
}

type t = {
  mutable tables : (string * table_info) list;
  store : Store.t;  (** device-resident column images *)
}

let create () = { tables = []; store = Store.create () }

(** [add_table t table] registers and loads [table] onto the device. *)
let add_table t (table : Table.t) =
  let stats =
    List.filter_map
      (fun (c : Table.column) ->
        match c.ctype with
        | TInt | TDate | TStr -> Some (c.name, Table.int_stats c)
        | TFloat -> None)
      table.columns
  in
  t.tables <- (table.name, { table; stats }) :: t.tables;
  Store.add t.store table.name (Table.to_svector table)

let table t name =
  match List.assoc_opt name t.tables with
  | Some info -> info.table
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %S" name)

let table_info t name =
  match List.assoc_opt name t.tables with
  | Some info -> info
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %S" name)

let mem t name = List.mem_assoc name t.tables

(** [stats t table col] is the (min, max) of an integer-like column. *)
let stats t tname col =
  let info = table_info t tname in
  match List.assoc_opt col info.stats with
  | Some s -> s
  | None ->
      invalid_arg (Printf.sprintf "Catalog: no stats for %s.%s" tname col)

(** Find which registered table owns column [col] (TPC-H column names are
    globally unique thanks to their prefixes). *)
let owner t col =
  let rec go = function
    | [] -> None
    | (name, info) :: rest ->
        if Table.mem_column info.table col then Some name else go rest
  in
  go (List.rev t.tables)

let owner_exn t col =
  match owner t col with
  | Some name -> name
  | None -> invalid_arg (Printf.sprintf "Catalog: no table owns column %S" col)
