(** Scalar expressions over table columns, used by both the reference
    evaluator (row-at-a-time) and the Voodoo lowering (vector-at-a-time).
    String literals resolve against the compared column's dictionary; date
    literals become day numbers. *)

open Voodoo_vector

type t =
  | Col of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Date_lit of string  (** "YYYY-MM-DD" *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Gt of t * t
  | Ge of t * t
  | Lt of t * t
  | Le of t * t
  | Eq of t * t
  | Ne of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Between of t * t * t  (** [Between (x, lo, hi)], inclusive *)
  | In_list of t * t list

(** Column names an expression reads (with repetition). *)
val columns : t -> string list

(** Resolve [Str_lit]/[Date_lit] leaves to integer codes/day numbers;
    [encode col s] gives the dictionary code of [s] in [col].  Strings
    absent from a dictionary become code [-1] (never satisfied). *)
val resolve : encode:(string -> string -> int option) -> t -> t

(** Row-at-a-time evaluation (reference executor).  [row col] yields the
    column's value for the current row ([None] = NULL/ε).  Expressions
    must be {!resolve}d first. *)
val eval : row:(string -> Scalar.t option) -> t -> Scalar.t option

(** Convenience constructors and infix operators. *)

val col : string -> t
val i : int -> t
val f : float -> t
val str : string -> t
val date : string -> t
val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t
val ( >: ) : t -> t -> t
val ( >=: ) : t -> t -> t
val ( <: ) : t -> t -> t
val ( <=: ) : t -> t -> t
val ( =: ) : t -> t -> t
val ( <>: ) : t -> t -> t
val ( &&: ) : t -> t -> t
val ( ||: ) : t -> t -> t
