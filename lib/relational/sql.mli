(** A SQL frontend for the subset the evaluation workload needs — the
    stand-in for MonetDB's SQL-to-relational-algebra compiler (paper
    Section 4).

    Supported: [SELECT] items (expressions and SUM/MIN/MAX/COUNT/AVG
    aggregates, COUNT star, [AS] aliases), multi-table [FROM] with
    equality join conditions in [WHERE] (planned as positional joins when
    the catalog shows a dense key), scan predicates with
    [AND]/[OR]/[NOT]/[BETWEEN]/[IN]/[LIKE] (prefix, substring and exact
    patterns resolve against the column dictionary), numeric, string and
    [DATE 'YYYY-MM-DD'] literals, and [GROUP BY].  The query must
    aggregate. *)

exception Sql_error of string

(** [plan cat text] parses and plans a query against the catalog.
    Raises {!Sql_error}. *)
val plan : Catalog.t -> string -> Ra.t
