(** Trusted naive evaluator for relational plans.

    Row-at-a-time, hash-based, no Voodoo involved: this is the independent
    implementation the test suite checks both Voodoo backends' query
    results against. *)

open Voodoo_vector

type frame = {
  n : int;
  cols : (string * (int -> Scalar.t option)) list;
}

let getter frame name =
  match List.assoc_opt name frame.cols with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Reference: unknown column %S" name)

let row_of frame i name = getter frame name i

let resolve_expr cat e =
  Rexpr.resolve
    ~encode:(fun colname s ->
      let tname = Catalog.owner_exn cat colname in
      Table.encode (Table.column (Catalog.table cat tname) colname) s)
    e

let rec eval_frame (cat : Catalog.t) (plan : Ra.t) : frame =
  match plan with
  | Scan tname ->
      let table = Catalog.table cat tname in
      {
        n = table.nrows;
        cols =
          List.map
            (fun (c : Table.column) -> (c.name, fun i -> Column.get c.data i))
            table.columns;
      }
  | Select (p, e) ->
      let f = eval_frame cat p in
      let e = resolve_expr cat e in
      let keep = ref [] in
      for i = f.n - 1 downto 0 do
        match Rexpr.eval ~row:(row_of f i) e with
        | Some v when Scalar.truthy v -> keep := i :: !keep
        | _ -> ()
      done;
      let idx = Array.of_list !keep in
      {
        n = Array.length idx;
        cols = List.map (fun (name, g) -> (name, fun i -> g idx.(i))) f.cols;
      }
  | Map (p, defs) ->
      let f = eval_frame cat p in
      let extra =
        List.map
          (fun (name, e) ->
            let e = resolve_expr cat e in
            (name, fun i -> Rexpr.eval ~row:(row_of f i) e))
          defs
      in
      { f with cols = f.cols @ extra }
  | FkJoin _ | LookupJoin _ ->
      let fact, fkey_of, dim, dkey_of =
        match plan with
        | FkJoin { fact; fk; dim; pk } ->
            ( fact,
              (fun ff -> getter ff fk),
              dim,
              fun df -> getter df pk )
        | LookupJoin { fact; fact_key; dim; dim_key; _ } ->
            let fk = resolve_expr cat fact_key and dk = resolve_expr cat dim_key in
            ( fact,
              (fun ff i -> Rexpr.eval ~row:(row_of ff i) fk),
              dim,
              fun df j -> Rexpr.eval ~row:(row_of df j) dk )
        | _ -> assert false
      in
      let ff = eval_frame cat fact and df = eval_frame cat dim in
      let dkey = dkey_of df in
      let index = Hashtbl.create (max 16 df.n) in
      for j = 0 to df.n - 1 do
        match dkey j with
        | Some (Scalar.I k) -> if not (Hashtbl.mem index k) then Hashtbl.replace index k j
        | _ -> ()
      done;
      let fkey = fkey_of ff in
      let mapping =
        Array.init ff.n (fun i ->
            match fkey i with
            | Some v -> Hashtbl.find_opt index (Scalar.to_int v)
            | None -> None)
      in
      let dim_cols =
        List.filter_map
          (fun (name, g) ->
            if List.mem_assoc name ff.cols then None
            else
              Some
                ( name,
                  fun i ->
                    match mapping.(i) with Some j -> g j | None -> None ))
          df.cols
      in
      { ff with cols = ff.cols @ dim_cols }
  | SemiJoin { fact; key; dim; dim_key } | AntiJoin { fact; key; dim; dim_key }
    ->
      let anti = match plan with AntiJoin _ -> true | _ -> false in
      let ff = eval_frame cat fact and df = eval_frame cat dim in
      let dkey = getter df dim_key in
      let members = Hashtbl.create (max 16 df.n) in
      for j = 0 to df.n - 1 do
        match dkey j with
        | Some v -> Hashtbl.replace members (Scalar.to_int v) ()
        | None -> ()
      done;
      let fkey = getter ff key in
      let keep = ref [] in
      for i = ff.n - 1 downto 0 do
        let in_set =
          match fkey i with
          | Some v -> Hashtbl.mem members (Scalar.to_int v)
          | None -> false
        in
        if in_set <> anti then keep := i :: !keep
      done;
      let idx = Array.of_list !keep in
      {
        n = Array.length idx;
        cols = List.map (fun (name, g) -> (name, fun i -> g idx.(i))) ff.cols;
      }
  | GroupAgg { input; keys; aggs } ->
      let f = eval_frame cat input in
      let key_getters = List.map (getter f) keys in
      let aggs =
        List.map (fun (a : Ra.agg) -> (a, resolve_expr cat a.expr)) aggs
      in
      let groups : (int list, (Scalar.t option * int) array) Hashtbl.t =
        Hashtbl.create 64
      in
      let order = ref [] in
      for i = 0 to f.n - 1 do
        let key =
          List.map
            (fun g -> match g i with Some v -> Scalar.to_int v | None -> min_int)
            key_getters
        in
        let states =
          match Hashtbl.find_opt groups key with
          | Some s -> s
          | None ->
              let s = Array.make (List.length aggs) (None, 0) in
              Hashtbl.replace groups key s;
              order := key :: !order;
              s
        in
        List.iteri
          (fun ai ((a : Ra.agg), e) ->
            match Rexpr.eval ~row:(row_of f i) e with
            | None -> ()
            | Some v ->
                let acc, cnt = states.(ai) in
                let acc' =
                  match acc, a.kind with
                  | None, Ra.Count -> Some (Scalar.I 1)
                  | None, _ -> Some v
                  | Some cur, (Ra.Sum | Ra.Avg) -> Some (Scalar.add cur v)
                  | Some cur, Ra.Min -> Some (Scalar.min_s cur v)
                  | Some cur, Ra.Max -> Some (Scalar.max_s cur v)
                  | Some cur, Ra.Count -> Some (Scalar.add cur (Scalar.I 1))
                in
                states.(ai) <- (acc', cnt + 1))
          aggs
      done;
      let rows = List.rev !order in
      let n = List.length rows in
      let rows_arr = Array.of_list rows in
      let key_cols =
        List.mapi
          (fun ki name ->
            ( name,
              fun i ->
                let v = List.nth rows_arr.(i) ki in
                if v = min_int then None else Some (Scalar.I v) ))
          keys
      in
      let agg_cols =
        List.mapi
          (fun ai ((a : Ra.agg), _) ->
            ( a.name,
              fun i ->
                let states = Hashtbl.find groups rows_arr.(i) in
                let acc, cnt = states.(ai) in
                match a.kind, acc with
                | Ra.Avg, Some s when cnt > 0 ->
                    Some (Scalar.F (Scalar.to_float s /. float_of_int cnt))
                | (Ra.Sum | Ra.Count), None -> Some (Scalar.I 0)
                | _, acc -> acc ))
          aggs
      in
      { n; cols = key_cols @ agg_cols }

type row = (string * Scalar.t option) list

(** [run cat plan] evaluates to a list of rows (column name → value). *)
let run (cat : Catalog.t) (plan : Ra.t) : row list =
  let f = eval_frame cat plan in
  List.init f.n (fun i -> List.map (fun (name, g) -> (name, g i)) f.cols)

(** Canonical comparison form: keep only the named columns, sort rows. *)
let project_rows columns rows =
  List.map (fun r -> List.map (fun c -> (c, List.assoc c r)) columns) rows

let sort_rows rows =
  let cmp_val a b =
    match a, b with
    | None, None -> 0
    | None, Some _ -> -1
    | Some _, None -> 1
    | Some x, Some y -> Scalar.compare_scalar x y
  in
  let cmp_row r1 r2 =
    let rec go = function
      | [], [] -> 0
      | (_, a) :: r1, (_, b) :: r2 ->
          let c = cmp_val a b in
          if c <> 0 then c else go (r1, r2)
      | _ -> 0
    in
    go (r1, r2)
  in
  List.sort cmp_row rows

(** Approximate row-set equality (floats compared with relative
    tolerance). *)
let rows_equal ?(tol = 1e-6) rows1 rows2 =
  let val_eq a b =
    match a, b with
    | None, None -> true
    | Some (Scalar.I x), Some (Scalar.I y) -> x = y
    | Some x, Some y ->
        let x = Scalar.to_float x and y = Scalar.to_float y in
        Float.abs (x -. y) <= tol *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
    | _ -> false
  in
  List.length rows1 = List.length rows2
  && List.for_all2
       (fun r1 r2 ->
         List.length r1 = List.length r2
         && List.for_all2 (fun (_, a) (_, b) -> val_eq a b) r1 r2)
       (sort_rows rows1) (sort_rows rows2)
