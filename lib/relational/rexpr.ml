(** Scalar expressions over table columns.

    Used both by the reference evaluator (row-at-a-time, {!eval}) and by
    the Voodoo lowering (vector-at-a-time, {!Lower}).  String literals are
    resolved against the owning column's dictionary; date literals become
    day numbers. *)

open Voodoo_vector

type t =
  | Col of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string  (** resolved against the compared column's dictionary *)
  | Date_lit of string  (** "YYYY-MM-DD" *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Gt of t * t
  | Ge of t * t
  | Lt of t * t
  | Le of t * t
  | Eq of t * t
  | Ne of t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Between of t * t * t  (** [Between (x, lo, hi)], inclusive *)
  | In_list of t * t list

let rec columns = function
  | Col c -> [ c ]
  | Int_lit _ | Float_lit _ | Str_lit _ | Date_lit _ -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b)
  | Gt (a, b) | Ge (a, b) | Lt (a, b) | Le (a, b) | Eq (a, b) | Ne (a, b)
  | And (a, b) | Or (a, b) ->
      columns a @ columns b
  | Not a -> columns a
  | Between (a, b, c) -> columns a @ columns b @ columns c
  | In_list (a, xs) -> columns a @ List.concat_map columns xs

(* The column an expression compares against, used to resolve string
   literals to dictionary codes. *)
let rec principal_column = function
  | Col c -> Some c
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> (
      match principal_column a with Some c -> Some c | None -> principal_column b)
  | _ -> None

(** Resolve [Str_lit]/[Date_lit] leaves to integer codes/day numbers, given
    a lookup from column name to its dictionary encoder.  Unresolvable
    string literals (value absent from the dictionary) become a code of -1,
    which no row carries — the predicate is simply never satisfied. *)
let rec resolve ~(encode : string -> string -> int option) e =
  let r = resolve ~encode in
  let resolve_against col lit =
    match lit with
    | Str_lit s -> (
        match col with
        | Some c -> (
            match encode c s with Some code -> Int_lit code | None -> Int_lit (-1))
        | None -> invalid_arg (Printf.sprintf "cannot resolve string literal %S" s))
    | Date_lit d -> Int_lit (Table.date_of_string d)
    | other -> r other
  in
  let rcmp rebuild a b =
    let col = match principal_column a with Some c -> Some c | None -> principal_column b in
    rebuild (resolve_against col a) (resolve_against col b)
  in
  match e with
  | Col _ | Int_lit _ | Float_lit _ -> e
  | Str_lit s -> invalid_arg (Printf.sprintf "free-standing string literal %S" s)
  | Date_lit d -> Int_lit (Table.date_of_string d)
  | Add (a, b) -> Add (r a, r b)
  | Sub (a, b) -> Sub (r a, r b)
  | Mul (a, b) -> Mul (r a, r b)
  | Div (a, b) -> Div (r a, r b)
  | Gt (a, b) -> rcmp (fun a b -> Gt (a, b)) a b
  | Ge (a, b) -> rcmp (fun a b -> Ge (a, b)) a b
  | Lt (a, b) -> rcmp (fun a b -> Lt (a, b)) a b
  | Le (a, b) -> rcmp (fun a b -> Le (a, b)) a b
  | Eq (a, b) -> rcmp (fun a b -> Eq (a, b)) a b
  | Ne (a, b) -> rcmp (fun a b -> Ne (a, b)) a b
  | And (a, b) -> And (r a, r b)
  | Or (a, b) -> Or (r a, r b)
  | Not a -> Not (r a)
  | Between (a, lo, hi) ->
      let col = principal_column a in
      Between (r a, resolve_against col lo, resolve_against col hi)
  | In_list (a, xs) ->
      let col = principal_column a in
      In_list (r a, List.map (fun x -> resolve_against col x) xs)

(** Row-at-a-time evaluation for the reference executor.  [row col] yields
    the column's value for the current row ([None] = SQL NULL / ε).
    Expressions must be {!resolve}d first. *)
let rec eval ~(row : string -> Scalar.t option) (e : t) : Scalar.t option =
  let bin f a b =
    match eval ~row a, eval ~row b with
    | Some x, Some y -> Some (f x y)
    | _ -> None
  in
  match e with
  | Col c -> row c
  | Int_lit i -> Some (Scalar.I i)
  | Float_lit f -> Some (Scalar.F f)
  | Str_lit s -> invalid_arg (Printf.sprintf "unresolved string literal %S" s)
  | Date_lit d -> Some (Scalar.I (Table.date_of_string d))
  | Add (a, b) -> bin Scalar.add a b
  | Sub (a, b) -> bin Scalar.sub a b
  | Mul (a, b) -> bin Scalar.mul a b
  | Div (a, b) -> bin Scalar.div a b
  | Gt (a, b) -> bin Scalar.greater a b
  | Ge (a, b) -> bin Scalar.greater_equal a b
  | Lt (a, b) -> bin (fun x y -> Scalar.greater y x) a b
  | Le (a, b) -> bin (fun x y -> Scalar.greater_equal y x) a b
  | Eq (a, b) -> bin Scalar.equals a b
  | Ne (a, b) -> bin (fun x y -> Scalar.of_bool (not (Scalar.truthy (Scalar.equals x y)))) a b
  | And (a, b) -> bin Scalar.logical_and a b
  | Or (a, b) -> bin Scalar.logical_or a b
  | Not a ->
      Option.map (fun v -> Scalar.of_bool (not (Scalar.truthy v))) (eval ~row a)
  | Between (a, lo, hi) ->
      eval ~row (And (Ge (a, lo), Le (a, hi)))
  | In_list (a, xs) ->
      List.fold_left
        (fun acc x ->
          match acc, eval ~row (Eq (a, x)) with
          | Some acc, Some v -> Some (Scalar.logical_or acc v)
          | _ -> None)
        (Some (Scalar.I 0)) xs

(* convenience constructors *)
let col c = Col c
let i n = Int_lit n
let f x = Float_lit x
let str s = Str_lit s
let date d = Date_lit d
let ( +: ) a b = Add (a, b)
let ( -: ) a b = Sub (a, b)
let ( *: ) a b = Mul (a, b)
let ( /: ) a b = Div (a, b)
let ( >: ) a b = Gt (a, b)
let ( >=: ) a b = Ge (a, b)
let ( <: ) a b = Lt (a, b)
let ( <=: ) a b = Le (a, b)
let ( =: ) a b = Eq (a, b)
let ( <>: ) a b = Ne (a, b)
let ( &&: ) a b = And (a, b)
let ( ||: ) a b = Or (a, b)
