(** Relational tables and their device representation.

    A table is a set of same-length columns.  On the device (the
    {!Voodoo_core.Store}) a table is one structured vector whose attributes
    are the columns — binary column-wise storage, with strings dictionary
    encoded, exactly the MonetDB format the paper loads from.

    Column types: integers, floats, dates (stored as day numbers since
    1970-01-01) and strings (stored as dictionary codes). *)

open Voodoo_vector

type coltype = TInt | TFloat | TDate | TStr

type column = {
  name : string;
  ctype : coltype;
  data : Column.t;  (** device representation: Int (codes/days) or Float *)
  dict : string array option;  (** decode table for TStr columns *)
}

type t = { name : string; nrows : int; columns : column list }

let dtype_of_coltype = function
  | TInt | TDate | TStr -> Scalar.Int
  | TFloat -> Scalar.Float

let column t name =
  match List.find_opt (fun (c : column) -> String.equal c.name name) t.columns with
  | Some c -> c
  | None ->
      invalid_arg (Printf.sprintf "Table %s: no column %s" t.name name)

let mem_column t name =
  List.exists (fun (c : column) -> String.equal c.name name) t.columns

let make ~name columns =
  match columns with
  | [] -> invalid_arg (Printf.sprintf "Table.make: table %s has no columns" name)
  | (c0 : column) :: _ ->
      let nrows = Column.length c0.data in
      List.iter
        (fun (c : column) ->
          if Column.length c.data <> nrows then
            invalid_arg
              (Printf.sprintf
                 "Table.make: column %s.%s length mismatch (%d, expected %d)"
                 name c.name (Column.length c.data) nrows))
        columns;
      { name; nrows; columns }

let int_column ~name xs = { name; ctype = TInt; data = Column.of_int_array xs; dict = None }

let float_column ~name xs =
  { name; ctype = TFloat; data = Column.of_float_array xs; dict = None }

let date_column ~name xs =
  { name; ctype = TDate; data = Column.of_int_array xs; dict = None }

(** Dictionary-encode a string column (codes ordered by first occurrence). *)
let str_column ~name xs =
  let tbl = Hashtbl.create 16 in
  let rev = ref [] in
  let next = ref 0 in
  let codes =
    Array.map
      (fun s ->
        match Hashtbl.find_opt tbl s with
        | Some c -> c
        | None ->
            let c = !next in
            Hashtbl.replace tbl s c;
            rev := s :: !rev;
            incr next;
            c)
      xs
  in
  {
    name;
    ctype = TStr;
    data = Column.of_int_array codes;
    dict = Some (Array.of_list (List.rev !rev));
  }

(** Dictionary code of [s] in column [c] ([None] when the string never
    occurs — a selection on it is unsatisfiable). *)
let encode c s =
  match c.dict with
  | None -> invalid_arg (Printf.sprintf "column %s is not a string column" c.name)
  | Some dict ->
      let rec go i =
        if i >= Array.length dict then None
        else if String.equal dict.(i) s then Some i
        else go (i + 1)
      in
      go 0

let decode c code =
  match c.dict with
  | Some dict when code >= 0 && code < Array.length dict -> dict.(code)
  | _ -> invalid_arg (Printf.sprintf "bad dictionary code %d for %s" code c.name)

(** Min/max of an integer-representable column: the metadata the lowering
    exploits for identity hashing and positional joins. *)
let int_stats c =
  let n = Column.length c.data in
  let mn = ref max_int and mx = ref min_int in
  for i = 0 to n - 1 do
    match Column.get c.data i with
    | Some v ->
        let v = Scalar.to_int v in
        if v < !mn then mn := v;
        if v > !mx then mx := v
    | None -> ()
  done;
  if !mn > !mx then (0, 0) else (!mn, !mx)

(** The device image: one structured vector, one attribute per column. *)
let to_svector t =
  Svector.of_columns
    (List.map (fun (c : column) -> ([ c.name ], c.data)) t.columns)

(** Days since 1970-01-01 for a ["YYYY-MM-DD"] literal (proleptic
    Gregorian). *)
let date_of_string s =
  (* int_of_string would raise a bare [Failure]; keep the error typed and
     name the offending literal *)
  let part p =
    match int_of_string_opt p with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "bad date literal %S" s)
  in
  match String.split_on_char '-' s with
  | [ y; m; d ] ->
      let y = part y and m = part m and d = part d in
      (* days from civil algorithm (Howard Hinnant) *)
      let y = if m <= 2 then y - 1 else y in
      let era = (if y >= 0 then y else y - 399) / 400 in
      let yoe = y - (era * 400) in
      let mp = (m + 9) mod 12 in
      let doy = ((153 * mp) + 2) / 5 + d - 1 in
      let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
      (era * 146097) + doe - 719468
  | _ -> invalid_arg (Printf.sprintf "bad date literal %S" s)

let string_of_date days =
  let z = days + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  Printf.sprintf "%04d-%02d-%02d" y m d
