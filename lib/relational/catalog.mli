(** The database catalog: tables, their device vectors, and the statistics
    the lowering exploits (per-column min/max over integer-like columns).
    The paper's frontend "aggressively exploits available metadata (min,
    max, FK-constraints)" to bypass hashing and collision management. *)

open Voodoo_core

type table_info = {
  table : Table.t;
  stats : (string * (int * int)) list;  (** per int-like column: (min, max) *)
}

type t = {
  mutable tables : (string * table_info) list;
  store : Store.t;  (** device-resident column images *)
}

val create : unit -> t

(** [add_table t table] registers and loads [table] onto the device. *)
val add_table : t -> Table.t -> unit

(** Raise [Invalid_argument] for unknown tables/columns. *)

val table : t -> string -> Table.t
val table_info : t -> string -> table_info
val mem : t -> string -> bool

(** [stats t table col] is the (min, max) of an integer-like column. *)
val stats : t -> string -> string -> int * int

(** Which registered table owns column [col] (TPC-H names are globally
    unique thanks to their prefixes). *)
val owner : t -> string -> string option

val owner_exn : t -> string -> string
