(** The reference interpreter backend (paper Section 3.2).

    A classic bulk processor: every statement evaluates to a fully
    materialized {!Voodoo_vector.Svector.t}, which makes all intermediates
    inspectable.  It is the executable specification of the algebra against
    which the compiling backend is property-tested; it is not built for
    speed. *)

open Voodoo_vector
open Voodoo_core

type env = (Op.id, Svector.t) Hashtbl.t

exception Runtime_error of string

(** [run ?trace ?budget store p] evaluates the whole program; the
    returned environment holds every intermediate.  Raises
    {!Runtime_error}; a {!Voodoo_core.Budget.t} caps evaluation steps and
    materialized bytes ({!Voodoo_core.Budget.Exceeded} aborts the run),
    and the global {!Voodoo_core.Fault} injector, when armed, is
    consulted at every statement.  With a {!Voodoo_core.Trace.t}, each
    statement evaluates inside a ["stmt:<id>"] span counting ["steps"]
    and ["bytes.materialized"]. *)
val run : ?trace:Trace.t -> ?budget:Budget.t -> Store.t -> Program.t -> env

(** [eval store p id] evaluates only what [id] needs and returns it. *)
val eval : Store.t -> Program.t -> Op.id -> Svector.t
