(** The reference interpreter backend (paper Section 3.2).

    A classic bulk processor: every statement evaluates to a fully
    materialized {!Voodoo_vector.Svector.t}, which makes all intermediates
    inspectable.  It is deliberately simple — the executable specification
    of the algebra against which the compiling backend is property-tested —
    and is not built for speed. *)

open Voodoo_vector
open Voodoo_core

type env = (Op.id, Svector.t) Hashtbl.t

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let lookup (env : env) v =
  match Hashtbl.find_opt env v with
  | Some x -> x
  | None -> err "unbound vector %s" v

(* Resolve a builder-defaulted (root) keypath to the unique leaf column. *)
let leaf vec (kp : Keypath.t) =
  let schema = Svector.schema vec in
  match List.assoc_opt kp schema with
  | Some _ -> kp
  | None -> (
      match List.filter (fun (kp', _) -> Keypath.is_prefix kp kp') schema with
      | [ (leaf, _) ] -> leaf
      | [] -> err "no attribute %s" (Keypath.to_string kp)
      | _ -> err "ambiguous attribute %s" (Keypath.to_string kp))

let leaf_column vec kp = Svector.column vec (leaf vec kp)

let src_column env (s : Op.src) =
  let vec = lookup env s.v in
  (vec, leaf_column vec s.kp)

(** Maximal runs of equal adjacent values of [fold] (or one single run when
    [fold] is [None]): list of (start, length). *)
let runs_of_fold vec (fold : Keypath.t option) =
  let n = Svector.length vec in
  match fold with
  | None -> [ (0, n) ]
  | Some kp ->
      let col = leaf_column vec kp in
      let rec go start i acc =
        if i >= n then List.rev ((start, n - start) :: acc)
        else if Column.get col i <> Column.get col (i - 1) then
          go i (i + 1) ((start, i - start) :: acc)
        else go start (i + 1) acc
      in
      if n = 0 then [] else go 0 1 []

let broadcast_get col i =
  if Column.length col = 1 then Column.get col 0 else Column.get col i

let eval_binary op out (lvec, lcol) (rvec, rcol) =
  let ln = Svector.length lvec and rn = Svector.length rvec in
  let n =
    if ln = 1 then rn else if rn = 1 then ln else min ln rn
  in
  let dt =
    Op.binop_dtype op (Column.dtype lcol) (Column.dtype rcol)
  in
  let result = Column.create dt n in
  for i = 0 to n - 1 do
    match broadcast_get lcol i, broadcast_get rcol i with
    | Some a, Some b -> Column.set result i (Op.apply_binop op a b)
    | None, _ | _, None -> () (* ε propagates *)
  done;
  Svector.single out result

let eval_gather data (pvec, pcol) =
  let n = Svector.length pvec in
  let dn = Svector.length data in
  let fields =
    List.map
      (fun (kp, dt) ->
        let src = Svector.column data kp in
        let out = Column.create dt n in
        for i = 0 to n - 1 do
          match Column.get pcol i with
          | Some p ->
              let p = Scalar.to_int p in
              if p >= 0 && p < dn then begin
                match Column.get src p with
                | Some v -> Column.set out i v
                | None -> ()
              end
          | None -> ()
        done;
        (kp, out))
      (Svector.schema data)
  in
  Svector.of_columns fields

let eval_scatter data shape (pvec, pcol) =
  let out_n = Svector.length shape in
  let n = min (Svector.length data) (Svector.length pvec) in
  let fields =
    List.map
      (fun (kp, dt) ->
        let src = Svector.column data kp in
        let out = Column.create dt out_n in
        for i = 0 to n - 1 do
          match Column.get pcol i with
          | Some p ->
              let p = Scalar.to_int p in
              if p >= 0 && p < out_n then begin
                match Column.get src i with
                | Some v -> Column.set out p v
                | None -> Column.set_empty out p
              end
          | None -> ()
        done;
        (kp, out))
      (Svector.schema data)
  in
  Svector.of_columns fields

let eval_partition out (vvec, vcol) (_pvec, pcol) =
  let n = Svector.length vvec in
  let pivots =
    List.filter_map Fun.id (Column.to_scalars pcol)
    |> List.sort Scalar.compare_scalar
    |> Array.of_list
  in
  let npart = Array.length pivots + 1 in
  (* partition of v = number of pivots strictly less than v *)
  let part_of v =
    let rec bsearch lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Scalar.compare_scalar pivots.(mid) v < 0 then bsearch (mid + 1) hi
        else bsearch lo mid
    in
    bsearch 0 (Array.length pivots)
  in
  let parts =
    Array.init n (fun i ->
        match Column.get vcol i with
        | Some v -> part_of v
        | None -> npart - 1)
  in
  (* stable counting sort positions *)
  let counts = Array.make npart 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) parts;
  let base = Array.make npart 0 in
  for p = 1 to npart - 1 do
    base.(p) <- base.(p - 1) + counts.(p - 1)
  done;
  let cursor = Array.copy base in
  let result = Column.create Int n in
  for i = 0 to n - 1 do
    let p = parts.(i) in
    Column.set result i (Scalar.I cursor.(p));
    cursor.(p) <- cursor.(p) + 1
  done;
  Svector.single out result

let eval_fold_select out fold (vec, col) =
  let n = Svector.length vec in
  let result = Column.create Int n in
  List.iter
    (fun (start, len) ->
      let cursor = ref start in
      for i = start to start + len - 1 do
        match Column.get col i with
        | Some v when Scalar.truthy v ->
            Column.set result !cursor (Scalar.I i);
            incr cursor
        | Some _ | None -> ()
      done)
    (runs_of_fold vec fold);
  Svector.single out result

let eval_fold_agg agg out fold (vec, col) =
  let n = Svector.length vec in
  let dt : Scalar.dtype =
    match agg with Op.Count -> Int | Op.Sum | Op.Max | Op.Min -> Column.dtype col
  in
  let result = Column.create dt n in
  List.iter
    (fun (start, len) ->
      let acc = ref None in
      for i = start to start + len - 1 do
        match Column.get col i with
        | Some v ->
            let combine cur =
              match (agg : Op.agg) with
              | Sum -> Scalar.add cur v
              | Max -> Scalar.max_s cur v
              | Min -> Scalar.min_s cur v
              | Count -> Scalar.add cur (Scalar.I 1)
            in
            acc :=
              Some
                (match !acc with
                | None -> (
                    match agg with Count -> Scalar.I 1 | Sum | Max | Min -> v)
                | Some cur -> combine cur)
        | None -> ()
      done;
      match !acc, (agg : Op.agg) with
      | Some v, _ -> Column.set result start v
      | None, (Sum | Count) -> Column.set result start (Scalar.zero dt)
      | None, (Max | Min) -> () (* all-ε run keeps an ε result *))
    (runs_of_fold vec fold);
  Svector.single out result

let eval_fold_scan out fold (vec, col) =
  let n = Svector.length vec in
  let result = Column.create (Column.dtype col) n in
  List.iter
    (fun (start, len) ->
      let acc = ref (Scalar.zero (Column.dtype col)) in
      for i = start to start + len - 1 do
        (match Column.get col i with
        | Some v -> acc := Scalar.add !acc v
        | None -> ());
        Column.set result i !acc
      done)
    (runs_of_fold vec fold);
  Svector.single out result

let eval_op (store : Store.t) (env : env) (op : Op.t) : Svector.t =
  match op with
  | Load table -> Store.find_exn store table
  | Persist (name, v) ->
      let vec = lookup env v in
      Store.add store name vec;
      vec
  | Constant { out; value } ->
      let col = Column.create (Scalar.dtype_of value) 1 in
      Column.set col 0 value;
      let vec = Svector.single out col in
      Svector.with_ctrl vec out (Ctrl.constant (Scalar.to_int value))
  | Range { out; from; size; step } ->
      let n =
        match size with
        | Lit n -> n
        | Of_vector v -> Svector.length (lookup env v)
      in
      let ctrl = Ctrl.range ~from ~step in
      Svector.of_ctrl out ctrl n
  | Cross { out1; v1; out2; v2 } ->
      let n1 = Svector.length (lookup env v1) and n2 = Svector.length (lookup env v2) in
      let n = n1 * n2 in
      Svector.of_columns
        [
          (out1, Column.init Int n (fun i -> Scalar.I (i / n2)));
          (out2, Column.init Int n (fun i -> Scalar.I (i mod n2)));
        ]
  | Binary { op; out; left; right } ->
      eval_binary op out (src_column env left) (src_column env right)
  | Zip { out1; src1; out2; src2 } ->
      Svector.zip
        (out1, lookup env src1.v, src1.kp)
        (out2, lookup env src2.v, src2.kp)
  | Project { out; src } -> Svector.project ~out (lookup env src.v) src.kp
  | Upsert { target; out; src } ->
      let tvec = lookup env target in
      let svec = lookup env src.v in
      Svector.upsert tvec ~out svec (leaf svec src.kp)
  | Gather { data; positions } ->
      eval_gather (lookup env data) (src_column env positions)
  | Scatter { data; shape; positions; run = _ } ->
      (* The run attribute only constrains parallel write ordering; the
         sequential reference is already "in order". *)
      eval_scatter (lookup env data) (lookup env shape) (src_column env positions)
  | Materialize { data; _ } | Break { data; _ } ->
      (* Pure tuning hints: identity on values. *)
      lookup env data
  | Partition { out; values; pivots } ->
      eval_partition out (src_column env values) (src_column env pivots)
  | FoldSelect { out; fold; input } ->
      let vec, col = src_column env input in
      eval_fold_select out (Option.map (leaf vec) fold) (vec, col)
  | FoldAgg { agg; out; fold; input } ->
      let vec, col = src_column env input in
      eval_fold_agg agg out (Option.map (leaf vec) fold) (vec, col)
  | FoldScan { out; fold; input } ->
      let vec, col = src_column env input in
      eval_fold_scan out (Option.map (leaf vec) fold) (vec, col)

(* Statements whose result owns fresh columns: the only safe targets for
   injected corruption (aliases would mutate shared store vectors), and
   the ones charged against the vector-bytes budget. *)
let owns_fresh_columns (op : Op.t) =
  match op with
  | Constant _ | Range _ | Cross _ | Binary _ | Gather _ | Scatter _
  | Partition _ | FoldSelect _ | FoldAgg _ | FoldScan _ ->
      true
  | Load _ | Persist _ | Zip _ | Project _ | Upsert _ | Materialize _ | Break _
    ->
      false

(** [run ?budget store p] evaluates the whole program; the returned
    environment holds every intermediate (the interpreter's raison
    d'être).  The optional {!Voodoo_core.Budget.t} caps evaluation steps
    (element slots produced) and materialized vector bytes; the global
    {!Voodoo_core.Fault} injector, when armed, is consulted at every
    statement. *)
let run ?trace ?(budget = Budget.unlimited) (store : Store.t) (p : Program.t)
    : env =
  Program.validate p;
  let tr = Budget.tracker budget in
  let env : env = Hashtbl.create 16 in
  List.iter
    (fun (s : Program.stmt) ->
      Trace.with_span trace ("stmt:" ^ s.id) (fun () ->
          Fault.step_started ();
          Budget.check_time tr;
          let v =
            try eval_op store env s.op with
            | Runtime_error m -> err "in %s: %s" s.id m
            | Invalid_argument m -> err "in %s: %s" s.id m
          in
          if owns_fresh_columns s.op then begin
            let steps = Svector.length v in
            let bytes = steps * List.length (Svector.keypaths v) * 4 in
            Trace.count trace "steps" (float_of_int steps);
            Trace.count trace "bytes.materialized" (float_of_int bytes);
            Budget.charge_steps tr steps;
            Budget.charge_bytes tr bytes;
            match Fault.corrupt_step_now () with
            | Some seed -> Fault.corrupt ~seed v
            | None -> ()
          end;
          Hashtbl.replace env s.id v))
    (Program.stmts p);
  env

(** [eval store p id] evaluates only what [id] needs and returns it. *)
let eval store p id =
  let env = run store (Program.slice p id) in
  lookup env id
