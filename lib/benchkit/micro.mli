(** Voodoo implementations of the micro-benchmarks (Figures 1, 14, 15,
    16), built directly against the algebra — the same handful-of-lines
    programs the paper shows, compiled and executed by the compiling
    backend.  Each returns the computed scalar (cross-checked against
    {!Handcoded}) and the executed kernels for the cost model. *)

open Voodoo_core

type run = { result : float; kernels : (int * Voodoo_device.Events.t) list }

(** The control-vector run length used by all programs. *)
val grain : int

(** Selection variants (Figures 1 and 15). *)

val select_branching : store:Store.t -> cut:float -> run
val select_branch_free : store:Store.t -> cut:float -> run
val select_predicated : store:Store.t -> cut:float -> run
val select_vectorized : store:Store.t -> cut:float -> run

(** Layout variants (Figure 14). *)

val layout_single_loop : store:Store.t -> run
val layout_separate_loops : store:Store.t -> run
val layout_transform : store:Store.t -> run

(** FK-join variants (Figure 16). *)

val fkjoin_branching : store:Store.t -> cut:float -> run
val fkjoin_predicated_agg : store:Store.t -> cut:float -> run
val fkjoin_predicated_lookup : store:Store.t -> cut:float -> run

(** Store builders for the workloads above. *)

val selection_store : float array -> Store.t

val layout_store :
  positions:int array -> c1:float array -> c2:float array -> Store.t

val fkjoin_store :
  fact_v:float array -> fk:int array -> target:float array -> Store.t
