(** Voodoo implementations of the micro-benchmarks (Figures 1, 14, 15,
    16), built directly against the algebra — the same handful-of-lines
    programs the paper shows, compiled and executed by the compiling
    backend.  Each returns the computed scalar (cross-checked against
    {!Handcoded}) and the executed kernels for the cost model. *)

open Voodoo_core

type run = { result : float; kernels : (int * Voodoo_device.Events.t) list }

(** The control-vector run length used by all programs. *)
val grain : int

(** Every runner threads an optional {!Voodoo_core.Trace.t} through
    compile and execute, so BENCH harnesses get per-stage and
    per-fragment breakdowns of the micro-benchmarks too. *)

(** Selection variants (Figures 1 and 15). *)

val select_branching :
  ?trace:Trace.t -> store:Store.t -> cut:float -> unit -> run
val select_branch_free :
  ?trace:Trace.t -> store:Store.t -> cut:float -> unit -> run
val select_predicated :
  ?trace:Trace.t -> store:Store.t -> cut:float -> unit -> run
val select_vectorized :
  ?trace:Trace.t -> store:Store.t -> cut:float -> unit -> run

(** Layout variants (Figure 14). *)

val layout_single_loop : ?trace:Trace.t -> store:Store.t -> unit -> run
val layout_separate_loops : ?trace:Trace.t -> store:Store.t -> unit -> run
val layout_transform : ?trace:Trace.t -> store:Store.t -> unit -> run

(** FK-join variants (Figure 16). *)

val fkjoin_branching :
  ?trace:Trace.t -> store:Store.t -> cut:float -> unit -> run
val fkjoin_predicated_agg :
  ?trace:Trace.t -> store:Store.t -> cut:float -> unit -> run
val fkjoin_predicated_lookup :
  ?trace:Trace.t -> store:Store.t -> cut:float -> unit -> run

(** Fold partitioning: hierarchical integer sum under an explicit grain
    (default {!grain}) — the partition-count tunable in isolation. *)
val fold_partition_sum :
  ?trace:Trace.t -> ?grain:int -> store:Store.t -> unit -> run

(** Grouped aggregation (Figures 10/11): partition → scatter → per-group
    fold, exactly the relational GROUP BY chain, over [groups] partitions
    (default 64).  The scalar result is the sum over the per-group
    aggregates. *)
val group_fold :
  ?trace:Trace.t -> ?groups:int -> ?agg:Op.agg -> store:Store.t -> unit -> run

(** {2 Program builders}

    The same variants as (program, total-statement id) pairs, for
    harnesses that compile and execute the programs themselves — the
    tuner searches rewrites of exactly these. *)

val select_branching_program : cut:float -> unit -> Program.t * Op.id
val select_branch_free_program : cut:float -> unit -> Program.t * Op.id
val select_predicated_program : cut:float -> unit -> Program.t * Op.id
val select_vectorized_program : cut:float -> unit -> Program.t * Op.id
val layout_single_loop_program : unit -> Program.t * Op.id
val layout_separate_loops_program : unit -> Program.t * Op.id
val layout_transform_program : unit -> Program.t * Op.id
val fold_partition_program : ?grain:int -> unit -> Program.t * Op.id
val group_fold_program : ?groups:int -> ?agg:Op.agg -> unit -> Program.t * Op.id
val fkjoin_branching_program : cut:float -> unit -> Program.t * Op.id
val fkjoin_predicated_agg_program : cut:float -> unit -> Program.t * Op.id
val fkjoin_predicated_lookup_program : cut:float -> unit -> Program.t * Op.id

(** Store builders for the workloads above. *)

val selection_store : float array -> Store.t

(** Single integer column named ["values"] for the fold-partitioning
    family. *)
val fold_store : int array -> Store.t

(** Rows vector ["rows"]: int group ids ["g"] in [0, groups) and float
    values ["v"], for the grouped-aggregation family. *)
val group_store : gids:int array -> values:float array -> Store.t

val layout_store :
  positions:int array -> c1:float array -> c2:float array -> Store.t

val fkjoin_store :
  fact_v:float array -> fk:int array -> target:float array -> Store.t
