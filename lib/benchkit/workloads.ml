(** Synthetic workload data for the micro-benchmarks (Figures 1, 14, 15,
    16), generated deterministically.

    Execution happens at a reduced element count; the cost model scales the
    recorded events to the paper's data sizes (the lookup {e target} tables
    are allocated at full paper scale so that cache working sets are
    honest). *)

type rng = { mutable s : int }

let rng seed = { s = (seed * 0x9E3779B9) lor 1 }

let next r =
  let s = r.s in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  r.s <- s;
  s land max_int

let uniform_int r n = next r mod n

let uniform_float r = float_of_int (next r land 0xFFFFFF) /. 16777216.0

(** Selection input: [n] uniform floats in [0, 100). *)
let selection_input ~n ~seed =
  let r = rng seed in
  Array.init n (fun _ -> uniform_float r *. 100.0)

(** Positions for the layout experiment. *)
type access = Sequential | Random

let positions ~n ~target_rows ~access ~seed =
  let r = rng seed in
  Array.init n (fun i ->
      match access with
      | Sequential -> i mod target_rows
      | Random -> uniform_int r target_rows)

(** A two-column float target table. *)
let target_table ~rows ~seed =
  let r = rng seed in
  ( Array.init rows (fun _ -> uniform_float r),
    Array.init rows (fun _ -> uniform_float r) )

(** Fact table for the FK-join experiment: a selection column (uniform in
    [0,100)) and a foreign key into the target. *)
let fk_fact ~n ~target_rows ~seed =
  let r = rng seed in
  ( Array.init n (fun _ -> uniform_float r *. 100.0),
    Array.init n (fun _ -> uniform_int r target_rows) )
