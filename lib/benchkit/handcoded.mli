(** The "Implemented in C" sides of Figures 1, 14, 15 and 16.

    Each variant is the loop a C programmer would write, executed over the
    real data (branch-outcome streams and position patterns are authentic)
    while recording the hardware events the loop performs.  Each returns
    the computed result for cross-checking against the Voodoo
    implementations, plus the kernels for the cost model. *)

open Voodoo_device

type run = { result : float; kernels : (int * Events.t) list }

(** Selection (Figures 1 and 15): sum of values below [cut]. *)

(** [if (v[i] < cut) out[cursor++] = v[i]] — branches. *)
val select_branching : values:float array -> cut:float -> run

(** [out[cursor] = v[i]; cursor += (v[i] < cut)] — cursor arithmetic; every
    element is written (Figure 1's copy-out selection). *)
val select_branch_free : values:float array -> cut:float -> run

(** [sum += v[i] * (v[i] < cut)] — predicated aggregation (Figure 15's
    branch-free variant). *)
val select_predicated : values:float array -> cut:float -> run

(** Per cache-sized [chunk]: a branch-free position-list pass, then a
    gathering pass over the list. *)
val select_vectorized : values:float array -> cut:float -> chunk:int -> run

(** Layout transformation (Figure 14): sum [c1[p] + c2[p]] over positions. *)

val layout_single_loop :
  positions:int array -> c1:float array -> c2:float array -> run

val layout_separate_loops :
  positions:int array -> c1:float array -> c2:float array -> run

(** Column-to-row transform of the target, then one loop over co-located
    pairs. *)
val layout_transform :
  positions:int array -> c1:float array -> c2:float array -> run

(** Branch-free FK joins (Figure 16): sum of [target[fk[i]]] where
    [fact_v[i] < cut]. *)

val fkjoin_branching :
  fact_v:float array -> fk:int array -> target:float array -> cut:float -> run

(** Unconditional lookups, multiplied by the predicate outcome. *)
val fkjoin_predicated_agg :
  fact_v:float array -> fk:int array -> target:float array -> cut:float -> run

(** Position multiplied by the predicate first: non-qualifying lookups all
    hit slot zero's "very hot" cache line. *)
val fkjoin_predicated_lookup :
  fact_v:float array -> fk:int array -> target:float array -> cut:float -> run
