(** Voodoo implementations of the micro-benchmarks (Figures 1, 14, 15, 16),
    built directly against the algebra with {!Program.Builder} — the same
    handful-of-lines programs the paper shows, compiled and executed by the
    compiling backend.

    Every experiment returns the computed scalar (cross-checked against
    {!Handcoded}) and the executed kernels for the cost model. *)

open Voodoo_vector
open Voodoo_core
module B = Program.Builder
module Backend = Voodoo_compiler.Backend
module Exec = Voodoo_compiler.Exec

type run = { result : float; kernels : (int * Voodoo_device.Events.t) list }

let grain = 8192

let run_program ?trace store program total_id : run =
  let c = Backend.compile ?trace ~store program in
  let r = Backend.run ?trace c in
  let v = Exec.output r total_id in
  let col = Svector.column v (List.hd (Svector.keypaths v)) in
  let result =
    match Column.get col 0 with Some s -> Scalar.to_float s | None -> 0.0
  in
  { result; kernels = r.kernels }

(* hierarchical sum of a (possibly ε-padded) vector, under a grain control
   vector: Figure 3's plan shape *)
let hier_sum b v =
  let ids = B.range b (Of_vector v) in
  let g = B.const_int b grain in
  let fold = B.divide b ids g in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "v" ] (fold, []) (v, []) in
  let partial = B.fold_sum b ~fold:[ "f" ] (z, [ "v" ]) in
  B.fold_sum b ~name:"total" (partial, [])

let selection_common b =
  let input = B.load b ~name:"in" "values" in
  let ids = B.range b (Of_vector input) in
  let g = B.const_int b grain in
  let fold = B.divide b ids g in
  (input, fold)

(* ---------- selection variants (Figures 1 and 15) ---------- *)

(* Branching: a controlled FoldSelect emits qualifying positions. *)
let select_branching_program ~cut () =
  let b = B.create () in
  let input, fold = selection_common b in
  let cutv = B.const_float b cut in
  let pred = B.greater b cutv input (* v < cut *) in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "p" ] (fold, []) (pred, []) in
  let pos = B.fold_select b ~fold:[ "f" ] (z, [ "p" ]) in
  let vals = B.gather b input (pos, []) in
  let total = hier_sum b vals in
  (B.finish b, total)

let select_branching ?trace ~store ~cut () : run =
  let p, total = select_branching_program ~cut () in
  run_program ?trace store p total

(* Branch-free: cursor arithmetic — exclusive prefix sum of the predicate
   gives the write position; every tuple is written unconditionally. *)
let select_branch_free_program ~cut () =
  let b = B.create () in
  let input, fold = selection_common b in
  let cutv = B.const_float b cut in
  let pred = B.greater b cutv input in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "p" ] (fold, []) (pred, []) in
  let scan = B.fold_scan b ~fold:[ "f" ] (z, [ "p" ]) in
  let off = B.subtract b scan pred in
  (* run-local offsets become global write positions *)
  let g = B.const_int b grain in
  let base = B.multiply b fold g in
  let wpos = B.add_ b base off in
  (* scatter v*pred: the slot past each run's final cursor would otherwise
     retain a non-qualifying leftover; predicating the value keeps the
     unconditional writes while zeroing it *)
  let vp = B.multiply b input pred in
  let out = B.scatter b ~shape:input vp (wpos, []) in
  let total = hier_sum b out in
  (B.finish b, total)

let select_branch_free ?trace ~store ~cut () : run =
  let p, total = select_branch_free_program ~cut () in
  run_program ?trace store p total

(* Predicated aggregation: multiply the value by the predicate outcome and
   fold — no control flow at all. *)
let select_predicated_program ~cut () =
  let b = B.create () in
  let input, fold = selection_common b in
  let cutv = B.const_float b cut in
  let pred = B.greater b cutv input in
  let vp = B.multiply b input pred in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "v" ] (fold, []) (vp, []) in
  let partial = B.fold_sum b ~fold:[ "f" ] (z, [ "v" ]) in
  let total = B.fold_sum b ~name:"total" (partial, []) in
  (B.finish b, total)

let select_predicated ?trace ~store ~cut () : run =
  let p, total = select_predicated_program ~cut () in
  run_program ?trace store p total

(* Vectorized: one extra operator — a Materialize with a chunk-sized
   control vector buffers the predicate outcome in cache. *)
let select_vectorized_program ~cut () =
  let b = B.create () in
  let input, fold = selection_common b in
  let cutv = B.const_float b cut in
  let pred = B.greater b cutv input in
  let chunked = B.materialize b ~chunks:(fold, []) pred in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "p" ] (fold, []) (chunked, []) in
  let pos = B.fold_select b ~fold:[ "f" ] (z, [ "p" ]) in
  let vals = B.gather b input (pos, []) in
  let total = hier_sum b vals in
  (B.finish b, total)

let select_vectorized ?trace ~store ~cut () : run =
  let p, total = select_vectorized_program ~cut () in
  run_program ?trace store p total

(* ---------- layout variants (Figure 14) ---------- *)

(* Single loop: one gather resolves both columns of the columnar target. *)
let layout_single_loop_program () =
  let b = B.create () in
  let target = B.load b "target" in
  let pos = B.load b "positions" in
  let g = B.gather b target (pos, []) in
  let both = B.binary b Op.Add (g, [ "c1" ]) (g, [ "c2" ]) in
  let total = hier_sum b both in
  (B.finish b, total)

let layout_single_loop ?trace ~store () : run =
  let p, total = layout_single_loop_program () in
  run_program ?trace store p total

(* Separate loops: a Break between two single-column gathers splits the
   traversals. *)
let layout_separate_loops_program () =
  let b = B.create () in
  let target = B.load b "target" in
  let pos = B.load b "positions" in
  let c1 = B.project b ~out:[ "v" ] (target, [ "c1" ]) in
  let g1 = B.gather b c1 (pos, []) in
  let g1m = B.break_ b g1 in
  let c2 = B.project b ~out:[ "v" ] (target, [ "c2" ]) in
  let g2 = B.gather b c2 (pos, []) in
  let both = B.binary b Op.Add (g1m, []) (g2, []) in
  let total = hier_sum b both in
  (B.finish b, total)

let layout_separate_loops ?trace ~store () : run =
  let p, total = layout_separate_loops_program () in
  run_program ?trace store p total

(* Layout transform: zip + materialize turn the target row-major before a
   single gathering loop. *)
let layout_transform_program () =
  let b = B.create () in
  let target = B.load b "target" in
  let pos = B.load b "positions" in
  let rowwise = B.materialize b target in
  let g = B.gather b rowwise (pos, []) in
  let both = B.binary b Op.Add (g, [ "c1" ]) (g, [ "c2" ]) in
  let total = hier_sum b both in
  (B.finish b, total)

let layout_transform ?trace ~store () : run =
  let p, total = layout_transform_program () in
  run_program ?trace store p total

(* ---------- fold partitioning (Figure 3 / Section 5.3) ---------- *)

(* Hierarchical integer sum under an explicit grain: the fold-partitioning
   tunable in isolation.  Integer data keeps every regrouping exact, so
   partition-count rewrites stay bit-identical. *)
let fold_partition_program ?(grain = grain) () =
  let b = B.create () in
  let input = B.load b ~name:"in" "values" in
  let ids = B.range b (Of_vector input) in
  let g = B.const_int b grain in
  let fold = B.divide b ids g in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "v" ] (fold, []) (input, []) in
  let partial = B.fold_sum b ~fold:[ "f" ] (z, [ "v" ]) in
  let total = B.fold_sum b ~name:"total" (partial, []) in
  (B.finish b, total)

let fold_partition_sum ?trace ?grain ~store () : run =
  let p, total = fold_partition_program ?grain () in
  run_program ?trace store p total

(* ---------- grouped aggregation (Figures 10/11, Section 5.3) ---------- *)

(* Radix-style grouped aggregation, exactly the chain the relational layer
   lowers a GROUP BY to: partition group ids against identity pivots,
   scatter the rows into group order (virtualized by the backend), fold
   each group run.  The per-group fold is the statement the parallel
   grouped-fold path engages on; the trailing total collapses the k
   aggregates into one checksum scalar. *)
let group_fold_program ?(groups = 64) ?(agg = Op.Sum) () =
  let b = B.create () in
  let rows = B.load b "rows" in
  let data =
    B.zip b ~out1:[ "g" ] ~out2:[ "v" ] (rows, [ "g" ]) (rows, [ "v" ])
  in
  let pivots = B.range b ~out:[ "p" ] (Lit groups) in
  let pos = B.partition b (data, [ "g" ]) (pivots, []) in
  let scattered = B.scatter b ~shape:data data (pos, []) in
  let per_group = B.fold_agg b agg ~fold:[ "g" ] (scattered, [ "v" ]) in
  let total = B.fold_sum b ~name:"total" (per_group, []) in
  (B.finish b, total)

let group_fold ?trace ?groups ?agg ~store () : run =
  let p, total = group_fold_program ?groups ?agg () in
  run_program ?trace store p total

(* ---------- branch-free FK joins (Figure 16) ---------- *)

let fkjoin_common b =
  let fact = B.load b "fact" in
  let target = B.load b "target" in
  let v = B.project b ~out:[ "v" ] (fact, [ "v" ]) in
  let fk = B.project b ~out:[ "fk" ] (fact, [ "fk" ]) in
  (v, fk, target)

(* Branching: select first, look up qualifying tuples only. *)
let fkjoin_branching_program ~cut () =
  let b = B.create () in
  let v, fk, target = fkjoin_common b in
  let cutv = B.const_float b cut in
  let pred = B.greater b cutv v in
  let ids = B.range b (Of_vector v) in
  let g = B.const_int b grain in
  let fold = B.divide b ids g in
  let z = B.zip b ~out1:[ "f" ] ~out2:[ "p" ] (fold, []) (pred, []) in
  let pos = B.fold_select b ~fold:[ "f" ] (z, [ "p" ]) in
  let fkq = B.gather b fk (pos, []) in
  let tv = B.gather b target (fkq, []) in
  let total = hier_sum b tv in
  (B.finish b, total)

let fkjoin_branching ?trace ~store ~cut () : run =
  let p, total = fkjoin_branching_program ~cut () in
  run_program ?trace store p total

(* Predicated aggregation: look up every tuple, multiply by the predicate
   outcome. *)
let fkjoin_predicated_agg_program ~cut () =
  let b = B.create () in
  let v, fk, target = fkjoin_common b in
  let cutv = B.const_float b cut in
  let pred = B.greater b cutv v in
  let tv = B.gather b target (fk, []) in
  let tvp = B.multiply b tv pred in
  let total = hier_sum b tvp in
  (B.finish b, total)

let fkjoin_predicated_agg ?trace ~store ~cut () : run =
  let p, total = fkjoin_predicated_agg_program ~cut () in
  run_program ?trace store p total

(* Predicated lookups: multiply the position by the predicate first — all
   non-qualifying lookups hit slot zero's "very hot" line. *)
let fkjoin_predicated_lookup_program ~cut () =
  let b = B.create () in
  let v, fk, target = fkjoin_common b in
  let cutv = B.const_float b cut in
  let pred = B.greater b cutv v in
  let ppos = B.multiply b fk pred in
  let tv = B.gather b target (ppos, []) in
  let tvp = B.multiply b tv pred in
  let total = hier_sum b tvp in
  (B.finish b, total)

let fkjoin_predicated_lookup ?trace ~store ~cut () : run =
  let p, total = fkjoin_predicated_lookup_program ~cut () in
  run_program ?trace store p total

(* ---------- store builders ---------- *)

let selection_store values =
  Store.of_list [ ("values", Svector.single [ "v" ] (Column.of_float_array values)) ]

let fold_store values =
  Store.of_list [ ("values", Svector.single [ "v" ] (Column.of_int_array values)) ]

let group_store ~gids ~values =
  Store.of_list
    [
      ( "rows",
        Svector.of_columns
          [
            ([ "g" ], Column.of_int_array gids);
            ([ "v" ], Column.of_float_array values);
          ] );
    ]

let layout_store ~positions ~c1 ~c2 =
  Store.of_list
    [
      ("positions", Svector.single [ "pos" ] (Column.of_int_array positions));
      ( "target",
        Svector.of_columns
          [ ([ "c1" ], Column.of_float_array c1); ([ "c2" ], Column.of_float_array c2) ]
      );
    ]

let fkjoin_store ~fact_v ~fk ~target =
  Store.of_list
    [
      ( "fact",
        Svector.of_columns
          [ ([ "v" ], Column.of_float_array fact_v); ([ "fk" ], Column.of_int_array fk) ]
      );
      ("target", Svector.single [ "tv" ] (Column.of_float_array target));
    ]
