(** Synthetic workload data for the micro-benchmarks (Figures 1, 14, 15,
    16), generated deterministically from a seeded xorshift generator. *)

(** Selection input: [n] uniform floats in [0, 100). *)
val selection_input : n:int -> seed:int -> float array

type access = Sequential | Random

(** Lookup positions into a target of [target_rows] rows. *)
val positions : n:int -> target_rows:int -> access:access -> seed:int -> int array

(** A two-column float target table. *)
val target_table : rows:int -> seed:int -> float array * float array

(** Fact table for the FK-join experiment: a selection column (uniform in
    [0,100)) and a foreign key into the target. *)
val fk_fact : n:int -> target_rows:int -> seed:int -> float array * int array
