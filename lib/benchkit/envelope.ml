(** Common envelope for BENCH_*.json artifacts (see the interface). *)

let schema_version = 1

let write ~suite ~reps ~file payload =
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": %S,\n\
    \  \"schema_version\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"reps\": %d,\n\
    \  \"payload\": " suite schema_version
    (Domain.recommended_domain_count ())
    reps;
  payload oc;
  Printf.fprintf oc "\n}\n";
  close_out oc
