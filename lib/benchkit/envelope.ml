(** Common envelope for BENCH_*.json artifacts (see the interface). *)

let schema_version = 1

let write ?(fields = []) ~suite ~reps ~file payload =
  let oc = open_out file in
  Printf.fprintf oc
    "{\n\
    \  \"suite\": %S,\n\
    \  \"schema_version\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"reps\": %d,\n" suite schema_version
    (Domain.recommended_domain_count ())
    reps;
  List.iter (fun (k, v) -> Printf.fprintf oc "  %S: %s,\n" k v) fields;
  Printf.fprintf oc "  \"payload\": ";
  payload oc;
  Printf.fprintf oc "\n}\n";
  close_out oc
