(** Common envelope for [BENCH_*.json] artifacts.

    Every bench family wraps its payload in one machine-comparable
    envelope: suite name, schema version, host core count and iteration
    count.  Fixing the outer shape keeps the bench trajectory comparable
    across PRs and machines — a reader can diff two [BENCH_*.json] files
    without knowing which family produced them. *)

(** The envelope schema version written as ["schema_version"]. *)
val schema_version : int

(** [write ~suite ~reps ~file payload] writes

    {v
    { "suite": <suite>, "schema_version": N, "cores": <host cores>,
      "reps": <reps>, "payload": <payload object> }
    v}

    to [file].  [payload] receives the open channel and must emit one
    complete JSON value (conventionally an object).  [fields] are extra
    envelope entries, each an already-serialized JSON value (e.g.
    [("tile_width", "1024")]), emitted between [reps] and [payload]. *)
val write :
  ?fields:(string * string) list ->
  suite:string -> reps:int -> file:string -> (out_channel -> unit) -> unit
