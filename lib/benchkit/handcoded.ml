(** The "Implemented in C" sides of Figures 1, 14, 15 and 16.

    Each variant is the loop a C programmer would write, executed over the
    real data (so branch-outcome streams and position patterns are
    authentic) while recording the hardware events the loop performs.
    Returns the computed result for cross-checking against the Voodoo
    implementations, plus the kernels for the cost model. *)

open Voodoo_device

let width = 4

type run = { result : float; kernels : (int * Events.t) list }

(* ---------- selection (Figures 1 and 15) ---------- *)

(* Branching: if (v[i] < cut) out[cursor++] = v[i]; *)
let select_branching ~(values : float array) ~cut : run =
  let n = Array.length values in
  let ev = Events.create () in
  let sum = ref 0.0 and count = ref 0 in
  for i = 0 to n - 1 do
    let taken = values.(i) < cut in
    Events.branch ev ~site:"sel" taken;
    if taken then begin
      sum := !sum +. values.(i);
      incr count
    end
  done;
  Events.alu ev Float n (* predicate *);
  Events.guarded ev !count;
  Events.mem ev ~site:"in" ~pattern:Cache.Sequential ~elem_bytes:width n;
  Events.mem ev ~site:"out" ~pattern:Cache.Sequential ~elem_bytes:width !count;
  { result = !sum; kernels = [ (n, ev) ] }

(* Branch-free: out[cursor] = v[i]; cursor += (v[i] < cut); *)
let select_branch_free ~(values : float array) ~cut : run =
  let n = Array.length values in
  let ev = Events.create () in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    if values.(i) < cut then sum := !sum +. values.(i)
  done;
  Events.alu ev Float n (* predicate *);
  Events.alu ev Int n (* cursor arithmetic *);
  Events.mem ev ~site:"in" ~pattern:Cache.Sequential ~elem_bytes:width n;
  (* every element is written (non-qualifying ones get overwritten) *)
  Events.mem ev ~site:"out" ~pattern:Cache.Sequential ~elem_bytes:width n;
  { result = !sum; kernels = [ (n, ev) ] }

(* Predicated aggregation (the branch-free variant for aggregating
   selections, Figure 15): sum += v[i] * (v[i] < cut). *)
let select_predicated ~(values : float array) ~cut : run =
  let n = Array.length values in
  let ev = Events.create () in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    if values.(i) < cut then sum := !sum +. values.(i)
  done;
  Events.alu ev Float (3 * n) (* predicate, multiply, add *);
  Events.mem ev ~site:"in" ~pattern:Cache.Sequential ~elem_bytes:width n;
  { result = !sum; kernels = [ (n, ev) ] }

(* Vectorized: per cache-sized chunk, a branch-free position-list pass and
   a gathering pass over the list. *)
let select_vectorized ~(values : float array) ~cut ~chunk : run =
  let n = Array.length values in
  let ev = Events.create () in
  let sum = ref 0.0 and total_hits = ref 0 in
  let i = ref 0 in
  while !i < n do
    let hi = min n (!i + chunk) in
    let hits = ref 0 in
    for j = !i to hi - 1 do
      if values.(j) < cut then begin
        incr hits;
        sum := !sum +. values.(j)
      end
    done;
    (* pass 1: branch-free position generation into a chunk buffer *)
    let len = hi - !i in
    Events.alu ev Float len;
    Events.alu ev Int len;
    Events.mem ev ~site:"in" ~pattern:Cache.Sequential ~elem_bytes:width len;
    Events.mem ~scalable:false ev ~site:"poslist"
      ~pattern:(Cache.Random (chunk * width)) ~elem_bytes:width len;
    (* pass 2: traverse the position list, process qualifying tuples *)
    Events.mem ~scalable:false ev ~site:"poslist2"
      ~pattern:(Cache.Random (chunk * width)) ~elem_bytes:width !hits;
    Events.mem ~scalable:false ev ~site:"gather"
      ~pattern:(Cache.Random (chunk * width)) ~elem_bytes:width !hits;
    Events.alu ev Float !hits;
    total_hits := !total_hits + !hits;
    i := hi
  done;
  ignore !total_hits;
  { result = !sum; kernels = [ (n, ev) ] }

(* ---------- just-in-time layout transformation (Figure 14) ---------- *)

(* Single loop: one traversal resolving both columns per position. *)
let layout_single_loop ~(positions : int array) ~(c1 : float array)
    ~(c2 : float array) : run =
  let n = Array.length positions in
  let rows = Array.length c1 in
  let ev = Events.create () in
  let sum = ref 0.0 in
  let monotone = ref true and last = ref min_int in
  Array.iter
    (fun p ->
      if p < !last then monotone := false;
      last := p;
      sum := !sum +. c1.(p) +. c2.(p))
    positions;
  Events.mem ev ~site:"pos" ~pattern:Cache.Sequential ~elem_bytes:width n;
  let pat : Cache.pattern =
    if !monotone then Sequential else Random (rows * width * 2)
  in
  Events.mem ev ~site:"c1" ~pattern:pat ~elem_bytes:width n;
  (* the second lookup of the pair is issued in the same iteration: its hit
     latency is exposed *)
  Events.mem ~serial:true ev ~site:"c2" ~pattern:pat ~elem_bytes:width n;
  Events.alu ev Float (2 * n);
  { result = !sum; kernels = [ (n, ev) ] }

(* Separate loops: two traversals, each resolving one column. *)
let layout_separate_loops ~(positions : int array) ~(c1 : float array)
    ~(c2 : float array) : run =
  let n = Array.length positions in
  let rows = Array.length c1 in
  let sum = ref 0.0 in
  let monotone = ref true and last = ref min_int in
  Array.iter
    (fun p ->
      if p < !last then monotone := false;
      last := p)
    positions;
  Array.iter (fun p -> sum := !sum +. c1.(p)) positions;
  Array.iter (fun p -> sum := !sum +. c2.(p)) positions;
  let kernel col_site =
    let ev = Events.create () in
    Events.mem ev ~site:"pos" ~pattern:Cache.Sequential ~elem_bytes:width n;
    let pat : Cache.pattern =
      if !monotone then Sequential else Random (rows * width)
    in
    Events.mem ev ~site:col_site ~pattern:pat ~elem_bytes:width n;
    Events.alu ev Float n;
    (n, ev)
  in
  { result = !sum; kernels = [ kernel "c1"; kernel "c2" ] }

(* Layout transform: column-to-row transformation of the target, then a
   single loop over co-located pairs. *)
let layout_transform ~(positions : int array) ~(c1 : float array)
    ~(c2 : float array) : run =
  let n = Array.length positions in
  let rows = Array.length c1 in
  let sum = ref 0.0 in
  let monotone = ref true and last = ref min_int in
  Array.iter
    (fun p ->
      if p < !last then monotone := false;
      last := p;
      sum := !sum +. c1.(p) +. c2.(p))
    positions;
  (* transform kernel: stream both columns into a row-major buffer *)
  let tev = Events.create () in
  Events.mem tev ~site:"t:in" ~pattern:Cache.Sequential ~elem_bytes:width (2 * rows);
  Events.mem tev ~site:"t:out" ~pattern:Cache.Sequential ~elem_bytes:width (2 * rows);
  Events.alu tev Int (2 * rows);
  (* lookup kernel: one access fetches the co-located pair *)
  let ev = Events.create () in
  Events.mem ev ~site:"pos" ~pattern:Cache.Sequential ~elem_bytes:width n;
  let pat : Cache.pattern =
    if !monotone then Sequential else Random (rows * width * 2)
  in
  Events.mem ev ~site:"pair" ~pattern:pat ~elem_bytes:(2 * width) n;
  Events.alu ev Float (2 * n);
  { result = !sum; kernels = [ (rows, tev); (n, ev) ] }

(* ---------- branch-free foreign-key joins (Figure 16) ---------- *)

(* Branching: if (fact_v[i] < cut) sum += target[fk[i]]; *)
let fkjoin_branching ~(fact_v : float array) ~(fk : int array)
    ~(target : float array) ~cut : run =
  let n = Array.length fact_v in
  let rows = Array.length target in
  let ev = Events.create () in
  let sum = ref 0.0 and hits = ref 0 in
  for i = 0 to n - 1 do
    let taken = fact_v.(i) < cut in
    Events.branch ev ~site:"sel" taken;
    if taken then begin
      sum := !sum +. target.(fk.(i));
      incr hits
    end
  done;
  Events.alu ev Float n;
  Events.guarded ev !hits;
  Events.mem ev ~site:"v" ~pattern:Cache.Sequential ~elem_bytes:width n;
  Events.mem ev ~site:"fk" ~pattern:Cache.Sequential ~elem_bytes:width !hits;
  Events.mem ev ~site:"lookup" ~pattern:(Cache.Random (rows * width))
    ~elem_bytes:width !hits;
  Events.alu ev Float !hits;
  { result = !sum; kernels = [ (n, ev) ] }

(* Predicated aggregation: sum += target[fk[i]] * (fact_v[i] < cut); *)
let fkjoin_predicated_agg ~(fact_v : float array) ~(fk : int array)
    ~(target : float array) ~cut : run =
  let n = Array.length fact_v in
  let rows = Array.length target in
  let ev = Events.create () in
  let sum = ref 0.0 in
  for i = 0 to n - 1 do
    if fact_v.(i) < cut then sum := !sum +. target.(fk.(i))
  done;
  Events.alu ev Float (3 * n) (* predicate, multiply, add *);
  Events.mem ev ~site:"v" ~pattern:Cache.Sequential ~elem_bytes:width n;
  Events.mem ev ~site:"fk" ~pattern:Cache.Sequential ~elem_bytes:width n;
  (* unconditional lookups: every row misses around the cache *)
  Events.mem ev ~site:"lookup" ~pattern:(Cache.Random (rows * width))
    ~elem_bytes:width n;
  { result = !sum; kernels = [ (n, ev) ] }

(* Predicated lookups: sum += target[fk[i] * pred] * pred — non-qualifying
   lookups all hit slot zero ("one very hot cache line"). *)
let fkjoin_predicated_lookup ~(fact_v : float array) ~(fk : int array)
    ~(target : float array) ~cut : run =
  let n = Array.length fact_v in
  let rows = Array.length target in
  let ev = Events.create () in
  let sum = ref 0.0 and hits = ref 0 in
  for i = 0 to n - 1 do
    if fact_v.(i) < cut then begin
      sum := !sum +. target.(fk.(i));
      incr hits
    end
  done;
  (* predicate, position multiply, value multiply, add: extra integer
     arithmetic is what hurts on the GPU *)
  Events.alu ev Float (2 * n);
  Events.alu ev Int (2 * n);
  Events.mem ev ~site:"v" ~pattern:Cache.Sequential ~elem_bytes:width n;
  Events.mem ev ~site:"fk" ~pattern:Cache.Sequential ~elem_bytes:width n;
  Events.mem ev ~site:"lookup" ~pattern:(Cache.Random (rows * width))
    ~elem_bytes:width !hits;
  Events.mem ev ~site:"lookup:hot" ~pattern:Cache.Single_hot ~elem_bytes:width
    (n - !hits);
  { result = !sum; kernels = [ (n, ev) ] }
