(** The line-oriented wire protocol (see the interface). *)

open Voodoo_vector
module Engine = Voodoo_engine.Engine
module Verror = Voodoo_core.Verror

type request =
  | Prepare of string * string
  | Exec of string
  | Sql of string
  | Query of string
  | Fragment of string
      (** opaque shard-fragment payload (hex-encoded, see
          [Voodoo_distrib.Fragment]); answered with [Rows] *)
  | Stats
  | Ping
  | Close

type response =
  | Rows of Engine.rows
  | Prepared of string
  | Stats_reply of (string * float) list
  | Pong
  | Bye
  | Err of string * string  (** stage name, one-line message *)

(* Every request except CLOSE is safe to retry on a fresh connection:
   queries are reads, PREPARE of identical text is a plan-cache hit,
   FRAGMENT is a pure read over an immutable shard catalog, and
   STATS/PING observe.  CLOSE is tied to the connection it travelled on —
   retrying it elsewhere would close somebody else's session. *)
let idempotent = function
  | Prepare _ | Exec _ | Sql _ | Query _ | Fragment _ | Stats | Ping -> true
  | Close -> false

(* ---- requests ---- *)

let strip = String.trim

let split_word s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      ( String.sub s 0 i,
        strip (String.sub s (i + 1) (String.length s - i - 1)) )

let parse_request line : (request, string) result =
  let verb, rest = split_word (strip line) in
  match (String.uppercase_ascii verb, rest) with
  | "PREPARE", rest -> (
      match split_word rest with
      | name, sql when name <> "" && sql <> "" ->
          (* tolerate "PREPARE name: sql" — a trailing colon on the name *)
          let name =
            if String.length name > 1 && name.[String.length name - 1] = ':'
            then String.sub name 0 (String.length name - 1)
            else name
          in
          Ok (Prepare (name, sql))
      | _ -> Error "usage: PREPARE <name> <sql>")
  | "EXEC", name when name <> "" -> Ok (Exec name)
  | "SQL", text when text <> "" -> Ok (Sql text)
  | "QUERY", name when name <> "" -> Ok (Query name)
  | "FRAGMENT", payload when payload <> "" -> Ok (Fragment payload)
  | "STATS", "" -> Ok Stats
  | "PING", "" -> Ok Ping
  | "CLOSE", "" -> Ok Close
  | "", "" -> Error "empty request"
  | verb, _ ->
      Error
        (Printf.sprintf
           "unknown request %S (have: PREPARE EXEC SQL QUERY FRAGMENT STATS \
            PING CLOSE)"
           verb)

let render_request = function
  | Prepare (name, sql) -> Printf.sprintf "PREPARE %s %s" name sql
  | Exec name -> "EXEC " ^ name
  | Sql text -> "SQL " ^ text
  | Query name -> "QUERY " ^ name
  | Fragment payload -> "FRAGMENT " ^ payload
  | Stats -> "STATS"
  | Ping -> "PING"
  | Close -> "CLOSE"

(* ---- scalar / row wire form ----

   Values must round-trip exactly so the client sees rows byte-equal to
   what the engine produced: ints in decimal, floats in OCaml's hex float
   notation (%h, lossless), NULL/ε as a bare [e].  Fields are
   tab-separated [name=value] pairs — column names are identifiers, never
   containing tabs or [=]. *)

let render_value = function
  | None -> "e"
  | Some (Scalar.I i) -> Printf.sprintf "i%d" i
  | Some (Scalar.F f) -> Printf.sprintf "f%h" f

let parse_value s : (Scalar.t option, string) result =
  if s = "e" then Ok None
  else if s = "" then Error "empty value"
  else
    let body = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'i' -> (
        match int_of_string_opt body with
        | Some i -> Ok (Some (Scalar.I i))
        | None -> Error (Printf.sprintf "bad int value %S" s))
    | 'f' -> (
        match float_of_string_opt body with
        | Some f -> Ok (Some (Scalar.F f))
        | None -> Error (Printf.sprintf "bad float value %S" s))
    | _ -> Error (Printf.sprintf "bad value %S" s)

let render_row (row : (string * Scalar.t option) list) =
  "ROW "
  ^ String.concat "\t"
      (List.map (fun (name, v) -> name ^ "=" ^ render_value v) row)

let parse_row line : ((string * Scalar.t option) list, string) result =
  let verb, rest = split_word line in
  if verb <> "ROW" then Error (Printf.sprintf "expected ROW, got %S" line)
  else if rest = "" then Ok []
  else
    let fields = String.split_on_char '\t' rest in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: fs -> (
          match String.index_opt f '=' with
          | None -> Error (Printf.sprintf "bad row field %S" f)
          | Some i -> (
              let name = String.sub f 0 i in
              match
                parse_value (String.sub f (i + 1) (String.length f - i - 1))
              with
              | Ok v -> go ((name, v) :: acc) fs
              | Error e -> Error e))
    in
    go [] fields

(* ---- responses ---- *)

let oneline s =
  String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) s

(** A response as the list of lines to write. *)
let render_response = function
  | Rows rows ->
      Printf.sprintf "OK ROWS %d" (List.length rows)
      :: List.map render_row rows
      @ [ "END" ]
  | Prepared name -> [ "OK PREPARED " ^ name ]
  | Stats_reply fields ->
      Printf.sprintf "OK STATS %d" (List.length fields)
      :: List.map (fun (k, v) -> Printf.sprintf "STAT %s %h" k v) fields
      @ [ "END" ]
  | Pong -> [ "OK PONG" ]
  | Bye -> [ "OK BYE" ]
  | Err (stage, msg) -> [ Printf.sprintf "ERR %s: %s" stage (oneline msg) ]

let err_of_verror (e : Verror.t) =
  Err (Verror.stage_name e.Verror.stage, e.Verror.message)

(** [read_response next_line] consumes one full response from a stream of
    lines ([next_line () = None] means the peer hung up). *)
let read_response (next_line : unit -> string option) :
    (response, string) result =
  let rec read_n n acc parse =
    if n = 0 then Ok (List.rev acc)
    else
      match next_line () with
      | None -> Error "connection closed mid-response"
      | Some line -> (
          match parse line with
          | Ok v -> read_n (n - 1) (v :: acc) parse
          | Error e -> Error e)
  in
  let expect_end k =
    match next_line () with
    | Some "END" -> Ok k
    | Some other -> Error (Printf.sprintf "expected END, got %S" other)
    | None -> Error "connection closed before END"
  in
  match next_line () with
  | None -> Error "connection closed"
  | Some line -> (
      let verb, rest = split_word (strip line) in
      match (verb, split_word rest) with
      | "OK", ("ROWS", n) -> (
          match int_of_string_opt n with
          | None -> Error (Printf.sprintf "bad row count %S" n)
          | Some n -> (
              match read_n n [] parse_row with
              | Ok rows -> expect_end (Rows rows)
              | Error e -> Error e))
      | "OK", ("PREPARED", name) -> Ok (Prepared name)
      | "OK", ("STATS", n) -> (
          let parse_stat line =
            match String.split_on_char ' ' line with
            | [ "STAT"; k; v ] -> (
                match float_of_string_opt v with
                | Some f -> Ok (k, f)
                | None -> Error (Printf.sprintf "bad stat value %S" line))
            | _ -> Error (Printf.sprintf "bad stat line %S" line)
          in
          match int_of_string_opt n with
          | None -> Error (Printf.sprintf "bad stat count %S" n)
          | Some n -> (
              match read_n n [] parse_stat with
              | Ok fields -> expect_end (Stats_reply fields)
              | Error e -> Error e))
      | "OK", ("PONG", _) -> Ok Pong
      | "OK", ("BYE", _) -> Ok Bye
      | "ERR", _ -> (
          let payload = String.sub line 4 (String.length line - 4) in
          match String.index_opt payload ':' with
          | Some i ->
              Ok
                (Err
                   ( String.sub payload 0 i,
                     strip
                       (String.sub payload (i + 1)
                          (String.length payload - i - 1)) ))
          | None -> Ok (Err ("unknown", payload)))
      | _ -> Error (Printf.sprintf "unparseable response line %S" line))
