(** LRU cache of prepared plans.

    Maps an opaque key — the service derives it from the relational plan,
    the lowering/codegen options and the catalog generation (see
    [docs/SERVICE.md], "Cache keys") — to an {!Voodoo_engine.Engine.prepared}
    plan, so repeated queries skip the parse/lower/compile pipeline
    entirely.  Capacity-bounded with least-recently-used eviction;
    thread-safe (one mutex, O(entries) eviction scan). *)

module Engine = Voodoo_engine.Engine

type t

type stats = { hits : int; misses : int; evictions : int; entries : int }

(** [create ~capacity] holds at most [capacity] prepared plans. *)
val create : capacity:int -> t

(** [find t key] returns the cached plan and refreshes its recency;
    counts a hit or a miss. *)
val find : t -> string -> Engine.prepared option

(** [add t key p] inserts, evicting LRU entries if at capacity.  An
    existing binding is kept (first preparation wins — both are valid, and
    keeping the incumbent preserves its recency). *)
val add : t -> string -> Engine.prepared -> unit

(** [replace t key p] inserts or overwrites: the repointing operation of
    online retuning — a tuned plan supersedes the incumbent under its
    key.  Evicts like {!add} when inserting fresh. *)
val replace : t -> string -> Engine.prepared -> unit

val mem : t -> string -> bool

(** [invalidate_prefix t p] drops entries whose key starts with [p] (not
    counted as evictions): plans prepared against a swapped-out catalog
    generation must not linger and crowd out live ones. *)
val invalidate_prefix : t -> string -> unit

val clear : t -> unit

val stats : t -> stats
