(** Client sessions (see the interface). *)

open Voodoo_relational

type stmt = {
  sql : string;
  mutable plan : Ra.t;
  mutable planned_generation : int;
}

type t = {
  id : int;
  sf : float;
  seed : int;
  m : Mutex.t;
  stmts : (string, stmt) Hashtbl.t;
  mutable executed : int;
  mutable closed : bool;
}

let make ~id ~sf ~seed =
  {
    id;
    sf;
    seed;
    m = Mutex.create ();
    stmts = Hashtbl.create 8;
    executed = 0;
    closed = false;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let put_stmt t ~name ~sql ~plan ~generation =
  locked t (fun () ->
      Hashtbl.replace t.stmts name { sql; plan; planned_generation = generation })

let find_stmt t name = locked t (fun () -> Hashtbl.find_opt t.stmts name)

let restmt t (s : stmt) ~plan ~generation =
  locked t (fun () ->
      s.plan <- plan;
      s.planned_generation <- generation)

let count_execution t = locked t (fun () -> t.executed <- t.executed + 1)

let executed t = locked t (fun () -> t.executed)

let stmt_names t =
  locked t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.stmts [] |> List.sort compare)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Hashtbl.reset t.stmts)

let closed t = locked t (fun () -> t.closed)
