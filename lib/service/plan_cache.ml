(** LRU cache of prepared plans (see the interface). *)

module Engine = Voodoo_engine.Engine

type entry = { prepared : Engine.prepared; mutable last_used : int }

type t = {
  m : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 16;
    capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.tick <- t.tick + 1;
          e.last_used <- t.tick;
          t.hits <- t.hits + 1;
          Some e.prepared
      | None ->
          t.misses <- t.misses + 1;
          None)

(* Evict the least-recently-used entry.  Caches hold tens of entries, so
   the O(n) scan is cheaper than maintaining an intrusive list. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, lu) when lu <= e.last_used -> acc
        | _ -> Some (key, e.last_used))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.tbl key;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key prepared =
  locked t (fun () ->
      if not (Hashtbl.mem t.tbl key) then begin
        while Hashtbl.length t.tbl >= t.capacity do
          evict_lru t
        done;
        t.tick <- t.tick + 1;
        Hashtbl.replace t.tbl key { prepared; last_used = t.tick }
      end)

let replace t key prepared =
  locked t (fun () ->
      if not (Hashtbl.mem t.tbl key) then
        while Hashtbl.length t.tbl >= t.capacity do
          evict_lru t
        done;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.tbl key { prepared; last_used = t.tick })

let mem t key = locked t (fun () -> Hashtbl.mem t.tbl key)

let invalidate_prefix t prefix =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun key _ acc ->
            if String.starts_with ~prefix key then key :: acc else acc)
          t.tbl []
      in
      List.iter (Hashtbl.remove t.tbl) doomed)

let clear t = locked t (fun () -> Hashtbl.reset t.tbl)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
      })
