(** Byte-capped LRU cache of query results (see the interface). *)

open Voodoo_vector
module Engine = Voodoo_engine.Engine

type entry = { rows : Engine.rows; bytes : int; mutable last_used : int }

type t = {
  m : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  max_bytes : int;
  mutable bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  bytes : int;
  max_bytes : int;
}

(* Accounting estimate of a result set's footprint: boxed scalar + option
   + list-cell overhead per value, plus the column-name strings each row
   carries. *)
let bytes_of_rows (rows : Engine.rows) =
  List.fold_left
    (fun acc row ->
      List.fold_left
        (fun acc (name, v) ->
          acc + 48 + String.length name
          + (match v with Some (Scalar.I _) | Some (Scalar.F _) -> 16 | None -> 0))
        (acc + 24) row)
    0 rows

let create ~max_bytes =
  if max_bytes < 0 then invalid_arg "Result_cache.create: max_bytes must be >= 0";
  {
    m = Mutex.create ();
    tbl = Hashtbl.create 16;
    max_bytes;
    bytes = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
          t.tick <- t.tick + 1;
          e.last_used <- t.tick;
          t.hits <- t.hits + 1;
          Some e.rows
      | None ->
          t.misses <- t.misses + 1;
          None)

let remove_entry t key (e : entry) =
  Hashtbl.remove t.tbl key;
  t.bytes <- t.bytes - e.bytes

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, lu) when lu <= e.last_used -> acc
        | _ -> Some (key, e.last_used))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
      remove_entry t key (Hashtbl.find t.tbl key);
      t.evictions <- t.evictions + 1
  | None -> ()

let add t key rows =
  locked t (fun () ->
      let bytes = bytes_of_rows rows in
      (* results larger than the whole cache are never admitted *)
      if bytes <= t.max_bytes && not (Hashtbl.mem t.tbl key) then begin
        while t.bytes + bytes > t.max_bytes && Hashtbl.length t.tbl > 0 do
          evict_lru t
        done;
        t.tick <- t.tick + 1;
        Hashtbl.replace t.tbl key { rows; bytes; last_used = t.tick };
        t.bytes <- t.bytes + bytes
      end)

(* Drop every entry whose key starts with [prefix] — how a catalog swap
   invalidates all results computed against the old generation. *)
let invalidate_prefix t prefix =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun key _ acc ->
            if String.starts_with ~prefix key then key :: acc else acc)
          t.tbl []
      in
      List.iter
        (fun key ->
          remove_entry t key (Hashtbl.find t.tbl key);
          t.invalidations <- t.invalidations + 1)
        doomed)

let clear t =
  locked t (fun () ->
      t.invalidations <- t.invalidations + Hashtbl.length t.tbl;
      Hashtbl.reset t.tbl;
      t.bytes <- 0)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
        entries = Hashtbl.length t.tbl;
        bytes = t.bytes;
        max_bytes = t.max_bytes;
      })
