(** The catalog registry: memoized TPC-H catalog construction.

    A long-lived service cannot afford one [Dbgen.generate] per query (the
    seed CLI regenerated the whole database on every invocation); the
    registry shares one catalog per (scale factor, seed) — generated at
    most once, ever — and stamps each with a monotonically increasing
    {e generation} that cache keys embed, so swapping a catalog
    ({!refresh}) implicitly invalidates every plan and result cached
    against the old one. *)

open Voodoo_relational

type entry = {
  cat : Catalog.t;
  sf : float;
  seed : int;
  generation : int;  (** registry-unique; embedded in cache keys *)
}

type t

val create : unit -> t

(** The process-wide registry the CLI's subcommands share. *)
val shared : unit -> t

(** [get t ~sf ()] is the memoized catalog for [(sf, seed)]; the first
    call generates it, every later call returns the same entry.
    Thread-safe. *)
val get : t -> ?seed:int -> sf:float -> unit -> entry

(** [refresh t ~sf ()] regenerates the catalog under a new generation —
    the "catalog changed" event result caches must observe. *)
val refresh : t -> ?seed:int -> sf:float -> unit -> entry

(** [register t ~sf cat ()] installs a caller-built catalog as the entry
    for [(sf, seed)] under a fresh generation, replacing any memoized
    one.  Shard workers use it to serve their row-id-augmented catalog
    (every table gains a [<table>__rowid] column) through the ordinary
    session path, so fragments and interactive SQL see the same data. *)
val register : t -> ?seed:int -> sf:float -> Catalog.t -> unit -> entry

val generation : entry -> int

(** [fork cat] is a shallow copy safe for per-execution mutation: the
    table list and store map are copied, the column vectors shared
    read-only.  Multi-phase queries register their temp tables (e.g.
    TPC-H Q20's [q20_qty]) on the fork, so concurrent executions never
    mutate a catalog another domain is reading. *)
val fork : Catalog.t -> Catalog.t
