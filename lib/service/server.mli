(** The socket front door ([voodoo serve]) and its client.

    A server accepts connections on a Unix or TCP socket; each connection
    is one {!Session} handled by its own thread, speaking the
    {!Protocol} line grammar.  Query execution itself happens on the
    service's domain pool — connection threads only parse, submit and
    render — so slow clients do not hold worker domains, and admission
    control applies uniformly to socket and in-process callers.

    The server protects itself ({!options}): request lines are bounded
    (an oversized line answers a typed parse error and the connection
    survives), idle connections are reaped after [idle_timeout_ms],
    at most [max_conns] connections are served at once (excess ones get
    a typed Resource error and are closed), and every request runs under
    [request_timeout_ms].  {!stop} drains gracefully: in-flight requests
    get [drain_ms] to finish before being cooperatively cancelled
    through the service's {!Voodoo_core.Budget} token.  See
    [docs/SERVICE.md] and [docs/ROBUSTNESS.md]. *)

type addr = Unix_socket of string | Tcp of string * int  (** host, port *)

(** Hostname resolution failed ({!sockaddr_of_addr} uses
    [Unix.getaddrinfo]); the message names the host. *)
exception Address_error of string

val pp_addr : Format.formatter -> addr -> unit

(** Resolve to a concrete [Unix.sockaddr] (numeric IPs without a
    lookup); raises {!Address_error} when resolution fails.  Exposed for
    {!Chaos}, which dials the upstream itself. *)
val sockaddr_of_addr : addr -> Unix.sockaddr

type options = {
  request_timeout_ms : float option;
      (** per-request wall-clock deadline (passed to the service) *)
  idle_timeout_ms : float option;
      (** reap connections silent for this long (SO_RCVTIMEO) *)
  max_conns : int option;  (** concurrent-connection cap *)
  max_line_bytes : int;  (** request-line bound (default 64 KiB) *)
  drain_ms : float;  (** default drain window of {!stop} *)
}

(** No timeouts, no cap, 64 KiB lines, 1 s drain. *)
val default_options : options

type t

(** A pluggable dispatcher consulted before the built-in [Service]
    dispatch: [Some (response, keep_going)] answers the request, [None]
    falls through to the stock behaviour.  This is how a shard worker
    answers [FRAGMENT] ([Voodoo_distrib.Worker.handler]) and a
    coordinator scatters [SQL]/[QUERY] across the fleet, while sessions,
    [STATS], [PING] and the drain path stay shared. *)
type handler = Session.t -> Protocol.request -> (Protocol.response * bool) option

(** [start ~service addr] binds, listens and spawns the accept thread
    (an existing Unix socket path is replaced). *)
val start : ?options:options -> ?handler:handler -> service:Service.t -> addr -> t

(** Graceful stop: close the listener, wait up to [drain_ms] (default:
    [options.drain_ms]) for in-flight requests to finish, then
    cooperatively cancel the stragglers ({!Service.cancel_inflight} —
    each answers its client with a typed Resource error), disconnect
    every connection, join every handler thread, and remove a Unix
    socket path.  Idempotent and safe to call concurrently. *)
val stop : ?drain_ms:float -> t -> unit

(** [start] + block forever (the CLI's [voodoo serve]). *)
val serve_forever :
  ?options:options -> ?handler:handler -> service:Service.t -> addr -> unit

(** {2 Server-side counters}

    Appended to the wire [STATS] reply (keys [server.conns.opened],
    [server.conns.live], [server.conns.rejected],
    [server.conns.idle_reaped], [server.requests.oversized],
    [server.requests.handled], [server.drains.forced]). *)

type stats = {
  conns_opened : int;
  conns_live : int;
  conns_rejected : int;
  conns_idle_reaped : int;
  requests_oversized : int;
  requests_handled : int;
  drains_forced : int;
}

val stats : t -> stats

val stats_fields : stats -> (string * float) list

module Client : sig
  type conn

  (** [connect addr] opens a connection; [retries] short reconnection
      attempts smooth over a server that is still binding, [timeout_ms]
      bounds every read and write on the connection (SO_RCVTIMEO /
      SO_SNDTIMEO). *)
  val connect : ?retries:int -> ?timeout_ms:float -> addr -> conn

  (** One request/response round trip.  [Error] means a transport or
      framing failure (including ["timeout: …"] when [timeout_ms]
      expired); server-side failures arrive as [Protocol.Err]. *)
  val request : conn -> Protocol.request -> (Protocol.response, string) result

  (** Send [CLOSE] (best effort) and drop the connection. *)
  val close : conn -> unit

  (** {2 Self-contained calls: timeout, retries, hedging} *)

  type call_stats = {
    attempts : int;  (** connections opened (hedges included) *)
    retries : int;  (** sequential re-attempts after a failure *)
    hedges : int;  (** speculative duplicates sent *)
    hedge_wins : int;  (** calls answered by the hedge, not the primary *)
  }

  val no_calls : call_stats

  val merge_stats : call_stats -> call_stats -> call_stats

  (** [call addr req] performs one logical request on its own
      connection(s) and always terminates:

      - [timeout_ms] bounds each attempt's socket reads/writes;
      - transport failures are retried up to [retries] times with
        jittered exponential backoff ([backoff_ms] · 2{^k} · U[0.5,1.5)),
        but {e only} when {!Protocol.idempotent} holds for [req];
      - with [hedge_ms], an attempt that has not answered within that
        latency fires one speculative duplicate on a second connection
        and the first [Ok] wins (an [Error] only settles the race once
        no attempt is outstanding);
      - [seed] makes the backoff jitter deterministic.

      Server-side failures ([Protocol.Err]) are {e answers}, not
      transport failures: they return [Ok (Err …)] and are never
      retried. *)
  val call :
    ?timeout_ms:float ->
    ?retries:int ->
    ?backoff_ms:float ->
    ?hedge_ms:float ->
    ?seed:int ->
    addr ->
    Protocol.request ->
    (Protocol.response, string) result * call_stats
end
