(** The socket front door ([voodoo serve]) and its client.

    A server accepts connections on a Unix or TCP socket; each connection
    is one {!Session} handled by its own thread, speaking the
    {!Protocol} line grammar.  Query execution itself happens on the
    service's domain pool — connection threads only parse, submit and
    render — so slow clients do not hold worker domains, and admission
    control applies uniformly to socket and in-process callers. *)

type addr = Unix_socket of string | Tcp of string * int  (** host, port *)

val pp_addr : Format.formatter -> addr -> unit

type t

(** [start ~service addr] binds, listens and spawns the accept thread
    (an existing Unix socket path is replaced). *)
val start : service:Service.t -> addr -> t

(** Close the listener, join the accept thread, remove the socket file.
    Open connections finish their current request and then find their
    socket closed.  Idempotent. *)
val stop : t -> unit

(** [start] + block forever (the CLI's [voodoo serve]). *)
val serve_forever : service:Service.t -> addr -> unit

module Client : sig
  type conn

  (** [connect addr] opens a connection; [retries] short reconnection
      attempts smooth over a server that is still binding. *)
  val connect : ?retries:int -> addr -> conn

  (** One request/response round trip.  [Error] means a transport or
      framing failure; server-side failures arrive as [Protocol.Err]. *)
  val request : conn -> Protocol.request -> (Protocol.response, string) result

  (** Send [CLOSE] (best effort) and drop the connection. *)
  val close : conn -> unit
end
