(** Byte-capped LRU cache over canonical query results.

    Maps an opaque key (catalog generation + query identity, see
    [docs/SERVICE.md]) to result rows.  Capacity is measured in estimated
    bytes, not entries — result sets vary by orders of magnitude — with
    least-recently-used eviction until a new result fits; results larger
    than the whole cache are never admitted.  Catalog swaps invalidate by
    key prefix.  Thread-safe. *)

module Engine = Voodoo_engine.Engine

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  bytes : int;  (** currently held *)
  max_bytes : int;
}

(** [create ~max_bytes] — a cap of [0] disables caching entirely (nothing
    is ever admitted). *)
val create : max_bytes:int -> t

val find : t -> string -> Engine.rows option

val add : t -> string -> Engine.rows -> unit

(** [invalidate_prefix t p] drops every entry whose key starts with [p]
    (the service passes the old catalog generation's key prefix). *)
val invalidate_prefix : t -> string -> unit

val clear : t -> unit

val stats : t -> stats

(** The accounting estimate charged per result set. *)
val bytes_of_rows : Engine.rows -> int
