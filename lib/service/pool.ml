(** Multicore worker pool with a bounded admission queue (see the
    interface).  The worker/future machinery lives in
    {!Voodoo_core.Domain_pool} — shared with the executor's intra-query
    chunk fan-out — and this module layers the service's admission
    semantics and stats on top. *)

module D = Voodoo_core.Domain_pool

type 'a future = 'a D.future

let await = D.await
let resolved = D.resolved

type t = { core : D.t; queue_capacity : int }

type stats = {
  workers : int;
  queue_capacity : int;
  queued : int;
  running : int;
  submitted : int;
  completed : int;
  shed : int;
}

let default_workers = D.default_workers

let create ?(workers = default_workers ()) ~queue_capacity () =
  if workers < 1 then invalid_arg "Pool.create: need at least one worker";
  if queue_capacity < 1 then invalid_arg "Pool.create: need queue capacity >= 1";
  { core = D.create ~workers (); queue_capacity }

let submit (t : t) f = D.submit ~capacity:t.queue_capacity t.core f

let run t f =
  match submit t f with
  | Error `Queue_full -> Error `Queue_full
  | Error `Shutting_down -> Error `Shutting_down
  | Ok fut -> (
      match await fut with
      | Ok v -> Ok v
      | Error e -> Error (`Job_raised e))

let stats (t : t) =
  let c = D.counters t.core in
  {
    workers = c.D.workers;
    queue_capacity = t.queue_capacity;
    queued = c.D.queued;
    running = c.D.running;
    submitted = c.D.submitted;
    completed = c.D.completed;
    shed = c.D.shed;
  }

let shutdown (t : t) = D.shutdown t.core
