(** Multicore worker pool with a bounded admission queue (see the
    interface). *)

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : ('a, exn) result option;
}

let fulfil fut outcome =
  Mutex.lock fut.fm;
  fut.state <- Some outcome;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let resolved v =
  { fm = Mutex.create (); fc = Condition.create (); state = Some (Ok v) }

let await fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Some outcome ->
        Mutex.unlock fut.fm;
        outcome
    | None ->
        Condition.wait fut.fc fut.fm;
        wait ()
  in
  wait ()

type t = {
  m : Mutex.t;
  ready : Condition.t;
  (* a job computes its outcome, then returns the thunk that publishes it
     to the future — run after the completion counters are updated, so
     [await] returning implies [stats] already counts the job done *)
  jobs : (unit -> unit -> unit) Queue.t;
  queue_capacity : int;
  workers : int;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  mutable submitted : int;
  mutable shed : int;
  mutable completed : int;
  mutable running : int;
}

type stats = {
  workers : int;
  queue_capacity : int;
  queued : int;
  running : int;
  submitted : int;
  completed : int;
  shed : int;
}

let default_workers () = max 2 (min 8 (Domain.recommended_domain_count () - 1))

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.jobs && not t.stopping do
    Condition.wait t.ready t.m
  done;
  if Queue.is_empty t.jobs then Mutex.unlock t.m (* stopping, queue drained *)
  else begin
    let job = Queue.pop t.jobs in
    t.running <- t.running + 1;
    Mutex.unlock t.m;
    let publish = job () in
    Mutex.lock t.m;
    t.running <- t.running - 1;
    t.completed <- t.completed + 1;
    Mutex.unlock t.m;
    publish ();
    worker_loop t
  end

let create ?(workers = default_workers ()) ~queue_capacity () =
  if workers < 1 then invalid_arg "Pool.create: need at least one worker";
  if queue_capacity < 1 then invalid_arg "Pool.create: need queue capacity >= 1";
  let t =
    {
      m = Mutex.create ();
      ready = Condition.create ();
      jobs = Queue.create ();
      queue_capacity;
      workers;
      stopping = false;
      domains = [];
      submitted = 0;
      shed = 0;
      completed = 0;
      running = 0;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t f =
  Mutex.lock t.m;
  if t.stopping then begin
    t.shed <- t.shed + 1;
    Mutex.unlock t.m;
    Error `Shutting_down
  end
  else if Queue.length t.jobs >= t.queue_capacity then begin
    t.shed <- t.shed + 1;
    Mutex.unlock t.m;
    Error `Queue_full
  end
  else begin
    let fut = { fm = Mutex.create (); fc = Condition.create (); state = None } in
    Queue.add
      (fun () ->
        let outcome = match f () with v -> Ok v | exception e -> Error e in
        fun () -> fulfil fut outcome)
      t.jobs;
    t.submitted <- t.submitted + 1;
    Condition.signal t.ready;
    Mutex.unlock t.m;
    Ok fut
  end

let run t f =
  match submit t f with
  | Error _ as e -> e
  | Ok fut -> (
      match await fut with
      | Ok v -> Ok v
      | Error e -> Error (`Job_raised e))

let stats t =
  Mutex.lock t.m;
  let s =
    {
      workers = t.workers;
      queue_capacity = t.queue_capacity;
      queued = Queue.length t.jobs;
      running = t.running;
      submitted = t.submitted;
      completed = t.completed;
      shed = t.shed;
    }
  in
  Mutex.unlock t.m;
  s

let shutdown t =
  Mutex.lock t.m;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.ready;
    Mutex.unlock t.m;
    List.iter Domain.join t.domains;
    t.domains <- []
  end
  else Mutex.unlock t.m
