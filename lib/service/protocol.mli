(** The line-oriented wire protocol of [voodoo serve] / [voodoo client].

    Requests are single lines; responses are one line ([OK PREPARED …],
    [OK BYE], [ERR <stage>: <message>]) or a counted block ([OK ROWS <n>]
    / [OK STATS <n>] followed by that many payload lines and [END]).
    Scalar values round-trip exactly: ints in decimal, floats in hex
    float notation, ε as [e].  The full grammar is in
    [docs/SERVICE.md]. *)

open Voodoo_vector
module Engine = Voodoo_engine.Engine
module Verror = Voodoo_core.Verror

type request =
  | Prepare of string * string  (** statement name, SQL text *)
  | Exec of string
  | Sql of string
  | Query of string  (** named TPC-H query *)
  | Fragment of string
      (** opaque shard-fragment payload (hex-encoded restricted plan plus
          shipped temp tables, see [Voodoo_distrib.Fragment]); a worker
          answers with [Rows] *)
  | Stats
  | Ping  (** health check: answered inline, never queued *)
  | Close

type response =
  | Rows of Engine.rows
  | Prepared of string
  | Stats_reply of (string * float) list
  | Pong
  | Bye
  | Err of string * string  (** [Verror] stage name, one-line message *)

(** Safe to retry on a fresh connection after a transport failure?  True
    for everything except [Close]: queries are reads, re-[Prepare] of
    identical text is a plan-cache hit.  The client's retry/hedging logic
    ({!Server.Client.call}) refuses to retry non-idempotent requests. *)
val idempotent : request -> bool

val parse_request : string -> (request, string) result

val render_request : request -> string

(** A response as the exact lines to write. *)
val render_response : response -> string list

(** Typed error → wire error. *)
val err_of_verror : Verror.t -> response

(** [read_response next_line] consumes one full response from a line
    stream ([None] = peer hung up). *)
val read_response : (unit -> string option) -> (response, string) result

(** {2 Row wire form (exposed for tests)} *)

val render_row : (string * Scalar.t option) list -> string

val parse_row : string -> ((string * Scalar.t option) list, string) result
