(** The query service (see the interface). *)

open Voodoo_relational
module Engine = Voodoo_engine.Engine
module R = Voodoo_engine.Resilient
module Verror = Voodoo_core.Verror
module Budget = Voodoo_core.Budget
module Trace = Voodoo_core.Trace
module Q = Voodoo_tpch.Queries
module Plan_tune = Voodoo_tuner.Plan_tune
module Search = Voodoo_tuner.Search
module Vq = Voodoo_vsim.Query
module Vds = Voodoo_vsim.Dataset

type engine_mode = Direct | Resilient of R.policy

type config = {
  sf : float;
  seed : int;
  workers : int;
  queue_capacity : int;
  plan_cache_capacity : int;
  result_cache_bytes : int;
  budget : Budget.t;
  request_timeout_ms : float option;
  engine : engine_mode;
  jobs : int;
  lower_opts : Lower.options option;
  backend_opts : Voodoo_compiler.Codegen.options option;
  tune_after : int option;
  tune_budget_ms : float;
  tune_seed : int;
}

let default_config =
  {
    sf = 0.01;
    seed = 1;
    workers = Pool.default_workers ();
    queue_capacity = 64;
    plan_cache_capacity = 64;
    result_cache_bytes = 16 * 1024 * 1024;
    budget = Budget.unlimited;
    request_timeout_ms = None;
    engine = Direct;
    jobs = 1;
    lower_opts = None;
    backend_opts = None;
    tune_after = None;
    tune_budget_ms = 250.0;
    tune_seed = 42;
  }

(* Per-plan retuning state, keyed by the base plan key.  [execs] counts
   executions toward the [tune_after] threshold; [scheduled] latches so at
   most one background search ever runs per plan per generation; [tuned]
   is the repointed winner (None until a search finds a strict
   improvement).  All fields are guarded by the service mutex. *)
type tune_state = {
  mutable execs : int;
  mutable tuned : Engine.prepared option;
  mutable scheduled : bool;
}

type t = {
  config : config;
  registry : Catalogs.t;
  plans : Plan_cache.t;
  results : Result_cache.t;
  pool : Pool.t;
  opts_digest : string;  (** lower/codegen options part of every cache key *)
  tunes : (string, tune_state) Hashtbl.t;
  vsims : (string, Vds.t) Hashtbl.t;
      (** similarity datasets by name, guarded by [m] *)
  m : Mutex.t;
  mutable vsim_generation : int;
      (** bumped on (re)registration — the vsim analogue of the catalog
          generation, leading every vsim result-cache key *)
  mutable inflight : Budget.token;
      (** shared cancellation token of every in-flight execution; a drain
          cancels it and installs a fresh one *)
  mutable next_session : int;
  mutable sessions_opened : int;
  mutable sessions_live : int;
  mutable queries : int;
  mutable result_hits : int;
  mutable errors : int;
  mutable deadline_expired : int;
  mutable cancelled : int;
  mutable fast_path : int;
  mutable parallel : int;
  mutable tune_scheduled : int;
  mutable tune_completed : int;
  mutable tune_candidates : int;
  mutable tune_rejected : int;
  mutable tune_repointed : int;
}

type outcome = (Engine.rows, Verror.t) result

(* Internal: lets the plan evaluator inside a multi-phase query abort with
   a typed error instead of rows. *)
exception Service_error of Verror.t

let create ?registry (config : config) =
  let registry =
    match registry with Some r -> r | None -> Catalogs.create ()
  in
  {
    config;
    registry;
    plans = Plan_cache.create ~capacity:config.plan_cache_capacity;
    results = Result_cache.create ~max_bytes:config.result_cache_bytes;
    vsims = Hashtbl.create 4;
    vsim_generation = 0;
    pool = Pool.create ~workers:config.workers ~queue_capacity:config.queue_capacity ();
    opts_digest =
      Digest.to_hex
        (Digest.string
           (Marshal.to_string (config.lower_opts, config.backend_opts) []));
    tunes = Hashtbl.create 16;
    m = Mutex.create ();
    inflight = Budget.token ();
    next_session = 0;
    sessions_opened = 0;
    sessions_live = 0;
    queries = 0;
    result_hits = 0;
    errors = 0;
    deadline_expired = 0;
    cancelled = 0;
    fast_path = 0;
    parallel = 0;
    tune_scheduled = 0;
    tune_completed = 0;
    tune_candidates = 0;
    tune_rejected = 0;
    tune_repointed = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let shutdown t = Pool.shutdown t.pool

(* ---- cancellation / per-request budgets ---- *)

(* Cancel everything currently executing (cooperatively — workers notice
   at their next check point) and install a fresh token so later requests
   are unaffected.  Used by the server's drain path. *)
let cancel_inflight ?(reason = "server draining") t =
  locked t (fun () ->
      Budget.cancel ~reason t.inflight;
      t.inflight <- Budget.token ())

(* The budget one request runs under: the service-wide caps, the shared
   in-flight cancellation token, and — when a per-request or configured
   timeout applies — a wall-clock deadline that starts now, so time spent
   waiting in the admission queue counts against it. *)
let request_budget ?timeout_ms t =
  let b = locked t (fun () -> Budget.with_token t.config.budget t.inflight) in
  match
    (match timeout_ms with Some _ -> timeout_ms | None -> t.config.request_timeout_ms)
  with
  | Some ms -> Budget.deadline_in b ~ms
  | None -> b

(* ---- sessions ---- *)

let open_session ?sf ?seed t =
  let sf = Option.value sf ~default:t.config.sf in
  let seed = Option.value seed ~default:t.config.seed in
  (* make sure the shared catalog exists before the first query *)
  ignore (Catalogs.get t.registry ~seed ~sf ());
  locked t (fun () ->
      let id = t.next_session in
      t.next_session <- id + 1;
      t.sessions_opened <- t.sessions_opened + 1;
      t.sessions_live <- t.sessions_live + 1;
      Session.make ~id ~sf ~seed)

let close_session t (s : Session.t) =
  if not (Session.closed s) then begin
    Session.close s;
    locked t (fun () -> t.sessions_live <- t.sessions_live - 1)
  end

(* ---- cache keys (documented in docs/SERVICE.md) ---- *)

let engine_label t =
  match t.config.engine with Direct -> "direct" | Resilient _ -> "resilient"

let plan_key ?(variant = "base") t ~generation plan =
  Printf.sprintf "g%d|plan|%s|%s|e%s|j%d|v%s" generation
    (Digest.to_hex (Digest.string (Marshal.to_string (plan : Ra.t) [])))
    t.opts_digest (engine_label t) t.config.jobs variant

let sql_result_key t ~generation text =
  Printf.sprintf "g%d|sql|%s|%s" generation text t.opts_digest

let query_result_key t ~generation name =
  Printf.sprintf "g%d|query|%s|%s" generation name t.opts_digest

(* Similarity results are keyed on the canonical rendering of the parsed
   query (whitespace variants collapse; NPROBE/EXHAUSTIVE clauses are
   part of the text, so a reprobed request is a distinct entry), the vsim
   registration generation, the options digest (which covers the serving
   [nprobe] default inside [backend_opts]) and [jobs] — top-k is
   bit-identical at any job count, but keeping the dimension mirrors
   [plan_key] and costs one cache line. *)
let vsim_result_key t ~vgen (q : Vq.t) =
  Printf.sprintf "g%d|vsim|%s|%s|j%d" vgen (Vq.render q) t.opts_digest
    t.config.jobs

(* ---- execution core (runs on pool domains) ---- *)

let tune_variant = "tuned"

(* Background search over one prepared plan (runs on a pool domain,
   stealing only idle time — admission control still sheds under load).
   The objective is the calibrated cost model, so the search is cheap and
   deterministic; the search itself verifies every candidate bit-identical
   before it can win.  On a strict win the plan cache is repointed under
   the [tune_variant] key and [st.tuned] serves subsequent executions.
   No trace is threaded through: [Trace.t] is not thread-safe. *)
let schedule_tune t cat ~variant_key st prep =
  let job () =
    match
      Plan_tune.tune_prepared
        ~objective:(Search.Cost_model Voodoo_device.Config.cpu_simd)
        ~budget_ms:t.config.tune_budget_ms ~seed:t.config.tune_seed
        ~budget:t.config.budget cat prep
    with
    | tuned, report ->
        let rejected =
          List.length
            (List.filter
               (fun c -> c.Search.c_verdict = Search.Rejected)
               report.Search.candidates)
        in
        let won = report.Search.best_rules <> [] in
        if won then Plan_cache.replace t.plans variant_key tuned;
        locked t (fun () ->
            t.tune_completed <- t.tune_completed + 1;
            t.tune_candidates <-
              t.tune_candidates + List.length report.Search.candidates;
            t.tune_rejected <- t.tune_rejected + rejected;
            if won then begin
              t.tune_repointed <- t.tune_repointed + 1;
              st.tuned <- Some tuned
            end)
    | exception _ ->
        (* a failed search must not poison the plan: keep serving the
           incumbent and never retry (the latch stays set) *)
        locked t (fun () -> t.tune_completed <- t.tune_completed + 1)
  in
  match Pool.submit t.pool job with
  | Ok (_ : unit Pool.future) ->
      locked t (fun () -> t.tune_scheduled <- t.tune_scheduled + 1)
  | Error (`Queue_full | `Shutting_down) ->
      (* couldn't schedule now; unlatch so a later execution retries *)
      locked t (fun () -> st.scheduled <- false)

let get_or_prepare t ?trace (cat : Catalog.t) ~generation (plan : Ra.t) =
  let key = plan_key t ~generation plan in
  let tuned_now =
    if t.config.tune_after = None then None
    else
      locked t (fun () ->
          match Hashtbl.find_opt t.tunes key with
          | Some st ->
              st.execs <- st.execs + 1;
              st.tuned
          | None -> None)
  in
  match tuned_now with
  | Some p -> p
  | None ->
      let p =
        match Plan_cache.find t.plans key with
        | Some p -> p
        | None ->
            let p =
              Engine.prepare ?trace ?lower_opts:t.config.lower_opts
                ?backend_opts:t.config.backend_opts cat plan
            in
            Plan_cache.add t.plans key p;
            p
      in
      (match t.config.tune_after with
      | None -> ()
      | Some threshold -> (
          let to_schedule =
            locked t (fun () ->
                let st =
                  match Hashtbl.find_opt t.tunes key with
                  | Some st -> st
                  | None ->
                      let st = { execs = 1; tuned = None; scheduled = false } in
                      Hashtbl.replace t.tunes key st;
                      st
                in
                if st.execs >= threshold && not st.scheduled then begin
                  st.scheduled <- true;
                  Some st
                end
                else None)
          in
          match to_schedule with
          | None -> ()
          | Some st ->
              let variant_key =
                plan_key ~variant:tune_variant t ~generation plan
              in
              schedule_tune t cat ~variant_key st p));
      p

(* Fast-path policy for [Direct] dispatch (see docs/PARALLELISM.md):
   without a trace there is nothing to observe, so skip device simulation
   entirely (raw closures); and when the admission queue is idle the
   pool's spare domains are better spent inside this query, so chunk its
   extents across [config.jobs] domains.  Under a backlog, inter-query
   parallelism wins: run each query on one domain. *)
let pick_exec t ?trace () =
  let instrument = Option.is_some trace in
  let idle = (Pool.stats t.pool).Pool.queued = 0 in
  let jobs = if idle then max 1 t.config.jobs else 1 in
  locked t (fun () ->
      if not instrument then t.fast_path <- t.fast_path + 1;
      if jobs > 1 then t.parallel <- t.parallel + 1);
  Voodoo_compiler.Codegen.Closure { instrument; jobs }

let run_prepared t ?trace ~budget cat (p : Engine.prepared) : outcome =
  match t.config.engine with
  | Direct -> (
      let exec = pick_exec t ?trace () in
      match Engine.run_prepared ?trace ~budget ~exec cat p with
      | rows -> Ok rows
      | exception e -> Error (R.classify R.Compiled e))
  | Resilient policy -> (
      match R.execute_prepared ?trace { policy with R.budget } cat p with
      | Ok (rows, _report) -> Ok rows
      | Error e -> Error e)

(* Time-based Resource errors get their own counters (the bench and the
   drain path read them); the message prefixes are {!Budget.check_time}'s. *)
let count_outcome t (o : outcome) =
  locked t (fun () ->
      match o with
      | Ok _ -> ()
      | Error e ->
          t.errors <- t.errors + 1;
          if e.Verror.stage = Verror.Resource then begin
            if String.starts_with ~prefix:"deadline exceeded" e.Verror.message
            then t.deadline_expired <- t.deadline_expired + 1
            else if String.starts_with ~prefix:"cancelled" e.Verror.message
            then t.cancelled <- t.cancelled + 1
          end);
  o

(* One plan, straight through: plan cache, then execute under the budget. *)
let plan_job t ?trace ~budget ~result_key ~generation ~cat plan () : outcome =
  count_outcome t
    (match
       let p = get_or_prepare t ?trace cat ~generation plan in
       run_prepared t ?trace ~budget cat p
     with
    | Ok rows ->
        Result_cache.add t.results result_key rows;
        Ok rows
    | Error e -> Error e
    | exception e -> Error (R.classify R.Compiled e))

(* A named multi-phase TPC-H query: every phase's plan goes through the
   plan cache; the whole run happens on a catalog fork so temp-table
   registration (Q20) cannot race with other domains. *)
let named_query_job t ?trace ~budget ~result_key ~generation ~cat (q : Q.t) () :
    outcome =
  count_outcome t
    (let forked = Catalogs.fork cat in
     let eval c p =
       let prep = get_or_prepare t ?trace c ~generation p in
       match run_prepared t ?trace ~budget c prep with
       | Ok rows -> rows
       | Error e -> raise (Service_error e)
     in
     match q.Q.run eval forked with
     | rows ->
         Result_cache.add t.results result_key rows;
         Ok rows
     | exception Service_error e -> Error e
     | exception e -> Error (R.classify R.Compiled e))

(* ---- admission control ---- *)

let shed_error t =
  let s = Pool.stats t.pool in
  Verror.makef Verror.Resource
    "admission control: queue full (%d queued, capacity %d) — request shed"
    s.Pool.queued s.Pool.queue_capacity

let submit t job : outcome Pool.future =
  match Pool.submit t.pool job with
  | Ok fut -> fut
  | Error `Queue_full ->
      Pool.resolved (count_outcome t (Error (shed_error t)))
  | Error `Shutting_down ->
      Pool.resolved
        (count_outcome t
           (Error (Verror.make Verror.Resource "service is shutting down")))

let await (fut : outcome Pool.future) : outcome =
  match Pool.await fut with
  | Ok outcome -> outcome
  | Error e -> Error (R.classify R.Compiled e)

(* ---- request bookkeeping shared by every front door ---- *)

let entry_for t (s : Session.t) =
  Catalogs.get t.registry ~seed:s.Session.seed ~sf:s.Session.sf ()

let begin_request t (s : Session.t) =
  Session.count_execution s;
  locked t (fun () -> t.queries <- t.queries + 1)

let cached_answer t key =
  match Result_cache.find t.results key with
  | Some rows ->
      locked t (fun () -> t.result_hits <- t.result_hits + 1);
      Some rows
  | None -> None

let closed_error (s : Session.t) =
  Verror.makef Verror.Parse "session %d is closed" s.Session.id

let parse_sql (cat : Catalog.t) text : (Ra.t, Verror.t) result =
  match Sql.plan cat text with
  | plan -> Ok plan
  | exception Sql.Sql_error m -> Error (Verror.make Verror.Parse m)
  | exception e -> Error (R.classify R.Compiled e)

(* ---- vector-similarity front door (docs/VSIM.md) ---- *)

let register_vsim t (d : Vds.t) =
  locked t (fun () ->
      Hashtbl.replace t.vsims d.Vds.name d;
      t.vsim_generation <- t.vsim_generation + 1)

let vsim_datasets t =
  locked t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.vsims [])
  |> List.sort String.compare

let vsim_rows (entries : Voodoo_vsim.Topk.entry list) : Engine.rows =
  List.map
    (fun (e : Voodoo_vsim.Topk.entry) ->
      [
        ("row", Some (Voodoo_vector.Scalar.I e.Voodoo_vsim.Topk.row));
        ("score", Some (Voodoo_vector.Scalar.F e.Voodoo_vsim.Topk.score));
      ])
    entries

(* One similarity search, straight through.  The plan cache's job is done
   inside the dataset's IVF index (distance programs compile once per
   (metric, partition scope) and are rebound to each query vector), so
   this job only wires the request budget — checked between probe
   partitions, so deadlines and drain cancel mid-search — the result
   cache, and the counters.  [pick_exec] runs on the pool domain, where
   queue idleness decides intra-query chunking, same as SQL. *)
let vsim_job t ~budget ~result_key (d : Vds.t) (q : Vq.t) () : outcome =
  count_outcome t
    (match
       let exec = pick_exec t () in
       let nprobe =
         Option.map
           (fun (o : Voodoo_compiler.Codegen.options) ->
             o.Voodoo_compiler.Codegen.nprobe)
           t.config.backend_opts
       in
       Vds.answer ~budget ~exec ?nprobe d q
     with
    | Ok entries ->
        let rows = vsim_rows entries in
        Result_cache.add t.results result_key rows;
        Ok rows
    | Error m -> Error (Verror.make Verror.Parse m)
    | exception e -> Error (R.classify R.Compiled e))

let vsim_async ?timeout_ms t (s : Session.t) text : outcome Pool.future =
  begin_request t s;
  match Vq.parse text with
  | Error m ->
      Pool.resolved (count_outcome t (Error (Verror.make Verror.Parse m)))
  | Ok q -> (
      let d, vgen =
        locked t (fun () ->
            (Hashtbl.find_opt t.vsims q.Vq.dataset, t.vsim_generation))
      in
      match d with
      | None ->
          Pool.resolved
            (count_outcome t
               (Error
                  (Verror.makef Verror.Parse
                     "unknown similarity dataset %S (registered: %s)"
                     q.Vq.dataset
                     (match vsim_datasets t with
                     | [] -> "none"
                     | ds -> String.concat ", " ds))))
      | Some d -> (
          let result_key = vsim_result_key t ~vgen q in
          match cached_answer t result_key with
          | Some rows -> Pool.resolved (Ok rows)
          | None ->
              let budget = request_budget ?timeout_ms t in
              submit t (vsim_job t ~budget ~result_key d q)))

(* ---- front doors ---- *)

let sql_async ?trace ?timeout_ms t (s : Session.t) text : outcome Pool.future =
  if Session.closed s then
    Pool.resolved (count_outcome t (Error (closed_error s)))
  else if Vq.is_similarity text then vsim_async ?timeout_ms t s text
  else begin
  begin_request t s;
  let entry = entry_for t s in
  let generation = entry.Catalogs.generation in
  match parse_sql entry.Catalogs.cat text with
  | Error e -> Pool.resolved (count_outcome t (Error e))
  | Ok plan -> (
      let result_key = sql_result_key t ~generation text in
      match cached_answer t result_key with
      | Some rows -> Pool.resolved (Ok rows)
      | None ->
          let budget = request_budget ?timeout_ms t in
          submit t
            (plan_job t ?trace ~budget ~result_key ~generation
               ~cat:entry.Catalogs.cat plan))
  end

let prepare ?trace t (s : Session.t) ~name text : (unit, Verror.t) result =
  if Session.closed s then begin
    ignore (count_outcome t (Error (closed_error s)));
    Error (closed_error s)
  end
  else
  let entry = entry_for t s in
  let generation = entry.Catalogs.generation in
  match parse_sql entry.Catalogs.cat text with
  | Error e ->
      ignore (count_outcome t (Error e));
      Error e
  | Ok plan -> (
      Session.put_stmt s ~name ~sql:text ~plan ~generation;
      (* compile eagerly through the plan cache: EXEC becomes pure
         execution, and re-PREPARE of identical text is a cache hit *)
      match get_or_prepare t ?trace entry.Catalogs.cat ~generation plan with
      | (_ : Engine.prepared) -> Ok ()
      | exception e ->
          let err = R.classify R.Compiled e in
          ignore (count_outcome t (Error err));
          Error err)

let exec_async ?trace ?timeout_ms t (s : Session.t) name : outcome Pool.future =
  if Session.closed s then
    Pool.resolved (count_outcome t (Error (closed_error s)))
  else begin
  begin_request t s;
  let entry = entry_for t s in
  let generation = entry.Catalogs.generation in
  match Session.find_stmt s name with
  | None ->
      Pool.resolved
        (count_outcome t
           (Error
              (Verror.makef Verror.Parse "no prepared statement named %S" name)))
  | Some stmt -> (
      (* a swapped catalog invalidates the stored plan: literals resolve
         to dictionary codes at planning time *)
      let replanned =
        if stmt.Session.planned_generation <> generation then
          match parse_sql entry.Catalogs.cat stmt.Session.sql with
          | Ok plan ->
              Session.restmt s stmt ~plan ~generation;
              Ok ()
          | Error e -> Error e
        else Ok ()
      in
      match replanned with
      | Error e -> Pool.resolved (count_outcome t (Error e))
      | Ok () -> (
          let result_key = sql_result_key t ~generation stmt.Session.sql in
          match cached_answer t result_key with
          | Some rows -> Pool.resolved (Ok rows)
          | None ->
              let budget = request_budget ?timeout_ms t in
              submit t
                (plan_job t ?trace ~budget ~result_key ~generation
                   ~cat:entry.Catalogs.cat stmt.Session.plan)))
  end

let query_async ?trace ?timeout_ms t (s : Session.t) name : outcome Pool.future =
  if Session.closed s then
    Pool.resolved (count_outcome t (Error (closed_error s)))
  else begin
  begin_request t s;
  let entry = entry_for t s in
  let generation = entry.Catalogs.generation in
  match Q.find ~sf:s.Session.sf name with
  | None ->
      Pool.resolved
        (count_outcome t
           (Error
              (Verror.makef Verror.Parse "unknown query %s (have: %s)" name
                 (String.concat ", " Q.cpu_figure13))))
  | Some q -> (
      let result_key = query_result_key t ~generation name in
      match cached_answer t result_key with
      | Some rows -> Pool.resolved (Ok rows)
      | None ->
          let budget = request_budget ?timeout_ms t in
          submit t
            (named_query_job t ?trace ~budget ~result_key ~generation
               ~cat:entry.Catalogs.cat q))
  end

(* Raw-plan door for shard fragments (no session, no SQL text): the plan
   arrives over the wire already restricted to the shard's rows, runs on a
   caller-supplied catalog (the worker's row-id-augmented base catalog, or
   a fork of it carrying shipped temp tables), and goes through the same
   admission control, deadline budget and plan cache as every other
   request.  [cache_key] is the caller's digest of the fragment payload:
   identical fragments (plan + temp-table contents) reuse the prepared
   artifact, so the compile cost is paid once per distinct fragment. *)
let plan_async ?trace ?timeout_ms ?cache_key t ~cat (plan : Ra.t) :
    outcome Pool.future =
  locked t (fun () -> t.queries <- t.queries + 1);
  let budget = request_budget ?timeout_ms t in
  let prepare_now () =
    Engine.prepare ?trace ?lower_opts:t.config.lower_opts
      ?backend_opts:t.config.backend_opts cat plan
  in
  let job () =
    count_outcome t
      (match
         let p =
           match cache_key with
           | None -> prepare_now ()
           | Some key -> (
               match Plan_cache.find t.plans key with
               | Some p -> p
               | None ->
                   let p = prepare_now () in
                   Plan_cache.add t.plans key p;
                   p)
         in
         run_prepared t ?trace ~budget cat p
       with
      | outcome -> outcome
      | exception e -> Error (R.classify R.Compiled e))
  in
  submit t job

let run_plan ?trace ?timeout_ms ?cache_key t ~cat plan =
  await (plan_async ?trace ?timeout_ms ?cache_key t ~cat plan)

let sql ?trace ?timeout_ms t s text = await (sql_async ?trace ?timeout_ms t s text)
let exec ?trace ?timeout_ms t s name = await (exec_async ?trace ?timeout_ms t s name)
let query ?trace ?timeout_ms t s name = await (query_async ?trace ?timeout_ms t s name)

(* ---- catalog swaps ---- *)

let refresh_catalog ?seed ~sf t =
  let seed = Option.value seed ~default:t.config.seed in
  let old = Catalogs.get t.registry ~seed ~sf () in
  let fresh = Catalogs.refresh t.registry ~seed ~sf () in
  let prefix = Printf.sprintf "g%d|" old.Catalogs.generation in
  Result_cache.invalidate_prefix t.results prefix;
  Plan_cache.invalidate_prefix t.plans prefix;
  locked t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun key _ acc ->
            if String.starts_with ~prefix key then key :: acc else acc)
          t.tunes []
      in
      List.iter (Hashtbl.remove t.tunes) doomed);
  fresh

(* ---- stats ---- *)

type stats = {
  sessions_opened : int;
  sessions_live : int;
  queries : int;
  result_hits : int;
  errors : int;
  deadline_expired : int;
  cancelled : int;
  fast_path : int;
  parallel : int;
  fold_fused : int;
  fold_parallel_chunks : int;
  vsim_searches : int;
  vsim_probes : int;
  vsim_probes_skipped : int;
  topk_folds : int;
  topk_chunks : int;
  tune_scheduled : int;
  tune_completed : int;
  tune_candidates : int;
  tune_rejected : int;
  tune_repointed : int;
  plan_cache : Plan_cache.stats;
  result_cache : Result_cache.stats;
  pool : Pool.stats;
}

let stats t =
  let mk =
    locked t (fun () ->
        let ( sessions_opened, sessions_live, queries, result_hits, errors,
              fast_path, parallel ) =
          ( t.sessions_opened, t.sessions_live, t.queries, t.result_hits,
            t.errors, t.fast_path, t.parallel )
        and deadline_expired, cancelled = (t.deadline_expired, t.cancelled)
        and tune_scheduled, tune_completed, tune_candidates, tune_rejected,
            tune_repointed =
          ( t.tune_scheduled, t.tune_completed, t.tune_candidates,
            t.tune_rejected, t.tune_repointed )
        in
        fun ~plan_cache ~result_cache ~pool ->
          {
            sessions_opened;
            sessions_live;
            queries;
            result_hits;
            errors;
            deadline_expired;
            cancelled;
            fast_path;
            parallel;
            (* process-wide atomics, not under the service lock: raw
               grouped folds that streamed fused, and the chunks their
               fragments actually split into *)
            fold_fused = Voodoo_compiler.Exec_stats.fold_fused ();
            fold_parallel_chunks =
              Voodoo_compiler.Exec_stats.fold_parallel_chunks ();
            vsim_searches = Voodoo_vsim.Stats.searches ();
            vsim_probes = Voodoo_vsim.Stats.probes ();
            vsim_probes_skipped = Voodoo_vsim.Stats.probes_skipped ();
            topk_folds = Voodoo_vsim.Stats.topk_folds ();
            topk_chunks = Voodoo_vsim.Stats.topk_chunks ();
            tune_scheduled;
            tune_completed;
            tune_candidates;
            tune_rejected;
            tune_repointed;
            plan_cache;
            result_cache;
            pool;
          })
  in
  mk ~plan_cache:(Plan_cache.stats t.plans)
    ~result_cache:(Result_cache.stats t.results) ~pool:(Pool.stats t.pool)

let stats_fields (s : stats) : (string * float) list =
  let f = float_of_int in
  [
    ("sessions.opened", f s.sessions_opened);
    ("sessions.live", f s.sessions_live);
    ("queries.answered", f s.queries);
    ("queries.errors", f s.errors);
    ("queries.deadline_expired", f s.deadline_expired);
    ("queries.cancelled", f s.cancelled);
    ("exec.fast_path", f s.fast_path);
    ("exec.parallel", f s.parallel);
    ("fold.fused", f s.fold_fused);
    ("fold.parallel_chunks", f s.fold_parallel_chunks);
    ("fold.topk", f s.topk_folds);
    ("fold.topk_chunks", f s.topk_chunks);
    ("vsim.searches", f s.vsim_searches);
    ("vsim.probes", f s.vsim_probes);
    ("vsim.probes_skipped", f s.vsim_probes_skipped);
    ("tune.scheduled", f s.tune_scheduled);
    ("tune.completed", f s.tune_completed);
    ("tune.candidates", f s.tune_candidates);
    ("tune.rejected", f s.tune_rejected);
    ("tune.repointed", f s.tune_repointed);
    ("result_cache.hits", f (s.result_cache.Result_cache.hits));
    ("result_cache.misses", f (s.result_cache.Result_cache.misses));
    ("result_cache.evictions", f (s.result_cache.Result_cache.evictions));
    ("result_cache.invalidations", f (s.result_cache.Result_cache.invalidations));
    ("result_cache.entries", f (s.result_cache.Result_cache.entries));
    ("result_cache.bytes", f (s.result_cache.Result_cache.bytes));
    ("result_cache.max_bytes", f (s.result_cache.Result_cache.max_bytes));
    ("plan_cache.hits", f (s.plan_cache.Plan_cache.hits));
    ("plan_cache.misses", f (s.plan_cache.Plan_cache.misses));
    ("plan_cache.evictions", f (s.plan_cache.Plan_cache.evictions));
    ("plan_cache.entries", f (s.plan_cache.Plan_cache.entries));
    ("pool.workers", f (s.pool.Pool.workers));
    ("pool.queue_capacity", f (s.pool.Pool.queue_capacity));
    ("pool.queued", f (s.pool.Pool.queued));
    ("pool.running", f (s.pool.Pool.running));
    ("pool.submitted", f (s.pool.Pool.submitted));
    ("pool.completed", f (s.pool.Pool.completed));
    ("pool.shed", f (s.pool.Pool.shed));
  ]
