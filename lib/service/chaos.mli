(** A seeded, deterministic socket-level chaos proxy.

    The proxy listens on one address and forwards byte streams to an
    upstream {!Server} — except when it doesn't: a seeded RNG assigns
    each accepted connection a fault (drop on connect, stall then hang
    up, answer with a garbage frame, kill the connection mid-response,
    trickle the response a byte at a time, or pass it through clean).
    Same seed, same connection order → same fault sequence, so a soak
    test over it is reproducible.

    Faults are {e transport}-level only: the upstream server never sees
    a malformed request it didn't receive, and a passed-through
    connection is byte-identical to a direct one.  The client's
    retry/hedging logic ({!Server.Client.call}) is what turns these
    faults back into answers.  See [docs/ROBUSTNESS.md]. *)

(** Relative weights for the per-connection fault draw (all
    non-negative, at least one positive). *)
type weights = {
  w_pass : int;  (** clean byte-for-byte relay *)
  w_drop_connect : int;  (** close immediately, before any byte *)
  w_stall : int;  (** sit silent for [stall_ms], then hang up *)
  w_garbage : int;  (** answer one unparseable frame, then hang up *)
  w_kill : int;  (** relay, but cut the response off after a few bytes *)
  w_trickle : int;  (** relay the response one byte at a time (must still succeed) *)
}

(** pass 6 : drop 1 : stall 1 : garbage 1 : kill 1 : trickle 2 *)
val default_weights : weights

type stats = {
  conns : int;  (** connections accepted *)
  passed : int;
  dropped : int;
  stalled : int;
  garbled : int;
  killed : int;
  trickled : int;
}

type t

(** [start ~upstream ~listen ()] binds [listen] and begins proxying to
    [upstream].  [seed] fixes the fault sequence; [stall_ms] is the
    silent period of a stalled connection (default 200 ms, keep it above
    the client's timeout or below it — either way the client errors). *)
val start :
  ?seed:int ->
  ?weights:weights ->
  ?stall_ms:float ->
  upstream:Server.addr ->
  listen:Server.addr ->
  unit ->
  t

(** Close the listener, disconnect every in-flight proxied connection,
    join all relay threads, remove a Unix socket path.  Idempotent. *)
val stop : t -> unit

val stats : t -> stats
