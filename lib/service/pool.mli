(** Multicore worker pool: the first concurrent code path in the repo.

    A fixed set of OCaml 5 domains drains a bounded FIFO job queue.  The
    bound {e is} the admission-control mechanism: a submission that finds
    the queue full is rejected immediately ([`Queue_full], counted as
    shed) rather than queued without limit — the service layer turns that
    into a typed [Resource]-stage {!Voodoo_core.Verror.t}.  Queries
    executing on pool domains never share mutable state: each job runs
    against immutable prepared plans and per-execution catalog forks
    ({!Catalogs.fork}). *)

(** A write-once cell fulfilled by the worker that runs the job. *)
type 'a future

(** Block until the job finishes; [Error e] re-surfaces the exception the
    job raised (typed budget/fault errors included). *)
val await : 'a future -> ('a, exn) result

(** An already-fulfilled future (how the service represents a request that
    was answered — or rejected — without reaching the pool). *)
val resolved : 'a -> 'a future

type t

type stats = {
  workers : int;
  queue_capacity : int;
  queued : int;  (** jobs waiting right now *)
  running : int;  (** jobs executing right now *)
  submitted : int;  (** admitted since creation *)
  completed : int;
  shed : int;  (** rejected by admission control *)
}

(** Default worker count: [recommended_domain_count - 1] clamped to
    [2..8] — leave one core to the submitting thread. *)
val default_workers : unit -> int

val create : ?workers:int -> queue_capacity:int -> unit -> t

(** [submit t f] enqueues [f] unless the queue is at capacity. *)
val submit :
  t -> (unit -> 'a) -> ('a future, [ `Queue_full | `Shutting_down ]) result

(** [run t f] is submit-then-await. *)
val run :
  t ->
  (unit -> 'a) ->
  ('a, [ `Queue_full | `Shutting_down | `Job_raised of exn ]) result

val stats : t -> stats

(** Drain the queue, stop and join every domain.  Idempotent. *)
val shutdown : t -> unit
