(** The catalog registry: one [Dbgen.generate] per (scale factor, seed),
    ever (see the interface). *)

open Voodoo_relational
module Store = Voodoo_core.Store

type entry = {
  cat : Catalog.t;
  sf : float;
  seed : int;
  generation : int;
}

type t = {
  m : Mutex.t;
  tbl : (float * int, entry) Hashtbl.t;
  mutable next_generation : int;
}

let create () = { m = Mutex.create (); tbl = Hashtbl.create 4; next_generation = 0 }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Generation is taken under the lock but the (expensive) generate runs
   outside it only in principle; dbgen is deterministic and registries are
   small, so holding the lock across generation keeps the memoization
   race-free: two concurrent [get]s of a new key yield one catalog. *)
let fresh_entry t ~sf ~seed =
  let generation = t.next_generation in
  t.next_generation <- generation + 1;
  let cat = Voodoo_tpch.Dbgen.generate ~sf ~seed () in
  { cat; sf; seed; generation }

let get t ?(seed = 1) ~sf () =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl (sf, seed) with
      | Some e -> e
      | None ->
          let e = fresh_entry t ~sf ~seed in
          Hashtbl.replace t.tbl (sf, seed) e;
          e)

let refresh t ?(seed = 1) ~sf () =
  locked t (fun () ->
      let e = fresh_entry t ~sf ~seed in
      Hashtbl.replace t.tbl (sf, seed) e;
      e)

let register t ?(seed = 1) ~sf cat () =
  locked t (fun () ->
      let generation = t.next_generation in
      t.next_generation <- generation + 1;
      let e = { cat; sf; seed; generation } in
      Hashtbl.replace t.tbl (sf, seed) e;
      e)

let generation (e : entry) = e.generation

let default = lazy (create ())

let shared () = Lazy.force default

(* A shallow fork: the tables association list is shared by value (the
   fork's own mutable head), the store hashtable is copied entry-by-entry
   (the column vectors themselves are shared read-only).  Registering a
   temp table on the fork (TPC-H Q20's inner aggregate) therefore never
   mutates state another domain can see. *)
let fork (cat : Catalog.t) : Catalog.t =
  let store = Store.create () in
  List.iter
    (fun name -> Store.add store name (Store.find_exn cat.store name))
    (Store.names cat.store);
  { Catalog.tables = cat.tables; store }
