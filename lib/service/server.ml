(** Socket front door and client (see the interface). *)

module P = Protocol

type addr = Unix_socket of string | Tcp of string * int

let sockaddr_of_addr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.ADDR_INET (ip, port)

let pp_addr ppf = function
  | Unix_socket path -> Fmt.pf ppf "unix:%s" path
  | Tcp (host, port) -> Fmt.pf ppf "tcp:%s:%d" host port

(* ---- request dispatch: one connection = one session ---- *)

let handle_request service session (req : P.request) : P.response * bool =
  let rows_or_err = function
    | Ok rows -> P.Rows rows
    | Error e -> P.err_of_verror e
  in
  match req with
  | P.Prepare (name, sql) -> (
      match Service.prepare service session ~name sql with
      | Ok () -> (P.Prepared name, true)
      | Error e -> (P.err_of_verror e, true))
  | P.Exec name -> (rows_or_err (Service.exec service session name), true)
  | P.Sql text -> (rows_or_err (Service.sql service session text), true)
  | P.Query name -> (rows_or_err (Service.query service session name), true)
  | P.Stats -> (P.Stats_reply (Service.stats_fields (Service.stats service)), true)
  | P.Close -> (P.Bye, false)

let write_response oc response =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (P.render_response response);
  flush oc

let handle_connection service fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let session = Service.open_session service in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
        let response, continue =
          match P.parse_request line with
          | Ok req -> handle_request service session req
          | Error msg -> (P.Err ("parse", msg), true)
        in
        (match write_response oc response with
        | () -> if continue then loop ()
        | exception Sys_error _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      Service.close_session service session;
      try Unix.close fd with Unix.Unix_error _ -> ())
    loop

(* ---- the accept loop ---- *)

type t = {
  listener : Unix.file_descr;
  addr : addr;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
}

let bind_listener addr =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | (_ : Sys.signal_behavior) -> ()
  | exception Invalid_argument _ -> () (* no SIGPIPE on this platform *));
  (match addr with
  | Unix_socket path when Sys.file_exists path -> Sys.remove path
  | _ -> ());
  let domain =
    match addr with Unix_socket _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (sockaddr_of_addr addr);
  Unix.listen fd 64;
  fd

let start ~service addr =
  let listener = bind_listener addr in
  let t = { listener; addr; stopping = false; accept_thread = None } in
  let accept_loop () =
    let rec go () =
      match Unix.accept t.listener with
      | fd, _peer ->
          if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
          else begin
            ignore
              (Thread.create
                 (fun () ->
                   try handle_connection service fd
                   with e ->
                     if not t.stopping then
                       Logs.warn (fun m ->
                           m "connection handler died: %s" (Printexc.to_string e)))
                 ());
            go ()
          end
      | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
          () (* stopped *)
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
    in
    go ()
  in
  t.accept_thread <- Some (Thread.create accept_loop ());
  t

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (* A blocked [accept] is not interrupted by closing the fd on Linux:
       shut the listener down (wakes it with EINVAL), and as a fallback
       poke it with a throwaway connection the loop discards. *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try
       let domain =
         match t.addr with
         | Unix_socket _ -> Unix.PF_UNIX
         | Tcp _ -> Unix.PF_INET
       in
       let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
       (try Unix.connect sock (sockaddr_of_addr t.addr)
        with Unix.Unix_error _ -> ());
       try Unix.close sock with Unix.Unix_error _ -> ()
     with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    match t.addr with
    | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ()
  end

let serve_forever ~service addr =
  let t = start ~service addr in
  match t.accept_thread with Some th -> Thread.join th | None -> ()

(* ---- client ---- *)

module Client = struct
  type conn = { ic : in_channel; oc : out_channel }

  let connect ?(retries = 0) addr =
    let sockaddr = sockaddr_of_addr addr in
    let rec go attempt =
      match Unix.open_connection sockaddr with
      | ic, oc -> { ic; oc }
      | exception (Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) as e) ->
          if attempt >= retries then raise e
          else begin
            Thread.delay 0.05;
            go (attempt + 1)
          end
    in
    go 0

  let request conn req : (P.response, string) result =
    output_string conn.oc (P.render_request req);
    output_char conn.oc '\n';
    flush conn.oc;
    P.read_response (fun () ->
        match input_line conn.ic with
        | line -> Some line
        | exception End_of_file -> None)

  let close conn =
    (try
       output_string conn.oc (P.render_request P.Close);
       output_char conn.oc '\n';
       flush conn.oc
     with Sys_error _ -> ());
    try close_in conn.ic with Sys_error _ -> ()
end
