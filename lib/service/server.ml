(** Socket front door and client (see the interface). *)

module P = Protocol
module Budget = Voodoo_core.Budget

type addr = Unix_socket of string | Tcp of string * int

exception Address_error of string

let sockaddr_of_addr = function
  | Unix_socket path -> Unix.ADDR_UNIX path
  | Tcp (host, port) -> (
      match Unix.inet_addr_of_string host with
      | ip -> Unix.ADDR_INET (ip, port)
      | exception _ -> (
          match
            Unix.getaddrinfo host (string_of_int port)
              [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
          with
          | { Unix.ai_addr; _ } :: _ -> ai_addr
          | [] ->
              raise
                (Address_error
                   (Printf.sprintf "cannot resolve host %S (port %d)" host port))
          | exception Unix.Unix_error (e, _, _) ->
              raise
                (Address_error
                   (Printf.sprintf "cannot resolve host %S: %s" host
                      (Unix.error_message e)))))

let pp_addr ppf = function
  | Unix_socket path -> Fmt.pf ppf "unix:%s" path
  | Tcp (host, port) -> Fmt.pf ppf "tcp:%s:%d" host port

(* ---- raw fd I/O: bounded line reader, full writes ----

   Channels buffer without bound ([input_line] happily accumulates a
   gigabyte of garbage) and double-close the fd; everything here reads
   and writes the descriptor directly. *)

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd s off len

type reader = {
  r_fd : Unix.file_descr;
  r_buf : Bytes.t;
  mutable r_lo : int;
  mutable r_hi : int;
  r_max_line : int;
}

type line = Line of string | Too_long | Eof | Timed_out

let make_reader ?(max_line = 64 * 1024) fd =
  { r_fd = fd; r_buf = Bytes.create 8192; r_lo = 0; r_hi = 0; r_max_line = max_line }

(* One line, newline stripped.  [Too_long] consumes through the
   terminating newline, so the connection stays framed.  [Timed_out]
   surfaces SO_RCVTIMEO expiry (the idle reaper / client timeout). *)
let read_line (r : reader) : line =
  let acc = Buffer.create 128 in
  let overflowed = ref false in
  let take n =
    if not !overflowed then begin
      if Buffer.length acc + n > r.r_max_line then overflowed := true
      else Buffer.add_subbytes acc r.r_buf r.r_lo n
    end
  in
  let rec go () =
    if r.r_lo >= r.r_hi then
      match Unix.read r.r_fd r.r_buf 0 (Bytes.length r.r_buf) with
      | 0 -> Eof (* a partial unterminated line is dropped with the peer *)
      | n ->
          r.r_lo <- 0;
          r.r_hi <- n;
          go ()
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> Timed_out
      | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> Eof
    else
      match Bytes.index_from_opt r.r_buf r.r_lo '\n' with
      | Some i when i < r.r_hi ->
          take (i - r.r_lo);
          r.r_lo <- i + 1;
          if !overflowed then Too_long else Line (Buffer.contents acc)
      | _ ->
          take (r.r_hi - r.r_lo);
          r.r_lo <- r.r_hi;
          go ()
  in
  go ()

let send_response fd response =
  let payload =
    String.concat "" (List.map (fun l -> l ^ "\n") (P.render_response response))
  in
  write_all fd payload 0 (String.length payload)

(* ---- server options ---- *)

type options = {
  request_timeout_ms : float option;
  idle_timeout_ms : float option;
  max_conns : int option;
  max_line_bytes : int;
  drain_ms : float;
}

let default_options =
  {
    request_timeout_ms = None;
    idle_timeout_ms = None;
    max_conns = None;
    max_line_bytes = 64 * 1024;
    drain_ms = 1_000.0;
  }

(* ---- connection registry ---- *)

type conn = {
  c_fd : Unix.file_descr;
  mutable c_busy : bool;  (** mid-request: drain waits for these *)
  mutable c_thread : Thread.t option;
}

type state = Running | Stopping | Stopped

(** A pluggable dispatcher consulted before the built-in [Service]
    dispatch: [Some (response, keep_going)] answers the request, [None]
    falls through.  Lets a shard worker answer [FRAGMENT] and a
    coordinator scatter [SQL]/[QUERY] while everything else (sessions,
    stats, ping, drain) stays stock. *)
type handler = Session.t -> Protocol.request -> (Protocol.response * bool) option

type t = {
  listener : Unix.file_descr;
  addr : addr;
  service : Service.t;
  handler : handler option;
  opts : options;
  m : Mutex.t;
  mutable state : state;
  mutable accept_thread : Thread.t option;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable opened : int;
  mutable rejected : int;
  mutable idle_reaped : int;
  mutable oversized : int;
  mutable handled : int;
  mutable drain_forced : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

type stats = {
  conns_opened : int;
  conns_live : int;
  conns_rejected : int;
  conns_idle_reaped : int;
  requests_oversized : int;
  requests_handled : int;
  drains_forced : int;
}

let stats t =
  locked t (fun () ->
      {
        conns_opened = t.opened;
        conns_live = Hashtbl.length t.conns;
        conns_rejected = t.rejected;
        conns_idle_reaped = t.idle_reaped;
        requests_oversized = t.oversized;
        requests_handled = t.handled;
        drains_forced = t.drain_forced;
      })

let stats_fields (s : stats) : (string * float) list =
  let f = float_of_int in
  [
    ("server.conns.opened", f s.conns_opened);
    ("server.conns.live", f s.conns_live);
    ("server.conns.rejected", f s.conns_rejected);
    ("server.conns.idle_reaped", f s.conns_idle_reaped);
    ("server.requests.oversized", f s.requests_oversized);
    ("server.requests.handled", f s.requests_handled);
    ("server.drains.forced", f s.drains_forced);
  ]

(* ---- request dispatch: one connection = one session ---- *)

let handle_request t session (req : P.request) : P.response * bool =
  let timeout_ms = t.opts.request_timeout_ms in
  let rows_or_err = function
    | Ok rows -> P.Rows rows
    | Error e -> P.err_of_verror e
  in
  let handled =
    match t.handler with Some h -> h session req | None -> None
  in
  match handled with
  | Some answer -> answer
  | None -> (
  match req with
  | P.Prepare (name, sql) -> (
      match Service.prepare t.service session ~name sql with
      | Ok () -> (P.Prepared name, true)
      | Error e -> (P.err_of_verror e, true))
  | P.Exec name ->
      (rows_or_err (Service.exec ?timeout_ms t.service session name), true)
  | P.Sql text ->
      (rows_or_err (Service.sql ?timeout_ms t.service session text), true)
  | P.Query name ->
      (rows_or_err (Service.query ?timeout_ms t.service session name), true)
  | P.Fragment _ ->
      (* only shard workers (which install a {!handler}) execute fragments *)
      (P.Err ("parse", "this server does not execute shard fragments"), true)
  | P.Stats ->
      ( P.Stats_reply
          (Service.stats_fields (Service.stats t.service) @ stats_fields (stats t)),
        true )
  | P.Ping -> (P.Pong, true)
  | P.Close -> (P.Bye, false))

let handle_connection t (c : conn) =
  let session = Service.open_session t.service in
  let reader = make_reader ~max_line:t.opts.max_line_bytes c.c_fd in
  let rec loop () =
    match read_line reader with
    | Eof -> ()
    | Timed_out ->
        (* the idle reaper: SO_RCVTIMEO fired with no request in flight *)
        locked t (fun () -> t.idle_reaped <- t.idle_reaped + 1)
    | Too_long ->
        locked t (fun () -> t.oversized <- t.oversized + 1);
        let msg =
          Printf.sprintf "request line exceeds %d bytes" t.opts.max_line_bytes
        in
        (match send_response c.c_fd (P.Err ("parse", msg)) with
        | () -> loop ()
        | exception (Unix.Unix_error _ | Sys_error _) -> ())
    | Line line ->
        c.c_busy <- true;
        let response, continue =
          match P.parse_request line with
          | Ok req -> handle_request t session req
          | Error msg -> (P.Err ("parse", msg), true)
        in
        locked t (fun () -> t.handled <- t.handled + 1);
        let sent =
          match send_response c.c_fd response with
          | () -> true
          | exception (Unix.Unix_error _ | Sys_error _) -> false
        in
        c.c_busy <- false;
        if sent && continue then loop ()
  in
  (fun () ->
    try loop ()
    with (Unix.Unix_error _ | Sys_error _) -> ())
  |> Fun.protect ~finally:(fun () ->
         c.c_busy <- false;
         Service.close_session t.service session;
         (try Unix.close c.c_fd with Unix.Unix_error _ -> ()))

(* ---- the accept loop ---- *)

let bind_listener addr =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | (_ : Sys.signal_behavior) -> ()
  | exception Invalid_argument _ -> () (* no SIGPIPE on this platform *));
  (match addr with
  | Unix_socket path when Sys.file_exists path -> Sys.remove path
  | _ -> ());
  let domain =
    match addr with Unix_socket _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (sockaddr_of_addr addr);
  Unix.listen fd 64;
  fd

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let start ?(options = default_options) ?handler ~service addr =
  let listener = bind_listener addr in
  let t =
    {
      listener;
      addr;
      service;
      handler;
      opts = options;
      m = Mutex.create ();
      state = Running;
      accept_thread = None;
      conns = Hashtbl.create 16;
      next_conn = 0;
      opened = 0;
      rejected = 0;
      idle_reaped = 0;
      oversized = 0;
      handled = 0;
      drain_forced = 0;
    }
  in
  let accept_loop () =
    let rec go () =
      match Unix.accept t.listener with
      | fd, _peer ->
          if t.state <> Running then close_quietly fd
          else begin
            (* over the connection cap: answer with a typed error and
               close — never silently drop, never queue unbounded *)
            let admitted =
              locked t (fun () ->
                  match options.max_conns with
                  | Some cap when Hashtbl.length t.conns >= cap ->
                      t.rejected <- t.rejected + 1;
                      None
                  | _ ->
                      let id = t.next_conn in
                      t.next_conn <- id + 1;
                      t.opened <- t.opened + 1;
                      let c = { c_fd = fd; c_busy = false; c_thread = None } in
                      Hashtbl.replace t.conns id c;
                      Some (id, c))
            in
            match admitted with
            | None ->
                let cap = Option.value options.max_conns ~default:0 in
                (try
                   send_response fd
                     (P.Err
                        ( "resource",
                          Printf.sprintf
                            "connection limit reached (max %d) — retry later"
                            cap ))
                 with Unix.Unix_error _ | Sys_error _ -> ());
                close_quietly fd;
                go ()
            | Some (id, c) ->
                (match options.idle_timeout_ms with
                | Some ms when ms > 0.0 ->
                    (* reaper and write guard in one: a connection that
                       neither sends nor receives for [ms] is torn down *)
                    (try
                       Unix.setsockopt_float fd Unix.SO_RCVTIMEO (ms /. 1000.);
                       Unix.setsockopt_float fd Unix.SO_SNDTIMEO (ms /. 1000.)
                     with Unix.Unix_error _ -> ())
                | _ -> ());
                let th =
                  Thread.create
                    (fun () ->
                      (try handle_connection t c
                       with e ->
                         if t.state = Running then
                           Logs.warn (fun m ->
                               m "connection handler died: %s"
                                 (Printexc.to_string e)));
                      locked t (fun () -> Hashtbl.remove t.conns id))
                    ()
                in
                c.c_thread <- Some th;
                go ()
          end
      | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
          () (* stopped *)
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
    in
    go ()
  in
  t.accept_thread <- Some (Thread.create accept_loop ());
  t

(* Graceful, idempotent stop:

   1. stop accepting (shut the listener down, poke a blocked accept);
   2. drain: wait up to [drain_ms] for in-flight requests to finish —
      idle connections don't hold the drain, only busy ones do;
   3. past the drain deadline, cooperatively cancel everything in flight
      ({!Service.cancel_inflight}) — each request answers its client with
      a typed Resource-stage error — and give it a short grace;
   4. disconnect every remaining connection and join its thread;
   5. remove a Unix socket path so the address is immediately reusable. *)
let stop ?drain_ms t =
  let drain_ms = Option.value drain_ms ~default:t.opts.drain_ms in
  let proceed =
    locked t (fun () ->
        match t.state with
        | Running ->
            t.state <- Stopping;
            true
        | Stopping | Stopped -> false)
  in
  if proceed then begin
    (* A blocked [accept] is not interrupted by closing the fd on Linux:
       shut the listener down (wakes it with EINVAL), and as a fallback
       poke it with a throwaway connection the loop discards. *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try
       let domain =
         match t.addr with
         | Unix_socket _ -> Unix.PF_UNIX
         | Tcp _ -> Unix.PF_INET
       in
       let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
       (try Unix.connect sock (sockaddr_of_addr t.addr)
        with Unix.Unix_error _ -> ());
       close_quietly sock
     with Unix.Unix_error _ | Address_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    close_quietly t.listener;
    (* drain in-flight requests *)
    let busy () =
      locked t (fun () ->
          Hashtbl.fold (fun _ c b -> b || c.c_busy) t.conns false)
    in
    let deadline = Unix.gettimeofday () +. (drain_ms /. 1000.) in
    while busy () && Unix.gettimeofday () < deadline do
      Thread.delay 0.005
    done;
    if busy () then begin
      locked t (fun () -> t.drain_forced <- t.drain_forced + 1);
      Service.cancel_inflight ~reason:"server draining" t.service;
      (* cancellation is cooperative: workers stop at their next
         fragment/chunk/work-item boundary *)
      let grace = Unix.gettimeofday () +. 2.0 in
      while busy () && Unix.gettimeofday () < grace do
        Thread.delay 0.005
      done
    end;
    (* disconnect whoever is left and wait for their handler threads *)
    let remaining =
      locked t (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])
    in
    List.iter
      (fun c ->
        try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      remaining;
    List.iter
      (fun c -> match c.c_thread with Some th -> Thread.join th | None -> ())
      remaining;
    (match t.addr with
    | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    locked t (fun () -> t.state <- Stopped)
  end

let serve_forever ?options ?handler ~service addr =
  let t = start ?options ?handler ~service addr in
  match t.accept_thread with Some th -> Thread.join th | None -> ()

(* ---- client ---- *)

module Client = struct
  type conn = { fd : Unix.file_descr; reader : reader }

  let connect ?(retries = 0) ?timeout_ms addr =
    let sockaddr = sockaddr_of_addr addr in
    let domain =
      match addr with Unix_socket _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET
    in
    let rec go attempt =
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd sockaddr with
      | () ->
          (match timeout_ms with
          | Some ms when ms > 0.0 -> (
              try
                Unix.setsockopt_float fd Unix.SO_RCVTIMEO (ms /. 1000.);
                Unix.setsockopt_float fd Unix.SO_SNDTIMEO (ms /. 1000.)
              with Unix.Unix_error _ -> ())
          | _ -> ());
          { fd; reader = make_reader fd }
      | exception
          (Unix.Unix_error ((ECONNREFUSED | ENOENT | ECONNRESET), _, _) as e)
        ->
          close_quietly fd;
          if attempt >= retries then raise e
          else begin
            Thread.delay 0.05;
            go (attempt + 1)
          end
      | exception e ->
          close_quietly fd;
          raise e
    in
    go 0

  let request conn req : (P.response, string) result =
    let line = P.render_request req ^ "\n" in
    match write_all conn.fd line 0 (String.length line) with
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "send failed: %s" (Unix.error_message e))
    | () -> (
        let timed_out = ref false in
        let next_line () =
          match read_line conn.reader with
          | Line l -> Some l
          | Too_long -> None
          | Eof -> None
          | Timed_out ->
              timed_out := true;
              None
        in
        match P.read_response next_line with
        | Ok resp -> Ok resp
        | Error e ->
            if !timed_out then Error "timeout: no response within the deadline"
            else Error e)

  let close conn =
    (try
       let line = P.render_request P.Close ^ "\n" in
       write_all conn.fd line 0 (String.length line)
     with Unix.Unix_error _ | Sys_error _ -> ());
    close_quietly conn.fd

  (* ---- self-contained calls: timeout, retries, hedging ---- *)

  type call_stats = {
    attempts : int;  (** connections opened (hedges included) *)
    retries : int;  (** attempts after the first sequential one *)
    hedges : int;  (** speculative duplicates sent *)
    hedge_wins : int;  (** calls answered by the hedge, not the primary *)
  }

  let no_calls = { attempts = 0; retries = 0; hedges = 0; hedge_wins = 0 }

  let merge_stats a b =
    {
      attempts = a.attempts + b.attempts;
      retries = a.retries + b.retries;
      hedges = a.hedges + b.hedges;
      hedge_wins = a.hedge_wins + b.hedge_wins;
    }

  (* One attempt on a fresh connection.  The connection is always torn
     down afterwards: retried requests never share transport state with
     the attempt that failed. *)
  let attempt_once ?timeout_ms addr req : (P.response, string) result =
    match connect ?timeout_ms addr with
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "connect failed: %s" (Unix.error_message e))
    | exception Address_error m -> Error m
    | conn ->
        Fun.protect
          ~finally:(fun () -> close_quietly conn.fd)
          (fun () -> request conn req)

  (* Race the primary attempt against one hedge fired after [hedge_ms] of
     silence.  First [Ok] wins immediately; an [Error] only settles the
     race once no other attempt is outstanding. *)
  let raced ?timeout_ms ~hedge_ms addr req :
      (P.response, string) result * call_stats =
    let m = Mutex.create () in
    let result = ref None in
    let outstanding = ref 0 in
    let winner = ref `Primary in
    let post who (r : (P.response, string) result) =
      Mutex.lock m;
      (match r with
      | Ok _ when !result = None ->
          winner := who;
          result := Some r
      | _ -> ());
      decr outstanding;
      (match r with
      | Error _ when !result = None && !outstanding = 0 -> result := Some r
      | _ -> ());
      Mutex.unlock m
    in
    let spawn who =
      Mutex.lock m;
      incr outstanding;
      Mutex.unlock m;
      Thread.create (fun () -> post who (attempt_once ?timeout_ms addr req)) ()
    in
    let settled () =
      Mutex.lock m;
      let r = !result in
      Mutex.unlock m;
      r
    in
    let (_ : Thread.t) = spawn `Primary in
    let hedge_at = Unix.gettimeofday () +. (hedge_ms /. 1000.) in
    let rec wait_primary () =
      match settled () with
      | Some _ -> false
      | None ->
          if Unix.gettimeofday () >= hedge_at then true
          else begin
            Thread.delay 0.002;
            wait_primary ()
          end
    in
    let hedged = wait_primary () in
    if hedged then ignore (spawn `Hedge : Thread.t);
    let rec wait_final () =
      match settled () with
      | Some r -> r
      | None ->
          Thread.delay 0.002;
          wait_final ()
    in
    let r = wait_final () in
    let stats =
      {
        attempts = (if hedged then 2 else 1);
        retries = 0;
        hedges = (if hedged then 1 else 0);
        hedge_wins =
          (match (r, !winner) with Ok _, `Hedge -> 1 | _ -> 0);
      }
    in
    (r, stats)

  let call ?timeout_ms ?(retries = 0) ?(backoff_ms = 25.0) ?hedge_ms ?(seed = 0)
      addr req : (P.response, string) result * call_stats =
    let rng = Random.State.make [| seed; Hashtbl.hash (P.render_request req) |] in
    let retries = if P.idempotent req then max 0 retries else 0 in
    let one () =
      match hedge_ms with
      | Some h when h > 0.0 -> raced ?timeout_ms ~hedge_ms:h addr req
      | _ ->
          ( attempt_once ?timeout_ms addr req,
            { attempts = 1; retries = 0; hedges = 0; hedge_wins = 0 } )
    in
    let rec go k acc =
      let r, s = one () in
      let acc = merge_stats acc s in
      match r with
      | Ok _ -> (r, acc)
      | Error _ when k < retries ->
          (* jittered exponential backoff: base · 2^k · U[0.5, 1.5) *)
          let jitter = 0.5 +. Random.State.float rng 1.0 in
          let delay =
            backoff_ms /. 1000. *. (2. ** float_of_int k) *. jitter
          in
          Thread.delay (min delay 2.0);
          go (k + 1) { acc with retries = acc.retries + 1 }
      | Error _ -> (r, acc)
    in
    go 0 no_calls
end
