(** Client sessions: named prepared statements over a shared catalog.

    A session is cheap — it holds no catalog of its own, only the
    (scale factor, seed) pair it resolves through the service's
    {!Catalogs} registry at each call, plus its named prepared statements.
    A statement remembers the catalog generation it was planned against;
    when the registry has swapped the catalog since, the service re-plans
    transparently (SQL string literals resolve to dictionary codes at
    planning time, so a plan must never outlive its catalog).
    Thread-safe: one socket connection or test thread per session is the
    intended shape, but nothing breaks under sharing. *)

open Voodoo_relational

type stmt = {
  sql : string;
  mutable plan : Ra.t;
  mutable planned_generation : int;
      (** catalog generation [plan] was derived against *)
}

type t = {
  id : int;
  sf : float;
  seed : int;
  m : Mutex.t;
  stmts : (string, stmt) Hashtbl.t;
  mutable executed : int;
  mutable closed : bool;
}

val make : id:int -> sf:float -> seed:int -> t

val put_stmt :
  t -> name:string -> sql:string -> plan:Ra.t -> generation:int -> unit

val find_stmt : t -> string -> stmt option

(** Refresh a statement's plan after a catalog swap. *)
val restmt : t -> stmt -> plan:Ra.t -> generation:int -> unit

val count_execution : t -> unit

val executed : t -> int

val stmt_names : t -> string list

val close : t -> unit

val closed : t -> bool
