(** Seeded socket-level chaos proxy (see the interface). *)

type weights = {
  w_pass : int;
  w_drop_connect : int;
  w_stall : int;
  w_garbage : int;
  w_kill : int;
  w_trickle : int;
}

let default_weights =
  {
    w_pass = 6;
    w_drop_connect = 1;
    w_stall = 1;
    w_garbage = 1;
    w_kill = 1;
    w_trickle = 2;
  }

type kind = Pass | Drop_connect | Stall | Garbage | Kill | Trickle

type stats = {
  conns : int;
  passed : int;
  dropped : int;
  stalled : int;
  garbled : int;
  killed : int;
  trickled : int;
}

type live = {
  l_fds : Unix.file_descr list;
  l_thread : Thread.t option;  (** the per-connection driver thread *)
}

type t = {
  listener : Unix.file_descr;
  listen_addr : Server.addr;
  upstream : Server.addr;
  weights : weights;
  stall_ms : float;
  rng : Random.State.t;  (** guarded by [m]: draws happen in accept order *)
  m : Mutex.t;
  mutable stopped : bool;
  mutable accept_thread : Thread.t option;
  lives : (int, live) Hashtbl.t;
  mutable next_id : int;
  mutable st : stats;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let shutdown_quietly fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Draw the next fault.  Under the mutex so that, with a sequential
   client, connection [k] always gets the [k]-th draw of the seed. *)
let pick t =
  let w = t.weights in
  let total =
    w.w_pass + w.w_drop_connect + w.w_stall + w.w_garbage + w.w_kill
    + w.w_trickle
  in
  locked t (fun () ->
      t.st <- { t.st with conns = t.st.conns + 1 };
      let r = Random.State.int t.rng (max 1 total) in
      let k =
        if r < w.w_pass then Pass
        else if r < w.w_pass + w.w_drop_connect then Drop_connect
        else if r < w.w_pass + w.w_drop_connect + w.w_stall then Stall
        else if r < w.w_pass + w.w_drop_connect + w.w_stall + w.w_garbage then
          Garbage
        else if
          r < w.w_pass + w.w_drop_connect + w.w_stall + w.w_garbage + w.w_kill
        then Kill
        else Trickle
      in
      (* deterministic per-connection cut point for [Kill] *)
      let cut = 1 + Random.State.int t.rng 48 in
      (match k with
      | Pass -> t.st <- { t.st with passed = t.st.passed + 1 }
      | Drop_connect -> t.st <- { t.st with dropped = t.st.dropped + 1 }
      | Stall -> t.st <- { t.st with stalled = t.st.stalled + 1 }
      | Garbage -> t.st <- { t.st with garbled = t.st.garbled + 1 }
      | Kill -> t.st <- { t.st with killed = t.st.killed + 1 }
      | Trickle -> t.st <- { t.st with trickled = t.st.trickled + 1 });
      (k, cut))

let rec write_all fd buf off len =
  if len > 0 then
    match Unix.write fd buf off len with
    | n -> write_all fd buf (off + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd buf off len

(* Shuttle bytes [src] → [dst] until EOF or error.  [trickle] forwards a
   byte at a time with a small delay (framing stress, not failure);
   [kill_after] cuts both directions dead once that many bytes have been
   forwarded — the mid-response kill. *)
let relay ?(trickle = false) ?kill_after src dst =
  let buf = Bytes.create 4096 in
  let budget = ref (Option.value kill_after ~default:max_int) in
  let rec go () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | 0 -> ()
    | n ->
        let n = min n !budget in
        (if trickle then
           for i = 0 to n - 1 do
             write_all dst buf i 1;
             Thread.delay 0.0002
           done
         else write_all dst buf 0 n);
        budget := !budget - n;
        if !budget > 0 then go ()
        else begin
          shutdown_quietly src;
          shutdown_quietly dst
        end
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  (try go () with Unix.Unix_error _ -> ());
  (* half-close so the peer's read sees EOF even while the other
     direction is still draining *)
  (try Unix.shutdown dst Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ())

let connect_upstream t =
  let sockaddr = Server.sockaddr_of_addr t.upstream in
  let domain =
    match t.upstream with
    | Server.Unix_socket _ -> Unix.PF_UNIX
    | Server.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sockaddr with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
      close_quietly fd;
      None

let handle t client kind cut =
  match kind with
  | Drop_connect -> close_quietly client
  | Stall ->
      (* silence: no bytes either way, then hang up — the client's
         timeout (SO_RCVTIMEO) or our hangup ends the attempt *)
      Thread.delay (t.stall_ms /. 1000.);
      close_quietly client
  | Garbage ->
      (* consume the request so the client's send succeeds, answer
         noise: an unparseable frame, never a valid response *)
      let buf = Bytes.create 4096 in
      (try ignore (Unix.read client buf 0 (Bytes.length buf) : int)
       with Unix.Unix_error _ -> ());
      let garbage = "\x00\x7f!! chaos: not a protocol frame !!\n" in
      (try write_all client (Bytes.of_string garbage) 0 (String.length garbage)
       with Unix.Unix_error _ -> ());
      close_quietly client
  | Pass | Trickle | Kill -> (
      match connect_upstream t with
      | None -> close_quietly client
      | Some up ->
          let trickle = kind = Trickle in
          let kill_after = if kind = Kill then Some cut else None in
          (* client → upstream clean; faults ride the response path *)
          let back =
            Thread.create (fun () -> relay ~trickle ?kill_after up client) ()
          in
          relay client up;
          Thread.join back;
          close_quietly up;
          close_quietly client)

let start ?(seed = 0) ?(weights = default_weights) ?(stall_ms = 200.0)
    ~upstream ~listen () =
  (match listen with
  | Server.Unix_socket path when Sys.file_exists path -> Sys.remove path
  | _ -> ());
  let domain =
    match listen with
    | Server.Unix_socket _ -> Unix.PF_UNIX
    | Server.Tcp _ -> Unix.PF_INET
  in
  let listener = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Server.sockaddr_of_addr listen);
  Unix.listen listener 64;
  let t =
    {
      listener;
      listen_addr = listen;
      upstream;
      weights;
      stall_ms;
      rng = Random.State.make [| seed; 0x5eed |];
      m = Mutex.create ();
      stopped = false;
      accept_thread = None;
      lives = Hashtbl.create 16;
      next_id = 0;
      st =
        {
          conns = 0;
          passed = 0;
          dropped = 0;
          stalled = 0;
          garbled = 0;
          killed = 0;
          trickled = 0;
        };
    }
  in
  let accept_loop () =
    let rec go () =
      match Unix.accept t.listener with
      | client, _peer ->
          if t.stopped then close_quietly client
          else begin
            let kind, cut = pick t in
            let id = locked t (fun () -> t.next_id <- t.next_id + 1; t.next_id) in
            let th =
              Thread.create
                (fun () ->
                  (try handle t client kind cut
                   with Unix.Unix_error _ | Sys_error _ -> ());
                  locked t (fun () -> Hashtbl.remove t.lives id))
                ()
            in
            locked t (fun () ->
                Hashtbl.replace t.lives id
                  { l_fds = [ client ]; l_thread = Some th });
            go ()
          end
      | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) -> ()
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
    in
    go ()
  in
  t.accept_thread <- Some (Thread.create accept_loop ());
  t

let stop t =
  let proceed =
    locked t (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if proceed then begin
    shutdown_quietly t.listener;
    (* poke a blocked accept, as Server.stop does *)
    (try
       let domain =
         match t.listen_addr with
         | Server.Unix_socket _ -> Unix.PF_UNIX
         | Server.Tcp _ -> Unix.PF_INET
       in
       let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
       (try Unix.connect sock (Server.sockaddr_of_addr t.listen_addr)
        with Unix.Unix_error _ -> ());
       close_quietly sock
     with Unix.Unix_error _ | Server.Address_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    close_quietly t.listener;
    let remaining =
      locked t (fun () -> Hashtbl.fold (fun _ l acc -> l :: acc) t.lives [])
    in
    List.iter (fun l -> List.iter shutdown_quietly l.l_fds) remaining;
    List.iter
      (fun l -> match l.l_thread with Some th -> Thread.join th | None -> ())
      remaining;
    match t.listen_addr with
    | Server.Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
    | Server.Tcp _ -> ()
  end

let stats t = locked t (fun () -> t.st)
