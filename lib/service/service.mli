(** The query service: a long-lived, concurrent, cache-aware front end
    over the engines.

    The paper frames Voodoo as the execution engine behind a database
    frontend (Section 4 replaces MonetDB's engine); this layer supplies
    the serving side of that contract.  One {!t} owns:

    - a {!Catalogs} registry — one [Dbgen.generate] per (sf, seed), ever;
    - a {!Plan_cache} — repeated queries skip parse/lower/compile, which a
      trace shows as absent ["lower"]/["compile"] spans;
    - a {!Result_cache} — byte-capped LRU over result rows, invalidated
      when the catalog is swapped;
    - a {!Pool} of OCaml 5 domains with a bounded queue: admission control
      sheds load with typed [Resource]-stage errors instead of queueing
      without bound, and every execution runs under the configured
      {!Voodoo_core.Budget.t}.

    Every query API exists in async form (returning an {!outcome}
    {!Pool.future}) and blocking form.  Protocol and socket front doors
    live in {!Protocol} and {!Server}; the in-process API here is what
    tests and benchmarks drive directly.  See [docs/SERVICE.md]. *)

open Voodoo_relational
module Engine = Voodoo_engine.Engine
module R = Voodoo_engine.Resilient
module Verror = Voodoo_core.Verror
module Budget = Voodoo_core.Budget

(** How pool jobs answer a plan: [Direct] runs the compiled engine and
    classifies any escape into a {!Voodoo_core.Verror.t}; [Resilient]
    drives the full fallback chain per attempt
    ({!Voodoo_engine.Resilient.execute_prepared}). *)
type engine_mode = Direct | Resilient of R.policy

type config = {
  sf : float;  (** default scale factor of new sessions *)
  seed : int;  (** default dbgen seed of new sessions *)
  workers : int;  (** pool domains *)
  queue_capacity : int;  (** admission bound: pending jobs beyond this shed *)
  plan_cache_capacity : int;  (** prepared plans kept (entries) *)
  result_cache_bytes : int;  (** result cache cap (estimated bytes) *)
  budget : Budget.t;  (** per-execution resource budget *)
  request_timeout_ms : float option;
      (** default wall-clock deadline of every request, measured from
          admission (queue wait counts); [None] means no deadline.  The
          per-call [?timeout_ms] argument overrides it.  Expiry surfaces
          as a [Resource]-stage {!Voodoo_core.Verror.t} ("deadline
          exceeded …") — the executors check cooperatively at fragment,
          chunk and work-item boundaries, so no torn result. *)
  engine : engine_mode;
  jobs : int;
      (** intra-query domains for [Direct] dispatch: when the admission
          queue is idle, each fragment's extent is chunked across this
          many domains ({!Voodoo_compiler.Codegen.exec_mode}); under a
          backlog queries run one-domain so inter-query parallelism wins.
          Rows are identical either way.  Untraced [Direct] queries also
          skip device simulation (raw closures) — see
          [docs/PARALLELISM.md]. *)
  lower_opts : Lower.options option;
  backend_opts : Voodoo_compiler.Codegen.options option;
  tune_after : int option;
      (** online retuning threshold: after a plan has executed this many
          times, a background pool job races tuner rewrites
          ({!Voodoo_tuner.Search}) against the incumbent under the
          calibrated cost model and — on a strict, bit-identical win —
          repoints the plan cache at the tuned variant.  [None] (the
          default) disables retuning.  See [docs/TUNING.md]. *)
  tune_budget_ms : float;  (** wall budget of one background search *)
  tune_seed : int;  (** search seed — fixes the candidate order *)
}

(** sf 0.01, seed 1, {!Pool.default_workers} domains, queue 64, 64 plans,
    16 MiB of results, unlimited budget, [Direct], [jobs = 1], no online
    retuning ([tune_after = None], budget 250 ms, seed 42). *)
val default_config : config

type t

type outcome = (Engine.rows, Verror.t) result

(** [create config] spawns the worker domains immediately.  [registry]
    lets several services (or the CLI) share one catalog registry. *)
val create : ?registry:Catalogs.t -> config -> t

(** Stop accepting work, drain the queue, join the domains.  Idempotent. *)
val shutdown : t -> unit

(** Cooperatively cancel every execution currently in flight (each stops
    at its next fragment/chunk/work-item check point with a typed
    [Resource]-stage "cancelled: reason" error) and install a fresh token
    so later requests are unaffected.  The server's graceful drain calls
    this when the drain deadline passes. *)
val cancel_inflight : ?reason:string -> t -> unit

(** {2 Sessions} *)

(** [open_session t] makes a session at the service's default (or the
    given) scale factor/seed; the shared catalog is built now if this is
    its first use. *)
val open_session : ?sf:float -> ?seed:int -> t -> Session.t

val close_session : t -> Session.t -> unit

(** {2 Vector similarity}

    [SIMILARITY TO] requests enter through {!sql_async} like any other
    SQL text: the door detects the clause
    ({!Voodoo_vsim.Query.is_similarity}), parses it against the
    registered datasets and answers through the dataset's IVF index (or
    the exhaustive scan when the text says [EXHAUSTIVE]).  Results are
    [(row, score)] rows, cached under the canonical query rendering +
    vsim generation + options digest (which covers the serving [nprobe]
    default in [backend_opts.nprobe]); the request budget is checked
    between probe partitions, so deadlines and drain cancel a search
    mid-probe.  See [docs/VSIM.md]. *)

(** Register (or replace — the vsim generation bumps, invalidating cached
    similarity results) a searchable dataset under its name. *)
val register_vsim : t -> Voodoo_vsim.Dataset.t -> unit

(** Registered dataset names, sorted. *)
val vsim_datasets : t -> string list

(** {2 Queries}

    The async forms return immediately: either a pending future, or an
    already-resolved one when the result cache answered or admission
    control shed the request. *)

(** [prepare t s ~name text] parses [text] and compiles it through the
    plan cache (eagerly — EXEC is then pure execution, and re-PREPARE of
    identical text is a plan-cache hit). *)
val prepare :
  ?trace:Voodoo_core.Trace.t ->
  t -> Session.t -> name:string -> string -> (unit, Verror.t) result

(** Run a previously prepared statement by name.  [?timeout_ms] (here and
    below) overrides [config.request_timeout_ms] for this call. *)
val exec_async :
  ?trace:Voodoo_core.Trace.t ->
  ?timeout_ms:float ->
  t -> Session.t -> string -> outcome Pool.future

(** One-shot SQL text (planned, then cached like any other query). *)
val sql_async :
  ?trace:Voodoo_core.Trace.t ->
  ?timeout_ms:float ->
  t -> Session.t -> string -> outcome Pool.future

(** A named TPC-H query ([Q1] … [Q20]); multi-phase queries run all their
    phases in one pool job on a catalog fork. *)
val query_async :
  ?trace:Voodoo_core.Trace.t ->
  ?timeout_ms:float ->
  t -> Session.t -> string -> outcome Pool.future

val await : outcome Pool.future -> outcome

val exec :
  ?trace:Voodoo_core.Trace.t -> ?timeout_ms:float -> t -> Session.t -> string -> outcome
val sql :
  ?trace:Voodoo_core.Trace.t -> ?timeout_ms:float -> t -> Session.t -> string -> outcome
val query :
  ?trace:Voodoo_core.Trace.t -> ?timeout_ms:float -> t -> Session.t -> string -> outcome

(** Raw-plan door for shard fragments (no session, no SQL): run [plan]
    on a caller-supplied catalog under the same admission control,
    deadline budget and plan cache as every other request.  [cache_key]
    (the fragment-payload digest, worker-side) makes identical fragments
    reuse the prepared artifact.  Used by [Voodoo_distrib.Worker]. *)
val plan_async :
  ?trace:Voodoo_core.Trace.t ->
  ?timeout_ms:float ->
  ?cache_key:string ->
  t ->
  cat:Voodoo_relational.Catalog.t ->
  Voodoo_relational.Ra.t ->
  outcome Pool.future

val run_plan :
  ?trace:Voodoo_core.Trace.t ->
  ?timeout_ms:float ->
  ?cache_key:string ->
  t ->
  cat:Voodoo_relational.Catalog.t ->
  Voodoo_relational.Ra.t ->
  outcome

(** {2 Catalog swaps} *)

(** [refresh_catalog ~sf t] regenerates the catalog under a new
    generation and invalidates every plan and result cached against the
    old one. *)
val refresh_catalog : ?seed:int -> sf:float -> t -> Catalogs.entry

(** {2 Stats} *)

type stats = {
  sessions_opened : int;
  sessions_live : int;
  queries : int;  (** requests accepted (including cache hits) *)
  result_hits : int;  (** answered straight from the result cache *)
  errors : int;  (** typed error outcomes (sheds included) *)
  deadline_expired : int;  (** errors that were deadline expiries *)
  cancelled : int;  (** errors that were cooperative cancellations *)
  fast_path : int;  (** [Direct] executions that skipped device simulation *)
  parallel : int;  (** [Direct] executions chunked across >1 domain *)
  fold_fused : int;
      (** raw grouped folds that streamed inside their producers' tile
          group (process-wide, {!Voodoo_compiler.Exec_stats}) *)
  fold_parallel_chunks : int;
      (** chunks executed by grouped-fold fragments that actually split *)
  vsim_searches : int;
      (** IVF similarity searches answered (process-wide,
          {!Voodoo_vsim.Stats}) *)
  vsim_probes : int;  (** partitions actually scanned by those searches *)
  vsim_probes_skipped : int;
      (** partitions pruned by the coarse index ([nlist - nprobe] each) *)
  topk_folds : int;  (** bounded-heap top-k folds run *)
  topk_chunks : int;  (** chunks of the folds that actually split *)
  tune_scheduled : int;  (** background searches submitted to the pool *)
  tune_completed : int;  (** background searches finished (win or not) *)
  tune_candidates : int;  (** rewrite candidates considered, total *)
  tune_rejected : int;  (** candidates rejected by result verification *)
  tune_repointed : int;  (** plans repointed at a tuned variant *)
  plan_cache : Plan_cache.stats;
  result_cache : Result_cache.stats;
  pool : Pool.stats;
}

val stats : t -> stats

(** Flat key/value rendering (the protocol's [STATS] payload). *)
val stats_fields : stats -> (string * float) list

(** {2 Exposed for tests} *)

(** The plan-cache key: catalog generation + structural digest of the
    relational plan + digest of the service's lower/codegen options +
    engine mode + intra-query [jobs] + plan variant ([?variant], default
    ["base"]; online retuning stores winners under ["tuned"]).  Equal
    exactly when a cached prepared plan may be reused. *)
val plan_key : ?variant:string -> t -> generation:int -> Ra.t -> string
