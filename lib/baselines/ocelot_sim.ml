(** Ocelot-style baseline: hardware-oblivious bulk processing.

    Ocelot (Heimel et al., VLDB 2013) ports MonetDB's operator-at-a-time
    model to OpenCL: every operator is its own kernel and every
    intermediate result is fully materialized in device memory.  That is
    exactly our compiling backend with fusion, virtual scatter and
    empty-slot suppression disabled — so this baseline {e is} the Voodoo
    backend, de-optimized, which is also how the paper frames the
    comparison (bulk processing pays memory bandwidth for materialization;
    a GPU's bandwidth hides much of that cost, a CPU's does not). *)

open Voodoo_relational
module E = Voodoo_engine.Engine

let options : Voodoo_compiler.Codegen.options =
  {
    Voodoo_compiler.Codegen.default_options with
    fuse = false;
    virtual_scatter = false;
    suppress_empty_slots = false;
  }

let run (cat : Catalog.t) (plan : Ra.t) : E.compiled_run =
  E.compiled_full ~backend_opts:options cat plan

let eval cat plan = (run cat plan).rows
