(** HyPeR-style baseline: compiled, pipelined, tuple-at-a-time execution
    (paper Section 5.2's CPU comparison system).

    Models fully pipelined query compilation without Voodoo's metadata
    exploitation: joins and group-bys go through general hash tables with
    collision handling, selections branch.  Results come from the trusted
    reference machinery (the baseline is about cost); events are accounted
    per pipeline: one kernel per hash-table build, one per probe pipeline,
    branch outcomes streamed through predictors, hash probes as random
    accesses into entry-count-sized tables with a collision surcharge. *)

open Voodoo_relational
open Voodoo_device

type run = {
  rows : Reference.row list;
  kernels : (int * Events.t) list;
}

val run : Catalog.t -> Ra.t -> run

(** Rows only.  HyPeR would additionally win order-by/limit queries via
    priority queues; the evaluated subset omits order-by on both sides. *)
val eval : Catalog.t -> Ra.t -> Reference.row list
