(** Ocelot-style baseline: hardware-oblivious operator-at-a-time bulk
    processing (paper Section 5.2's GPU comparison system).

    Every operator is its own kernel; every intermediate materializes in
    device memory — i.e. the Voodoo compiling backend with fusion, virtual
    scatter and empty-slot suppression disabled, which is how the paper
    frames the comparison (bulk processing pays bandwidth for
    materialization; a GPU's bandwidth hides much of it, a CPU's does
    not). *)

open Voodoo_relational
module E = Voodoo_engine.Engine

(** The de-optimizing backend options this baseline uses. *)
val options : Voodoo_compiler.Codegen.options

val run : Catalog.t -> Ra.t -> E.compiled_run
val eval : Catalog.t -> Ra.t -> E.rows
