(** HyPeR-style baseline: compiled, pipelined, tuple-at-a-time execution.

    Models the engine of Neumann (VLDB 2011) as the paper characterizes it:
    fully pipelined query compilation ("roughly equivalent to the code
    generation that is implemented in HyPeR — no vectorization, no manual
    SIMD instructions"), but {e without} Voodoo's metadata exploitation —
    joins and group-bys go through general hash tables with collision
    handling, and selections branch.

    Results are produced by the trusted {!Voodoo_relational.Reference}
    machinery (the baseline is about cost, not answers); the events it
    would generate on real hardware are accounted per pipeline:

    - one kernel per hash-table build (extent = build side),
    - one kernel per probe pipeline (extent = fact side),
    - every selection predicate is a branch streamed through a two-bit
      predictor,
    - hash probes/updates are random accesses into tables sized by entry
      count (16 B per entry), with a collision surcharge. *)

open Voodoo_vector
open Voodoo_relational
open Voodoo_device

let width = 4
let hash_entry_bytes = 16

(* extra accesses per probe due to chaining at a typical load factor *)
let collision_factor = 0.25

type pipeline = { extent : int; ev : Events.t }

type run = {
  rows : Reference.row list;
  kernels : (int * Events.t) list;
}

type ctx = { cat : Catalog.t; mutable kernels : pipeline list }

let new_pipeline ctx extent =
  let p = { extent; ev = Events.create () } in
  ctx.kernels <- p :: ctx.kernels;
  p

(* Hash-table build over [n] entries: hash + store per entry. *)
let build_table ctx ~entries ~read_cols =
  let p = new_pipeline ctx entries in
  Events.alu p.ev Int (3 * entries) (* hash computation *);
  Events.mem p.ev ~site:"build:read" ~pattern:Cache.Sequential ~elem_bytes:width
    (entries * read_cols);
  let table_bytes = entries * hash_entry_bytes in
  Events.mem p.ev ~site:"build:write" ~pattern:(Cache.Random table_bytes)
    ~elem_bytes:hash_entry_bytes entries;
  Events.mem p.ev ~site:"build:collide" ~pattern:(Cache.Random table_bytes)
    ~elem_bytes:hash_entry_bytes
    (int_of_float (collision_factor *. float_of_int entries))

(* Probe into a table of [entries] entries, [count] times. *)
let probe ev ~site ~entries count =
  Events.alu ev Int (3 * count) (* hash + key compare *);
  let table_bytes = max hash_entry_bytes (entries * hash_entry_bytes) in
  Events.mem ev ~site ~pattern:(Cache.Random table_bytes)
    ~elem_bytes:hash_entry_bytes count;
  Events.mem ev ~site:(site ^ ":collide") ~pattern:(Cache.Random table_bytes)
    ~elem_bytes:hash_entry_bytes
    (int_of_float (collision_factor *. float_of_int count))

(* Number of scalar leaves an expression touches (column reads per row). *)
let expr_cols e = List.length (Rexpr.columns e)

let resolve cat e =
  Rexpr.resolve
    ~encode:(fun colname s ->
      let tname = Catalog.owner_exn cat colname in
      Table.encode (Table.column (Catalog.table cat tname) colname) s)
    e

(* Walk the plan: evaluate frames with the reference machinery while
   accounting the pipeline events HyPeR-generated code would produce.
   Returns the frame and the pipeline (kernel) the plan's rows stream
   through. *)
let rec walk ctx (plan : Ra.t) : Reference.frame * pipeline =
  match plan with
  | Scan tname ->
      let f = Reference.eval_frame ctx.cat plan in
      ignore tname;
      (f, new_pipeline ctx f.n)
  | Select (p, e) ->
      let f, pipe = walk ctx p in
      let re = resolve ctx.cat e in
      (* evaluate the predicate per input row: column reads + ALU +
         branch *)
      Events.mem pipe.ev ~site:"sel:read" ~pattern:Cache.Sequential
        ~elem_bytes:width (f.n * max 1 (expr_cols e));
      Events.alu pipe.ev Int (f.n * (1 + expr_cols e));
      for i = 0 to f.n - 1 do
        let taken =
          match Rexpr.eval ~row:(Reference.row_of f i) re with
          | Some v -> Scalar.truthy v
          | None -> false
        in
        Events.branch pipe.ev ~site:"sel" taken
      done;
      (Reference.eval_frame ctx.cat plan, pipe)
  | Map (p, _) ->
      let _, pipe = walk ctx p in
      (Reference.eval_frame ctx.cat plan, pipe)
  | FkJoin { fact; dim; _ } | LookupJoin { fact; dim; _ } ->
      let df, _ = walk ctx dim in
      build_table ctx ~entries:df.n ~read_cols:2;
      let ff, pipe = walk ctx fact in
      probe pipe.ev ~site:"join" ~entries:df.n ff.n;
      (* fetched payload columns *)
      Events.mem pipe.ev ~site:"join:payload" ~pattern:Cache.Sequential
        ~elem_bytes:width ff.n;
      (Reference.eval_frame ctx.cat plan, pipe)
  | SemiJoin { fact; dim; _ } | AntiJoin { fact; dim; _ } ->
      let df, _ = walk ctx dim in
      build_table ctx ~entries:df.n ~read_cols:1;
      let ff, pipe = walk ctx fact in
      probe pipe.ev ~site:"semi" ~entries:df.n ff.n;
      (* membership test is a branch; outcomes are as good as random in
         row order, so stream a hashed sequence at the observed hit rate *)
      let out = Reference.eval_frame ctx.cat plan in
      for i = 0 to ff.n - 1 do
        let h = i * 2654435761 land 0xFFFF in
        Events.branch pipe.ev ~site:"semi" (h * max 1 ff.n < 65536 * out.n)
      done;
      (out, pipe)
  | GroupAgg { input; keys; aggs } ->
      let f, pipe = walk ctx input in
      let out = Reference.eval_frame ctx.cat plan in
      let groups = max 1 out.n in
      (* per input row: hash the keys, probe/update the aggregation table *)
      Events.alu pipe.ev Int (f.n * (2 + List.length keys));
      Events.mem pipe.ev ~site:"agg:read" ~pattern:Cache.Sequential
        ~elem_bytes:width
        (f.n * (List.length keys + List.length aggs));
      probe pipe.ev ~site:"agg" ~entries:groups f.n;
      List.iter
        (fun (a : Ra.agg) ->
          Events.alu pipe.ev
            (match a.kind with _ -> Float)
            f.n;
          ignore a)
        aggs;
      (* result extraction kernel *)
      let fin = new_pipeline ctx groups in
      Events.mem fin.ev ~site:"agg:out" ~pattern:Cache.Sequential
        ~elem_bytes:width
        (groups * (List.length keys + List.length aggs));
      (out, pipe)

(** [run cat plan] evaluates [plan] the HyPeR way. *)
let run (cat : Catalog.t) (plan : Ra.t) : run =
  let ctx = { cat; kernels = [] } in
  let frame, _ = walk ctx plan in
  let rows =
    List.init frame.n (fun i ->
        List.map (fun (name, g) -> (name, g i)) frame.cols)
  in
  { rows; kernels = List.rev_map (fun p -> (p.extent, p.ev)) ctx.kernels }

(** HyPeR evaluates priority-queue order-by/limit efficiently; for the
    evaluated subset (no order-by) this engine and Voodoo return the same
    rows — asserted by the test suite. *)
let eval cat plan = (run cat plan).rows
