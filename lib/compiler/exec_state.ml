(** Shared executor state and helpers.

    Everything both executor paths need lives here: the mutable run
    state, storage-class lookups and alias resolution, per-statement
    preparation (allocation/aliasing), fold-run computation,
    position-pattern classification, deferred positional accounting and
    the fault/budget plumbing.  {!Exec} drives the reference per-work-item
    tree walk on top of this; {!Exec_compile}/[Exec_par] drive the
    closure-compiled fast path.  Keeping the helpers in one place means
    the two paths can only diverge in how they {e iterate}, not in what a
    statement means. *)

open Voodoo_vector
open Voodoo_core
open Voodoo_device
open Fragment

(** Device element width in bytes.  The paper's workloads use 32-bit values
    (single-precision floats, dictionary codes, day numbers); our OCaml
    arrays are wider but the cost model prices the device representation. *)
let width = 4

exception Exec_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

(* ---------- helpers ---------- *)

let lookup env v =
  match Hashtbl.find_opt env v with
  | Some x -> x
  | None -> err "unbound vector %s" v

let leaf vec (kp : Keypath.t) =
  let schema = Svector.schema vec in
  match List.assoc_opt kp schema with
  | Some _ -> kp
  | None -> (
      match List.filter (fun (kp', _) -> Keypath.is_prefix kp kp') schema with
      | [ (l, _) ] -> l
      | [] -> err "no attribute %s" (Keypath.to_string kp)
      | _ -> err "ambiguous attribute %s" (Keypath.to_string kp))

let leaf_column vec kp = Svector.column vec (leaf vec kp)

let src_column env (s : Op.src) =
  let vec = lookup env s.v in
  (vec, leaf_column vec s.kp)

let bget col i = if Column.length col = 1 then Column.get col 0 else Column.get col i

(* ---------- execution state ---------- *)

type state = {
  store : Store.t;
  plan : plan;
  env : (Op.id, Svector.t) Hashtbl.t;
  meta : (Op.id, Meta.info) Hashtbl.t;
  storage : (Op.id, storage) Hashtbl.t;
  suppressed : (Op.id, int) Hashtbl.t;
      (** fold outputs stored dense: id -> valid (run) count *)
  interleaved : (Op.id, unit) Hashtbl.t;  (** row-major materialized vectors *)
  opts : Codegen.options;
  mutable group_acc : (Op.id, Scalar.t option array * int array) Hashtbl.t;
      (** grouped-fold accumulators and counts, per FoldAgg stmt *)
  in_frag : (Op.id, unit) Hashtbl.t;
  charged : (string, unit) Hashtbl.t;
      (** buffers already read in the current range: fused code loads a
          value once into a register, however many statements consume it *)
  pos_stats : (string, pos_stats) Hashtbl.t;
      (** per gather/scatter statement, accumulated across all work items *)
}

and pos_stats = {
  mutable monotone : bool;
  mutable first : int;  (** first observed position (for chunk merging) *)
  mutable last : int;
  mutable zero_hits : int;
  mutable total : int;
}

let storage_of st id =
  Option.value (Hashtbl.find_opt st.storage id) ~default:Global

(* Effective element count when reading [count] slots of vector [id]:
   suppressed fold outputs are dense. *)
let effective_reads st id count =
  match Hashtbl.find_opt st.suppressed id with
  | Some valid when st.opts.suppress_empty_slots -> min valid count
  | _ -> count

(* Record a read of [count] elements of input [id] (pattern Sequential). *)
let record_read ?(attr = []) st ev id count =
  let count = effective_reads st id count in
  let site = id ^ Voodoo_vector.Keypath.to_string attr ^ ":r" in
  match storage_of st id with
  | Register | Virtual -> ()
  | Global ->
      Events.mem ev ~site ~pattern:Cache.Sequential ~elem_bytes:width count
  | Local ws ->
      Events.mem ~scalable:false ev ~site ~pattern:(Cache.Random ws)
        ~elem_bytes:width count

(* Record writing [count] elements of the result of [id]. *)
let record_write st ev id count =
  match storage_of st id with
  | Register | Virtual -> ()
  | Global ->
      Events.mem ev ~site:(id ^ ":w") ~pattern:Cache.Sequential ~elem_bytes:width
        count
  | Local ws ->
      Events.mem ~scalable:false ev ~site:(id ^ ":w") ~pattern:(Cache.Random ws)
        ~elem_bytes:width count

(* Follow structural aliases (zip/project/upsert, virtual scatters) to the
   statement whose storage actually backs attribute [kp] of [v], so memory
   traffic is charged to the real buffer. *)
let rec resolve_read st (v : Op.id) (kp : Keypath.t) : Op.id * Keypath.t =
  match Program.find st.plan.program v with
  | Some { op = Zip { out1; src1; out2; src2 }; _ } ->
      if Keypath.is_prefix out1 kp then
        resolve_read st src1.v (Keypath.append src1.kp (Keypath.strip out1 kp))
      else if Keypath.is_prefix out2 kp then
        resolve_read st src2.v (Keypath.append src2.kp (Keypath.strip out2 kp))
      else (v, kp)
  | Some { op = Project { out; src }; _ } ->
      if Keypath.is_prefix out kp then
        resolve_read st src.v (Keypath.append src.kp (Keypath.strip out kp))
      else (v, kp)
  | Some { op = Upsert { target; out; src }; _ } ->
      if Keypath.equal out kp then resolve_read st src.v src.kp
      else resolve_read st target kp
  | Some { op = Scatter { data; _ }; _ } when storage_of st v = Virtual ->
      resolve_read st data kp
  | _ -> (v, kp)

(* The resolved (id, leaf keypath, charge key) of a source attribute, as
   [charge_read] computes it: the static part of a read charge. *)
let resolve_charge st (src : Op.src) =
  let full_kp =
    match Hashtbl.find_opt st.env src.v with
    | Some vec -> ( try leaf vec src.kp with Exec_error _ -> src.kp)
    | None -> src.kp
  in
  let id, rkp = resolve_read st src.v full_kp in
  (id, rkp, id ^ Voodoo_vector.Keypath.to_string rkp)

(* Charge [count] sequential reads of attribute [src], resolved through
   aliases to its backing buffer; within one work-item range each buffer is
   charged once (fused kernels keep the loaded value in a register). *)
let charge_read st ev (src : Op.src) count =
  let id, rkp, key = resolve_charge st src in
  if not (Hashtbl.mem st.charged key) then begin
    Hashtbl.replace st.charged key ();
    record_read ~attr:rkp st ev id count
  end

(* ---------- per-statement preparation (allocation / aliasing) ---------- *)

let fold_out_dtype agg col =
  match (agg : Op.agg) with
  | Count -> Scalar.Int
  | Sum | Max | Min -> Column.dtype col

let meta_of st id =
  match Hashtbl.find_opt st.meta id with
  | Some i -> i
  | None -> err "no metadata for %s" id

(* [force st v] looks [v] up, lazily binding statements that live outside
   every fragment (loads, virtual control vectors, constants, identity
   scatters).  Fragment-resident statements are bound when their fragment
   executes; forcing one early is a plan bug. *)
let rec force st v : Svector.t =
  match Hashtbl.find_opt st.env v with
  | Some x -> x
  | None ->
      if Hashtbl.mem st.in_frag v then
        err "fragment statement %s forced before its fragment ran" v;
      (match Program.find st.plan.program v with
      | None -> err "unbound vector %s" v
      | Some s -> bind_nonfrag st s);
      Hashtbl.find st.env v

and bind_nonfrag st (s : Program.stmt) =
  let bind v = Hashtbl.replace st.env s.id v in
  match s.op with
  | Load table -> bind (Store.find_exn st.store table)
  | Scatter { data; _ } when List.mem_assoc s.id st.plan.identity_scatters ->
      (* identity positions: the scatter is a pure alias *)
      bind (force st data)
  | Scatter { data; shape; _ } ->
      (* a scatter virtualized into grouped folds: only its shape matters *)
      let dvec = force st data in
      let out_n = (meta_of st shape).length in
      bind
        (Svector.of_columns
           (List.map (fun (kp, dt) -> (kp, Column.create dt out_n))
              (Svector.schema dvec)))
  | Constant { out; value } ->
      let col = Column.init (Scalar.dtype_of value) 1 (fun _ -> value) in
      bind
        (Svector.with_ctrl (Svector.single out col) out
           (Ctrl.constant (Scalar.to_int value)))
  | Range { out; from; step; _ } ->
      bind (Svector.of_ctrl out (Ctrl.range ~from ~step) (meta_of st s.id).length)
  | Zip { out1; src1; out2; src2 } ->
      bind
        (Svector.zip
           (out1, force st src1.v, src1.kp)
           (out2, force st src2.v, src2.kp))
  | Project { out; src } -> bind (Svector.project ~out (force st src.v) src.kp)
  | Upsert { target; out; src } ->
      let svec = force st src.v in
      bind (Svector.upsert (force st target) ~out svec (leaf svec src.kp))
  | Binary { out; _ } | Partition { out; _ } -> (
      (* virtual: materialize values from the closed form metadata derived *)
      let i = meta_of st s.id in
      let ctrl =
        match Meta.ctrl_of i out, i.ctrls with
        | Some c, _ -> Some c
        | None, [ (_, c) ] -> Some c
        | None, _ -> (
            match s.op with Partition _ -> Some Ctrl.iota | _ -> None)
      in
      let const =
        match Meta.const_of i out, i.const with
        | Some c, _ -> Some c
        | None, [ (_, c) ] -> Some c
        | None, _ -> None
      in
      match ctrl, const with
      | Some c, _ -> bind (Svector.of_ctrl out c i.length)
      | _, Some k ->
          let col = Column.init (Scalar.dtype_of k) 1 (fun _ -> k) in
          bind (Svector.single out col)
      | None, None -> err "non-virtual %s outside every fragment" s.id)
  | _ -> err "statement %s outside every fragment" s.id

and prepare st (cs : compiled_stmt) =
  let env = st.env in
  ignore env;
  let lookup _env v = force st v in
  let src_column _env (s : Op.src) =
    let vec = force st s.v in
    (vec, leaf_column vec s.kp)
  in
  let s = cs.stmt in
  let bind v = Hashtbl.replace st.env s.id v in
  match s.op with
  | Load table -> bind (Store.find_exn st.store table)
  | Persist (_, v) -> bind (lookup env v)
  | Constant { out; value } ->
      let col = Column.init (Scalar.dtype_of value) 1 (fun _ -> value) in
      bind (Svector.with_ctrl (Svector.single out col)
              out (Ctrl.constant (Scalar.to_int value)))
  | Range { out; from; size; step } ->
      let n =
        match size with Lit n -> n | Of_vector v -> Svector.length (lookup env v)
      in
      bind (Svector.of_ctrl out (Ctrl.range ~from ~step) n)
  | Cross { out1; v1; out2; v2 } ->
      let n1 = Svector.length (lookup env v1)
      and n2 = Svector.length (lookup env v2) in
      let n = n1 * n2 in
      bind
        (Svector.of_columns
           [
             (out1, Column.init Int n (fun i -> Scalar.I (i / n2)));
             (out2, Column.init Int n (fun i -> Scalar.I (i mod n2)));
           ])
  | Zip { out1; src1; out2; src2 } ->
      bind
        (Svector.zip (out1, lookup env src1.v, src1.kp)
           (out2, lookup env src2.v, src2.kp))
  | Project { out; src } -> bind (Svector.project ~out (lookup env src.v) src.kp)
  | Upsert { target; out; src } ->
      let svec = lookup env src.v in
      bind (Svector.upsert (lookup env target) ~out svec (leaf svec src.kp))
  | Binary { op; out; left; right } ->
      let _, lcol = src_column env left and _, rcol = src_column env right in
      let ln = Column.length lcol and rn = Column.length rcol in
      let n = if ln = 1 then rn else if rn = 1 then ln else min ln rn in
      let dt = Op.binop_dtype op (Column.dtype lcol) (Column.dtype rcol) in
      (* virtual binaries were materialized from metadata at codegen time *)
      bind (Svector.single out (Column.create dt n))
  | Gather { data; positions } ->
      let dvec = lookup env data in
      let _, pcol = src_column env positions in
      let n = Column.length pcol in
      bind
        (Svector.of_columns
           (List.map
              (fun (kp, dt) -> (kp, Column.create dt n))
              (Svector.schema dvec)))
  | Scatter { data; shape; positions; _ } ->
      let dvec = lookup env data in
      let _ = src_column env positions in
      let out_n = Svector.length (lookup env shape) in
      bind
        (Svector.of_columns
           (List.map
              (fun (kp, dt) -> (kp, Column.create dt out_n))
              (Svector.schema dvec)))
  | Materialize { data; _ } | Break { data; _ } ->
      let dvec = lookup env data in
      if List.length (Svector.keypaths dvec) > 1 then
        Hashtbl.replace st.interleaved s.id ();
      bind dvec
  | Partition { out; values; pivots } ->
      let vvec, _ = src_column env values in
      let _ = src_column env pivots in
      bind (Svector.single out (Column.create Int (Svector.length vvec)))
  | FoldSelect { out; input; _ } ->
      let vec, _ = src_column env input in
      bind (Svector.single out (Column.create Int (Svector.length vec)))
  | FoldAgg { agg; out; input; _ } -> (
      match cs.grouped_fold with
      | Some g ->
          let shape_n = (* output length: the scattered vector's length *)
            Svector.length (lookup env input.v)
          in
          let _, vcol = src_column env { Op.v = g.source; kp = g.value_src.kp } in
          let dt = fold_out_dtype agg vcol in
          Hashtbl.replace st.group_acc s.id
            (Array.make g.group_count None, Array.make g.group_count 0);
          bind (Svector.single out (Column.create dt shape_n))
      | None ->
          let vec, col = src_column env input in
          bind (Svector.single out (Column.create (fold_out_dtype agg col)
                                      (Svector.length vec))))
  | FoldScan { out; input; _ } ->
      let vec, col = src_column env input in
      bind
        (Svector.single out (Column.create (Column.dtype col) (Svector.length vec)))

(* ---------- run boundary computation for folds ---------- *)

(* Sub-runs of [lo,hi) of the fold attribute.  When the fragment's intent
   equals the uniform run length (the aligned case the compiler arranged),
   the whole range is one run; otherwise boundaries are found by scanning
   the materialized control attribute (costing one comparison per element,
   which the caller accounts). *)
let runs_in_range ~fold_col lo hi =
  match fold_col with
  | None -> [ (lo, hi) ]
  | Some col ->
      let rec go start i acc =
        if i >= hi then List.rev ((start, hi) :: acc)
        else if Column.get col i <> Column.get col (i - 1) then
          go i (i + 1) ((start, i) :: acc)
        else go start (i + 1) acc
      in
      if hi <= lo then [] else go lo (lo + 1) []

(* Is the fragment range already aligned with the fold's runs? *)
let aligned_fold st (frag : frag) env (input : Op.src) fold =
  match fold with
  | None -> Svector.length (lookup env input.v) <= frag.intent
  | Some kp -> (
      let vec = lookup env input.v in
      let n = Svector.length vec in
      match Svector.ctrl vec (leaf vec kp) with
      | Some c -> (
          match Ctrl.runs c ~n with
          | Ctrl.Single_run -> n <= frag.intent
          | Uniform l -> l = frag.intent
          | Irregular -> false)
      | None ->
          ignore st;
          false)

(* ---------- position-pattern classification ---------- *)

let new_pos_stats () =
  { monotone = true; first = min_int; last = min_int; zero_hits = 0; total = 0 }

let stats_in tbl key =
  match Hashtbl.find_opt tbl key with
  | Some ps -> ps
  | None ->
      let ps = new_pos_stats () in
      Hashtbl.replace tbl key ps;
      ps

let stats_of st key = stats_in st.pos_stats key

let observe ps p =
  if ps.total = 0 then ps.first <- p;
  if p < ps.last then ps.monotone <- false;
  ps.last <- p;
  if p = 0 then ps.zero_hits <- ps.zero_hits + 1;
  ps.total <- ps.total + 1

(* [merge_pos ~into ps] appends a later chunk's observations: exactly the
   state [observe] would have reached had the chunk's positions streamed
   in after [into]'s.  The only cross-chunk interaction is the
   monotonicity check at the seam (first of the later chunk against last
   of the earlier). *)
let merge_pos ~into ps =
  if ps.total > 0 then begin
    if into.total = 0 then begin
      into.monotone <- ps.monotone;
      into.first <- ps.first
    end
    else into.monotone <- into.monotone && ps.monotone && ps.first >= into.last;
    into.last <- ps.last;
    into.zero_hits <- into.zero_hits + ps.zero_hits;
    into.total <- into.total + ps.total
  end

(* Record [ps.total] accesses of element width into a buffer of [bytes]
   bytes, splitting hot-line traffic from genuinely random traffic. *)
let record_positional ?(serial = false) ev ~site ~bytes (ps : pos_stats) =
  if ps.total = 0 then ()
  else if ps.monotone then
    Events.mem ev ~site ~pattern:Cache.Sequential ~elem_bytes:width ps.total
  else begin
    (* hot-line fraction: repeated lookups of slot 0 (predicated lookups) *)
    let hot = if ps.zero_hits * 4 >= ps.total then ps.zero_hits else 0 in
    if hot > 0 then
      Events.mem ev ~site:(site ^ ":hot") ~pattern:Cache.Single_hot
        ~elem_bytes:width hot;
    Events.mem ~serial ev ~site ~pattern:(Cache.Random bytes) ~elem_bytes:width
      (ps.total - hot)
  end

(* ---------- whole-domain partition (runs once, in its own fragment) ---- *)

(* Histogram, prefix, emit (two passes over the values); shared verbatim
   by the tree walk and the closure path — it is a one-shot computation,
   not a per-element hot loop.  Returns [(n, npart)] for the caller's
   event accounting. *)
let partition_compute st (s : Program.stmt) ~(values : Op.src)
    ~(pivots : Op.src) =
  let env = st.env in
  let vvec, vcol = src_column env values in
  let _, pcol = src_column env pivots in
  let n = Svector.length vvec in
  let piv =
    List.filter_map Fun.id (Column.to_scalars pcol)
    |> List.sort Scalar.compare_scalar
    |> Array.of_list
  in
  let npart = Array.length piv + 1 in
  let part_of v =
    let rec bs lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Scalar.compare_scalar piv.(mid) v < 0 then bs (mid + 1) hi
        else bs lo mid
    in
    bs 0 (Array.length piv)
  in
  let parts =
    Array.init n (fun i ->
        match Column.get vcol i with
        | Some v -> part_of v
        | None -> npart - 1)
  in
  let counts = Array.make npart 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) parts;
  let base = Array.make npart 0 in
  for p = 1 to npart - 1 do
    base.(p) <- base.(p - 1) + counts.(p - 1)
  done;
  let cursor = Array.copy base in
  let out = leaf_column (lookup env s.id) [] in
  for i = 0 to n - 1 do
    let p = parts.(i) in
    Column.set out i (Scalar.I cursor.(p));
    cursor.(p) <- cursor.(p) + 1
  done;
  (n, npart)

(* ---------- deferred positional accounting ---------- *)

(* Record the positional traffic of a fragment's gathers and scatters once
   all work items have run and the whole position sequence (accumulated in
   [pos] — the state table for the tree walk, a merged chunk table for the
   closure path) has been classified. *)
let record_deferred st ev ~pos (cs : compiled_stmt) =
  let s = cs.stmt in
  match s.op with
  | Gather { data; _ } -> (
      match Hashtbl.find_opt pos ("g:" ^ s.id) with
      | None -> ()
      | Some ps ->
          let dvec = lookup st.env data in
          let dn = Svector.length dvec in
          let ncols = List.length (Svector.keypaths dvec) in
          let data_id, _ = resolve_read st data [] in
          (* the lookups touch the whole gathered footprint either way; a
             row-major (interleaved) layout needs one access per row where
             a columnar layout needs one per column (Figure 14) *)
          let charged_cols =
            if Hashtbl.mem st.interleaved data_id then 1 else ncols
          in
          let bytes = dn * width * ncols in
          (* beyond the first, columnar lookups depend on the same
             iteration's position: their hit latency is exposed *)
          for c = 1 to charged_cols do
            record_positional ~serial:(c > 1) ev
              ~site:(Printf.sprintf "%s:g%d" s.id c)
              ~bytes ps
          done)
  | Scatter _ when cs.storage <> Virtual -> (
      match Hashtbl.find_opt pos ("s:" ^ s.id) with
      | None -> ()
      | Some ps ->
          let out = lookup st.env s.id in
          let out_n = Svector.length out in
          let ncols = List.length (Svector.keypaths out) in
          for c = 1 to ncols do
            record_positional ev
              ~site:(Printf.sprintf "%s:s%d" s.id c)
              ~bytes:(out_n * width) ps
          done)
  | _ -> ()

(* ---------- fault / budget instrumentation ---------- *)

(* Statements whose prepared vector owns fresh columns (as opposed to
   aliasing a load, a zip/project view or the store): the only safe
   corruption targets, and the ones whose materialization is charged
   against the vector-bytes budget. *)
let owns_fresh_columns (cs : compiled_stmt) =
  match cs.stmt.op with
  | Binary _ | Gather _ | Partition _ | Cross _ | FoldSelect _ | FoldAgg _
  | FoldScan _ ->
      cs.storage <> Virtual
  | Scatter _ -> cs.storage <> Virtual
  | Load _ | Persist _ | Constant _ | Range _ | Zip _ | Project _ | Upsert _
  | Materialize _ | Break _ ->
      false

(* Charge the budget for a fragment statement's materialized result. *)
let charge_budget st tr (cs : compiled_stmt) =
  match storage_of st cs.stmt.id with
  | Register | Virtual -> ()
  | Global | Local _ -> (
      match Hashtbl.find_opt st.env cs.stmt.id with
      | Some vec when owns_fresh_columns cs ->
          Budget.charge_bytes tr
            (Svector.length vec * List.length (Svector.keypaths vec) * width)
      | _ -> ())

(* Deterministically perturb one freshly-materialized result of the
   fragment, so an injected corruption is visible to differential checks
   without mutating shared (store-resident) vectors.  Prefer a plan
   output (corruption after the kernel ran is only observable by later
   kernels or the fetch), falling back to the last fresh statement. *)
let corrupt_fragment st ~seed (body : compiled_stmt list) =
  let candidates = List.filter owns_fresh_columns body in
  let preferred =
    List.filter
      (fun (cs : compiled_stmt) -> List.mem cs.stmt.id st.plan.outputs)
      candidates
  in
  match List.rev (if preferred <> [] then preferred else candidates) with
  | [] -> ()
  | cs :: _ -> (
      match Hashtbl.find_opt st.env cs.stmt.id with
      | Some vec -> Fault.corrupt ~seed vec
      | None -> ())

(* ---------- driver scaffolding ---------- *)

(* Copy a fragment's observed behaviour into its trace span: every event
   total, the materialized result bytes, and the per-statement storage mix. *)
let span_counters trace st (f : frag) ev =
  List.iter (fun (name, v) -> Trace.count trace name v) (Events.totals ev);
  Trace.count trace "fragment.extent" (float_of_int f.extent);
  let bytes =
    List.fold_left
      (fun acc (cs : compiled_stmt) ->
        match storage_of st cs.stmt.id with
        | Register | Virtual -> acc
        | Global | Local _ -> (
            match Hashtbl.find_opt st.env cs.stmt.id with
            | Some vec when owns_fresh_columns cs ->
                acc
                + Svector.length vec * List.length (Svector.keypaths vec)
                  * width
            | _ -> acc))
      0 (stmts_in_order f)
  in
  Trace.count trace "bytes.materialized" (float_of_int bytes)

let init_state ~store ~options (plan : plan) =
  let st =
    {
      store;
      plan;
      env = Hashtbl.create 32;
      meta = Hashtbl.create 32;
      storage = Hashtbl.create 32;
      suppressed = Hashtbl.create 8;
      interleaved = Hashtbl.create 4;
      opts = options;
      group_acc = Hashtbl.create 4;
      in_frag = Hashtbl.create 32;
      charged = Hashtbl.create 8;
      pos_stats = Hashtbl.create 8;
    }
  in
  List.iter (fun (id, i) -> Hashtbl.replace st.meta id i) plan.meta;
  (* register storage classes and fragment membership *)
  List.iter
    (fun f ->
      List.iter
        (fun (cs : compiled_stmt) ->
          Hashtbl.replace st.storage cs.stmt.id cs.storage;
          Hashtbl.replace st.in_frag cs.stmt.id ())
        (stmts_in_order f))
    plan.frags;
  List.iter
    (fun (s : Program.stmt) ->
      if not (Hashtbl.mem st.in_frag s.id) then
        Hashtbl.replace st.storage s.id
          (match s.op with Load _ -> Global | _ -> Virtual))
    (Program.stmts plan.program);
  st
