(** Process-wide engagement counters for the parallel grouped-fold path
    (see the interface). *)

let fused = Atomic.make 0
let parallel_chunks = Atomic.make 0

let record_fold ~fused:f ~chunks =
  if f > 0 then ignore (Atomic.fetch_and_add fused f);
  (* a single chunk is the sequential path: only real splits count *)
  if chunks > 1 then ignore (Atomic.fetch_and_add parallel_chunks chunks)

let fold_fused () = Atomic.get fused
let fold_parallel_chunks () = Atomic.get parallel_chunks

let reset () =
  Atomic.set fused 0;
  Atomic.set parallel_chunks 0
