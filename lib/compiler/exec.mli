(** Fragment executor: runs a compiled {!Fragment.plan} and accounts the
    hardware events the cost model prices.

    Execution follows the generated kernels' structure — each fragment
    loops over its extent of work items, each work item processes its
    intent-sized range through the fused statement list.  Semantics equal
    the reference interpreter (property-tested); the storage classes
    decide which accesses touch device memory.  Dynamic behaviour the cost
    model needs is observed live: predicate outcomes stream through branch
    predictors, position sequences are classified (sequential / random /
    hot-line), and empty-slot suppression shrinks fold-output traffic to
    the run count. *)

open Voodoo_vector
open Voodoo_core
open Voodoo_device

(** Device element width in bytes (the paper's workloads are 32-bit). *)
val width : int

type result = {
  env : (Op.id, Svector.t) Hashtbl.t;
  kernels : (int * Events.t) list;  (** (extent, events) per fragment *)
  plan : Fragment.plan;
}

exception Exec_error of string

(** [run ?trace ?options ?budget ?exec ~store plan] executes the plan.
    The optional {!Voodoo_core.Budget.t} caps total kernel extent and
    materialized vector bytes ({!Voodoo_core.Budget.Exceeded} aborts the
    run); the global {!Voodoo_core.Fault} injector, when armed, is
    consulted at every kernel launch.  With a {!Voodoo_core.Trace.t},
    every fragment runs inside a ["fragment:<i>"] span carrying its
    extent/intent/domain attributes and, as counters, its
    {!Events.totals} plus ["bytes.materialized"] and
    ["fragment.extent"].

    [exec] overrides [options.exec] for this run only (the service uses
    this to pick raw closures or a per-query job count at dispatch time
    without invalidating plan-cache keys).  Rows are bit-identical
    across all modes; event totals are bit-identical across all
    instrumented modes and job counts, and empty (all-zero) under
    [Closure { instrument = false; _ }]. *)
val run :
  ?trace:Trace.t -> ?options:Codegen.options -> ?budget:Budget.t ->
  ?exec:Codegen.exec_mode -> store:Store.t -> Fragment.plan -> result

(** [output r id] reads a result vector.  Raises {!Exec_error}. *)
val output : result -> Op.id -> Svector.t

(** [cost r device] prices the executed kernels on [device]. *)
val cost : result -> Config.t -> Cost.breakdown

(** [scale_events r k] scales all recorded events (and extents) by [k],
    for reporting a larger data scale than was executed. *)
val scale_events : result -> float -> result
