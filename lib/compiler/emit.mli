(** OpenCL C source emission.

    Renders each fragment of a compiled plan as one fully inlined,
    function-call-free OpenCL kernel: the extent becomes the global work
    size, the intent a sequential loop per work item, register-class
    intermediates become scalars, folds become accumulators, control
    vectors appear only as index arithmetic, and suppressed fold outputs
    index by run.  This is the inspectable artifact of the compilation
    decisions; the executable semantics live in {!Exec}. *)

(** [source plan] renders the whole plan as OpenCL C. *)
val source : Fragment.plan -> string
