(** The compiling backend, tied together: optimize → plan → execute/price —
    the public entry point mirroring the paper's OpenCL backend. *)

open Voodoo_core
open Voodoo_device

type compiled = {
  plan : Fragment.plan;
  options : Codegen.options;
  store : Store.t;
  subst : (Op.id * Op.id) list;
      (** CSE renames: original statement name → surviving name *)
}

(** [compile ?trace ?options ?optimize ~store program] builds the kernel
    plan.  [optimize] (default true) runs constant folding, CSE and DCE
    first.  With a trace, the work happens under ["optimize"] and
    ["codegen"] spans (the latter counting ["fragments"] and
    ["statements"]). *)
val compile :
  ?trace:Trace.t -> ?options:Codegen.options -> ?optimize:bool ->
  store:Store.t -> Program.t -> compiled

(** Execute, returning vectors and per-kernel events.  Statements that CSE
    merged stay reachable under their original names.  [budget] caps the
    run's resources; [trace] records per-fragment spans (see
    {!Exec.run}). *)
val run :
  ?trace:Trace.t -> ?budget:Budget.t -> ?exec:Codegen.exec_mode -> compiled ->
  Exec.result

(** [eval c id] compiles-and-runs, returning one result vector. *)
val eval : compiled -> Op.id -> Voodoo_vector.Svector.t

val cost : Exec.result -> Config.t -> Cost.breakdown

(** Emitted OpenCL C for the whole plan. *)
val source : compiled -> string

val pp_plan : Format.formatter -> compiled -> unit
