(** Voodoo → fragment/kernel code generation (paper Section 3.1).

    Traverses the program in dependency order, appending each statement to
    a compatible open fragment or opening a new one:

    - data-parallel, maintenance and shape operators fuse freely into a
      fragment over the same element domain;
    - control vectors and compile-time constants are {e virtual};
    - a controlled fold derives its run length from its control
      attribute's metadata — runs of length 1 are fully data-parallel, a
      single run is fully sequential, uniform runs of length L give extent
      ⌈n/L⌉ and intent L; folds of different run lengths never share a
      fragment (a kernel boundary separates them);
    - [Break] and [Materialize] close their fragment;
    - identity scatters are virtual;
    - with {!options.virtual_scatter}, a [Partition]→[Scatter]→[FoldAgg]
      chain over data values becomes a direct grouped aggregation that
      never materializes the scattered vector (Figures 10–11). *)

open Voodoo_core

(** How {!Exec.run} drives the compiled plan.  [Tree_walk] is the
    reference per-work-item interpreter kept as the differential oracle;
    [Closure] compiles each fragment's fused statement list into OCaml
    closures once per fragment — with [instrument = false] the closures
    skip device simulation entirely (no events, no branch predictors:
    legal only when nobody reads costs or traces), and [jobs > 1] splits
    each fragment's extent into deterministic chunks run on the shared
    domain pool ({!Voodoo_core.Domain_pool.shared}).  Rows and
    instrumented event totals are bit-identical across all modes and any
    job count.  The mode never changes the plan's shape, but it is part
    of [options] so it travels with compiled plans and cache keys. *)
type exec_mode =
  | Tree_walk
  | Closure of { instrument : bool; jobs : int }

type options = {
  fuse : bool;  (** operator fusion into fragments; off = bulk processing *)
  virtual_scatter : bool;
  suppress_empty_slots : bool;
  exec : exec_mode;  (** execution strategy; plan shape is unaffected *)
  tile_width : int;
      (** slots per execution tile in the raw closure path (rounded to a
          multiple of 64, minimum 64); also the zone-map granularity.
          Never changes results — only how the work is blocked. *)
  zone_maps : bool;
      (** maintain and consult per-tile min/max summaries so selections
          and folds can skip all-empty / all-false / all-true tiles *)
  fold_grain : int;
      (** radix-partition grain (paper §5.3): minimum elements a parallel
          grouped-fold chunk owns before its private partial accumulators
          pay for the chunk-order merge.  Never changes results — only
          how many chunks a fold fragment splits into. *)
  partition_fuse : bool;
      (** fuse [Partition]→[Scatter]→[FoldAgg] chains into direct grouped
          aggregation (Figures 10–11); off = materialize the scattered
          vector and fold over its runs (§5.3's fusion tunable).  Result
          rows are identical either way. *)
  nprobe : int;
      (** IVF coarse-index probe count: how many centroid partitions a
          vector-similarity search scans.  Consulted by the
          [Voodoo_vsim] probe scheduler, never by the executor — for
          ordinary relational plans it is inert.  It lives here so it
          travels with compiled plans, is digested into service
          plan-cache keys, and joins the tuner's (program, options)
          search space like [fold_grain] does. *)
}

(** Fuse + virtualize + suppress, executed by instrumented closures on a
    single domain; 1024-slot tiles with zone maps on, 16384-element fold
    grain, Partition/Scatter fusion on, 8 IVF probes. *)
val default_options : options

(** [tile_width] clamped to a multiple of 64, minimum 64 — the width the
    executor actually tiles (and builds zone maps) at. *)
val effective_tile_width : options -> int

(** [fold_grain] clamped to at least one element. *)
val effective_fold_grain : options -> int

(** [build ?options ~vector_length p] compiles an (already optimized)
    program; [vector_length name] gives the length of persistent vector
    [name]. *)
val build :
  ?options:options -> vector_length:(string -> int option) -> Program.t ->
  Fragment.plan
