(** Voodoo → fragment/kernel code generation (paper Section 3.1).

    Traverses the program in dependency order, appending each statement to
    a compatible open fragment or opening a new one:

    - data-parallel, maintenance and shape operators fuse freely into a
      fragment over the same element domain;
    - control vectors and compile-time constants are {e virtual};
    - a controlled fold derives its run length from its control
      attribute's metadata — runs of length 1 are fully data-parallel, a
      single run is fully sequential, uniform runs of length L give extent
      ⌈n/L⌉ and intent L; folds of different run lengths never share a
      fragment (a kernel boundary separates them);
    - [Break] and [Materialize] close their fragment;
    - identity scatters are virtual;
    - with {!options.virtual_scatter}, a [Partition]→[Scatter]→[FoldAgg]
      chain over data values becomes a direct grouped aggregation that
      never materializes the scattered vector (Figures 10–11). *)

open Voodoo_core

type options = {
  fuse : bool;  (** operator fusion into fragments; off = bulk processing *)
  virtual_scatter : bool;
  suppress_empty_slots : bool;
}

val default_options : options

(** [build ?options ~vector_length p] compiles an (already optimized)
    program; [vector_length name] gives the length of persistent vector
    [name]. *)
val build :
  ?options:options -> vector_length:(string -> int option) -> Program.t ->
  Fragment.plan
