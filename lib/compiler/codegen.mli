(** Voodoo → fragment/kernel code generation (paper Section 3.1).

    Traverses the program in dependency order, appending each statement to
    a compatible open fragment or opening a new one:

    - data-parallel, maintenance and shape operators fuse freely into a
      fragment over the same element domain;
    - control vectors and compile-time constants are {e virtual};
    - a controlled fold derives its run length from its control
      attribute's metadata — runs of length 1 are fully data-parallel, a
      single run is fully sequential, uniform runs of length L give extent
      ⌈n/L⌉ and intent L; folds of different run lengths never share a
      fragment (a kernel boundary separates them);
    - [Break] and [Materialize] close their fragment;
    - identity scatters are virtual;
    - with {!options.virtual_scatter}, a [Partition]→[Scatter]→[FoldAgg]
      chain over data values becomes a direct grouped aggregation that
      never materializes the scattered vector (Figures 10–11). *)

open Voodoo_core

(** How {!Exec.run} drives the compiled plan.  [Tree_walk] is the
    reference per-work-item interpreter kept as the differential oracle;
    [Closure] compiles each fragment's fused statement list into OCaml
    closures once per fragment — with [instrument = false] the closures
    skip device simulation entirely (no events, no branch predictors:
    legal only when nobody reads costs or traces), and [jobs > 1] splits
    each fragment's extent into deterministic chunks run on the shared
    domain pool ({!Voodoo_core.Domain_pool.shared}).  Rows and
    instrumented event totals are bit-identical across all modes and any
    job count.  The mode never changes the plan's shape, but it is part
    of [options] so it travels with compiled plans and cache keys. *)
type exec_mode =
  | Tree_walk
  | Closure of { instrument : bool; jobs : int }

type options = {
  fuse : bool;  (** operator fusion into fragments; off = bulk processing *)
  virtual_scatter : bool;
  suppress_empty_slots : bool;
  exec : exec_mode;  (** execution strategy; plan shape is unaffected *)
}

(** Fuse + virtualize + suppress, executed by instrumented closures on a
    single domain. *)
val default_options : options

(** [build ?options ~vector_length p] compiles an (already optimized)
    program; [vector_length name] gives the length of persistent vector
    [name]. *)
val build :
  ?options:options -> vector_length:(string -> int option) -> Program.t ->
  Fragment.plan
