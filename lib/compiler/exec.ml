(** Fragment executor: runs a compiled {!Fragment.plan} and accounts the
    hardware events the cost model prices.

    Execution is faithful to the generated kernels' structure: each
    fragment loops over its extent of work items, and each work item
    processes its intent-sized element range through the fragment's fused
    statement list (run-at-a-time).  Statement semantics are identical to
    the reference interpreter — the test suite property-checks this — but
    the storage classification from code generation decides which accesses
    touch device memory:

    - [Register] results cost no memory traffic (fully inlined values);
    - [Local] buffers stay within their working set (X100-style chunks);
    - [Global] buffers stream to and from device memory;
    - [Virtual] vectors (control vectors, constants, identity scatters)
      cost nothing at all.

    Dynamic behaviour that the cost model needs is observed during
    execution: every [FoldSelect] predicate outcome streams through a
    per-site two-bit branch predictor, gather/scatter position sequences
    are classified (sequential, random-within-working-set, or hot-line),
    and empty-slot suppression shrinks the traffic of fold outputs to the
    run count.

    Two execution strategies implement these semantics
    ({!Codegen.exec_mode}): the per-work-item {e tree walk} below — the
    reference the differential tests hold everything else to — and the
    {e closure-compiled} fast path ({!Exec_compile}/{!Exec_par}), which
    resolves operator dispatch, column lookups and event-accounting
    decisions once per fragment and optionally fans chunks out across
    domains.  Shared state and statement semantics live in
    {!Exec_state}. *)

open Voodoo_vector
open Voodoo_core
open Voodoo_device
open Fragment
open Exec_state

let width = Exec_state.width

type result = {
  env : (Op.id, Svector.t) Hashtbl.t;
  kernels : (int * Events.t) list;  (** (extent, events) per fragment *)
  plan : plan;
}

exception Exec_error = Exec_state.Exec_error

(* ---------- per-range statement execution (reference tree walk) ------- *)

let exec_range (st : state) ev (frag : frag) (cs : compiled_stmt) lo hi =
  let env = st.env in
  let s = cs.stmt in
  let n_range = hi - lo in
  match s.op with
  | Load _ | Persist _ | Constant _ | Range _ | Cross _ | Zip _ | Project _
  | Upsert _ | Materialize _ | Break _ ->
      (* prepared (aliased/virtual/generated) once; Materialize/Break incur
         their storage traffic here *)
      if lo = 0 then begin
        match s.op with
        | Materialize { data; _ } | Break { data; _ } ->
            let vec = lookup env data in
            let n = Svector.length vec in
            let cols = List.length (Svector.keypaths vec) in
            charge_read st ev { Op.v = data; kp = [] } (n * cols);
            record_write st ev s.id (n * cols)
        | Cross _ ->
            let n = Svector.length (lookup env s.id) in
            Events.alu ev Int (2 * n);
            record_write st ev s.id (2 * n)
        | _ -> ()
      end
  | Binary { op; left; right; _ } ->
      if storage_of st s.id = Virtual then ()
      else begin
        let _, lcol = src_column env left and _, rcol = src_column env right in
        let out = leaf_column (lookup env s.id) [] in
        let n_out = Column.length out in
        let hi = min hi n_out in
        for i = lo to hi - 1 do
          match bget lcol i, bget rcol i with
          | Some a, Some b -> Column.set out i (Op.apply_binop op a b)
          | None, _ | _, None -> ()
        done;
        let dt = Column.dtype out in
        Events.alu ev dt (max 0 (hi - lo));
        charge_read st ev left (max 0 (hi - lo));
        charge_read st ev right (max 0 (hi - lo));
        record_write st ev s.id (max 0 (hi - lo))
      end
  | Gather { data; positions } ->
      let dvec = lookup env data in
      let _, pcol = src_column env positions in
      let out = lookup env s.id in
      let dn = Svector.length dvec in
      let cols =
        List.map (fun kp -> (Svector.column dvec kp, Svector.column out kp))
          (Svector.keypaths dvec)
      in
      let ps = stats_of st ("g:" ^ s.id) in
      let hi = min hi (Column.length pcol) in
      let valid = ref 0 in
      for i = lo to hi - 1 do
        match Column.get pcol i with
        | Some p ->
            let p = Scalar.to_int p in
            observe ps p;
            incr valid;
            if p >= 0 && p < dn then
              List.iter
                (fun (src, dst) ->
                  match Column.get src p with
                  | Some v -> Column.set dst i v
                  | None -> ())
                cols
        | None -> ()
      done;
      let ncols = List.length cols in
      Events.alu ev Int !valid;
      charge_read st ev positions !valid;
      record_write st ev s.id (!valid * ncols)
      (* the positional lookup traffic itself is recorded once the whole
         fragment has run and the access pattern is known: see
         [Exec_state.record_deferred] *)
  | Scatter { data; positions; _ } ->
      if storage_of st s.id = Virtual then begin
        (* identity scatter: alias the data vector *)
        if lo = 0 then Hashtbl.replace env s.id (lookup env data)
      end
      else begin
        let dvec = lookup env data in
        let out = lookup env s.id in
        let _, pcol = src_column env positions in
        let out_n = Svector.length out in
        let cols =
          List.map (fun kp -> (Svector.column dvec kp, Svector.column out kp))
            (Svector.keypaths dvec)
        in
        let ps = stats_of st ("s:" ^ s.id) in
        let hi = min hi (min (Svector.length dvec) (Column.length pcol)) in
        let valid = ref 0 in
        for i = lo to hi - 1 do
          match Column.get pcol i with
          | Some p ->
              let p = Scalar.to_int p in
              observe ps p;
              incr valid;
              if p >= 0 && p < out_n then
                List.iter
                  (fun (src, dst) ->
                    match Column.get src i with
                    | Some v -> Column.set dst p v
                    | None -> Column.set_empty dst p)
                  cols
          | None -> ()
        done;
        let ncols = List.length cols in
        Events.alu ev Int !valid;
        charge_read st ev positions !valid;
        charge_read st ev { Op.v = data; kp = [] } (!valid * ncols)
      end
  | Partition { values; pivots; _ } ->
      (* executes whole-domain in its own fragment: histogram, prefix,
         emit (two passes over the values) *)
      if lo = 0 then begin
        let n, npart = partition_compute st s ~values ~pivots in
        (* events: two read passes, histogram updates, position writes *)
        charge_read st ev values (2 * n);
        Events.alu ev Int ((3 * n) + npart);
        Events.mem ev ~site:(s.id ^ ":hist") ~pattern:(Cache.Random (npart * width))
          ~elem_bytes:width (2 * n);
        record_write st ev s.id n
      end
  | FoldAgg { agg; fold; input; _ } -> (
      match cs.grouped_fold with
      | Some g ->
          (* virtual scatter: accumulate straight off the source *)
          let _, gcol = src_column env { Op.v = g.source; kp = g.group_src.kp } in
          let _, vcol = src_column env { Op.v = g.source; kp = g.value_src.kp } in
          let accs, counts = Hashtbl.find st.group_acc s.id in
          let k = Array.length accs in
          let hi = min hi (Column.length gcol) in
          for i = lo to hi - 1 do
            (* slots with an ε group id land in the last partition, exactly
               as Partition places them *)
            let gi =
              match Column.get gcol i with
              | Some gv -> Scalar.to_int gv
              | None -> k - 1
            in
            if gi >= 0 && gi < k then begin
              counts.(gi) <- counts.(gi) + 1;
              match Column.get vcol i with
              | Some v ->
                  accs.(gi) <-
                    Some
                      (match accs.(gi), (agg : Op.agg) with
                      | None, Count -> Scalar.I 1
                      | None, _ -> v
                      | Some cur, Sum -> Scalar.add cur v
                      | Some cur, Max -> Scalar.max_s cur v
                      | Some cur, Min -> Scalar.min_s cur v
                      | Some cur, Count -> Scalar.add cur (Scalar.I 1))
              | None -> ()
            end
          done;
          Events.alu ev (Column.dtype vcol) (2 * n_range);
          charge_read st ev g.group_src n_range;
          charge_read st ev g.value_src n_range;
          Events.mem ev ~site:(s.id ^ ":acc")
            ~pattern:(Cache.Random (Array.length accs * width))
            ~elem_bytes:width n_range;
          (* at the last range, lay results out as the scattered fold
             would: each group's aggregate at its partition start *)
          if hi >= Column.length gcol then begin
            let out = leaf_column (lookup env s.id) [] in
            let dt = Column.dtype out in
            let pos = ref 0 in
            for gi = 0 to k - 1 do
              (match accs.(gi), (agg : Op.agg) with
              | Some v, _ -> Column.set out !pos v
              | None, (Sum | Count) ->
                  (* non-empty partition of all-ε values sums to zero; an
                     empty partition has no run and leaves ε *)
                  if counts.(gi) > 0 then Column.set out !pos (Scalar.zero dt)
              | None, (Max | Min) -> ());
              pos := !pos + counts.(gi)
            done;
            Hashtbl.replace st.suppressed s.id k;
            record_write st ev s.id k
          end
      | None ->
          let vec, col = src_column env input in
          let out = leaf_column (lookup env s.id) [] in
          let fold_col =
            if aligned_fold st frag env input fold then None
            else
              Option.map (fun kp -> leaf_column vec kp) fold
          in
          if fold_col <> None then
            Events.alu ev Int n_range (* run-boundary comparisons *);
          let dt = fold_out_dtype agg col in
          let run_count = ref 0 in
          List.iter
            (fun (rlo, rhi) ->
              incr run_count;
              let acc = ref None in
              for i = rlo to rhi - 1 do
                match Column.get col i with
                | Some v ->
                    acc :=
                      Some
                        (match !acc, (agg : Op.agg) with
                        | None, Count -> Scalar.I 1
                        | None, _ -> v
                        | Some cur, Sum -> Scalar.add cur v
                        | Some cur, Max -> Scalar.max_s cur v
                        | Some cur, Min -> Scalar.min_s cur v
                        | Some cur, Count -> Scalar.add cur (Scalar.I 1))
                | None -> ()
              done;
              match !acc, (agg : Op.agg) with
              | Some v, _ -> Column.set out rlo v
              | None, (Sum | Count) -> Column.set out rlo (Scalar.zero dt)
              | None, (Max | Min) -> ())
            (runs_in_range ~fold_col lo hi);
          let rid, _ = resolve_read st input.v (leaf vec input.kp) in
          let eff = effective_reads st rid n_range in
          Events.alu ev (Column.dtype col) eff;
          charge_read st ev input n_range;
          record_write st ev s.id !run_count;
          if st.opts.suppress_empty_slots && hi >= Svector.length vec then begin
            let prev = Option.value (Hashtbl.find_opt st.suppressed s.id) ~default:0 in
            Hashtbl.replace st.suppressed s.id (prev + !run_count)
          end)
  | FoldSelect { fold; input; _ } ->
      let vec, col = src_column env input in
      let out = leaf_column (lookup env s.id) [] in
      let fold_col =
        if aligned_fold st frag env input fold then None
        else Option.map (fun kp -> leaf_column vec kp) fold
      in
      if fold_col <> None then Events.alu ev Int n_range;
      let emitted = ref 0 in
      List.iter
        (fun (rlo, rhi) ->
          let cursor = ref rlo in
          for i = rlo to rhi - 1 do
            let taken =
              match Column.get col i with
              | Some v -> Scalar.truthy v
              | None -> false
            in
            Events.branch ev ~site:s.id taken;
            if taken then begin
              Column.set out !cursor (Scalar.I i);
              incr cursor;
              incr emitted
            end
          done)
        (runs_in_range ~fold_col lo hi);
      Events.alu ev (Column.dtype col) n_range (* predicate evaluation *);
      Events.guarded ev !emitted;
      charge_read st ev input n_range;
      record_write st ev s.id !emitted
  | FoldScan { fold; input; _ } ->
      let vec, col = src_column env input in
      let out = leaf_column (lookup env s.id) [] in
      let fold_col =
        if aligned_fold st frag env input fold then None
        else Option.map (fun kp -> leaf_column vec kp) fold
      in
      if fold_col <> None then Events.alu ev Int n_range;
      List.iter
        (fun (rlo, rhi) ->
          let acc = ref (Scalar.zero (Column.dtype col)) in
          for i = rlo to rhi - 1 do
            (match Column.get col i with
            | Some v -> acc := Scalar.add !acc v
            | None -> ());
            Column.set out i !acc
          done)
        (runs_in_range ~fold_col lo hi);
      Events.alu ev (Column.dtype col) n_range;
      charge_read st ev input n_range;
      record_write st ev s.id n_range

(* ---------- driver ---------- *)

let run ?trace ?(options = Codegen.default_options)
    ?(budget = Budget.unlimited) ?exec ~(store : Store.t) (plan : plan) :
    result =
  let mode = Option.value exec ~default:options.Codegen.exec in
  let instrument, jobs =
    match mode with
    | Codegen.Tree_walk -> (true, 1)
    | Codegen.Closure { instrument; jobs } -> (instrument, max 1 jobs)
  in
  let tr = Budget.tracker budget in
  (* cooperative deadline/cancellation: one closure built up front, only
     when the budget is timed — untimed runs pay nothing in the loops *)
  let chk =
    if Budget.timed budget then Some (fun () -> Budget.check_time tr) else None
  in
  let st = init_state ~store ~options plan in
  (* execute fragments in order *)
  let kernels =
    List.map
      (fun (f : frag) ->
        Trace.with_span trace
          ~attrs:
            [
              ("extent", string_of_int f.extent);
              ("intent", string_of_int f.intent);
              ("domain", string_of_int f.domain);
              ( "stmts",
                String.concat ","
                  (List.map
                     (fun (cs : compiled_stmt) -> cs.stmt.id)
                     (stmts_in_order f)) );
            ]
          (Printf.sprintf "fragment:%d" f.index)
          (fun () ->
            Fault.kernel_started ();
            (match chk with Some c -> c () | None -> ());
            Budget.charge_extent tr f.extent;
            let ev = Events.create () in
            let body = stmts_in_order f in
            List.iter
              (fun cs ->
                prepare st cs;
                charge_budget st tr cs)
              body;
            (match mode with
            | Codegen.Tree_walk ->
                let intent = max 1 f.intent in
                for w = 0 to f.extent - 1 do
                  (match chk with Some c -> c () | None -> ());
                  let lo = w * intent in
                  let hi = min f.domain ((w + 1) * intent) in
                  Hashtbl.reset st.charged;
                  if hi > lo || lo = 0 then
                    List.iter
                      (fun cs ->
                        (* per-statement: fragments fold to few, large
                           work items, so per-item checks alone can
                           overshoot an expired deadline by a fragment *)
                        (match chk with Some c -> c () | None -> ());
                        exec_range st ev f cs lo hi)
                      body
                done;
                List.iter
                  (fun cs -> record_deferred st ev ~pos:st.pos_stats cs)
                  body
            | Codegen.Closure _ ->
                let pi =
                  Exec_par.exec_fragment ?chk st ev f body ~instrument ~jobs
                in
                if pi.Exec_par.pi_fold_fused > 0 then begin
                  Exec_stats.record_fold ~fused:pi.Exec_par.pi_fold_fused
                    ~chunks:pi.Exec_par.pi_fold_chunks;
                  Trace.count trace "fold.fused"
                    (float_of_int pi.Exec_par.pi_fold_fused);
                  if pi.Exec_par.pi_fold_chunks > 1 then
                    Trace.count trace "fold.parallel_chunks"
                      (float_of_int pi.Exec_par.pi_fold_chunks)
                end);
            (match Fault.corrupt_kernel_now () with
            | Some seed -> corrupt_fragment st ~seed body
            | None -> ());
            (* persists *)
            List.iter
              (fun (cs : compiled_stmt) ->
                match cs.stmt.op with
                | Persist (name, v) -> Store.add st.store name (lookup st.env v)
                | _ -> ())
              body;
            span_counters trace st f ev;
            (f.extent, ev)))
      plan.frags
  in
  (* bind any remaining non-fragment (virtual/structural) statements so the
     environment is total — they carry no cost *)
  List.iter
    (fun (s : Program.stmt) -> ignore (force st s.id))
    (Program.stmts plan.program);
  { env = st.env; kernels; plan }

(** [output r id] reads a result vector. *)
let output (r : result) id = lookup r.env id

(** [cost r device] prices the executed kernels on [device]. *)
let cost r (d : Config.t) : Cost.breakdown = Cost.total d r.kernels

(** [scale_events r k] scales deep copies of the recorded events by [k]
    (for reporting a larger data scale than was executed); extents scale
    too.  The input result — possibly shared through a cache — is left
    untouched. *)
let scale_events r k =
  {
    r with
    kernels =
      List.map
        (fun (e, ev) ->
          let ev = Events.copy ev in
          Events.scale ev k;
          (int_of_float (float_of_int e *. k), ev))
        r.kernels;
  }
