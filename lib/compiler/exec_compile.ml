(** Closure compilation of fragment bodies (the fast execution path).

    The reference executor ({!Exec}) walks each statement's tree once per
    work item: every element access re-matches on the operator, re-looks
    columns up in the environment, boxes scalars, and re-decides the
    event accounting.  This module performs all of those decisions {e
    once per fragment}, after {!Exec_state.prepare} has bound every
    output, and emits a list of OCaml closures over the resolved column
    buffers — monomorphic loops over the raw Bigarray payloads
    ([Array1.unsafe_get]/[unsafe_set]) for the common dtype combinations,
    a generic scalar loop otherwise.

    Two builds exist per statement:

    - {e instrumented} ([instrument = true]): the closures replicate the
      tree walk's event accounting exactly — same sites, same counts,
      same per-element branch-predictor stream — so cost-model runs can
      use the fast path with bit-identical {!Voodoo_device.Events}
      records;
    - {e raw} ([instrument = false]): device simulation is skipped
      entirely (no events, no predictors, no position classification),
      and the driver runs each fragment {e tile-at-a-time}: fixed-width
      tiles ({!Voodoo_compiler.Codegen.options.tile_width} slots, default
      1024) flow through the fragment's fused statements back-to-back, so
      a tile's outputs are still cache-hot when the next statement reads
      them.  Rows are bit-identical to the instrumented build and the
      tree walk.

    Tiling never crosses a fold-run boundary: statements are split into
    {e tile groups} at each controlled fold whose output is not
    element-aligned with its input (FoldSelect compacts leftward, FoldAgg
    writes only at run end), and each group finishes the whole work item
    before the next group starts.  Fold accumulators and select cursors
    stream across a run's tiles through per-chunk {!fstate} cells, so
    chunked domain-parallel execution stays bit-identical for any job
    count (chunk seams fall on tile boundaries, see
    {!Voodoo_core.Chunk}).

    With {!Voodoo_compiler.Codegen.options.zone_maps} on, the raw build
    also skips tiles wholesale: comparison and logic kernels summarize
    each tile they produce (all-true / all-false / mixed, published
    per-chunk in {!ctx}), selections consult that summary — or a lazily
    built {!Voodoo_vector.Column.zones} map when their input comes from
    an earlier fragment — and emit nothing for all-false tiles or a
    branch-free dense run of positions for all-true tiles; aligned folds
    skip tiles whose zone map shows no valid slot.  Skipping is advisory
    and never changes results (docs/STORAGE.md has the invariants).

    The first-reader read-charging of the tree walk (each buffer charged
    once per work-item range) is resolved statically: the compiler
    simulates the per-range charge table once for the [lo = 0] range
    (which additionally runs the one-shot statements — materialize,
    cross, partition) and once for every later range, and bakes the two
    boolean outcomes into each charge site's closure.  The only dynamic
    part of read accounting — empty-slot suppression of fold outputs
    becoming visible to later statements of the same fragment — goes
    through the context's suppression overlay.

    All mutable state a closure touches at run time lives either in its
    own output buffers (disjoint element ranges across chunks, see
    {!Voodoo_core.Chunk}) or in the {!ctx} passed per chunk, which is
    what makes the closures safe to run on multiple domains. *)

open Voodoo_vector
open Voodoo_core
open Voodoo_device
open Fragment
open Exec_state
module A = Bigarray.Array1

(** Chunk-private scatter output: a log of (data row, output position)
    pairs in write order.  The fragment IR is single-assignment, so a
    scatter's source buffers are complete and unchanged once every chunk
    has run — replaying the logs against the real output columns in chunk
    order reproduces the sequential last-writer-wins outcome without
    allocating private copies of the (much larger) output. *)
type region = {
  mutable rg_log : int array;  (** interleaved (i, p) pairs *)
  mutable rg_len : int;  (** ints used *)
}

(** Per-chunk streaming state of one fold statement: accumulator,
    first-valid flag and select cursor carried across the tiles of a run.
    Closures are shared by every chunk, so this must live in {!ctx}, not
    in the closure — runs never span chunks (chunk boundaries are
    work-item multiples), so each chunk sees whole runs. *)
type fstate = {
  mutable fs_i : int;  (** int accumulator *)
  mutable fs_f : float;  (** float accumulator *)
  mutable fs_seen : bool;  (** a valid element has been folded *)
  mutable fs_s : Scalar.t option;  (** generic scalar accumulator *)
  mutable fs_cur : int;  (** select write cursor *)
}

(** Per-chunk partial accumulators of one grouped fold (raw mode):
    [k] slots, one per partition.  Freshly created arrays are the merge
    identity (zero counts, nothing seen), so every chunk can build its
    own lazily and partials combine in chunk order without special
    cases. *)
type gacc = {
  ga_counts : int array;  (** slots routed to the group (any validity) *)
  ga_i : int array;  (** int sums / extrema / valid-value counts *)
  ga_f : float array;  (** float sums / extrema *)
  ga_seen : Bytes.t;  (** ['\001'] once a valid value has accumulated *)
  ga_s : Scalar.t option array;  (** generic fallback accumulators *)
}

let make_gacc k =
  {
    ga_counts = Array.make k 0;
    ga_i = Array.make k 0;
    ga_f = Array.make k 0.0;
    ga_seen = Bytes.make k '\000';
    ga_s = Array.make k None;
  }

let reset_gacc g =
  Array.fill g.ga_counts 0 (Array.length g.ga_counts) 0;
  Array.fill g.ga_i 0 (Array.length g.ga_i) 0;
  Array.fill g.ga_f 0 (Array.length g.ga_f) 0.0;
  Bytes.fill g.ga_seen 0 (Bytes.length g.ga_seen) '\000';
  Array.fill g.ga_s 0 (Array.length g.ga_s) None

(** Per-chunk summary of the {e latest} tile a predicate kernel wrote:
    producing and consuming statements of one tile group run back-to-back
    over the same range, so a selection only ever needs the most recent
    entry.  A consumer trusts the flags only when [zl_lo, zl_hi) matches
    its own range exactly — anything else (a guarded kernel that skipped
    recording, a stale range) falls back to scanning. *)
type zlast = {
  mutable zl_lo : int;
  mutable zl_hi : int;
  mutable zl_any : bool;  (** some slot in the range is valid and nonzero *)
  mutable zl_all : bool;  (** every slot in the range is valid and nonzero *)
}

(** Per-chunk execution context: everything a closure may mutate besides
    its own (element-disjoint) output buffers. *)
type ctx = {
  ev : Events.t;
  pos : (string, pos_stats) Hashtbl.t;
      (** chunk-local position observations, merged via
          {!Exec_state.merge_pos} *)
  sup : (Op.id, int) Hashtbl.t;
      (** suppression {e deltas} against [st.suppressed] (written only at
          a fold's final range, so chunk deltas sum exactly) *)
  regions : (Op.id, region) Hashtbl.t;
      (** private scatter outputs; empty when running sequentially *)
  fst : (Op.id, fstate) Hashtbl.t;
      (** streaming fold state, per fold statement *)
  zn : (Op.id, zlast) Hashtbl.t;
      (** latest predicate tile summary, per producing statement *)
  gac : (Op.id, gacc) Hashtbl.t;
      (** grouped-fold partial accumulators, per FoldAgg statement (raw
          mode only; instrumented grouped folds share [st.group_acc]) *)
  chk : (unit -> unit) option;
      (** cooperative deadline/cancellation check, called between work
          items; raises {!Voodoo_core.Budget.Exceeded} to stop the chunk *)
}

let make_ctx ?chk ~ev () =
  {
    ev;
    pos = Hashtbl.create 8;
    sup = Hashtbl.create 4;
    regions = Hashtbl.create 2;
    fst = Hashtbl.create 4;
    zn = Hashtbl.create 4;
    gac = Hashtbl.create 2;
    chk;
  }

(* [Hashtbl.find] raising [Not_found], not [find_opt]: these run once per
   tile and the option box would be the hot path's only allocation. *)
let fstate_in (ctx : ctx) id =
  try Hashtbl.find ctx.fst id
  with Not_found ->
    let fs = { fs_i = 0; fs_f = 0.0; fs_seen = false; fs_s = None; fs_cur = 0 } in
    Hashtbl.replace ctx.fst id fs;
    fs

let gacc_in (ctx : ctx) id k =
  try Hashtbl.find ctx.gac id
  with Not_found ->
    let g = make_gacc k in
    Hashtbl.replace ctx.gac id g;
    g

let zlast_in (ctx : ctx) id =
  try Hashtbl.find ctx.zn id
  with Not_found ->
    let z = { zl_lo = -1; zl_hi = -1; zl_any = true; zl_all = false } in
    Hashtbl.replace ctx.zn id z;
    z

(* Absolute suppression count visible through the overlay. *)
let sup_find st (ctx : ctx) id =
  match Hashtbl.find_opt st.suppressed id, Hashtbl.find_opt ctx.sup id with
  | None, None -> None
  | b, d -> Some (Option.value b ~default:0 + Option.value d ~default:0)

(* [effective_reads] with the overlay applied. *)
let eff st ctx id count =
  match sup_find st ctx id with
  | Some valid when st.opts.Codegen.suppress_empty_slots -> min valid count
  | _ -> count

(* Fold the accumulated deltas back into the shared state (after all
   chunks have been merged). *)
let apply_sup st (sup : (Op.id, int) Hashtbl.t) =
  Hashtbl.iter
    (fun id d ->
      Hashtbl.replace st.suppressed id
        (Option.value (Hashtbl.find_opt st.suppressed id) ~default:0 + d))
    sup

(* ---------- dynamic column accessors (hoisted per statement) ---------- *)

(* Validity at the broadcast-mapped index, matching [bget]'s indexing. *)
let bvalid (c : Column.t) =
  let broadcast = Column.length c = 1 in
  match c.Column.valid with
  | None -> fun _ -> true
  | Some b ->
      if broadcast then fun _ -> Bitset.get b 0
      else fun i -> Bitset.unsafe_get b i

(* Validity at the literal index (gather/scatter sources use [Column.get]
   directly, with no broadcast remapping). *)
let dvalid (c : Column.t) =
  match c.Column.valid with
  | None -> fun _ -> true
  | Some b -> fun i -> Bitset.unsafe_get b i

(* Position read: [Scalar.to_int] of the raw slot. *)
let praw (c : Column.t) =
  match c.Column.data with
  | Column.I a -> fun i -> A.unsafe_get a i
  | Column.F a -> fun i -> int_of_float (A.unsafe_get a i)

(* ---------- monomorphic binary kernels ---------- *)

(* [binary_kernel sid op lcol rcol out] is a [ctx lo hi -> unit] loop
   computing [out.(i) <- op lcol.(i') rcol.(i')] for valid operand pairs
   (broadcast length-1 operands index slot 0), marking written slots
   valid.  When both operands are fully valid the hot dtype combinations
   get branch-free loops over the raw payloads — broadcast handled by an
   index stride of 0, the output mask filled once per range — and the
   predicate-producing ops (comparisons, logic) additionally publish an
   all-true/all-false summary of the range under [sid] in [ctx.zn], which
   downstream selections use to skip or dense-emit whole tiles.  Operands
   with a validity mask keep per-element guards; anything else falls back
   to the scalar semantics the tree walk uses, so results are identical
   by construction. *)
let binary_kernel sid (op : Op.binop) (lcol : Column.t) (rcol : Column.t)
    (out : Column.t) : ctx -> int -> int -> unit =
  let lbc = Column.length lcol = 1 and rbc = Column.length rcol = 1 in
  let lv = bvalid lcol and rv = bvalid rcol in
  let all_valid = lcol.Column.valid = None && rcol.Column.valid = None in
  let ls = if lbc then 0 else 1 and rs = if rbc then 0 else 1 in
  let generic _ctx lo hi =
    for i = lo to hi - 1 do
      match bget lcol i, bget rcol i with
      | Some a, Some b -> Column.set out i (Op.apply_binop op a b)
      | None, _ | _, None -> ()
    done
  in
  (* Publish the range summary for a predicate output: [any] = some slot
     nonzero, [all] = every slot nonzero (the loop wrote every slot, so
     "slot" = "valid slot" here). *)
  let record (ctx : ctx) lo hi any all =
    let z = zlast_in ctx sid in
    z.zl_lo <- lo;
    z.zl_hi <- hi;
    z.zl_any <- any <> 0;
    z.zl_all <- all <> 0
  in
  (* [mark]: validity maintenance for a fully-written range — a single
     mask fill, or nothing at all when the output was promoted to
     mask-free ({!promote_all_valid}). *)
  let mark =
    match out.Column.valid with
    | None -> fun _ _ -> ()
    | Some ob -> fun lo hi -> Bitset.fill_range ob lo hi true
  in
  match lcol.Column.data, rcol.Column.data, out.Column.data, out.Column.valid with
  | Column.I la, Column.I ra, Column.I oa, ov ->
      ignore ov;
      if all_valid then begin
        (* arithmetic: plain branch-free loops *)
        let arith f _ctx lo hi =
          f lo hi;
          mark lo hi
        in
        (* predicates: same loops, accumulating the tile summary *)
        let pred f ctx lo hi =
          let any, all = f lo hi in
          mark lo hi;
          record ctx lo hi any all
        in
        match op with
        | Add ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la i + A.unsafe_get ra i)
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (A.unsafe_get la i + b)
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (a + A.unsafe_get ra i)
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la (i * ls) + A.unsafe_get ra (i * rs))
                 done)
        | Subtract ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la i - A.unsafe_get ra i)
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (A.unsafe_get la i - b)
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (a - A.unsafe_get ra i)
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la (i * ls) - A.unsafe_get ra (i * rs))
                 done)
        | Multiply ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la i * A.unsafe_get ra i)
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (A.unsafe_get la i * b)
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (a * A.unsafe_get ra i)
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la (i * ls) * A.unsafe_get ra (i * rs))
                 done)
        | Divide ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la i / A.unsafe_get ra i)
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (A.unsafe_get la i / b)
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (a / A.unsafe_get ra i)
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la (i * ls) / A.unsafe_get ra (i * rs))
                 done)
        | Modulo ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   let x = A.unsafe_get la i and y = A.unsafe_get ra i in
                   A.unsafe_set oa i (((x mod y) + abs y) mod abs y)
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let x = A.unsafe_get la i and y = b in
                     A.unsafe_set oa i (((x mod y) + abs y) mod abs y)
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let x = a and y = A.unsafe_get ra i in
                     A.unsafe_set oa i (((x mod y) + abs y) mod abs y)
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   let x = A.unsafe_get la (i * ls) and y = A.unsafe_get ra (i * rs) in
                   A.unsafe_set oa i (((x mod y) + abs y) mod abs y)
                 done)
        | BitShift ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   let x = A.unsafe_get la i and s = A.unsafe_get ra i in
                   A.unsafe_set oa i (if s >= 0 then x lsl s else x asr -s)
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let x = A.unsafe_get la i and s = b in
                     A.unsafe_set oa i (if s >= 0 then x lsl s else x asr -s)
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let x = a and s = A.unsafe_get ra i in
                     A.unsafe_set oa i (if s >= 0 then x lsl s else x asr -s)
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   let x = A.unsafe_get la (i * ls) and s = A.unsafe_get ra (i * rs) in
                   A.unsafe_set oa i (if s >= 0 then x lsl s else x asr -s)
                 done)
        | LogicalAnd ->
            pred
              (if (not lbc) && not rbc then fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la i <> 0 && A.unsafe_get ra i <> 0 then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all)
               else if rbc && not lbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let v = if A.unsafe_get la i <> 0 && b <> 0 then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else if lbc && not rbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let v = if a <> 0 && A.unsafe_get ra i <> 0 then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la (i * ls) <> 0 && A.unsafe_get ra (i * rs) <> 0 then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all))
        | LogicalOr ->
            pred
              (if (not lbc) && not rbc then fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la i <> 0 || A.unsafe_get ra i <> 0 then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all)
               else if rbc && not lbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let v = if A.unsafe_get la i <> 0 || b <> 0 then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else if lbc && not rbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let v = if a <> 0 || A.unsafe_get ra i <> 0 then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la (i * ls) <> 0 || A.unsafe_get ra (i * rs) <> 0 then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all))
        | Greater ->
            pred
              (if (not lbc) && not rbc then fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la i > A.unsafe_get ra i then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all)
               else if rbc && not lbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let v = if A.unsafe_get la i > b then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else if lbc && not rbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let v = if a > A.unsafe_get ra i then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la (i * ls) > A.unsafe_get ra (i * rs) then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all))
        | GreaterEqual ->
            pred
              (if (not lbc) && not rbc then fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la i >= A.unsafe_get ra i then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all)
               else if rbc && not lbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let v = if A.unsafe_get la i >= b then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else if lbc && not rbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let v = if a >= A.unsafe_get ra i then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la (i * ls) >= A.unsafe_get ra (i * rs) then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all))
        | Equals ->
            pred
              (if (not lbc) && not rbc then fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la i = A.unsafe_get ra i then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all)
               else if rbc && not lbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let v = if A.unsafe_get la i = b then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else if lbc && not rbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let v = if a = A.unsafe_get ra i then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la (i * ls) = A.unsafe_get ra (i * rs) then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all))
      end
      else begin
        match ov with
        | None -> generic
        | Some ob ->
        (* a validity mask is present: per-element guards *)
        let ik f _ctx lo hi =
          for i = lo to hi - 1 do
            if lv i && rv i then begin
              A.unsafe_set oa i
                (f
                   (A.unsafe_get la (if lbc then 0 else i))
                   (A.unsafe_get ra (if rbc then 0 else i)));
              Bitset.set ob i true
            end
          done
        in
        match op with
        | Add -> ik ( + )
        | Subtract -> ik ( - )
        | Multiply -> ik ( * )
        | Divide -> ik ( / )
        | Modulo -> ik (fun x y -> ((x mod y) + abs y) mod abs y)
        | BitShift -> ik (fun x s -> if s >= 0 then x lsl s else x asr -s)
        | LogicalAnd -> ik (fun a b -> if a <> 0 && b <> 0 then 1 else 0)
        | LogicalOr -> ik (fun a b -> if a <> 0 || b <> 0 then 1 else 0)
        | Greater -> ik (fun a b -> if a > b then 1 else 0)
        | GreaterEqual -> ik (fun a b -> if a >= b then 1 else 0)
        | Equals -> ik (fun a b -> if a = b then 1 else 0)
      end
  | Column.F la, Column.F ra, Column.F oa, ov -> (
      ignore ov;
      if all_valid then begin
        let arith f _ctx lo hi =
          f lo hi;
          mark lo hi
        in
        match op with
        | Add ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la i +. A.unsafe_get ra i)
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (A.unsafe_get la i +. b)
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (a +. A.unsafe_get ra i)
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la (i * ls) +. A.unsafe_get ra (i * rs))
                 done)
        | Subtract ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la i -. A.unsafe_get ra i)
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (A.unsafe_get la i -. b)
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (a -. A.unsafe_get ra i)
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la (i * ls) -. A.unsafe_get ra (i * rs))
                 done)
        | Multiply ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la i *. A.unsafe_get ra i)
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (A.unsafe_get la i *. b)
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (a *. A.unsafe_get ra i)
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la (i * ls) *. A.unsafe_get ra (i * rs))
                 done)
        | Divide ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la i /. A.unsafe_get ra i)
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (A.unsafe_get la i /. b)
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (a /. A.unsafe_get ra i)
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (A.unsafe_get la (i * ls) /. A.unsafe_get ra (i * rs))
                 done)
        | Modulo ->
            arith
              (if (not lbc) && not rbc then fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (Float.rem (A.unsafe_get la i) (A.unsafe_get ra i))
                 done
               else if rbc && not lbc then fun lo hi ->
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (Float.rem (A.unsafe_get la i) (b))
                   done
               else if lbc && not rbc then fun lo hi ->
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     A.unsafe_set oa i (Float.rem (a) (A.unsafe_get ra i))
                   done
               else fun lo hi ->
                 for i = lo to hi - 1 do
                   A.unsafe_set oa i (Float.rem (A.unsafe_get la (i * ls)) (A.unsafe_get ra (i * rs)))
                 done)
        | BitShift | LogicalAnd | LogicalOr | Greater | GreaterEqual | Equals ->
            generic (* int-typed result: [out] cannot be a float column *)
      end
      else
        match ov with
        | None -> generic
        | Some ob ->
        let fk f _ctx lo hi =
          for i = lo to hi - 1 do
            if lv i && rv i then begin
              A.unsafe_set oa i
                (f
                   (A.unsafe_get la (if lbc then 0 else i))
                   (A.unsafe_get ra (if rbc then 0 else i)));
              Bitset.set ob i true
            end
          done
        in
        match op with
        | Add -> fk ( +. )
        | Subtract -> fk ( -. )
        | Multiply -> fk ( *. )
        | Divide -> fk ( /. )
        | Modulo -> fk Float.rem
        | BitShift | LogicalAnd | LogicalOr | Greater | GreaterEqual | Equals ->
            generic)
  | Column.F la, Column.F ra, Column.I oa, ov -> (
      ignore ov;
      (* float comparisons and logic produce 0/1 ints.  The branch-free
         forms below replicate [Float.compare] bit-exactly, NaN included:
         Float.compare treats NaN below every float and equal to itself,
         so e.g. [compare a b > 0] iff [a > b || (b <> b && a = a)]. *)
      if all_valid then begin
        let pred f ctx lo hi =
          let any, all = f lo hi in
          mark lo hi;
          record ctx lo hi any all
        in
        match op with
        | Greater ->
            pred
              (if (not lbc) && not rbc then fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let a = A.unsafe_get la i and b = A.unsafe_get ra i in
                   let v = if a > b || (b <> b && a = a) then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all)
               else if rbc && not lbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let a = A.unsafe_get la i and b = b in
                     let v = if a > b || (b <> b && a = a) then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else if lbc && not rbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let a = a and b = A.unsafe_get ra i in
                     let v = if a > b || (b <> b && a = a) then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let a = A.unsafe_get la (i * ls) and b = A.unsafe_get ra (i * rs) in
                   let v = if a > b || (b <> b && a = a) then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all))
        | GreaterEqual ->
            pred
              (if (not lbc) && not rbc then fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let a = A.unsafe_get la i and b = A.unsafe_get ra i in
                   let v = if a >= b || b <> b then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all)
               else if rbc && not lbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let a = A.unsafe_get la i and b = b in
                     let v = if a >= b || b <> b then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else if lbc && not rbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let a = a and b = A.unsafe_get ra i in
                     let v = if a >= b || b <> b then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let a = A.unsafe_get la (i * ls) and b = A.unsafe_get ra (i * rs) in
                   let v = if a >= b || b <> b then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all))
        | Equals ->
            pred
              (if (not lbc) && not rbc then fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let a = A.unsafe_get la i and b = A.unsafe_get ra i in
                   let v = if a = b || (a <> a && b <> b) then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all)
               else if rbc && not lbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let a = A.unsafe_get la i and b = b in
                     let v = if a = b || (a <> a && b <> b) then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else if lbc && not rbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let a = a and b = A.unsafe_get ra i in
                     let v = if a = b || (a <> a && b <> b) then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let a = A.unsafe_get la (i * ls) and b = A.unsafe_get ra (i * rs) in
                   let v = if a = b || (a <> a && b <> b) then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all))
        | LogicalAnd ->
            pred
              (if (not lbc) && not rbc then fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la i <> 0.0 && A.unsafe_get ra i <> 0.0 then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all)
               else if rbc && not lbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let v = if A.unsafe_get la i <> 0.0 && b <> 0.0 then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else if lbc && not rbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let v = if a <> 0.0 && A.unsafe_get ra i <> 0.0 then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la (i * ls) <> 0.0 && A.unsafe_get ra (i * rs) <> 0.0 then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all))
        | LogicalOr ->
            pred
              (if (not lbc) && not rbc then fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la i <> 0.0 || A.unsafe_get ra i <> 0.0 then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all)
               else if rbc && not lbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let b = A.unsafe_get ra 0 in
                   for i = lo to hi - 1 do
                     let v = if A.unsafe_get la i <> 0.0 || b <> 0.0 then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else if lbc && not rbc then fun lo hi ->
                   let any = ref 0 and all = ref 1 in
                   let a = A.unsafe_get la 0 in
                   for i = lo to hi - 1 do
                     let v = if a <> 0.0 || A.unsafe_get ra i <> 0.0 then 1 else 0 in
                     A.unsafe_set oa i v;
                     any := !any lor v;
                     all := !all land v
                   done;
                   (!any, !all)
               else fun lo hi ->
                 let any = ref 0 and all = ref 1 in
                 for i = lo to hi - 1 do
                   let v = if A.unsafe_get la (i * ls) <> 0.0 || A.unsafe_get ra (i * rs) <> 0.0 then 1 else 0 in
                   A.unsafe_set oa i v;
                   any := !any lor v;
                   all := !all land v
                 done;
                 (!any, !all))
        | Add | Subtract | Multiply | Divide | Modulo | BitShift -> generic
      end
      else
        match ov with
        | None -> generic
        | Some ob ->
        let ck f _ctx lo hi =
          for i = lo to hi - 1 do
            if lv i && rv i then begin
              A.unsafe_set oa i
                (if
                   f
                     (A.unsafe_get la (if lbc then 0 else i))
                     (A.unsafe_get ra (if rbc then 0 else i))
                 then 1
                 else 0);
              Bitset.set ob i true
            end
          done
        in
        match op with
        | Greater -> ck (fun a b -> Float.compare a b > 0)
        | GreaterEqual -> ck (fun a b -> Float.compare a b >= 0)
        | Equals -> ck (fun a b -> Float.compare a b = 0)
        | LogicalAnd -> ck (fun a b -> a <> 0.0 && b <> 0.0)
        | LogicalOr -> ck (fun a b -> a <> 0.0 || b <> 0.0)
        | Add | Subtract | Multiply | Divide | Modulo | BitShift -> generic)
  | _ -> generic

(* ---------- gather / scatter column movers ---------- *)

(* [gather_copy (src, dst)] is a [p i -> unit] move of data row [p] into
   output row [i]; ε source slots leave the output slot ε (created
   empty). *)
let gather_copy ((src : Column.t), (dst : Column.t)) =
  let sv = dvalid src in
  match src.Column.data, dst.Column.data, dst.Column.valid with
  (* promoted output (mask-free source, in-bounds positions): plain move *)
  | Column.I sa, Column.I da, None when src.Column.valid = None ->
      fun p i -> A.unsafe_set da i (A.unsafe_get sa p)
  | Column.F sa, Column.F da, None when src.Column.valid = None ->
      fun p i -> A.unsafe_set da i (A.unsafe_get sa p)
  | Column.I sa, Column.I da, Some db ->
      fun p i ->
        if sv p then begin
          A.unsafe_set da i (A.unsafe_get sa p);
          Bitset.unsafe_set_true db i
        end
  | Column.F sa, Column.F da, Some db ->
      fun p i ->
        if sv p then begin
          A.unsafe_set da i (A.unsafe_get sa p);
          Bitset.unsafe_set_true db i
        end
  | _ ->
      fun p i ->
        (match Column.get src p with
        | Some v -> Column.set dst i v
        | None -> ())

(* [scatter_writers pairs] are [i p -> unit] moves of data row [i] to
   output position [p]; an ε source slot explicitly empties the target
   (a scatter overwrites whatever was there). *)
let scatter_writers pairs =
  List.map
    (fun ((src : Column.t), (dst : Column.t)) ->
      let sv = dvalid src in
      match src.Column.data, dst.Column.data, dst.Column.valid with
      | Column.I sa, Column.I da, Some db ->
          fun i p ->
            if sv i then begin
              A.unsafe_set da p (A.unsafe_get sa i);
              Bitset.set db p true
            end
            else Bitset.set db p false
      | Column.F sa, Column.F da, Some db ->
          fun i p ->
            if sv i then begin
              A.unsafe_set da p (A.unsafe_get sa i);
              Bitset.set db p true
            end
            else Bitset.set db p false
      | _ ->
          fun i p ->
            (match Column.get src i with
            | Some v -> Column.set dst p v
            | None -> Column.set_empty dst p))
    pairs

(** Everything {!Exec_par} needs to give one scatter statement a private
    per-chunk log. *)
type scatter_info = {
  sc_id : Op.id;
  sc_write : int -> int -> unit;  (** composed real-column writers *)
}

let make_region (_ : scatter_info) = { rg_log = Array.make 512 0; rg_len = 0 }

let record_write (r : region) i p =
  let need = r.rg_len + 2 in
  if need > Array.length r.rg_log then begin
    let bigger = Array.make (2 * Array.length r.rg_log) 0 in
    Array.blit r.rg_log 0 bigger 0 r.rg_len;
    r.rg_log <- bigger
  end;
  r.rg_log.(r.rg_len) <- i;
  r.rg_log.(r.rg_len + 1) <- p;
  r.rg_len <- need

(* Replay a chunk's scatter log against the real output columns; replaying
   regions in chunk order reproduces the sequential last-writer-wins
   outcome. *)
let merge_region (si : scatter_info) (r : region) =
  let log = r.rg_log in
  let k = ref 0 in
  while !k < r.rg_len do
    si.sc_write log.(!k) log.(!k + 1);
    k := !k + 2
  done

(* ---------- zone-map consultation ---------- *)

(* Where a fold/selection statement gets per-tile summaries of its input:
   from the same-fragment predicate producer's per-chunk entry, from a
   zone map built over a column that was complete before this fragment
   started, or nowhere. *)
type zview =
  | Znone
  | Zctx of Op.id  (** producer statement to look up in [ctx.zn] *)
  | Zcol of Column.zones  (** eagerly built map of a stable input *)

(* Verdict for one range: skip it, dense-emit it, or scan it. *)
type zverdict = Zskip | Zdense | Zscan

let zverdict (zv : zview) (ctx : ctx) n lo hi =
  match zv with
  | Znone -> Zscan
  | Zctx pid -> (
      match Hashtbl.find ctx.zn pid with
      | z when z.zl_lo = lo && z.zl_hi = hi ->
          if not z.zl_any then Zskip else if z.zl_all then Zdense else Zscan
      | _ -> Zscan
      | exception Not_found -> Zscan)
  | Zcol z ->
      (* only consult when [lo, hi) sits inside one zone tile *)
      let ti = lo / z.zw in
      if hi > min n ((ti + 1) * z.zw) then Zscan
      else
        let cnt = z.zcount.(ti) in
        if cnt = 0 then Zskip
        else if cnt < 0 then Zscan
        else if z.zmin.(ti) = 0.0 && z.zmax.(ti) = 0.0 then Zskip
        else if
          cnt = min n ((ti + 1) * z.zw) - (ti * z.zw)
          && (z.zmin.(ti) > 0.0 || z.zmax.(ti) < 0.0)
        then Zdense
        else Zscan

(* ---------- streaming fold kernels ---------- *)

(* Accumulation for one fold statement, split into [reset] (at run
   start), [accum] over a sub-range, and [finish] (at run end, writing
   the result at the run's first slot).  Calling the three over a run's
   tiles in order is exactly the tree walk's single left-to-right pass:
   the float Sum still starts from the run's first valid value (not from
   zero), so rounding is bit-identical. *)
type fold_stream = {
  st_reset : fstate -> unit;
  st_accum : fstate -> int -> int -> unit;
  st_finish : fstate -> ctx -> int -> unit;
}

let reset_all (fs : fstate) =
  fs.fs_i <- 0;
  fs.fs_f <- 0.0;
  fs.fs_seen <- false;
  fs.fs_s <- None

(* Drive [body i] over every valid slot of [lo, hi) under mask [b],
   skipping eight slots at a time wherever a whole mask byte is zero —
   ε-suppressed fold outputs are mostly such bytes, so this replaces the
   zone-map consultation (and its O(n) build) for aggregate inputs.  The
   valid slots are visited in the same order as a plain loop, so any
   accumulation over them is bit-identical. *)
let[@inline] masked_iter b lo hi body =
  let i = ref lo in
  while !i < hi do
    if !i land 7 = 0 && !i + 8 <= hi && Bitset.unsafe_byte b (!i lsr 3) = 0
    then i := !i + 8
    else begin
      if Bitset.unsafe_get b !i then body !i;
      incr i
    end
  done

let fold_stream_kernel (agg : Op.agg) (col : Column.t) (out : Column.t) :
    fold_stream =
  let dt = fold_out_dtype agg col in
  let out_n = Column.length out in
  let mk accum finish =
    {
      st_reset = reset_all;
      st_accum = accum;
      st_finish =
        (fun fs _ctx rlo -> if rlo < out_n then finish fs rlo);
    }
  in
  match agg, col.Column.data, col.Column.valid, out.Column.data, out.Column.valid
  with
  | Count, _, bo, Column.I oa, Some ob ->
      let count =
        match bo with
        | None -> fun lo hi -> hi - lo
        | Some b -> fun lo hi -> Bitset.count_range b lo hi
      in
      mk
        (fun fs lo hi -> fs.fs_i <- fs.fs_i + count lo hi)
        (fun fs rlo ->
          A.unsafe_set oa rlo fs.fs_i;
          Bitset.set ob rlo true)
  | Sum, Column.I a, None, Column.I oa, Some ob ->
      mk
        (fun fs lo hi ->
          let s = ref fs.fs_i in
          for i = lo to hi - 1 do
            s := !s + A.unsafe_get a i
          done;
          fs.fs_i <- !s)
        (fun fs rlo ->
          A.unsafe_set oa rlo fs.fs_i;
          Bitset.set ob rlo true)
  | Sum, Column.I a, Some b, Column.I oa, Some ob ->
      mk
        (fun fs lo hi ->
          let s = ref fs.fs_i in
          masked_iter b lo hi (fun i -> s := !s + A.unsafe_get a i);
          fs.fs_i <- !s)
        (fun fs rlo ->
          A.unsafe_set oa rlo fs.fs_i;
          Bitset.set ob rlo true)
  | Sum, Column.F a, None, Column.F oa, Some ob ->
      mk
        (fun fs lo hi ->
          if lo < hi then begin
            let start = ref lo in
            if not fs.fs_seen then begin
              fs.fs_f <- A.unsafe_get a lo;
              fs.fs_seen <- true;
              start := lo + 1
            end;
            let s = ref fs.fs_f in
            for i = !start to hi - 1 do
              s := !s +. A.unsafe_get a i
            done;
            fs.fs_f <- !s
          end)
        (fun fs rlo ->
          A.unsafe_set oa rlo fs.fs_f;
          Bitset.set ob rlo true)
  | Sum, Column.F a, Some b, Column.F oa, Some ob ->
      mk
        (fun fs lo hi ->
          let s = ref fs.fs_f and seen = ref fs.fs_seen in
          masked_iter b lo hi (fun i ->
              if !seen then s := !s +. A.unsafe_get a i
              else begin
                s := A.unsafe_get a i;
                seen := true
              end);
          fs.fs_f <- !s;
          fs.fs_seen <- !seen)
        (fun fs rlo ->
          A.unsafe_set oa rlo fs.fs_f;
          Bitset.set ob rlo true)
  | (Max | Min), Column.I a, bo, Column.I oa, Some ob ->
      let better = match agg with Max -> ( > ) | _ -> ( < ) in
      let accum =
        match bo with
        | None ->
            fun fs lo hi ->
              let m = ref fs.fs_i and seen = ref fs.fs_seen in
              for i = lo to hi - 1 do
                let x = A.unsafe_get a i in
                if !seen then (if better x !m then m := x)
                else begin
                  m := x;
                  seen := true
                end
              done;
              fs.fs_i <- !m;
              fs.fs_seen <- !seen
        | Some b ->
            fun fs lo hi ->
              let m = ref fs.fs_i and seen = ref fs.fs_seen in
              masked_iter b lo hi (fun i ->
                  let x = A.unsafe_get a i in
                  if !seen then (if better x !m then m := x)
                  else begin
                    m := x;
                    seen := true
                  end);
              fs.fs_i <- !m;
              fs.fs_seen <- !seen
      in
      mk accum
        (fun fs rlo ->
          if fs.fs_seen then begin
            A.unsafe_set oa rlo fs.fs_i;
            Bitset.set ob rlo true
          end)
  | (Max | Min), Column.F a, bo, Column.F oa, Some ob ->
      let better =
        match agg with
        | Max -> fun x m -> Float.compare x m > 0
        | _ -> fun x m -> Float.compare x m < 0
      in
      let accum =
        match bo with
        | None ->
            fun fs lo hi ->
              let m = ref fs.fs_f and seen = ref fs.fs_seen in
              for i = lo to hi - 1 do
                let x = A.unsafe_get a i in
                if !seen then (if better x !m then m := x)
                else begin
                  m := x;
                  seen := true
                end
              done;
              fs.fs_f <- !m;
              fs.fs_seen <- !seen
        | Some b ->
            fun fs lo hi ->
              let m = ref fs.fs_f and seen = ref fs.fs_seen in
              masked_iter b lo hi (fun i ->
                  let x = A.unsafe_get a i in
                  if !seen then (if better x !m then m := x)
                  else begin
                    m := x;
                    seen := true
                  end);
              fs.fs_f <- !m;
              fs.fs_seen <- !seen
      in
      mk accum
        (fun fs rlo ->
          if fs.fs_seen then begin
            A.unsafe_set oa rlo fs.fs_f;
            Bitset.set ob rlo true
          end)
  | _ ->
      (* mixed/exotic dtypes: the tree walk's scalar accumulator *)
      mk
        (fun fs lo hi ->
          let acc = ref fs.fs_s in
          for i = lo to hi - 1 do
            match Column.get col i with
            | Some x ->
                acc :=
                  Some
                    (match !acc, agg with
                    | None, Count -> Scalar.I 1
                    | None, _ -> x
                    | Some cur, Sum -> Scalar.add cur x
                    | Some cur, Max -> Scalar.max_s cur x
                    | Some cur, Min -> Scalar.min_s cur x
                    | Some cur, Count -> Scalar.add cur (Scalar.I 1))
            | None -> ()
          done;
          fs.fs_s <- !acc)
        (fun fs rlo ->
          match fs.fs_s, agg with
          | Some x, _ -> Column.set out rlo x
          | None, (Sum | Count) -> Column.set out rlo (Scalar.zero dt)
          | None, (Max | Min) -> ())

(* Per-run aggregation over [rlo, rhi) in one call — the misaligned-fold
   path, where run boundaries come from scanning the control attribute. *)
let fold_run_kernel (stream : fold_stream) (fs : fstate) ctx rlo rhi =
  stream.st_reset fs;
  stream.st_accum fs rlo rhi;
  stream.st_finish fs ctx rlo

(* ---------- compiled fragments ---------- *)

(* How the raw driver may subdivide a statement's per-work-item range. *)
type tclass =
  | Tfree  (** any subrange, in order: element-wise statements *)
  | Truns  (** subranges must stay within one work item: aligned folds *)
  | Tsolo  (** exact ranges only: misaligned folds (runs are scanned) *)

type stmt_exec = {
  xc_run : ctx -> int -> int -> unit;  (** [lo, hi) element range *)
  xc_ranged : bool;
      (** needs the exact per-work-item ranges (folds: run structure;
          instrumented statements: per-range event accounting) *)
  xc_tile : tclass;
  xc_barrier : bool;
      (** output is not element-aligned with the input (select compaction,
          fold-at-run-start): statements after this one start a new tile
          group *)
}

(** Deferred epilogue of one raw-mode grouped fold.  The per-chunk
    closures only stream slots into their chunk's private {!gacc}; the
    driver combines partials {e in chunk order} and lays the results out
    after every chunk has finished:

    - [gx_merge into other] folds [other]'s partials into [into]'s —
      exact for counts, int sums and extrema (first-winner ties), so the
      combine tree reproduces the sequential fold bit-for-bit;
    - [gx_refold] (float/generic sums only) discards the merged value
      accumulators and re-folds sequentially over the fully materialized
      source in position order — the in-process analog of
      [Voodoo_distrib.Merge]'s positional exchange, buying ulp-identical
      rounding at the cost of one extra scan when chunked;
    - [gx_finalize] writes each group's aggregate at its partition's
      start slot and records the suppression count, exactly as the
      instrumented path's finish does. *)
type grouped_exec = {
  gx_id : Op.id;
  gx_merge : into:ctx -> ctx -> unit;
  gx_refold : (ctx -> unit) option;
  gx_finalize : ctx -> unit;
}

type compiled = {
  cp_run : ctx -> w_lo:int -> w_hi:int -> unit;
      (** execute work items [w_lo, w_hi) *)
  cp_scatters : scatter_info list;
  cp_grouped : grouped_exec list;
      (** raw-mode grouped folds awaiting their deferred epilogue, in
          statement order *)
  cp_single_chunk : bool;
      (** shares accumulators across ranges (instrumented grouped folds):
          must not be chunked *)
}

let compile st (f : frag) (body : compiled_stmt list) ~instrument : compiled =
  let env = st.env in
  let opts = st.opts in
  let tile_w = Codegen.effective_tile_width opts in
  let body_ids = List.map (fun (cs : compiled_stmt) -> cs.stmt.id) body in
  (* raw-mode grouped folds compiled in this fragment, in statement order
     (reversed here); the driver runs their deferred epilogues *)
  let grouped = ref ([] : grouped_exec list) in
  (* Zone view of a fold/selection input column: a same-fragment
     predicate producer publishes per-tile summaries in [ctx.zn]; a
     column complete before this fragment (earlier fragment or the
     store) gets a zone map built once, here at compile time — compile
     runs on one domain before any chunk starts, so no publication
     races.  Raw mode only: the instrumented build must execute every
     element to keep its event stream. *)
  let zview_of (input : Op.src) (col : Column.t) : zview =
    if instrument || not opts.Codegen.zone_maps then Znone
    else
      let rid, _, _ = resolve_charge st input in
      if List.mem rid body_ids then Zctx rid
      else Zcol (Column.zones col ~width:tile_w)
  in
  (* Static per-range first-reader simulation: one charge table for the
     lo = 0 range (one-shot statements included), one for later ranges. *)
  let first_set = Hashtbl.create 16 and later_set = Hashtbl.create 16 in
  let reg_charge ~lo0_only (src : Op.src) =
    let id, rkp, key = resolve_charge st src in
    let ff = not (Hashtbl.mem first_set key) in
    if ff then Hashtbl.replace first_set key ();
    let fl =
      if lo0_only then false
      else begin
        let fl = not (Hashtbl.mem later_set key) in
        if fl then Hashtbl.replace later_set key ();
        fl
      end
    in
    (id, rkp, ff, fl)
  in
  (* A charge-site closure: fires when this statement is the range's
     first reader of the resolved buffer, with the suppression overlay
     applied to the dynamic count. *)
  let charge ~lo0_only src =
    let id, rkp, ff, fl = reg_charge ~lo0_only src in
    let site = id ^ Keypath.to_string rkp ^ ":r" in
    match storage_of st id with
    | Register | Virtual -> fun _ _ _ -> ()
    | Global ->
        fun ctx lo count ->
          if if lo = 0 then ff else fl then
            Events.mem ctx.ev ~site ~pattern:Cache.Sequential ~elem_bytes:width
              (eff st ctx id count)
    | Local ws ->
        fun ctx lo count ->
          if if lo = 0 then ff else fl then
            Events.mem ~scalable:false ctx.ev ~site ~pattern:(Cache.Random ws)
              ~elem_bytes:width
              (eff st ctx id count)
  in
  let write sid =
    match storage_of st sid with
    | Register | Virtual -> fun _ _ -> ()
    | Global ->
        fun ctx count ->
          Events.mem ctx.ev ~site:(sid ^ ":w") ~pattern:Cache.Sequential
            ~elem_bytes:width count
    | Local ws ->
        fun ctx count ->
          Events.mem ~scalable:false ctx.ev ~site:(sid ^ ":w")
            ~pattern:(Cache.Random ws) ~elem_bytes:width count
  in
  let intent = max 1 f.intent in
  let domain = f.domain in
  let scatters = ref [] in
  let compile_stmt (cs : compiled_stmt) : stmt_exec option =
    let s = cs.stmt in
    match s.op with
    | Load _ | Persist _ | Constant _ | Range _ | Zip _ | Project _ | Upsert _ ->
        None (* prepared once; no per-range work, no events *)
    | Materialize { data; _ } | Break { data; _ } ->
        if not instrument then None
        else begin
          let vec = lookup env data in
          let n = Svector.length vec in
          let cols = List.length (Svector.keypaths vec) in
          let ch = charge ~lo0_only:true { Op.v = data; kp = [] } in
          let wr = write s.id in
          Some
            {
              xc_run =
                (fun ctx lo _hi ->
                  if lo = 0 then begin
                    ch ctx 0 (n * cols);
                    wr ctx (n * cols)
                  end);
              xc_ranged = false;
              xc_tile = Tfree;
              xc_barrier = false;
            }
        end
    | Cross _ ->
        if not instrument then None
        else begin
          let n = Svector.length (lookup env s.id) in
          let wr = write s.id in
          Some
            {
              xc_run =
                (fun ctx lo _hi ->
                  if lo = 0 then begin
                    Events.alu ctx.ev Int (2 * n);
                    wr ctx (2 * n)
                  end);
              xc_ranged = false;
              xc_tile = Tfree;
              xc_barrier = false;
            }
        end
    | Binary { op; left; right; _ } ->
        if storage_of st s.id = Virtual then None
        else begin
          let _, lcol = src_column env left and _, rcol = src_column env right in
          let out = leaf_column (lookup env s.id) [] in
          let n_out = Column.length out in
          (* Mask promotion: with both operands mask-free and the fragment
             covering every output slot, the kernel writes everything and
             the result needs no validity mask either — so downstream
             consumers see [valid = None] and take their own branch-free
             paths.  The all-valid invariant cascades through fragments.
             Operands from earlier fragments are fully computed by now, so
             a mask every slot of which turned out valid (a gather over
             valid positions, say) drops first and joins the cascade. *)
          Column.promote_all_valid lcol;
          Column.promote_all_valid rcol;
          if lcol.Column.valid = None && rcol.Column.valid = None
             && n_out <= domain
          then out.Column.valid <- None;
          let kernel = binary_kernel s.id op lcol rcol out in
          if not instrument then
            Some
              {
                xc_run = (fun ctx lo hi -> kernel ctx lo (min hi n_out));
                xc_ranged = false;
                xc_tile = Tfree;
                xc_barrier = false;
              }
          else begin
            let dt = Column.dtype out in
            (* registration order = runtime charge order (left, right) *)
            let chl = charge ~lo0_only:false left in
            let chr = charge ~lo0_only:false right in
            let wr = write s.id in
            Some
              {
                xc_run =
                  (fun ctx lo hi ->
                    let hi = min hi n_out in
                    kernel ctx lo hi;
                    let c = max 0 (hi - lo) in
                    Events.alu ctx.ev dt c;
                    chl ctx lo c;
                    chr ctx lo c;
                    wr ctx c);
                xc_ranged = true;
                xc_tile = Tfree;
                xc_barrier = false;
              }
          end
        end
    | Gather { data; positions } ->
        let dvec = lookup env data in
        let _, pcol = src_column env positions in
        let out = lookup env s.id in
        let dn = Svector.length dvec in
        let pairs =
          List.map
            (fun kp -> (Svector.column dvec kp, Svector.column out kp))
            (Svector.keypaths dvec)
        in
        let pn = Column.length pcol in
        (* Mask promotion through Gather: integer positions with no mask
           that the position column's zone map proves in bounds write
           every output slot, so leaves gathered from mask-free sources
           need no mask either — the move loops below then drop both the
           bit write and (in the fast shapes) the bounds test, and the
           all-valid cascade continues through the zips and folds
           downstream. *)
        let positions_in_bounds =
          pn > 0 && dn > 0
          &&
          match pcol.Column.data, pcol.Column.valid with
          | Column.I _, None ->
              let z = Column.zones pcol ~width:(max 1 tile_w) in
              let hi = float_of_int (dn - 1) in
              let ok = ref true in
              for ti = 0 to Array.length z.Column.zcount - 1 do
                if z.Column.zmin.(ti) < 0.0 || z.Column.zmax.(ti) > hi then
                  ok := false
              done;
              !ok
          | _ -> false
        in
        if positions_in_bounds && pn <= domain then
          List.iter
            (fun (src, dst) ->
              if src.Column.valid = None then dst.Column.valid <- None)
            pairs;
        let movers = List.map gather_copy pairs in
        let pv = dvalid pcol and pr = praw pcol in
        if not instrument then begin
          (* hot shapes: int positions with no mask, moved columns fully
             specialized — one tight loop, no per-element closure calls *)
          let fast =
            match pcol.Column.data, pcol.Column.valid, pairs with
            | Column.I pa, None, [ (src, dst) ] -> (
                match src.Column.data, src.Column.valid, dst.Column.data,
                      dst.Column.valid
                with
                (* promoted output: positions proven in bounds, source
                   mask-free — neither test nor bit write survives *)
                | Column.F sa, None, Column.F da, None ->
                    Some
                      (fun lo hi ->
                        for i = lo to hi - 1 do
                          A.unsafe_set da i (A.unsafe_get sa (A.unsafe_get pa i))
                        done)
                | Column.I sa, None, Column.I da, None ->
                    Some
                      (fun lo hi ->
                        for i = lo to hi - 1 do
                          A.unsafe_set da i (A.unsafe_get sa (A.unsafe_get pa i))
                        done)
                | Column.F sa, None, Column.F da, Some db ->
                    Some
                      (fun lo hi ->
                        for i = lo to hi - 1 do
                          let p = A.unsafe_get pa i in
                          if p >= 0 && p < dn then begin
                            A.unsafe_set da i (A.unsafe_get sa p);
                            Bitset.unsafe_set_true db i
                          end
                        done)
                | Column.I sa, None, Column.I da, Some db ->
                    Some
                      (fun lo hi ->
                        for i = lo to hi - 1 do
                          let p = A.unsafe_get pa i in
                          if p >= 0 && p < dn then begin
                            A.unsafe_set da i (A.unsafe_get sa p);
                            Bitset.unsafe_set_true db i
                          end
                        done)
                | _ -> None)
            | _ -> None
          in
          let run =
            match fast with
            | Some k -> fun lo hi -> k lo hi
            | None -> (
                match pcol.Column.data, pcol.Column.valid, movers with
                | Column.I pa, None, [ m ] ->
                    fun lo hi ->
                      for i = lo to hi - 1 do
                        let p = A.unsafe_get pa i in
                        if p >= 0 && p < dn then m p i
                      done
                | _ ->
                    fun lo hi ->
                      for i = lo to hi - 1 do
                        if pv i then begin
                          let p = pr i in
                          if p >= 0 && p < dn then
                            List.iter (fun m -> m p i) movers
                        end
                      done)
          in
          Some
            {
              xc_run = (fun _ctx lo hi -> run lo (min hi pn));
              xc_ranged = false;
              xc_tile = Tfree;
              xc_barrier = false;
            }
        end
        else begin
          let ncols = List.length movers in
          let chp = charge ~lo0_only:false positions in
          let wr = write s.id in
          let key = "g:" ^ s.id in
          Some
            {
              xc_run =
                (fun ctx lo hi ->
                  let ps = stats_in ctx.pos key in
                  let hi' = min hi pn in
                  let valid = ref 0 in
                  for i = lo to hi' - 1 do
                    if pv i then begin
                      let p = pr i in
                      observe ps p;
                      incr valid;
                      if p >= 0 && p < dn then List.iter (fun m -> m p i) movers
                    end
                  done;
                  Events.alu ctx.ev Int !valid;
                  chp ctx lo !valid;
                  wr ctx (!valid * ncols));
              xc_ranged = true;
              xc_tile = Tfree;
              xc_barrier = false;
            }
        end
    | Scatter { data; positions; _ } ->
        if storage_of st s.id = Virtual then begin
          (* identity scatter: alias the data vector, once.  Consumers
             compiled after this statement resolve against the alias,
             exactly as the tree walk's lo = 0 rebind. *)
          Hashtbl.replace env s.id (lookup env data);
          None
        end
        else begin
          let dvec = lookup env data in
          let out = lookup env s.id in
          let _, pcol = src_column env positions in
          let out_n = Svector.length out in
          let pairs =
            List.map
              (fun kp -> (Svector.column dvec kp, Svector.column out kp))
              (Svector.keypaths dvec)
          in
          let real_writers = scatter_writers pairs in
          let seq_write =
            match real_writers with
            | [ w ] -> w
            | ws -> fun i p -> List.iter (fun w -> w i p) ws
          in
          scatters := { sc_id = s.id; sc_write = seq_write } :: !scatters;
          let hi_cap = min (Svector.length dvec) (Column.length pcol) in
          let pv = dvalid pcol and pr = praw pcol in
          let writer_of ctx =
            match Hashtbl.find_opt ctx.regions s.id with
            | Some r -> record_write r
            | None -> seq_write
          in
          if not instrument then begin
            let run =
              match pcol.Column.data, pcol.Column.valid with
              | Column.I pa, None ->
                  fun write lo hi ->
                    for i = lo to hi - 1 do
                      let p = A.unsafe_get pa i in
                      if p >= 0 && p < out_n then write i p
                    done
              | _ ->
                  fun write lo hi ->
                    for i = lo to hi - 1 do
                      if pv i then begin
                        let p = pr i in
                        if p >= 0 && p < out_n then write i p
                      end
                    done
            in
            Some
              {
                xc_run =
                  (fun ctx lo hi -> run (writer_of ctx) lo (min hi hi_cap));
                xc_ranged = false;
                xc_tile = Tfree;
                xc_barrier = false;
              }
          end
          else begin
            let ncols = List.length pairs in
            let chp = charge ~lo0_only:false positions in
            let chd = charge ~lo0_only:false { Op.v = data; kp = [] } in
            let key = "s:" ^ s.id in
            Some
              {
                xc_run =
                  (fun ctx lo hi ->
                    let write = writer_of ctx in
                    let ps = stats_in ctx.pos key in
                    let hi' = min hi hi_cap in
                    let valid = ref 0 in
                    for i = lo to hi' - 1 do
                      if pv i then begin
                        let p = pr i in
                        observe ps p;
                        incr valid;
                        if p >= 0 && p < out_n then write i p
                      end
                    done;
                    Events.alu ctx.ev Int !valid;
                    chp ctx lo !valid;
                    chd ctx lo (!valid * ncols));
                xc_ranged = true;
                xc_tile = Tfree;
                xc_barrier = false;
              }
          end
        end
    | Partition { values; pivots; _ } ->
        (* whole-domain one-shot in its own fragment *)
        let chv = charge ~lo0_only:true values in
        let wr = write s.id in
        Some
          {
            xc_run =
              (fun ctx lo _hi ->
                if lo = 0 then begin
                  let n, npart = partition_compute st s ~values ~pivots in
                  if instrument then begin
                    chv ctx 0 (2 * n);
                    Events.alu ctx.ev Int ((3 * n) + npart);
                    Events.mem ctx.ev ~site:(s.id ^ ":hist")
                      ~pattern:(Cache.Random (npart * width))
                      ~elem_bytes:width (2 * n);
                    wr ctx n
                  end
                end);
            xc_ranged = false;
            xc_tile = Tfree;
            xc_barrier = false;
          }
    | FoldAgg { agg; fold; input; _ } -> (
        match cs.grouped_fold with
        | Some g when instrument ->
            (* virtual scatter: accumulate straight off the source into
               shared per-fragment accumulators — inherently sequential
               across ranges (single chunk), keeping the event stream
               bit-identical to the tree walk *)
            let _, gcol = src_column env { Op.v = g.source; kp = g.group_src.kp } in
            let _, vcol = src_column env { Op.v = g.source; kp = g.value_src.kp } in
            let accs, counts = Hashtbl.find st.group_acc s.id in
            let k = Array.length accs in
            let gn = Column.length gcol in
            let gv = dvalid gcol and gr = praw gcol in
            let vdt = Column.dtype vcol in
            let chg = charge ~lo0_only:false g.group_src in
            let chv = charge ~lo0_only:false g.value_src in
            let wr = write s.id in
            let acc_site = s.id ^ ":acc" in
            let acc_bytes = k * width in
            let accumulate lo hi =
              for i = lo to hi - 1 do
                let gi = if gv i then gr i else k - 1 in
                if gi >= 0 && gi < k then begin
                  counts.(gi) <- counts.(gi) + 1;
                  match Column.get vcol i with
                  | Some v ->
                      accs.(gi) <-
                        Some
                          (match accs.(gi), agg with
                          | None, Count -> Scalar.I 1
                          | None, _ -> v
                          | Some cur, Sum -> Scalar.add cur v
                          | Some cur, Max -> Scalar.max_s cur v
                          | Some cur, Min -> Scalar.min_s cur v
                          | Some cur, Count -> Scalar.add cur (Scalar.I 1))
                  | None -> ()
                end
              done
            in
            let finish (ctx : ctx) =
              let out = leaf_column (lookup env s.id) [] in
              let dt = Column.dtype out in
              let pos = ref 0 in
              for gi = 0 to k - 1 do
                (match accs.(gi), agg with
                | Some v, _ -> Column.set out !pos v
                | None, (Sum | Count) ->
                    if counts.(gi) > 0 then Column.set out !pos (Scalar.zero dt)
                | None, (Max | Min) -> ());
                pos := !pos + counts.(gi)
              done;
              (* overlay delta making the absolute suppression count k,
                 replicating the tree walk's [Hashtbl.replace] *)
              let base =
                Option.value (Hashtbl.find_opt st.suppressed s.id) ~default:0
              in
              Hashtbl.replace ctx.sup s.id (k - base);
              wr ctx k
            in
            Some
              {
                xc_run =
                  (fun ctx lo hi ->
                    let n_range = hi - lo in
                    let hi = min hi gn in
                    accumulate lo hi;
                    Events.alu ctx.ev vdt (2 * n_range);
                    chg ctx lo n_range;
                    chv ctx lo n_range;
                    Events.mem ctx.ev ~site:acc_site
                      ~pattern:(Cache.Random acc_bytes) ~elem_bytes:width
                      n_range;
                    if hi >= gn then finish ctx);
                xc_ranged = true;
                xc_tile = Truns;
                xc_barrier = true;
              }
        | Some g ->
            (* raw mode: a streaming tile consumer.  Each chunk folds its
               slots into private partial accumulators ({!gacc}); the
               chunk-order merge, the optional positional re-fold and the
               layout of the results happen in the driver's deferred
               epilogue ({!grouped_exec}), after every chunk finished.
               Classified [Tfree]/no-barrier so the fold joins its
               producers' tile group and the zip intermediate is consumed
               tile-at-a-time instead of materializing across a seam. *)
            let _, gcol = src_column env { Op.v = g.source; kp = g.group_src.kp } in
            let _, vcol = src_column env { Op.v = g.source; kp = g.value_src.kp } in
            let accs0, _ = Hashtbl.find st.group_acc s.id in
            let k = Array.length accs0 in
            let gn = Column.length gcol in
            let gv = dvalid gcol and gr = praw gcol in
            let vv = dvalid vcol in
            let out = leaf_column (lookup env s.id) [] in
            let dt = Column.dtype out in
            (* Accumulation kind: monomorphic loops for the physical
               dtype combinations the tree walk produces directly, a
               scalar fallback otherwise.  [`Refold] kinds (rounding
               depends on accumulation order) re-fold positionally when
               chunked; the rest merge exactly. *)
            let accumulate : ctx -> int -> int -> unit =
              let route body ctx lo hi =
                let ga = gacc_in ctx s.id k in
                let hi = min hi gn in
                if hi > lo then body ga lo hi
              in
              match agg, vcol.Column.data, out.Column.data with
              | Count, _, Column.I _ ->
                  route (fun ga lo hi ->
                      let counts = ga.ga_counts and vals = ga.ga_i in
                      for i = lo to hi - 1 do
                        let gi = if gv i then gr i else k - 1 in
                        if gi >= 0 && gi < k then begin
                          counts.(gi) <- counts.(gi) + 1;
                          if vv i then vals.(gi) <- vals.(gi) + 1
                        end
                      done)
              | Sum, Column.I a, Column.I _ ->
                  route (fun ga lo hi ->
                      let counts = ga.ga_counts and vals = ga.ga_i in
                      for i = lo to hi - 1 do
                        let gi = if gv i then gr i else k - 1 in
                        if gi >= 0 && gi < k then begin
                          counts.(gi) <- counts.(gi) + 1;
                          if vv i then vals.(gi) <- vals.(gi) + A.unsafe_get a i
                        end
                      done)
              | Sum, Column.F a, Column.F _ ->
                  route (fun ga lo hi ->
                      let counts = ga.ga_counts
                      and vals = ga.ga_f
                      and seen = ga.ga_seen in
                      for i = lo to hi - 1 do
                        let gi = if gv i then gr i else k - 1 in
                        if gi >= 0 && gi < k then begin
                          counts.(gi) <- counts.(gi) + 1;
                          if vv i then
                            if Bytes.unsafe_get seen gi = '\001' then
                              vals.(gi) <- vals.(gi) +. A.unsafe_get a i
                            else begin
                              vals.(gi) <- A.unsafe_get a i;
                              Bytes.unsafe_set seen gi '\001'
                            end
                        end
                      done)
              | (Max | Min), Column.I a, Column.I _ ->
                  let better = match agg with Max -> ( > ) | _ -> ( < ) in
                  route (fun ga lo hi ->
                      let counts = ga.ga_counts
                      and vals = ga.ga_i
                      and seen = ga.ga_seen in
                      for i = lo to hi - 1 do
                        let gi = if gv i then gr i else k - 1 in
                        if gi >= 0 && gi < k then begin
                          counts.(gi) <- counts.(gi) + 1;
                          if vv i then begin
                            let x = A.unsafe_get a i in
                            if Bytes.unsafe_get seen gi = '\001' then begin
                              if better x vals.(gi) then vals.(gi) <- x
                            end
                            else begin
                              vals.(gi) <- x;
                              Bytes.unsafe_set seen gi '\001'
                            end
                          end
                        end
                      done)
              | (Max | Min), Column.F a, Column.F _ ->
                  let better =
                    match agg with
                    | Max -> fun x m -> Float.compare x m > 0
                    | _ -> fun x m -> Float.compare x m < 0
                  in
                  route (fun ga lo hi ->
                      let counts = ga.ga_counts
                      and vals = ga.ga_f
                      and seen = ga.ga_seen in
                      for i = lo to hi - 1 do
                        let gi = if gv i then gr i else k - 1 in
                        if gi >= 0 && gi < k then begin
                          counts.(gi) <- counts.(gi) + 1;
                          if vv i then begin
                            let x = A.unsafe_get a i in
                            if Bytes.unsafe_get seen gi = '\001' then begin
                              if better x vals.(gi) then vals.(gi) <- x
                            end
                            else begin
                              vals.(gi) <- x;
                              Bytes.unsafe_set seen gi '\001'
                            end
                          end
                        end
                      done)
              | _ ->
                  route (fun ga lo hi ->
                      let counts = ga.ga_counts and accs = ga.ga_s in
                      for i = lo to hi - 1 do
                        let gi = if gv i then gr i else k - 1 in
                        if gi >= 0 && gi < k then begin
                          counts.(gi) <- counts.(gi) + 1;
                          match Column.get vcol i with
                          | Some v ->
                              accs.(gi) <-
                                Some
                                  (match accs.(gi), agg with
                                  | None, Count -> Scalar.I 1
                                  | None, _ -> v
                                  | Some cur, Sum -> Scalar.add cur v
                                  | Some cur, Max -> Scalar.max_s cur v
                                  | Some cur, Min -> Scalar.min_s cur v
                                  | Some cur, Count ->
                                      Scalar.add cur (Scalar.I 1))
                          | None -> ()
                        end
                      done)
            in
            let monomorphic =
              match agg, vcol.Column.data, out.Column.data with
              | Count, _, Column.I _
              | (Sum | Max | Min), Column.I _, Column.I _
              | (Sum | Max | Min), Column.F _, Column.F _ ->
                  true
              | _ -> false
            in
            (* Rounding of a chunked float/generic Sum depends on the
               accumulation order; everything else combines exactly. *)
            let needs_refold = agg = Op.Sum && dt = Scalar.Float in
            let merge ~(into : ctx) (other : ctx) =
              match Hashtbl.find_opt other.gac s.id with
              | None -> ()
              | Some go ->
                  let gm = gacc_in into s.id k in
                  for gi = 0 to k - 1 do
                    gm.ga_counts.(gi) <- gm.ga_counts.(gi) + go.ga_counts.(gi);
                    if not needs_refold then
                      if monomorphic then begin
                        match agg with
                        | Count | Sum -> gm.ga_i.(gi) <- gm.ga_i.(gi) + go.ga_i.(gi)
                        | Max | Min ->
                            if Bytes.get go.ga_seen gi = '\001' then
                              if Bytes.get gm.ga_seen gi = '\001' then begin
                                (* later chunk wins only strictly: ties keep
                                   the earlier value, as sequential does *)
                                let take =
                                  match dt, agg with
                                  | Scalar.Int, Op.Max ->
                                      go.ga_i.(gi) > gm.ga_i.(gi)
                                  | Scalar.Int, _ -> go.ga_i.(gi) < gm.ga_i.(gi)
                                  | Scalar.Float, Op.Max ->
                                      Float.compare go.ga_f.(gi) gm.ga_f.(gi) > 0
                                  | Scalar.Float, _ ->
                                      Float.compare go.ga_f.(gi) gm.ga_f.(gi) < 0
                                in
                                if take then begin
                                  gm.ga_i.(gi) <- go.ga_i.(gi);
                                  gm.ga_f.(gi) <- go.ga_f.(gi)
                                end
                              end
                              else begin
                                gm.ga_i.(gi) <- go.ga_i.(gi);
                                gm.ga_f.(gi) <- go.ga_f.(gi);
                                Bytes.set gm.ga_seen gi '\001'
                              end
                      end
                      else
                        gm.ga_s.(gi) <-
                          (match gm.ga_s.(gi), go.ga_s.(gi) with
                          | None, x | x, None -> x
                          | Some a, Some b -> (
                              match agg with
                              | Op.Max -> Some (Scalar.max_s a b)
                              | Op.Min -> Some (Scalar.min_s a b)
                              | Op.Sum | Op.Count -> Some (Scalar.add a b)))
                  done
            in
            let refold =
              if needs_refold || (agg = Op.Sum && not monomorphic) then
                Some
                  (fun ctx ->
                    reset_gacc (gacc_in ctx s.id k);
                    accumulate ctx 0 gn)
              else None
            in
            let finalize (ctx : ctx) =
              let ga = gacc_in ctx s.id k in
              let pos = ref 0 in
              for gi = 0 to k - 1 do
                let c = ga.ga_counts.(gi) in
                (if monomorphic then begin
                   match agg with
                   | Count | Sum ->
                       if c > 0 then
                         Column.set out !pos
                           (match dt with
                           | Scalar.Int -> Scalar.I ga.ga_i.(gi)
                           | Scalar.Float ->
                               if Bytes.get ga.ga_seen gi = '\001' then
                                 Scalar.F ga.ga_f.(gi)
                               else Scalar.zero dt)
                   | Max | Min ->
                       if Bytes.get ga.ga_seen gi = '\001' then
                         Column.set out !pos
                           (match dt with
                           | Scalar.Int -> Scalar.I ga.ga_i.(gi)
                           | Scalar.Float -> Scalar.F ga.ga_f.(gi))
                 end
                 else
                   match ga.ga_s.(gi), agg with
                   | Some v, _ -> Column.set out !pos v
                   | None, (Sum | Count) ->
                       if c > 0 then Column.set out !pos (Scalar.zero dt)
                   | None, (Max | Min) -> ());
                pos := !pos + c
              done;
              let base =
                Option.value (Hashtbl.find_opt st.suppressed s.id) ~default:0
              in
              Hashtbl.replace ctx.sup s.id (k - base)
            in
            grouped :=
              { gx_id = s.id; gx_merge = merge; gx_refold = refold;
                gx_finalize = finalize }
              :: !grouped;
            Some
              {
                xc_run = accumulate;
                xc_ranged = false;
                xc_tile = Tfree;
                xc_barrier = false;
              }
        | None ->
            let vec, col = src_column env input in
            let out = leaf_column (lookup env s.id) [] in
            let aligned = aligned_fold st f env input fold in
            let fold_col =
              if aligned then None
              else Option.map (fun kp -> leaf_column vec kp) fold
            in
            let stream = fold_stream_kernel agg col out in
            let n_vec = Svector.length vec in
            let rid, _ = resolve_read st input.v (leaf vec input.kp) in
            let cdt = Column.dtype col in
            let chi = charge ~lo0_only:false input in
            let wr = write s.id in
            let suppressing = st.opts.Codegen.suppress_empty_slots in
            let events_for ctx lo hi run_count =
              let n_range = hi - lo in
              if fold_col <> None then Events.alu ctx.ev Int n_range;
              Events.alu ctx.ev cdt (eff st ctx rid n_range);
              chi ctx lo n_range;
              wr ctx run_count
            in
            if aligned then
              (* streaming: a run is one work item ([intent] elements);
                 tiles of the run arrive in order, reset at the run's
                 first element, finalize when the range reaches its end.
                 No zone map here: the masked kernels already skip
                 empty mask bytes ({!masked_iter}), without the O(n)
                 zone build an intermediate input would pay per run *)
              Some
                {
                  xc_run =
                    (fun ctx lo hi ->
                      let fs = fstate_in ctx s.id in
                      let rlo = lo - (lo mod intent) in
                      if lo = rlo then stream.st_reset fs;
                      stream.st_accum fs lo hi;
                      let rhi = min domain (rlo + intent) in
                      if hi >= rhi then stream.st_finish fs ctx rlo;
                      if instrument then events_for ctx lo hi 1;
                      if suppressing && hi >= n_vec then
                        Hashtbl.replace ctx.sup s.id
                          (Option.value
                             (Hashtbl.find_opt ctx.sup s.id)
                             ~default:0
                          + 1));
                  xc_ranged = true;
                  xc_tile = Truns;
                  xc_barrier = true;
                }
            else
              Some
                {
                  xc_run =
                    (fun ctx lo hi ->
                      let fs = fstate_in ctx s.id in
                      let run_count = ref 0 in
                      List.iter
                        (fun (rlo, rhi) ->
                          incr run_count;
                          fold_run_kernel stream fs ctx rlo rhi)
                        (runs_in_range ~fold_col lo hi);
                      if instrument then events_for ctx lo hi !run_count;
                      if suppressing && hi >= n_vec then
                        Hashtbl.replace ctx.sup s.id
                          (Option.value
                             (Hashtbl.find_opt ctx.sup s.id)
                             ~default:0
                          + !run_count));
                  xc_ranged = true;
                  xc_tile = Tsolo;
                  xc_barrier = true;
                })
    | FoldSelect { fold; input; _ } ->
        let vec, col = src_column env input in
        let out = leaf_column (lookup env s.id) [] in
        let aligned = aligned_fold st f env input fold in
        let fold_col =
          if aligned then None else Option.map (fun kp -> leaf_column vec kp) fold
        in
        let cv = dvalid col in
        let taken_at =
          match col.Column.data with
          | Column.I a -> fun i -> cv i && A.unsafe_get a i <> 0
          | Column.F a -> fun i -> cv i && A.unsafe_get a i <> 0.0
        in
        let oa, ob =
          match out.Column.data, out.Column.valid with
          | Column.I oa, Some ob -> (Some oa, ob)
          | _, Some ob -> (None, ob)
          | _ -> err "fold-select output %s has no validity mask" s.id
        in
        let emit i cursor =
          (match oa with
          | Some oa -> A.unsafe_set oa cursor i
          | None -> Column.set out cursor (Scalar.I i));
          Bitset.set ob cursor true
        in
        (* raw scan of [lo, hi): emit qualifying positions at the cursor,
           return the new cursor *)
        let scan_raw =
          match col.Column.data, col.Column.valid, oa with
          | Column.I a, None, Some oa ->
              fun lo hi cur ->
                let c = ref cur in
                for i = lo to hi - 1 do
                  if A.unsafe_get a i <> 0 then begin
                    A.unsafe_set oa !c i;
                    Bitset.unsafe_set_true ob !c;
                    incr c
                  end
                done;
                !c
          | Column.I a, Some b, Some oa ->
              fun lo hi cur ->
                let c = ref cur in
                for i = lo to hi - 1 do
                  if Bitset.unsafe_get b i && A.unsafe_get a i <> 0 then begin
                    A.unsafe_set oa !c i;
                    Bitset.unsafe_set_true ob !c;
                    incr c
                  end
                done;
                !c
          | Column.F a, None, Some oa ->
              fun lo hi cur ->
                let c = ref cur in
                for i = lo to hi - 1 do
                  if A.unsafe_get a i <> 0.0 then begin
                    A.unsafe_set oa !c i;
                    Bitset.unsafe_set_true ob !c;
                    incr c
                  end
                done;
                !c
          | Column.F a, Some b, Some oa ->
              fun lo hi cur ->
                let c = ref cur in
                for i = lo to hi - 1 do
                  if Bitset.unsafe_get b i && A.unsafe_get a i <> 0.0 then begin
                    A.unsafe_set oa !c i;
                    Bitset.unsafe_set_true ob !c;
                    incr c
                  end
                done;
                !c
          | _ ->
              fun lo hi cur ->
                let c = ref cur in
                for i = lo to hi - 1 do
                  if taken_at i then begin
                    emit i !c;
                    incr c
                  end
                done;
                !c
        in
        (* branch-free emit of every position in [lo, hi) — the all-true
           zone verdict *)
        let dense_raw =
          match oa with
          | Some oa ->
              fun lo hi cur ->
                for i = lo to hi - 1 do
                  A.unsafe_set oa (cur + i - lo) i
                done;
                Bitset.fill_range ob cur (cur + (hi - lo)) true;
                cur + (hi - lo)
          | None ->
              fun lo hi cur ->
                let c = ref cur in
                for i = lo to hi - 1 do
                  emit i !c;
                  incr c
                done;
                !c
        in
        let n_vec = Svector.length vec in
        let cdt = Column.dtype col in
        let chi = charge ~lo0_only:false input in
        let wr = write s.id in
        let zv = if aligned then zview_of input col else Znone in
        if aligned && not instrument then
          Some
            {
              xc_run =
                (fun ctx lo hi ->
                  let fs = fstate_in ctx s.id in
                  let rlo = lo - (lo mod intent) in
                  if lo = rlo then fs.fs_cur <- rlo;
                  (match zverdict zv ctx n_vec lo hi with
                  | Zskip -> ()
                  | Zdense -> fs.fs_cur <- dense_raw lo hi fs.fs_cur
                  | Zscan -> fs.fs_cur <- scan_raw lo hi fs.fs_cur));
              xc_ranged = true;
              xc_tile = Truns;
              xc_barrier = true;
            }
        else if aligned then
          (* instrumented: per-element branch-predictor stream *)
          Some
            {
              xc_run =
                (fun ctx lo hi ->
                  let fs = fstate_in ctx s.id in
                  let rlo = lo - (lo mod intent) in
                  if lo = rlo then fs.fs_cur <- rlo;
                  let n_range = hi - lo in
                  let emitted = ref 0 in
                  let cursor = ref fs.fs_cur in
                  for i = lo to hi - 1 do
                    let taken = taken_at i in
                    Events.branch ctx.ev ~site:s.id taken;
                    if taken then begin
                      emit i !cursor;
                      incr cursor;
                      incr emitted
                    end
                  done;
                  fs.fs_cur <- !cursor;
                  Events.alu ctx.ev cdt n_range;
                  Events.guarded ctx.ev !emitted;
                  chi ctx lo n_range;
                  wr ctx !emitted);
              xc_ranged = true;
              xc_tile = Truns;
              xc_barrier = true;
            }
        else
          Some
            {
              xc_run =
                (fun ctx lo hi ->
                  let n_range = hi - lo in
                  if instrument && fold_col <> None then
                    Events.alu ctx.ev Int n_range;
                  let emitted = ref 0 in
                  List.iter
                    (fun (rlo, rhi) ->
                      let cursor = ref rlo in
                      if instrument then
                        for i = rlo to rhi - 1 do
                          let taken = taken_at i in
                          Events.branch ctx.ev ~site:s.id taken;
                          if taken then begin
                            emit i !cursor;
                            incr cursor;
                            incr emitted
                          end
                        done
                      else cursor := scan_raw rlo rhi !cursor)
                    (runs_in_range ~fold_col lo hi);
                  if instrument then begin
                    Events.alu ctx.ev cdt n_range;
                    Events.guarded ctx.ev !emitted;
                    chi ctx lo n_range;
                    wr ctx !emitted
                  end);
              xc_ranged = true;
              xc_tile = Tsolo;
              xc_barrier = true;
            }
    | FoldScan { fold; input; _ } ->
        let vec, col = src_column env input in
        let out = leaf_column (lookup env s.id) [] in
        let aligned = aligned_fold st f env input fold in
        let fold_col =
          if aligned then None else Option.map (fun kp -> leaf_column vec kp) fold
        in
        let cv = dvalid col in
        (* a scan writes every slot of its range, so once the fragment
           covers the whole output the result needs no mask — promote *)
        if Column.length out <= domain then out.Column.valid <- None;
        let smark =
          match out.Column.valid with
          | None -> fun _ _ -> ()
          | Some ob -> fun lo hi -> Bitset.fill_range ob lo hi true
        in
        (* streaming scan: carry the running sum through the chunk state,
           write every slot of the sub-range *)
        let scan_int, scan_float, scan_gen =
          match col.Column.data, col.Column.valid, out.Column.data with
          | Column.I a, None, Column.I oa ->
              ( Some
                  (fun acc lo hi ->
                    let acc = ref acc in
                    for i = lo to hi - 1 do
                      acc := !acc + A.unsafe_get a i;
                      A.unsafe_set oa i !acc
                    done;
                    smark lo hi;
                    !acc),
                None, None )
          | Column.I a, Some b, Column.I oa ->
              ( Some
                  (fun acc lo hi ->
                    let acc = ref acc in
                    for i = lo to hi - 1 do
                      if Bitset.unsafe_get b i then acc := !acc + A.unsafe_get a i;
                      A.unsafe_set oa i !acc
                    done;
                    smark lo hi;
                    !acc),
                None, None )
          | Column.F a, None, Column.F oa ->
              ( None,
                Some
                  (fun acc lo hi ->
                    let acc = ref acc in
                    for i = lo to hi - 1 do
                      acc := !acc +. A.unsafe_get a i;
                      A.unsafe_set oa i !acc
                    done;
                    smark lo hi;
                    !acc),
                None )
          | Column.F a, Some b, Column.F oa ->
              ( None,
                Some
                  (fun acc lo hi ->
                    let acc = ref acc in
                    for i = lo to hi - 1 do
                      if Bitset.unsafe_get b i then acc := !acc +. A.unsafe_get a i;
                      A.unsafe_set oa i !acc
                    done;
                    smark lo hi;
                    !acc),
                None )
          | _ ->
              let dt = Column.dtype col in
              ( None, None,
                Some
                  (fun acc lo hi ->
                    let acc = ref (match acc with Some v -> v | None -> Scalar.zero dt) in
                    for i = lo to hi - 1 do
                      (match Column.get col i with
                      | Some v -> acc := Scalar.add !acc v
                      | None -> ());
                      Column.set out i !acc
                    done;
                    Some !acc) )
        in
        ignore cv;
        let accum (fs : fstate) lo hi =
          match scan_int, scan_float, scan_gen with
          | Some k, _, _ -> fs.fs_i <- k fs.fs_i lo hi
          | _, Some k, _ -> fs.fs_f <- k fs.fs_f lo hi
          | _, _, Some k -> fs.fs_s <- k fs.fs_s lo hi
          | _ -> assert false
        in
        let cdt = Column.dtype col in
        let chi = charge ~lo0_only:false input in
        let wr = write s.id in
        if aligned then
          Some
            {
              xc_run =
                (fun ctx lo hi ->
                  let fs = fstate_in ctx s.id in
                  let rlo = lo - (lo mod intent) in
                  if lo = rlo then reset_all fs;
                  accum fs lo hi;
                  if instrument then begin
                    let n_range = hi - lo in
                    Events.alu ctx.ev cdt n_range;
                    chi ctx lo n_range;
                    wr ctx n_range
                  end);
              xc_ranged = true;
              xc_tile = Truns;
              xc_barrier = false;
            }
        else
          Some
            {
              xc_run =
                (fun ctx lo hi ->
                  let fs = fstate_in ctx s.id in
                  let n_range = hi - lo in
                  if instrument && fold_col <> None then
                    Events.alu ctx.ev Int n_range;
                  List.iter
                    (fun (rlo, rhi) ->
                      reset_all fs;
                      accum fs rlo rhi)
                    (runs_in_range ~fold_col lo hi);
                  if instrument then begin
                    Events.alu ctx.ev cdt n_range;
                    chi ctx lo n_range;
                    wr ctx n_range
                  end);
              xc_ranged = true;
              xc_tile = Tsolo;
              xc_barrier = true;
            }
  in
  let execs = List.filter_map compile_stmt body in
  (* Only instrumented grouped folds still share accumulators across
     ranges; raw grouped folds carry per-chunk partials and merge in the
     driver, so they chunk like any other statement. *)
  let single_chunk =
    instrument
    && List.exists (fun (cs : compiled_stmt) -> cs.grouped_fold <> None) body
  in
  let ranged = List.exists (fun e -> e.xc_ranged) execs in
  (* Tile groups for the raw driver: statements interleave tile-at-a-time
     within a group; a barrier statement (fold whose output is not
     element-aligned) closes its group, and a Tsolo statement (misaligned
     fold) stands alone. *)
  let groups =
    let flush cur acc = if cur = [] then acc else List.rev cur :: acc in
    let rec go cur acc = function
      | [] -> List.rev (flush cur acc)
      | e :: rest when e.xc_tile = Tsolo -> go [] ([ e ] :: flush cur acc) rest
      | e :: rest when e.xc_barrier -> go [] (flush (e :: cur) acc) rest
      | e :: rest -> go (e :: cur) acc rest
    in
    Array.of_list (List.map Array.of_list (go [] [] execs))
  in
  let all_free = List.for_all (fun e -> e.xc_tile = Tfree) execs in
  (* Run the groups over element range [lo, hi), tile-at-a-time.  Tiles
     align to absolute multiples of the tile width, so zone-map entries
     (built at the same width) line up and chunk seams (also tile-aligned)
     change nothing.  Index loops over arrays: the tile loop is hot and
     must not allocate per tile. *)
  let run_tiled ctx lo hi =
    for gi = 0 to Array.length groups - 1 do
      let g = groups.(gi) in
      if Array.length g = 1 && g.(0).xc_tile = Tsolo then g.(0).xc_run ctx lo hi
      else if hi <= lo then
        for i = 0 to Array.length g - 1 do
          g.(i).xc_run ctx lo hi
        done
      else begin
        let tl = ref lo in
        while !tl < hi do
          let th = min hi (((!tl / tile_w) + 1) * tile_w) in
          for i = 0 to Array.length g - 1 do
            g.(i).xc_run ctx !tl th
          done;
          tl := th
        done
      end
    done
  in
  let run ctx ~w_lo ~w_hi =
    match ctx.chk with
    | Some check ->
        (* a deadline or cancellation token is live: always walk work
           items (bit-identical to the tiled fast path — the differential
           tests hold the two equal) and check between items {e and}
           between statements — fragments fold to few, large work items,
           so per-item checks alone can overshoot an expired deadline by
           a whole fragment *)
        for w = w_lo to w_hi - 1 do
          check ();
          let lo = w * intent in
          let hi = min domain ((w + 1) * intent) in
          if hi > lo || lo = 0 then
            List.iter
              (fun e ->
                check ();
                e.xc_run ctx lo hi)
              execs
        done
    | None ->
        if instrument then begin
          if not ranged then begin
            (* pure element-wise body: one merged range per chunk (only
               the range containing element 0 triggers the one-shot
               statements, exactly as in the per-work-item loop) *)
            let lo = w_lo * intent in
            let hi = min domain (w_hi * intent) in
            if hi > lo || lo = 0 then
              List.iter (fun e -> e.xc_run ctx lo hi) execs
          end
          else
            for w = w_lo to w_hi - 1 do
              let lo = w * intent in
              let hi = min domain ((w + 1) * intent) in
              if hi > lo || lo = 0 then
                List.iter (fun e -> e.xc_run ctx lo hi) execs
            done
        end
        else if all_free then begin
          (* no folds: work items are independent, tile the merged range *)
          let lo = w_lo * intent in
          let hi = min domain (w_hi * intent) in
          if hi > lo || lo = 0 then run_tiled ctx lo hi
        end
        else
          for w = w_lo to w_hi - 1 do
            let lo = w * intent in
            let hi = min domain ((w + 1) * intent) in
            if hi > lo || lo = 0 then run_tiled ctx lo hi
          done
  in
  {
    cp_run = run;
    cp_scatters = List.rev !scatters;
    cp_grouped = List.rev !grouped;
    cp_single_chunk = single_chunk;
  }
