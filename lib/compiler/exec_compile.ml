(** Closure compilation of fragment bodies (the fast execution path).

    The reference executor ({!Exec}) walks each statement's tree once per
    work item: every element access re-matches on the operator, re-looks
    columns up in the environment, boxes scalars, and re-decides the
    event accounting.  This module performs all of those decisions {e
    once per fragment}, after {!Exec_state.prepare} has bound every
    output, and emits a list of OCaml closures over the resolved column
    buffers — monomorphic [int array]/[float array] loops for the common
    dtype combinations, a generic scalar loop otherwise.

    Two builds exist per statement:

    - {e instrumented} ([instrument = true]): the closures replicate the
      tree walk's event accounting exactly — same sites, same counts,
      same per-element branch-predictor stream — so cost-model runs can
      use the fast path with bit-identical {!Voodoo_device.Events}
      records;
    - {e raw} ([instrument = false]): device simulation is skipped
      entirely (no events, no predictors, no position classification).
      Only legal when nobody reads costs or traces; rows are still
      bit-identical.

    The first-reader read-charging of the tree walk (each buffer charged
    once per work-item range) is resolved statically: the compiler
    simulates the per-range charge table once for the [lo = 0] range
    (which additionally runs the one-shot statements — materialize,
    cross, partition) and once for every later range, and bakes the two
    boolean outcomes into each charge site's closure.  The only dynamic
    part of read accounting — empty-slot suppression of fold outputs
    becoming visible to later statements of the same fragment — goes
    through the context's suppression overlay.

    All mutable state a closure touches at run time lives either in its
    own output buffers (disjoint element ranges across chunks, see
    {!Voodoo_core.Chunk}) or in the {!ctx} passed per chunk, which is
    what makes the closures safe to run on multiple domains. *)

open Voodoo_vector
open Voodoo_core
open Voodoo_device
open Fragment
open Exec_state

(** Chunk-private scatter output: a log of (data row, output position)
    pairs in write order.  The fragment IR is single-assignment, so a
    scatter's source buffers are complete and unchanged once every chunk
    has run — replaying the logs against the real output columns in chunk
    order reproduces the sequential last-writer-wins outcome without
    allocating private copies of the (much larger) output. *)
type region = {
  mutable rg_log : int array;  (** interleaved (i, p) pairs *)
  mutable rg_len : int;  (** ints used *)
}

(** Per-chunk execution context: everything a closure may mutate besides
    its own (element-disjoint) output buffers. *)
type ctx = {
  ev : Events.t;
  pos : (string, pos_stats) Hashtbl.t;
      (** chunk-local position observations, merged via
          {!Exec_state.merge_pos} *)
  sup : (Op.id, int) Hashtbl.t;
      (** suppression {e deltas} against [st.suppressed] (written only at
          a fold's final range, so chunk deltas sum exactly) *)
  regions : (Op.id, region) Hashtbl.t;
      (** private scatter outputs; empty when running sequentially *)
  chk : (unit -> unit) option;
      (** cooperative deadline/cancellation check, called between work
          items; raises {!Voodoo_core.Budget.Exceeded} to stop the chunk *)
}

let make_ctx ?chk ~ev () =
  {
    ev;
    pos = Hashtbl.create 8;
    sup = Hashtbl.create 4;
    regions = Hashtbl.create 2;
    chk;
  }

(* Absolute suppression count visible through the overlay. *)
let sup_find st (ctx : ctx) id =
  match Hashtbl.find_opt st.suppressed id, Hashtbl.find_opt ctx.sup id with
  | None, None -> None
  | b, d -> Some (Option.value b ~default:0 + Option.value d ~default:0)

(* [effective_reads] with the overlay applied. *)
let eff st ctx id count =
  match sup_find st ctx id with
  | Some valid when st.opts.Codegen.suppress_empty_slots -> min valid count
  | _ -> count

(* Fold the accumulated deltas back into the shared state (after all
   chunks have been merged). *)
let apply_sup st (sup : (Op.id, int) Hashtbl.t) =
  Hashtbl.iter
    (fun id d ->
      Hashtbl.replace st.suppressed id
        (Option.value (Hashtbl.find_opt st.suppressed id) ~default:0 + d))
    sup

(* ---------- dynamic column accessors (hoisted per statement) ---------- *)

(* Validity at the broadcast-mapped index, matching [bget]'s indexing. *)
let bvalid (c : Column.t) =
  let broadcast = Column.length c = 1 in
  match c.Column.valid with
  | None -> fun _ -> true
  | Some b -> if broadcast then fun _ -> Bitset.get b 0 else fun i -> Bitset.get b i

(* Validity at the literal index (gather/scatter sources use [Column.get]
   directly, with no broadcast remapping). *)
let dvalid (c : Column.t) =
  match c.Column.valid with
  | None -> fun _ -> true
  | Some b -> fun i -> Bitset.get b i

(* Position read: [Scalar.to_int] of the raw slot. *)
let praw (c : Column.t) =
  match c.Column.data with
  | Column.I a -> fun i -> a.(i)
  | Column.F a -> fun i -> int_of_float a.(i)

(* ---------- monomorphic binary kernels ---------- *)

(* [binary_kernel op lcol rcol out] is a [lo hi -> unit] loop computing
   [out.(i) <- op lcol.(i') rcol.(i')] for valid operand pairs (broadcast
   length-1 operands index slot 0), marking written slots valid.  The
   hot dtype combinations get direct array loops; anything else falls
   back to the scalar semantics the tree walk uses, so results are
   identical by construction. *)
let binary_kernel (op : Op.binop) (lcol : Column.t) (rcol : Column.t)
    (out : Column.t) =
  let lbc = Column.length lcol = 1 and rbc = Column.length rcol = 1 in
  let lv = bvalid lcol and rv = bvalid rcol in
  let generic lo hi =
    for i = lo to hi - 1 do
      match bget lcol i, bget rcol i with
      | Some a, Some b -> Column.set out i (Op.apply_binop op a b)
      | None, _ | _, None -> ()
    done
  in
  match lcol.Column.data, rcol.Column.data, out.Column.data, out.Column.valid with
  | Column.I la, Column.I ra, Column.I oa, Some ob -> (
      let ik f lo hi =
        for i = lo to hi - 1 do
          if lv i && rv i then begin
            oa.(i) <- f la.(if lbc then 0 else i) ra.(if rbc then 0 else i);
            Bitset.set ob i true
          end
        done
      in
      match op with
      | Add -> ik ( + )
      | Subtract -> ik ( - )
      | Multiply -> ik ( * )
      | Divide -> ik ( / )
      | Modulo -> ik (fun x y -> ((x mod y) + abs y) mod abs y)
      | BitShift -> ik (fun x s -> if s >= 0 then x lsl s else x asr (-s))
      | LogicalAnd -> ik (fun a b -> if a <> 0 && b <> 0 then 1 else 0)
      | LogicalOr -> ik (fun a b -> if a <> 0 || b <> 0 then 1 else 0)
      | Greater -> ik (fun a b -> if a > b then 1 else 0)
      | GreaterEqual -> ik (fun a b -> if a >= b then 1 else 0)
      | Equals -> ik (fun a b -> if a = b then 1 else 0))
  | Column.F la, Column.F ra, Column.F oa, Some ob -> (
      let fk f lo hi =
        for i = lo to hi - 1 do
          if lv i && rv i then begin
            oa.(i) <- f la.(if lbc then 0 else i) ra.(if rbc then 0 else i);
            Bitset.set ob i true
          end
        done
      in
      match op with
      | Add -> fk ( +. )
      | Subtract -> fk ( -. )
      | Multiply -> fk ( *. )
      | Divide -> fk ( /. )
      | Modulo -> fk Float.rem
      | BitShift | LogicalAnd | LogicalOr | Greater | GreaterEqual | Equals ->
          generic (* int-typed result: [out] cannot be a float column *))
  | Column.F la, Column.F ra, Column.I oa, Some ob -> (
      (* float comparisons and logic produce 0/1 ints; comparisons go
         through [Float.compare], exactly as [Scalar.compare_scalar] *)
      let ck f lo hi =
        for i = lo to hi - 1 do
          if lv i && rv i then begin
            oa.(i) <-
              (if f la.(if lbc then 0 else i) ra.(if rbc then 0 else i) then 1
               else 0);
            Bitset.set ob i true
          end
        done
      in
      match op with
      | Greater -> ck (fun a b -> Float.compare a b > 0)
      | GreaterEqual -> ck (fun a b -> Float.compare a b >= 0)
      | Equals -> ck (fun a b -> Float.compare a b = 0)
      | LogicalAnd -> ck (fun a b -> a <> 0.0 && b <> 0.0)
      | LogicalOr -> ck (fun a b -> a <> 0.0 || b <> 0.0)
      | Add | Subtract | Multiply | Divide | Modulo | BitShift -> generic)
  | _ -> generic

(* ---------- gather / scatter column movers ---------- *)

(* [gather_copy (src, dst)] is a [p i -> unit] move of data row [p] into
   output row [i]; ε source slots leave the output slot ε (created
   empty). *)
let gather_copy ((src : Column.t), (dst : Column.t)) =
  let sv = dvalid src in
  match src.Column.data, dst.Column.data, dst.Column.valid with
  | Column.I sa, Column.I da, Some db ->
      fun p i ->
        if sv p then begin
          da.(i) <- sa.(p);
          Bitset.set db i true
        end
  | Column.F sa, Column.F da, Some db ->
      fun p i ->
        if sv p then begin
          da.(i) <- sa.(p);
          Bitset.set db i true
        end
  | _ ->
      fun p i ->
        (match Column.get src p with
        | Some v -> Column.set dst i v
        | None -> ())

(* [scatter_writers pairs] are [i p -> unit] moves of data row [i] to
   output position [p]; an ε source slot explicitly empties the target
   (a scatter overwrites whatever was there). *)
let scatter_writers pairs =
  List.map
    (fun ((src : Column.t), (dst : Column.t)) ->
      let sv = dvalid src in
      match src.Column.data, dst.Column.data, dst.Column.valid with
      | Column.I sa, Column.I da, Some db ->
          fun i p ->
            if sv i then begin
              da.(p) <- sa.(i);
              Bitset.set db p true
            end
            else Bitset.set db p false
      | Column.F sa, Column.F da, Some db ->
          fun i p ->
            if sv i then begin
              da.(p) <- sa.(i);
              Bitset.set db p true
            end
            else Bitset.set db p false
      | _ ->
          fun i p ->
            (match Column.get src i with
            | Some v -> Column.set dst p v
            | None -> Column.set_empty dst p))
    pairs

(** Everything {!Exec_par} needs to give one scatter statement a private
    per-chunk log. *)
type scatter_info = {
  sc_id : Op.id;
  sc_write : int -> int -> unit;  (** composed real-column writers *)
}

let make_region (_ : scatter_info) = { rg_log = Array.make 512 0; rg_len = 0 }

let record_write (r : region) i p =
  let need = r.rg_len + 2 in
  if need > Array.length r.rg_log then begin
    let bigger = Array.make (2 * Array.length r.rg_log) 0 in
    Array.blit r.rg_log 0 bigger 0 r.rg_len;
    r.rg_log <- bigger
  end;
  r.rg_log.(r.rg_len) <- i;
  r.rg_log.(r.rg_len + 1) <- p;
  r.rg_len <- need

(* Replay a chunk's scatter log against the real output columns; replaying
   regions in chunk order reproduces the sequential last-writer-wins
   outcome. *)
let merge_region (si : scatter_info) (r : region) =
  let log = r.rg_log in
  let k = ref 0 in
  while !k < r.rg_len do
    si.sc_write log.(!k) log.(!k + 1);
    k := !k + 2
  done

(* ---------- fold accumulation kernels ---------- *)

(* Aggregate one run [rlo, rhi) of [col] and write the result at [rlo] of
   [out], replicating the tree walk's accumulator exactly (including
   starting from the first valid value, not from zero, so float rounding
   is identical). *)
let fold_run_kernel (agg : Op.agg) (col : Column.t) (out : Column.t) =
  let dt = fold_out_dtype agg col in
  let v = dvalid col in
  match agg, col.Column.data, out.Column.data, out.Column.valid with
  | Count, _, Column.I oa, Some ob ->
      fun rlo rhi ->
        let c = ref 0 in
        for i = rlo to rhi - 1 do
          if v i then incr c
        done;
        oa.(rlo) <- !c;
        Bitset.set ob rlo true
  | Sum, Column.I a, Column.I oa, Some ob ->
      fun rlo rhi ->
        let s = ref 0 in
        for i = rlo to rhi - 1 do
          if v i then s := !s + a.(i)
        done;
        oa.(rlo) <- !s;
        Bitset.set ob rlo true
  | Sum, Column.F a, Column.F oa, Some ob ->
      fun rlo rhi ->
        let s = ref 0.0 and seen = ref false in
        for i = rlo to rhi - 1 do
          if v i then
            if !seen then s := !s +. a.(i)
            else begin
              s := a.(i);
              seen := true
            end
        done;
        oa.(rlo) <- !s;
        Bitset.set ob rlo true
  | Max, Column.I a, Column.I oa, Some ob ->
      fun rlo rhi ->
        let m = ref 0 and seen = ref false in
        for i = rlo to rhi - 1 do
          if v i then
            if !seen then (if a.(i) > !m then m := a.(i))
            else begin
              m := a.(i);
              seen := true
            end
        done;
        if !seen then begin
          oa.(rlo) <- !m;
          Bitset.set ob rlo true
        end
  | Min, Column.I a, Column.I oa, Some ob ->
      fun rlo rhi ->
        let m = ref 0 and seen = ref false in
        for i = rlo to rhi - 1 do
          if v i then
            if !seen then (if a.(i) < !m then m := a.(i))
            else begin
              m := a.(i);
              seen := true
            end
        done;
        if !seen then begin
          oa.(rlo) <- !m;
          Bitset.set ob rlo true
        end
  | Max, Column.F a, Column.F oa, Some ob ->
      fun rlo rhi ->
        let m = ref 0.0 and seen = ref false in
        for i = rlo to rhi - 1 do
          if v i then
            if !seen then (if Float.compare a.(i) !m > 0 then m := a.(i))
            else begin
              m := a.(i);
              seen := true
            end
        done;
        if !seen then begin
          oa.(rlo) <- !m;
          Bitset.set ob rlo true
        end
  | Min, Column.F a, Column.F oa, Some ob ->
      fun rlo rhi ->
        let m = ref 0.0 and seen = ref false in
        for i = rlo to rhi - 1 do
          if v i then
            if !seen then (if Float.compare a.(i) !m < 0 then m := a.(i))
            else begin
              m := a.(i);
              seen := true
            end
        done;
        if !seen then begin
          oa.(rlo) <- !m;
          Bitset.set ob rlo true
        end
  | _ ->
      (* mixed/exotic dtypes: the tree walk's scalar accumulator *)
      fun rlo rhi ->
        let acc = ref None in
        for i = rlo to rhi - 1 do
          match Column.get col i with
          | Some v ->
              acc :=
                Some
                  (match !acc, agg with
                  | None, Count -> Scalar.I 1
                  | None, _ -> v
                  | Some cur, Sum -> Scalar.add cur v
                  | Some cur, Max -> Scalar.max_s cur v
                  | Some cur, Min -> Scalar.min_s cur v
                  | Some cur, Count -> Scalar.add cur (Scalar.I 1))
          | None -> ()
        done;
        (match !acc, agg with
        | Some v, _ -> Column.set out rlo v
        | None, (Sum | Count) -> Column.set out rlo (Scalar.zero dt)
        | None, (Max | Min) -> ())

(* Did the run end with no valid element?  Needed where the scalar fold
   distinguishes "no value" from "zero": for Sum/Count the tree walk
   writes zero anyway, which the specialised kernels above replicate by
   starting at zero; only Max/Min skip the write (also replicated). *)

(* ---------- compiled fragments ---------- *)

type stmt_exec = {
  xc_run : ctx -> int -> int -> unit;  (** [lo, hi) element range *)
  xc_ranged : bool;
      (** needs the exact per-work-item ranges (folds: run structure;
          instrumented statements: per-range event accounting) *)
}

type compiled = {
  cp_run : ctx -> w_lo:int -> w_hi:int -> unit;
      (** execute work items [w_lo, w_hi) *)
  cp_scatters : scatter_info list;
  cp_single_chunk : bool;
      (** shares accumulators across ranges (grouped folds): must not be
          chunked *)
}

let compile st (f : frag) (body : compiled_stmt list) ~instrument : compiled =
  let env = st.env in
  (* Static per-range first-reader simulation: one charge table for the
     lo = 0 range (one-shot statements included), one for later ranges. *)
  let first_set = Hashtbl.create 16 and later_set = Hashtbl.create 16 in
  let reg_charge ~lo0_only (src : Op.src) =
    let id, rkp, key = resolve_charge st src in
    let ff = not (Hashtbl.mem first_set key) in
    if ff then Hashtbl.replace first_set key ();
    let fl =
      if lo0_only then false
      else begin
        let fl = not (Hashtbl.mem later_set key) in
        if fl then Hashtbl.replace later_set key ();
        fl
      end
    in
    (id, rkp, ff, fl)
  in
  (* A charge-site closure: fires when this statement is the range's
     first reader of the resolved buffer, with the suppression overlay
     applied to the dynamic count. *)
  let charge ~lo0_only src =
    let id, rkp, ff, fl = reg_charge ~lo0_only src in
    let site = id ^ Keypath.to_string rkp ^ ":r" in
    match storage_of st id with
    | Register | Virtual -> fun _ _ _ -> ()
    | Global ->
        fun ctx lo count ->
          if if lo = 0 then ff else fl then
            Events.mem ctx.ev ~site ~pattern:Cache.Sequential ~elem_bytes:width
              (eff st ctx id count)
    | Local ws ->
        fun ctx lo count ->
          if if lo = 0 then ff else fl then
            Events.mem ~scalable:false ctx.ev ~site ~pattern:(Cache.Random ws)
              ~elem_bytes:width
              (eff st ctx id count)
  in
  let write sid =
    match storage_of st sid with
    | Register | Virtual -> fun _ _ -> ()
    | Global ->
        fun ctx count ->
          Events.mem ctx.ev ~site:(sid ^ ":w") ~pattern:Cache.Sequential
            ~elem_bytes:width count
    | Local ws ->
        fun ctx count ->
          Events.mem ~scalable:false ctx.ev ~site:(sid ^ ":w")
            ~pattern:(Cache.Random ws) ~elem_bytes:width count
  in
  let scatters = ref [] in
  let compile_stmt (cs : compiled_stmt) : stmt_exec option =
    let s = cs.stmt in
    match s.op with
    | Load _ | Persist _ | Constant _ | Range _ | Zip _ | Project _ | Upsert _ ->
        None (* prepared once; no per-range work, no events *)
    | Materialize { data; _ } | Break { data; _ } ->
        if not instrument then None
        else begin
          let vec = lookup env data in
          let n = Svector.length vec in
          let cols = List.length (Svector.keypaths vec) in
          let ch = charge ~lo0_only:true { Op.v = data; kp = [] } in
          let wr = write s.id in
          Some
            {
              xc_run =
                (fun ctx lo _hi ->
                  if lo = 0 then begin
                    ch ctx 0 (n * cols);
                    wr ctx (n * cols)
                  end);
              xc_ranged = false;
            }
        end
    | Cross _ ->
        if not instrument then None
        else begin
          let n = Svector.length (lookup env s.id) in
          let wr = write s.id in
          Some
            {
              xc_run =
                (fun ctx lo _hi ->
                  if lo = 0 then begin
                    Events.alu ctx.ev Int (2 * n);
                    wr ctx (2 * n)
                  end);
              xc_ranged = false;
            }
        end
    | Binary { op; left; right; _ } ->
        if storage_of st s.id = Virtual then None
        else begin
          let _, lcol = src_column env left and _, rcol = src_column env right in
          let out = leaf_column (lookup env s.id) [] in
          let n_out = Column.length out in
          let kernel = binary_kernel op lcol rcol out in
          if not instrument then
            Some
              {
                xc_run = (fun _ctx lo hi -> kernel lo (min hi n_out));
                xc_ranged = false;
              }
          else begin
            let dt = Column.dtype out in
            (* registration order = runtime charge order (left, right) *)
            let chl = charge ~lo0_only:false left in
            let chr = charge ~lo0_only:false right in
            let wr = write s.id in
            Some
              {
                xc_run =
                  (fun ctx lo hi ->
                    let hi = min hi n_out in
                    kernel lo hi;
                    let c = max 0 (hi - lo) in
                    Events.alu ctx.ev dt c;
                    chl ctx lo c;
                    chr ctx lo c;
                    wr ctx c);
                xc_ranged = true;
              }
          end
        end
    | Gather { data; positions } ->
        let dvec = lookup env data in
        let _, pcol = src_column env positions in
        let out = lookup env s.id in
        let dn = Svector.length dvec in
        let movers =
          List.map
            (fun kp -> gather_copy (Svector.column dvec kp, Svector.column out kp))
            (Svector.keypaths dvec)
        in
        let pn = Column.length pcol in
        let pv = dvalid pcol and pr = praw pcol in
        if not instrument then
          Some
            {
              xc_run =
                (fun _ctx lo hi ->
                  let hi = min hi pn in
                  for i = lo to hi - 1 do
                    if pv i then begin
                      let p = pr i in
                      if p >= 0 && p < dn then
                        List.iter (fun m -> m p i) movers
                    end
                  done);
              xc_ranged = false;
            }
        else begin
          let ncols = List.length movers in
          let chp = charge ~lo0_only:false positions in
          let wr = write s.id in
          let key = "g:" ^ s.id in
          Some
            {
              xc_run =
                (fun ctx lo hi ->
                  let ps = stats_in ctx.pos key in
                  let hi' = min hi pn in
                  let valid = ref 0 in
                  for i = lo to hi' - 1 do
                    if pv i then begin
                      let p = pr i in
                      observe ps p;
                      incr valid;
                      if p >= 0 && p < dn then List.iter (fun m -> m p i) movers
                    end
                  done;
                  Events.alu ctx.ev Int !valid;
                  chp ctx lo !valid;
                  wr ctx (!valid * ncols));
              xc_ranged = true;
            }
        end
    | Scatter { data; positions; _ } ->
        if storage_of st s.id = Virtual then begin
          (* identity scatter: alias the data vector, once.  Consumers
             compiled after this statement resolve against the alias,
             exactly as the tree walk's lo = 0 rebind. *)
          Hashtbl.replace env s.id (lookup env data);
          None
        end
        else begin
          let dvec = lookup env data in
          let out = lookup env s.id in
          let _, pcol = src_column env positions in
          let out_n = Svector.length out in
          let pairs =
            List.map
              (fun kp -> (Svector.column dvec kp, Svector.column out kp))
              (Svector.keypaths dvec)
          in
          let real_writers = scatter_writers pairs in
          let seq_write =
            match real_writers with
            | [ w ] -> w
            | ws -> fun i p -> List.iter (fun w -> w i p) ws
          in
          scatters := { sc_id = s.id; sc_write = seq_write } :: !scatters;
          let hi_cap = min (Svector.length dvec) (Column.length pcol) in
          let pv = dvalid pcol and pr = praw pcol in
          let writer_of ctx =
            match Hashtbl.find_opt ctx.regions s.id with
            | Some r -> record_write r
            | None -> seq_write
          in
          if not instrument then
            Some
              {
                xc_run =
                  (fun ctx lo hi ->
                    let write = writer_of ctx in
                    let hi = min hi hi_cap in
                    for i = lo to hi - 1 do
                      if pv i then begin
                        let p = pr i in
                        if p >= 0 && p < out_n then write i p
                      end
                    done);
                xc_ranged = false;
              }
          else begin
            let ncols = List.length pairs in
            let chp = charge ~lo0_only:false positions in
            let chd = charge ~lo0_only:false { Op.v = data; kp = [] } in
            let key = "s:" ^ s.id in
            Some
              {
                xc_run =
                  (fun ctx lo hi ->
                    let write = writer_of ctx in
                    let ps = stats_in ctx.pos key in
                    let hi' = min hi hi_cap in
                    let valid = ref 0 in
                    for i = lo to hi' - 1 do
                      if pv i then begin
                        let p = pr i in
                        observe ps p;
                        incr valid;
                        if p >= 0 && p < out_n then write i p
                      end
                    done;
                    Events.alu ctx.ev Int !valid;
                    chp ctx lo !valid;
                    chd ctx lo (!valid * ncols));
                xc_ranged = true;
              }
          end
        end
    | Partition { values; pivots; _ } ->
        (* whole-domain one-shot in its own fragment *)
        let chv = charge ~lo0_only:true values in
        let wr = write s.id in
        Some
          {
            xc_run =
              (fun ctx lo _hi ->
                if lo = 0 then begin
                  let n, npart = partition_compute st s ~values ~pivots in
                  if instrument then begin
                    chv ctx 0 (2 * n);
                    Events.alu ctx.ev Int ((3 * n) + npart);
                    Events.mem ctx.ev ~site:(s.id ^ ":hist")
                      ~pattern:(Cache.Random (npart * width))
                      ~elem_bytes:width (2 * n);
                    wr ctx n
                  end
                end);
            xc_ranged = false;
          }
    | FoldAgg { agg; fold; input; _ } -> (
        match cs.grouped_fold with
        | Some g ->
            (* virtual scatter: accumulate straight off the source into
               shared per-fragment accumulators — inherently sequential
               across ranges (single chunk) *)
            let _, gcol = src_column env { Op.v = g.source; kp = g.group_src.kp } in
            let _, vcol = src_column env { Op.v = g.source; kp = g.value_src.kp } in
            let accs, counts = Hashtbl.find st.group_acc s.id in
            let k = Array.length accs in
            let gn = Column.length gcol in
            let gv = dvalid gcol and gr = praw gcol in
            let vdt = Column.dtype vcol in
            let chg = charge ~lo0_only:false g.group_src in
            let chv = charge ~lo0_only:false g.value_src in
            let wr = write s.id in
            let acc_site = s.id ^ ":acc" in
            let acc_bytes = k * width in
            let accumulate lo hi =
              for i = lo to hi - 1 do
                let gi = if gv i then gr i else k - 1 in
                if gi >= 0 && gi < k then begin
                  counts.(gi) <- counts.(gi) + 1;
                  match Column.get vcol i with
                  | Some v ->
                      accs.(gi) <-
                        Some
                          (match accs.(gi), agg with
                          | None, Count -> Scalar.I 1
                          | None, _ -> v
                          | Some cur, Sum -> Scalar.add cur v
                          | Some cur, Max -> Scalar.max_s cur v
                          | Some cur, Min -> Scalar.min_s cur v
                          | Some cur, Count -> Scalar.add cur (Scalar.I 1))
                  | None -> ()
                end
              done
            in
            let finish (ctx : ctx) =
              let out = leaf_column (lookup env s.id) [] in
              let dt = Column.dtype out in
              let pos = ref 0 in
              for gi = 0 to k - 1 do
                (match accs.(gi), agg with
                | Some v, _ -> Column.set out !pos v
                | None, (Sum | Count) ->
                    if counts.(gi) > 0 then Column.set out !pos (Scalar.zero dt)
                | None, (Max | Min) -> ());
                pos := !pos + counts.(gi)
              done;
              (* overlay delta making the absolute suppression count k,
                 replicating the tree walk's [Hashtbl.replace] *)
              let base =
                Option.value (Hashtbl.find_opt st.suppressed s.id) ~default:0
              in
              Hashtbl.replace ctx.sup s.id (k - base);
              if instrument then wr ctx k
            in
            Some
              {
                xc_run =
                  (fun ctx lo hi ->
                    let n_range = hi - lo in
                    let hi = min hi gn in
                    accumulate lo hi;
                    if instrument then begin
                      Events.alu ctx.ev vdt (2 * n_range);
                      chg ctx lo n_range;
                      chv ctx lo n_range;
                      Events.mem ctx.ev ~site:acc_site
                        ~pattern:(Cache.Random acc_bytes) ~elem_bytes:width
                        n_range
                    end;
                    if hi >= gn then finish ctx);
                xc_ranged = true;
              }
        | None ->
            let vec, col = src_column env input in
            let out = leaf_column (lookup env s.id) [] in
            let fold_col =
              if aligned_fold st f env input fold then None
              else Option.map (fun kp -> leaf_column vec kp) fold
            in
            let kernel = fold_run_kernel agg col out in
            let n_vec = Svector.length vec in
            let rid, _ = resolve_read st input.v (leaf vec input.kp) in
            let cdt = Column.dtype col in
            let chi = charge ~lo0_only:false input in
            let wr = write s.id in
            let suppressing = st.opts.Codegen.suppress_empty_slots in
            Some
              {
                xc_run =
                  (fun ctx lo hi ->
                    let n_range = hi - lo in
                    if instrument && fold_col <> None then
                      Events.alu ctx.ev Int n_range;
                    let run_count = ref 0 in
                    List.iter
                      (fun (rlo, rhi) ->
                        incr run_count;
                        kernel rlo rhi)
                      (runs_in_range ~fold_col lo hi);
                    if instrument then begin
                      Events.alu ctx.ev cdt (eff st ctx rid n_range);
                      chi ctx lo n_range;
                      wr ctx !run_count
                    end;
                    if suppressing && hi >= n_vec then
                      Hashtbl.replace ctx.sup s.id
                        (Option.value (Hashtbl.find_opt ctx.sup s.id) ~default:0
                        + !run_count));
                xc_ranged = true;
              })
    | FoldSelect { fold; input; _ } ->
        let vec, col = src_column env input in
        let out = leaf_column (lookup env s.id) [] in
        let fold_col =
          if aligned_fold st f env input fold then None
          else Option.map (fun kp -> leaf_column vec kp) fold
        in
        let cv = dvalid col in
        let taken_at =
          match col.Column.data with
          | Column.I a -> fun i -> cv i && a.(i) <> 0
          | Column.F a -> fun i -> cv i && a.(i) <> 0.0
        in
        let oa, ob =
          match out.Column.data, out.Column.valid with
          | Column.I oa, Some ob -> (Some oa, ob)
          | _, Some ob -> (None, ob)
          | _ -> err "fold-select output %s has no validity mask" s.id
        in
        let emit i cursor =
          (match oa with
          | Some oa -> oa.(cursor) <- i
          | None -> Column.set out cursor (Scalar.I i));
          Bitset.set ob cursor true
        in
        let cdt = Column.dtype col in
        let chi = charge ~lo0_only:false input in
        let wr = write s.id in
        Some
          {
            xc_run =
              (fun ctx lo hi ->
                let n_range = hi - lo in
                if instrument && fold_col <> None then
                  Events.alu ctx.ev Int n_range;
                let emitted = ref 0 in
                List.iter
                  (fun (rlo, rhi) ->
                    let cursor = ref rlo in
                    if instrument then
                      for i = rlo to rhi - 1 do
                        let taken = taken_at i in
                        Events.branch ctx.ev ~site:s.id taken;
                        if taken then begin
                          emit i !cursor;
                          incr cursor;
                          incr emitted
                        end
                      done
                    else
                      for i = rlo to rhi - 1 do
                        if taken_at i then begin
                          emit i !cursor;
                          incr cursor
                        end
                      done)
                  (runs_in_range ~fold_col lo hi);
                if instrument then begin
                  Events.alu ctx.ev cdt n_range;
                  Events.guarded ctx.ev !emitted;
                  chi ctx lo n_range;
                  wr ctx !emitted
                end);
            xc_ranged = true;
          }
    | FoldScan { fold; input; _ } ->
        let vec, col = src_column env input in
        let out = leaf_column (lookup env s.id) [] in
        let fold_col =
          if aligned_fold st f env input fold then None
          else Option.map (fun kp -> leaf_column vec kp) fold
        in
        let cv = dvalid col in
        let scan_run =
          match col.Column.data, out.Column.data, out.Column.valid with
          | Column.I a, Column.I oa, Some ob ->
              fun rlo rhi ->
                let acc = ref 0 in
                for i = rlo to rhi - 1 do
                  if cv i then acc := !acc + a.(i);
                  oa.(i) <- !acc;
                  Bitset.set ob i true
                done
          | Column.F a, Column.F oa, Some ob ->
              fun rlo rhi ->
                let acc = ref 0.0 in
                for i = rlo to rhi - 1 do
                  if cv i then acc := !acc +. a.(i);
                  oa.(i) <- !acc;
                  Bitset.set ob i true
                done
          | _ ->
              fun rlo rhi ->
                let acc = ref (Scalar.zero (Column.dtype col)) in
                for i = rlo to rhi - 1 do
                  (match Column.get col i with
                  | Some v -> acc := Scalar.add !acc v
                  | None -> ());
                  Column.set out i !acc
                done
        in
        let cdt = Column.dtype col in
        let chi = charge ~lo0_only:false input in
        let wr = write s.id in
        Some
          {
            xc_run =
              (fun ctx lo hi ->
                let n_range = hi - lo in
                if instrument && fold_col <> None then
                  Events.alu ctx.ev Int n_range;
                List.iter (fun (rlo, rhi) -> scan_run rlo rhi)
                  (runs_in_range ~fold_col lo hi);
                if instrument then begin
                  Events.alu ctx.ev cdt n_range;
                  chi ctx lo n_range;
                  wr ctx n_range
                end);
            xc_ranged = true;
          }
  in
  let execs = List.filter_map compile_stmt body in
  let single_chunk =
    List.exists
      (fun (cs : compiled_stmt) -> cs.grouped_fold <> None)
      body
  in
  let intent = max 1 f.intent in
  let domain = f.domain in
  let ranged = List.exists (fun e -> e.xc_ranged) execs in
  let run ctx ~w_lo ~w_hi =
    match ctx.chk with
    | Some check ->
        (* a deadline or cancellation token is live: always walk work
           items (bit-identical to the merged-range fast path — the
           differential tests hold the two equal) and check between
           items {e and} between statements — fragments fold to few,
           large work items, so per-item checks alone can overshoot an
           expired deadline by a whole fragment *)
        for w = w_lo to w_hi - 1 do
          check ();
          let lo = w * intent in
          let hi = min domain ((w + 1) * intent) in
          if hi > lo || lo = 0 then
            List.iter
              (fun e ->
                check ();
                e.xc_run ctx lo hi)
              execs
        done
    | None ->
        if not ranged then begin
          (* pure element-wise body: one merged range per chunk (only the
             range containing element 0 triggers the one-shot statements,
             exactly as in the per-work-item loop) *)
          let lo = w_lo * intent in
          let hi = min domain (w_hi * intent) in
          if hi > lo || lo = 0 then List.iter (fun e -> e.xc_run ctx lo hi) execs
        end
        else
          for w = w_lo to w_hi - 1 do
            let lo = w * intent in
            let hi = min domain ((w + 1) * intent) in
            if hi > lo || lo = 0 then List.iter (fun e -> e.xc_run ctx lo hi) execs
          done
  in
  { cp_run = run; cp_scatters = List.rev !scatters; cp_single_chunk = single_chunk }
