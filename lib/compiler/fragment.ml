(** Code fragments: the unit of kernel generation (paper Section 3.1).

    The compiler fuses runs of operators into fragments.  Each fragment
    becomes one kernel with an {e extent} (the number of parallel work
    items) and an {e intent} (sequential iterations per work item); work
    item [w] owns the element range [w*intent .. (w+1)*intent).  Fully
    data-parallel fragments have intent 1; fully sequential ones have
    extent 1.  Result materialization happens only at the seams between
    fragments. *)

open Voodoo_core

(** How a statement's result is stored. *)
type storage =
  | Register
      (** consumed only inside its fragment by aligned operators; never
          stored (fully inlined into consumers) *)
  | Local of int
      (** buffer that stays cache-resident; the payload is its working-set
          size in bytes (e.g. one X100-style chunk) *)
  | Global
      (** materialized to device memory at a fragment seam *)
  | Virtual
      (** never computed at all: control vectors, compile-time constants,
          identity scatters (the paper's "purple" operators) *)

type compiled_stmt = {
  stmt : Program.stmt;
  storage : storage;
  grouped_fold : grouped_fold option;
      (** set when this FoldAgg was fused with its producing scatter into a
          direct grouped aggregation (virtual scatter, Figures 10-11) *)
}

and grouped_fold = {
  source : Op.id;  (** the pre-scatter data vector *)
  group_src : Op.src;  (** group-id attribute of [source] *)
  value_src : Op.src;  (** aggregated attribute of [source] *)
  group_count : int;  (** number of partitions (from the pivot vector) *)
}

type frag = {
  index : int;
  domain : int;  (** number of elements iterated *)
  mutable extent : int;
  mutable intent : int;
  mutable fold_runlen : int option;
      (** the shared run length of this fragment's folds *)
  mutable barrier : bool;
      (** contains a grouped fold whose output completes only at kernel
          end: only other grouped folds may still fuse in *)
  mutable body : compiled_stmt list;  (** reverse order during construction *)
}

type plan = {
  frags : frag list;  (** in execution order *)
  meta : (Op.id * Meta.info) list;
  program : Program.t;
  outputs : Op.id list;
  identity_scatters : (Op.id * Op.id) list;
      (** scatter → data aliases: scatters by identity positions (purely
          logical partitioning, as in Figure 3) *)
}

let stmts_in_order f = List.rev f.body

let pp_storage ppf = function
  | Register -> Fmt.string ppf "reg"
  | Local ws -> Fmt.pf ppf "local(%dB)" ws
  | Global -> Fmt.string ppf "global"
  | Virtual -> Fmt.string ppf "virtual"

let pp_frag ppf f =
  Fmt.pf ppf "@[<v2>fragment %d: domain=%d extent=%d intent=%d%a@,%a@]" f.index
    f.domain f.extent f.intent
    (fun ppf -> function
      | None -> ()
      | Some l -> Fmt.pf ppf " runlen=%d" l)
    f.fold_runlen
    (Fmt.list ~sep:Fmt.cut (fun ppf (c : compiled_stmt) ->
         Fmt.pf ppf "%s [%a]%s" c.stmt.id pp_storage c.storage
           (match c.grouped_fold with
           | Some g -> Printf.sprintf " (grouped-fold over %s)" g.source
           | None -> "")))
    (stmts_in_order f)

let pp_plan ppf p =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_frag) p.frags
