(** Process-wide engagement counters for the parallel grouped-fold path.

    Raw-mode grouped folds stream tile-at-a-time inside their producers'
    tile group and, when the fragment splits, accumulate into chunk-private
    partials ({!Exec_compile.grouped_exec}).  These atomics count how often
    each of those paths actually engaged, across every execution in the
    process — the service surfaces them as [fold.fused] /
    [fold.parallel_chunks] STATS lines, and tests assert engagement
    through them.  Updated lock-free from {!Exec.run}; monotone between
    {!reset}s. *)

(** [record_fold ~fused ~chunks] accounts one fragment execution:
    [fused] raw grouped folds ran in it, over [chunks] chunks.  A single
    chunk is the sequential path and does not count as parallel. *)
val record_fold : fused:int -> chunks:int -> unit

(** Total raw grouped folds that streamed in fused tile groups. *)
val fold_fused : unit -> int

(** Total chunks executed by grouped-fold fragments that actually split
    (2 chunks add 2, a sequential run adds 0). *)
val fold_parallel_chunks : unit -> int

val reset : unit -> unit
