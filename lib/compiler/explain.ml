(** EXPLAIN support: fragment DAG and static cost estimates (see the
    interface). *)

open Voodoo_core
open Voodoo_device
open Fragment

let width = Exec.width

(* ---------- plan-wide lookup tables ---------- *)

(* statement id → storage class, mirroring Exec.run's registration *)
let storage_table (plan : plan) =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun f ->
      List.iter
        (fun (cs : compiled_stmt) -> Hashtbl.replace tbl cs.stmt.id cs.storage)
        (stmts_in_order f))
    plan.frags;
  List.iter
    (fun (s : Program.stmt) ->
      if not (Hashtbl.mem tbl s.id) then
        Hashtbl.replace tbl s.id
          (match s.op with Op.Load _ -> Global | _ -> Virtual))
    (Program.stmts plan.program);
  tbl

let length_table (plan : plan) =
  let tbl = Hashtbl.create 32 in
  List.iter (fun (id, (i : Meta.info)) -> Hashtbl.replace tbl id i.length) plan.meta;
  tbl

(* ---------- the fragment DAG ---------- *)

type frag_deps = { index : int; inputs : int list; from_store : bool }

let deps (plan : plan) : frag_deps list =
  let frag_of = Hashtbl.create 32 in
  List.iter
    (fun (f : frag) ->
      List.iter
        (fun (cs : compiled_stmt) -> Hashtbl.replace frag_of cs.stmt.id f.index)
        (stmts_in_order f))
    plan.frags;
  List.map
    (fun (f : frag) ->
      let inside id = Hashtbl.find_opt frag_of id = Some f.index in
      let producers = ref [] in
      let from_store = ref false in
      (* follow inputs through non-fragment (virtual/structural) statements
         to the fragments and loads that really feed this one *)
      let seen = Hashtbl.create 8 in
      let rec visit id =
        if not (Hashtbl.mem seen id || inside id) then begin
          Hashtbl.replace seen id ();
          match Hashtbl.find_opt frag_of id with
          | Some fi -> if not (List.mem fi !producers) then producers := fi :: !producers
          | None -> (
              match Program.find plan.program id with
              | Some { op = Op.Load _; _ } -> from_store := true
              | Some s -> List.iter visit (Op.inputs s.op)
              | None -> ())
        end
      in
      List.iter
        (fun (cs : compiled_stmt) -> List.iter visit (Op.inputs cs.stmt.op))
        (stmts_in_order f);
      {
        index = f.index;
        inputs = List.sort compare !producers;
        from_store = !from_store;
      })
    plan.frags

(* ---------- static event estimation ---------- *)

(* Deterministic p=0.5 outcome stream: lets the 2-bit predictor settle on
   a realistic mixed-outcome misprediction rate for the estimate. *)
let sample_branches ev ~site n =
  let state = ref 0x9e3779b9 in
  for _ = 1 to 64 do
    state := (!state * 1103515245) + 12345;
    Events.branch ev ~site ((!state lsr 16) land 1 = 1)
  done;
  (* the sampled stream fixed the predictor; re-weigh the totals to the
     fragment's real iteration count *)
  match Hashtbl.find_opt ev.Events.branches site with
  | Some s ->
      s.Events.total <- float_of_int n;
      s.Events.taken <- float_of_int n /. 2.0
  | None -> ()

let estimate (plan : plan) : (int * Events.t) list =
  let storage = storage_table plan in
  let lengths = length_table plan in
  let storage_of id = Option.value (Hashtbl.find_opt storage id) ~default:Global in
  (* follow zip/project/upsert aliases to the buffer that backs a read *)
  let rec resolve (v : Op.id) (kp : Voodoo_vector.Keypath.t) =
    let module K = Voodoo_vector.Keypath in
    match Program.find plan.program v with
    | Some { op = Op.Zip { out1; src1; out2; src2 }; _ } ->
        if K.is_prefix out1 kp then resolve src1.v (K.append src1.kp (K.strip out1 kp))
        else if K.is_prefix out2 kp then
          resolve src2.v (K.append src2.kp (K.strip out2 kp))
        else v
    | Some { op = Op.Project { out; src }; _ } ->
        if K.is_prefix out kp then resolve src.v (K.append src.kp (K.strip out kp))
        else v
    | Some { op = Op.Upsert { target; out; src }; _ } ->
        if K.equal out kp then resolve src.v src.kp else resolve target kp
    | _ -> v
  in
  (* folds shrink their input (one slot per run, ~half the rows for a
     selection); remember those estimated output lengths so downstream
     fragments are priced on what actually flows between them, not on
     the full domain *)
  let est_len = Hashtbl.create 16 in
  let len ~default id =
    match Hashtbl.find_opt est_len id with
    | Some n -> n
    | None -> Option.value (Hashtbl.find_opt lengths id) ~default
  in
  List.map
    (fun (f : frag) ->
      let ev = Events.create () in
      let read (s : Op.src) n =
        let id = resolve s.v s.kp in
        match storage_of id with
        | Register | Virtual -> ()
        | Global ->
            Events.mem ev ~site:(id ^ ":r") ~pattern:Cache.Sequential
              ~elem_bytes:width n
        | Local ws ->
            Events.mem ~scalable:false ev ~site:(id ^ ":r")
              ~pattern:(Cache.Random ws) ~elem_bytes:width n
      in
      let write id n =
        match storage_of id with
        | Register | Virtual -> ()
        | Global ->
            Events.mem ev ~site:(id ^ ":w") ~pattern:Cache.Sequential
              ~elem_bytes:width n
        | Local ws ->
            Events.mem ~scalable:false ev ~site:(id ^ ":w")
              ~pattern:(Cache.Random ws) ~elem_bytes:width n
      in
      List.iter
        (fun (cs : compiled_stmt) ->
          let s = cs.stmt in
          let n = len ~default:f.domain s.id in
          match s.op with
          | Op.Load _ | Op.Persist _ | Op.Constant _ | Op.Range _ | Op.Zip _
          | Op.Project _ | Op.Upsert _ ->
              ()
          | Op.Cross _ ->
              Events.alu ev Int (2 * n);
              write s.id (2 * n)
          | Op.Materialize { data; _ } | Op.Break { data; _ } ->
              read { Op.v = data; kp = [] } n;
              write s.id n
          | Op.Binary { left; right; _ } ->
              if cs.storage <> Virtual then begin
                Events.alu ev Int n;
                read left n;
                read right n;
                write s.id n
              end
          | Op.Gather { data; positions } ->
              let pn = len ~default:n positions.Op.v in
              let dn = len ~default:pn data in
              Events.alu ev Int pn;
              read positions pn;
              Events.mem ev ~site:(s.id ^ ":g")
                ~pattern:(Cache.Random (dn * width)) ~elem_bytes:width pn;
              write s.id pn;
              Hashtbl.replace est_len s.id pn
          | Op.Scatter { data; shape; positions; _ } ->
              if cs.storage <> Virtual then begin
                let out_n = len ~default:n shape in
                Events.alu ev Int n;
                read positions n;
                read { Op.v = data; kp = [] } n;
                Events.mem ev ~site:(s.id ^ ":s")
                  ~pattern:(Cache.Random (out_n * width)) ~elem_bytes:width n
              end
          | Op.Partition { values; _ } ->
              let vn = len ~default:n values.v in
              read values (2 * vn);
              Events.alu ev Int (3 * vn);
              Events.mem ev ~site:(s.id ^ ":hist")
                ~pattern:(Cache.Random (64 * width)) ~elem_bytes:width (2 * vn);
              write s.id vn
          | Op.FoldSelect { input; _ } ->
              let vn = len ~default:n input.v in
              Events.alu ev Int vn;
              sample_branches ev ~site:s.id vn;
              Events.guarded ev (vn / 2);
              read input vn;
              write s.id (vn / 2);
              Hashtbl.replace est_len s.id (vn / 2)
          | Op.FoldAgg { input; _ } -> (
              match cs.grouped_fold with
              | Some g ->
                  let vn = len ~default:n g.source in
                  Events.alu ev Int (2 * vn);
                  read { Op.v = g.source; kp = g.group_src.kp } vn;
                  read { Op.v = g.source; kp = g.value_src.kp } vn;
                  Events.mem ev ~site:(s.id ^ ":acc")
                    ~pattern:(Cache.Random (g.group_count * width))
                    ~elem_bytes:width vn;
                  write s.id g.group_count;
                  Hashtbl.replace est_len s.id g.group_count
              | None ->
                  let vn = len ~default:n input.v in
                  let runs =
                    match f.fold_runlen with
                    | Some l when l > 0 -> max 1 (vn / l)
                    | _ -> max 1 f.extent
                  in
                  Events.alu ev Int vn;
                  read input vn;
                  write s.id runs;
                  Hashtbl.replace est_len s.id runs)
          | Op.FoldScan { input; _ } ->
              let vn = len ~default:n input.v in
              Events.alu ev Int vn;
              read input vn;
              write s.id vn)
        (stmts_in_order f);
      (f.extent, ev))
    plan.frags

(* ---------- rendering ---------- *)

let default_device = Config.cpu_simd

let ms d ~extent ev = 1000.0 *. (Cost.kernel d ~extent ev).Cost.total_s

let find_total name totals =
  Option.value (List.assoc_opt name totals) ~default:0.0

let pp_dag ?(device = default_device) ppf (plan : plan) =
  let est = estimate plan in
  let dag = deps plan in
  Fmt.pf ppf "@[<v>fragment DAG (%d fragments, est. on %s):"
    (List.length plan.frags) device.Config.name;
  List.iter2
    (fun (f : frag) ((extent, ev), (d : frag_deps)) ->
      let sources =
        (if d.from_store then [ "store" ] else [])
        @ List.map (Printf.sprintf "F%d") d.inputs
      in
      Fmt.pf ppf "@,  F%d [extent=%d intent=%d domain=%d]%s <- %s" f.index
        f.extent f.intent f.domain
        (match f.fold_runlen with
        | Some l -> Printf.sprintf " runlen=%d" l
        | None -> "")
        (match sources with [] -> "(const)" | l -> String.concat ", " l);
      Fmt.pf ppf "@,     stmts: %s"
        (String.concat ", "
           (List.map
              (fun (cs : compiled_stmt) ->
                Fmt.str "%s[%a]" cs.stmt.id pp_storage cs.storage)
              (stmts_in_order f)));
      let t = Events.totals ev in
      Fmt.pf ppf
        "@,     est: %.3f ms  alu=%.0f mem=%.0fB branch=%.0f guarded=%.0f"
        (ms device ~extent ev)
        (find_total "alu.int" t +. find_total "alu.float" t)
        (find_total "mem.bytes" t)
        (find_total "branch.total" t)
        (find_total "alu.guarded" t))
    plan.frags
    (List.combine est dag);
  let total =
    List.fold_left (fun acc (e, ev) -> acc +. ms device ~extent:e ev) 0.0 est
  in
  Fmt.pf ppf "@,  total est: %.3f ms on %s@]" total device.Config.name

let pp_compare ?(device = default_device) ppf (plan : plan)
    ~(measured : (int * Events.t) list) =
  let est = estimate plan in
  Fmt.pf ppf "@[<v>%-10s %12s %12s %14s %14s %12s %12s %10s %10s" "fragment"
    "est.ms" "meas.ms" "est.aluops" "meas.aluops" "est.memB" "meas.memB"
    "est.br" "meas.br";
  let alu t = find_total "alu.int" t +. find_total "alu.float" t in
  let grand = ref (0.0, 0.0) in
  List.iter2
    (fun (f : frag) ((e_ext, e_ev), (m_ext, m_ev)) ->
      let et = Events.totals e_ev and mt = Events.totals m_ev in
      let e_ms = ms device ~extent:e_ext e_ev
      and m_ms = ms device ~extent:m_ext m_ev in
      grand := (fst !grand +. e_ms, snd !grand +. m_ms);
      Fmt.pf ppf "@,F%-9d %12.3f %12.3f %14.0f %14.0f %12.0f %12.0f %10.0f %10.0f"
        f.index e_ms m_ms (alu et) (alu mt) (find_total "mem.bytes" et)
        (find_total "mem.bytes" mt)
        (find_total "branch.total" et)
        (find_total "branch.total" mt))
    plan.frags
    (List.combine est measured);
  Fmt.pf ppf "@,%-10s %12.3f %12.3f   (device %s; gap = data-dependent cost)@]"
    "total" (fst !grand) (snd !grand) device.Config.name
