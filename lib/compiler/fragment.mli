(** Code fragments: the unit of kernel generation (paper Section 3.1).

    The compiler fuses runs of operators into fragments; each fragment
    becomes one kernel with an {e extent} (parallel work items) and an
    {e intent} (sequential iterations per work item).  Work item [w] owns
    the element range [w·intent, (w+1)·intent).  Result materialization
    happens only at the seams between fragments. *)

open Voodoo_core

(** How a statement's result is stored. *)
type storage =
  | Register
      (** consumed only inside its fragment by aligned operators; fully
          inlined into consumers, never stored *)
  | Local of int
      (** cache-resident buffer; payload is its working-set size in bytes
          (e.g. one X100-style chunk) *)
  | Global  (** materialized to device memory at a fragment seam *)
  | Virtual
      (** never computed at all: control vectors, compile-time constants,
          identity scatters — the paper's "purple" operators *)

type compiled_stmt = {
  stmt : Program.stmt;
  storage : storage;
  grouped_fold : grouped_fold option;
      (** set when this FoldAgg was fused with its producing scatter into a
          direct grouped aggregation (virtual scatter, Figures 10–11) *)
}

and grouped_fold = {
  source : Op.id;  (** the pre-scatter data vector *)
  group_src : Op.src;  (** group-id attribute of [source] *)
  value_src : Op.src;  (** aggregated attribute of [source] *)
  group_count : int;  (** number of partitions (from the pivot vector) *)
}

type frag = {
  index : int;
  domain : int;  (** number of elements iterated *)
  mutable extent : int;
  mutable intent : int;
  mutable fold_runlen : int option;
      (** the shared run length of this fragment's folds *)
  mutable barrier : bool;
      (** contains a grouped fold whose output completes only at kernel
          end: only other grouped folds may still fuse in *)
  mutable body : compiled_stmt list;  (** reverse order during construction *)
}

type plan = {
  frags : frag list;  (** in execution order *)
  meta : (Op.id * Meta.info) list;
  program : Program.t;
  outputs : Op.id list;
  identity_scatters : (Op.id * Op.id) list;
      (** scatter → data aliases: scatters by identity positions (purely
          logical partitioning, as in Figure 3) *)
}

val stmts_in_order : frag -> compiled_stmt list

val pp_storage : Format.formatter -> storage -> unit
val pp_frag : Format.formatter -> frag -> unit
val pp_plan : Format.formatter -> plan -> unit
