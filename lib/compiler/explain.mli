(** EXPLAIN support: the fragment DAG and static per-fragment cost
    estimates.

    The executor ({!Exec}) observes what a plan {e did}; this module
    predicts what it {e will do}, from structure alone — statement
    shapes, storage classes and metadata lengths — so `voodoo explain`
    can print a fragment DAG with cost estimates before anything runs,
    and print estimates next to measured counters afterwards
    (see [docs/OBSERVABILITY.md]).

    Estimates deliberately mirror the executor's accounting rules
    (storage classes decide what touches memory, folds write one slot
    per run, selections are priced at 50% selectivity with a sampled
    branch-predictor stream), so the two columns of the comparison
    table are in the same units and the gap is the {e data-dependent}
    part of the cost: real selectivities, real access patterns, real
    branch behaviour. *)

open Voodoo_device

(** Which fragments feed fragment [index]: dependencies through
    materialized seams.  [from_store] is true when the fragment also
    reads persistent (loaded) vectors directly. *)
type frag_deps = { index : int; inputs : int list; from_store : bool }

(** The fragment DAG of a plan, in execution order. *)
val deps : Fragment.plan -> frag_deps list

(** [estimate plan] predicts, per fragment, the events the executor
    would record: [(extent, events)] in fragment order, the same shape
    {!Exec.result.kernels} has. *)
val estimate : Fragment.plan -> (int * Events.t) list

(** [pp_dag ?device ppf plan] prints the fragment DAG: per fragment its
    extent/intent/domain, fused statements with storage classes, incoming
    edges, estimated event totals and the estimated kernel cost on
    [device] (default the SIMD CPU model). *)
val pp_dag : ?device:Config.t -> Format.formatter -> Fragment.plan -> unit

(** [pp_compare ?device ppf plan ~measured] prints estimate-vs-measured
    per fragment: cost on [device], memory bytes, ALU operations and
    branches, ending with totals.  [measured] is
    {!Exec.result.kernels}. *)
val pp_compare :
  ?device:Config.t -> Format.formatter -> Fragment.plan ->
  measured:(int * Events.t) list -> unit
