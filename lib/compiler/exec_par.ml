(** Domain-parallel fragment execution.

    Splits a fragment's extent into deterministic work-item chunks
    ({!Voodoo_core.Chunk}), runs every chunk's compiled closures
    ({!Exec_compile}) on the process-wide domain pool
    ({!Voodoo_core.Domain_pool.shared}) — chunk 0 inline on the calling
    domain — and merges the chunk-local observations back {e in chunk
    order}, which makes the result bit-identical to sequential execution
    for any job count:

    - output buffers are written directly: chunks own disjoint element
      ranges, and chunk boundaries fall on validity-mask byte boundaries
      (see {!Voodoo_core.Chunk.boundary_quantum}), so no two domains
      touch the same word;
    - scatters write a chunk-private region, merged last-writer-wins in
      chunk order ({!Exec_compile.merge_region});
    - events merge by {!Voodoo_device.Events.merge_ordered} (branch
      predictors compose exactly via their four-entry-state splits);
    - position observations merge by {!Exec_state.merge_pos} (the only
      cross-chunk interaction is the monotonicity check at the seam);
    - suppression deltas are integers and simply sum.

    - raw-mode grouped folds accumulate into chunk-private partials and
      combine through their deferred epilogue ({!Exec_compile.grouped_exec}):
      partials merge in chunk order (exact for counts, int sums and
      extrema), float sums re-fold positionally over the materialized
      source, and the result layout plus suppression accounting happen
      once, after every chunk finished.  Their chunk boundaries are
      additionally snapped to the {!Codegen.options.fold_grain} so
      accumulator merges stay amortized.

    Only fragments whose body shares accumulators across ranges
    (instrumented grouped folds) report [cp_single_chunk] and run
    sequentially; everything else chunks.  An exception raised by any
    chunk is re-raised after all chunks finish, picking the lowest chunk
    index — the same exception sequential execution would have raised
    first. *)

open Voodoo_core
open Voodoo_device
open Fragment
module C = Exec_compile

(* Fragments processing fewer elements than this run sequentially even
   when jobs > 1: per-chunk contexts, pool hand-off and ordered merging
   cost more than the kernel work they would split.  Determinism is
   unaffected — a single chunk is the sequential path. *)
let min_parallel_elements = 1 lsl 14

(** How the new fold paths engaged for one fragment, for STATS counters
    and trace attribution. *)
type par_info = {
  pi_fold_fused : int;
      (** raw grouped folds streaming tile-at-a-time in this fragment *)
  pi_fold_chunks : int;
      (** chunks a grouped-fold fragment split into (0 when no grouped
          fold ran, 1 when it ran sequentially) *)
}

let no_par_info = { pi_fold_fused = 0; pi_fold_chunks = 0 }

(* Run the deferred grouped-fold epilogue: merge every later chunk's
   partials into chunk 0's context in chunk order, re-fold positionally
   where rounding demands it, then lay out results and suppression
   deltas (into [ctx0.sup], picked up by the caller's sup merge). *)
let grouped_epilogue (cp : C.compiled) (ctx0 : C.ctx) (rest : C.ctx list) =
  List.iter
    (fun (g : C.grouped_exec) ->
      List.iter (fun ctx -> g.C.gx_merge ~into:ctx0 ctx) rest;
      (match g.C.gx_refold with
      | Some refold when rest <> [] -> refold ctx0
      | _ -> ());
      g.C.gx_finalize ctx0)
    cp.C.cp_grouped

(* Run one fragment's body (already prepared) under the given mode.
   [ev] is the fragment's event record; raw mode leaves it empty.
   [chk] is the cooperative deadline/cancellation check: threaded into
   every chunk's context, so an expired deadline stops each domain at
   its next work-item boundary (the raised [Budget.Exceeded] is
   re-raised here after all chunks settle — no torn merges). *)
let exec_fragment ?chk st ev (f : frag) (body : compiled_stmt list) ~instrument
    ~jobs =
  let cp = C.compile st f body ~instrument in
  let work = f.extent * max 1 f.intent in
  (* chunk seams on execution-tile boundaries: zone summaries and tile
     kernels never straddle a seam, so tiled raw chunks merge exactly *)
  let align = Codegen.effective_tile_width st.Exec_state.opts in
  let intent = max 1 f.intent in
  (* grouped-fold fragments also snap chunk boundaries to the fold
     grain: below that, per-chunk accumulator merges outweigh the split *)
  let grain =
    if cp.C.cp_grouped = [] then 1
    else
      (Codegen.effective_fold_grain st.Exec_state.opts + intent - 1) / intent
  in
  let chunks =
    if jobs <= 1 || cp.C.cp_single_chunk || work < min_parallel_elements then
      Chunk.split ~align ~extent:f.extent ~intent ~jobs:1 ()
    else Chunk.split ~align ~grain ~extent:f.extent ~intent ~jobs ()
  in
  let info =
    {
      pi_fold_fused = List.length cp.C.cp_grouped;
      pi_fold_chunks =
        (if cp.C.cp_grouped = [] then 0 else List.length chunks);
    }
  in
  match chunks with
  | [] -> no_par_info
  | [ c ] ->
      (* sequential: record straight into the fragment's events *)
      let ctx = C.make_ctx ?chk ~ev () in
      cp.C.cp_run ctx ~w_lo:c.Chunk.w_lo ~w_hi:c.Chunk.w_hi;
      grouped_epilogue cp ctx [];
      C.apply_sup st ctx.C.sup;
      if instrument then
        List.iter (fun cs -> Exec_state.record_deferred st ev ~pos:ctx.C.pos cs)
          body;
      info
  | chunks ->
      let pool = Domain_pool.shared ~workers:(max 1 (jobs - 1)) in
      let tagged =
        List.map
          (fun (ch : Chunk.t) ->
            let ctx = C.make_ctx ?chk ~ev:(Events.create ~chunked:true ()) () in
            List.iter
              (fun (si : C.scatter_info) ->
                Hashtbl.replace ctx.C.regions si.C.sc_id (C.make_region si))
              cp.C.cp_scatters;
            (ch, ctx))
          chunks
      in
      let run (ch, ctx) = cp.C.cp_run ctx ~w_lo:ch.Chunk.w_lo ~w_hi:ch.Chunk.w_hi in
      let first, rest =
        match tagged with t :: r -> (t, r) | [] -> assert false
      in
      (* submit the tail before running chunk 0 inline; a pool that
         cannot take a job just runs it here (still deterministic: the
         chunks are independent and merged by index) *)
      let pending =
        List.map
          (fun t ->
            match Domain_pool.submit pool (fun () -> run t) with
            | Ok fut -> fun () -> Domain_pool.await fut
            | Error (`Queue_full | `Shutting_down) ->
                let r = try Ok (run t) with e -> Error e in
                fun () -> r)
          rest
      in
      let r0 = try Ok (run first) with e -> Error e in
      let results = r0 :: List.map (fun wait -> wait ()) pending in
      (match
         List.find_opt (function Error _ -> true | Ok () -> false) results
       with
      | Some (Error e) -> raise e
      | _ -> ());
      (* grouped-fold epilogue first: combine partials into chunk 0's
         context (chunk order), so its suppression delta joins the sup
         merge below *)
      (match tagged with
      | (_, ctx0) :: rest ->
          grouped_epilogue cp ctx0 (List.map snd rest)
      | [] -> ());
      (* merge chunk-local observations, in chunk order *)
      let master_pos = Hashtbl.create 8 in
      let sup_total = Hashtbl.create 4 in
      List.iter
        (fun ((_ : Chunk.t), (ctx : C.ctx)) ->
          if instrument then begin
            Events.merge_ordered ~into:ev ctx.C.ev;
            List.iter
              (fun (key, ps) ->
                Exec_state.merge_pos ~into:(Exec_state.stats_in master_pos key) ps)
              (List.sort compare
                 (Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.C.pos []))
          end;
          Hashtbl.iter
            (fun id d ->
              Hashtbl.replace sup_total id
                (Option.value (Hashtbl.find_opt sup_total id) ~default:0 + d))
            ctx.C.sup;
          List.iter
            (fun (si : C.scatter_info) ->
              C.merge_region si (Hashtbl.find ctx.C.regions si.C.sc_id))
            cp.C.cp_scatters)
        tagged;
      C.apply_sup st sup_total;
      if instrument then
        List.iter
          (fun cs -> Exec_state.record_deferred st ev ~pos:master_pos cs)
          body;
      info
