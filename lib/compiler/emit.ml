(** OpenCL C source emission.

    Renders each fragment of a compiled plan as one fully inlined,
    function-call-free OpenCL kernel, in the style the paper's backend
    generates: the extent becomes the global work size, the intent a
    sequential loop per work item, register-class intermediates become
    scalars, folds become accumulators, control vectors appear only as
    index arithmetic, and suppressed fold outputs index by run rather than
    by element.

    This renderer is the inspectable artifact of the compilation decisions
    (fusion, virtualization, suppression); the executable semantics live in
    {!Exec}. *)

open Voodoo_vector
open Voodoo_core
open Fragment

let buf_name id (kp : Keypath.t) =
  match kp with [] -> id | _ -> id ^ "_" ^ String.concat "_" kp

let _ctype : Scalar.dtype -> string = function Int -> "int" | Float -> "float"

type ectx = {
  plan : plan;
  buf : Buffer.t;
  mutable params : (string * string) list;  (** (ctype, name), reverse order *)
  exprs : (Op.id * Keypath.t, string) Hashtbl.t;
      (** register-class values as C expressions *)
  aliases : (Op.id * Keypath.t, Op.id * Keypath.t) Hashtbl.t;
  storage : (Op.id, storage) Hashtbl.t;
  meta : (Op.id, Meta.info) Hashtbl.t;
}

let line ctx fmt = Printf.ksprintf (fun s -> Buffer.add_string ctx.buf (s ^ "\n")) fmt

let add_param ctx ty name =
  if not (List.mem (ty, name) ctx.params) then ctx.params <- (ty, name) :: ctx.params

let storage_of ctx id =
  Option.value (Hashtbl.find_opt ctx.storage id) ~default:Global

(* Follow structural aliases through the program, as the executor does:
   zips/projects/upserts and virtualized scatters forward to the buffers
   that actually back them. *)
let rec resolve ctx (id : Op.id) (kp : Keypath.t) : Op.id * Keypath.t =
  match Hashtbl.find_opt ctx.aliases (id, kp) with
  | Some (id', kp') -> resolve ctx id' kp'
  | None -> (
      match Program.find ctx.plan.program id with
      | Some { op = Zip { out1; src1; out2; src2 }; _ } ->
          if Keypath.is_prefix out1 kp then
            resolve ctx src1.v (Keypath.append src1.kp (Keypath.strip out1 kp))
          else if Keypath.is_prefix out2 kp then
            resolve ctx src2.v (Keypath.append src2.kp (Keypath.strip out2 kp))
          else (id, kp)
      | Some { op = Project { out; src }; _ } ->
          if Keypath.is_prefix out kp then
            resolve ctx src.v (Keypath.append src.kp (Keypath.strip out kp))
          else (id, kp)
      | Some { op = Upsert { target; out; src }; _ } ->
          if Keypath.equal out kp then resolve ctx src.v src.kp
          else resolve ctx target kp
      | Some { op = Scatter { data; _ }; _ }
        when storage_of ctx id = Virtual ->
          resolve ctx data kp
      | _ -> (id, kp))

(* The single leaf below (id, kp), consulting the schema via metadata when
   the keypath is a defaulted root. *)
let leaf_of ctx id kp =
  match Hashtbl.find_opt ctx.exprs (id, kp) with
  | Some _ -> kp
  | None -> (
      let i = Hashtbl.find_opt ctx.meta id in
      match i with
      | Some { ctrls = [ (k, _) ]; _ } when kp = [] -> k
      | Some { const = [ (k, _) ]; _ } when kp = [] -> k
      | _ -> kp)

(* C expression for reading attribute [kp] of vector [id] at index [idx]. *)
let read ctx (id : Op.id) (kp : Keypath.t) ~idx : string =
  let id, kp = resolve ctx id (leaf_of ctx id kp) in
  match Hashtbl.find_opt ctx.exprs (id, kp) with
  | Some e -> e
  | None -> (
      let i = Hashtbl.find_opt ctx.meta id in
      let ctrl = Option.bind i (fun i -> Meta.ctrl_of i kp) in
      let ctrl =
        match ctrl, i with
        | Some c, _ -> Some c
        | None, Some { Meta.ctrls = [ (_, c) ]; _ } when kp = [] -> Some c
        | _ -> None
      in
      let const =
        match Option.bind i (fun i -> Meta.const_of i kp), i with
        | Some c, _ -> Some c
        | None, Some { Meta.const = [ (_, c) ]; _ } when kp = [] -> Some c
        | _ -> None
      in
      match ctrl, const with
      | _, Some (Scalar.I v) -> string_of_int v
      | _, Some (Scalar.F v) -> Printf.sprintf "%gf" v
      | Some c, _ ->
          (* a control vector: pure index arithmetic, never materialized *)
          let base =
            if c.den = 1 then Printf.sprintf "(%d + (int)%s * %d)" c.from idx c.num
            else Printf.sprintf "(%d + (int)%s * %d / %d)" c.from idx c.num c.den
          in
          (match c.cap with
          | None -> base
          | Some cap -> Printf.sprintf "(%s %% %d)" base cap)
      | None, None ->
          let name = buf_name id kp in
          add_param ctx "__global const int*" name;
          Printf.sprintf "%s[%s]" name idx)

let binop_c : Op.binop -> string = function
  | Add -> "+"
  | Subtract -> "-"
  | Multiply -> "*"
  | Divide -> "/"
  | Modulo -> "%"
  | BitShift -> "<<"
  | LogicalAnd -> "&&"
  | LogicalOr -> "||"
  | Greater -> ">"
  | GreaterEqual -> ">="
  | Equals -> "=="

let emit_stmt ctx (_f : frag) (cs : compiled_stmt) =
  let s = cs.stmt in
  let idx = "i" in
  match s.op with
  | Load _ | Constant _ | Range _ | Persist _ -> ()
  | Zip { out1; src1; out2; src2 } ->
      Hashtbl.replace ctx.aliases (s.id, out1) (src1.v, src1.kp);
      Hashtbl.replace ctx.aliases (s.id, out2) (src2.v, src2.kp)
  | Project { out; src } -> Hashtbl.replace ctx.aliases (s.id, out) (src.v, src.kp)
  | Upsert { target; out; src } ->
      Hashtbl.replace ctx.aliases (s.id, out) (src.v, src.kp);
      Hashtbl.replace ctx.aliases (s.id, []) (target, [])
  | Binary { op; out; left; right } -> (
      let l = read ctx left.v left.kp ~idx and r = read ctx right.v right.kp ~idx in
      let e = Printf.sprintf "(%s %s %s)" l (binop_c op) r in
      match storage_of ctx s.id with
      | Virtual -> ()
      | Register ->
          line ctx "    int %s = %s;" (buf_name s.id out) e;
          Hashtbl.replace ctx.exprs (s.id, out) (buf_name s.id out)
      | Global | Local _ ->
          let name = buf_name s.id out in
          add_param ctx "__global int*" name;
          line ctx "    %s[i] = %s;" name e;
          Hashtbl.replace ctx.exprs (s.id, out) (Printf.sprintf "%s[i]" name))
  | Gather { data; positions } ->
      let p = read ctx positions.v positions.kp ~idx in
      let id, _ = resolve ctx data [] in
      let src = buf_name id [] in
      add_param ctx "__global const int*" src;
      let name = buf_name s.id [] in
      line ctx "    int %s = %s[%s];" name src p;
      Hashtbl.replace ctx.exprs (s.id, []) name
  | Scatter { data; positions; _ } ->
      if storage_of ctx s.id = Virtual then
        Hashtbl.replace ctx.aliases (s.id, []) (data, [])
      else begin
        let p = read ctx positions.v positions.kp ~idx in
        let v = read ctx data [] ~idx in
        let name = buf_name s.id [] in
        add_param ctx "__global int*" name;
        line ctx "    %s[%s] = %s; /* ordered within runs */" name p v
      end
  | Materialize { data; _ } | Break { data; _ } ->
      let v = read ctx data [] ~idx in
      let name = buf_name s.id [] in
      add_param ctx "__global int*" name;
      line ctx "    %s[i] = %s; /* pipeline breaker */" name v;
      Hashtbl.replace ctx.exprs (s.id, []) (Printf.sprintf "%s[i]" name)
  | Partition { values; _ } ->
      let v = read ctx values.v values.kp ~idx in
      line ctx "    /* two-pass partition of %s: histogram + prefix + emit */" v
  | Cross _ -> line ctx "    /* cross-product position generator */"
  | FoldSelect { input; _ } ->
      let v = read ctx input.v input.kp ~idx in
      let name = buf_name s.id [] in
      add_param ctx "__global int*" name;
      line ctx "    if (%s) { %s[cursor_%s++] = i; }" v name s.id
  | FoldAgg { agg; input; _ } -> (
      let v = read ctx input.v input.kp ~idx in
      let acc = "acc_" ^ s.id in
      (match (agg : Op.agg) with
      | Sum -> line ctx "    %s += %s;" acc v
      | Count -> line ctx "    %s += 1;" acc
      | Max -> line ctx "    %s = max(%s, %s);" acc acc v
      | Min -> line ctx "    %s = min(%s, %s);" acc acc v);
      match cs.grouped_fold with
      | Some g ->
          line ctx "    /* virtual scatter: %s accumulated per partition of %s */"
            s.id g.source
      | None -> ())
  | FoldScan { input; _ } ->
      let v = read ctx input.v input.kp ~idx in
      let name = buf_name s.id [] in
      add_param ctx "__global int*" name;
      line ctx "    acc_%s += %s;" s.id v;
      line ctx "    %s[i] = acc_%s;" name s.id

let fold_prologue ctx (cs : compiled_stmt) =
  match cs.stmt.op with
  | FoldAgg { agg; _ } ->
      let init =
        match (agg : Op.agg) with Sum | Count -> "0" | Max -> "INT_MIN" | Min -> "INT_MAX"
      in
      line ctx "  int acc_%s = %s;" cs.stmt.id init
  | FoldScan _ -> line ctx "  int acc_%s = 0;" cs.stmt.id
  | FoldSelect _ -> line ctx "  size_t cursor_%s = run_start;" cs.stmt.id
  | _ -> ()

let fold_epilogue ctx (cs : compiled_stmt) =
  match cs.stmt.op with
  | FoldAgg _ when cs.grouped_fold = None -> (
      let name = buf_name cs.stmt.id [] in
      add_param ctx "__global int*" name;
      match storage_of ctx cs.stmt.id with
      | Global ->
          line ctx "  %s[gid] = acc_%s; /* empty slots suppressed: dense by run */"
            name cs.stmt.id
      | _ -> line ctx "  %s[run_start] = acc_%s;" name cs.stmt.id)
  | _ -> ()

let emit_fragment ctx (f : frag) =
  let body_buf = Buffer.create 256 in
  let saved = Buffer.contents ctx.buf in
  Buffer.clear ctx.buf;
  ctx.params <- [];
  let body = stmts_in_order f in
  List.iter (fold_prologue ctx) body;
  line ctx "  for (size_t j = 0; j < %d; ++j) {" f.intent;
  line ctx "    size_t i = run_start + j;";
  line ctx "    if (i >= %d) break;" f.domain;
  List.iter (emit_stmt ctx f) body;
  line ctx "  }";
  List.iter (fold_epilogue ctx) body;
  Buffer.add_string body_buf (Buffer.contents ctx.buf);
  Buffer.clear ctx.buf;
  Buffer.add_string ctx.buf saved;
  let params =
    List.rev ctx.params
    |> List.map (fun (ty, name) -> Printf.sprintf "%s %s" ty name)
    |> String.concat ", "
  in
  line ctx "/* fragment %d: extent=%d (global work size), intent=%d */" f.index
    f.extent f.intent;
  line ctx "__kernel void fragment_%d(%s) {" f.index params;
  line ctx "  size_t gid = get_global_id(0);";
  line ctx "  size_t run_start = gid * %d;" f.intent;
  Buffer.add_string ctx.buf (Buffer.contents body_buf);
  line ctx "}";
  line ctx ""

(** [source plan] renders the whole plan as OpenCL C. *)
let source (plan : plan) : string =
  let storage = Hashtbl.create 16 in
  List.iter
    (fun f ->
      List.iter
        (fun (cs : compiled_stmt) -> Hashtbl.replace storage cs.stmt.id cs.storage)
        (stmts_in_order f))
    plan.frags;
  (* statements outside every fragment are loads or virtual *)
  List.iter
    (fun (s : Program.stmt) ->
      if not (Hashtbl.mem storage s.id) then
        Hashtbl.replace storage s.id
          (match s.op with Load _ -> Global | _ -> Virtual))
    (Program.stmts plan.program);
  let meta = Hashtbl.create 16 in
  List.iter (fun (id, i) -> Hashtbl.replace meta id i) plan.meta;
  let ctx =
    {
      plan;
      buf = Buffer.create 1024;
      params = [];
      exprs = Hashtbl.create 16;
      aliases = Hashtbl.create 16;
      storage;
      meta;
    }
  in
  line ctx "/* generated by the Voodoo OpenCL backend */";
  line ctx "";
  (* process non-fragment structural statements for aliasing *)
  List.iter
    (fun (s : Program.stmt) ->
      match s.op with
      | Zip { out1; src1; out2; src2 } when not (Hashtbl.mem storage s.id) ->
          Hashtbl.replace ctx.aliases (s.id, out1) (src1.v, src1.kp);
          Hashtbl.replace ctx.aliases (s.id, out2) (src2.v, src2.kp)
      | _ -> ())
    (Program.stmts plan.program);
  List.iter (emit_fragment ctx) plan.frags;
  Buffer.contents ctx.buf
