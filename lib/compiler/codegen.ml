(** Voodoo → fragment/kernel code generation (paper Section 3.1).

    The compiler traverses the (already optimized) program in dependency
    order, appending each statement to a compatible open fragment or
    opening a new one, exactly as the paper describes:

    - data-parallel, maintenance and shape operators fuse freely into a
      fragment over the same element domain;
    - control vectors and compile-time constants are {e virtual}: they are
      never computed, only their {!Voodoo_vector.Ctrl} metadata is kept;
    - a controlled fold derives its run length from its control attribute's
      metadata.  Runs of length 1 are fully data-parallel; a single run is
      fully sequential; uniform runs of length L give a fragment of extent
      ⌈n/L⌉ and intent L.  Folds of different run lengths cannot share a
      fragment (a global barrier — a kernel boundary — separates them);
    - [Break] and [Materialize] close their fragment (pipeline breakers);
    - a [Scatter] whose positions are the identity (a [Partition] of an
      already-run-ordered control attribute, as in Figure 3) is virtual;
    - with {!options.virtual_scatter}, a [Partition]→[Scatter]→[FoldAgg]
      chain over data values is fused into a direct grouped aggregation
      that never materializes the scattered vector (Figures 10 and 11). *)

open Voodoo_vector
open Voodoo_core
open Fragment

(* How Exec.run drives the plan: the reference per-work-item tree walk,
   or closures compiled once per fragment (optionally skipping device
   simulation, optionally chunking the extent over [jobs] domains). *)
type exec_mode =
  | Tree_walk
  | Closure of { instrument : bool; jobs : int }

type options = {
  fuse : bool;  (** operator fusion into fragments; off = bulk processing *)
  virtual_scatter : bool;
  suppress_empty_slots : bool;
  exec : exec_mode;  (** execution strategy; plan shape is unaffected *)
  tile_width : int;
      (** slots per execution tile in the raw closure path (rounded to a
          multiple of 64, minimum 64); also the zone-map granularity *)
  zone_maps : bool;
      (** maintain and consult per-tile min/max summaries to skip tiles *)
  fold_grain : int;
      (** radix-partition grain: minimum elements a parallel fold chunk
          owns before per-chunk partial accumulators pay for their merge
          (paper §5.3's partition-size tunable) *)
  partition_fuse : bool;
      (** fuse [Partition]→[Scatter]→[FoldAgg] chains into direct grouped
          aggregation (Figures 10/11); off = materialize the scattered
          vector and fold over its runs (§5.3's fusion tunable) *)
  nprobe : int;
      (** IVF coarse-index probe count consulted by the vector-similarity
          probe scheduler ([Voodoo_vsim]), not by the executor: how many
          centroid partitions a similarity search scans.  Rides the
          options record so plan-cache keys and the tuner's
          (program, options) search cover it. *)
}

let default_options =
  {
    fuse = true;
    virtual_scatter = true;
    suppress_empty_slots = true;
    exec = Closure { instrument = true; jobs = 1 };
    tile_width = 1024;
    zone_maps = true;
    fold_grain = 16384;
    partition_fuse = true;
    nprobe = 8;
  }

(** The tile width actually used: [tile_width] clamped to a multiple of
    64 no smaller than 64, so tiles cover whole validity-mask bytes (and
    whole 64-slot mask words). *)
let effective_tile_width o = max 64 (o.tile_width / 64 * 64)

(** The parallel-fold grain actually used: at least one element. *)
let effective_fold_grain o = max 1 o.fold_grain

(* compilation decisions are logged under this source (enable with
   [Logs.Src.set_level src (Some Debug)] or the CLI's [--verbose]) *)
let log_src = Logs.Src.create "voodoo.codegen" ~doc:"Voodoo fragment assignment"

module Log = (val Logs.src_log log_src)

type builder = {
  opts : options;
  meta : (Op.id, Meta.info) Hashtbl.t;
  program : Program.t;
  consumers : (Op.id, Program.stmt list) Hashtbl.t;
  frag_of : (Op.id, int) Hashtbl.t;  (** fragment index of computational stmts *)
  compiled : (Op.id, compiled_stmt) Hashtbl.t;
  mutable frags : frag list;  (** reverse order *)
  mutable closed : (int, unit) Hashtbl.t;
}

let info b id =
  match Hashtbl.find_opt b.meta id with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Codegen: no metadata for %s" id)

let consumers_of b id = Option.value (Hashtbl.find_opt b.consumers id) ~default:[]

(* --- virtual statements: control vectors and constants --- *)

(* A statement is virtual when every attribute it produces has a known
   closed form (control metadata or compile-time constant). *)
let is_virtual b (s : Program.stmt) =
  match s.op with
  | Constant _ -> true
  | Range _ -> true
  | Binary { out; _ } ->
      let i = info b s.id in
      Meta.ctrl_of i out <> None || Meta.const_of i out <> None
  | _ -> false

(* Partition of a control attribute whose runs are already contiguous and
   ordered: the resulting positions are the identity permutation. *)
let _partition_is_identity b (values : Op.src) =
  let i = info b values.v in
  let kp = if values.kp = [] then [] else values.kp in
  let ctrl =
    match Meta.ctrl_of i kp with
    | Some c -> Some c
    | None -> (
        (* resolve the root reference against tracked attributes *)
        match i.ctrls with [ (_, c) ] when kp = [] -> Some c | _ -> None)
  in
  match ctrl with
  | Some c -> (
      c.num >= 0
      &&
      match Ctrl.runs c ~n:i.length with
      | Single_run | Uniform _ -> c.cap = None
      | Irregular -> false)
  | None -> false

(* --- fold run lengths --- *)

(* Run length of a fold's control attribute over its input, from metadata:
   None when irregular (backend must scan for boundaries sequentially). *)
let fold_runlen b (input_v : Op.id) (fold : Keypath.t option) : int option =
  let i = info b input_v in
  let n = i.length in
  match fold with
  | None -> Some (max n 1)
  | Some kp -> (
      let ctrl =
        match Meta.ctrl_of i kp with
        | Some c -> Some c
        | None -> ( match i.ctrls with [ (_, c) ] when kp = [] -> Some c | _ -> None)
      in
      match ctrl with
      | None -> None
      | Some c -> (
          match Ctrl.runs c ~n with
          | Single_run -> Some (max n 1)
          | Uniform l -> Some l
          | Irregular -> None))

(* --- fragment management --- *)

let new_frag b ~domain ~runlen =
  let index = List.length b.frags in
  let f =
    {
      index;
      domain;
      extent = 1;
      intent = 1;
      fold_runlen = runlen;
      barrier = false;
      body = [];
    }
  in
  b.frags <- f :: b.frags;
  f

let frag_by_index b i = List.find (fun f -> f.index = i) b.frags

let is_open b (f : frag) = not (Hashtbl.mem b.closed f.index)

let close b (f : frag) = Hashtbl.replace b.closed f.index ()

(* The fragment that produced [id], if it is a computational statement. *)
let producer_frag b id = Hashtbl.find_opt b.frag_of id

(* Computational statements backing [id], looking through structural
   aliases (zip/project/upsert) and virtualized scatters. *)
let rec underlying b id =
  let virtual_scatter id =
    match Hashtbl.find_opt b.compiled id with
    | Some { storage = Virtual; stmt = { op = Scatter _; _ }; _ } -> true
    | _ -> false
  in
  match Program.find b.program id with
  | Some { op = Zip { src1; src2; _ }; _ } -> underlying b src1.v @ underlying b src2.v
  | Some { op = Project { src; _ }; _ } -> underlying b src.v
  | Some { op = Upsert { target; src; _ }; _ } ->
      underlying b target @ underlying b src.v
  | Some { op = Scatter { data; _ }; _ } when virtual_scatter id -> underlying b data
  | _ -> [ id ]

(* Pick the fragment for a statement over [domain] elements whose
   computational producers live in [producer_ids]; [runlen] is [Some l] for
   folds. Returns the fragment (possibly new). *)
let assign ?(grouped = false) b ~domain ~runlen_req producer_ids =
  let producer_ids = List.concat_map (underlying b) producer_ids in
  let producer_frags =
    List.filter_map (producer_frag b) producer_ids |> List.sort_uniq compare
  in
  let compatible f =
    b.opts.fuse && is_open b f && f.domain = domain
    && ((not f.barrier) || grouped)
    &&
    match runlen_req, f.fold_runlen with
    | None, _ -> true
    | Some _, None -> true
    | Some l, Some l' -> l = l'
  in
  let latest =
    match List.rev producer_frags with
    | i :: _ -> Some (frag_by_index b i)
    | [] ->
        (* all inputs are loads/virtuals: free to join the newest open
           compatible fragment (fusing e.g. the conjuncts of a predicate
           over several base columns into one kernel) *)
        List.find_opt compatible b.frags
  in
  match latest with
  | Some f when compatible f ->
      (match runlen_req, f.fold_runlen with
      | Some l, None -> f.fold_runlen <- Some l
      | _ -> ());
      f
  | _ -> new_frag b ~domain ~runlen:runlen_req

let append b (f : frag) (cs : compiled_stmt) =
  Log.debug (fun m ->
      m "%s -> fragment %d (domain=%d runlen=%s storage=%a)" cs.stmt.id f.index
        f.domain
        (match f.fold_runlen with Some l -> string_of_int l | None -> "?")
        pp_storage cs.storage);
  f.body <- cs :: f.body;
  Hashtbl.replace b.frag_of cs.stmt.id f.index;
  Hashtbl.replace b.compiled cs.stmt.id cs

(* --- grouped aggregation detection (virtual scatter) --- *)

(* Scatter(data, _, positions=Partition(values=group, pivots)) whose only
   consumers are FoldAggs folding on the scattered group attribute, with
   identity pivots (0..k-1) so group ids index accumulators directly. *)
let pivots_are_identity b (pivots : Op.src) =
  let i = info b pivots.v in
  match i.ctrls with
  | [ (_, c) ] -> c.from = 0 && c.num = 1 && c.den = 1 && c.cap = None
  | _ -> false

let detect_grouped_fold b (s : Program.stmt) =
  if not (b.opts.virtual_scatter && b.opts.partition_fuse) then None
  else
    match s.op with
    | Scatter { data; positions; _ } -> (
        match Program.find b.program positions.v with
        | Some { op = Partition { values; pivots; _ }; _ }
          when pivots_are_identity b pivots ->
            let group_count = (info b pivots.v).length + 1 in
            let consumers = consumers_of b s.id in
            let all_fold_aggs =
              consumers <> []
              && List.for_all
                   (fun (c : Program.stmt) ->
                     match c.op with
                     | FoldAgg { fold = Some _; _ } -> true
                     | _ -> false)
                   consumers
            in
            if all_fold_aggs then
              Some { source = data; group_src = values; value_src = values; group_count }
            else None
        | _ -> None)
    | _ -> None

(* --- main entry --- *)

let build ?(options = default_options) ~vector_length (p : Program.t) : plan =
  let meta_list = Meta.infer ~vector_length p in
  let meta = Hashtbl.create 32 in
  List.iter (fun (id, i) -> Hashtbl.replace meta id i) meta_list;
  let consumers = Hashtbl.create 32 in
  List.iter
    (fun (s : Program.stmt) ->
      List.iter
        (fun v ->
          let cur = Option.value (Hashtbl.find_opt consumers v) ~default:[] in
          Hashtbl.replace consumers v (cur @ [ s ]))
        (Op.inputs s.op))
    (Program.stmts p);
  let b =
    {
      opts = options;
      meta;
      program = p;
      consumers;
      frag_of = Hashtbl.create 32;
      compiled = Hashtbl.create 32;
      frags = [];
      closed = Hashtbl.create 8;
    }
  in
  let outputs = Program.outputs p in
  let is_output id =
    List.mem id outputs
    || List.exists
         (fun (c : Program.stmt) ->
           match c.op with Persist (_, v) -> v = id | _ -> false)
         (consumers_of b id)
  in
  (* --- pre-pass: identify virtual scatters and identity partitions --- *)
  let virtual_scatters : (Op.id, grouped_fold) Hashtbl.t = Hashtbl.create 4 in
  let identity_scatters : (Op.id, Op.id) Hashtbl.t = Hashtbl.create 4 in
  let virtual_partitions : (Op.id, unit) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (s : Program.stmt) ->
      match s.op with
      | Scatter { data; positions; _ } -> (
          match detect_grouped_fold b s with
          | Some g -> Hashtbl.replace virtual_scatters s.id g
          | None ->
              (* identity positions (e.g. a Partition of an already
                 run-ordered control attribute): scatter is a pure alias *)
              let pi = info b positions.v in
              let ctrl =
                match Meta.ctrl_of pi positions.kp, pi.ctrls with
                | Some c, _ -> Some c
                | None, [ (_, c) ] when positions.kp = [] -> Some c
                | None, _ -> None
              in
              (match ctrl with
              | Some c when c.from = 0 && c.num = 1 && c.den = 1 && c.cap = None
                -> Hashtbl.replace identity_scatters s.id data
              | _ -> ()))
      | _ -> ())
    (Program.stmts p);
  (* a partition whose positions feed only virtualized scatters is itself
     never computed *)
  List.iter
    (fun (s : Program.stmt) ->
      match s.op with
      | Partition _ ->
          let consumers = consumers_of b s.id in
          if
            consumers <> []
            && List.for_all
                 (fun (c : Program.stmt) ->
                   Hashtbl.mem virtual_scatters c.id
                   || Hashtbl.mem identity_scatters c.id)
                 consumers
          then Hashtbl.replace virtual_partitions s.id ()
      | _ -> ())
    (Program.stmts p);
  List.iter
    (fun (s : Program.stmt) ->
      let domain = (info b s.id).length in
      match s.op with
      | Load _ | Constant _ | Range _ ->
          Hashtbl.replace b.compiled s.id
            {
              stmt = s;
              storage = (match s.op with Load _ -> Global | _ -> Virtual);
              grouped_fold = None;
            }
      | _ when is_virtual b s ->
          Hashtbl.replace b.compiled s.id
            { stmt = s; storage = Virtual; grouped_fold = None }
      | Partition _ when Hashtbl.mem virtual_partitions s.id ->
          (* purely logical partitioning: identity or fused positions *)
          Hashtbl.replace b.compiled s.id
            { stmt = s; storage = Virtual; grouped_fold = None }
      | Scatter _
        when Hashtbl.mem identity_scatters s.id || Hashtbl.mem virtual_scatters s.id
        ->
          Hashtbl.replace b.compiled s.id
            { stmt = s; storage = Virtual; grouped_fold = None }
      | Zip _ | Project _ | Upsert _ ->
          (* structural: pure column aliasing, no computation, no fragment *)
          ignore domain;
          Hashtbl.replace b.compiled s.id
            { stmt = s; storage = Virtual; grouped_fold = None }
      | FoldAgg { fold; input; _ }
        when Hashtbl.mem virtual_scatters input.v ->
          (* grouped aggregation: direct accumulation over the un-scattered
             source, one accumulator per partition *)
          let g = Hashtbl.find virtual_scatters input.v in
          let g =
            {
              g with
              group_src =
                {
                  Op.v = g.source;
                  kp = (match fold with Some fkp -> fkp | None -> g.group_src.kp);
                };
              value_src = { Op.v = g.source; kp = input.kp };
            }
          in
          let src_domain = (info b g.source).length in
          let f =
            assign ~grouped:true b ~domain:src_domain ~runlen_req:None
              [ g.source ]
          in
          (* two grouped folds may share a kernel (one pass, several
             accumulator arrays) — but not when this one reads the other's
             output, which completes only at kernel end *)
          let reads_grouped_in_f =
            List.exists
              (fun pid ->
                match Hashtbl.find_opt b.compiled pid with
                | Some { grouped_fold = Some _; _ } ->
                    producer_frag b pid = Some f.index
                | _ -> false)
              (underlying b g.source)
          in
          let f =
            if reads_grouped_in_f then begin
              close b f;
              new_frag b ~domain:src_domain ~runlen:None
            end
            else f
          in
          f.barrier <- true;
          append b f { stmt = s; storage = Register; grouped_fold = Some g }
      | FoldSelect { fold; input; _ }
      | FoldAgg { fold; input; _ }
      | FoldScan { fold; input; _ } ->
          let runlen = fold_runlen b input.v fold in
          let n = (info b input.v).length in
          let runlen_req = Some (Option.value runlen ~default:(max n 1)) in
          let f =
            match runlen with
            | None ->
                (* irregular runs: sequential fragment scanning boundaries *)
                let f = new_frag b ~domain ~runlen:(Some (max n 1)) in
                f
            | Some _ -> assign b ~domain ~runlen_req [ input.v ]
          in
          append b f { stmt = s; storage = Register; grouped_fold = None }
      | Materialize { data; chunks } ->
          let f = assign b ~domain ~runlen_req:None [ data ] in
          let ws =
            match chunks with
            | None -> max_int
            | Some c -> (
                let ci = info b c.v in
                let chunk_len =
                  match Meta.ctrl_of ci (if c.kp = [] then [] else c.kp), ci.ctrls with
                  | Some ctrl, _ -> (
                      match Ctrl.runs ctrl ~n:domain with
                      | Uniform l -> l
                      | Single_run -> domain
                      | Irregular -> domain)
                  | None, [ (_, ctrl) ] when c.kp = [] -> (
                      match Ctrl.runs ctrl ~n:domain with
                      | Uniform l -> l
                      | Single_run | Irregular -> domain)
                  | None, _ -> domain
                in
                chunk_len * 8)
          in
          let storage = if ws = max_int then Global else Local ws in
          append b f { stmt = s; storage; grouped_fold = None };
          close b f
      | Break { data; _ } ->
          let f = assign b ~domain ~runlen_req:None [ data ] in
          append b f { stmt = s; storage = Global; grouped_fold = None };
          close b f
      | Scatter { data; positions; _ } ->
          let f = assign b ~domain:(info b data).length ~runlen_req:None
              [ data; positions.v ]
          in
          append b f { stmt = s; storage = Global; grouped_fold = None };
          close b f
      | Partition { values; _ } ->
          (* two-pass operator: histogram + prefix + emit; own fragment *)
          let f = new_frag b ~domain:(info b values.v).length ~runlen:None in
          append b f { stmt = s; storage = Global; grouped_fold = None };
          close b f
      | Persist (_, v) ->
          let f = assign b ~domain ~runlen_req:None [ v ] in
          append b f { stmt = s; storage = Register; grouped_fold = None }
      | Gather { data; positions } ->
          (* positions are read aligned and may fuse; the gathered data is
             read at arbitrary indices, so it must come from a completed
             (materialized) fragment — never from the fragment the gather
             itself joins *)
          let f = assign b ~domain ~runlen_req:None [ positions.v; data ] in
          let data_frags =
            List.filter_map (producer_frag b) (underlying b data)
          in
          let f =
            if List.mem f.index data_frags then begin
              close b f;
              new_frag b ~domain ~runlen:None
            end
            else f
          in
          append b f { stmt = s; storage = Register; grouped_fold = None }
      | Cross _ | Binary _ ->
          let f = assign b ~domain ~runlen_req:None (Op.inputs s.op) in
          append b f { stmt = s; storage = Register; grouped_fold = None })
    (Program.stmts p);
  (* finalize extents and storage *)
  let frags = List.rev b.frags in
  (* consumers seen through structural aliases (zip/project/upsert) and
     virtualized scatters: those forward reads to the underlying columns *)
  let rec effective_consumers id =
    List.concat_map
      (fun (c : Program.stmt) ->
        match c.op with
        | Zip _ | Project _ | Upsert _ -> effective_consumers c.id
        | Scatter _
          when Hashtbl.mem identity_scatters c.id
               || Hashtbl.mem virtual_scatters c.id ->
            effective_consumers c.id
        | _ -> [ c ])
      (consumers_of b id)
  in
  List.iter
    (fun f ->
      let runlen = Option.value f.fold_runlen ~default:1 in
      let runlen = max 1 runlen in
      f.extent <- max 1 ((f.domain + runlen - 1) / runlen);
      f.intent <- runlen;
      f.body <-
        List.map
          (fun (cs : compiled_stmt) ->
            match cs.storage with
            | Virtual | Global | Local _ -> cs
            | Register ->
                let escapes =
                  is_output cs.stmt.id
                  || List.exists
                       (fun (c : Program.stmt) ->
                         match producer_frag b c.id with
                         | Some fi -> fi <> f.index
                         | None -> false)
                       (effective_consumers cs.stmt.id)
                in
                let cs = if escapes then { cs with storage = Global } else cs in
                Hashtbl.replace b.compiled cs.stmt.id cs;
                cs)
          f.body)
    frags;
  {
    frags;
    meta = meta_list;
    program = p;
    outputs;
    identity_scatters =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) identity_scatters [];
  }
