(** The compiling backend, tied together: optimize → plan → execute/price.

    This is the public entry point mirroring the paper's OpenCL backend:
    [compile] turns a program into a plan (fragments/kernels), [run]
    executes it against a store, [cost] prices the recorded events on a
    device model, and [source] renders the OpenCL C. *)

open Voodoo_core
open Voodoo_device

type compiled = {
  plan : Fragment.plan;
  options : Codegen.options;
  store : Store.t;
  subst : (Op.id * Op.id) list;
      (** CSE renames: original statement name → surviving name *)
}

(** [compile ?options ?optimize ~store program] builds the kernel plan.
    [optimize] (default true) runs CSE, constant folding and DCE first. *)
let compile ?trace ?(options = Codegen.default_options) ?(optimize = true)
    ~store (p : Program.t) : compiled =
  Program.validate p;
  let p, subst =
    Trace.with_span trace "optimize" (fun () ->
        if optimize then Optimize.default_with_subst p else (p, []))
  in
  let vector_length name = Option.map Voodoo_vector.Svector.length (Store.find store name) in
  let plan =
    Trace.with_span trace "codegen" (fun () ->
        let plan = Codegen.build ~options ~vector_length p in
        Trace.count trace "fragments" (float_of_int (List.length plan.frags));
        Trace.count trace "statements"
          (float_of_int (List.length (Program.stmts plan.program)));
        plan)
  in
  { plan; options; store; subst }

(** Execute, returning vectors and per-kernel events.  Statements that CSE
    merged stay reachable under their original names.  [budget] caps the
    run's resources (see {!Exec.run}). *)
let run ?trace ?budget ?exec (c : compiled) : Exec.result =
  let r =
    Exec.run ?trace ~options:c.options ?budget ?exec ~store:c.store c.plan
  in
  List.iter
    (fun (orig, kept) ->
      match Hashtbl.find_opt r.env kept with
      | Some v when not (Hashtbl.mem r.env orig) -> Hashtbl.replace r.env orig v
      | _ -> ())
    c.subst;
  r

(** [eval c id] compiles-and-runs, returning one result vector. *)
let eval c id = Exec.output (run c) id

let cost (r : Exec.result) (d : Config.t) = Exec.cost r d

let source (c : compiled) = Emit.source c.plan

let pp_plan ppf (c : compiled) = Fragment.pp_plan ppf c.plan
