(** Tuning prepared relational plans (see the interface). *)

open Voodoo_relational
module Engine = Voodoo_engine.Engine
module Backend = Voodoo_compiler.Backend

let roots_of_lowered (l : Lower.lowered) =
  List.map snd l.Lower.keys
  @ Option.to_list l.Lower.group_id
  @ List.concat_map
      (fun (a : Lower.lowered_agg) ->
        a.Lower.vec :: Option.to_list a.Lower.count_vec)
      l.Lower.aggs

let tune_prepared ?trace ?objective ?budget_ms ?max_rounds ?top_k ?seed
    ?budget (cat : Catalog.t) (p : Engine.prepared) =
  let store = cat.Catalog.store in
  let roots = roots_of_lowered p.Engine.p_lowered in
  let report =
    Search.run ?trace ?objective ?budget_ms ?max_rounds ?top_k ?seed ?budget
      ~backend_opts:p.Engine.p_compiled.Backend.options ~store ~roots
      p.Engine.p_lowered.Lower.program
  in
  let tuned =
    if report.Search.best_rules = [] then p
    else
      let program = report.Search.best_program in
      (* an option rule may have won a round: the tuned program is only
         bit-identical under the options it was verified with *)
      let p_compiled =
        Backend.compile ~options:report.Search.best_options ~store program
      in
      {
        p with
        Engine.p_lowered = { p.Engine.p_lowered with Lower.program };
        p_compiled;
      }
  in
  (tuned, report)

let variant_digest (p : Engine.prepared) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (Voodoo_core.Program.stmts p.Engine.p_lowered.Lower.program)
          []))
