(** Hill-climbing search over the rewrite-rule catalog.

    Each round applies every applicable rule to the current program,
    prunes the neighbors on {!Voodoo_compiler.Explain}'s static cost
    estimates, then {e measures} the survivors by executing them — either
    pricing the deterministic simulated event counters on a device model
    (the default, making the whole search reproducible) or timing raw
    wall clock.  Every measured candidate's root vectors are compared
    bit-for-bit against the baseline run ({!Voodoo_vector.Svector.equal});
    candidates that differ — e.g. a float summation whose regrouping
    changed the last bits — are {e rejected}, so the selected variant is
    bit-identical to the untuned plan by construction.

    Candidate enumeration order is shuffled by a seeded deterministic
    generator: for a fixed seed (and the event-count objective) two runs
    produce the same candidates, scores and winner.  [budget_ms] is a
    hard wall-clock stop for the whole search; [budget] additionally caps
    each candidate execution's resources
    ({!Voodoo_core.Budget.Exceeded} fails just that candidate). *)

open Voodoo_core

type objective =
  | Cost_model of Voodoo_device.Config.t
      (** run instrumented, price {!Voodoo_device.Events} totals on the
          device model — deterministic *)
  | Wall_clock of { reps : int }  (** best-of-[reps] raw wall clock *)

type verdict =
  | Improved  (** measured, became the new incumbent *)
  | Measured  (** measured and verified, but no improvement *)
  | Pruned  (** dropped on the static estimate, never executed *)
  | Rejected  (** executed, but roots not bit-identical to baseline *)
  | Failed of string  (** compile or execution error *)

type candidate = {
  c_rules : string list;  (** rule chain from the baseline *)
  c_round : int;
  c_estimate_s : float;  (** static cost estimate (model seconds) *)
  c_score_s : float option;  (** measured objective, when executed *)
  c_verdict : verdict;
}

type report = {
  baseline_s : float;  (** measured objective of the untuned program *)
  best_s : float;
  best_rules : string list;  (** [] when the baseline won *)
  best_program : Program.t;
  best_options : Voodoo_compiler.Codegen.options;
      (** the incumbent's codegen options — differs from [backend_opts]
          when an option rule ({!Rules.opt_rule}) won a round; callers
          recompiling [best_program] must compile under these *)
  candidates : candidate list;  (** in examination order *)
  rounds : int;
  seed : int;
}

val speedup : report -> float

(** [run ~store program] tunes [program].  [roots] (default: the
    program's outputs) are the statements whose vectors must stay
    bit-identical; they are preserved through every rewrite and verified
    on every measurement.  [rules] defaults to {!Rules.catalog}[ ~store];
    [opt_rules] (default {!Rules.opt_catalog}) additionally searches
    codegen-option mutations — fold grain, Partition/Scatter fusion —
    of the incumbent program, deduplicated on (program, options) pairs.
    With a trace, the search runs under a ["tune"] span with one
    ["tune:candidate"] child per measurement. *)
val run :
  ?trace:Trace.t ->
  ?objective:objective ->
  ?budget_ms:float ->
  ?max_rounds:int ->
  ?top_k:int ->
  ?seed:int ->
  ?budget:Budget.t ->
  ?backend_opts:Voodoo_compiler.Codegen.options ->
  ?rules:Rules.t list ->
  ?opt_rules:Rules.opt_rule list ->
  ?roots:Op.id list ->
  store:Store.t ->
  Program.t ->
  report
