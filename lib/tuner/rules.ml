(** Rewrite rules over Voodoo programs (see the interface). *)

open Voodoo_vector
open Voodoo_core

type t = {
  name : string;
  descr : string;
  apply : Program.t -> Program.t option;
}

let grain_ladder = [ 1024; 4096; 8192; 16384; 65536 ]

(* ---------- program surgery helpers ---------- *)

let stmts = Program.stmts

let consumers p id =
  List.filter
    (fun (s : Program.stmt) -> List.mem id (Op.inputs s.op))
    (stmts p)

let replace_op p id op' =
  Program.of_stmts
    (List.map
       (fun (s : Program.stmt) ->
         if String.equal s.id id then { s with op = op' } else s)
       (stmts p))

(* Insert [news] immediately before statement [anchor]. *)
let insert_before p anchor news =
  Program.of_stmts
    (List.concat_map
       (fun (s : Program.stmt) ->
         if String.equal s.id anchor then news @ [ s ] else [ s ])
       (stmts p))

(* Insert one statement right after [anchor] and redirect every later
   reference to [anchor] through the new statement. *)
let insert_after_redirect p anchor (nid, nop) =
  let seen = ref false in
  Program.of_stmts
    (List.concat_map
       (fun (s : Program.stmt) ->
         if String.equal s.id anchor then begin
           seen := true;
           [ s; { Program.id = nid; op = nop } ]
         end
         else if !seen then
           [
             {
               s with
               Program.op =
                 Optimize.rename
                   (fun id -> if String.equal id anchor then nid else id)
                   s.op;
             };
           ]
         else [ s ])
       (stmts p))

(* Redirect every reference to [old] onto [target]; [old] becomes dead. *)
let redirect p old target =
  Program.of_stmts
    (List.map
       (fun (s : Program.stmt) ->
         if String.equal s.id old then s
         else
           {
             s with
             Program.op =
               Optimize.rename
                 (fun id -> if String.equal id old then target else id)
                 s.op;
           })
       (stmts p))

let fresh p base =
  let used = List.map (fun (s : Program.stmt) -> s.id) (stmts p) in
  let rec go i =
    let cand = Printf.sprintf "%s%d" base i in
    if List.mem cand used then go (i + 1) else cand
  in
  go 0

let op_of p id = Option.map (fun (s : Program.stmt) -> s.op) (Program.find p id)

(* Static lengths for broadcast checks; [None] when inference fails. *)
let lengths ~store p =
  match
    Meta.infer
      ~vector_length:(fun n -> Option.map Svector.length (Store.find store n))
      p
  with
  | infos -> Some (fun id -> Option.map (fun i -> i.Meta.length) (List.assoc_opt id infos))
  | exception _ -> None

let is_comparison = function
  | Some
      (Op.Binary
        {
          op =
            ( Op.Greater | Op.GreaterEqual | Op.Equals | Op.LogicalAnd
            | Op.LogicalOr );
          _;
        }) ->
      true
  | _ -> false

(* Does [id] resolve to a single-attribute vector?  Conservative. *)
let rec single_attr ~store p id =
  match op_of p id with
  | Some (Op.Load n) -> (
      match Store.find store n with
      | Some v -> List.length (Svector.keypaths v) = 1
      | None -> false)
  | Some
      ( Op.Binary _ | Op.Project _ | Op.Constant _ | Op.Range _ | Op.FoldAgg _
      | Op.FoldSelect _ | Op.FoldScan _ | Op.Partition _ ) ->
      true
  | Some (Op.Gather { data; _ })
  | Some (Op.Materialize { data; _ })
  | Some (Op.Break { data; _ })
  | Some (Op.Scatter { data; _ }) ->
      single_attr ~store p data
  | Some (Op.Persist (_, v)) -> single_attr ~store p v
  | Some (Op.Zip _ | Op.Cross _ | Op.Upsert _) | None -> false

(* ---------- the hierarchical controlled-fold pattern (Figure 3) ----------

     ids     = Range over the data          (from 0, step 1)
     g       = Constant (int grain)
     d       = Binary Divide (ids, g)
     z       = Zip (d -> fold attr, values -> value attr)
     partial = FoldAgg agg1 ~fold (z, value attr)
     total   = FoldAgg agg2 (partial, [])
*)

type hier = {
  h_g : Op.id;
  h_grain : int;
  h_d : Op.id;
  h_z : Op.id;
  h_value : Op.src;  (** the zip's value side *)
  h_partial : Op.id;
  h_agg1 : Op.agg;
  h_total : Op.id;
  h_agg2 : Op.agg;
  h_total_out : Keypath.t;
}

let agg_pair_ok = function
  | Op.Sum, Op.Sum | Op.Max, Op.Max | Op.Min, Op.Min | Op.Count, Op.Sum ->
      true
  | _ -> false

(* Match the chain hanging off divide statement [d]; the remaining
   requirements on the grain constant are checked by the caller. *)
let match_chain p (d : Program.stmt) =
  match d.op with
  | Op.Binary { op = Op.Divide; left; _ } -> (
      match op_of p left.Op.v with
      | Some (Op.Range { from = 0; step = 1; _ }) -> (
          match consumers p d.id with
          | [ { id = zid; op = Op.Zip { out1; src1; out2; src2 } } ] -> (
              let side =
                if
                  String.equal src1.Op.v d.id
                  && not (String.equal src2.Op.v d.id)
                then Some (out1, out2, src2)
                else if
                  String.equal src2.Op.v d.id
                  && not (String.equal src1.Op.v d.id)
                then Some (out2, out1, src1)
                else None
              in
              match side with
              | None -> None
              | Some (fold_out, value_out, value_src) -> (
                  match consumers p zid with
                  | [
                      {
                        id = pid;
                        op =
                          Op.FoldAgg { agg = agg1; fold = Some fkp; input; _ };
                      };
                    ]
                    when Keypath.equal fkp fold_out
                         && String.equal input.Op.v zid
                         && Keypath.equal input.Op.kp value_out -> (
                      match consumers p pid with
                      | [
                          {
                            id = total;
                            op =
                              Op.FoldAgg
                                {
                                  agg = agg2;
                                  fold = None;
                                  input = tin;
                                  out = total_out;
                                };
                          };
                        ]
                        when String.equal tin.Op.v pid
                             && agg_pair_ok (agg1, agg2) ->
                          Some
                            {
                              h_g = "";
                              h_grain = 0;
                              h_d = d.id;
                              h_z = zid;
                              h_value = value_src;
                              h_partial = pid;
                              h_agg1 = agg1;
                              h_total = total;
                              h_agg2 = agg2;
                              h_total_out = total_out;
                            }
                      | _ -> None)
                  | _ -> None))
          | _ -> None)
      | _ -> None)
  | _ -> None

(* All hierarchical patterns whose grain constant is used by divides
   only, each heading a valid chain.  [len] guards against broadcast:
   the zip's value side must have the same length as the divide. *)
let find_hiers ~store p =
  let len = lengths ~store p in
  let same_length a b =
    match len with
    | None -> false
    | Some l -> (
        match (l a, l b) with Some x, Some y -> x = y | _ -> false)
  in
  List.filter_map
    (fun (s : Program.stmt) ->
      match s.op with
      | Op.Constant { value = Scalar.I g; _ } when g > 0 -> (
          let uses = consumers p s.id in
          let chains =
            List.map
              (fun (u : Program.stmt) ->
                match u.op with
                | Op.Binary { op = Op.Divide; right; _ }
                  when String.equal right.Op.v s.id ->
                    match_chain p u
                | _ -> None)
              uses
          in
          if uses = [] || List.exists (fun c -> c = None) chains then None
          else
            match List.filter_map Fun.id chains with
            | h :: _ when same_length h.h_d h.h_value.Op.v ->
                Some { h with h_g = s.id; h_grain = g }
            | _ -> None)
      | _ -> None)
    (stmts p)

(* ---------- fold partitioning ---------- *)

let regrain n =
  {
    name = Printf.sprintf "regrain-%d" n;
    descr =
      Printf.sprintf
        "re-derive the controlled-fold partition grain to %d rows per run" n;
    apply =
      (fun p ->
        (* the store only guards broadcast, which a pure grain change
           cannot introduce; skip the length check here *)
        let candidates =
          List.filter_map
            (fun (s : Program.stmt) ->
              match s.op with
              | Op.Constant { value = Scalar.I g; out } when g > 0 && g <> n ->
                  let uses = consumers p s.id in
                  let ok =
                    uses <> []
                    && List.for_all
                         (fun (u : Program.stmt) ->
                           match u.op with
                           | Op.Binary { op = Op.Divide; right; _ }
                             when String.equal right.Op.v s.id ->
                               match_chain p u <> None
                           | _ -> false)
                         uses
                  in
                  if ok then Some (s.id, out) else None
              | _ -> None)
            (stmts p)
        in
        match candidates with
        | [] -> None
        | (g, out) :: _ ->
            Some (replace_op p g (Op.Constant { out; value = Scalar.I n })));
  }

let fuse_agg = function
  | Op.Sum, Op.Sum -> Op.Sum
  | Op.Max, Op.Max -> Op.Max
  | Op.Min, Op.Min -> Op.Min
  | Op.Count, Op.Sum -> Op.Count
  | _ -> invalid_arg "fuse_agg"

let fuse_folds_with ~store () =
  {
    name = "fuse-folds";
    descr = "collapse a hierarchical fold into one flat global fold";
    apply =
      (fun p ->
        match find_hiers ~store p with
        | [] -> None
        | h :: _ ->
            let agg = fuse_agg (h.h_agg1, h.h_agg2) in
            Some
              (replace_op p h.h_total
                 (Op.FoldAgg
                    {
                      agg;
                      out = h.h_total_out;
                      fold = None;
                      input = h.h_value;
                    })));
  }

let split_agg = function
  | Op.Sum -> (Op.Sum, Op.Sum)
  | Op.Max -> (Op.Max, Op.Max)
  | Op.Min -> (Op.Min, Op.Min)
  | Op.Count -> (Op.Count, Op.Sum)

let split_fold_with ~store n =
  {
    name = Printf.sprintf "split-fold-%d" n;
    descr =
      Printf.sprintf
        "partition a flat global fold into %d-row runs plus a total fold" n;
    apply =
      (fun p ->
        let len = lengths ~store p in
        let long_enough id =
          match len with
          | None -> false
          | Some l -> ( match l id with Some x -> x > n | None -> false)
        in
        let site =
          List.find_opt
            (fun (s : Program.stmt) ->
              match s.op with
              | Op.FoldAgg { fold = None; input; _ } ->
                  (* never un-fuse a partial: that just flaps *)
                  (match op_of p input.Op.v with
                  | Some (Op.FoldAgg { fold = Some _; _ }) -> false
                  | _ -> true)
                  && long_enough input.Op.v
              | _ -> false)
            (stmts p)
        in
        match site with
        | Some { id = total; op = Op.FoldAgg { agg; out; input; _ } } ->
            let agg1, agg2 = split_agg agg in
            let ids = fresh p "tune_ids" in
            let g = fresh p "tune_g" in
            let d = fresh p "tune_f" in
            let z = fresh p "tune_z" in
            let partial = fresh p "tune_partial" in
            let news =
              [
                {
                  Program.id = ids;
                  op =
                    Op.Range
                      {
                        out = [ "val" ];
                        from = 0;
                        size = Op.Of_vector input.Op.v;
                        step = 1;
                      };
                };
                {
                  Program.id = g;
                  op = Op.Constant { out = [ "val" ]; value = Scalar.I n };
                };
                {
                  Program.id = d;
                  op =
                    Op.Binary
                      {
                        op = Op.Divide;
                        out = [ "val" ];
                        left = { Op.v = ids; kp = [] };
                        right = { Op.v = g; kp = [] };
                      };
                };
                {
                  Program.id = z;
                  op =
                    Op.Zip
                      {
                        out1 = [ "f" ];
                        src1 = { Op.v = d; kp = [] };
                        out2 = [ "v" ];
                        src2 = input;
                      };
                };
                {
                  Program.id = partial;
                  op =
                    Op.FoldAgg
                      {
                        agg = agg1;
                        out = [ "val" ];
                        fold = Some [ "f" ];
                        input = { Op.v = z; kp = [ "v" ] };
                      };
                };
              ]
            in
            let p = insert_before p total news in
            Some
              (replace_op p total
                 (Op.FoldAgg
                    {
                      agg = agg2;
                      out;
                      fold = None;
                      input = { Op.v = partial; kp = [] };
                    }))
        | _ -> None);
  }

(* ---------- selection strategy ---------- *)

(* Is every consumer of [vals] a pure sum sink — a consumer whose final
   value only depends on the multiset sum of [vals]' slots per position
   range?  Covers: size-only [Range] uses, direct [FoldAgg Sum], and the
   Zip-into-controlled-Sum shape of {!hier_sum}. *)
let sum_sinks p vals =
  let sink (s : Program.stmt) =
    match s.op with
    | Op.Range { size = Op.Of_vector v; _ } -> String.equal v vals
    | Op.FoldAgg { agg = Op.Sum; input; _ } -> String.equal input.Op.v vals
    | Op.Zip { out1; src1; out2; src2 } ->
        let vals_side =
          if String.equal src1.Op.v vals && not (String.equal src2.Op.v vals)
          then Some out1
          else if
            String.equal src2.Op.v vals && not (String.equal src1.Op.v vals)
          then Some out2
          else None
        in
        (match vals_side with
        | None -> false
        | Some vkp ->
            consumers p s.id <> []
            && List.for_all
                 (fun (c : Program.stmt) ->
                   match c.op with
                   | Op.FoldAgg { agg = Op.Sum; fold = Some _; input; _ } ->
                       String.equal input.Op.v s.id
                       && Keypath.equal input.Op.kp vkp
                   | _ -> false)
                 (consumers p s.id))
    | _ -> false
  in
  let cs = consumers p vals in
  cs <> [] && List.for_all sink cs

(* Match a branching selection: [pos = FoldSelect (pred or zipped pred)]
   consumed only by [vals = Gather (data, pos)].  Returns
   (pos, vals, data, pred source). *)
let match_branching_selection ~store p =
  List.find_map
    (fun (s : Program.stmt) ->
      match s.op with
      | Op.FoldSelect { fold; input; _ } -> (
          let pred_src =
            match fold with
            | None -> Some input
            | Some fkp -> (
                match op_of p input.Op.v with
                | Some (Op.Zip { out1; src1; out2; src2 }) ->
                    if Keypath.equal out1 fkp && Keypath.equal out2 input.Op.kp
                    then Some src2
                    else if
                      Keypath.equal out2 fkp && Keypath.equal out1 input.Op.kp
                    then Some src1
                    else None
                | _ -> None)
          in
          match pred_src with
          | Some pred when is_comparison (op_of p pred.Op.v) -> (
              match consumers p s.id with
              | [
                  {
                    id = vals;
                    op = Op.Gather { data; positions };
                  };
                ]
                when String.equal positions.Op.v s.id
                     && single_attr ~store p data
                     && sum_sinks p vals -> (
                  let len = lengths ~store p in
                  match len with
                  | Some l
                    when l data <> None && l data = l pred.Op.v ->
                      Some (s.id, vals, data, pred)
                  | _ -> None)
              | _ -> None)
          | _ -> None)
      | _ -> None)
    (stmts p)

let predicate_selection ~store =
  {
    name = "predicate-selection";
    descr =
      "replace select-then-gather by branch-free predication (value × flag)";
    apply =
      (fun p ->
        match match_branching_selection ~store p with
        | None -> None
        | Some (_pos, vals, data, pred) ->
            Some
              (replace_op p vals
                 (Op.Binary
                    {
                      op = Op.Multiply;
                      out = [ "val" ];
                      left = { Op.v = data; kp = [] };
                      right = pred;
                    })));
  }

let select_then_gather ~store =
  {
    name = "select-then-gather";
    descr =
      "split a predicated sum into a position list plus a gathering loop";
    apply =
      (fun p ->
        let site =
          List.find_map
            (fun (s : Program.stmt) ->
              match s.op with
              | Op.Binary { op = Op.Multiply; left; right; _ } ->
                  let pick pred data =
                    if
                      is_comparison (op_of p pred.Op.v)
                      && (not (is_comparison (op_of p data.Op.v)))
                      && Keypath.equal data.Op.kp []
                      && single_attr ~store p data.Op.v
                      && sum_sinks p s.id
                    then
                      match lengths ~store p with
                      | Some l
                        when l data.Op.v <> None && l data.Op.v = l pred.Op.v
                        ->
                          Some (s.id, data.Op.v, pred)
                      | _ -> None
                    else None
                  in
                  (match pick right left with
                  | Some r -> Some r
                  | None -> pick left right)
              | _ -> None)
            (stmts p)
        in
        match site with
        | None -> None
        | Some (vp, data, pred) ->
            let pos = fresh p "tune_pos" in
            let p =
              insert_before p vp
                [
                  {
                    Program.id = pos;
                    op =
                      Op.FoldSelect
                        { out = [ "val" ]; fold = None; input = pred };
                  };
                ]
            in
            Some
              (replace_op p vp
                 (Op.Gather { data; positions = { Op.v = pos; kp = [] } })));
  }

let vectorize_predicate =
  {
    name = "vectorize-predicate";
    descr = "buffer the selection predicate in chunks before the position list";
    apply =
      (fun p ->
        let site =
          List.find_map
            (fun (s : Program.stmt) ->
              match s.op with
              | Op.FoldSelect { fold = Some fkp; input; _ } -> (
                  match op_of p input.Op.v with
                  | Some (Op.Zip { out1; src1; out2; src2 })
                    when Keypath.equal out1 fkp
                         && Keypath.equal out2 input.Op.kp
                         && is_comparison (op_of p src2.Op.v) ->
                      Some (input.Op.v, src1, src2)
                  | _ -> None)
              | _ -> None)
            (stmts p)
        in
        match site with
        | None -> None
        | Some (z, ctrl, pred) ->
            let chunked = fresh p "tune_chunked" in
            let p =
              insert_before p z
                [
                  {
                    Program.id = chunked;
                    op =
                      Op.Materialize
                        { data = pred.Op.v; chunks = Some ctrl };
                  };
                ]
            in
            (match op_of p z with
            | Some (Op.Zip zop) ->
                Some
                  (replace_op p z
                     (Op.Zip
                        {
                          zop with
                          src2 = { zop.src2 with Op.v = chunked };
                        }))
            | _ -> None));
  }

let scalarize_predicate =
  {
    name = "scalarize-predicate";
    descr = "drop a chunked predicate materialization";
    apply =
      (fun p ->
        List.find_map
          (fun (s : Program.stmt) ->
            match s.op with
            | Op.Materialize { data; chunks = Some _ }
              when consumers p s.id <> [] ->
                Some (redirect p s.id data)
            | _ -> None)
          (stmts p));
  }

(* ---------- pipeline shape ---------- *)

let fuse_pipeline =
  {
    name = "fuse-pipeline";
    descr = "remove a Break hint, fusing the producer into its consumers";
    apply =
      (fun p ->
        List.find_map
          (fun (s : Program.stmt) ->
            match s.op with
            | Op.Break { data; _ } when consumers p s.id <> [] ->
                Some (redirect p s.id data)
            | _ -> None)
          (stmts p));
  }

let break_pipeline =
  {
    name = "break-pipeline";
    descr = "insert a Break after a Gather, splitting the traversal loops";
    apply =
      (fun p ->
        let site =
          List.find_opt
            (fun (s : Program.stmt) ->
              match s.op with
              | Op.Gather _ ->
                  let cs = consumers p s.id in
                  cs <> []
                  && List.for_all
                       (fun (c : Program.stmt) ->
                         match c.op with Op.Break _ -> false | _ -> true)
                       cs
              | _ -> false)
            (stmts p)
        in
        match site with
        | None -> None
        | Some s ->
            let brk = fresh p "tune_break" in
            Some
              (insert_after_redirect p s.id
                 (brk, Op.Break { data = s.id; runs = None })));
  }

(* ---------- layout ---------- *)

let layout_transform ~store =
  {
    name = "layout-transform";
    descr = "materialize a multi-attribute vector row-major before a Gather";
    apply =
      (fun p ->
        let multi_attr id =
          match op_of p id with
          | Some (Op.Load n) -> (
              match Store.find store n with
              | Some v -> List.length (Svector.keypaths v) >= 2
              | None -> false)
          | _ -> false
        in
        let site =
          List.find_opt
            (fun (s : Program.stmt) ->
              match s.op with
              | Op.Gather { data; _ } -> multi_attr data
              | _ -> false)
            (stmts p)
        in
        match site with
        | Some { id = g; op = Op.Gather { data; positions } } ->
            let rw = fresh p "tune_rowwise" in
            let p =
              insert_before p g
                [
                  {
                    Program.id = rw;
                    op = Op.Materialize { data; chunks = None };
                  };
                ]
            in
            Some (replace_op p g (Op.Gather { data = rw; positions }))
        | _ -> None);
  }

let layout_direct =
  {
    name = "layout-direct";
    descr = "gather straight from the original layout, skipping a Materialize";
    apply =
      (fun p ->
        List.find_map
          (fun (s : Program.stmt) ->
            match s.op with
            | Op.Materialize { data; chunks = None } ->
                let cs = consumers p s.id in
                if
                  cs <> []
                  && List.for_all
                       (fun (c : Program.stmt) ->
                         match c.op with
                         | Op.Gather { data = d; _ } -> String.equal d s.id
                         | _ -> false)
                       cs
                then Some (redirect p s.id data)
                else None
            | _ -> None)
          (stmts p));
  }

(* ---------- the catalog ---------- *)

let fuse_folds ~store = fuse_folds_with ~store ()
let split_fold ~store n = split_fold_with ~store n

let catalog ~store =
  List.map regrain grain_ladder
  @ [ fuse_folds_with ~store () ]
  @ List.map (split_fold_with ~store) [ 4096; 16384 ]
  @ [
      predicate_selection ~store;
      select_then_gather ~store;
      vectorize_predicate;
      scalarize_predicate;
      fuse_pipeline;
      break_pipeline;
      layout_transform ~store;
      layout_direct;
    ]

(* ---------- codegen-option rules (Section 5.3 execution tunables) ---------- *)

module Codegen = Voodoo_compiler.Codegen

type opt_rule = {
  o_name : string;
  o_descr : string;
  o_apply : Codegen.options -> Program.t -> Codegen.options option;
}

(* Applicability anchor for both option rules: the program contains the
   radix chain — a Scatter over Partition positions consumed by a
   controlled FoldAgg.  Without that site neither the fold grain nor the
   Partition/Scatter fusion setting can change the plan. *)
let grouped_site p =
  List.exists
    (fun (s : Program.stmt) ->
      match s.op with
      | Op.Scatter { positions; _ } -> (
          match Program.find p positions.Op.v with
          | Some { op = Op.Partition _; _ } ->
              List.exists
                (fun (c : Program.stmt) ->
                  match c.op with
                  | Op.FoldAgg { fold = Some _; _ } ->
                      List.mem s.id (Op.inputs c.op)
                  | _ -> false)
                (stmts p)
          | _ -> false)
      | _ -> false)
    (stmts p)

let fold_grain_ladder = [ 4096; 16384; 65536; 262144 ]

let refold_grain n =
  {
    o_name = Printf.sprintf "fold-grain-%d" n;
    o_descr =
      Printf.sprintf
        "snap grouped-fold chunk boundaries to a %d-element grain" n;
    o_apply =
      (fun opts p ->
        if opts.Codegen.fold_grain <> n && grouped_site p then
          Some { opts with Codegen.fold_grain = n }
        else None);
  }

let toggle_partition_fuse =
  {
    o_name = "toggle-partition-fuse";
    o_descr =
      "flip Partition/Scatter fusion: virtual radix scatter vs materialized \
       group order";
    o_apply =
      (fun opts p ->
        if grouped_site p then
          Some { opts with Codegen.partition_fuse = not opts.Codegen.partition_fuse }
        else None);
  }

(* Applicability anchor for the tile-shape rules: the program has at
   least one statement the raw closure path compiles into tile loops —
   a fold, a gather/scatter, a materialization, or a Binary over
   something other than pure control/constant inputs.  A program of only
   Loads and virtual statements never opens a tile loop, so re-tiling it
   cannot change anything. *)
let tiled_site p =
  let non_virtual (a : Op.src) =
    match Program.find p a.Op.v with
    | Some { op = Op.Range _; _ } | Some { op = Op.Constant _; _ } -> false
    | _ -> true
  in
  List.exists
    (fun (s : Program.stmt) ->
      match s.op with
      | Op.FoldAgg _ | Op.FoldSelect _ | Op.FoldScan _ | Op.Gather _
      | Op.Scatter _ | Op.Materialize _ ->
          true
      | Op.Binary { left; right; _ } -> non_virtual left || non_virtual right
      | _ -> false)
    (stmts p)

(* Applicability anchor for the zone-map toggle: zones are consulted by
   selections (all-false/all-true tile skips), folds (all-ε skips) and
   gathers (in-bounds proofs for mask-free promotion).  A program with
   none of those sites never reads a zone. *)
let zoned_site p =
  List.exists
    (fun (s : Program.stmt) ->
      match s.op with
      | Op.FoldSelect _ | Op.FoldAgg _ | Op.FoldScan _ | Op.Gather _ -> true
      | _ -> false)
    (stmts p)

let tile_width_ladder = [ 256; 512; 1024; 4096 ]

let retile n =
  {
    o_name = Printf.sprintf "tile-width-%d" n;
    o_descr = Printf.sprintf "execute %d-slot tiles (zone-map granularity)" n;
    o_apply =
      (fun opts p ->
        if opts.Codegen.tile_width <> n && tiled_site p then
          Some { opts with Codegen.tile_width = n }
        else None);
  }

let toggle_zone_maps =
  {
    o_name = "toggle-zone-maps";
    o_descr =
      "flip per-tile zone maps: min/max tile skipping vs no summary upkeep";
    o_apply =
      (fun opts p ->
        if zoned_site p then
          Some { opts with Codegen.zone_maps = not opts.Codegen.zone_maps }
        else None);
  }

(* Applicability anchor for the IVF probe ladder: the vsim distance-fold
   signature — a Gather whose positions are a Modulo of a Range (the
   strided query replication [q[i mod dim]]).  Only similarity plans
   contain it, and only their probe scheduler reads [nprobe]. *)
let vsim_site p =
  List.exists
    (fun (s : Program.stmt) ->
      match s.op with
      | Op.Gather { positions; _ } -> (
          match Program.find p positions.Op.v with
          | Some { op = Op.Binary { op = Op.Modulo; left; _ }; _ } -> (
              match Program.find p left.Op.v with
              | Some { op = Op.Range _; _ } -> true
              | _ -> false)
          | _ -> false)
      | _ -> false)
    (stmts p)

let nprobe_ladder = [ 1; 2; 4; 8; 16; 32 ]

let reprobe n =
  {
    o_name = Printf.sprintf "nprobe-%d" n;
    o_descr = Printf.sprintf "scan %d IVF centroid partitions per query" n;
    o_apply =
      (fun opts p ->
        if opts.Codegen.nprobe <> n && vsim_site p then
          Some { opts with Codegen.nprobe = n }
        else None);
  }

let opt_catalog =
  List.map refold_grain fold_grain_ladder
  @ [ toggle_partition_fuse ]
  @ List.map retile tile_width_ladder
  @ [ toggle_zone_maps ]
  @ List.map reprobe nprobe_ladder
