(** Semantics-preserving rewrite rules over Voodoo programs — the tunables
    of paper Section 5.3, expressed as program transformations.

    Each rule carries an applicability predicate folded into [apply]: it
    returns [None] when the program contains no site the rule can rewrite,
    and [Some p'] with exactly one site rewritten otherwise (repeated
    application walks through further sites).  Rules never touch
    [Persist] effects and never change the values of the statements the
    caller declared as roots; interior statements they orphan are left for
    a caller-side {!Voodoo_core.Optimize.dce} pass.

    Exactness: every rule preserves results {e exactly} on integer data.
    On floating-point data the partition-count and fusion rules regroup
    additions, so results can differ in the last bits — the search layer
    ({!Search}) therefore re-verifies every candidate's root vectors
    against the baseline with {!Voodoo_vector.Svector.equal} and rejects
    any that are not bit-identical. *)

open Voodoo_core

type t = {
  name : string;  (** stable identifier, e.g. ["regrain-4096"] *)
  descr : string;
  apply : Program.t -> Program.t option;
}

(** The default grain ladder of the {!regrain} and {!split_fold} rules. *)
val grain_ladder : int list

(** [regrain n] re-derives the control vector of a hierarchical
    controlled-fold pattern (Figure 3: [Range] / constant grain /
    [Divide] / [Zip] / controlled [FoldAgg] / total [FoldAgg]) for a run
    length of [n] — the paper's partition-count tunable. *)
val regrain : int -> t

(** Collapse the hierarchical pattern into one flat global fold. *)
val fuse_folds : store:Store.t -> t

(** [split_fold ~store n] is the inverse of {!fuse_folds}: turn a flat
    global fold into the hierarchical pattern with run length [n]. *)
val split_fold : store:Store.t -> int -> t

(** Selection strategy: replace a branching [FoldSelect]+[Gather] pair
    whose only consumers are sum reductions by branch-free predication
    (value × flag), per Figures 1/15. *)
val predicate_selection : store:Store.t -> t

(** Inverse of {!predicate_selection}: split a predicated sum back into
    select-then-gather. *)
val select_then_gather : store:Store.t -> t

(** Buffer a selection predicate in cache-sized chunks before the
    position list ([Materialize] with a chunk control — X100-style
    vectorization). *)
val vectorize_predicate : t

(** Remove a chunked predicate materialization (inverse of
    {!vectorize_predicate}). *)
val scalarize_predicate : t

(** Remove a [Break] pipeline hint, fusing the producer into its
    consumers' loop. *)
val fuse_pipeline : t

(** Insert a [Break] after a [Gather], splitting the traversal into
    separate loops (Figure 14's "separate loops" shape). *)
val break_pipeline : t

(** Materialize a multi-attribute vector row-major before a [Gather]
    (Figure 14's layout transform). *)
val layout_transform : store:Store.t -> t

(** Remove an unchunked [Materialize] feeding [Gather]s — gather straight
    from the original layout (inverse of {!layout_transform}). *)
val layout_direct : t

(** The full catalog.  [store] supplies persistent-vector lengths and
    schemas for the applicability predicates ({!Voodoo_core.Meta.infer}
    length checks rule out [Zip]/[Binary] broadcast sites, where fusing
    runs would not be value-preserving). *)
val catalog : store:Store.t -> t list

(** {2 Codegen-option rules}

    Execution tunables searched alongside the program rewrites: instead
    of transforming the program, these mutate the
    {!Voodoo_compiler.Codegen.options} a candidate compiles under.  The
    same exactness contract applies — the search re-verifies every
    candidate's roots bit-for-bit, so an option whose engine path is not
    bit-identical is rejected, never silently selected. *)

type opt_rule = {
  o_name : string;  (** stable identifier, e.g. ["fold-grain-65536"] *)
  o_descr : string;
  o_apply : Voodoo_compiler.Codegen.options -> Program.t ->
    Voodoo_compiler.Codegen.options option;
      (** [None] when the program has no site the option can affect, or
          the option already holds the target value. *)
}

(** The {!refold_grain} ladder. *)
val fold_grain_ladder : int list

(** [refold_grain n] sets {!Voodoo_compiler.Codegen.options.fold_grain}
    to [n] — the radix-partition grain of the parallel grouped-fold
    path.  Applies only to programs with a Partition → Scatter →
    controlled-FoldAgg chain. *)
val refold_grain : int -> opt_rule

(** Flip {!Voodoo_compiler.Codegen.options.partition_fuse}: virtual radix
    scatter (accumulate straight from the source) vs a materialized
    group-order pass.  Same applicability anchor as {!refold_grain}. *)
val toggle_partition_fuse : opt_rule

(** The {!retile} ladder. *)
val tile_width_ladder : int list

(** [retile n] sets {!Voodoo_compiler.Codegen.options.tile_width} to [n]
    — the raw path's execution-tile and zone-map granularity.  Applies
    only to programs with at least one statement the closure path
    compiles into tile loops (a fold, gather, scatter, materialization,
    or a Binary over non-virtual inputs); result rows never change. *)
val retile : int -> opt_rule

(** Flip {!Voodoo_compiler.Codegen.options.zone_maps}: per-tile min/max
    skipping vs no summary upkeep.  Applies only to programs with a
    zone-consulting site (a selection, fold, or gather). *)
val toggle_zone_maps : opt_rule

(** The {!reprobe} ladder. *)
val nprobe_ladder : int list

(** [reprobe n] sets {!Voodoo_compiler.Codegen.options.nprobe} — how many
    IVF centroid partitions a vector-similarity search scans.  Applies
    only to programs carrying the vsim distance-fold signature (a Gather
    of the query through a [Modulo] of a [Range] — the strided
    [q[i mod dim]] replication).  Unlike every other option rule this
    one is {e not} result-preserving at the search layer: fewer probes
    trade recall for speed, so vsim searches over this ladder compare
    candidates against the exhaustive oracle's recall, not bit-equality
    (see [Voodoo_vsim.Ivf]). *)
val reprobe : int -> opt_rule

(** All option rules: the fold-grain ladder, the fusion toggle, the
    tile-width ladder, the zone-map toggle, and the nprobe ladder. *)
val opt_catalog : opt_rule list
