(** Tuning prepared relational plans.

    A lowered plan's result is read back through {!Voodoo_relational.Lower.fetch}
    from a fixed set of vectors (group keys, group ids, aggregates); those
    are the roots the search must preserve bit-for-bit.  [tune_prepared]
    runs {!Search.run} over the prepared plan's Voodoo program and, when a
    variant wins, recompiles it under the winning codegen options
    ({!Search.report.best_options} — option rules may have changed the
    fold grain or Partition/Scatter fusion) into a new
    {!Voodoo_engine.Engine.prepared} that is a drop-in replacement — same
    source plan, same fetch protocol, different kernels. *)

open Voodoo_relational
module Engine = Voodoo_engine.Engine

(** The statements {!Voodoo_relational.Lower.fetch} reads: key vectors,
    the dense group id, aggregate and companion-count vectors. *)
val roots_of_lowered : Lower.lowered -> Voodoo_core.Op.id list

(** [tune_prepared cat p] searches rewrites of [p]'s program; returns the
    tuned prepared plan ([p] itself when the baseline wins) and the full
    search report.  Parameters forward to {!Search.run}. *)
val tune_prepared :
  ?trace:Voodoo_core.Trace.t ->
  ?objective:Search.objective ->
  ?budget_ms:float ->
  ?max_rounds:int ->
  ?top_k:int ->
  ?seed:int ->
  ?budget:Voodoo_core.Budget.t ->
  Catalog.t ->
  Engine.prepared ->
  Engine.prepared * Search.report

(** Digest of a prepared plan's Voodoo program — the plan-cache variant
    key component distinguishing tuned from untuned plans. *)
val variant_digest : Engine.prepared -> string
