(** Hill-climbing search over the rewrite rules (see the interface). *)

open Voodoo_vector
open Voodoo_core
module Backend = Voodoo_compiler.Backend
module Codegen = Voodoo_compiler.Codegen
module Exec = Voodoo_compiler.Exec
module Explain = Voodoo_compiler.Explain
module Config = Voodoo_device.Config
module Cost = Voodoo_device.Cost

type objective = Cost_model of Config.t | Wall_clock of { reps : int }

type verdict = Improved | Measured | Pruned | Rejected | Failed of string

type candidate = {
  c_rules : string list;
  c_round : int;
  c_estimate_s : float;
  c_score_s : float option;
  c_verdict : verdict;
}

type report = {
  baseline_s : float;
  best_s : float;
  best_rules : string list;
  best_program : Program.t;
  best_options : Codegen.options;
  candidates : candidate list;
  rounds : int;
  seed : int;
}

let speedup r = if r.best_s > 0.0 then r.baseline_s /. r.best_s else 1.0

(* Candidate identity covers the codegen options too: an option rule
   leaves the program untouched, so the program digest alone would
   dedup it against the incumbent. *)
let digest p (opts : Codegen.options) =
  Digest.to_hex
    (Digest.string (Marshal.to_string (Program.stmts p, opts) []))

(* Seeded deterministic shuffle (multiplicative LCG sort keys): candidate
   order depends only on the seed, never on wall clock. *)
let shuffle seed l =
  let state = ref (((seed * 2654435761) + 104729) land max_int) in
  let next () =
    state := ((!state * 25214903917) + 11) land max_int;
    !state
  in
  List.map (fun x -> (next (), x)) l
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let estimate_device = Config.cpu_simd

(* Execute a compiled candidate under the objective; returns the result
   (for verification) and its score in seconds. *)
let execute ?budget objective (c : Backend.compiled) =
  match objective with
  | Cost_model device ->
      let r =
        Backend.run ?budget
          ~exec:(Codegen.Closure { instrument = true; jobs = 1 })
          c
      in
      (r, (Cost.total device r.Exec.kernels).Cost.total_s)
  | Wall_clock { reps } ->
      let best = ref infinity and res = ref None in
      for _ = 1 to max 1 reps do
        let t0 = Unix.gettimeofday () in
        let r =
          Backend.run ?budget
            ~exec:(Codegen.Closure { instrument = false; jobs = 1 })
            c
        in
        let dt = Unix.gettimeofday () -. t0 in
        if dt < !best then begin
          best := dt;
          res := Some r
        end
      done;
      (Option.get !res, !best)

let run ?trace ?(objective = Cost_model Config.cpu_simd) ?(budget_ms = 2000.0)
    ?(max_rounds = 4) ?(top_k = 3) ?(seed = 42) ?budget ?backend_opts ?rules
    ?opt_rules ?roots ~store program =
  let opts = Option.value backend_opts ~default:Codegen.default_options in
  let rules = match rules with Some r -> r | None -> Rules.catalog ~store in
  let opt_rules =
    match opt_rules with Some r -> r | None -> Rules.opt_catalog
  in
  let roots =
    match roots with Some r -> r | None -> Program.outputs program
  in
  (* keep Persist effects alive through caller-side DCE *)
  let keep_roots =
    roots
    @ List.filter_map
        (fun (s : Program.stmt) ->
          match s.op with Op.Persist _ -> Some s.id | _ -> None)
        (Program.stmts program)
  in
  let t0 = Unix.gettimeofday () in
  let over_budget () = (Unix.gettimeofday () -. t0) *. 1000.0 > budget_ms in
  Trace.with_span trace "tune" (fun () ->
      (* baseline: measured through the same pipeline as every candidate *)
      let base_compiled = Backend.compile ~options:opts ~store program in
      let base_run, baseline_s =
        Trace.with_span trace "tune:candidate"
          ~attrs:[ ("rule", "baseline") ]
          (fun () -> execute ?budget objective base_compiled)
      in
      let base_roots =
        List.map (fun id -> (id, Exec.output base_run id)) roots
      in
      let verify r =
        List.for_all
          (fun (id, v0) ->
            match Exec.output r id with
            | v -> Svector.equal v0 v
            | exception _ -> false)
          base_roots
      in
      let seen = Hashtbl.create 64 in
      Hashtbl.replace seen (digest program opts) ();
      let candidates = ref [] in
      let record c = candidates := c :: !candidates in
      let current = ref program in
      let current_opts = ref opts in
      let current_rules = ref [] in
      let current_score = ref baseline_s in
      let rounds = ref 0 in
      (try
         for round = 1 to max_rounds do
           if over_budget () then raise Exit;
           rounds := round;
           (* neighbors: one rule application each — a program rewrite
              under the incumbent options, or an option mutation of the
              incumbent program — deduplicated on (program, options) *)
           let fresh p' o' name =
             let dg = digest p' o' in
             if Hashtbl.mem seen dg then None
             else begin
               Hashtbl.replace seen dg ();
               Some (name, p', o')
             end
           in
           let neighbors =
             List.filter_map
               (fun (r : Rules.t) ->
                 match r.Rules.apply !current with
                 | None -> None
                 | exception _ -> None
                 | Some p' -> (
                     match Optimize.dce ~roots:keep_roots p' with
                     | p' -> fresh p' !current_opts r.Rules.name
                     | exception _ -> None))
               rules
             @ List.filter_map
                 (fun (r : Rules.opt_rule) ->
                   match r.Rules.o_apply !current_opts !current with
                   | None -> None
                   | exception _ -> None
                   | Some o' -> fresh !current o' r.Rules.o_name)
                 opt_rules
           in
           let neighbors = shuffle (seed + round) neighbors in
           (* static pruning on Explain's estimates *)
           let priced =
             List.filter_map
               (fun (name, p', o') ->
                 let chain = !current_rules @ [ name ] in
                 match Backend.compile ~options:o' ~store p' with
                 | c ->
                     let est =
                       (Cost.total estimate_device
                          (Explain.estimate c.Backend.plan))
                         .Cost.total_s
                     in
                     Some (name, chain, p', o', c, est)
                 | exception e ->
                     record
                       {
                         c_rules = chain;
                         c_round = round;
                         c_estimate_s = nan;
                         c_score_s = None;
                         c_verdict = Failed (Printexc.to_string e);
                       };
                     None)
               neighbors
           in
           let ranked =
             List.stable_sort
               (fun (_, _, _, _, _, a) (_, _, _, _, _, b) -> Float.compare a b)
               priced
           in
           let rec split k = function
             | [] -> ([], [])
             | x :: rest when k > 0 ->
                 let keep, drop = split (k - 1) rest in
                 (x :: keep, drop)
             | rest -> ([], rest)
           in
           let keep, drop = split top_k ranked in
           List.iter
             (fun (_, chain, _, _, _, est) ->
               record
                 {
                   c_rules = chain;
                   c_round = round;
                   c_estimate_s = est;
                   c_score_s = None;
                   c_verdict = Pruned;
                 })
             drop;
           (* measure the survivors *)
           let best_move = ref None in
           List.iter
             (fun (name, chain, p', o', c, est) ->
               if over_budget () then
                 record
                   {
                     c_rules = chain;
                     c_round = round;
                     c_estimate_s = est;
                     c_score_s = None;
                     c_verdict = Failed "search budget exhausted";
                   }
               else
                 match
                   Trace.with_span trace "tune:candidate"
                     ~attrs:
                       [ ("rule", name); ("round", string_of_int round) ]
                     (fun () -> execute ?budget objective c)
                 with
                 | exception e ->
                     record
                       {
                         c_rules = chain;
                         c_round = round;
                         c_estimate_s = est;
                         c_score_s = None;
                         c_verdict = Failed (Printexc.to_string e);
                       }
                 | r, score ->
                     if not (verify r) then
                       record
                         {
                           c_rules = chain;
                           c_round = round;
                           c_estimate_s = est;
                           c_score_s = Some score;
                           c_verdict = Rejected;
                         }
                     else begin
                       let improves =
                         score < !current_score *. 0.999
                         &&
                         match !best_move with
                         | Some (_, _, _, s) -> score < s
                         | None -> true
                       in
                       record
                         {
                           c_rules = chain;
                           c_round = round;
                           c_estimate_s = est;
                           c_score_s = Some score;
                           c_verdict = (if improves then Improved else Measured);
                         };
                       if improves then best_move := Some (chain, p', o', score)
                     end)
             keep;
           match !best_move with
           | Some (chain, p', o', score) ->
               current := p';
               current_opts := o';
               current_rules := chain;
               current_score := score
           | None -> raise Exit
         done
       with Exit -> ());
      Trace.count trace "tune.candidates"
        (float_of_int (List.length !candidates));
      {
        baseline_s;
        best_s = !current_score;
        best_rules = !current_rules;
        best_program = !current;
        best_options = !current_opts;
        candidates = List.rev !candidates;
        rounds = !rounds;
        seed;
      })
