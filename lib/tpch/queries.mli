(** The evaluated TPC-H query subset (paper Figures 12 and 13):
    Q1, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 15, 19, 20.

    Each query is one or more relational plans plus pure post-processing
    (HAVING filters, ratios, argmax) shared by every engine, so engine
    comparisons exercise exactly the plan evaluation.  ORDER BY / LIMIT
    are omitted, as in the paper.  Grouping keys are reported as integer
    codes; the CLI decodes them for display. *)

open Voodoo_relational
module E = Voodoo_engine.Engine

(** One engine invocation on one plan; temp tables produced by earlier
    phases are registered into the catalog before later phases run. *)
type evaluator = Catalog.t -> Ra.t -> E.rows

type t = {
  name : string;
  figure : string;  (** which paper figure(s) evaluate it *)
  run : evaluator -> Catalog.t -> E.rows;
  columns : string list;  (** result columns compared across engines *)
}

(** Dictionary codes of [table.col] values satisfying [pred], as an
    [In_list] predicate (how LIKE and equality on strings reach plans). *)
val codes_matching : Catalog.t -> string -> string -> (string -> bool) -> Rexpr.t

(** All evaluated queries; Q11's HAVING fraction depends on the scale
    factor. *)
val all : sf:float -> t list

(** Figure 13's CPU query set (all fourteen). *)
val cpu_figure13 : string list

(** Figure 12's GPU query subset. *)
val gpu_figure12 : string list

val find : sf:float -> string -> t option
