(** Deterministic synthetic TPC-H generator.

    Reproduces dbgen's schema, dense key structure, foreign keys, value
    domains and the standard selectivity-bearing distributions (dates,
    quantities, discounts, flags, types, brands, containers, segments,
    priorities, ship modes) without its text corpus.  Two derived columns
    are materialized at load time ([l_year], [o_year]) standing in for
    SQL's [extract(year ...)].  Same scale factor and seed always produce
    the same database (DESIGN.md §2). *)

(** Cardinalities at a scale factor (lineitem is 1–7 lines per order). *)
type sizes = { suppliers : int; parts : int; customers : int; orders : int }

val sizes_of_sf : float -> sizes

(** Suppliers per part in partsupp (dbgen: 4). *)
val ps_per_part : int

(** [generate ~sf ?seed ()] builds a catalog with all eight tables loaded
    onto the device. *)
val generate : sf:float -> ?seed:int -> unit -> Voodoo_relational.Catalog.t
