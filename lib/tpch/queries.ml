(** The evaluated TPC-H query subset (paper Figures 12 and 13):
    Q1, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 15, 19, 20.

    Each query is a relational plan (or a sequence of them) plus pure
    post-processing (HAVING filters, ratios, argmax) that is shared by
    every engine, so engine comparisons exercise exactly the plan
    evaluation.  As in the paper, ORDER BY / LIMIT clauses are omitted.
    Queries report grouping keys as integer codes (dictionary codes,
    nation keys, day numbers); the CLI decodes them for display. *)

open Voodoo_vector
open Voodoo_relational
open Rexpr
module E = Voodoo_engine.Engine

type evaluator = Catalog.t -> Ra.t -> E.rows

type t = {
  name : string;
  figure : string;  (** which paper figure(s) evaluate it *)
  run : evaluator -> Catalog.t -> E.rows;
  columns : string list;  (** result columns compared across engines *)
}

(* --- helpers --- *)

let get_num row name =
  match List.assoc_opt name row with
  | Some (Some v) -> Scalar.to_float v
  | _ -> 0.0

(** Dictionary codes of table.col whose string satisfies [pred], as an
    [In_list] predicate. *)
let codes_matching cat tname cname pred =
  let c = Table.column (Catalog.table cat tname) cname in
  match c.dict with
  | None -> invalid_arg "codes_matching: not a string column"
  | Some dict ->
      let codes = ref [] in
      Array.iteri (fun code s -> if pred s then codes := code :: !codes) dict;
      In_list (col cname, List.map (fun c -> Int_lit c) !codes)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains_word ~word s =
  List.mem word (String.split_on_char ' ' s)

let revenue = col "l_extendedprice" *: (f 1.0 -: col "l_discount")

(* --- Q1: pricing summary report --- *)

let q1 =
  let plan =
    Ra.group_by
      (Ra.select (Ra.scan "lineitem") (col "l_shipdate" <=: date "1998-09-02"))
      [ "l_returnflag"; "l_linestatus" ]
      [
        Ra.agg ~name:"sum_qty" Sum (col "l_quantity");
        Ra.agg ~name:"sum_base_price" Sum (col "l_extendedprice");
        Ra.agg ~name:"sum_disc_price" Sum revenue;
        Ra.agg ~name:"sum_charge" Sum (revenue *: (f 1.0 +: col "l_tax"));
        Ra.agg ~name:"avg_qty" Avg (col "l_quantity");
        Ra.agg ~name:"avg_price" Avg (col "l_extendedprice");
        Ra.agg ~name:"avg_disc" Avg (col "l_discount");
        Ra.agg ~name:"count_order" Count (i 1);
      ]
  in
  {
    name = "Q1";
    figure = "12,13";
    run = (fun eval cat -> eval cat plan);
    columns =
      [
        "l_returnflag"; "l_linestatus"; "sum_qty"; "sum_base_price";
        "sum_disc_price"; "sum_charge"; "avg_qty"; "avg_price"; "avg_disc";
        "count_order";
      ];
  }

(* --- Q4: order priority checking --- *)

let q4 =
  let plan =
    let late = Ra.select (Ra.scan "lineitem") (col "l_commitdate" <: col "l_receiptdate") in
    let orders =
      Ra.select (Ra.scan "orders")
        (col "o_orderdate" >=: date "1993-07-01"
        &&: (col "o_orderdate" <: date "1993-10-01"))
    in
    Ra.group_by
      (Ra.semi_join orders ~key:"o_orderkey" late ~dim_key:"l_orderkey")
      [ "o_orderpriority" ]
      [ Ra.agg ~name:"order_count" Count (i 1) ]
  in
  {
    name = "Q4";
    figure = "12,13";
    run = (fun eval cat -> eval cat plan);
    columns = [ "o_orderpriority"; "order_count" ];
  }

(* --- Q5: local supplier volume --- *)

let q5 =
  let plan cat =
    let asia = codes_matching cat "region" "r_name" (String.equal "ASIA") in
    let fact =
      Ra.scan "lineitem"
      |> fun p -> Ra.fk_join p ~fk:"l_orderkey" (Ra.scan "orders") ~pk:"o_orderkey"
      |> fun p -> Ra.fk_join p ~fk:"o_custkey" (Ra.scan "customer") ~pk:"c_custkey"
      |> fun p -> Ra.fk_join p ~fk:"l_suppkey" (Ra.scan "supplier") ~pk:"s_suppkey"
      |> fun p -> Ra.fk_join p ~fk:"s_nationkey" (Ra.scan "nation") ~pk:"n_nationkey"
      |> fun p -> Ra.fk_join p ~fk:"n_regionkey" (Ra.scan "region") ~pk:"r_regionkey"
    in
    Ra.group_by
      (Ra.select fact
         (asia
         &&: (col "o_orderdate" >=: date "1994-01-01")
         &&: (col "o_orderdate" <: date "1995-01-01")
         &&: (col "c_nationkey" =: col "s_nationkey")))
      [ "n_nationkey" ]
      [ Ra.agg ~name:"revenue" Sum revenue ]
  in
  {
    name = "Q5";
    figure = "12,13";
    run = (fun eval cat -> eval cat (plan cat));
    columns = [ "n_nationkey"; "revenue" ];
  }

(* --- Q6: forecasting revenue change --- *)

let q6 =
  let plan =
    Ra.aggregate
      (Ra.select (Ra.scan "lineitem")
         ((col "l_shipdate" >=: date "1994-01-01")
         &&: (col "l_shipdate" <: date "1995-01-01")
         &&: Between (col "l_discount", f 0.05, f 0.07)
         &&: (col "l_quantity" <: i 24)))
      [ Ra.agg ~name:"revenue" Sum (col "l_extendedprice" *: col "l_discount") ]
  in
  {
    name = "Q6";
    figure = "12,13";
    run = (fun eval cat -> eval cat plan);
    columns = [ "revenue" ];
  }

(* --- Q7: volume shipping --- *)

let q7 =
  let plan cat =
    let france =
      match Table.encode (Table.column (Catalog.table cat "nation") "n_name") "FRANCE" with
      | Some c -> c
      | None -> -1
    and germany =
      match Table.encode (Table.column (Catalog.table cat "nation") "n_name") "GERMANY" with
      | Some c -> c
      | None -> -1
    in
    (* nation names are keyed identically to nation keys in our generator's
       dictionary order, but resolve via the dictionary to stay honest *)
    let fact =
      Ra.scan "lineitem"
      |> fun p -> Ra.fk_join p ~fk:"l_suppkey" (Ra.scan "supplier") ~pk:"s_suppkey"
      |> fun p -> Ra.fk_join p ~fk:"l_orderkey" (Ra.scan "orders") ~pk:"o_orderkey"
      |> fun p -> Ra.fk_join p ~fk:"o_custkey" (Ra.scan "customer") ~pk:"c_custkey"
    in
    (* nationkey equals the n_name dictionary code by construction; the
       supplier/customer nations are compared through their keys *)
    Ra.group_by
      (Ra.select fact
         ((col "l_shipdate" >=: date "1995-01-01")
         &&: (col "l_shipdate" <=: date "1996-12-31")
         &&: (((col "s_nationkey" =: i france) &&: (col "c_nationkey" =: i germany))
             ||: ((col "s_nationkey" =: i germany) &&: (col "c_nationkey" =: i france)))))
      [ "s_nationkey"; "c_nationkey"; "l_year" ]
      [ Ra.agg ~name:"volume" Sum revenue ]
  in
  {
    name = "Q7";
    figure = "13";
    run = (fun eval cat -> eval cat (plan cat));
    columns = [ "s_nationkey"; "c_nationkey"; "l_year"; "volume" ];
  }

(* --- Q8: national market share --- *)

let q8 =
  let plan cat =
    let america = codes_matching cat "region" "r_name" (String.equal "AMERICA") in
    let steel =
      codes_matching cat "part" "p_type" (String.equal "ECONOMY ANODIZED STEEL")
    in
    let brazil = 2 (* n_nationkey of BRAZIL (dense nation keys) *) in
    let fact =
      Ra.scan "lineitem"
      |> fun p -> Ra.fk_join p ~fk:"l_partkey" (Ra.scan "part") ~pk:"p_partkey"
      |> fun p -> Ra.fk_join p ~fk:"l_suppkey" (Ra.scan "supplier") ~pk:"s_suppkey"
      |> fun p -> Ra.fk_join p ~fk:"l_orderkey" (Ra.scan "orders") ~pk:"o_orderkey"
      |> fun p -> Ra.fk_join p ~fk:"o_custkey" (Ra.scan "customer") ~pk:"c_custkey"
      |> fun p -> Ra.fk_join p ~fk:"c_nationkey" (Ra.scan "nation") ~pk:"n_nationkey"
      |> fun p -> Ra.fk_join p ~fk:"n_regionkey" (Ra.scan "region") ~pk:"r_regionkey"
    in
    Ra.group_by
      (Ra.select fact
         (america
         &&: (col "o_orderdate" >=: date "1995-01-01")
         &&: (col "o_orderdate" <=: date "1996-12-31")
         &&: steel))
      [ "o_year" ]
      [
        Ra.agg ~name:"brazil_volume" Sum (revenue *: (col "s_nationkey" =: i brazil));
        Ra.agg ~name:"total_volume" Sum revenue;
      ]
  in
  {
    name = "Q8";
    figure = "12,13";
    run = (fun eval cat -> eval cat (plan cat));
    columns = [ "o_year"; "brazil_volume"; "total_volume" ];
  }

(* --- Q9: product type profit measure --- *)

let q9 =
  let plan cat =
    let green = codes_matching cat "part" "p_name" (contains_word ~word:"green") in
    let nparts = (Catalog.table cat "part").nrows in
    let nsupps = (Catalog.table cat "supplier").nrows in
    let composite pkcol skcol =
      ((col pkcol -: i 1) *: i nsupps) +: (col skcol -: i 1)
    in
    let fact =
      Ra.scan "lineitem"
      |> fun p -> Ra.fk_join p ~fk:"l_partkey" (Ra.scan "part") ~pk:"p_partkey"
      |> fun p -> Ra.fk_join p ~fk:"l_suppkey" (Ra.scan "supplier") ~pk:"s_suppkey"
      |> fun p -> Ra.fk_join p ~fk:"l_orderkey" (Ra.scan "orders") ~pk:"o_orderkey"
      |> fun p ->
      Ra.lookup_join p
        ~fact_key:(composite "l_partkey" "l_suppkey")
        (Ra.scan "partsupp")
        ~dim_key:(composite "ps_partkey" "ps_suppkey")
        ~domain:(0, (nparts * nsupps) - 1)
    in
    Ra.group_by
      (Ra.select fact green)
      [ "s_nationkey"; "o_year" ]
      [
        Ra.agg ~name:"profit" Sum
          (revenue -: (col "ps_supplycost" *: col "l_quantity"));
      ]
  in
  {
    name = "Q9";
    figure = "13";
    run = (fun eval cat -> eval cat (plan cat));
    columns = [ "s_nationkey"; "o_year"; "profit" ];
  }

(* --- Q10: returned item reporting --- *)

let q10 =
  let plan cat =
    let returned = codes_matching cat "lineitem" "l_returnflag" (String.equal "R") in
    let fact =
      Ra.scan "lineitem"
      |> fun p -> Ra.fk_join p ~fk:"l_orderkey" (Ra.scan "orders") ~pk:"o_orderkey"
    in
    Ra.group_by
      (Ra.select fact
         ((col "o_orderdate" >=: date "1993-10-01")
         &&: (col "o_orderdate" <: date "1994-01-01")
         &&: returned))
      [ "o_custkey" ]
      [ Ra.agg ~name:"revenue" Sum revenue ]
  in
  {
    name = "Q10";
    figure = "13";
    run = (fun eval cat -> eval cat (plan cat));
    columns = [ "o_custkey"; "revenue" ];
  }

(* --- Q11: important stock identification --- *)

let q11 ~sf =
  let plan cat =
    let germany = codes_matching cat "nation" "n_name" (String.equal "GERMANY") in
    let fact =
      Ra.scan "partsupp"
      |> fun p -> Ra.fk_join p ~fk:"ps_suppkey" (Ra.scan "supplier") ~pk:"s_suppkey"
      |> fun p -> Ra.fk_join p ~fk:"s_nationkey" (Ra.scan "nation") ~pk:"n_nationkey"
    in
    Ra.group_by
      (Ra.select fact germany)
      [ "ps_partkey" ]
      [ Ra.agg ~name:"value" Sum (col "ps_supplycost" *: col "ps_availqty") ]
  in
  {
    name = "Q11";
    figure = "13";
    run =
      (fun eval cat ->
        let rows = eval cat (plan cat) in
        (* HAVING value > 0.0001/SF * sum(value) *)
        let total = List.fold_left (fun acc r -> acc +. get_num r "value") 0.0 rows in
        let threshold = total *. (0.0001 /. sf) in
        List.filter (fun r -> get_num r "value" > threshold) rows);
    columns = [ "ps_partkey"; "value" ];
  }

(* --- Q12: shipping modes and order priority --- *)

let q12 =
  let plan cat =
    let modes =
      codes_matching cat "lineitem" "l_shipmode" (fun s ->
          s = "MAIL" || s = "SHIP")
    in
    let urgent =
      codes_matching cat "orders" "o_orderpriority" (fun s ->
          s = "1-URGENT" || s = "2-HIGH")
    in
    let fact =
      Ra.scan "lineitem"
      |> fun p -> Ra.fk_join p ~fk:"l_orderkey" (Ra.scan "orders") ~pk:"o_orderkey"
    in
    Ra.group_by
      (Ra.select fact
         (modes
         &&: (col "l_commitdate" <: col "l_receiptdate")
         &&: (col "l_shipdate" <: col "l_commitdate")
         &&: (col "l_receiptdate" >=: date "1994-01-01")
         &&: (col "l_receiptdate" <: date "1995-01-01")))
      [ "l_shipmode" ]
      [
        Ra.agg ~name:"high_line_count" Sum urgent;
        Ra.agg ~name:"low_line_count" Sum (Not urgent);
      ]
  in
  {
    name = "Q12";
    figure = "12,13";
    run = (fun eval cat -> eval cat (plan cat));
    columns = [ "l_shipmode"; "high_line_count"; "low_line_count" ];
  }

(* --- Q14: promotion effect --- *)

let q14 =
  let plan cat =
    let promo = codes_matching cat "part" "p_type" (has_prefix ~prefix:"PROMO") in
    let fact =
      Ra.scan "lineitem"
      |> fun p -> Ra.fk_join p ~fk:"l_partkey" (Ra.scan "part") ~pk:"p_partkey"
    in
    Ra.aggregate
      (Ra.select fact
         ((col "l_shipdate" >=: date "1995-09-01")
         &&: (col "l_shipdate" <: date "1995-10-01")))
      [
        Ra.agg ~name:"promo_revenue" Sum (revenue *: promo);
        Ra.agg ~name:"total_revenue" Sum revenue;
      ]
  in
  {
    name = "Q14";
    figure = "13";
    run = (fun eval cat -> eval cat (plan cat));
    columns = [ "promo_revenue"; "total_revenue" ];
  }

(* --- Q15: top supplier (revenue view + max) --- *)

let q15 =
  let plan =
    Ra.group_by
      (Ra.select (Ra.scan "lineitem")
         ((col "l_shipdate" >=: date "1996-01-01")
         &&: (col "l_shipdate" <: date "1996-04-01")))
      [ "l_suppkey" ]
      [ Ra.agg ~name:"total_revenue" Sum revenue ]
  in
  {
    name = "Q15";
    figure = "13";
    run =
      (fun eval cat ->
        let rows = eval cat plan in
        let mx =
          List.fold_left (fun acc r -> Float.max acc (get_num r "total_revenue")) 0.0 rows
        in
        List.filter
          (fun r -> get_num r "total_revenue" >= mx *. (1.0 -. 1e-9))
          rows);
    columns = [ "l_suppkey"; "total_revenue" ];
  }

(* --- Q19: discounted revenue --- *)

let q19 =
  let plan cat =
    let brand b = codes_matching cat "part" "p_brand" (String.equal b) in
    let containers pfx =
      codes_matching cat "part" "p_container" (has_prefix ~prefix:pfx)
    in
    let air =
      codes_matching cat "lineitem" "l_shipmode" (fun s -> s = "AIR" || s = "REG AIR")
    in
    let in_person =
      codes_matching cat "lineitem" "l_shipinstruct" (String.equal "DELIVER IN PERSON")
    in
    let clause b cs qlo shi =
      brand b &&: containers cs
      &&: (col "l_quantity" >=: i qlo)
      &&: (col "l_quantity" <=: i (qlo + 10))
      &&: Between (col "p_size", i 1, i shi)
      &&: air &&: in_person
    in
    let fact =
      Ra.scan "lineitem"
      |> fun p -> Ra.fk_join p ~fk:"l_partkey" (Ra.scan "part") ~pk:"p_partkey"
    in
    Ra.aggregate
      (Ra.select fact
         (clause "Brand#12" "SM" 1 5
         ||: clause "Brand#23" "MED" 10 10
         ||: clause "Brand#34" "LG" 20 15))
      [ Ra.agg ~name:"revenue" Sum revenue ]
  in
  {
    name = "Q19";
    figure = "12,13";
    run = (fun eval cat -> eval cat (plan cat));
    columns = [ "revenue" ];
  }

(* --- Q20: potential part promotion --- *)

let q20 =
  let phase1 =
    Ra.group_by
      (Ra.select (Ra.scan "lineitem")
         ((col "l_shipdate" >=: date "1994-01-01")
         &&: (col "l_shipdate" <: date "1995-01-01")))
      [ "l_partkey"; "l_suppkey" ]
      [ Ra.agg ~name:"qty" Sum (col "l_quantity") ]
  in
  let phase2 cat =
    let nsupps = (Catalog.table cat "supplier").nrows in
    let nparts = (Catalog.table cat "part").nrows in
    let forest = codes_matching cat "part" "p_name" (has_prefix ~prefix:"forest") in
    let fact =
      Ra.lookup_join (Ra.scan "partsupp")
        ~fact_key:(((col "ps_partkey" -: i 1) *: i nsupps) +: (col "ps_suppkey" -: i 1))
        (Ra.scan "q20_qty")
        ~dim_key:(((col "q20_partkey" -: i 1) *: i nsupps) +: (col "q20_suppkey" -: i 1))
        ~domain:(0, (nparts * nsupps) - 1)
    in
    let fact =
      Ra.semi_join fact ~key:"ps_partkey"
        (Ra.select (Ra.scan "part") forest)
        ~dim_key:"p_partkey"
    in
    Ra.group_by
      (Ra.select fact
         (Gt (Mul (f 2.0, col "ps_availqty"), col "q20_qty")
         &&: (col "q20_qty" >: i 0)))
      [ "ps_suppkey" ]
      [ Ra.agg ~name:"excess_parts" Count (i 1) ]
  in
  {
    name = "Q20";
    figure = "13";
    run =
      (fun eval cat ->
        let inner = eval cat phase1 in
        let renamed =
          List.map
            (fun r ->
              [
                ("q20_partkey", List.assoc "l_partkey" r);
                ("q20_suppkey", List.assoc "l_suppkey" r);
                ("q20_qty", List.assoc "qty" r);
              ])
            inner
        in
        let tmp =
          E.table_of_rows ~name:"q20_qty"
            ~columns:
              [ ("q20_partkey", Table.TInt); ("q20_suppkey", Table.TInt);
                ("q20_qty", Table.TInt) ]
            renamed
        in
        Catalog.add_table cat tmp;
        eval cat (phase2 cat));
    columns = [ "ps_suppkey"; "excess_parts" ];
  }

(** All evaluated queries; Q11's HAVING fraction depends on the scale
    factor. *)
let all ~sf =
  [ q1; q4; q5; q6; q7; q8; q9; q10; q11 ~sf; q12; q14; q15; q19; q20 ]

let cpu_figure13 = [ "Q1"; "Q4"; "Q5"; "Q6"; "Q7"; "Q8"; "Q9"; "Q10"; "Q11"; "Q12"; "Q14"; "Q15"; "Q19"; "Q20" ]

let gpu_figure12 = [ "Q1"; "Q4"; "Q5"; "Q6"; "Q8"; "Q12"; "Q19" ]

let find ~sf name =
  List.find_opt (fun q -> String.equal q.name name) (all ~sf)
